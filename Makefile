# Developer entry points. `make verify` is the tier-1 gate (see ROADMAP.md).

.PHONY: verify build test bench cover

verify:
	./scripts/verify.sh

cover:
	./scripts/cover.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem
