# Developer entry points. `make verify` is the tier-1 gate (see ROADMAP.md).

.PHONY: verify build test bench cover crash-matrix

verify:
	./scripts/verify.sh

cover:
	./scripts/cover.sh

# The crash drills: kill fixed-seed sessions (and the job farm) mid-run,
# resume from checkpoints, and demand byte-identical results. Run under
# -race because recovery code is exactly where concurrency bugs hide.
crash-matrix:
	go test -race -count=1 \
	  -run 'TestKillAndResume|TestSessionKillAndResume|TestSessionCheckpoint|TestDurableServer|TestCLIAutotuneCrashAndResume' \
	  ./hotspot ./internal/core ./internal/httpapi .

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem
