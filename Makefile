# Developer entry points. `make verify` is the tier-1 gate (see ROADMAP.md).

.PHONY: verify build test bench

verify:
	./scripts/verify.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem
