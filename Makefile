# Developer entry points. `make verify` is the tier-1 gate (see ROADMAP.md).

.PHONY: verify build test bench bench-check cover crash-matrix overload-drill dist-drill transfer-drill drift-drill

verify:
	./scripts/verify.sh

cover:
	./scripts/cover.sh

# The crash drills: kill fixed-seed sessions (and the job farm) mid-run,
# resume from checkpoints, and demand byte-identical results. Run under
# -race because recovery code is exactly where concurrency bugs hide.
crash-matrix:
	go test -race -count=1 \
	  -run 'TestKillAndResume|TestSessionKillAndResume|TestSessionCheckpoint|TestDurableServer|TestCLIAutotuneCrashAndResume' \
	  ./hotspot ./internal/core ./internal/httpapi .

# The overload drills: shed a submission burst against a bounded queue
# (while polls and cancels keep answering), rate-limit a greedy client,
# hedge stragglers deterministically, quarantine a broken flag subtree,
# and degrade budget-killed runs to best-so-far. See docs/OVERLOAD.md.
overload-drill:
	go test -race -count=1 \
	  -run 'TestOverloadBurst|TestPerClientRateLimit|TestAdmission|TestShutdownSheds|TestJournalCompaction|TestCompactionCrash|TestHedging|TestQuarantine|TestSessionDegraded|TestHedgedSessionResumes|TestCLIAutotuneBudgetDegrades' \
	  ./internal/httpapi ./internal/core .

# The distributed drills: the evaluation plane's equivalence and survival
# story. Fixed-seed sessions against real evald sockets must match the
# in-process run byte for byte — through node kills (re-dispatch), whole-
# fleet death (degrade to best-so-far), and flapping nodes under hedging.
# TestCLIDistDrill spawns 3 evald processes and SIGKILLs one mid-session.
dist-drill:
	go test -race -count=1 \
	  -run 'TestDifferentialParallelWorkers|TestKillOneNodeByteIdentical|TestKillAllNodesDegradesToBestSoFar|TestNodeFlapsDuringHedgeByteIdentical|TestDifferentialBatchedDispatch|TestJoinDuringHedgeByteIdentical|TestDrainDuringBatchByteIdentical|TestReRegisterAfterFlapByteIdentical|TestMTLSFailClosed|TestBearerTokenFailClosed|TestCLIDistDrill' \
	  ./internal/dispatch .

# The transfer drills: the cross-workload knowledge base's survival and
# equivalence story. A warm-started session at half the cold trial budget
# must reach the cold best; a store torn mid-record (a kill during an
# append) must salvage its intact prefix and keep warm-starting; and a
# warm-started session must be byte-identical in-process and against a
# real evald fleet. See docs/TRANSFER.md.
transfer-drill:
	go test -race -count=1 \
	  -run 'TestTransferWarmStartHalvesTrialBudget|TestTransferOffLeavesSessionByteIdentical|TestTransferBogusStoreDegradesToCold|TestStoreSalvagesTornTail|TestTuneTransferJob|TestCLITransferStoreTornTailDrill|TestCLITransferFleetEquivalence' \
	  ./hotspot ./internal/transfer ./internal/httpapi .

# The drift drills: the live re-tuning story end to end. A phase-shifting
# workload under the armed detector must open a recovery epoch whose winner
# beats the stale one on the post-shift profile; stationary sessions must
# never false-positive; a session killed mid-epoch must resume to the
# byte-identical outcome; drift winners must be filed in the transfer store
# under the shifted regime's fingerprint; and the job farm must surface the
# per-epoch breakdown (and legacy degraded-reason strings) in polls.
# See docs/DRIFT.md.
drift-drill:
	go test -race -count=1 \
	  -run 'TestDrift|TestTuneDrift|TestDetectsUpwardShift|TestStationaryNoFalsePositive|TestOneShotUntilReset|TestDegradedReasonVisibleInPoll|TestDurableLegacyJournalDegradedReason|TestPhaseS|TestDefaultSchedule' \
	  ./internal/drift ./internal/core ./hotspot ./internal/httpapi ./internal/jvmsim

build:
	go build ./...

test:
	go test ./...

# Record the next BENCH_<n>.json trajectory point. bench-check reruns the
# suite and fails on >10% regression against the latest recorded point.
bench:
	./scripts/bench.sh

bench-check:
	./scripts/bench.sh -check
