package repro

// Ablation benchmarks for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=Ablation -benchmem
//
// Each sub-benchmark reports its outcome as custom metrics so the trade-off
// is visible straight from the bench output.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

// trueWall evaluates a configuration's noiseless wall time — ground truth
// a real experimenter never sees, used here to score what the tuner chose.
func trueWall(cfg *flags.Config, p *workload.Profile) float64 {
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	return sim.Run(cfg, p, 0).WallSeconds
}

func mustProfile(b *testing.B, name string) *workload.Profile {
	b.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("no workload %s", name)
	}
	return p
}

// BenchmarkAblationBeamWidth varies how many branch combinations the
// hierarchical searcher refines. Width 1 risks locking onto a survey
// winner that was noise; width 8 (all) spreads the budget too thin.
func BenchmarkAblationBeamWidth(b *testing.B) {
	p := mustProfile(b, "h2")
	for _, width := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			var imp float64
			for i := 0; i < b.N; i++ {
				imp = 0
				for seed := int64(0); seed < 3; seed++ {
					sess := &core.Session{
						Runner:   runner.NewInProcess(jvmsim.New(), p),
						Searcher: &core.Hierarchical{BeamWidth: width},
						Seed:     seed,
					}
					out, err := sess.Run()
					if err != nil {
						b.Fatal(err)
					}
					imp += out.ImprovementPct / 3
				}
			}
			b.ReportMetric(imp, "avg-improve-%")
		})
	}
}

// BenchmarkAblationReps contrasts tuning on single noisy runs against
// 3-repetition means. Fewer reps buy more trials but risk locking in a
// phantom winner; the metric that matters is the *true* (noiseless) wall of
// the chosen configuration.
func BenchmarkAblationReps(b *testing.B) {
	p := mustProfile(b, "startup.xml.validation")
	for _, reps := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("reps=%d", reps), func(b *testing.B) {
			var trueImp, trials float64
			for i := 0; i < b.N; i++ {
				trueImp, trials = 0, 0
				def := trueWall(flags.NewConfig(flags.NewRegistry()), p)
				for seed := int64(0); seed < 3; seed++ {
					sess := &core.Session{
						Runner:   runner.NewInProcess(jvmsim.New(), p),
						Searcher: core.NewHierarchical(),
						Reps:     reps,
						Seed:     seed,
					}
					out, err := sess.Run()
					if err != nil {
						b.Fatal(err)
					}
					tw := trueWall(out.Best, p)
					trueImp += 100 * (def - tw) / def / 3
					trials += float64(out.Trials) / 3
				}
			}
			b.ReportMetric(trueImp, "true-improve-%")
			b.ReportMetric(trials, "trials")
		})
	}
}

// BenchmarkAblationCache measures what canonical-config memoization buys:
// with the cache off, re-proposed configurations burn budget re-measuring.
func BenchmarkAblationCache(b *testing.B) {
	p := mustProfile(b, "fop")
	for _, cached := range []bool{true, false} {
		name := "on"
		if !cached {
			name = "off"
		}
		b.Run("cache="+name, func(b *testing.B) {
			var trials, hits float64
			for i := 0; i < b.N; i++ {
				r := runner.NewInProcess(jvmsim.New(), p)
				r.DisableCache = !cached
				sess := &core.Session{
					Runner:   r,
					Searcher: core.NewHierarchical(),
					Seed:     11,
				}
				out, err := sess.Run()
				if err != nil {
					b.Fatal(err)
				}
				trials = float64(out.Trials)
				hits = float64(out.CacheHits)
			}
			b.ReportMetric(trials, "trials-in-budget")
			b.ReportMetric(hits, "cache-hits")
		})
	}
}

// BenchmarkSimulatorRun is a micro-benchmark of the substrate itself: one
// simulated JVM execution. The entire 200-minute tuning economy rests on
// this being cheap.
func BenchmarkSimulatorRun(b *testing.B) {
	sim := jvmsim.New()
	reg := flags.NewRegistry()
	cfg := flags.NewConfig(reg)
	cfg.SetBool("UseG1GC", true)
	cfg.SetBool("UseParallelGC", false)
	p := mustProfile(b, "h2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Run(cfg, p, i)
		if res.Failed {
			b.Fatal(res.FailureMessage)
		}
	}
}

// BenchmarkConfigKey is a micro-benchmark of canonical-key construction,
// the hot path of the runner's result cache.
func BenchmarkConfigKey(b *testing.B) {
	reg := flags.NewRegistry()
	cfg := flags.NewConfig(reg)
	cfg.SetBool("UseG1GC", true)
	cfg.SetInt("MaxHeapSize", 2<<30)
	cfg.SetInt("CompileThreshold", 1500)
	cfg.SetBool("TieredCompilation", true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cfg.Key() == "" {
			b.Fatal("empty key")
		}
	}
}
