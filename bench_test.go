package repro

// One benchmark per table and figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md). Each bench regenerates its artifact
// at the paper's 200-virtual-minute budget, asserts the shape properties
// the paper reports, and exposes the headline numbers as custom metrics:
//
//	go test -bench=. -benchmem
//
// Shape expectations (DESIGN.md): absolute numbers come from a synthetic
// substrate, but who wins, by roughly what factor, and where the crossovers
// fall must match the paper.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// paperBudget mirrors the evaluation's 200-minute tuning budget.
func paperBudget() experiments.Config {
	return experiments.Config{
		BudgetSeconds: core.DefaultBudgetSeconds,
		Reps:          3,
		Seed:          42,
	}
}

// BenchmarkTable1SPECjvm2008 regenerates Table 1: the 16 SPECjvm2008
// startup programs, default vs tuned. Paper: +19% average, top three
// +63/51/32%.
func BenchmarkTable1SPECjvm2008(b *testing.B) {
	var res *experiments.SuiteResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSuite("specjvm2008", paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if res.AvgImprovement < 12 || res.AvgImprovement > 30 {
		b.Errorf("SPECjvm2008 average improvement %.1f%% outside the paper band [12,30]", res.AvgImprovement)
	}
	if res.TopThree[0] < 50 {
		b.Errorf("no dramatic winner: top improvement %.1f%% (paper: 63%%)", res.TopThree[0])
	}
	b.ReportMetric(res.AvgImprovement, "avg-improve-%")
	b.ReportMetric(res.TopThree[0], "max-improve-%")
}

// BenchmarkTable2DaCapo regenerates Table 2: the 13 DaCapo programs.
// Paper: +26% average, +42% maximum.
func BenchmarkTable2DaCapo(b *testing.B) {
	var res *experiments.SuiteResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSuite("dacapo", paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if res.AvgImprovement < 15 || res.AvgImprovement > 35 {
		b.Errorf("DaCapo average improvement %.1f%% outside the paper band [15,35]", res.AvgImprovement)
	}
	if res.MaxImprovement < 35 {
		b.Errorf("DaCapo maximum improvement %.1f%% (paper: 42%%)", res.MaxImprovement)
	}
	b.ReportMetric(res.AvgImprovement, "avg-improve-%")
	b.ReportMetric(res.MaxImprovement, "max-improve-%")
}

// BenchmarkFigure1Convergence regenerates Figure 1: anytime best-found
// improvement over tuning time. Shape: monotone non-decreasing, with most
// of the final gain reached by mid-budget.
func BenchmarkFigure1Convergence(b *testing.B) {
	var res *experiments.ConvergenceResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunConvergence(nil, paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	half, full := 0.0, 0.0
	for i := range res.Benchmarks {
		curve := res.ImprovementAt[i]
		for m := 1; m < len(curve); m++ {
			if curve[m] < curve[m-1]-1e-9 {
				b.Errorf("%s: convergence curve regressed", res.Benchmarks[i])
			}
		}
		// Mark index 7 is the 120-minute sample of a 200-minute budget.
		half += curve[7]
		full += curve[len(curve)-1]
	}
	if half < 0.8*full {
		b.Errorf("less than 80%% of the gain by minute 120: %.1f vs %.1f", half, full)
	}
	b.ReportMetric(full/float64(len(res.Benchmarks)), "avg-final-improve-%")
}

// BenchmarkTable3SearchSpace regenerates Table 3: the flag-hierarchy's
// search-space reduction. Shape: many orders of magnitude.
func BenchmarkTable3SearchSpace(b *testing.B) {
	var res *experiments.SpaceResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunSpace()
	}
	if res.TotalFlags < 600 {
		b.Errorf("flag universe %d < the paper's 600", res.TotalFlags)
	}
	if res.ReductionLog10 < 3 {
		b.Errorf("hierarchy reduction only 10^%.1f", res.ReductionLog10)
	}
	b.ReportMetric(res.FlatLog10, "flat-log10")
	b.ReportMetric(res.HierarchicalLog10, "hier-log10")
}

// BenchmarkFigure2SubsetVsFull regenerates Figure 2: whole-JVM tuning vs a
// prior-work fixed-subset tuner. Shape: whole-JVM wins on average and
// dominates on JIT-bound startup programs.
func BenchmarkFigure2SubsetVsFull(b *testing.B) {
	searchers := []string{"hierarchical", "subset-hillclimb"}
	var res *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunComparison(nil, searchers, paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	full := res.AvgBySearcher["hierarchical"]
	sub := res.AvgBySearcher["subset-hillclimb"]
	if full <= sub {
		b.Errorf("whole-JVM tuning (%.1f%%) did not beat subset tuning (%.1f%%)", full, sub)
	}
	// On the warm-up-bound programs the subset tuner must be far behind.
	for _, row := range res.Rows {
		if row.Benchmark == "startup.compiler.compiler" && row.Searcher == "subset-hillclimb" &&
			row.ImprovementPct > full {
			b.Errorf("subset tuner should not dominate on startup benchmarks")
		}
	}
	b.ReportMetric(full, "full-avg-%")
	b.ReportMetric(sub, "subset-avg-%")
}

// BenchmarkFigure3SearcherAblation regenerates Figure 3: every search
// strategy under an equal budget. Shape: the hierarchy-guided searcher is
// at or near the top; unguided random is far behind on loop-bound kernels.
func BenchmarkFigure3SearcherAblation(b *testing.B) {
	searchers := core.SearcherNames()
	var res *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunComparison(nil, searchers, paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	hier := res.AvgBySearcher["hierarchical"]
	for _, s := range searchers {
		if s == "hierarchical" || s == "genetic-flat" {
			continue // the flat GA may tie under a generous budget
		}
		if res.AvgBySearcher[s] > hier {
			b.Errorf("%s (%.1f%%) beat hierarchical (%.1f%%) on average",
				s, res.AvgBySearcher[s], hier)
		}
	}
	b.ReportMetric(hier, "hier-avg-%")
	b.ReportMetric(res.AvgBySearcher["random"], "random-avg-%")
}

// BenchmarkTable4BestConfigs regenerates Table 4: what the winning
// configurations chose. Shape: startup programs flip compilation policy;
// heap-pressured DaCapo programs grow the heap or change collectors.
func BenchmarkTable4BestConfigs(b *testing.B) {
	var rows []experiments.BestConfigRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBestConfigs(nil, paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	byName := map[string]experiments.BestConfigRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	// h2's default-heap GC pressure must be fixed one way or the other:
	// grow the heap or abandon the default throughput collector.
	if r := byName["h2"]; r.HeapMB <= 512 && r.Collector == "parallel" {
		b.Errorf("h2's winner neither grew the %d MB heap nor changed collector (%s)",
			r.HeapMB, r.Collector)
	}
	if r := byName["startup.compiler.compiler"]; len(r.KeyChanges) == 0 {
		b.Error("startup.compiler.compiler's winner should change flags")
	}
	tieredCount := 0
	for _, r := range rows {
		if r.Tiered {
			tieredCount++
		}
	}
	if tieredCount < 5 {
		b.Errorf("only %d winners enabled tiered compilation; startup programs should", tieredCount)
	}
	b.ReportMetric(float64(len(rows)), "benchmarks")
}

// BenchmarkE8SeedVariance runs the stability extension: the per-benchmark
// improvement spread across 5 seeds. Shape: the headline numbers are not
// single-seed luck — the CI must be small relative to the mean for the big
// winners.
func BenchmarkE8SeedVariance(b *testing.B) {
	var rows []experiments.SeedVarianceRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSeedVariance(nil, 5, paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Mean > 30 && r.CI95 > r.Mean/2 {
			b.Errorf("%s: improvement %.1f%% ± %.1f is mostly luck", r.Benchmark, r.Mean, r.CI95)
		}
		if r.Min < 0 {
			b.Errorf("%s: some seed tuned worse than default (%.1f%%)", r.Benchmark, r.Min)
		}
	}
	b.ReportMetric(rows[0].Mean, "top-bench-mean-%")
	b.ReportMetric(rows[0].CI95, "top-bench-ci95")
}

// BenchmarkE9ParallelScaling runs the tuning-farm extension: more parallel
// evaluation slots under the same wall budget. Shape: trials scale nearly
// linearly with workers; improvement is monotone-ish with diminishing
// returns.
func BenchmarkE9ParallelScaling(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunParallelScaling(nil, nil, paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	byBench := map[string][]experiments.ScalingRow{}
	for _, r := range rows {
		byBench[r.Benchmark] = append(byBench[r.Benchmark], r)
	}
	for bench, rs := range byBench {
		first, last := rs[0], rs[len(rs)-1]
		speedup := float64(last.Trials) / float64(first.Trials)
		if speedup < float64(last.Workers)/2 {
			b.Errorf("%s: %d workers only ran %.1fx the trials", bench, last.Workers, speedup)
		}
		if last.ImprovementPct < first.ImprovementPct-2 {
			b.Errorf("%s: more workers tuned worse (%.1f%% vs %.1f%%)",
				bench, last.ImprovementPct, first.ImprovementPct)
		}
	}
	b.ReportMetric(float64(rows[len(rows)-1].Trials), "trials-at-max-workers")
}

// BenchmarkE10GeneratedRobustness runs the robustness extension: tune
// randomly generated workloads the profiles were never calibrated against.
// Shape: the tuner's contract holds everywhere — never worse than default —
// and every family sees positive mean improvement.
func BenchmarkE10GeneratedRobustness(b *testing.B) {
	var rows []experiments.RobustnessRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunGeneratedRobustness(5, paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	var total float64
	for _, r := range rows {
		if r.MinImp < 0 {
			b.Errorf("%s: a generated workload tuned worse than default (%.1f%%)", r.Kind, r.MinImp)
		}
		if r.MeanImp <= 0 {
			b.Errorf("%s: no improvement on generated workloads", r.Kind)
		}
		total += r.MeanImp
	}
	b.ReportMetric(total/float64(len(rows)), "avg-improve-%")
}

// BenchmarkE11CommonConfig runs the common-configuration extension: one
// flag set for the whole DaCapo suite under the same total budget as
// per-program tuning. Shape: the common config captures most of the
// average win but cannot dominate per-program tuning.
func BenchmarkE11CommonConfig(b *testing.B) {
	var res *experiments.CommonConfigResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCommonConfig("dacapo", paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if res.SuiteAvgCommonPct <= 0 {
		b.Error("common config should improve the suite on average")
	}
	if res.SuiteAvgCommonPct < res.SuiteAvgPerProgramPct*0.5 {
		b.Errorf("common config (%.1f%%) should capture most of per-program tuning (%.1f%%)",
			res.SuiteAvgCommonPct, res.SuiteAvgPerProgramPct)
	}
	if res.SuiteAvgCommonPct > res.SuiteAvgPerProgramPct+5 {
		b.Errorf("common config (%.1f%%) should not dominate per-program tuning (%.1f%%)",
			res.SuiteAvgCommonPct, res.SuiteAvgPerProgramPct)
	}
	b.ReportMetric(res.SuiteAvgCommonPct, "common-avg-%")
	b.ReportMetric(res.SuiteAvgPerProgramPct, "per-program-avg-%")
}

// BenchmarkE13Objectives runs the latency-tuning extension: the same
// benchmarks tuned for throughput and for worst GC pause. Shape: the
// pause-tuned winner pauses less; the throughput-tuned winner is at least
// as fast.
func BenchmarkE13Objectives(b *testing.B) {
	var rows []experiments.ObjectiveRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunObjectives(nil, paperBudget())
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for i := 0; i+1 < len(rows); i += 2 {
		thr, pause := rows[i], rows[i+1]
		if pause.MaxPauseMs > thr.MaxPauseMs {
			b.Errorf("%s: pause tuning paused longer (%.0fms vs %.0fms)",
				pause.Benchmark, pause.MaxPauseMs, thr.MaxPauseMs)
		}
		if thr.WallSeconds > pause.WallSeconds*1.05 {
			b.Errorf("%s: throughput tuning notably slower (%.1fs vs %.1fs)",
				thr.Benchmark, thr.WallSeconds, pause.WallSeconds)
		}
	}
	b.ReportMetric(rows[1].MaxPauseMs, "h2-pause-tuned-ms")
	b.ReportMetric(rows[0].MaxPauseMs, "h2-throughput-tuned-ms")
}
