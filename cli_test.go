package repro

// End-to-end tests of the command-line tools: build each binary once and
// drive it the way a user would.

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// cliBinary builds cmd/<name> once per test run and returns its path.
func cliBinary(t *testing.T, name string) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "repro-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"autotune", "experiments", "jvmsim", "flaginfo", "validate", "evald"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "repro/cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = err
				os.Stderr.Write(out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Skipf("cannot build CLI tools: %v", cliErr)
	}
	return filepath.Join(cliDir, name)
}

func TestCLIAutotuneList(t *testing.T) {
	out, err := exec.Command(cliBinary(t, "autotune"), "-list").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "startup.compiler.compiler") ||
		!strings.Contains(string(out), "h2") {
		t.Errorf("-list output incomplete:\n%s", out)
	}
}

func TestCLIAutotuneTunesAndSaves(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "result.json")
	tracePath := filepath.Join(dir, "trace.jsonl")
	cmd := exec.Command(cliBinary(t, "autotune"),
		"-benchmark", "fop", "-budget", "20", "-seed", "1",
		"-out", outPath, "-trace", tracePath, "-convergence")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("autotune failed: %v", err)
	}
	for _, want := range []string{"benchmark:    fop", "improvement:", "winning flags:", "convergence", "telemetry:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("saved JSON missing: %v", err)
	}
	var saved map[string]any
	if err := json.Unmarshal(data, &saved); err != nil {
		t.Fatalf("saved JSON malformed: %v", err)
	}
	if saved["workload"] != "fop" {
		t.Errorf("saved workload = %v", saved["workload"])
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	first, _, _ := strings.Cut(string(trace), "\n")
	var ev map[string]any
	if err := json.Unmarshal([]byte(first), &ev); err != nil {
		t.Fatalf("trace is not JSONL: %v (line %q)", err, first)
	}
	if _, ok := ev["kind"]; !ok {
		t.Errorf("trace events carry no kind: %q", first)
	}
}

// TestCLIAutotuneTraceDeterministic is the acceptance check for the trace
// recorder: a fixed-seed chaos session at a multi-worker count writes a
// byte-identical trace file on every run.
func TestCLIAutotuneTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) []byte {
		cmd := exec.Command(cliBinary(t, "autotune"),
			"-benchmark", "fop", "-budget", "20", "-seed", "7", "-workers", "3",
			"-chaos", "unstable-farm", "-trace", path)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("autotune failed: %v\n%s", err, out)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatal("empty trace file")
		}
		return data
	}
	a := runOnce(filepath.Join(dir, "a.jsonl"))
	b := runOnce(filepath.Join(dir, "b.jsonl"))
	if string(a) != string(b) {
		t.Error("fixed-seed chaos traces differ between runs")
	}
}

// TestCLIAutotuneCrashAndResume drills the crash-recovery workflow the way
// an operator would: the chaos crash-at fault kills the process with exit
// code 7, and rerunning with -resume produces a result file byte-identical
// to the uninterrupted run's.
func TestCLIAutotuneCrashAndResume(t *testing.T) {
	bin := cliBinary(t, "autotune")
	dir := t.TempDir()
	controlOut := filepath.Join(dir, "control.json")
	if out, err := exec.Command(bin,
		"-benchmark", "fop", "-budget", "20", "-seed", "9", "-workers", "2",
		"-out", controlOut).CombinedOutput(); err != nil {
		t.Fatalf("control run failed: %v\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "session.ckpt")
	cmd := exec.Command(bin,
		"-benchmark", "fop", "-budget", "20", "-seed", "9", "-workers", "2",
		"-checkpoint", ckpt, "-checkpoint-every", "1", "-chaos", "crash-at=6")
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 7 {
		t.Fatalf("crash-at run: err=%v, want exit code 7\n%s", err, out)
	}
	if !strings.Contains(string(out), "rerun with -resume") {
		t.Errorf("crash message should point at -resume:\n%s", out)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not retained after the crash: %v", err)
	}

	resumedOut := filepath.Join(dir, "resumed.json")
	if out, err := exec.Command(bin,
		"-benchmark", "fop", "-budget", "20", "-seed", "9", "-workers", "2",
		"-checkpoint", ckpt, "-resume", "-out", resumedOut).CombinedOutput(); err != nil {
		t.Fatalf("resume run failed: %v\n%s", err, out)
	}
	want, err := os.ReadFile(controlOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumedOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("resumed result file differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

// TestCLIAutotuneBudgetDegradesGracefully is the acceptance check for
// best-effort budgets: a fixed-seed run killed by its trial budget exits 0
// and reports the best configuration found so far, marked degraded.
func TestCLIAutotuneBudgetDegradesGracefully(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "degraded.json")
	out, err := exec.Command(cliBinary(t, "autotune"),
		"-benchmark", "fop", "-budget", "200", "-seed", "4",
		"-max-trials", "12", "-out", outPath).CombinedOutput()
	if err != nil {
		t.Fatalf("budget-killed run must exit 0: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "degraded:") || !strings.Contains(s, "trial budget") {
		t.Errorf("output does not mark the result degraded:\n%s", s)
	}
	if !strings.Contains(s, "winning flags:") || !strings.Contains(s, "trials:") {
		t.Errorf("degraded run lost the best-so-far report:\n%s", s)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("degraded result not saved: %v", err)
	}
	var saved struct {
		Degraded       bool   `json:"degraded"`
		DegradedReason string `json:"degraded_reason"`
		Trials         int    `json:"trials"`
	}
	if err := json.Unmarshal(data, &saved); err != nil {
		t.Fatal(err)
	}
	if !saved.Degraded || !strings.Contains(saved.DegradedReason, "trial budget") || saved.Trials == 0 {
		t.Errorf("saved result: %+v", saved)
	}
}

// TestCLIAutotuneHedgeQuarantineFlags smoke-tests the robustness flags
// end to end under the straggler scenario.
func TestCLIAutotuneHedgeQuarantineFlags(t *testing.T) {
	out, err := exec.Command(cliBinary(t, "autotune"),
		"-benchmark", "fop", "-budget", "50", "-seed", "11", "-workers", "2",
		"-searcher", "hillclimb", "-chaos", "slow-trial", "-hedge", "-quarantine").CombinedOutput()
	if err != nil {
		t.Fatalf("hedged run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hedging:") {
		t.Errorf("no hedging summary under slow-trial:\n%s", out)
	}
}

func TestCLIAutotuneErrors(t *testing.T) {
	bin := cliBinary(t, "autotune")
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("no benchmark should exit non-zero")
	}
	if err := exec.Command(bin, "-benchmark", "nope").Run(); err == nil {
		t.Error("unknown benchmark should exit non-zero")
	}
	if err := exec.Command(bin, "-benchmark", "fop", "-searcher", "nope").Run(); err == nil {
		t.Error("unknown searcher should exit non-zero")
	}
}

func TestCLIExperimentsQuickTable3(t *testing.T) {
	out, err := exec.Command(cliBinary(t, "experiments"), "-run", "table3").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "search-space reduction") {
		t.Errorf("table3 output:\n%s", out)
	}
}

func TestCLIExperimentsQuickTable1(t *testing.T) {
	out, err := exec.Command(cliBinary(t, "experiments"), "-run", "table1", "-quick", "-reps", "1").Output()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, "SPECjvm2008") || !strings.Contains(s, "average") ||
		!strings.Contains(s, "paper: average 19%") {
		t.Errorf("table1 output incomplete:\n%s", s)
	}
}

func TestCLIExperimentsUnknown(t *testing.T) {
	if err := exec.Command(cliBinary(t, "experiments"), "-run", "nope").Run(); err == nil {
		t.Error("unknown experiment should exit non-zero")
	}
}

func TestCLIFlaginfo(t *testing.T) {
	bin := cliBinary(t, "flaginfo")
	out, err := exec.Command(bin).Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "total") || !strings.Contains(string(out), "tunable") {
		t.Errorf("summary output:\n%s", out)
	}

	out, err = exec.Command(bin, "-flag", "CompileThreshold").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "CompileThreshold") || !strings.Contains(string(out), "default=10000") {
		t.Errorf("-flag output:\n%s", out)
	}

	out, err = exec.Command(bin, "-active", "--", "-XX:+UseG1GC", "-XX:-UseParallelGC").Output()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, "collector: g1") || !strings.Contains(s, "G1HeapRegionSize") {
		t.Errorf("-active output:\n%s", s)
	}
	if strings.Contains(s, "CMSInitiatingOccupancyFraction") {
		t.Error("CMS flags should be inactive under G1")
	}

	if err := exec.Command(bin, "-flag", "NoSuch").Run(); err == nil {
		t.Error("unknown flag should exit non-zero")
	}
	if err := exec.Command(bin, "-category", "nope").Run(); err == nil {
		t.Error("unknown category should exit non-zero")
	}
}

func TestCLIExperimentsCSVExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	out, err := exec.Command(cliBinary(t, "experiments"),
		"-run", "table3", "-csv", dir, "-quick", "-reps", "1").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "wrote ") {
		t.Errorf("no files reported written:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 5 {
		t.Errorf("expected 5 CSV files, got %d (%v)", len(entries), err)
	}
}

func TestCLIValidateQuick(t *testing.T) {
	// A 25-minute budget is enough for every shape claim to hold.
	out, err := exec.Command(cliBinary(t, "validate"), "-budget", "25").Output()
	if err != nil {
		t.Fatalf("validate failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "claims hold") {
		t.Errorf("validate output:\n%s", out)
	}
	if strings.Contains(string(out), "FAIL") {
		t.Errorf("claims failed:\n%s", out)
	}
}

func TestCLIJvmsimAgainstAutotuneWinner(t *testing.T) {
	// A mini end-to-end: tune via autotune, then replay the winning flags
	// through the jvmsim launcher and confirm it beats the defaults.
	auto, sim := cliBinary(t, "autotune"), cliBinary(t, "jvmsim")
	outPath := filepath.Join(t.TempDir(), "r.json")
	if err := exec.Command(auto, "-benchmark", "startup.xml.validation",
		"-budget", "30", "-seed", "2", "-out", outPath).Run(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(outPath)
	var saved struct {
		CommandLine []string `json:"command_line"`
	}
	if err := json.Unmarshal(data, &saved); err != nil {
		t.Fatal(err)
	}

	run := func(args []string) float64 {
		out, err := exec.Command(sim, append(args, "startup.xml.validation")...).Output()
		if err != nil {
			t.Fatalf("jvmsim failed: %v", err)
		}
		var rep struct {
			WallSeconds float64 `json:"wall_seconds"`
		}
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatal(err)
		}
		return rep.WallSeconds
	}
	if tuned, def := run(saved.CommandLine), run(nil); tuned >= def {
		t.Errorf("replayed winner (%.1fs) should beat defaults (%.1fs)", tuned, def)
	}
}

func TestCLIJvmsimPrintGC(t *testing.T) {
	bin := cliBinary(t, "jvmsim")
	cmd := exec.Command(bin, "-XX:+PrintGC", "h2")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("jvmsim failed: %v", err)
	}
	log := stderr.String()
	if !strings.Contains(log, "[GC ") {
		t.Errorf("-XX:+PrintGC should emit a GC log, got:\n%.200s", log)
	}
	if !strings.Contains(log, "[Full GC ") {
		t.Error("h2 under defaults should log full GCs")
	}
	// Without the flag, stderr stays quiet.
	quiet := exec.Command(bin, "h2")
	var qerr strings.Builder
	quiet.Stderr = &qerr
	if err := quiet.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(qerr.String(), "[GC ") {
		t.Error("GC log printed without -XX:+PrintGC")
	}
}
