// Command autotune tunes one benchmark under a virtual time budget and
// prints the winning flag configuration — the interactive face of the
// reproduction.
//
// Usage:
//
//	autotune -benchmark h2 [-budget 200] [-searcher hierarchical]
//	         [-reps 3] [-seed 0] [-workers 4] [-objective throughput]
//	         [-chaos unstable-farm] [-retries 3]
//	         [-max-trials 0] [-real-budget 0] [-hedge] [-quarantine]
//	         [-drift] [-drift-sensitivity 1]
//	         [-trace out.jsonl] [-convergence] [-jvmsim path/to/jvmsim]
//	autotune -list
//	autotune -scenarios
//
// Budgets degrade gracefully rather than fail: when the virtual budget, a
// -max-trials trial budget, or a -real-budget wall-clock cap expires — or
// the run is interrupted with Ctrl-C — autotune exits 0 with the best
// configuration found so far, marked "degraded" with the reason. -hedge
// arms the straggler watchdog (trials far beyond the recent cost percentile
// are charged as if a duplicate dispatch won); -quarantine arms the failure
// circuit breaker (flag subtrees that keep failing deterministically are
// temporarily rejected at zero cost).
//
// -chaos runs the session under the deterministic fault-injection layer
// (internal/faultinject): transient launch failures, corrupt reports,
// spurious crashes, hangs, and latency spikes are injected on a schedule
// derived from -seed, so chaos sessions reproduce exactly. It accepts a
// named scenario (see -scenarios) or a fault-plan DSL spec like
// "launch=0.1,spike=0.2". -retries bounds launch attempts per measurement
// when transient failures strike.
//
// -drift arms workload-drift detection and live re-tuning (docs/DRIFT.md):
// when delivered scores shift up by more than search dynamics explain, the
// session opens a new tuning epoch — the stale winner is demoted to a
// candidate and the search restarts warm from it (plus transfer priors with
// -transfer-dir). The chaos DSL's drift-at=N fault (and the drift-midrun /
// drift-storm scenarios) actually shifts the simulated workload, which is
// the scripted way to drill recovery:
//
//	autotune -benchmark xalan -drift -chaos drift-at=40
//
// -drift-sensitivity scales the detector (1 = calibrated default, higher
// fires on weaker evidence). Per-epoch bests and drift provenance are
// printed after the run and land in the -out archive under "epochs".
//
// -trace writes the session's structured event stream (proposals, launch
// attempts, retries, injected faults, observations — each stamped with its
// virtual time) as JSONL to the given file. For a fixed -seed the file is
// byte-identical across runs at any -workers count, so traces diff cleanly.
// -convergence prints the best-so-far curve; a telemetry summary of the
// measurement economy is printed after every run.
//
// -checkpoint FILE makes the session crash-safe: its state is periodically
// snapshotted to FILE (every -checkpoint-every trials), and a killed run
// continues from the snapshot with -resume — converging to the
// byte-identical result the uninterrupted run would have produced. The
// chaos DSL's crash-at=N fault kills the session after N trials (exit code
// 7, checkpoint retained), which is the scripted way to drill recovery:
//
//	autotune -benchmark h2 -checkpoint h2.ckpt -chaos crash-at=20
//	autotune -benchmark h2 -checkpoint h2.ckpt -resume
//
// -transfer-dir DIR points the session at a cross-workload knowledge base
// (see docs/TRANSFER.md): the search warm-starts from the best stored
// configurations of the -transfer-k nearest workload fingerprints, and the
// session's own winner is recorded back into DIR for future runs. A missing
// or empty store simply yields a cold start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/hotspot"
)

// runTune calls hotspot.TuneContext, converting a crash-point kill (the
// chaos plan's crash-at=N fault panics with SessionCrash) into an ordinary
// error so main can exit with a distinct code while the deferred checkpoint
// machinery has already flushed during the unwind. Any other panic is a
// genuine bug and keeps propagating.
func runTune(ctx context.Context, opts hotspot.Options) (res *hotspot.Result, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		crash, ok := r.(hotspot.SessionCrash)
		if !ok {
			panic(r)
		}
		res, err = nil, crash
	}()
	return hotspot.TuneContext(ctx, opts)
}

// traceCap bounds the event trace; generous enough that even a long chaos
// session at full budget keeps every event (the recorder drops oldest
// deterministically if ever exceeded).
const traceCap = 1 << 18

func main() {
	var (
		bench    = flag.String("benchmark", "", "benchmark to tune (see -list)")
		budget   = flag.Float64("budget", 200, "tuning budget in virtual minutes")
		searcher = flag.String("searcher", "hierarchical", "search strategy: "+strings.Join(hotspot.Searchers(), ", "))
		reps     = flag.Int("reps", 3, "repetitions per measurement")
		seed     = flag.Int64("seed", 0, "random seed")
		trace    = flag.String("trace", "", "write the session's event trace as JSONL to this file")
		converge = flag.Bool("convergence", false, "print the convergence trace")
		jvmsim   = flag.String("jvmsim", "", "path to the jvmsim binary; measure via subprocesses")
		nodes    = flag.String("nodes", "", "comma-separated evald nodes (host:port); dispatch measurements to this fleet")
		fleetSt  = flag.String("fleet-state", "", "journal fleet membership and in-flight trials to this file (default <checkpoint>.fleet with -nodes and -checkpoint)")
		fleetLn  = flag.String("fleet-listen", "", "serve fleet registration on this address so evald -join nodes enter and drain at runtime")
		batch    = flag.Int("batch", 0, "trials per evaluate-batch round trip to the fleet (0 = one POST per trial)")
		tlsCert  = flag.String("tls-cert", "", "PEM certificate presented to fleet peers (mutual TLS)")
		tlsKey   = flag.String("tls-key", "", "PEM key for -tls-cert")
		tlsCA    = flag.String("tls-ca", "", "PEM CA bundle fleet peers must chain to")
		token    = flag.String("auth-token", "", "shared bearer token stamped on fleet requests and demanded on registrations")
		workers  = flag.Int("workers", 1, "parallel evaluation workers (goroutines and virtual slots)")
		objectiv = flag.String("objective", "throughput", "what to minimize: throughput (wall time) or pause (worst GC pause)")
		explain  = flag.Bool("explain", false, "attribute the improvement to individual flags")
		chaos    = flag.String("chaos", "", "fault-injection plan: a scenario (see -scenarios) or DSL like launch=0.1,spike=0.2")
		retries  = flag.Int("retries", 0, "max launch attempts per measurement on transient failures (0 = default 3)")
		maxTrial = flag.Int("max-trials", 0, "trial budget: stop after this many trials with a degraded best-so-far result (0 = no cap)")
		realBudg = flag.Duration("real-budget", 0, "wall-clock budget, e.g. 200ms: expiry returns a degraded best-so-far result (0 = no cap)")
		hedge    = flag.Bool("hedge", false, "hedge straggling trials past the recent cost percentile")
		quarant  = flag.Bool("quarantine", false, "circuit-break flag subtrees with dense deterministic failures")
		drift    = flag.Bool("drift", false, "detect workload drift and re-tune: a confirmed score shift opens a new epoch warm-started from the stale winner")
		driftSen = flag.Float64("drift-sensitivity", 0, "drift detector sensitivity: 1 = calibrated default, higher fires on weaker evidence (0 = default; needs -drift)")
		out      = flag.String("out", "", "save the result as JSON to this file")
		ckpt     = flag.String("checkpoint", "", "snapshot session state to this file for crash recovery")
		ckptN    = flag.Int("checkpoint-every", 0, "checkpoint cadence in completed trials (0 = default 8)")
		resume   = flag.Bool("resume", false, "continue the session recorded at -checkpoint")
		xferDir  = flag.String("transfer-dir", "", "cross-workload knowledge-base directory: warm-start from it and record the winner into it")
		xferK    = flag.Int("transfer-k", 0, "nearest stored fingerprints to draw warm-start priors from (0 = default 3)")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		scens    = flag.Bool("scenarios", false, "list fault-injection scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range hotspot.Benchmarks() {
			fmt.Println(b)
		}
		return
	}
	if *scens {
		for _, s := range hotspot.ChaosScenarios() {
			fmt.Println(s)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "autotune: -benchmark is required (try -list)")
		os.Exit(2)
	}

	reg := hotspot.NewMetricsRegistry()
	var tracer *hotspot.Tracer
	if *trace != "" {
		tracer = hotspot.NewTracer(traceCap)
	}
	// Ctrl-C is a best-effort stop, not an abort: the session halts at its
	// next evaluation round and reports the best configuration found so
	// far, marked degraded. A second signal kills the process the hard way
	// (signal.NotifyContext restores default handling once ctx is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var nodeList []string
	if *nodes != "" {
		nodeList = strings.Split(*nodes, ",")
	}
	fleetPath := *fleetSt
	if fleetPath == "" && (len(nodeList) > 0 || *fleetLn != "") && *ckpt != "" {
		// A crash-safe distributed session keeps its fleet view next to its
		// checkpoint by default, so -resume recovers both.
		fleetPath = *ckpt + ".fleet"
	}
	res, err := runTune(ctx, hotspot.Options{
		Benchmark:             *bench,
		Searcher:              *searcher,
		BudgetMinutes:         *budget,
		Reps:                  *reps,
		Seed:                  *seed,
		Noise:                 -1,
		JVMSimPath:            *jvmsim,
		Nodes:                 nodeList,
		FleetStatePath:        fleetPath,
		FleetListen:           *fleetLn,
		DispatchBatch:         *batch,
		TLSCert:               *tlsCert,
		TLSKey:                *tlsKey,
		TLSCA:                 *tlsCA,
		AuthToken:             *token,
		Workers:               *workers,
		Objective:             *objectiv,
		Chaos:                 *chaos,
		RetryAttempts:         *retries,
		MaxTrials:             *maxTrial,
		RealBudgetSeconds:     realBudg.Seconds(),
		BestEffort:            true,
		Hedge:                 *hedge,
		Quarantine:            *quarant,
		Drift:                 *drift,
		DriftSensitivity:      *driftSen,
		Telemetry:             reg,
		Trace:                 tracer,
		CheckpointPath:        *ckpt,
		CheckpointEveryTrials: *ckptN,
		Resume:                *resume,
		TransferDir:           *xferDir,
		TransferK:             *xferK,
	})
	if err != nil {
		var crash hotspot.SessionCrash
		if errors.As(err, &crash) {
			fmt.Fprintf(os.Stderr, "autotune: %v (checkpoint retained; rerun with -resume)\n", err)
			os.Exit(7)
		}
		fmt.Fprintf(os.Stderr, "autotune: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := res.Save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "autotune: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmark:    %s\n", res.Benchmark)
	fmt.Printf("searcher:     %s\n", res.Searcher)
	fmt.Printf("default:      %.2fs\n", res.DefaultWall)
	fmt.Printf("tuned:        %.2fs\n", res.BestWall)
	fmt.Printf("improvement:  %.1f%%  (%.2fx speedup)\n", res.ImprovementPct, res.Speedup)
	fmt.Printf("collector:    %s\n", res.Collector)
	fmt.Printf("trials:       %d  (%d failures, %d cache hits)\n", res.Trials, res.Failures, res.CacheHits)
	if res.Degraded {
		fmt.Printf("degraded:     %s — result is the best found so far\n", res.DegradedReason)
	}
	if res.Hedges > 0 || res.HedgeWins > 0 {
		fmt.Printf("hedging:      %d stragglers hedged, %d hedges won\n", res.Hedges, res.HedgeWins)
	}
	if res.Quarantined > 0 {
		fmt.Printf("quarantine:   %d trials rejected by the circuit breaker\n", res.Quarantined)
	}
	if len(res.Epochs) > 0 {
		fmt.Printf("drift:        %d epochs (%d confirmed drifts)\n", len(res.Epochs), len(res.Epochs)-1)
		for _, ep := range res.Epochs {
			if ep.DriftTrial > 0 {
				fmt.Printf("  epoch %d (phase %d): best %.2fs over %d trials — drift confirmed at trial %d (stat %.2f)\n",
					ep.Epoch, ep.Phase, ep.BestWall, ep.Trials, ep.DriftTrial, ep.DriftStat)
			} else {
				fmt.Printf("  epoch %d (phase %d): best %.2fs over %d trials\n",
					ep.Epoch, ep.Phase, ep.BestWall, ep.Trials)
			}
		}
	}
	if res.Transfer != nil {
		x := res.Transfer
		if x.Priors > 0 {
			fmt.Printf("transfer:     warm start — %d priors from %d stored entries (nearest %q, distance %.3f)\n",
				x.Priors, x.StoreEntries, x.NearestWorkload, x.NearestDistance)
			if x.RepairedFlags > 0 {
				fmt.Printf("              %d stored flags dropped during registry repair\n", x.RepairedFlags)
			}
		} else {
			fmt.Printf("transfer:     cold start — no usable priors in the store (%d entries)\n", x.StoreEntries)
		}
		if x.Recorded {
			fmt.Printf("              winner recorded for future sessions\n")
		}
	}
	if res.Chaos != "" && res.Chaos != "none" {
		fmt.Printf("chaos:        %s\n", res.Chaos)
		fmt.Printf("resilience:   %d flakes absorbed over %d launch attempts (%d unresolved transients)\n",
			res.Flakes, res.Attempts, res.TransientFailures)
	} else if res.Flakes > 0 {
		fmt.Printf("resilience:   %d flakes absorbed over %d launch attempts\n", res.Flakes, res.Attempts)
	}
	fmt.Printf("tuning time:  %.0f virtual minutes\n", res.ElapsedMinutes)
	snap := reg.Snapshot()
	faults := 0.0
	for name, v := range snap {
		if strings.HasPrefix(name, "chaos_faults_total") {
			faults += v
		}
	}
	fmt.Printf("telemetry:    %.0f launch attempts, %.0f retries, %.0f cache hits, %.0f condemned, %.0f faults injected\n",
		snap["runner_attempts_total"], snap["runner_retries_total"],
		snap["runner_cache_hits_total"], snap["runner_condemned_total"], faults)
	fmt.Printf("winning flags:\n")
	if len(res.CommandLine) == 0 {
		fmt.Printf("  (defaults)\n")
	}
	for _, a := range res.CommandLine {
		fmt.Printf("  %s\n", a)
	}
	if tracer != nil {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autotune: %v\n", err)
			os.Exit(1)
		}
		if err := tracer.WriteJSONL(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "autotune: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace:        %d events → %s\n", tracer.Len(), *trace)
	}
	if *converge {
		fmt.Printf("convergence (virtual minutes → best wall seconds):\n")
		for _, tp := range res.Trace {
			fmt.Printf("  %7.1f  %8.2f\n", tp.Elapsed/60, tp.BestWall)
		}
	}
	if *explain {
		contribs, err := hotspot.Explain(res, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autotune: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("flag attribution (slowdown when reverted to default):\n")
		for _, c := range contribs {
			if !c.Reverted {
				fmt.Printf("  %-35s = %-8s (structurally required)\n", c.Name, c.Value)
				continue
			}
			fmt.Printf("  %-35s = %-8s %+6.1f%%\n", c.Name, c.Value, c.DeltaPct)
		}
	}
}
