// Command benchdiff turns `go test -bench` output into the repo's
// BENCH_<n>.json trajectory points and compares two points for regressions.
//
//	go test -bench . -benchmem ./... | benchdiff fmt -o BENCH_2.json
//	benchdiff check BENCH_1.json BENCH_2.json
//
// fmt reads benchmark output on stdin and writes one JSON object per suite
// run: ns/op, allocs/op, B/op, and any custom metrics (trials/s) keyed by
// benchmark name, with -note free text attached verbatim.
//
// check exits 1 when any benchmark present in both files got more than 10%
// slower (ns/op up, or a custom rate metric like trials/s down); new and
// vanished benchmarks are reported but never fail the check, so the suite
// can grow. The threshold absorbs scheduler noise — real regressions from
// representation changes are multiples, not percents.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Point is one recorded trajectory entry.
type Point struct {
	// Note is free-form context: what changed, what baseline this run
	// follows, machine quirks.
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (CPU suffix stripped) to its metrics:
	// always "ns/op" when present, plus "allocs/op", "B/op", and custom
	// rates such as "trials/s".
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "fmt":
		cmdFmt(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff fmt [-o file] [-note text] < bench-output")
	fmt.Fprintln(os.Stderr, "       benchdiff check OLD.json NEW.json")
	os.Exit(2)
}

func cmdFmt(args []string) {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	note := fs.String("note", "", "free-form note recorded with the point")
	_ = fs.Parse(args)

	p := Point{Note: *note, Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, metrics, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		// A re-run of the same benchmark (e.g. -count) keeps the last sample.
		p.Benchmarks[name] = metrics
	}
	if err := sc.Err(); err != nil {
		fatal("read: %v", err)
	}
	if len(p.Benchmarks) == 0 {
		fatal("no benchmark lines on stdin")
	}
	enc, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal("write: %v", err)
	}
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   1 allocs/op   15159 trials/s
func parseBenchLine(line string) (string, map[string]float64, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", nil, false
	}
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix so points from different hosts compare.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	metrics := map[string]float64{}
	// f[1] is the iteration count; the rest are value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[f[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

// rateMetric reports whether unit measures throughput (higher is better)
// rather than cost (lower is better).
func rateMetric(unit string) bool {
	return strings.HasSuffix(unit, "/s") || strings.HasSuffix(unit, "/sec")
}

const tolerance = 0.10

func cmdCheck(args []string) {
	if len(args) != 2 {
		usage()
	}
	oldP, newP := load(args[0]), load(args[1])
	regressions := 0
	var names []string
	for name := range oldP.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oldM := oldP.Benchmarks[name]
		newM, ok := newP.Benchmarks[name]
		if !ok {
			fmt.Printf("SKIP  %s: not in %s\n", name, args[1])
			continue
		}
		for _, unit := range sortedUnits(oldM) {
			ov := oldM[unit]
			nv, ok := newM[unit]
			if !ok || ov == 0 {
				continue
			}
			change := nv/ov - 1
			bad := change > tolerance
			if rateMetric(unit) {
				bad = change < -tolerance
			}
			status := "ok   "
			if bad {
				status = "REGRESSION"
				regressions++
			}
			fmt.Printf("%s %-45s %-10s %12.4g -> %12.4g  (%+.1f%%)\n",
				status, name, unit, ov, nv, change*100)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond %.0f%% vs %s\n",
			regressions, tolerance*100, args[0])
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions beyond %.0f%% vs %s\n", tolerance*100, args[0])
}

func sortedUnits(m map[string]float64) []string {
	var out []string
	for u := range m {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func load(path string) Point {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var p Point
	if err := json.Unmarshal(data, &p); err != nil {
		fatal("%s: %v", path, err)
	}
	return p
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
