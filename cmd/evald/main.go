// Command evald is a measurement node of the distributed evaluation
// plane: a thin, stateless HTTP server that evaluates flag configurations
// on demand for a tuning controller (autotune -nodes / tuned -nodes).
//
// Usage:
//
//	evald [-addr :8426] [-node NAME] [-max-concurrent N]
//
// One POST /v1/evaluate round trip per evaluation attempt; GET /healthz
// answers the controller's heartbeats and GET /metrics serves the node's
// telemetry in Prometheus text format. A measurement is a pure function
// of the request, so nodes are interchangeable and a killed node costs
// the controller nothing but a re-dispatch. Excess load is shed with
// 429 + Retry-After once -max-concurrent evaluations are in flight.
//
// See docs/DISTRIBUTED.md for the protocol and determinism contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/evald"
)

func main() {
	var (
		addr          = flag.String("addr", ":8426", "listen address")
		node          = flag.String("node", "", "node name reported in results and /healthz (default: the listen address)")
		maxConcurrent = flag.Int("max-concurrent", 0, "in-flight evaluations before shedding with 429 (0 = GOMAXPROCS)")
		grace         = flag.Duration("grace", 5*time.Second, "shutdown grace period for in-flight evaluations")
	)
	flag.Parse()

	name := *node
	if name == "" {
		name = *addr
	}
	srv := &http.Server{Addr: *addr, Handler: evald.New(evald.Config{
		Node:          name,
		MaxConcurrent: *maxConcurrent,
	})}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("evald: node %q serving measurements on %s\n", name, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-stop:
		fmt.Printf("evald: %v — draining (grace %s)\n", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("evald: http shutdown: %v", err)
		}
	}
}
