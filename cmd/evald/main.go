// Command evald is a measurement node of the distributed evaluation
// plane: a thin, stateless HTTP server that evaluates flag configurations
// on demand for a tuning controller (autotune -nodes / tuned -nodes).
//
// Usage:
//
//	evald [-addr :8426] [-node NAME] [-max-concurrent N]
//	      [-join CONTROLLER -advertise HOST:PORT]
//	      [-tls-cert F -tls-key F -tls-ca F] [-auth-token T]
//
// One POST /v1/evaluate round trip per evaluation attempt (or up to
// dispatch.MaxBatchTrials per POST /v1/evaluate-batch); GET /healthz
// answers the controller's heartbeats and GET /metrics serves the node's
// telemetry in Prometheus text format. A measurement is a pure function
// of the request, so nodes are interchangeable and a killed node costs
// the controller nothing but a re-dispatch. Excess load is shed with
// 429 + Retry-After once -max-concurrent evaluations are in flight.
//
// With -join the node registers itself with the controller's fleet
// endpoint and re-registers periodically as its liveness lease; on
// SIGTERM it deregisters first — so the controller re-dispatches the
// remainder immediately instead of waiting out a heartbeat timeout —
// then finishes in-flight trials within -grace before exiting.
//
// -tls-cert/-tls-key/-tls-ca enable mutual TLS (the CA verifies the
// controller, the controller's CA must have signed this cert), and
// -auth-token is demanded on every evaluate request; both fail closed.
//
// See docs/DISTRIBUTED.md for the protocol and determinism contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/evald"
)

func main() {
	var (
		addr          = flag.String("addr", ":8426", "listen address")
		node          = flag.String("node", "", "node name reported in results and /healthz (default: the listen address)")
		maxConcurrent = flag.Int("max-concurrent", 0, "in-flight evaluations before shedding with 429 (0 = GOMAXPROCS)")
		grace         = flag.Duration("grace", 5*time.Second, "shutdown grace period for in-flight evaluations")
		join          = flag.String("join", "", "controller fleet endpoint to register with (host:port or URL)")
		advertise     = flag.String("advertise", "", "address controllers dial to reach this node (required with -join)")
		joinEvery     = flag.Duration("join-interval", 5*time.Second, "re-registration period; the lease is 3x this")
		tlsCert       = flag.String("tls-cert", "", "PEM certificate presented to peers (enables TLS serving)")
		tlsKey        = flag.String("tls-key", "", "PEM key for -tls-cert")
		tlsCA         = flag.String("tls-ca", "", "PEM CA bundle peers must chain to (demands client certificates)")
		authToken     = flag.String("auth-token", "", "shared bearer token demanded on evaluate requests")
	)
	flag.Parse()

	sec := &dispatch.Security{CertFile: *tlsCert, KeyFile: *tlsKey, CAFile: *tlsCA, Token: *authToken}
	name := *node
	if name == "" {
		name = *addr
	}
	srv := &http.Server{Addr: *addr, Handler: evald.New(evald.Config{
		Node:          name,
		MaxConcurrent: *maxConcurrent,
		Auth:          sec,
	})}
	tcfg, err := sec.ServerTLS()
	if err != nil {
		log.Fatalf("evald: %v", err)
	}
	srv.TLSConfig = tcfg

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	errc := make(chan error, 1)
	go func() {
		if tcfg != nil {
			// Cert and key live in TLSConfig already.
			errc <- srv.ListenAndServeTLS("", "")
			return
		}
		errc <- srv.ListenAndServe()
	}()
	fmt.Printf("evald: node %q serving measurements on %s\n", name, *addr)

	// With -join, announce ourselves to the controller and keep the lease
	// alive until drain.
	var joiner *dispatch.Joiner
	joinCtx, stopJoining := context.WithCancel(context.Background())
	defer stopJoining()
	if *join != "" {
		if *advertise == "" {
			log.Fatal("evald: -join requires -advertise (the address controllers dial)")
		}
		joiner = &dispatch.Joiner{
			Controller: *join, Advertise: *advertise, Node: *node,
			Interval: *joinEvery, Sec: sec,
		}
		if err := joiner.Register(joinCtx); err != nil {
			// Not fatal: the controller may come up after us; Run keeps
			// trying on every tick.
			log.Printf("evald: initial registration: %v", err)
		} else {
			fmt.Printf("evald: joined fleet at %s as %q\n", *join, joiner.Advertise)
		}
		go joiner.Run(joinCtx)
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-stop:
		fmt.Printf("evald: %v — draining (grace %s)\n", sig, *grace)
		// Deregister before shutting down: the controller stops placing new
		// trials here immediately and re-dispatches anything we don't
		// finish, instead of discovering the gap via heartbeat timeout.
		stopJoining()
		if joiner != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := joiner.Deregister(ctx); err != nil {
				log.Printf("evald: deregister: %v", err)
			} else {
				fmt.Println("evald: deregistered from fleet")
			}
			cancel()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("evald: http shutdown: %v", err)
		}
	}
}
