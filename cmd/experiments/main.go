// Command experiments regenerates every table and figure of the paper's
// evaluation. By default it runs everything at the paper's budget
// (200 virtual minutes per tuning session); -quick cuts the budget for a
// fast smoke run.
//
// Usage:
//
//	experiments [-run all|table1|table2|figure1|table3|figure2|figure3|table4|seedvar|scaling|robustness|noise|objectives|transfer|drift|common]
//	            [-budget minutes] [-reps n] [-seed n] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "which experiment to run")
		budget = flag.Float64("budget", 200, "tuning budget per session (virtual minutes)")
		reps   = flag.Int("reps", 3, "repetitions per measurement")
		seed   = flag.Int64("seed", 42, "random seed")
		quick  = flag.Bool("quick", false, "shrink the budget to 30 minutes for a fast pass")
		csvDir = flag.String("csv", "", "also write figure/table data as CSV files into this directory")
	)
	flag.Parse()
	if *quick {
		*budget = 30
	}
	cfg := experiments.Config{
		BudgetSeconds: *budget * 60,
		Reps:          *reps,
		Seed:          *seed,
	}
	if err := dispatch(*run, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if *csvDir != "" {
		files, err := experiments.WriteCSVDir(*csvDir, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Printf("wrote %s\n", f)
		}
	}
}

func dispatch(which string, cfg experiments.Config) error {
	all := which == "all"
	ran := false

	if all || which == "table1" {
		ran = true
		res, err := experiments.RunSuite("specjvm2008", cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSuite(res,
			"Table 1: SPECjvm2008 startup programs, default vs auto-tuned"))
		fmt.Printf("paper: average 19%%, top three 63%% / 51%% / 32%%\n")
		fmt.Printf("here:  average %.0f%%, top three %.0f%% / %.0f%% / %.0f%%\n\n",
			res.AvgImprovement, res.TopThree[0], res.TopThree[1], res.TopThree[2])
	}
	if all || which == "table2" {
		ran = true
		res, err := experiments.RunSuite("dacapo", cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSuite(res,
			"Table 2: DaCapo programs, default vs auto-tuned"))
		fmt.Printf("paper: average 26%%, maximum 42%%\n")
		fmt.Printf("here:  average %.0f%%, maximum %.0f%%\n\n",
			res.AvgImprovement, res.MaxImprovement)
	}
	if all || which == "figure1" {
		ran = true
		res, err := experiments.RunConvergence(nil, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderConvergence(res))
	}
	if all || which == "table3" {
		ran = true
		fmt.Println(experiments.RenderSpace(experiments.RunSpace()))
	}
	if all || which == "figure2" {
		ran = true
		searchers := []string{"hierarchical", "subset-hillclimb"}
		res, err := experiments.RunComparison(nil, searchers, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderComparison(res,
			"Figure 2: whole-JVM tuning vs prior-work flag subset (improvement %)",
			searchers))
	}
	if all || which == "figure3" {
		ran = true
		searchers := core.SearcherNames()
		res, err := experiments.RunComparison(nil, searchers, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderComparison(res,
			"Figure 3: search-strategy ablation under equal budget (improvement %)",
			searchers))
	}
	if all || which == "table4" {
		ran = true
		rows, err := experiments.RunBestConfigs(nil, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderBestConfigs(rows))
	}
	if all || which == "seedvar" {
		ran = true
		const seeds = 5
		rows, err := experiments.RunSeedVariance(nil, seeds, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSeedVariance(rows, seeds))
	}
	if all || which == "scaling" {
		ran = true
		rows, err := experiments.RunParallelScaling(nil, nil, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderParallelScaling(rows))
	}
	if all || which == "robustness" {
		ran = true
		rows, err := experiments.RunGeneratedRobustness(5, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderGeneratedRobustness(rows))
	}
	if all || which == "noise" {
		ran = true
		rows, err := experiments.RunNoiseSensitivity(nil, nil, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderNoiseSensitivity(rows))
	}
	if all || which == "objectives" {
		ran = true
		rows, err := experiments.RunObjectives(nil, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderObjectives(rows))
	}
	if all || which == "transfer" {
		ran = true
		rows, err := experiments.RunTransferEval(nil, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTransfer(rows))
	}
	if all || which == "drift" {
		ran = true
		rows, err := experiments.RunDriftEval(nil, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderDrift(rows))
	}
	if all || which == "common" {
		ran = true
		res, err := experiments.RunCommonConfig("dacapo", cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderCommonConfig(res))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
