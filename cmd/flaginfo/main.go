// Command flaginfo inspects the modeled HotSpot flag universe: the
// registry, a single flag's definition, or which flags the hierarchy marks
// active under a given configuration. It is the reproduction's analogue of
// java -XX:+PrintFlagsFinal.
//
// Usage:
//
//	flaginfo                          # summary counts by category and kind
//	flaginfo -flag CompileThreshold   # one flag's definition
//	flaginfo -category gc             # all flags of a category
//	flaginfo -active -- -XX:+UseG1GC  # flags active under the given args
//	flaginfo -space                   # search-space accounting (Table 3)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/flags"
	"repro/internal/hierarchy"
)

func main() {
	var (
		one      = flag.String("flag", "", "show one flag's definition")
		category = flag.String("category", "", "list flags of a category (gc, heap, jit, inline, threads, runtime, debug)")
		active   = flag.Bool("active", false, "list flags active under the java-style args after --")
		space    = flag.Bool("space", false, "print search-space accounting")
	)
	flag.Parse()

	reg := flags.NewRegistry()
	switch {
	case *one != "":
		f := reg.Lookup(*one)
		if f == nil {
			fmt.Fprintf(os.Stderr, "flaginfo: unknown flag %q\n", *one)
			os.Exit(1)
		}
		printFlag(f)
	case *category != "":
		names := reg.ByCategory(flags.Category(*category))
		if len(names) == 0 {
			fmt.Fprintf(os.Stderr, "flaginfo: no flags in category %q\n", *category)
			os.Exit(1)
		}
		for _, n := range names {
			printFlag(reg.Lookup(n))
		}
	case *active:
		cfg, err := flags.ParseArgs(reg, flag.Args())
		if err != nil {
			fmt.Fprintf(os.Stderr, "flaginfo: %v\n", err)
			os.Exit(1)
		}
		tree := hierarchy.Build(reg)
		col, err := hierarchy.SelectedCollector(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flaginfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("collector: %s\n", col)
		for _, n := range tree.ActiveFlags(cfg) {
			fmt.Println(n)
		}
	case *space:
		fmt.Println(experiments.RenderSpace(experiments.RunSpace()))
	default:
		summarize(reg)
	}
}

func printFlag(f *flags.Flag) {
	fmt.Printf("%-40s %-5s %-12s %-8s", f.Name, f.Type, f.Kind, f.Category)
	switch f.Type {
	case flags.Bool:
		fmt.Printf(" default=%v", f.Default.B)
	case flags.Int:
		fmt.Printf(" default=%d range=[%d,%d]", f.Default.I, f.Min, f.Max)
	case flags.Enum:
		fmt.Printf(" default=%s choices=%v", f.Default.S, f.Choices)
	}
	if f.Inert {
		fmt.Printf(" inert")
		if f.OverheadPct > 0 {
			fmt.Printf("(%.1f%% overhead)", f.OverheadPct*100)
		}
	}
	fmt.Printf("\n    %s\n", f.Description)
}

func summarize(reg *flags.Registry) {
	byCat := map[flags.Category]int{}
	byKind := map[flags.Kind]int{}
	tunable := 0
	for _, n := range reg.Names() {
		f := reg.Lookup(n)
		byCat[f.Category]++
		byKind[f.Kind]++
		if f.Tunable() {
			tunable++
		}
	}
	fmt.Printf("flags: %d total, %d tunable\n\nby kind:\n", reg.Len(), tunable)
	for _, k := range []flags.Kind{flags.Product, flags.Experimental, flags.Diagnostic, flags.Develop} {
		fmt.Printf("  %-13s %4d\n", k, byKind[k])
	}
	fmt.Printf("\nby category:\n")
	for _, c := range []flags.Category{flags.CatGC, flags.CatHeap, flags.CatJIT, flags.CatInline,
		flags.CatThreads, flags.CatRuntime, flags.CatDebug} {
		fmt.Printf("  %-9s %4d\n", c, byCat[c])
	}
}
