// Command jvmsim is a stand-in for the `java` launcher: it accepts
// java-style VM options and a benchmark name, runs the benchmark on the
// simulated HotSpot VM, and reports the result as JSON on stdout.
//
// Usage:
//
//	jvmsim [-XX:±Flag | -XX:Flag=value | -Xmx… | -Xms… | -Xmn… | -Xss…]... <benchmark>
//	jvmsim -list
//
// The repetition index (for the noise model) is read from the JVMSIM_REP
// environment variable. Exit status is 0 for a completed run, 1 when the
// simulated VM failed (bad flag combination, OutOfMemoryError, …) — with
// the diagnostic on stderr, as a real VM would print it — and 2 for usage
// errors.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 && args[0] == "-list" {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return 0
	}
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: jvmsim [VM options] <benchmark> | jvmsim -list")
		return 2
	}
	benchName := args[len(args)-1]
	vmArgs := args[:len(args)-1]

	prof, ok := workload.ByName(benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "jvmsim: unknown benchmark %q (try -list)\n", benchName)
		return 2
	}
	reg := flags.NewRegistry()
	cfg, err := flags.ParseArgs(reg, vmArgs)
	if err != nil {
		// Matches the real launcher: unrecognized options abort before the
		// VM starts, with no report.
		fmt.Fprintf(os.Stderr, "Unrecognized VM option. %v\nError: Could not create the Java Virtual Machine.\n", err)
		return 1
	}

	rep := 0
	if v := os.Getenv(runner.RepEnvVar); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			rep = n
		}
	}

	sim := jvmsim.New()
	res := sim.Run(cfg, prof, rep)
	// Like the real launcher, -XX:+PrintGC (or details) emits a GC log;
	// harnesses scrape it from stderr.
	if cfg.Bool("PrintGC") || cfg.Bool("PrintGCDetails") {
		fmt.Fprint(os.Stderr, jvmsim.FormatGCLog(res))
	}
	report := runner.RunReport{
		Benchmark:      prof.Name,
		Rep:            rep,
		WallSeconds:    res.WallSeconds,
		Failed:         res.Failed,
		Failure:        string(res.Failure),
		FailureMessage: res.FailureMessage,
		Collector:      res.Collector,
		GCStopSeconds:  res.GCStopSeconds,
		MaxPauseSecs:   res.MaxPauseSeconds,
		MinorGCs:       res.MinorGCs,
		FullGCs:        res.FullGCs,
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "jvmsim: %v\n", err)
		return 2
	}
	if res.Failed {
		fmt.Fprintln(os.Stderr, res.FailureMessage)
		return 1
	}
	return 0
}
