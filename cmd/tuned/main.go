// Command tuned serves the auto-tuner over HTTP: a tuning-farm front-end
// where clients submit budgeted jobs and poll for winning flag sets.
//
// Usage:
//
//	tuned [-addr :8425] [-max-concurrent 4] [-max-jobs 256] [-pprof]
//	      [-state-dir DIR] [-checkpoint-every N] [-journal-compact-bytes N]
//	      [-queue-depth N] [-client-rate R] [-client-burst B]
//	      [-nodes host:port,host:port] [-batch N]
//	      [-tls-cert F -tls-key F -tls-ca F] [-auth-token T]
//	      [-transfer-dir DIR]
//
// With -nodes, tuned is a control plane: every session's measurements are
// dispatched to that fleet of evald worker nodes over HTTP/JSON instead of
// running in-process, with work-stealing, heartbeats, and node-death
// re-dispatch — and byte-identical fixed-seed results either way. -batch
// ships up to N trials per evaluate-batch round trip (transport-only;
// results are byte-identical at any batch size), and the TLS/auth flags
// secure the fleet wire with mutual TLS plus a shared bearer token, both
// fail-closed. See docs/DISTRIBUTED.md.
//
// Under overload the farm sheds load explicitly instead of queueing without
// bound: async submissions bounce with 429 + Retry-After once -queue-depth
// jobs are waiting, and with -client-rate set each client (keyed by its
// X-Client header) gets a token bucket of R submissions per second with
// burst B. Polls and cancels are never shed — an overloaded farm stays
// steerable. See docs/OVERLOAD.md.
//
// GET /metrics serves farm metrics (queue depth, running sessions, job
// verdicts, plus each job's runner/session series in its poll responses) in
// Prometheus text format. -pprof additionally mounts the net/http/pprof
// profiling handlers under /debug/pprof/ — off by default, since profiling
// endpoints expose internals.
//
// Example session:
//
//	curl localhost:8425/v1/benchmarks
//	curl -X POST localhost:8425/v1/tune \
//	     -d '{"benchmark":"h2","budget_minutes":200}'
//	curl localhost:8425/v1/jobs/1              # poll progress and result
//	curl -X DELETE localhost:8425/v1/jobs/1    # cancel
//	curl -X POST localhost:8425/v1/measure \
//	     -d '{"benchmark":"h2","args":["-Xmx4g","-XX:+UseG1GC"]}'
//
// Jobs can opt into the deterministic fault-injection layer with the
// "chaos" option — a named scenario (GET /v1/scenarios) or a fault-plan DSL
// spec — plus "retry_attempts" to bound transient-failure retries; polls
// then report flake counts alongside progress:
//
//	curl -X POST localhost:8425/v1/tune \
//	     -d '{"benchmark":"h2","chaos":"unstable-farm","retry_attempts":4}'
//
// -transfer-dir gives the farm a cross-workload knowledge base (see
// docs/TRANSFER.md): jobs submitted with "transfer":true warm-start their
// search from the best stored configurations of the nearest workload
// fingerprints and record their winners back for later jobs; polls carry
// the warm-start provenance in result.transfer:
//
//	curl -X POST localhost:8425/v1/tune \
//	     -d '{"benchmark":"h2","transfer":true}'
//
// At most -max-concurrent tuning sessions run at once; further jobs queue.
// The job store keeps at most -max-jobs entries, evicting the oldest
// finished jobs first. SIGINT/SIGTERM trigger a graceful shutdown: running
// jobs get a grace period to finish, then are canceled.
//
// -state-dir makes the farm durable: submissions, transitions, and results
// are journaled there ahead of taking effect, and running jobs checkpoint
// their sessions (every -checkpoint-every trials). A restarted tuned
// replays the journal — finished results are served from disk, and jobs
// the dead process left queued or running are re-run, resuming mid-search
// from their checkpoints. See docs/DURABILITY.md for the recovery
// guarantees.
//
// See internal/httpapi for the full route list.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/httpapi"
)

func main() {
	var (
		addr          = flag.String("addr", ":8425", "listen address")
		maxConcurrent = flag.Int("max-concurrent", httpapi.DefaultConfig().MaxConcurrent, "tuning sessions run simultaneously")
		maxJobs       = flag.Int("max-jobs", httpapi.DefaultConfig().MaxJobs, "job store capacity (oldest finished jobs evicted first)")
		grace         = flag.Duration("grace", 30*time.Second, "shutdown grace period before running jobs are canceled")
		pprofOn       = flag.Bool("pprof", false, "serve net/http/pprof profiling handlers under /debug/pprof/")
		stateDir      = flag.String("state-dir", "", "journal jobs and checkpoint sessions here; a restart recovers them")
		ckptEvery     = flag.Int("checkpoint-every", 0, "per-job checkpoint cadence in trials with -state-dir (0 = default 8)")
		compactBytes  = flag.Int64("journal-compact-bytes", 0, "compact the farm journal past this size (0 = default 1 MiB, negative = never)")
		queueDepth    = flag.Int("queue-depth", 0, "shed async submissions with 429 once this many jobs wait (0 = max-jobs, negative = unbounded)")
		clientRate    = flag.Float64("client-rate", 0, "per-client submissions per second, keyed by X-Client (0 = unlimited)")
		clientBurst   = flag.Int("client-burst", 0, "per-client token-bucket burst (0 = max(1, ceil(client-rate)))")
		nodes         = flag.String("nodes", "", "comma-separated evald nodes (host:port); run sessions against this fleet instead of in-process")
		batch         = flag.Int("batch", 0, "trials per evaluate-batch round trip to the fleet (0 = one POST per trial)")
		tlsCert       = flag.String("tls-cert", "", "PEM certificate presented to fleet peers (mutual TLS)")
		tlsKey        = flag.String("tls-key", "", "PEM key for -tls-cert")
		tlsCA         = flag.String("tls-ca", "", "PEM CA bundle fleet peers must chain to")
		token         = flag.String("auth-token", "", "shared bearer token stamped on fleet requests")
		transferDir   = flag.String("transfer-dir", "", "cross-workload knowledge-base directory; jobs with \"transfer\":true warm-start from it and record winners into it")
	)
	flag.Parse()

	var nodeList []string
	if *nodes != "" {
		nodeList = strings.Split(*nodes, ",")
	}

	api, err := httpapi.NewDurableServer(httpapi.Config{
		MaxConcurrent:         *maxConcurrent,
		MaxJobs:               *maxJobs,
		EnablePprof:           *pprofOn,
		StateDir:              *stateDir,
		CheckpointEveryTrials: *ckptEvery,
		JournalCompactBytes:   *compactBytes,
		MaxQueueDepth:         *queueDepth,
		ClientRatePerSec:      *clientRate,
		ClientBurst:           *clientBurst,
		Nodes:                 nodeList,
		DispatchBatch:         *batch,
		TLSCert:               *tlsCert,
		TLSKey:                *tlsKey,
		TLSCA:                 *tlsCA,
		AuthToken:             *token,
		TransferDir:           *transferDir,
	})
	if err != nil {
		log.Fatalf("tuned: recovery failed: %v", err)
	}
	srv := &http.Server{Addr: *addr, Handler: api}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("tuned: serving the HotSpot auto-tuner on %s (max %d concurrent sessions, %d stored jobs)\n",
		*addr, *maxConcurrent, *maxJobs)
	if *stateDir != "" {
		fmt.Printf("tuned: durable farm state in %s (journal + per-job checkpoints)\n", *stateDir)
	}
	if *transferDir != "" {
		fmt.Printf("tuned: cross-workload knowledge base in %s (jobs opt in with \"transfer\":true)\n", *transferDir)
	}
	fmt.Printf("tuned: metrics at /metrics")
	if *pprofOn {
		fmt.Printf(", profiling at /debug/pprof/")
	}
	fmt.Println()

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-stop:
		fmt.Printf("tuned: %v — draining (grace %s)\n", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("tuned: http shutdown: %v", err)
		}
		if err := api.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("tuned: job shutdown: %v", err)
		}
		// api.Shutdown drains the telemetry collector before returning: every
		// job lifecycle event accepted so far is committed to the trace.
		fmt.Println("tuned: drained; telemetry flushed")
	}
}
