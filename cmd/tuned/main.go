// Command tuned serves the auto-tuner over HTTP: a tuning-farm front-end
// where clients submit budgeted jobs and poll for winning flag sets.
//
// Usage:
//
//	tuned [-addr :8425]
//
// Example session:
//
//	curl localhost:8425/v1/benchmarks
//	curl -X POST localhost:8425/v1/tune?sync=1 \
//	     -d '{"benchmark":"h2","budget_minutes":200}'
//	curl -X POST localhost:8425/v1/measure \
//	     -d '{"benchmark":"h2","args":["-Xmx4g","-XX:+UseG1GC"]}'
//
// See internal/httpapi for the full route list.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8425", "listen address")
	flag.Parse()
	fmt.Printf("tuned: serving the HotSpot auto-tuner on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, httpapi.NewServer()))
}
