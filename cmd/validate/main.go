// Command validate checks the reproduction's claims end to end: it runs
// every experiment at the paper's budget and verifies the shape properties
// DESIGN.md promises (who wins, by roughly what factor, where the
// crossovers fall). Exit status 0 means every claim holds.
//
// Usage:
//
//	validate [-budget minutes] [-seed n] [-v]
//
// This is the CI face of the repository: the root-level benchmarks assert
// the same properties, but validate prints a claim-by-claim report.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

type check struct {
	claim string
	ok    bool
	got   string
}

func main() {
	var (
		budget  = flag.Float64("budget", 200, "budget per tuning session (virtual minutes)")
		seed    = flag.Int64("seed", 42, "random seed")
		verbose = flag.Bool("v", false, "print measured values for passing checks too")
	)
	flag.Parse()
	cfg := experiments.Config{BudgetSeconds: *budget * 60, Reps: 3, Seed: *seed}

	checks, err := runChecks(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "validate: %v\n", err)
		os.Exit(2)
	}
	failed := 0
	for _, c := range checks {
		status := "PASS"
		if !c.ok {
			status = "FAIL"
			failed++
		}
		if c.ok && !*verbose {
			fmt.Printf("%s  %s\n", status, c.claim)
			continue
		}
		fmt.Printf("%s  %s  [%s]\n", status, c.claim, c.got)
	}
	fmt.Printf("\n%d/%d claims hold\n", len(checks)-failed, len(checks))
	if failed > 0 {
		os.Exit(1)
	}
}

func runChecks(cfg experiments.Config) ([]check, error) {
	var checks []check
	add := func(claim string, ok bool, format string, args ...any) {
		checks = append(checks, check{claim: claim, ok: ok, got: fmt.Sprintf(format, args...)})
	}

	// E1: SPECjvm2008.
	spec, err := experiments.RunSuite("specjvm2008", cfg)
	if err != nil {
		return nil, err
	}
	add("E1: SPECjvm2008 average improvement in [12%,30%] (paper: 19%)",
		spec.AvgImprovement >= 12 && spec.AvgImprovement <= 30,
		"avg %.1f%%", spec.AvgImprovement)
	add("E1: at least one startup program improves ≥50% (paper: 63%)",
		spec.TopThree[0] >= 50, "max %.1f%%", spec.TopThree[0])
	add("E1: a clear top-three exists (third ≥ 1.5× the suite median)",
		spec.TopThree[2] >= 1.5*median(improvements(spec)),
		"third %.1f%% vs median %.1f%%", spec.TopThree[2], median(improvements(spec)))

	// E2: DaCapo.
	dacapo, err := experiments.RunSuite("dacapo", cfg)
	if err != nil {
		return nil, err
	}
	add("E2: DaCapo average improvement in [15%,35%] (paper: 26%)",
		dacapo.AvgImprovement >= 15 && dacapo.AvgImprovement <= 35,
		"avg %.1f%%", dacapo.AvgImprovement)
	add("E2: DaCapo maximum improvement ≥35% (paper: 42%)",
		dacapo.MaxImprovement >= 35, "max %.1f%%", dacapo.MaxImprovement)

	// E3: convergence.
	conv, err := experiments.RunConvergence(nil, cfg)
	if err != nil {
		return nil, err
	}
	monotone, halfGain := true, true
	for i := range conv.Benchmarks {
		curve := conv.ImprovementAt[i]
		for m := 1; m < len(curve); m++ {
			if curve[m] < curve[m-1]-1e-9 {
				monotone = false
			}
		}
		if curve[7] < 0.8*curve[len(curve)-1] {
			halfGain = false
		}
	}
	add("E3: convergence curves are monotone non-decreasing", monotone, "%d curves", len(conv.Benchmarks))
	add("E3: ≥80% of the final gain is reached by minute 120", halfGain, "checked %d curves", len(conv.Benchmarks))

	// E4: search space.
	space := experiments.RunSpace()
	add("E4: the flag universe has 600+ flags (paper: 600+)",
		space.TotalFlags >= 600, "%d flags", space.TotalFlags)
	add("E4: the hierarchy cuts ≥3 orders of magnitude off the space",
		space.ReductionLog10 >= 3, "10^%.1f reduction", space.ReductionLog10)

	// E5: subset vs full.
	cmp5, err := experiments.RunComparison(nil, []string{"hierarchical", "subset-hillclimb"}, cfg)
	if err != nil {
		return nil, err
	}
	add("E5: whole-JVM tuning beats prior-work subset tuning on average",
		cmp5.AvgBySearcher["hierarchical"] > cmp5.AvgBySearcher["subset-hillclimb"],
		"%.1f%% vs %.1f%%", cmp5.AvgBySearcher["hierarchical"], cmp5.AvgBySearcher["subset-hillclimb"])
	subsetWeakOnStartup := true
	for _, row := range cmp5.Rows {
		if row.Searcher == "subset-hillclimb" && row.Benchmark == "startup.compiler.compiler" &&
			row.ImprovementPct > 15 {
			subsetWeakOnStartup = false
		}
	}
	add("E5: the subset tuner cannot fix warm-up-bound startup programs",
		subsetWeakOnStartup, "checked startup.compiler.compiler")

	// E6: searcher ablation.
	cmp6, err := experiments.RunComparison(nil, core.SearcherNames(), cfg)
	if err != nil {
		return nil, err
	}
	hier := cmp6.AvgBySearcher["hierarchical"]
	bestOther := 0.0
	for s, v := range cmp6.AvgBySearcher {
		if s != "hierarchical" && v > bestOther {
			bestOther = v
		}
	}
	add("E6: the hierarchical searcher leads (or ties) every strategy on average",
		hier >= bestOther-1, "hier %.1f%% vs best other %.1f%%", hier, bestOther)

	// E10: robustness.
	rob, err := experiments.RunGeneratedRobustness(3, cfg)
	if err != nil {
		return nil, err
	}
	never := true
	for _, r := range rob {
		if r.MinImp < 0 {
			never = false
		}
	}
	add("E10: tuning never ends worse than default on generated workloads",
		never, "%d families × 3", len(rob))

	return checks, nil
}

func improvements(s *experiments.SuiteResult) []float64 {
	out := make([]float64, len(s.Rows))
	for i, r := range s.Rows {
		out[i] = r.ImprovementPct
	}
	return out
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
