package repro

// The distributed drill: real evald processes on real sockets, driven by
// the real autotune binary, with a node SIGKILLed mid-session. This is
// the process-level acceptance check for the distributed evaluation
// plane — the fixed-seed result must be byte-identical to the purely
// in-process run, node death and re-dispatch included. (The unit-level
// equivalence matrix lives in internal/dispatch; this drill proves the
// same contract survives binaries, sockets, and a kill -9.)

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/dispatch/dispatchtest"
)

// freePorts reserves n distinct loopback ports by binding and releasing
// ephemeral listeners.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// startEvald spawns one evald node and waits until /healthz answers.
func startEvald(t *testing.T, bin, addr, name string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-node", name)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + evaldHealthPath)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("evald %s never became healthy", addr)
	return nil
}

const evaldHealthPath = "/healthz"

var evalsTotalRE = regexp.MustCompile(`evald_evaluations_total(?:\{[^}]*\})? ([0-9]+)`)

// evalsServed scrapes a node's /metrics for the evaluations counter.
func evalsServed(addr string) int {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1
	}
	m := evalsTotalRE.FindSubmatch(body)
	if m == nil {
		return 0
	}
	var n int
	fmt.Sscanf(string(m[1]), "%d", &n)
	return n
}

// TestCLIDistDrill is the end-to-end node-kill drill behind `make
// dist-drill`: three evald processes, one fixed-seed session dispatched
// across them, one node killed with SIGKILL once it has served trials —
// and the saved result plus the event trace must match the in-process
// run byte for byte.
func TestCLIDistDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	auto, evald := cliBinary(t, "autotune"), cliBinary(t, "evald")
	dir := t.TempDir()

	addrs := freePorts(t, 3)
	nodes := make([]*exec.Cmd, len(addrs))
	for i, addr := range addrs {
		nodes[i] = startEvald(t, evald, addr, fmt.Sprintf("node%d", i))
	}

	args := func(outPath, tracePath string, extra ...string) []string {
		a := []string{
			"-benchmark", "fop", "-budget", "600", "-seed", "3", "-workers", "3",
			"-out", outPath, "-trace", tracePath,
		}
		return append(a, extra...)
	}

	localOut := filepath.Join(dir, "local.json")
	localTrace := filepath.Join(dir, "local.jsonl")
	if out, err := exec.Command(auto, args(localOut, localTrace)...).CombinedOutput(); err != nil {
		t.Fatalf("in-process control run failed: %v\n%s", err, out)
	}

	distOut := filepath.Join(dir, "dist.json")
	distTrace := filepath.Join(dir, "dist.jsonl")
	dist := exec.Command(auto, args(distOut, distTrace,
		"-nodes", strings.Join(addrs, ","))...)
	var distLog strings.Builder
	dist.Stdout, dist.Stderr = &distLog, &distLog
	if err := dist.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill node 1 the moment it has served at least one trial for this
	// session, so its in-flight work has to be re-dispatched. If the
	// session outruns the poll the comparison below still holds — silent
	// re-dispatch means the bytes cannot tell either way — but we track
	// whether the kill landed mid-run so the drill reports what it proved.
	victim := addrs[1]
	served := 0
	killDeadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(killDeadline) {
		if served = evalsServed(victim); served > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if served > 0 {
		nodes[1].Process.Kill()
		nodes[1].Wait()
	}
	if err := dist.Wait(); err != nil {
		t.Fatalf("distributed run failed: %v\n%s", err, distLog.String())
	}
	if served <= 0 {
		t.Fatalf("victim node never served a trial — drill proved nothing\n%s", distLog.String())
	}
	t.Logf("killed %s after %d evaluations served", victim, served)

	for _, pair := range [][2]string{{localOut, distOut}, {localTrace, distTrace}} {
		want, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Errorf("%s and %s differ: the node kill leaked into the session bytes",
				pair[0], pair[1])
		}
	}
}

// evalsServedVia scrapes a node's /metrics through the given client and
// scheme (the authenticated drill speaks mutual TLS even to /metrics).
func evalsServedVia(client *http.Client, scheme, addr string) int {
	resp, err := client.Get(scheme + "://" + addr + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1
	}
	m := evalsTotalRE.FindSubmatch(body)
	if m == nil {
		return 0
	}
	var n int
	fmt.Sscanf(string(m[1]), "%d", &n)
	return n
}

// TestCLIDistDrillMembership is the self-healing fleet drill behind
// `make dist-drill`: a controller starts with an EMPTY fleet behind
// -fleet-listen, real evald processes join it over mutual TLS with a
// shared bearer token, one node is SIGTERMed mid-session — it deregisters
// (graceful drain) and finishes its in-flight work — and the fixed-seed
// result plus the event trace must still match the purely in-process run
// byte for byte, with the join and the drain journaled in the fleet WAL.
func TestCLIDistDrillMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	auto, evald := cliBinary(t, "autotune"), cliBinary(t, "evald")
	dir := t.TempDir()

	ca, err := dispatchtest.NewCA(dir, "drill-ca")
	if err != nil {
		t.Fatal(err)
	}
	ctrlCert, ctrlKey, err := ca.Issue(dir, "controller")
	if err != nil {
		t.Fatal(err)
	}
	nodeCert, nodeKey, err := ca.Issue(dir, "node")
	if err != nil {
		t.Fatal(err)
	}
	const token = "drill-fleet-token"

	addrs := freePorts(t, 3)
	fleetAddr, nodeAddrs := addrs[0], addrs[1:]

	args := func(outPath, tracePath string, extra ...string) []string {
		a := []string{
			"-benchmark", "fop", "-budget", "2000", "-seed", "41", "-workers", "3",
			"-out", outPath, "-trace", tracePath,
		}
		return append(a, extra...)
	}

	localOut := filepath.Join(dir, "local.json")
	localTrace := filepath.Join(dir, "local.jsonl")
	if out, err := exec.Command(auto, args(localOut, localTrace)...).CombinedOutput(); err != nil {
		t.Fatalf("in-process control run failed: %v\n%s", err, out)
	}

	distOut := filepath.Join(dir, "dist.json")
	distTrace := filepath.Join(dir, "dist.jsonl")
	fleetState := filepath.Join(dir, "fleet.wal")
	dist := exec.Command(auto, args(distOut, distTrace,
		"-fleet-listen", fleetAddr, "-fleet-state", fleetState, "-batch", "4",
		"-tls-cert", ctrlCert, "-tls-key", ctrlKey, "-tls-ca", ca.File,
		"-auth-token", token)...)
	var distLog strings.Builder
	dist.Stdout, dist.Stderr = &distLog, &distLog
	if err := dist.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if dist.Process != nil {
			dist.Process.Kill()
		}
	}()

	// Both nodes join the live controller over mTLS. The session is already
	// running against an empty fleet, held by the dynamic pool's join grace.
	nodes := make([]*exec.Cmd, len(nodeAddrs))
	for i, addr := range nodeAddrs {
		cmd := exec.Command(evald,
			"-addr", addr, "-node", fmt.Sprintf("member%d", i),
			"-join", fleetAddr, "-advertise", addr, "-join-interval", "500ms",
			"-tls-cert", nodeCert, "-tls-key", nodeKey, "-tls-ca", ca.File,
			"-auth-token", token)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		nodes[i] = cmd
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
	}

	// SIGTERM the second node the moment it has served a trial: it must
	// deregister (journaled drain) and exit cleanly, while the controller
	// re-dispatches whatever it still owed. /metrics is scraped over the
	// fleet's own mutual TLS — the drill proves the authenticated wire end
	// to end.
	sec := &dispatch.Security{CertFile: ctrlCert, KeyFile: ctrlKey, CAFile: ca.File}
	client, err := sec.HTTPClient()
	if err != nil {
		t.Fatal(err)
	}
	victim := nodeAddrs[1]
	served := 0
	killDeadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(killDeadline) {
		if served = evalsServedVia(client, sec.Scheme(), victim); served > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	drained := false
	if served > 0 {
		if err := nodes[1].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := nodes[1].Wait(); err != nil {
			t.Fatalf("SIGTERMed node exited dirty: %v", err)
		}
		drained = true
	}
	if err := dist.Wait(); err != nil {
		t.Fatalf("distributed run failed: %v\n%s", err, distLog.String())
	}
	if served <= 0 {
		t.Fatalf("victim node never served a trial — drill proved nothing\n%s", distLog.String())
	}
	t.Logf("drained %s after %d evaluations served", victim, served)

	for _, pair := range [][2]string{{localOut, distOut}, {localTrace, distTrace}} {
		want, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Errorf("%s and %s differ: membership churn leaked into the session bytes",
				pair[0], pair[1])
		}
	}

	wal, err := os.ReadFile(fleetState)
	if err != nil {
		t.Fatalf("fleet journal: %v", err)
	}
	if !bytes.Contains(wal, []byte(`"op":"join"`)) {
		t.Error("fleet journal records no join — registrations were not journaled")
	}
	if drained && !bytes.Contains(wal, []byte(`"op":"drain"`)) {
		t.Error("fleet journal records no drain — the SIGTERM deregistration was not journaled")
	}
}
