// Package repro is a Go reproduction of "Auto-Tuning the Java Virtual
// Machine" (Jayasena, Fernando, Rusira, Perera, Philips — IPDPSW 2015).
//
// The public API lives in repro/hotspot; executables in cmd/autotune
// (tune one benchmark), cmd/experiments (regenerate every table and figure
// of the paper's evaluation), cmd/jvmsim (the simulated java launcher),
// and cmd/flaginfo (inspect the 600+-flag universe). The root-level
// benchmarks in bench_test.go drive one experiment each; see DESIGN.md for
// the experiment index and EXPERIMENTS.md for paper-vs-measured results.
package repro
