// Custom workload: define your own program profile, tune it, and compare
// search strategies on it. Optionally measure through the cmd/jvmsim
// subprocess launcher instead of in-process calls:
//
//	go build -o /tmp/jvmsim ./cmd/jvmsim   # then:
//	go run ./examples/custom -jvmsim /tmp/jvmsim
//
// The subprocess path exercises exactly what tuning a real `java` looks
// like: render -XX: flags, launch, scrape the result, handle crashes.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/hotspot"
)

func main() {
	jvmsim := flag.String("jvmsim", "", "path to a jvmsim binary (optional; enables subprocess mode)")
	budget := flag.Float64("budget", 60, "tuning budget (virtual minutes)")
	flag.Parse()

	// A latency-sensitive cache service: allocation-heavy, big live set,
	// contended locks — the kind of deployment people hand-tune for weeks.
	service := &hotspot.Profile{
		Name:        "cache-service",
		Suite:       "custom",
		Description: "in-memory cache service under a read-mostly load",

		BaseSeconds:     30,
		StartupFraction: 0.1,

		WarmupWork: 0.7, HotMethods: 1500, CodeKBPerMethod: 1.8,
		CallIntensity: 0.65, LoopIntensity: 0.2, EscapeFrac: 0.3,

		AllocRateMBps: 150, LiveSetMB: 190,
		ShortLivedFrac: 0.85, MidLivedFrac: 0.09,
		MidLifeRounds: 4, EdenHalfLifeMB: 70,
		LargeObjectFrac: 0.03,

		PointerIntensity: 0.7, RefIntensity: 0.2, StringIntensity: 0.4,
		SyncIntensity: 0.6, LockContention: 0.25,
		AppThreads: 8,
	}

	for _, searcher := range []string{"hierarchical", "subset-hillclimb"} {
		res, err := hotspot.Tune(hotspot.Options{
			Workload:      service,
			Searcher:      searcher,
			BudgetMinutes: *budget,
			Seed:          7,
			Noise:         -1,
			JVMSimPath:    *jvmsim,
		})
		if err != nil {
			log.Fatal(err)
		}
		mode := "in-process"
		if *jvmsim != "" {
			mode = "subprocess via " + *jvmsim
		}
		fmt.Printf("%s (%s):\n", searcher, mode)
		fmt.Printf("  %.2fs → %.2fs  (%.1f%% better), collector %s, %d trials\n",
			res.DefaultWall, res.BestWall, res.ImprovementPct, res.Collector, res.Trials)
		fmt.Printf("  flags:")
		for _, a := range res.CommandLine {
			fmt.Printf(" %s", a)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("note how the fixed-subset tuner cannot switch collector or JIT mode —")
	fmt.Println("the gap between the two lines is the paper's whole-JVM argument.")
}
