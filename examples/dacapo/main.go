// DaCapo sweep: tune the 13 DaCapo programs and print a Table-2-style
// summary. Unlike the startup suite, these are GC-bound, so watch the
// winning collector and heap choices.
//
//	go run ./examples/dacapo [-budget 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/hotspot"
)

func main() {
	budget := flag.Float64("budget", 200, "tuning budget per program (virtual minutes)")
	flag.Parse()

	suite, err := hotspot.Suite("dacapo")
	if err != nil {
		log.Fatal(err)
	}

	results := make([]*hotspot.Result, len(suite))
	var wg sync.WaitGroup
	for i, p := range suite {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			res, err := hotspot.Tune(hotspot.Options{
				Benchmark:     name,
				BudgetMinutes: *budget,
				Seed:          int64(100 + i),
			})
			if err != nil {
				log.Printf("%s: %v", name, err)
				return
			}
			results[i] = res
		}(i, p.Name)
	}
	wg.Wait()

	fmt.Printf("%-12s %10s %10s %12s %9s  %s\n",
		"benchmark", "default(s)", "tuned(s)", "improvement", "GC", "key flags")
	var sum, max float64
	for _, r := range results {
		if r == nil {
			continue
		}
		// Show the first few winning flags; the full line can be long.
		flags := ""
		for i, a := range r.CommandLine {
			if i == 3 {
				flags += " …"
				break
			}
			if i > 0 {
				flags += " "
			}
			flags += a
		}
		fmt.Printf("%-12s %10.2f %10.2f %11.1f%% %9s  %s\n",
			r.Benchmark, r.DefaultWall, r.BestWall, r.ImprovementPct, r.Collector, flags)
		sum += r.ImprovementPct
		if r.ImprovementPct > max {
			max = r.ImprovementPct
		}
	}
	fmt.Printf("\naverage improvement: %.1f%%   maximum: %.1f%%  (paper: 26%% avg, 42%% max)\n",
		sum/float64(len(suite)), max)
}
