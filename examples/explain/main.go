// Explain: the full post-tuning workflow — tune, attribute the win to
// individual flags, prune the passengers, and archive the result.
//
//	go run ./examples/explain
//
// Tuned configurations always accumulate flags that ride along on noise;
// before deploying one you want to know which of the 15 changed flags
// actually matter. Explain reverts each flag individually and re-measures;
// Minimize then prunes everything that costs less than 1%.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/hotspot"
)

func main() {
	result, err := hotspot.Tune(hotspot.Options{
		Benchmark:     "startup.xml.validation",
		BudgetMinutes: 120,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned %s: %.1f%% faster with %d flags changed\n\n",
		result.Benchmark, result.ImprovementPct, len(result.CommandLine))

	// 1. Attribution: what is each flag worth?
	contribs, err := hotspot.Explain(result, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flag attribution (slowdown when reverted):")
	for _, c := range contribs {
		if !c.Reverted {
			fmt.Printf("  %-38s %s   (structurally required)\n", c.Name+"="+c.Value, "")
			continue
		}
		fmt.Printf("  %-38s %+6.1f%%\n", c.Name+"="+c.Value, c.DeltaPct)
	}

	// 2. Minimization: the deployable subset.
	_, minimalArgs, err := hotspot.Minimize(result, nil, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimal configuration (%d of %d flags survive):\n  java",
		len(minimalArgs), len(result.CommandLine))
	for _, a := range minimalArgs {
		fmt.Printf(" %s", a)
	}
	fmt.Println()

	// 3. Archive the session for later comparison.
	path := filepath.Join(os.TempDir(), "xml-validation-tuned.json")
	if err := result.Save(path); err != nil {
		log.Fatal(err)
	}
	saved, cfg, err := hotspot.LoadResult(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchived to %s (%.1f%% improvement, config key %q)\n",
		path, saved.ImprovementPct, cfg.Key())
}
