// Quickstart: tune one benchmark and print the winning JVM flags.
//
//	go run ./examples/quickstart
//
// This is the smallest end-to-end use of the public API: pick a built-in
// benchmark, run a (shortened) tuning session, and read the result.
package main

import (
	"fmt"
	"log"

	"repro/hotspot"
)

func main() {
	// The paper tuned each program for up to 200 minutes; 30 virtual
	// minutes is plenty to see the headline effect and runs in well under a
	// second of real time.
	result, err := hotspot.Tune(hotspot.Options{
		Benchmark:     "startup.compiler.compiler",
		BudgetMinutes: 30,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tuned %s with the %s searcher\n", result.Benchmark, result.Searcher)
	fmt.Printf("  default configuration: %6.2fs\n", result.DefaultWall)
	fmt.Printf("  tuned configuration:   %6.2fs\n", result.BestWall)
	fmt.Printf("  improvement:           %6.1f%%  (%.2fx)\n", result.ImprovementPct, result.Speedup)
	fmt.Printf("  trials: %d   virtual tuning time: %.0f min\n", result.Trials, result.ElapsedMinutes)
	fmt.Println("\nrun it yourself with:")
	fmt.Print("  java")
	for _, arg := range result.CommandLine {
		fmt.Printf(" %s", arg)
	}
	fmt.Println(" -jar SPECjvm2008.jar startup.compiler.compiler")
}
