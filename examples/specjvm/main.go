// SPECjvm2008 sweep: tune every startup program and print a Table-1-style
// summary — the paper's headline experiment from the public API.
//
//	go run ./examples/specjvm [-budget 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/hotspot"
)

func main() {
	budget := flag.Float64("budget", 200, "tuning budget per program (virtual minutes)")
	flag.Parse()

	suite, err := hotspot.Suite("specjvm2008")
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name            string
		def, tuned, imp float64
		collector       string
		trials          int
	}
	rows := make([]row, len(suite))

	// Sessions are independent; tune the whole suite in parallel.
	var wg sync.WaitGroup
	for i, p := range suite {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			res, err := hotspot.Tune(hotspot.Options{
				Benchmark:     name,
				BudgetMinutes: *budget,
				Seed:          int64(i + 1),
			})
			if err != nil {
				log.Printf("%s: %v", name, err)
				return
			}
			rows[i] = row{name, res.DefaultWall, res.BestWall, res.ImprovementPct,
				res.Collector, res.Trials}
		}(i, p.Name)
	}
	wg.Wait()

	sort.Slice(rows, func(i, j int) bool { return rows[i].imp > rows[j].imp })
	fmt.Printf("%-30s %10s %10s %12s %9s %7s\n",
		"benchmark", "default(s)", "tuned(s)", "improvement", "GC", "trials")
	var sum float64
	for _, r := range rows {
		fmt.Printf("%-30s %10.2f %10.2f %11.1f%% %9s %7d\n",
			r.name, r.def, r.tuned, r.imp, r.collector, r.trials)
		sum += r.imp
	}
	fmt.Printf("\naverage improvement: %.1f%%  (paper: 19%% avg; 63/51/32%% top three)\n",
		sum/float64(len(rows)))
}
