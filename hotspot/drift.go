package hotspot

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/faultinject"
	"repro/internal/jvmsim"
)

// Epoch summarizes one tuning epoch of a drift-enabled session (see
// docs/DRIFT.md). Epoch 0 is the pre-drift search; each confirmed workload
// drift closes the current epoch and opens the next, demoting the stale
// winner and re-tuning for the new regime. The last epoch is closed by
// session end and carries no drift provenance.
type Epoch struct {
	// Epoch is the 0-based epoch index; Phase the workload phase the epoch
	// closed under (0 = the base profile).
	Epoch int `json:"epoch"`
	Phase int `json:"phase"`
	// Trials is the number of measurements delivered during the epoch.
	Trials int `json:"trials"`
	// BestWall and CommandLine describe the epoch's best configuration at
	// close — for a drift-closed epoch, the best of the regime that ended.
	BestWall    float64  `json:"best_wall"`
	CommandLine []string `json:"command_line,omitempty"`
	// Drift provenance: the confirmation that closed this epoch. DriftTrial
	// is the session trial of the confirming observation, DriftScore the
	// observed score, DriftStat the Page–Hinkley statistic at confirmation.
	// All zero when the epoch was closed by session end, not drift.
	DriftTrial int     `json:"drift_trial,omitempty"`
	DriftScore float64 `json:"drift_score,omitempty"`
	DriftStat  float64 `json:"drift_stat,omitempty"`
	// StaleWall is the score the demoted pre-drift incumbent held when this
	// epoch inherited it; 0 for epoch 0, which starts from the baseline.
	StaleWall float64 `json:"stale_wall,omitempty"`
}

// epochsFromOutcome maps the engine's per-epoch outcomes to the public form.
func epochsFromOutcome(out *core.Outcome) []Epoch {
	if len(out.Epochs) == 0 {
		return nil
	}
	eps := make([]Epoch, len(out.Epochs))
	for i, eo := range out.Epochs {
		eps[i] = Epoch{
			Epoch:      eo.Epoch,
			Phase:      eo.Phase,
			Trials:     eo.Trials,
			BestWall:   eo.BestScore,
			DriftTrial: eo.DriftTrial,
			DriftScore: eo.DriftScore,
			DriftStat:  eo.DriftStat,
			StaleWall:  eo.StaleScore,
		}
		if eo.Best != nil {
			eps[i].CommandLine = eo.Best.CommandLine()
		}
	}
	return eps
}

// driftSchedule extracts the chaos plan's drift-at triggers into the
// session's phase schedule. Like the crash point, drift-at is a
// session-level trigger, not a measurement fault: the plan's copy is
// cleared so the measurement layer never sees it.
func driftSchedule(plan *faultinject.Plan) *jvmsim.PhaseSchedule {
	at := plan.DriftAtTrials
	plan.DriftAtTrials = nil
	return jvmsim.DefaultSchedule(at)
}

// driftConfig maps the public sensitivity knob onto the detector: the
// Page–Hinkley decision threshold is the calibrated default divided by the
// sensitivity, so 1 (or unset) is the calibrated default, 2 fires on half
// the evidence, 0.5 needs twice as much.
func driftConfig(opts Options) (drift.Config, error) {
	s := opts.DriftSensitivity
	if s == 0 {
		s = 1
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return drift.Config{}, fmt.Errorf("hotspot: DriftSensitivity must be positive and finite, got %v", opts.DriftSensitivity)
	}
	return drift.Config{Lambda: drift.DefaultLambda / s}, nil
}
