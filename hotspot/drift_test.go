package hotspot

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/transfer"
	"repro/internal/workload"
)

// TestTuneDriftOpensEpoch is the facade-level acceptance check: Tune with
// Options.Drift and a chaos plan that schedules the shift produces a result
// whose per-epoch breakdown carries the drift provenance, and the reported
// best is the post-drift regime's.
func TestTuneDriftOpensEpoch(t *testing.T) {
	res, err := Tune(Options{
		Benchmark:     "xalan",
		BudgetMinutes: 150,
		Seed:          7,
		Workers:       3,
		Noise:         -1,
		Drift:         true,
		Chaos:         "drift-at=40",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) < 2 {
		t.Fatalf("drifting session opened no re-tuning epoch: %d epochs", len(res.Epochs))
	}
	first := res.Epochs[0]
	// Epoch.Phase is the phase the epoch CLOSED under: the pre-drift epoch
	// closes only once the detector confirms, a few trials after the shift.
	if first.Epoch != 0 || first.Phase != 1 {
		t.Fatalf("first epoch should close under the post-shift phase: %+v", first)
	}
	if first.DriftTrial <= 40 || first.DriftStat <= 0 || first.DriftScore <= 0 {
		t.Fatalf("epoch 0 closed without drift provenance past the shift at 40: %+v", first)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.DriftTrial != 0 || last.DriftStat != 0 {
		t.Fatalf("final epoch carries drift provenance: %+v", last)
	}
	if last.Phase == 0 || last.StaleWall <= 0 {
		t.Fatalf("final epoch missing the demoted incumbent's context: %+v", last)
	}
	if len(last.CommandLine) == 0 {
		t.Fatalf("final epoch's best should render to a command line: %+v", last)
	}
	if res.BestWall != last.BestWall {
		t.Fatalf("session best %.4f != final epoch best %.4f", res.BestWall, last.BestWall)
	}
}

// TestTuneDriftScenarioDeterministic: the named drift-midrun scenario arms
// the same schedule, and two identical sessions agree byte-for-byte on the
// epoch breakdown.
func TestTuneDriftScenarioDeterministic(t *testing.T) {
	opts := Options{
		Benchmark:     "xalan",
		BudgetMinutes: 150,
		Seed:          7,
		Workers:       3,
		Noise:         -1,
		Drift:         true,
		Chaos:         "drift-midrun",
	}
	a, err := Tune(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Epochs) < 2 {
		t.Fatalf("drift-midrun opened no epoch: %d", len(a.Epochs))
	}
	b, err := Tune(opts)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Epochs)
	jb, _ := json.Marshal(b.Epochs)
	if string(ja) != string(jb) {
		t.Fatalf("epochs diverged across identical sessions:\n%s\n%s", ja, jb)
	}
	if a.BestWall != b.BestWall || a.Best.Key() != b.Best.Key() {
		t.Fatal("identical drifting sessions must reproduce the outcome")
	}
}

// TestTuneDriftObliviousKeepsQuiet: a scheduled shift without the detector
// armed still tunes (the workload just degrades) and reports no epochs —
// and an armed detector on a stationary workload never fires.
func TestTuneDriftObliviousKeepsQuiet(t *testing.T) {
	res, err := Tune(Options{
		Benchmark: "fop", BudgetMinutes: 100, Seed: 3, Noise: -1,
		Chaos: "drift-at=30",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != nil {
		t.Fatalf("detector-off session reported epochs: %+v", res.Epochs)
	}
	armed, err := Tune(Options{
		Benchmark: "fop", BudgetMinutes: 100, Seed: 3, Noise: -1,
		Drift: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(armed.Epochs) != 1 {
		t.Fatalf("stationary armed session should report exactly its single epoch: %+v", armed.Epochs)
	}
	if e := armed.Epochs[0]; e.DriftTrial != 0 || e.StaleWall != 0 {
		t.Fatalf("stationary epoch carries drift provenance: %+v", e)
	}
}

// TestDriftOptionValidation: malformed drift options fail fast with clear
// errors instead of tuning with a misconfigured detector.
func TestDriftOptionValidation(t *testing.T) {
	if _, err := Tune(Options{Benchmark: "fop", DriftSensitivity: 2}); err == nil ||
		!strings.Contains(err.Error(), "requires Drift") {
		t.Errorf("DriftSensitivity without Drift: %v", err)
	}
	if _, err := Tune(Options{Benchmark: "fop", Drift: true, DriftSensitivity: -1}); err == nil ||
		!strings.Contains(err.Error(), "positive") {
		t.Errorf("negative DriftSensitivity: %v", err)
	}
}

// TestTuneCommonRejectsDrift: suite-common tuning has no single workload to
// drift, so both the option and a drift-scheduling chaos plan are rejected.
func TestTuneCommonRejectsDrift(t *testing.T) {
	suite, _ := Suite("dacapo")
	if _, err := TuneCommon(suite[:2], Options{Drift: true}); err == nil ||
		!strings.Contains(err.Error(), "single-workload") {
		t.Errorf("TuneCommon with Drift: %v", err)
	}
	if _, err := TuneCommon(suite[:2], Options{Chaos: "drift-at=10"}); err == nil ||
		!strings.Contains(err.Error(), "single-workload") {
		t.Errorf("TuneCommon with drift-at chaos: %v", err)
	}
}

// TestResultDegradedJSONTags pins the poll-visibility bugfix: degradation
// state serializes under snake_case keys like every other Result field, and
// pre-fix JSON (PascalCase keys, as journaled by older farm builds) still
// decodes — Go's case folding covers "Degraded" but NOT "DegradedReason",
// which is exactly the field that used to vanish on replay.
func TestResultDegradedJSONTags(t *testing.T) {
	r := Result{Degraded: true, DegradedReason: "wall-clock budget exhausted"}
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"degraded":true`) ||
		!strings.Contains(string(b), `"degraded_reason":"wall-clock budget exhausted"`) {
		t.Fatalf("snake_case keys missing: %s", b)
	}
	var rt Result
	if err := json.Unmarshal(b, &rt); err != nil {
		t.Fatal(err)
	}
	if !rt.Degraded || rt.DegradedReason != r.DegradedReason {
		t.Fatalf("round trip lost degradation state: %+v", rt)
	}

	legacy := []byte(`{"benchmark":"h2","Degraded":true,"DegradedReason":"session canceled"}`)
	var lr Result
	if err := json.Unmarshal(legacy, &lr); err != nil {
		t.Fatal(err)
	}
	if !lr.Degraded || lr.DegradedReason != "session canceled" {
		t.Fatalf("legacy PascalCase keys not honored: %+v", lr)
	}

	// New keys win over stale legacy ones when both appear.
	mixed := []byte(`{"degraded_reason":"new","DegradedReason":"old"}`)
	var mr Result
	if err := json.Unmarshal(mixed, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.DegradedReason != "new" {
		t.Fatalf("legacy key overrode the current one: %+v", mr)
	}
}

// TestDriftTransferRecordsEpochWinners: a drift session over a knowledge
// base files each drift-opened epoch's winner under the SHIFTED profile's
// fingerprint, and the per-epoch warm-start hook finds it again.
func TestDriftTransferRecordsEpochWinners(t *testing.T) {
	dir := t.TempDir()
	res, err := Tune(Options{
		Benchmark:     "xalan",
		BudgetMinutes: 150,
		Seed:          7,
		Workers:       3,
		Noise:         -1,
		Drift:         true,
		Chaos:         "drift-at=40",
		TransferDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) < 2 {
		t.Fatalf("no re-tuning epoch opened: %d", len(res.Epochs))
	}
	x := res.Transfer
	if x == nil || !x.Recorded {
		t.Fatalf("session winner not recorded: %+v", x)
	}
	if x.EpochRecords < 1 {
		t.Fatalf("drift session recorded no per-epoch winners: %+v", x)
	}

	// The store now answers for the shifted regime: the nearest stored
	// fingerprint to the post-shift profile is that profile itself.
	base, _ := workload.ByName("xalan")
	shifted, err := jvmsim.DefaultSchedule([]int{40}).ProfileAt(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := transfer.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 1+x.EpochRecords {
		t.Fatalf("store holds %d entries, want session record + %d epoch records", st.Len(), x.EpochRecords)
	}
	near := st.Nearest(transfer.FingerprintOf(shifted), 1)
	if len(near) == 0 || near[0].Distance != 0 {
		t.Fatalf("shifted-profile fingerprint not in the store: %+v", near)
	}

	// The epoch-prior hook resolves the same lookup for a later session.
	reg := flags.NewRegistry()
	ts := transferSetup(Options{TransferDir: dir}, base, reg)
	if ts.store == nil {
		t.Fatal("store reopen failed")
	}
	defer ts.store.Close()
	hook := ts.epochPriors(reg, base, jvmsim.DefaultSchedule([]int{40}), 3)
	if hook == nil {
		t.Fatal("epochPriors hook nil with an open store")
	}
	priors := hook(1, 1)
	if len(priors) == 0 {
		t.Fatal("no priors for the shifted regime despite a stored epoch winner")
	}
	for _, p := range priors {
		if p.Cfg == nil || p.Norm <= 0 {
			t.Fatalf("malformed prior: %+v", p)
		}
	}
	// Out-of-range phases degrade to no priors — not to the base profile's
	// (ProfileAt rejects phases the schedule does not define).
	if got := hook(2, 99); got != nil {
		t.Fatalf("out-of-range phase yielded priors: %+v", got)
	}
}

// TestDriftEpochsPersist: the saved outcome of a drift session carries the
// epoch breakdown, and a stationary session's archive stays free of the key
// (byte-compatibility with pre-drift archives).
func TestDriftEpochsPersist(t *testing.T) {
	res, err := Tune(Options{
		Benchmark: "fop", BudgetMinutes: 100, Seed: 5, Workers: 2, Noise: -1,
		Drift: true, Chaos: "drift-at=30",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) < 2 {
		t.Fatalf("no epoch opened: %d", len(res.Epochs))
	}
	saved := res.saved()
	if len(saved.Epochs) == 0 {
		t.Fatal("saved outcome dropped the epoch breakdown")
	}
	var eps []Epoch
	if err := json.Unmarshal(saved.Epochs, &eps); err != nil {
		t.Fatal(err)
	}
	if len(eps) != len(res.Epochs) || eps[0].DriftTrial != res.Epochs[0].DriftTrial {
		t.Fatalf("saved epochs diverge from the result's: %+v vs %+v", eps, res.Epochs)
	}

	plain, err := Tune(Options{Benchmark: "fop", BudgetMinutes: 60, Seed: 5, Noise: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(plain.saved())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"epochs"`) {
		t.Fatalf("stationary archive grew an epochs key: %s", b)
	}
}
