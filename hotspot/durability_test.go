package hotspot

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resultBytes flattens a result for byte comparison.
func resultBytes(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// crashTune runs a session armed with a crash-at fault and swallows the
// SessionCrash kill, leaving the checkpoint on disk — one life of the
// kill-and-resume drill.
func crashTune(t *testing.T, opts Options, at string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(SessionCrash); !ok {
			panic(r)
		}
	}()
	if opts.Chaos == "" {
		opts.Chaos = at
	} else {
		opts.Chaos += "," + at
	}
	if _, err := Tune(opts); err != nil {
		t.Fatalf("crash run failed before the kill: %v", err)
	}
	t.Fatalf("%s never fired — session finished", at)
}

// TestKillAndResumeMatrix is the crash drill across every search strategy:
// for each searcher a fixed-seed session is killed mid-run by the crash-at
// fault, resumed from its checkpoint, and must converge to the
// byte-identical result of the uninterrupted run. One extra case runs the
// drill under an active chaos plan, proving the fault-injection state
// machine survives the crash too.
func TestKillAndResumeMatrix(t *testing.T) {
	type tc struct {
		searcher string
		chaos    string
	}
	cases := make([]tc, 0, len(Searchers())+1)
	for _, s := range Searchers() {
		cases = append(cases, tc{searcher: s})
	}
	cases = append(cases, tc{searcher: "hillclimb", chaos: "launch=0.1,spike=0.2"})

	for _, c := range cases {
		name := c.searcher
		if c.chaos != "" {
			name += "+chaos"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opts := Options{
				Benchmark:     "fop",
				Searcher:      c.searcher,
				BudgetMinutes: 8,
				Seed:          23,
				Workers:       2,
				Noise:         -1,
				Chaos:         c.chaos,
			}
			control, err := Tune(opts)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			durable := opts
			durable.CheckpointPath = filepath.Join(dir, "session.ckpt")
			durable.CheckpointEveryTrials = 1
			crashTune(t, durable, "crash-at=6")
			if _, err := os.Stat(durable.CheckpointPath); err != nil {
				t.Fatalf("no checkpoint after the kill: %v", err)
			}

			durable.Resume = true
			resumed, err := Tune(durable)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			got, want := resultBytes(t, resumed), resultBytes(t, control)
			if got != want {
				t.Fatalf("resumed result differs from uninterrupted run:\nresumed:       %s\nuninterrupted: %s", got, want)
			}
		})
	}
}

// TestResumeRequiresCheckpointPath pins the CLI contract: -resume without
// -checkpoint is a usage error, not a silent fresh start.
func TestResumeRequiresCheckpointPath(t *testing.T) {
	_, err := Tune(Options{Benchmark: "fop", BudgetMinutes: 5, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "Resume requires CheckpointPath") {
		t.Fatalf("resume without a path = %v, want usage error", err)
	}
}

// TestResumeFromMissingCheckpointStartsFresh: pointing -resume at a file
// that does not exist yet is a fresh start — the idiom `autotune
// -checkpoint X -resume` works on the first run and every run after.
func TestResumeFromMissingCheckpointStartsFresh(t *testing.T) {
	opts := Options{Benchmark: "fop", Searcher: "random", BudgetMinutes: 5, Seed: 4, Noise: -1}
	control, err := Tune(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.CheckpointPath = filepath.Join(t.TempDir(), "never-written.ckpt")
	opts.Resume = true
	fresh, err := Tune(opts)
	if err != nil {
		t.Fatal(err)
	}
	if resultBytes(t, fresh) != resultBytes(t, control) {
		t.Fatal("fresh start under -resume diverged from a plain run")
	}
}
