package hotspot_test

import (
	"fmt"

	"repro/hotspot"
)

// The quickest possible use: tune a built-in benchmark and print the win.
// (Zero noise and a fixed seed make the output stable for godoc.)
func ExampleTune() {
	result, err := hotspot.Tune(hotspot.Options{
		Benchmark:     "startup.compiler.compiler",
		BudgetMinutes: 30,
		Seed:          1,
		Noise:         0,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("improved by more than 50%%: %v\n", result.ImprovementPct > 50)
	fmt.Printf("winner enables tiered compilation: %v\n", result.Best.Bool("TieredCompilation"))
	// Output:
	// improved by more than 50%: true
	// winner enables tiered compilation: true
}

// Measure evaluates one flag combination without any tuning.
func ExampleMeasure() {
	def, _ := hotspot.Measure(nil, "h2", 0)
	big, _ := hotspot.Measure([]string{"-Xmx4g", "-Xms4g"}, "h2", 0)
	fmt.Printf("a 4 GB heap helps h2: %v\n", big < def)

	_, err := hotspot.Measure([]string{"-Xmx128m"}, "h2", 0)
	fmt.Printf("a 128 MB heap: %v\n", err != nil)
	// Output:
	// a 4 GB heap helps h2: true
	// a 128 MB heap: true
}

// Suites expose the paper's benchmark sets.
func ExampleSuite() {
	spec, _ := hotspot.Suite("specjvm2008")
	dacapo, _ := hotspot.Suite("dacapo")
	fmt.Printf("%d startup programs, %d DaCapo programs\n", len(spec), len(dacapo))
	// Output:
	// 16 startup programs, 13 DaCapo programs
}

// Searchers lists the available strategies, the paper's tuner first.
func ExampleSearchers() {
	fmt.Println(hotspot.Searchers()[0])
	// Output:
	// hierarchical
}
