package hotspot

import (
	"fmt"
	"strings"

	"repro/internal/jvmsim"
)

// GCLogStats summarizes a -XX:+PrintGC-style log: the observable facts a
// profile can be estimated from.
type GCLogStats struct {
	MinorGCs        int
	FullGCs         int
	StopSeconds     float64
	RunSeconds      float64 // last timestamp
	HeapMB          float64 // total heap from the (...K) capacity fields
	YoungMB         float64 // estimated from minor-GC before-sizes
	LiveMB          float64 // estimated from full-GC after-sizes
	AllocRateMBps   float64 // young allocation churn per second
	GCOverheadFrac  float64
	MeanMinorPause  float64
	WorstPauseMilli float64
}

// ProfileFromGCLog estimates a workload profile from a GC log plus the
// program's approximate run time — the adoption path for tuning a real
// application: capture one -XX:+PrintGC log under default flags, import
// it, tune the synthetic twin, and try the winning flags on the real JVM.
//
// Only allocation- and heap-related parameters can be observed in a GC
// log; JIT-side parameters default to a moderate server shape. name labels
// the resulting profile.
func ProfileFromGCLog(name, log string, runSeconds float64) (*Profile, *GCLogStats, error) {
	if runSeconds <= 0 {
		return nil, nil, fmt.Errorf("hotspot: runSeconds must be positive")
	}
	stats, err := ParseGCLog(log)
	if err != nil {
		return nil, nil, err
	}
	if stats.MinorGCs == 0 && stats.FullGCs == 0 {
		return nil, nil, fmt.Errorf("hotspot: log contains no collections; nothing to estimate")
	}
	if stats.RunSeconds > runSeconds {
		runSeconds = stats.RunSeconds
	}

	live := stats.LiveMB
	if live == 0 {
		// No full GCs: bound the live set by what minor GCs retained.
		live = stats.HeapMB * 0.15
	}
	p := &Profile{
		Name:        name,
		Suite:       "imported",
		Description: "profile estimated from a GC log",

		BaseSeconds:     runSeconds * (1 - stats.GCOverheadFrac),
		StartupFraction: 0.15,

		// JIT-side parameters are unobservable in a GC log; use a moderate
		// server shape.
		WarmupWork: 0.02 * runSeconds, HotMethods: 1500, CodeKBPerMethod: 1.8,
		CallIntensity: 0.6, LoopIntensity: 0.2, EscapeFrac: 0.25,

		AllocRateMBps: stats.AllocRateMBps,
		LiveSetMB:     live,
		ClassMetaMB:   40,

		ShortLivedFrac: 0.88, MidLivedFrac: 0.07,
		MidLifeRounds: 3, EdenHalfLifeMB: maxf(20, stats.YoungMB/4),
		PointerIntensity: 0.6, RefIntensity: 0.1, StringIntensity: 0.3,
		SyncIntensity: 0.3, LockContention: 0.1,
		AppThreads: 4,
	}
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("hotspot: estimated profile invalid: %w", err)
	}
	return p, stats, nil
}

// ParseGCLog extracts summary statistics from a -XX:+PrintGC-style log.
func ParseGCLog(log string) (*GCLogStats, error) {
	s := &GCLogStats{}
	var youngBeforeSum, liveAfterSum, minorPauseSum float64
	var youngAlloc float64
	var firstT, lastT float64
	first := true

	for _, line := range strings.Split(strings.TrimSpace(log), "\n") {
		if line == "" {
			continue
		}
		var t, before, after, total, secs float64
		full := false
		if n, _ := fmt.Sscanf(line, "%f: [Full GC %fK->%fK(%fK), %f secs]",
			&t, &before, &after, &total, &secs); n == 5 {
			full = true
		} else if n, _ := fmt.Sscanf(line, "%f: [GC %fK->%fK(%fK), %f secs]",
			&t, &before, &after, &total, &secs); n != 5 {
			return nil, fmt.Errorf("hotspot: unparseable GC log line %q", line)
		}
		if first {
			firstT, first = t, false
		}
		lastT = t
		s.StopSeconds += secs
		s.HeapMB = total / 1024
		if secs*1000 > s.WorstPauseMilli {
			s.WorstPauseMilli = secs * 1000
		}
		if full {
			s.FullGCs++
			liveAfterSum += after / 1024
		} else {
			s.MinorGCs++
			youngBeforeSum += before / 1024
			youngAlloc += (before - after) / 1024
			minorPauseSum += secs
		}
	}
	if s.MinorGCs > 0 {
		s.YoungMB = youngBeforeSum / float64(s.MinorGCs)
		s.MeanMinorPause = minorPauseSum / float64(s.MinorGCs)
	}
	if s.FullGCs > 0 {
		s.LiveMB = liveAfterSum / float64(s.FullGCs)
	}
	s.RunSeconds = lastT
	if span := lastT - firstT; span > 0 {
		s.AllocRateMBps = youngAlloc / span
	}
	if s.RunSeconds > 0 {
		s.GCOverheadFrac = clampf(s.StopSeconds/s.RunSeconds, 0, 0.9)
	}
	return s, nil
}

// TuneFromGCLog is the one-call adoption path: estimate a profile from the
// log and tune it.
func TuneFromGCLog(name, log string, runSeconds float64, opts Options) (*Result, *GCLogStats, error) {
	p, stats, err := ProfileFromGCLog(name, log, runSeconds)
	if err != nil {
		return nil, nil, err
	}
	opts.Workload = p
	res, err := Tune(opts)
	if err != nil {
		return nil, nil, err
	}
	return res, stats, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// formatGCLogForTest re-exports the simulator's log synthesizer so the
// import path can be tested against logs of the same dialect.
var formatGCLogForTest = jvmsim.FormatGCLog
