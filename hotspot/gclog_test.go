package hotspot

import (
	"strings"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/workload"
)

// sampleLog synthesizes a GC log by running a known workload on the
// simulator — the same dialect a real -XX:+PrintGC produces.
func sampleLog(t *testing.T, bench string) (string, float64) {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no workload %s", bench)
	}
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	r := sim.Run(flags.NewConfig(flags.NewRegistry()), p, 0)
	if r.Failed {
		t.Fatal("run failed")
	}
	return formatGCLogForTest(r), r.WallSeconds
}

func TestParseGCLog(t *testing.T) {
	log, _ := sampleLog(t, "h2")
	stats, err := ParseGCLog(log)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinorGCs == 0 || stats.FullGCs == 0 {
		t.Errorf("h2's log should show both kinds of collection: %+v", stats)
	}
	if stats.HeapMB < 500 || stats.HeapMB > 525 {
		t.Errorf("heap estimate %.0f MB, expected ~512", stats.HeapMB)
	}
	if stats.AllocRateMBps <= 0 {
		t.Error("allocation rate not estimated")
	}
	if stats.LiveMB <= 0 || stats.LiveMB > stats.HeapMB {
		t.Errorf("implausible live estimate %.0f MB", stats.LiveMB)
	}
	if stats.GCOverheadFrac <= 0 || stats.GCOverheadFrac > 0.9 {
		t.Errorf("overhead fraction %.2f", stats.GCOverheadFrac)
	}
}

func TestParseGCLogRejectsGarbage(t *testing.T) {
	if _, err := ParseGCLog("hello world"); err == nil {
		t.Error("garbage should error")
	}
}

func TestProfileFromGCLog(t *testing.T) {
	log, wall := sampleLog(t, "h2")
	p, stats, err := ProfileFromGCLog("imported-h2", log, wall)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "imported-h2" || p.Suite != "imported" {
		t.Errorf("profile identity: %+v", p.Name)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The estimated twin should land in the neighbourhood of the source:
	// h2's profile allocates 125 MB/s with a 238 MB live set.
	if p.AllocRateMBps < 40 || p.AllocRateMBps > 300 {
		t.Errorf("allocation estimate %.0f MB/s far from source", p.AllocRateMBps)
	}
	if p.LiveSetMB < 80 || p.LiveSetMB > 400 {
		t.Errorf("live-set estimate %.0f MB far from source", p.LiveSetMB)
	}
	if stats.FullGCs == 0 {
		t.Error("stats should be returned")
	}
}

func TestProfileFromGCLogErrors(t *testing.T) {
	log, _ := sampleLog(t, "h2")
	if _, _, err := ProfileFromGCLog("x", log, 0); err == nil {
		t.Error("zero runSeconds should error")
	}
	if _, _, err := ProfileFromGCLog("x", "", 10); err == nil {
		t.Error("empty log should error")
	}
	if _, _, err := ProfileFromGCLog("x", "garbage", 10); err == nil {
		t.Error("garbage log should error")
	}
}

func TestTuneFromGCLog(t *testing.T) {
	log, wall := sampleLog(t, "h2")
	res, stats, err := TuneFromGCLog("imported-h2", log, wall,
		Options{BudgetMinutes: 40, Seed: 5, Noise: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "imported-h2" {
		t.Errorf("tuned %q", res.Benchmark)
	}
	// The imported twin inherited h2's heap pressure, so the tuner should
	// find a solid improvement (heap/GC moves at minimum).
	if res.ImprovementPct < 10 {
		t.Errorf("only %.1f%% on a GC-pressured import", res.ImprovementPct)
	}
	if stats.MinorGCs == 0 {
		t.Error("stats missing")
	}
	// The winning flags must parse as a real command line.
	if _, err := flags.ParseArgs(flags.NewRegistry(), res.CommandLine); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Collector, " ") {
		t.Error("collector looks malformed")
	}
}
