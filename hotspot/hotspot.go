// Package hotspot is the public API of the HotSpot auto-tuner
// reproduction. It wraps the internal engine — the 600+-flag registry, the
// flag hierarchy, the simulated HotSpot VM, and the budgeted searchers —
// behind a small surface:
//
//	result, err := hotspot.Tune(hotspot.Options{Benchmark: "h2"})
//	fmt.Println(result.ImprovementPct, result.CommandLine)
//
// Tune runs a complete 200-virtual-minute tuning session (the paper's
// budget) and returns the best configuration found, the improvement over
// the default configuration, and the full convergence trace.
package hotspot

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/faultinject"
	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/jvmsim"
	"repro/internal/persist"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// MetricsRegistry collects tuning-farm metrics (counters, gauges,
// histograms) and exposes them in Prometheus text format; see
// internal/telemetry. Pass one via Options.Telemetry.
type MetricsRegistry = telemetry.Registry

// Tracer records the structured event stream of a session — proposals,
// attempts, retries, injected faults, observations — with virtual-time
// stamps. Its JSONL output is byte-deterministic for a fixed seed at any
// worker count. Pass one via Options.Trace.
type Tracer = telemetry.Tracer

// TraceEvent is one entry of a Tracer's event stream.
type TraceEvent = telemetry.Event

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.New() }

// NewTracer returns a trace recorder holding up to capacity events
// (0 means the default, 16384; the buffer drops oldest when full).
func NewTracer(capacity int) *Tracer { return telemetry.NewTracer(capacity) }

// Profile describes a benchmark program; see the field documentation in
// the exported type for how each parameter shapes simulated behaviour.
type Profile = workload.Profile

// Config is a JVM flag configuration.
type Config = flags.Config

// TracePoint is one sample of a session's best-so-far curve.
type TracePoint = core.TracePoint

// Options configures a tuning session. The zero value tunes nothing;
// at minimum set Benchmark or Workload.
type Options struct {
	// Benchmark names a built-in workload (see Benchmarks()). Ignored when
	// Workload is set.
	Benchmark string
	// Workload supplies a custom profile instead of a built-in one.
	Workload *Profile
	// Searcher selects the strategy (see Searchers()); default
	// "hierarchical", the paper's tuner.
	Searcher string
	// BudgetMinutes is the virtual tuning budget; default 200, the paper's.
	BudgetMinutes float64
	// Reps is the repetitions per measurement; default 3.
	Reps int
	// Seed drives all randomness; equal inputs and seeds reproduce
	// identical sessions.
	Seed int64
	// Noise overrides run-to-run measurement noise (relative stddev);
	// negative means the default (1.5%).
	Noise float64
	// JVMSimPath, when non-empty, measures through the cmd/jvmsim binary at
	// this path via subprocesses instead of in-process calls.
	JVMSimPath string
	// Nodes, when non-empty, dispatches measurements to these evald
	// evaluator nodes ("host:port" or full URLs) over HTTP/JSON instead of
	// measuring in-process — the distributed evaluation plane
	// (internal/dispatch). Trials are sharded across the fleet with
	// work-stealing and node-death re-dispatch; for a fixed Seed the
	// session's results, traces, and checkpoints are byte-identical to an
	// in-process run. Mutually exclusive with JVMSimPath. See
	// docs/DISTRIBUTED.md.
	Nodes []string
	// FleetStatePath, with Nodes, journals fleet membership and in-flight
	// trial ownership to this file so a killed controller resumes with its
	// fleet view intact (dead nodes stay suspect, orphaned trials are
	// adopted and accounted).
	FleetStatePath string
	// FleetListen, when non-empty, serves the fleet registration endpoints
	// on this address so evald nodes join and leave at runtime
	// (evald -join): registrations become pool members, periodic
	// re-registration is the liveness lease, and deregistration drains the
	// node immediately. Works with or without a static Nodes list — alone
	// it starts an empty dynamic fleet that waits for its first join.
	FleetListen string
	// DispatchBatch, with a distributed session, ships up to this many
	// trials per evaluate-batch round trip instead of one POST each. Purely
	// a transport knob: results are byte-identical at any batch size.
	DispatchBatch int
	// TLSCert/TLSKey/TLSCA and AuthToken secure the distributed wire:
	// mutual TLS between controller and nodes (cert+key presented, peers
	// verified against the CA) and a shared bearer token demanded on every
	// request. Both fail closed. They apply to evaluate dispatch and the
	// FleetListen registration endpoints alike.
	TLSCert, TLSKey, TLSCA string
	AuthToken              string
	// Workers is the number of parallel evaluation slots; default 1 (the
	// paper's single-machine setup). With Workers > 1 the session measures
	// up to that many configurations concurrently on real goroutines while
	// staying deterministic for a fixed Seed. See core.Session.Workers.
	Workers int
	// Objective selects what to minimize: "throughput" (default, the
	// paper's metric) or "pause" (worst GC pause, for latency tuning).
	Objective string
	// Chaos, when non-empty, runs the session under the deterministic
	// fault-injection layer: a named scenario (see ChaosScenarios()) or a
	// fault-plan DSL spec like "launch=0.1,spike=0.2". Faults are scheduled
	// by Seed, so chaos sessions are exactly as reproducible as clean ones.
	Chaos string
	// RetryAttempts bounds attempts per measurement for transient failures
	// (flaky launches, corrupt reports, injected faults); 0 means the
	// default, 3. Deterministic failures are never retried.
	RetryAttempts int
	// MaxTrials caps the number of trials on top of the virtual budget;
	// expiry returns the best-so-far result marked Result.Degraded. 0 means
	// no cap.
	MaxTrials int
	// RealBudgetSeconds caps the session's real (wall-clock) runtime on top
	// of the virtual budget. When it expires the session stops and returns
	// the best configuration found so far, marked Result.Degraded — a
	// budget kill is a graceful degradation, not an error. 0 means no cap.
	RealBudgetSeconds float64
	// BestEffort makes context cancellation degrade instead of fail: a
	// canceled session returns its best-so-far result with Result.Degraded
	// set rather than the context's error.
	BestEffort bool
	// Hedge enables straggler hedging with the default core.HedgePolicy:
	// trials whose virtual cost exceeds a percentile-based deadline are
	// charged as if a hedged duplicate dispatch had finished first.
	Hedge bool
	// Quarantine enables the failure circuit breaker with the default
	// core.QuarantinePolicy: flag-hierarchy subtrees with a high
	// deterministic-failure density are temporarily rejected at zero
	// virtual cost.
	Quarantine bool
	// Drift arms workload-drift detection and live re-tuning (see
	// docs/DRIFT.md): the session watches delivered scores with a
	// Page–Hinkley detector, and a confirmed drift opens a new tuning epoch
	// — the stale winner is demoted to a candidate, the searcher is rebuilt
	// warm-started from it (plus transfer priors when TransferDir is set),
	// and the hedging/quarantine machinery restarts for the new regime.
	// Per-epoch outcomes land in Result.Epochs. The workload actually
	// drifts when the chaos plan schedules it (drift-at=N, or the
	// drift-midrun/drift-storm scenarios); with a stationary workload the
	// detector is calibrated never to fire.
	Drift bool
	// DriftSensitivity scales the detector's decision threshold: 1 (or 0)
	// is the calibrated default, higher fires on weaker evidence, lower
	// needs more persistent evidence. Requires Drift.
	DriftSensitivity float64
	// OnProgress, when non-nil, receives a live snapshot after every
	// measurement — trials so far, virtual time consumed, and the best
	// result yet. It is called from the session's goroutine.
	OnProgress func(Progress)
	// Telemetry, when non-nil, receives the session's metrics: the
	// session_* and searcher_* series plus the runner_* (and, under Chaos,
	// chaos_*) series from the measurement layer. Expose it with
	// MetricsRegistry.WritePrometheus.
	Telemetry *MetricsRegistry
	// Trace, when non-nil, records the session's structured event stream;
	// write it out with Tracer.WriteJSONL. For a fixed Seed the stream is
	// byte-identical across runs at any Workers count.
	Trace *Tracer
	// CheckpointPath, when non-empty, makes the session crash-safe: its
	// state is periodically snapshotted to this file (atomically rotated,
	// CRC-guarded), so a killed run can continue with Resume instead of
	// starting over. See docs/DURABILITY.md.
	CheckpointPath string
	// CheckpointEveryTrials is the snapshot cadence in completed trials;
	// 0 means the default (8).
	CheckpointEveryTrials int
	// Resume continues the session recorded at CheckpointPath. The
	// checkpoint's options fingerprint must match this session's; a missing
	// checkpoint file simply starts fresh (determinism makes the outcomes
	// identical either way), while a corrupt one fails closed. A resumed
	// fixed-seed run converges to the byte-identical result of an
	// uninterrupted one.
	Resume bool
	// TransferDir, when non-empty, names the cross-workload knowledge-base
	// directory (see docs/TRANSFER.md): the session warm-starts its search
	// from the best configurations stored for the nearest workload
	// fingerprints, and records its own winner for future sessions. Empty
	// disables transfer entirely — no store is opened and the session is
	// byte-identical to one on a build without the subsystem.
	TransferDir string
	// TransferK is the number of nearest stored fingerprints to draw
	// warm-start priors from; 0 means the default (3).
	TransferK int
}

// SessionCrash is the panic value of the crash-point fault
// (chaos "crash-at=N"): a simulated hard kill of the session for
// checkpoint/resume drills. cmd/autotune recovers it and exits with a
// distinct status, leaving the checkpoint file behind.
type SessionCrash = faultinject.SessionCrash

// Progress is a live snapshot of a running tuning session.
type Progress struct {
	// Trials is the number of measurements delivered so far.
	Trials int
	// ElapsedMinutes is the virtual tuning time consumed so far.
	ElapsedMinutes float64
	// BestWall is the best objective score observed so far.
	BestWall float64
	// ImprovementPct is the improvement over the default configuration so
	// far (0 until something beats the baseline).
	ImprovementPct float64
	// Flakes is the cumulative count of transient failures absorbed by
	// retries so far.
	Flakes int
}

// Result is the outcome of a tuning session.
type Result struct {
	// Benchmark is the tuned workload's name.
	Benchmark string
	// Searcher is the strategy used.
	Searcher string
	// DefaultWall and BestWall are mean wall seconds before and after.
	DefaultWall, BestWall float64
	// ImprovementPct is 100·(default−best)/default, the paper's metric.
	ImprovementPct float64
	// Speedup is default/best.
	Speedup float64
	// Best is the winning configuration. It is omitted from JSON
	// serializations; CommandLine carries the same information portably.
	Best *Config `json:"-"`
	// CommandLine is Best rendered as java-style arguments.
	CommandLine []string
	// Collector is the garbage collector Best selects.
	Collector string
	// Trials, Failures and CacheHits describe the session's economy.
	Trials, Failures, CacheHits int
	// Flakes counts transient failures absorbed by retries; Attempts is
	// total launch attempts (≥ Trials); TransientFailures counts trials
	// still failing transiently after retry exhaustion (the configuration
	// is not condemned).
	Flakes, Attempts, TransientFailures int
	// Chaos names the fault plan the session ran under ("none" when off).
	Chaos string
	// Degraded reports that the session ended early — budget expiry,
	// wall-clock expiry, best-effort cancellation, or a stall — and the
	// result is the best found by then, not a completed search.
	// DegradedReason says why, verbatim from the engine. Both serialize
	// under snake_case keys like every documented Result extension;
	// UnmarshalJSON still accepts the legacy Go-field-name keys older
	// serializations (farm journals) used.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Quarantined counts trials rejected by the failure circuit breaker;
	// Hedges counts straggling trials that armed a hedge, HedgeWins the
	// hedges that beat their primary.
	Quarantined, Hedges, HedgeWins int
	// ElapsedMinutes is the virtual tuning time consumed.
	ElapsedMinutes float64
	// Trace is the anytime convergence curve (virtual seconds → best wall).
	Trace []TracePoint
	// Transfer is the warm-start provenance when Options.TransferDir was
	// set; nil for cold sessions.
	Transfer *TransferInfo `json:"transfer,omitempty"`
	// Epochs is the per-epoch breakdown of a drift-enabled session
	// (Options.Drift): each confirmed workload drift closes an epoch with
	// its provenance. Nil when drift detection is off.
	Epochs []Epoch `json:"epochs,omitempty"`

	outcome *core.Outcome
}

// UnmarshalJSON decodes a serialized Result. It exists for one
// compatibility shim: Degraded and DegradedReason serialized under their Go
// field names before they were tagged snake_case, and "DegradedReason" does
// not case-fold onto "degraded_reason" — a durable farm replaying an older
// journal would silently drop the reason. The legacy keys are accepted
// whenever the tagged ones are absent.
func (r *Result) UnmarshalJSON(b []byte) error {
	type plain Result // shed methods so the inner decode cannot recurse
	if err := json.Unmarshal(b, (*plain)(r)); err != nil {
		return err
	}
	var legacy struct {
		Degraded       *bool   `json:"Degraded"`
		DegradedReason *string `json:"DegradedReason"`
	}
	if err := json.Unmarshal(b, &legacy); err != nil {
		return err
	}
	if !r.Degraded && legacy.Degraded != nil {
		r.Degraded = *legacy.Degraded
	}
	if r.DegradedReason == "" && legacy.DegradedReason != nil {
		r.DegradedReason = *legacy.DegradedReason
	}
	return nil
}

// Save writes the result as JSON to path; the stored command line
// round-trips back into a configuration via LoadResult.
func (r *Result) Save(path string) error {
	return r.saved().SaveFile(path)
}

// WriteJSON serializes the result as JSON to w.
func (r *Result) WriteJSON(w io.Writer) error {
	return r.saved().Write(w)
}

// saved converts the outcome for archiving, attaching the warm-start
// provenance so a stored result says where its priors came from, and the
// per-epoch breakdown so a drift session's archive carries its drift
// history. Cold, stationary sessions archive byte-identically to builds
// without either field.
func (r *Result) saved() *persist.SavedOutcome {
	s := persist.FromOutcome(r.outcome)
	if r.Transfer != nil {
		if b, err := json.Marshal(r.Transfer); err == nil {
			s.Transfer = b
		}
	}
	if len(r.Epochs) > 0 {
		if b, err := json.Marshal(r.Epochs); err == nil {
			s.Epochs = b
		}
	}
	return s
}

// LoadResult reads a previously saved result; it returns the stored
// summary and the reconstructed winning configuration.
func LoadResult(path string) (*persist.SavedOutcome, *Config, error) {
	saved, err := persist.LoadFile(path)
	if err != nil {
		return nil, nil, err
	}
	cfg, err := saved.Config(flags.NewRegistry())
	if err != nil {
		return nil, nil, err
	}
	return saved, cfg, nil
}

// durabilitySetup resolves the checkpoint options into a snapshot keeper
// and (under Resume) the loaded snapshot to continue from. A missing
// checkpoint file is a fresh start, not an error; anything unreadable or
// corrupt fails closed.
func durabilitySetup(opts Options) (*checkpoint.Keeper, *checkpoint.Snapshot, error) {
	var resume *checkpoint.Snapshot
	if opts.Resume {
		if opts.CheckpointPath == "" {
			return nil, nil, fmt.Errorf("hotspot: Resume requires CheckpointPath")
		}
		snap, err := checkpoint.Load(opts.CheckpointPath)
		switch {
		case err == nil:
			resume = snap
		case errors.Is(err, os.ErrNotExist):
			// Nothing checkpointed yet — the fresh run is the correct (and,
			// by determinism, identical) continuation.
		default:
			return nil, nil, err
		}
	}
	var keeper *checkpoint.Keeper
	if opts.CheckpointPath != "" {
		keeper = checkpoint.NewKeeper(opts.CheckpointPath, opts.CheckpointEveryTrials, opts.Telemetry)
	}
	return keeper, resume, nil
}

// armCrashPoint chains the chaos plan's crash-at fault onto the session
// progress hook. The crash point rides the progress callback because it
// fires in the engine's deterministic delivery order; the plan's copy of
// the trigger is cleared so the measurement layer never sees it.
func armCrashPoint(plan *faultinject.Plan, onProgress func(core.TracePoint)) func(core.TracePoint) {
	at := plan.CrashAtTrial
	plan.CrashAtTrial = 0
	if at <= 0 {
		return onProgress
	}
	cp := &faultinject.CrashPoint{AtTrial: at}
	return func(tp core.TracePoint) {
		if onProgress != nil {
			onProgress(tp)
		}
		cp.OnTrial(tp.Trial)
	}
}

// Tune runs one budgeted tuning session.
func Tune(opts Options) (*Result, error) {
	return TuneContext(context.Background(), opts)
}

// TuneContext is Tune with cancellation: the session stops between
// evaluation rounds once ctx is done and returns the context's error.
func TuneContext(ctx context.Context, opts Options) (*Result, error) {
	prof := opts.Workload
	if prof == nil {
		p, ok := workload.ByName(opts.Benchmark)
		if !ok {
			return nil, fmt.Errorf("hotspot: unknown benchmark %q (see hotspot.Benchmarks)", opts.Benchmark)
		}
		prof = p
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	searcherName := opts.Searcher
	if searcherName == "" {
		searcherName = "hierarchical"
	}
	searcher, err := core.NewSearcher(searcherName)
	if err != nil {
		return nil, err
	}

	// Warm-start plumbing. The session and the priors must share one
	// registry instance: searchers diff and crossbreed configurations, and
	// flags.Config operations panic across registries.
	var xfer *transferSession
	var reg *flags.Registry
	if opts.TransferDir != "" {
		reg = flags.NewRegistry()
		xfer = transferSetup(opts, prof, reg)
		searcher = core.NewWarmStart(searcher, xfer.samples())
	}

	plan, err := faultinject.ParsePlan(opts.Chaos)
	if err != nil {
		return nil, err
	}
	onProgress := armCrashPoint(&plan, progressAdapter(opts.OnProgress))
	phases := driftSchedule(&plan)
	keeper, resume, err := durabilitySetup(opts)
	if err != nil {
		return nil, err
	}
	// Close waits out any in-flight snapshot write — including during the
	// panic unwind of a crash-point kill, which is what guarantees the
	// checkpoint on disk is complete when the "process" dies.
	defer keeper.Close()
	// Telemetry wires to the outermost measurement layer only: the chaos
	// layer when active (it sees every attempt, injected and clean),
	// otherwise the runner itself.
	retry := runner.RetryPolicy{MaxAttempts: opts.RetryAttempts}
	var run runner.Runner
	var pool *dispatch.Pool
	if len(opts.Nodes) > 0 || opts.FleetListen != "" {
		if opts.JVMSimPath != "" {
			return nil, fmt.Errorf("hotspot: Nodes and JVMSimPath are mutually exclusive")
		}
		pool, err = buildPool(opts, prof)
		if err != nil {
			return nil, err
		}
		pool.Retry = retry
		if !plan.Active() {
			pool.Telemetry, pool.Trace = opts.Telemetry, opts.Trace
		}
		pool.FaultHook = plan.NodeDownHook(opts.Seed)
		sec := security(opts)
		if opts.FleetStatePath != "" {
			fleet, view, ferr := dispatch.OpenFleet(opts.FleetStatePath, opts.Telemetry)
			if ferr != nil {
				return nil, ferr
			}
			pool.AttachFleet(fleet, view)
			// Re-dial the dynamic members a killed controller last knew
			// (joined, never drained) so the resumed session starts with the
			// same fleet instead of waiting for every node to re-register.
			rejoinMembers(pool, view, sec)
		}
		if opts.FleetListen != "" {
			member := dispatch.NewMembership(pool, sec)
			member.Telemetry = opts.Telemetry
			_, closeMember, merr := member.Serve(opts.FleetListen)
			if merr != nil {
				pool.Close()
				return nil, merr
			}
			defer closeMember()
		}
		pool.StartHeartbeats(heartbeatInterval)
		defer pool.Close()
		run = pool
	} else if opts.JVMSimPath != "" {
		sub := runner.NewSubprocess(opts.JVMSimPath, prof)
		sub.Retry = retry
		if !plan.Active() {
			sub.Telemetry, sub.Trace = opts.Telemetry, opts.Trace
		}
		run = sub
	} else {
		sim := jvmsim.New()
		if opts.Noise >= 0 {
			sim.NoiseRelStdDev = opts.Noise
		}
		ip := runner.NewInProcess(sim, prof)
		ip.Retry = retry
		if !plan.Active() {
			ip.Telemetry, ip.Trace = opts.Telemetry, opts.Trace
		}
		run = ip
	}
	if plan.NodeDown > 0 && pool == nil {
		return nil, fmt.Errorf("hotspot: chaos node-down faults need a distributed session (set Nodes)")
	}
	if plan.Active() {
		chaos := faultinject.New(run, plan, opts.Seed)
		chaos.Retry = retry
		chaos.Telemetry, chaos.Trace = opts.Telemetry, opts.Trace
		run = chaos
	}

	budget := opts.BudgetMinutes * 60
	if budget <= 0 {
		budget = core.DefaultBudgetSeconds
	}
	session := &core.Session{
		Runner:        run,
		Searcher:      searcher,
		Reg:           reg,
		BudgetSeconds: budget,
		Reps:          opts.Reps,
		Seed:          opts.Seed,
		Workers:       opts.Workers,
		Objective:     core.Objective(opts.Objective),
		Ctx:           ctx,
		OnProgress:    onProgress,
		Telemetry:     opts.Telemetry,
		Trace:         opts.Trace,
		Checkpoint:    keeper,
		Resume:        resume,
		Transfer:      xfer.metaFingerprint(),
		Phases:        phases,
	}
	if opts.Drift {
		dcfg, derr := driftConfig(opts)
		if derr != nil {
			return nil, derr
		}
		session.Drift = &core.DriftPolicy{Detector: dcfg}
		// A drift transition rebuilds the searcher from scratch for the new
		// regime; the name was validated above, so the factory cannot fail.
		session.NewSearcher = func() core.Searcher {
			ns, _ := core.NewSearcher(searcherName)
			return ns
		}
		session.EpochPriors = xfer.epochPriors(reg, prof, phases, opts.TransferK)
	} else if opts.DriftSensitivity != 0 {
		return nil, fmt.Errorf("hotspot: DriftSensitivity requires Drift")
	}
	applyRobustness(session, opts)
	out, err := session.Run()
	if err != nil {
		return nil, err
	}
	res := resultFromOutcome(out, plan.Name)
	// The store is written only here on the controller, and only after a
	// completed session: a killed run leaves the store unchanged, so a
	// checkpoint resume sees the same neighbours it checkpointed under.
	xfer.finish(res, opts, prof, phases, budget)
	return res, nil
}

// heartbeatInterval is how often a distributed session probes its nodes'
// liveness endpoints, reviving quarantined nodes that answer again.
const heartbeatInterval = time.Second

// security collects the wire credential options.
func security(opts Options) *dispatch.Security {
	return &dispatch.Security{
		CertFile: opts.TLSCert, KeyFile: opts.TLSKey, CAFile: opts.TLSCA,
		Token: opts.AuthToken,
	}
}

// rejoinMembers re-dials the dynamic members recovered from the fleet
// journal. Dial errors are non-fatal: a member that moved or died since
// the journal was written simply re-registers (or never does, and its
// trials go elsewhere).
func rejoinMembers(pool *dispatch.Pool, view *dispatch.FleetView, sec *dispatch.Security) {
	if view == nil {
		return
	}
	known := make(map[string]bool)
	for _, name := range pool.Nodes() {
		known[name] = true
	}
	for name, addr := range view.Members {
		if known[name] {
			continue
		}
		if ev, err := dispatch.NewSecureRemote(addr, sec); err == nil {
			ev.NodeName = name
			pool.Join(ev, addr)
		}
	}
}

// buildPool assembles the distributed evaluation pool: one remote
// evaluator per node (dynamic when FleetListen accepts joins at runtime),
// timeout and noise mirroring the in-process runner's defaults, and —
// with FleetStatePath — the durable fleet journal.
func buildPool(opts Options, prof *workload.Profile) (*dispatch.Pool, error) {
	sec := security(opts)
	evs := make([]dispatch.Evaluator, 0, len(opts.Nodes))
	for _, addr := range opts.Nodes {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		ev, err := dispatch.NewSecureRemote(addr, sec)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	var pool *dispatch.Pool
	var err error
	if opts.FleetListen != "" {
		pool, err = dispatch.NewDynamicPool(prof, evs...)
	} else {
		pool, err = dispatch.NewPool(prof, evs...)
	}
	if err != nil {
		return nil, err
	}
	pool.Batch = opts.DispatchBatch
	// Mirror runner.NewInProcess: the same noise model and the same 6×
	// default-wall timeout, so the fleet measures under identical harness
	// semantics and the bytes cannot tell the transport apart.
	sim := jvmsim.New()
	if opts.Noise >= 0 {
		sim.NoiseRelStdDev = opts.Noise
		pool.Noise = opts.Noise
	}
	pool.TimeoutSeconds = 6 * sim.DefaultWall(flags.NewRegistry(), prof, 1)
	return pool, nil
}

// applyRobustness wires the overload/degradation options onto a session.
func applyRobustness(s *core.Session, opts Options) {
	s.MaxTrials = opts.MaxTrials
	if opts.RealBudgetSeconds > 0 {
		s.RealBudget = time.Duration(opts.RealBudgetSeconds * float64(time.Second))
	}
	s.BestEffort = opts.BestEffort
	if opts.Hedge {
		s.Hedge = &core.HedgePolicy{}
	}
	if opts.Quarantine {
		s.Quarantine = &core.QuarantinePolicy{}
	}
}

// resultFromOutcome maps the engine's outcome to the public Result.
func resultFromOutcome(out *core.Outcome, chaosName string) *Result {
	col, _ := hierarchy.SelectedCollector(out.Best)
	return &Result{
		outcome:           out,
		Benchmark:         out.Workload,
		Searcher:          out.Searcher,
		DefaultWall:       out.DefaultWall,
		BestWall:          out.BestWall,
		ImprovementPct:    out.ImprovementPct,
		Speedup:           out.Speedup,
		Best:              out.Best,
		CommandLine:       out.Best.CommandLine(),
		Collector:         string(col),
		Trials:            out.Trials,
		Failures:          out.Failures,
		CacheHits:         out.CacheHits,
		Flakes:            out.Flakes,
		Attempts:          out.Attempts,
		TransientFailures: out.TransientFailures,
		Chaos:             chaosName,
		Degraded:          out.Degraded,
		DegradedReason:    out.DegradedReason,
		Quarantined:       out.Quarantined,
		Hedges:            out.Hedges,
		HedgeWins:         out.HedgeWins,
		ElapsedMinutes:    out.Elapsed / 60,
		Trace:             out.Trace,
		Epochs:            epochsFromOutcome(out),
	}
}

// FlagContribution is one flag's measured contribution to a winning
// configuration; see Explain.
type FlagContribution = core.FlagAttribution

// Explain performs revert-one-flag analysis of a tuning result: each flag
// the winner changed is individually restored to its default and the
// configuration re-measured, quantifying what that flag was worth. Pass the
// profile for custom workloads; nil looks the benchmark up by name.
// Contributions are sorted most-important first.
func Explain(res *Result, w *Profile) ([]FlagContribution, error) {
	prof := w
	if prof == nil {
		p, ok := workload.ByName(res.Benchmark)
		if !ok {
			return nil, fmt.Errorf("hotspot: unknown benchmark %q; pass the Profile for custom workloads", res.Benchmark)
		}
		prof = p
	}
	r := runner.NewInProcess(jvmsim.New(), prof)
	return core.Attribute(r, res.Best, 3), nil
}

// Minimize prunes a tuning result's winning configuration down to the
// flags that matter: passengers whose removal costs less than tolerancePct
// (default 1%) are reverted. It returns the minimal configuration and its
// command line. Pass the profile for custom workloads; nil looks the
// benchmark up by name.
func Minimize(res *Result, w *Profile, tolerancePct float64) (*Config, []string, error) {
	prof := w
	if prof == nil {
		p, ok := workload.ByName(res.Benchmark)
		if !ok {
			return nil, nil, fmt.Errorf("hotspot: unknown benchmark %q; pass the Profile for custom workloads", res.Benchmark)
		}
		prof = p
	}
	r := runner.NewInProcess(jvmsim.New(), prof)
	min := core.Minimize(r, res.Best, 3, tolerancePct)
	return min, min.CommandLine(), nil
}

// progressAdapter bridges the session's trace-point callback to the public
// Progress snapshot. The first trace point is the baseline, which fixes the
// denominator for the improvement percentage.
func progressAdapter(f func(Progress)) func(core.TracePoint) {
	if f == nil {
		return nil
	}
	defaultWall := 0.0
	return func(tp core.TracePoint) {
		if defaultWall == 0 {
			defaultWall = tp.BestWall
		}
		f(Progress{
			Trials:         tp.Trial,
			ElapsedMinutes: tp.Elapsed / 60,
			BestWall:       tp.BestWall,
			ImprovementPct: stats.ImprovementPct(defaultWall, tp.BestWall),
			Flakes:         tp.Flakes,
		})
	}
}

// TuneCommon searches for a single configuration that serves every given
// workload, scored by mean normalized wall time across them. The returned
// Result's walls are normalized (DefaultWall is 1.0), so ImprovementPct
// reads as the suite-average improvement. Budget applies to the aggregate:
// each trial measures every member.
func TuneCommon(profiles []*Profile, opts Options) (*Result, error) {
	return TuneCommonContext(context.Background(), profiles, opts)
}

// TuneCommonContext is TuneCommon with cancellation, like TuneContext.
func TuneCommonContext(ctx context.Context, profiles []*Profile, opts Options) (*Result, error) {
	if opts.Drift || opts.DriftSensitivity != 0 {
		// Suite-common tuning scores one configuration across the whole
		// suite; there is no single workload to drift or re-fingerprint.
		return nil, fmt.Errorf("hotspot: drift re-tuning needs a single-workload session")
	}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	sim := jvmsim.New()
	if opts.Noise >= 0 {
		sim.NoiseRelStdDev = opts.Noise
	}
	multi, err := runner.NewMulti(sim, profiles)
	if err != nil {
		return nil, err
	}
	retry := runner.RetryPolicy{MaxAttempts: opts.RetryAttempts}
	multi.Retry = retry
	var run runner.Runner = multi
	plan, err := faultinject.ParsePlan(opts.Chaos)
	if err != nil {
		return nil, err
	}
	if driftSchedule(&plan) != nil {
		return nil, fmt.Errorf("hotspot: chaos drift-at needs a single-workload session")
	}
	onProgress := armCrashPoint(&plan, progressAdapter(opts.OnProgress))
	keeper, resume, err := durabilitySetup(opts)
	if err != nil {
		return nil, err
	}
	defer keeper.Close()
	if plan.Active() {
		chaos := faultinject.New(run, plan, opts.Seed)
		chaos.Retry = retry
		chaos.Telemetry, chaos.Trace = opts.Telemetry, opts.Trace
		run = chaos
	} else {
		multi.Telemetry, multi.Trace = opts.Telemetry, opts.Trace
	}
	searcherName := opts.Searcher
	if searcherName == "" {
		searcherName = "hierarchical"
	}
	searcher, err := core.NewSearcher(searcherName)
	if err != nil {
		return nil, err
	}
	budget := opts.BudgetMinutes * 60
	if budget <= 0 {
		budget = core.DefaultBudgetSeconds * float64(len(profiles))
	}
	session := &core.Session{
		Runner:        run,
		Searcher:      searcher,
		BudgetSeconds: budget,
		Reps:          opts.Reps,
		Seed:          opts.Seed,
		Workers:       opts.Workers,
		Ctx:           ctx,
		OnProgress:    onProgress,
		Telemetry:     opts.Telemetry,
		Trace:         opts.Trace,
		Checkpoint:    keeper,
		Resume:        resume,
	}
	applyRobustness(session, opts)
	out, err := session.Run()
	if err != nil {
		return nil, err
	}
	return resultFromOutcome(out, plan.Name), nil
}

// Benchmarks lists the built-in workloads: the 16 SPECjvm2008 startup
// programs and the 13 DaCapo programs the paper evaluated.
func Benchmarks() []string { return workload.Names() }

// Suite returns the profiles of one built-in suite: "specjvm2008" or
// "dacapo".
func Suite(name string) ([]*Profile, error) {
	switch name {
	case "specjvm2008":
		return workload.SPECjvm2008(), nil
	case "dacapo":
		return workload.DaCapo(), nil
	default:
		return nil, fmt.Errorf("hotspot: unknown suite %q", name)
	}
}

// Searchers lists the available strategies, the paper's tuner first.
func Searchers() []string { return core.SearcherNames() }

// ChaosScenarios lists the named fault plans Options.Chaos accepts (it also
// accepts the fault-plan DSL; see internal/faultinject.ParsePlan).
func ChaosScenarios() []string { return faultinject.Scenarios() }

// Measure runs the given java-style arguments against a built-in benchmark
// once on the simulated VM, without any tuning — useful to check what a
// specific flag combination does.
func Measure(args []string, benchmark string, rep int) (wallSeconds float64, err error) {
	prof, ok := workload.ByName(benchmark)
	if !ok {
		return 0, fmt.Errorf("hotspot: unknown benchmark %q", benchmark)
	}
	reg := flags.NewRegistry()
	cfg, err := flags.ParseArgs(reg, args)
	if err != nil {
		return 0, err
	}
	res := jvmsim.New().Run(cfg, prof, rep)
	if res.Failed {
		return 0, fmt.Errorf("hotspot: run failed (%s): %s", res.Failure, res.FailureMessage)
	}
	return res.WallSeconds, nil
}
