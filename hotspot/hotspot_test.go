package hotspot

import (
	"strings"
	"testing"
)

func TestTuneBuiltinBenchmark(t *testing.T) {
	r, err := Tune(Options{
		Benchmark:     "startup.xml.validation",
		BudgetMinutes: 40,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ImprovementPct <= 0 {
		t.Errorf("no improvement found: %+v", r)
	}
	if r.Searcher != "hierarchical" {
		t.Errorf("default searcher should be hierarchical, got %s", r.Searcher)
	}
	if len(r.CommandLine) == 0 {
		t.Error("winning config should render to command-line flags")
	}
	if r.Collector == "" {
		t.Error("collector should be reported")
	}
	if r.ElapsedMinutes <= 0 || r.ElapsedMinutes > 45 {
		t.Errorf("elapsed %.1f min outside budget", r.ElapsedMinutes)
	}
	if len(r.Trace) < 2 {
		t.Error("trace missing")
	}
}

func TestTuneUnknownInputs(t *testing.T) {
	if _, err := Tune(Options{Benchmark: "nope"}); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := Tune(Options{Benchmark: "h2", Searcher: "nope"}); err == nil {
		t.Error("unknown searcher should error")
	}
	if _, err := Tune(Options{}); err == nil {
		t.Error("no benchmark should error")
	}
}

func TestTuneCustomWorkload(t *testing.T) {
	p := &Profile{
		Name: "custom-service", Suite: "custom",
		Description: "a synthetic allocation-heavy service",
		BaseSeconds: 20, StartupFraction: 0.2,
		WarmupWork: 0.6, HotMethods: 900, CodeKBPerMethod: 1.6,
		CallIntensity: 0.6, LoopIntensity: 0.2, EscapeFrac: 0.2,
		AllocRateMBps: 120, LiveSetMB: 150,
		ShortLivedFrac: 0.88, MidLivedFrac: 0.07, MidLifeRounds: 3, EdenHalfLifeMB: 40,
		PointerIntensity: 0.5, StringIntensity: 0.3,
		SyncIntensity: 0.3, LockContention: 0.1, AppThreads: 4,
	}
	r, err := Tune(Options{Workload: p, BudgetMinutes: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "custom-service" {
		t.Errorf("benchmark name = %s", r.Benchmark)
	}
	if r.ImprovementPct < 0 {
		t.Error("tuning should never end worse than default")
	}
}

func TestTuneInvalidCustomWorkload(t *testing.T) {
	if _, err := Tune(Options{Workload: &Profile{Name: "x"}}); err == nil {
		t.Error("invalid profile should error")
	}
}

func TestBenchmarksAndSearchers(t *testing.T) {
	b := Benchmarks()
	if len(b) != 29 {
		t.Errorf("expected 29 benchmarks, got %d", len(b))
	}
	s := Searchers()
	if len(s) == 0 || s[0] != "hierarchical" {
		t.Errorf("searchers list should lead with hierarchical: %v", s)
	}
}

func TestSuite(t *testing.T) {
	spec, err := Suite("specjvm2008")
	if err != nil || len(spec) != 16 {
		t.Errorf("specjvm2008 suite: %d, %v", len(spec), err)
	}
	dacapo, err := Suite("dacapo")
	if err != nil || len(dacapo) != 13 {
		t.Errorf("dacapo suite: %d, %v", len(dacapo), err)
	}
	if _, err := Suite("nope"); err == nil {
		t.Error("unknown suite should error")
	}
}

func TestMeasure(t *testing.T) {
	def, err := Measure(nil, "h2", 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Measure([]string{"-Xmx4g", "-Xms4g"}, "h2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if big >= def {
		t.Errorf("4g heap should beat the default on h2: %.1f vs %.1f", big, def)
	}
	if _, err := Measure([]string{"-XX:+NoSuchFlag"}, "h2", 0); err == nil {
		t.Error("bad flag should error")
	}
	if _, err := Measure(nil, "nope", 0); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := Measure([]string{"-Xmx128m"}, "h2", 0); err == nil ||
		!strings.Contains(err.Error(), "oom") {
		t.Error("OOM should surface as an error naming the failure")
	}
}

func TestTuneDeterministic(t *testing.T) {
	opts := Options{Benchmark: "fop", BudgetMinutes: 20, Seed: 9}
	a, err := Tune(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestWall != b.BestWall || a.Best.Key() != b.Best.Key() {
		t.Error("identical options and seed must reproduce the session")
	}
}
