package hotspot

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestResultSaveAndLoad(t *testing.T) {
	res, err := Tune(Options{Benchmark: "fop", BudgetMinutes: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fop.json")
	if err := res.Save(path); err != nil {
		t.Fatal(err)
	}
	saved, cfg, err := LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Workload != "fop" || saved.BestWall != res.BestWall {
		t.Errorf("loaded summary mismatch: %+v", saved)
	}
	if cfg.Key() != res.Best.Key() {
		t.Error("reconstructed config differs from the winner")
	}
}

func TestResultWriteJSON(t *testing.T) {
	res, err := Tune(Options{Benchmark: "fop", BudgetMinutes: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"workload": "fop"`, `"command_line"`, `"improvement_pct"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

func TestLoadResultMissing(t *testing.T) {
	if _, _, err := LoadResult(filepath.Join(t.TempDir(), "none.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestTuneWithWorkers(t *testing.T) {
	one, err := Tune(Options{Benchmark: "fop", BudgetMinutes: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Tune(Options{Benchmark: "fop", BudgetMinutes: 20, Seed: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.Trials <= one.Trials {
		t.Errorf("4 workers ran %d trials vs %d", four.Trials, one.Trials)
	}
}

func TestExplainAndMinimize(t *testing.T) {
	res, err := Tune(Options{Benchmark: "startup.xml.validation", BudgetMinutes: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	contribs, err := Explain(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(contribs) == 0 {
		t.Fatal("winner changed flags but attribution is empty")
	}
	// The lead contribution must be a JIT-mode flag on a startup benchmark.
	lead := contribs[0]
	if lead.Reverted && lead.DeltaPct < 10 {
		t.Errorf("lead contribution suspiciously small: %+v", lead)
	}

	min, args, err := Minimize(res, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) > len(res.CommandLine) {
		t.Error("minimization added flags")
	}
	if len(min.ExplicitNames()) == 0 {
		t.Error("minimal config lost everything, including the winner")
	}
}

func TestExplainUnknownBenchmark(t *testing.T) {
	if _, err := Explain(&Result{Benchmark: "nope"}, nil); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, _, err := Minimize(&Result{Benchmark: "nope"}, nil, 1); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestTuneCommon(t *testing.T) {
	suite, _ := Suite("dacapo")
	res, err := TuneCommon(suite[:4], Options{BudgetMinutes: 60, Seed: 7, Noise: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Normalized objective: defaults score 1.0.
	if res.DefaultWall < 0.99 || res.DefaultWall > 1.01 {
		t.Errorf("normalized baseline = %.3f, want 1.0", res.DefaultWall)
	}
	if res.ImprovementPct <= 0 {
		t.Error("common tuning should improve the aggregate")
	}
	if res.Benchmark == "" || res.Collector == "" {
		t.Error("result metadata incomplete")
	}
}

func TestTuneCommonInvalid(t *testing.T) {
	if _, err := TuneCommon(nil, Options{}); err == nil {
		t.Error("empty suite should error")
	}
	if _, err := TuneCommon([]*Profile{{Name: "bad"}}, Options{}); err == nil {
		t.Error("invalid profile should error")
	}
}
