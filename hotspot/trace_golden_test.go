package hotspot

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chaosTrace runs a small deterministic chaos session and returns its trace
// as JSONL bytes.
func chaosTrace(t *testing.T, workers int) []byte {
	t.Helper()
	tr := NewTracer(0)
	_, err := Tune(Options{
		Benchmark:     "fop",
		Searcher:      "hierarchical",
		BudgetMinutes: 20,
		Reps:          1,
		Seed:          7,
		Workers:       workers,
		Chaos:         "unstable-farm",
		Telemetry:     NewMetricsRegistry(),
		Trace:         tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGolden pins the full event stream of a fixed-seed chaos session:
// any change to event content, ordering, or serialization shows up as a
// golden-file diff. Repeated runs must be byte-identical (the determinism
// contract), so the golden file doubles as a cross-run regression check.
func TestTraceGolden(t *testing.T) {
	got := chaosTrace(t, 3)
	if again := chaosTrace(t, 3); !bytes.Equal(got, again) {
		t.Fatal("repeated fixed-seed runs produced different traces")
	}

	path := filepath.Join("testdata", "trace_unstable_farm.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		n := len(gotLines)
		if len(wantLines) < n {
			n = len(wantLines)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("trace drifted from golden at line %d (re-run with -update if intended)\n--- got\n%s\n--- want\n%s",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("trace length drifted: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
