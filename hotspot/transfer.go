package hotspot

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/transfer"
	"repro/internal/workload"
)

// TransferInfo is the warm-start provenance of a tuning session that ran
// with Options.TransferDir set: what the knowledge store contributed going
// in, and whether this session's own result was recorded coming out.
type TransferInfo struct {
	// StoreEntries is the knowledge-base size at session start.
	StoreEntries int `json:"store_entries"`
	// Hits is the number of comparable stored fingerprint groups found;
	// Priors is how many of their configurations survived validation and
	// were injected as the session's first proposals.
	Hits   int `json:"hits"`
	Priors int `json:"priors"`
	// NearestWorkload and NearestDistance identify the closest stored
	// fingerprint (distance 0 = the same workload was tuned before).
	NearestWorkload string  `json:"nearest_workload,omitempty"`
	NearestDistance float64 `json:"nearest_distance,omitempty"`
	// RepairedFlags counts stored arguments dropped during validation
	// against the live flag registry (renamed or removed flags across
	// store generations).
	RepairedFlags int `json:"repaired_flags,omitempty"`
	// Recorded reports that this session's best configuration was appended
	// to the store for future sessions.
	Recorded bool `json:"recorded"`
	// EpochRecords counts the per-epoch winners of a drift session
	// additionally recorded under their shifted-workload fingerprints
	// (see docs/DRIFT.md).
	EpochRecords int `json:"epoch_records,omitempty"`
}

// transferSession carries the warm-start state of one tuning session from
// store open (before the searcher proposes anything) to result recording
// (after the session completes). All methods are nil-safe: a nil
// transferSession is a session with transfer disabled, which takes no code
// path through the transfer subsystem at all.
type transferSession struct {
	store  *transfer.Store
	fp     transfer.Fingerprint
	priors []transfer.Prior
	info   *TransferInfo
}

// transferSetup opens the knowledge store under opts.TransferDir, queries
// it for the profile's nearest fingerprints, and repairs the stored
// configurations against reg (the registry instance the session will tune
// over — priors must share it so searchers can diff and crossbreed them).
//
// Degradation is the rule: an unusable store — unreadable directory, a
// future-version file this build must not touch — yields a cold start with
// zero priors, never a failed session. The one case that also disables
// *recording* is the future version: appending through an older build
// would mean rewriting (and on compaction, destroying) a newer build's
// knowledge.
func transferSetup(opts Options, prof *workload.Profile, reg *flags.Registry) *transferSession {
	ts := &transferSession{
		fp:   transfer.FingerprintOf(prof),
		info: &TransferInfo{},
	}
	st, err := transfer.Open(opts.TransferDir, opts.Telemetry)
	if err != nil {
		// Cold start; with no store handle nothing is recorded either.
		return ts
	}
	ts.store = st
	ts.info.StoreEntries = st.Len()
	opts.Telemetry.Gauge("transfer_store_entries").Set(float64(st.Len()))

	k := opts.TransferK
	if k <= 0 {
		k = 3
	}
	neighbors := st.Nearest(ts.fp, k)
	ts.info.Hits = len(neighbors)
	if len(neighbors) > 0 {
		ts.info.NearestWorkload = neighbors[0].Entry.Workload
		ts.info.NearestDistance = neighbors[0].Distance
		opts.Telemetry.Gauge("transfer_nearest_distance").Set(neighbors[0].Distance)
	}
	ts.priors = transfer.Priors(st, reg, ts.fp, k)
	ts.info.Priors = len(ts.priors)
	for _, p := range ts.priors {
		ts.info.RepairedFlags += p.Dropped
	}
	opts.Telemetry.Counter("transfer_priors_injected_total").Add(uint64(len(ts.priors)))
	if ts.info.RepairedFlags > 0 {
		opts.Telemetry.Counter("transfer_repaired_flags_total").Add(uint64(ts.info.RepairedFlags))
	}
	return ts
}

// samples renders the priors in the form core.NewWarmStart consumes.
func (ts *transferSession) samples() []core.PriorSample {
	if ts == nil {
		return nil
	}
	out := make([]core.PriorSample, len(ts.priors))
	for i, p := range ts.priors {
		out[i] = core.PriorSample{Cfg: p.Config, Norm: p.Norm}
	}
	return out
}

// metaFingerprint renders the injected priors as the session's checkpoint
// transfer fingerprint. Deterministic in the prior set, empty when no
// priors were injected — a transfer-enabled session that found nothing in
// the store checkpoints exactly like a cold one (it IS one), while a warm
// checkpoint refuses to resume against a store whose nearest neighbours
// have changed since (replay would diverge).
func (ts *transferSession) metaFingerprint() string {
	if ts == nil || len(ts.priors) == 0 {
		return ""
	}
	keys := make([]string, len(ts.priors))
	for i, p := range ts.priors {
		keys[i] = p.Config.Key()
	}
	return fmt.Sprintf("fp=%s priors=%s", ts.fp.Key(), strings.Join(keys, "|"))
}

// finish records the session's winning configuration into the store (the
// controller is the only writer — evald measurement nodes never see the
// store), attaches the provenance to the result, and closes the store.
// A drift session additionally records each drift-opened epoch's best under
// the shifted profile's fingerprint: the post-drift winner is knowledge
// about the drifted workload, not the base one, and filing it under the
// regime it was tuned for is what lets a future session that starts out in
// that regime warm-start from it.
func (ts *transferSession) finish(res *Result, opts Options, prof *workload.Profile, phases *jvmsim.PhaseSchedule, budgetSeconds float64) {
	if ts == nil {
		return
	}
	defer ts.store.Close()
	res.Transfer = ts.info
	if ts.store == nil {
		return
	}
	reps := opts.Reps
	if reps <= 0 {
		reps = 3
	}
	stamp := func(fp transfer.Fingerprint, trials int, args []string, score, baseline float64) *transfer.Entry {
		return &transfer.Entry{
			FP:            fp,
			Workload:      prof.Name,
			Suite:         prof.Suite,
			Searcher:      res.Searcher,
			Objective:     string(resolveObjective(opts.Objective)),
			Seed:          opts.Seed,
			Reps:          reps,
			Trials:        trials,
			BudgetSeconds: budgetSeconds,
			Args:          args,
			Score:         score,
			BaselineScore: baseline,
		}
	}
	// The base regime's record. For a drift session the session-level best
	// is the LAST epoch's, scored on a shifted profile — knowledge about
	// that regime, not the base one — so the base fingerprint gets epoch
	// 0's pre-drift winner instead, scored where DefaultWall was.
	var epochs []core.EpochOutcome
	if res.outcome != nil {
		epochs = res.outcome.Epochs
	}
	baseBest, baseScore, baseTrials := res.Best, res.BestWall, res.Trials
	if len(epochs) > 1 {
		baseBest, baseScore, baseTrials = epochs[0].Best, epochs[0].BestScore, epochs[0].Trials
	}
	// A best that is the default configuration carries no tuning knowledge
	// (and would be skipped at load time anyway) — don't record it.
	if baseBest != nil && baseBest.Key() != "" {
		e := stamp(ts.fp, baseTrials, baseBest.ExplicitArgs(), baseScore, res.DefaultWall)
		if err := ts.store.Append(e); err == nil {
			ts.info.Recorded = true
		}
	}
	sim := jvmsim.New()
	for i := 1; i < len(epochs); i++ {
		eo := epochs[i]
		// An epoch's tuned regime is the phase it OPENED under — the phase
		// the previous epoch closed under (EpochOutcome.Phase is the
		// closing phase: epoch 0 closes under the post-shift phase, but its
		// best was tuned and scored on the base profile). An epoch opened
		// in phase 0 (a detector false positive) is already the base
		// regime, covered above.
		tunedPhase := epochs[i-1].Phase
		if tunedPhase == 0 || eo.Best == nil || eo.Best.Key() == "" {
			continue
		}
		shifted, err := phases.ProfileAt(prof, tunedPhase)
		if err != nil {
			continue
		}
		// The entry's baseline is the default configuration's wall on the
		// *shifted* profile — the same scale-free normalization a session
		// tuning that regime from scratch would record.
		baseline := sim.DefaultWall(flags.NewRegistry(), shifted, reps)
		e := stamp(transfer.FingerprintOf(shifted), eo.Trials, eo.Best.ExplicitArgs(), eo.BestScore, baseline)
		if ts.store.Append(e) == nil {
			ts.info.EpochRecords++
		}
	}
}

// epochPriors returns the session's per-epoch warm-start hook for drift
// re-tuning: on a confirmed drift the engine calls it with the new epoch
// and workload phase, and the hook fingerprints the shifted profile and
// queries the store for configurations tuned near that regime. Nil when
// transfer is off — the engine then warm-starts from the demoted incumbent
// alone. Priors share the session's registry (reg) so searchers can diff
// and crossbreed them.
func (ts *transferSession) epochPriors(reg *flags.Registry, prof *workload.Profile, phases *jvmsim.PhaseSchedule, k int) func(epoch, phase int) []core.PriorSample {
	if ts == nil || ts.store == nil {
		return nil
	}
	if k <= 0 {
		k = 3
	}
	return func(_, phase int) []core.PriorSample {
		shifted, err := phases.ProfileAt(prof, phase)
		if err != nil {
			return nil
		}
		priors := transfer.Priors(ts.store, reg, transfer.FingerprintOf(shifted), k)
		out := make([]core.PriorSample, len(priors))
		for i, p := range priors {
			out[i] = core.PriorSample{Cfg: p.Config, Norm: p.Norm}
		}
		return out
	}
}

// resolveObjective mirrors the session's default-objective resolution so
// store provenance matches what actually ran.
func resolveObjective(o string) core.Objective {
	if o == "" {
		return core.ObjectiveThroughput
	}
	return core.Objective(o)
}
