package hotspot

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/flags"
	"repro/internal/transfer"
	"repro/internal/workload"
)

// TransferInfo is the warm-start provenance of a tuning session that ran
// with Options.TransferDir set: what the knowledge store contributed going
// in, and whether this session's own result was recorded coming out.
type TransferInfo struct {
	// StoreEntries is the knowledge-base size at session start.
	StoreEntries int `json:"store_entries"`
	// Hits is the number of comparable stored fingerprint groups found;
	// Priors is how many of their configurations survived validation and
	// were injected as the session's first proposals.
	Hits   int `json:"hits"`
	Priors int `json:"priors"`
	// NearestWorkload and NearestDistance identify the closest stored
	// fingerprint (distance 0 = the same workload was tuned before).
	NearestWorkload string  `json:"nearest_workload,omitempty"`
	NearestDistance float64 `json:"nearest_distance,omitempty"`
	// RepairedFlags counts stored arguments dropped during validation
	// against the live flag registry (renamed or removed flags across
	// store generations).
	RepairedFlags int `json:"repaired_flags,omitempty"`
	// Recorded reports that this session's best configuration was appended
	// to the store for future sessions.
	Recorded bool `json:"recorded"`
}

// transferSession carries the warm-start state of one tuning session from
// store open (before the searcher proposes anything) to result recording
// (after the session completes). All methods are nil-safe: a nil
// transferSession is a session with transfer disabled, which takes no code
// path through the transfer subsystem at all.
type transferSession struct {
	store  *transfer.Store
	fp     transfer.Fingerprint
	priors []transfer.Prior
	info   *TransferInfo
}

// transferSetup opens the knowledge store under opts.TransferDir, queries
// it for the profile's nearest fingerprints, and repairs the stored
// configurations against reg (the registry instance the session will tune
// over — priors must share it so searchers can diff and crossbreed them).
//
// Degradation is the rule: an unusable store — unreadable directory, a
// future-version file this build must not touch — yields a cold start with
// zero priors, never a failed session. The one case that also disables
// *recording* is the future version: appending through an older build
// would mean rewriting (and on compaction, destroying) a newer build's
// knowledge.
func transferSetup(opts Options, prof *workload.Profile, reg *flags.Registry) *transferSession {
	ts := &transferSession{
		fp:   transfer.FingerprintOf(prof),
		info: &TransferInfo{},
	}
	st, err := transfer.Open(opts.TransferDir, opts.Telemetry)
	if err != nil {
		// Cold start; with no store handle nothing is recorded either.
		return ts
	}
	ts.store = st
	ts.info.StoreEntries = st.Len()
	opts.Telemetry.Gauge("transfer_store_entries").Set(float64(st.Len()))

	k := opts.TransferK
	if k <= 0 {
		k = 3
	}
	neighbors := st.Nearest(ts.fp, k)
	ts.info.Hits = len(neighbors)
	if len(neighbors) > 0 {
		ts.info.NearestWorkload = neighbors[0].Entry.Workload
		ts.info.NearestDistance = neighbors[0].Distance
		opts.Telemetry.Gauge("transfer_nearest_distance").Set(neighbors[0].Distance)
	}
	ts.priors = transfer.Priors(st, reg, ts.fp, k)
	ts.info.Priors = len(ts.priors)
	for _, p := range ts.priors {
		ts.info.RepairedFlags += p.Dropped
	}
	opts.Telemetry.Counter("transfer_priors_injected_total").Add(uint64(len(ts.priors)))
	if ts.info.RepairedFlags > 0 {
		opts.Telemetry.Counter("transfer_repaired_flags_total").Add(uint64(ts.info.RepairedFlags))
	}
	return ts
}

// samples renders the priors in the form core.NewWarmStart consumes.
func (ts *transferSession) samples() []core.PriorSample {
	if ts == nil {
		return nil
	}
	out := make([]core.PriorSample, len(ts.priors))
	for i, p := range ts.priors {
		out[i] = core.PriorSample{Cfg: p.Config, Norm: p.Norm}
	}
	return out
}

// metaFingerprint renders the injected priors as the session's checkpoint
// transfer fingerprint. Deterministic in the prior set, empty when no
// priors were injected — a transfer-enabled session that found nothing in
// the store checkpoints exactly like a cold one (it IS one), while a warm
// checkpoint refuses to resume against a store whose nearest neighbours
// have changed since (replay would diverge).
func (ts *transferSession) metaFingerprint() string {
	if ts == nil || len(ts.priors) == 0 {
		return ""
	}
	keys := make([]string, len(ts.priors))
	for i, p := range ts.priors {
		keys[i] = p.Config.Key()
	}
	return fmt.Sprintf("fp=%s priors=%s", ts.fp.Key(), strings.Join(keys, "|"))
}

// finish records the session's winning configuration into the store (the
// controller is the only writer — evald measurement nodes never see the
// store), attaches the provenance to the result, and closes the store.
func (ts *transferSession) finish(res *Result, opts Options, prof *workload.Profile, budgetSeconds float64) {
	if ts == nil {
		return
	}
	defer ts.store.Close()
	res.Transfer = ts.info
	// A best that is the default configuration carries no tuning knowledge
	// (and would be skipped at load time anyway) — don't record it.
	if ts.store == nil || res.Best == nil || res.Best.Key() == "" {
		return
	}
	reps := opts.Reps
	if reps <= 0 {
		reps = 3
	}
	e := &transfer.Entry{
		FP:            ts.fp,
		Workload:      prof.Name,
		Suite:         prof.Suite,
		Searcher:      res.Searcher,
		Objective:     string(resolveObjective(opts.Objective)),
		Seed:          opts.Seed,
		Reps:          reps,
		Trials:        res.Trials,
		BudgetSeconds: budgetSeconds,
		Args:          res.Best.ExplicitArgs(),
		Score:         res.BestWall,
		BaselineScore: res.DefaultWall,
	}
	if err := ts.store.Append(e); err == nil {
		ts.info.Recorded = true
	}
}

// resolveObjective mirrors the session's default-objective resolution so
// store provenance matches what actually ran.
func resolveObjective(o string) core.Objective {
	if o == "" {
		return core.ObjectiveThroughput
	}
	return core.Objective(o)
}
