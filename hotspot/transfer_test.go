package hotspot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
)

// TestTransferWarmStartHalvesTrialBudget is the subsystem's acceptance
// check: a full-budget cold session trains the knowledge base, and a
// warm-started session on the same workload (different seed) capped at HALF
// the cold session's trials must still reach the cold best. The priors skip
// the search straight to the good region, so the halved budget is enough.
func TestTransferWarmStartHalvesTrialBudget(t *testing.T) {
	dir := t.TempDir()
	base := Options{
		Benchmark:     "h2",
		Searcher:      "surrogate",
		BudgetMinutes: 30,
		Seed:          7,
		Noise:         -1,
		TransferDir:   dir,
	}
	cold, err := Tune(base)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Transfer == nil {
		t.Fatal("transfer-enabled session reports no transfer provenance")
	}
	if cold.Transfer.Priors != 0 || cold.Transfer.StoreEntries != 0 {
		t.Fatalf("first session over an empty store must start cold: %+v", cold.Transfer)
	}
	if !cold.Transfer.Recorded {
		t.Fatal("cold session's winner was not recorded into the store")
	}

	warm := base
	warm.Seed = 8
	warm.MaxTrials = cold.Trials / 2
	res, err := Tune(warm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfer == nil || res.Transfer.Priors < 1 {
		t.Fatalf("warm session injected no priors: %+v", res.Transfer)
	}
	if res.Transfer.NearestWorkload != "h2" || res.Transfer.NearestDistance != 0 {
		t.Fatalf("same-workload fingerprint should be the nearest neighbour at distance 0: %+v", res.Transfer)
	}
	if res.Trials > cold.Trials/2 {
		t.Fatalf("warm session ran %d trials, cap was %d", res.Trials, cold.Trials/2)
	}
	if res.BestWall > cold.BestWall {
		t.Fatalf("warm session at half the trials (%d vs %d) missed the cold best: %.4fs > %.4fs",
			res.Trials, cold.Trials, res.BestWall, cold.BestWall)
	}
}

// TestTransferCrossWorkload pins that knowledge transfers BETWEEN
// workloads, not just across seeds of one: a store trained on h2 must warm
// a session on avrora (another DaCapo profile, nearby in fingerprint space
// but not identical).
func TestTransferCrossWorkload(t *testing.T) {
	dir := t.TempDir()
	donor := Options{Benchmark: "h2", BudgetMinutes: 30, Seed: 3, Noise: -1, TransferDir: dir}
	if _, err := Tune(donor); err != nil {
		t.Fatal(err)
	}
	target := donor
	target.Benchmark = "avrora"
	res, err := Tune(target)
	if err != nil {
		t.Fatal(err)
	}
	x := res.Transfer
	if x == nil || x.Priors < 1 {
		t.Fatalf("cross-workload session injected no priors: %+v", x)
	}
	if x.NearestWorkload != "h2" {
		t.Fatalf("nearest neighbour = %q, want h2", x.NearestWorkload)
	}
	if x.NearestDistance <= 0 {
		t.Fatalf("distinct workloads at distance %v, want > 0", x.NearestDistance)
	}
}

// TestTransferOffLeavesSessionByteIdentical pins the transfer-off
// guarantee: a session with an empty knowledge base produces a
// byte-identical event trace and an equivalent checkpoint fingerprint to
// one with transfer disabled entirely — the subsystem contributes nothing
// (not even RNG draws or checkpoint fields) until the store actually holds
// priors. Checkpoint FILES are not compared byte-for-byte because the
// keeper writes them asynchronously (a busy write skips a cadence point),
// so which trial the final snapshot covers is wall-clock dependent even
// with transfer out of the picture; the loaded Meta is the deterministic
// part.
func TestTransferOffLeavesSessionByteIdentical(t *testing.T) {
	run := func(transferDir string) (trace []byte, meta checkpoint.Meta, res *Result) {
		t.Helper()
		ckptPath := filepath.Join(t.TempDir(), "s.ckpt")
		tr := NewTracer(1 << 16)
		res, err := Tune(Options{
			Benchmark:             "fop",
			BudgetMinutes:         30,
			Seed:                  3,
			Noise:                 -1,
			Trace:                 tr,
			CheckpointPath:        ckptPath,
			CheckpointEveryTrials: 4,
			TransferDir:           transferDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		snap, err := checkpoint.Load(ckptPath)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), snap.Meta, res
	}

	offTrace, offMeta, offRes := run("")
	emptyTrace, emptyMeta, emptyRes := run(t.TempDir())

	if offRes.Transfer != nil {
		t.Fatal("transfer-off session reports transfer provenance")
	}
	if emptyRes.Transfer == nil || emptyRes.Transfer.Priors != 0 {
		t.Fatalf("empty-store session should report a cold start: %+v", emptyRes.Transfer)
	}
	if !bytes.Equal(offTrace, emptyTrace) {
		t.Error("event traces differ between transfer-off and empty-store sessions")
	}
	if offMeta != emptyMeta {
		t.Errorf("checkpoint fingerprints differ: %+v vs %+v", offMeta, emptyMeta)
	}
	if emptyMeta.Transfer != "" {
		t.Errorf("empty-store session checkpointed a transfer fingerprint %q", emptyMeta.Transfer)
	}
	if offRes.Best.Key() != emptyRes.Best.Key() || offRes.BestWall != emptyRes.BestWall {
		t.Errorf("outcomes differ: %q %.4f vs %q %.4f",
			offRes.Best.Key(), offRes.BestWall, emptyRes.Best.Key(), emptyRes.BestWall)
	}
}

// TestTransferBogusStoreDegradesToCold pins fail-open behavior at the
// session level: a future-version store (written by a newer build) must
// neither fail the session nor be touched, and a corrupt store is moved
// aside and rebuilt — either way the session completes.
func TestTransferBogusStoreDegradesToCold(t *testing.T) {
	dir := t.TempDir()
	// Future version: magic "ATTS" then version 99.
	path := filepath.Join(dir, "transfer.store")
	future := []byte{'A', 'T', 'T', 'S', 99, 0, 0, 0}
	if err := os.WriteFile(path, future, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(Options{Benchmark: "fop", BudgetMinutes: 20, Seed: 5, Noise: -1, TransferDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfer == nil || res.Transfer.Priors != 0 {
		t.Fatalf("future-version store should yield a cold start: %+v", res.Transfer)
	}
	if res.Transfer.Recorded {
		t.Fatal("an older build must not write through a future-version store")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, future) {
		t.Fatal("future-version store bytes were modified")
	}
}
