package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Meta: Meta{
			Workload:      "h2",
			Searcher:      "hillclimb",
			Objective:     "throughput",
			Runner:        "*runner.InProcess",
			Seed:          42,
			BudgetSeconds: 1200,
			Reps:          3,
			Workers:       2,
			MaxTrials:     50,
		},
		Trial:     12,
		Elapsed:   431.5,
		BestKey:   "-Xmx2g",
		BestScore: 17.25,
		Baseline:  runner.Measurement{Key: "", Walls: []float64{20, 21}, Mean: 20.5, CostSeconds: 42, Attempts: 1},
		Trials: []TrialRecord{
			{Seq: 0, Key: "-Xmx1g", M: runner.Measurement{Key: "-Xmx1g", Mean: 19, CostSeconds: 20, Attempts: 1}},
			{Seq: 1, Key: "-Xmx2g", M: runner.Measurement{Key: "-Xmx2g", Mean: 17.25, CostSeconds: 18, Attempts: 2, Flakes: 1}},
		},
		RunnerState: []byte(`{"elapsed":431.5}`),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Meta != want.Meta || got.Trial != want.Trial || got.BestKey != want.BestKey {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if len(got.Trials) != 2 || got.Trials[1].M.Flakes != 1 {
		t.Fatalf("trial log mismatch: %+v", got.Trials)
	}
	if string(got.RunnerState) != string(want.RunnerState) {
		t.Fatalf("runner state mismatch: %s", got.RunnerState)
	}
}

func TestDecodeFailsClosed(t *testing.T) {
	var valid bytes.Buffer
	if err := sampleSnapshot().Encode(&valid); err != nil {
		t.Fatal(err)
	}
	v := valid.Bytes()

	futureHeader := append([]byte(magic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(futureHeader[4:], Version+7)

	badCRC := append([]byte(nil), v...)
	badCRC[len(badCRC)-1] ^= 0xff

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"short header", []byte("ATC"), ErrCorrupt},
		{"bad magic", append([]byte("JUNK"), v[4:]...), ErrCorrupt},
		{"version zero", append([]byte(magic), 0, 0, 0, 0), ErrCorrupt},
		{"future version", futureHeader, ErrFutureVersion},
		{"header only", v[:headerSize], ErrCorrupt},
		{"torn record header", v[:headerSize+3], ErrCorrupt},
		{"truncated payload", v[:len(v)-5], ErrCorrupt},
		{"bad crc", badCRC, ErrCorrupt},
		{"trailing garbage", append(append([]byte(nil), v...), 'x'), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(tc.data)); !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsImplausibleLength(t *testing.T) {
	var b bytes.Buffer
	if err := writeHeader(&b); err != nil {
		t.Fatal(err)
	}
	var h [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(h[:4], maxRecordBytes+1)
	b.Write(h[:])
	if _, err := Decode(bytes.NewReader(b.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.ckpt")

	if _, err := Load(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Load(missing) = %v, want ErrNotExist", err)
	}

	first := sampleSnapshot()
	if err := first.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	second := sampleSnapshot()
	second.Trial = 40
	if err := second.Save(path); err != nil {
		t.Fatalf("Save (overwrite): %v", err)
	}

	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Trial != 40 {
		t.Fatalf("Load returned trial %d, want 40", got.Trial)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly the snapshot file, got %d entries", len(entries))
	}
}

func TestMetaCheck(t *testing.T) {
	base := sampleSnapshot().Meta
	if err := base.Check(base); err != nil {
		t.Fatalf("identical meta rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Meta)
	}{
		{"seed", func(m *Meta) { m.Seed = 7 }},
		{"searcher", func(m *Meta) { m.Searcher = "random" }},
		{"workload", func(m *Meta) { m.Workload = "xml" }},
		{"objective", func(m *Meta) { m.Objective = "pause" }},
		{"runner", func(m *Meta) { m.Runner = "*runner.Subprocess" }},
		{"budget_seconds", func(m *Meta) { m.BudgetSeconds = 60 }},
		{"reps", func(m *Meta) { m.Reps = 1 }},
		{"workers", func(m *Meta) { m.Workers = 8 }},
		{"max_trials", func(m *Meta) { m.MaxTrials = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := base
			tc.mutate(&want)
			err := base.Check(want)
			if err == nil {
				t.Fatal("mismatched meta accepted")
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Fatalf("error %q does not name field %q", err, tc.name)
			}
		})
	}
}

func TestKeeperCadence(t *testing.T) {
	k := NewKeeper(filepath.Join(t.TempDir(), "s.ckpt"), 5, nil)
	k.SyncWrites = true
	if k.Due(4) {
		t.Fatal("due before cadence")
	}
	if !k.Due(5) {
		t.Fatal("not due at cadence")
	}
	snap := sampleSnapshot()
	snap.Trial = 5
	if !k.Write(snap) {
		t.Fatal("sync write skipped")
	}
	if k.Due(9) {
		t.Fatal("due again before next cadence")
	}
	if !k.Due(10) {
		t.Fatal("not due at next cadence")
	}
	if err := k.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Load(k.Path()); err != nil {
		t.Fatalf("keeper wrote unreadable snapshot: %v", err)
	}
}

func TestKeeperDefaultCadenceAndNil(t *testing.T) {
	k := NewKeeper("x", 0, nil)
	if k.Due(DefaultEveryTrials - 1) {
		t.Fatal("default cadence fired early")
	}
	if !k.Due(DefaultEveryTrials) {
		t.Fatal("default cadence never fired")
	}
	var nilK *Keeper
	if nilK.Due(100) || nilK.Write(nil) || nilK.Path() != "" {
		t.Fatal("nil keeper is not a no-op")
	}
	if err := nilK.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestKeeperReportsWriteError(t *testing.T) {
	reg := telemetry.New()
	k := NewKeeper(filepath.Join(t.TempDir(), "no-such-dir", "s.ckpt"), 1, reg)
	k.SyncWrites = true
	k.Write(sampleSnapshot())
	if err := k.Close(); err == nil {
		t.Fatal("Close returned nil after failed write")
	}
	if got := reg.Counter("checkpoint_write_errors_total").Value(); got != 1 {
		t.Fatalf("checkpoint_write_errors_total = %d, want 1", got)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	reg := telemetry.New()
	path := filepath.Join(t.TempDir(), "journal.wal")

	j, records, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatalf("OpenJournal (fresh): %v", err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(records))
	}
	for _, p := range []string{`{"op":"submit","id":1}`, `{"op":"state","id":1}`, `{"op":"done","id":1}`} {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Append([]byte("after close")); err == nil {
		t.Fatal("Append after Close succeeded")
	}

	j2, records, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatalf("OpenJournal (reopen): %v", err)
	}
	defer j2.Close()
	if len(records) != 3 || string(records[2]) != `{"op":"done","id":1}` {
		t.Fatalf("replay mismatch: %q", records)
	}
	if got := reg.Counter("journal_appends_total").Value(); got != 3 {
		t.Fatalf("journal_appends_total = %d, want 3", got)
	}
}

func TestJournalSalvagesCorruptTail(t *testing.T) {
	reg := telemetry.New()
	path := filepath.Join(t.TempDir(), "journal.wal")

	j, _, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn record header at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, records, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatalf("OpenJournal after torn tail: %v", err)
	}
	if len(records) != 2 || string(records[0]) != "one" || string(records[1]) != "two" {
		t.Fatalf("salvage lost the valid prefix: %q", records)
	}
	if got := reg.Counter("journal_salvaged_total").Value(); got != 1 {
		t.Fatalf("journal_salvaged_total = %d, want 1", got)
	}
	// The truncated journal must accept and retain fresh appends.
	if err := j2.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, records, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatalf("OpenJournal after salvage+append: %v", err)
	}
	defer j3.Close()
	if len(records) != 3 || string(records[2]) != "three" {
		t.Fatalf("post-salvage append lost: %q", records)
	}
}

func TestJournalRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenJournal(garbage) = %v, want ErrCorrupt", err)
	}

	future := filepath.Join(t.TempDir(), "future.wal")
	h := append([]byte(magic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(h[4:], Version+1)
	if err := os.WriteFile(future, h, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(future, nil); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("OpenJournal(future) = %v, want ErrFutureVersion", err)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Append([]byte("x")); err != nil {
		t.Fatalf("nil Append: %v", err)
	}
	if got := j.Size(); got != 0 {
		t.Fatalf("nil Size: %d", got)
	}
	if err := j.Rewrite([][]byte{[]byte("x")}); err != nil {
		t.Fatalf("nil Rewrite: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestJournalRewrite(t *testing.T) {
	reg := telemetry.New()
	path := filepath.Join(t.TempDir(), "journal.wal")

	j, _, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append([]byte("padding record to inflate the journal")); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Size()

	// Compact down to two live records: the file shrinks, and the journal
	// keeps accepting appends after the rewritten tail.
	live := [][]byte{[]byte("alpha"), []byte("beta")}
	if err := j.Rewrite(live); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if after := j.Size(); after >= before {
		t.Fatalf("Rewrite did not shrink the journal: %d -> %d bytes", before, after)
	}
	if err := j.Append([]byte("gamma")); err != nil {
		t.Fatalf("Append after Rewrite: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, records, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatalf("OpenJournal after Rewrite: %v", err)
	}
	defer j2.Close()
	want := []string{"alpha", "beta", "gamma"}
	if len(records) != len(want) {
		t.Fatalf("replayed %d records, want %d: %q", len(records), len(want), records)
	}
	for i, w := range want {
		if string(records[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, records[i], w)
		}
	}
	if got := reg.Counter("journal_compactions_total").Value(); got != 1 {
		t.Fatalf("journal_compactions_total = %d, want 1", got)
	}
	// No temp file should survive a successful rewrite.
	if stale, _ := filepath.Glob(path + ".compact*"); len(stale) != 0 {
		t.Fatalf("stale temp files after successful Rewrite: %v", stale)
	}
}

func TestJournalSweepsStaleCompactionTemps(t *testing.T) {
	reg := telemetry.New()
	path := filepath.Join(t.TempDir(), "journal.wal")

	j, _, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("survivor")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// A crash between writing the compaction temp and renaming it leaves
	// the temp stranded; it holds no authoritative state and must go.
	stale := path + ".compact12345"
	if err := os.WriteFile(stale, []byte("half-written compaction"), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, records, err := OpenJournal(path, reg)
	if err != nil {
		t.Fatalf("OpenJournal with stale temp: %v", err)
	}
	defer j2.Close()
	if len(records) != 1 || string(records[0]) != "survivor" {
		t.Fatalf("stale temp corrupted replay: %q", records)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp not swept: %v", err)
	}
	if got := reg.Counter("journal_stale_temps_removed_total").Value(); got != 1 {
		t.Fatalf("journal_stale_temps_removed_total = %d, want 1", got)
	}
}
