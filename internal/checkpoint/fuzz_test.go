package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runner"
)

// FuzzSnapshotDecode hammers the snapshot decoder with arbitrary bytes. The
// contract under test is fail-closed decoding: any input either decodes to
// a snapshot that re-encodes cleanly, or returns one of the two sentinel
// errors — never a panic, never a partially-decoded snapshot.
func FuzzSnapshotDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := (&Snapshot{
		Meta:     Meta{Workload: "h2", Searcher: "random", Objective: "throughput", Seed: 1, Reps: 3},
		Trial:    3,
		BestKey:  "-Xmx1g",
		Baseline: fuzzBaseline(),
	}).Encode(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:headerSize])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFutureVersion) {
				t.Fatalf("decode error is neither ErrCorrupt nor ErrFutureVersion: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := s.Encode(&out); err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
	})
}

// FuzzJournalReplay feeds arbitrary bytes to the journal recovery path. A
// file the opener accepts must come back usable: appends land, and a
// reopen replays the salvage result plus the new record. A rejected file
// must fail with a sentinel error, not a panic, and must not be modified.
func FuzzJournalReplay(f *testing.F) {
	var fresh bytes.Buffer
	if err := writeHeader(&fresh); err != nil {
		f.Fatal(err)
	}
	withRecords := bytes.NewBuffer(append([]byte(nil), fresh.Bytes()...))
	for _, p := range []string{`{"op":"submit","id":1}`, `{"op":"done","id":1}`} {
		if err := writeRecord(withRecords, []byte(p)); err != nil {
			f.Fatal(err)
		}
	}
	f.Add([]byte{})
	f.Add(fresh.Bytes())
	f.Add(withRecords.Bytes())
	f.Add(withRecords.Bytes()[:withRecords.Len()-3]) // torn tail
	f.Add([]byte("not a journal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "j.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, records, err := OpenJournal(path, nil)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFutureVersion) {
				t.Fatalf("open error is neither sentinel: %v", err)
			}
			after, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(after, data) {
				t.Fatal("rejected journal was modified on disk")
			}
			return
		}
		if err := j.Append([]byte("probe")); err != nil {
			t.Fatalf("append to accepted journal: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		_, again, err := OpenJournal(path, nil)
		if err != nil {
			t.Fatalf("reopen after salvage: %v", err)
		}
		if len(again) != len(records)+1 || string(again[len(again)-1]) != "probe" {
			t.Fatalf("reopen replayed %d records, want %d plus probe", len(again), len(records)+1)
		}
	})
}

func fuzzBaseline() (m runner.Measurement) {
	m.Key = "default"
	m.Walls = []float64{20}
	m.Mean = 20
	m.CostSeconds = 20.5
	m.Attempts = 1
	return m
}
