package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/telemetry"
)

// Journal is an append-only write-ahead log of framed records, used by the
// tuning farm to make job submissions, state transitions, and results
// durable. Appends are fsynced before returning, so a record the caller saw
// accepted survives a crash. Rewrite compacts the log in place (atomically,
// via a temp file renamed over the journal) once the caller decides the
// append history has grown past what its live state justifies.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64 // bytes of valid journal (header + records)
	closed bool
	tel    *telemetry.Registry
}

// OpenJournal opens (or creates) the journal at path and replays it,
// returning the decoded record payloads in append order.
//
// Recovery is deliberately forgiving about the tail and strict about the
// head: a crash mid-append legitimately leaves a torn last record, so a
// corrupt tail is truncated back to the end of the valid prefix and the
// journal reopens for appends — losing only the record that never finished.
// A corrupt header, by contrast, means the file is not a journal at all
// (or was written by a future version), and replaying a guess would
// resurrect a farm state that never existed; that fails closed.
func OpenJournal(path string, tel *telemetry.Registry) (*Journal, [][]byte, error) {
	// A crash mid-Rewrite can strand a temp file next to the journal; it
	// was never renamed, so it holds no authoritative state — sweep it.
	if stale, _ := filepath.Glob(path + ".compact*"); len(stale) > 0 {
		for _, p := range stale {
			os.Remove(p)
		}
		tel.Counter("journal_stale_temps_removed_total").Add(uint64(len(stale)))
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path, tel: tel}

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if st.Size() == 0 {
		if err := writeHeader(f); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: init header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: init sync: %w", err)
		}
		j.size = headerSize
		return j, nil, nil
	}

	if _, err := readHeader(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}

	var records [][]byte
	valid := int64(headerSize) // byte offset of the end of the valid prefix
	for {
		payload, err := readRecord(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				f.Close()
				return nil, nil, fmt.Errorf("journal %s: %w", path, err)
			}
			// Torn tail from a crash mid-append: salvage the valid prefix.
			if terr := f.Truncate(valid); terr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal %s: truncate corrupt tail: %w", path, terr)
			}
			if serr := f.Sync(); serr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal %s: sync after truncate: %w", path, serr)
			}
			tel.Counter("journal_salvaged_total").Inc()
			break
		}
		records = append(records, payload)
		valid += recordHeaderSize + int64(len(payload))
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: seek: %w", path, err)
	}
	j.size = valid
	tel.Counter("journal_records_replayed_total").Add(uint64(len(records)))
	return j, records, nil
}

// Size returns the journal's current on-disk size in bytes (header plus
// valid records). Callers use it to decide when a Rewrite pays off.
func (j *Journal) Size() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Append durably writes one record: framed, then fsynced.
func (j *Journal) Append(payload []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if err := writeRecord(j.f, payload); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: append sync: %w", err)
	}
	j.size += recordHeaderSize + int64(len(payload))
	j.tel.Counter("journal_appends_total").Inc()
	return nil
}

// Rewrite atomically replaces the journal's contents with the given record
// payloads: they are written to a temp file in the journal's directory,
// fsynced, and renamed over the journal — a crash at any point leaves
// either the complete old log or the complete new one, never a mix. The
// stranded temp of a crash-before-rename is swept by the next OpenJournal.
// On success the journal continues appending after the last new record.
func (j *Journal) Rewrite(payloads [][]byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	f, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".compact*")
	if err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	tmp := f.Name()
	abort := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := writeHeader(f); err != nil {
		return abort(fmt.Errorf("journal: rewrite header: %w", err))
	}
	size := int64(headerSize)
	for _, p := range payloads {
		if err := writeRecord(f, p); err != nil {
			return abort(fmt.Errorf("journal: rewrite record: %w", err))
		}
		size += recordHeaderSize + int64(len(p))
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("journal: rewrite sync: %w", err))
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return abort(fmt.Errorf("journal: rewrite: %w", err))
	}
	// The temp fd is now the journal: positioned at its end, ready for
	// appends. Close the superseded file only after the swap is in place.
	old := j.f
	j.f = f
	j.size = size
	old.Close()
	j.tel.Counter("journal_compactions_total").Inc()
	return nil
}

// Close closes the journal; later Appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
