package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/telemetry"
)

// Journal is an append-only write-ahead log of framed records, used by the
// tuning farm to make job submissions, state transitions, and results
// durable. Appends are fsynced before returning, so a record the caller saw
// accepted survives a crash.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	closed bool
	tel    *telemetry.Registry
}

// OpenJournal opens (or creates) the journal at path and replays it,
// returning the decoded record payloads in append order.
//
// Recovery is deliberately forgiving about the tail and strict about the
// head: a crash mid-append legitimately leaves a torn last record, so a
// corrupt tail is truncated back to the end of the valid prefix and the
// journal reopens for appends — losing only the record that never finished.
// A corrupt header, by contrast, means the file is not a journal at all
// (or was written by a future version), and replaying a guess would
// resurrect a farm state that never existed; that fails closed.
func OpenJournal(path string, tel *telemetry.Registry) (*Journal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, tel: tel}

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if st.Size() == 0 {
		if err := writeHeader(f); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: init header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: init sync: %w", err)
		}
		return j, nil, nil
	}

	if _, err := readHeader(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}

	var records [][]byte
	valid := int64(headerSize) // byte offset of the end of the valid prefix
	for {
		payload, err := readRecord(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				f.Close()
				return nil, nil, fmt.Errorf("journal %s: %w", path, err)
			}
			// Torn tail from a crash mid-append: salvage the valid prefix.
			if terr := f.Truncate(valid); terr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal %s: truncate corrupt tail: %w", path, terr)
			}
			if serr := f.Sync(); serr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal %s: sync after truncate: %w", path, serr)
			}
			tel.Counter("journal_salvaged_total").Inc()
			break
		}
		records = append(records, payload)
		valid += recordHeaderSize + int64(len(payload))
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: seek: %w", path, err)
	}
	tel.Counter("journal_records_replayed_total").Add(uint64(len(records)))
	return j, records, nil
}

// Append durably writes one record: framed, then fsynced.
func (j *Journal) Append(payload []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if err := writeRecord(j.f, payload); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: append sync: %w", err)
	}
	j.tel.Counter("journal_appends_total").Inc()
	return nil
}

// Close closes the journal; later Appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
