package checkpoint

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// DefaultEveryTrials is the checkpoint cadence when the caller does not pick
// one: frequent enough that a crash loses at most a handful of trials, rare
// enough that the write cost (a few-kilobyte JSON marshal plus an fsync) is
// noise next to even one virtual measurement.
const DefaultEveryTrials = 8

// Keeper writes session snapshots to a fixed path on a trial cadence
// without blocking the session. The engine hands it a fully-built Snapshot
// at a round boundary (a cheap in-memory copy); the encode, fsync, and
// atomic rename happen on a background goroutine. If that write is still in
// flight when the next one is due, the new snapshot is skipped rather than
// queued — a checkpoint is a whole-state document, so the freshest one to
// finish wins and a backlog would only delay it.
type Keeper struct {
	path string
	// Every is the trial cadence; zero means DefaultEveryTrials.
	Every int
	// SyncWrites makes Write complete the disk write before returning.
	// Tests use it to assert on-disk state; production leaves it off.
	SyncWrites bool

	tel *telemetry.Registry

	mu   sync.Mutex
	last int  // trial count at the most recent accepted write
	busy bool // a background write is in flight
	err  error
	wg   sync.WaitGroup
}

// NewKeeper returns a Keeper writing to path. tel may be nil.
func NewKeeper(path string, everyTrials int, tel *telemetry.Registry) *Keeper {
	return &Keeper{path: path, Every: everyTrials, tel: tel}
}

// Path returns the checkpoint destination.
func (k *Keeper) Path() string {
	if k == nil {
		return ""
	}
	return k.path
}

// Due reports whether a session at the given trial count should checkpoint.
func (k *Keeper) Due(trial int) bool {
	if k == nil {
		return false
	}
	every := k.Every
	if every <= 0 {
		every = DefaultEveryTrials
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return trial-k.last >= every
}

// Write persists snap asynchronously (synchronously when SyncWrites is
// set). Returns false when skipped because a prior write is still running.
func (k *Keeper) Write(snap *Snapshot) bool {
	if k == nil {
		return false
	}
	k.mu.Lock()
	if k.busy {
		k.mu.Unlock()
		k.tel.Counter("checkpoint_write_skipped_total").Inc()
		return false
	}
	k.busy = true
	k.last = snap.Trial
	k.mu.Unlock()

	if k.SyncWrites {
		k.save(snap)
		return true
	}
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		k.save(snap)
	}()
	return true
}

func (k *Keeper) save(snap *Snapshot) {
	start := time.Now()
	err := snap.Save(k.path)
	k.tel.Histogram("checkpoint_write_seconds", telemetry.DefLatencyBuckets).Observe(time.Since(start).Seconds())
	if err != nil {
		k.tel.Counter("checkpoint_write_errors_total").Inc()
	} else {
		k.tel.Counter("checkpoint_writes_total").Inc()
		k.tel.Gauge("checkpoint_last_trial").Set(float64(snap.Trial))
	}
	k.mu.Lock()
	k.busy = false
	if err != nil {
		k.err = err
	}
	k.mu.Unlock()
}

// Close waits for any in-flight write and returns the last write error, if
// any. Safe on nil.
func (k *Keeper) Close() error {
	if k == nil {
		return nil
	}
	k.wg.Wait()
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.err
}
