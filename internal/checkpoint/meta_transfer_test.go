package checkpoint

import (
	"bytes"
	"strings"
	"testing"
)

// TestMetaTransferMismatch pins the warm-start resume guard: a checkpoint
// taken under one set of transfer priors refuses to resume under another
// (or cold), where measurement-log replay would diverge.
func TestMetaTransferMismatch(t *testing.T) {
	warm := Meta{Workload: "h2", Searcher: "surrogate", Transfer: "fp:abc k:3"}
	cold := warm
	cold.Transfer = ""
	if err := warm.Check(cold); err == nil || !strings.Contains(err.Error(), "transfer") {
		t.Fatalf("warm checkpoint resumed cold: %v", err)
	}
	if err := warm.Check(warm); err != nil {
		t.Fatalf("identical transfer fingerprints must match: %v", err)
	}
}

// TestMetaTransferOmittedWhenCold keeps transfer-off snapshots byte-identical
// to those of builds that predate the field.
func TestMetaTransferOmittedWhenCold(t *testing.T) {
	var buf bytes.Buffer
	s := &Snapshot{Meta: Meta{Workload: "h2", Searcher: "random", Objective: "throughput", Seed: 1, Reps: 3}, Baseline: fuzzBaseline()}
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"transfer"`)) {
		t.Fatal("cold snapshot serializes a transfer field")
	}
}
