// Package checkpoint is the tuner's durability layer: crash-safe snapshots
// of in-flight tuning sessions and an append-only write-ahead journal for
// the tuning farm.
//
// The paper's headline cost is wall-clock — up to 200 minutes of tuning per
// program — so losing in-flight state to a crash, OOM, or operator restart
// forfeits real time. This package makes that state durable with one shared
// on-disk framing: a magic+version header followed by length- and
// CRC32-guarded records. Snapshots are whole-file documents rotated
// atomically (written to a temp file, fsynced, then renamed over the old
// snapshot, so a reader only ever sees a complete snapshot or the previous
// one); journals are append-only record streams whose recovery path salvages
// the valid prefix of a truncated or corrupted tail instead of refusing to
// start. Decoding fails closed: corrupt headers, torn records, CRC
// mismatches, and future format versions are errors, never panics and never
// partially-applied state.
//
// A session Snapshot captures everything a killed session needs to continue
// and converge to the byte-identical outcome of an uninterrupted run: the
// session fingerprint (Meta), the baseline measurement, the ordered log of
// every delivered measurement, and the runner's per-key state (evaluated-
// config cache, noise-rep indices, chaos-layer counters, elapsed virtual
// clock). Searcher and RNG state are deliberately *not* serialized —
// searchers key in-flight work by pointer, which no flat encoding survives.
// Instead core.Session replays the measurement log through the searcher on
// resume: the engine is deterministic, so replay reconstructs searcher and
// RNG state exactly. See core.Session.Resume and docs/DURABILITY.md.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the on-disk format version written by this build; readers
// reject anything newer (fail closed — a future format may carry state this
// build would silently drop).
const Version = 1

// magic opens every checkpoint file and journal.
const magic = "ATCK"

// headerSize is the byte length of the file header (magic + version).
const headerSize = 8

// recordHeaderSize is the byte length of each record's frame (length + CRC).
const recordHeaderSize = 8

// maxRecordBytes bounds a single record. Real snapshots are a few megabytes
// at most; anything claiming more is a garbled length field, and failing
// here keeps a corrupt file from turning into a multi-gigabyte allocation.
const maxRecordBytes = 1 << 28

// Sentinel decode errors, matched with errors.Is.
var (
	// ErrCorrupt marks unreadable on-disk state: bad magic, torn records,
	// CRC mismatches, implausible lengths.
	ErrCorrupt = errors.New("checkpoint: corrupt data")
	// ErrFutureVersion marks files written by a newer format revision.
	ErrFutureVersion = errors.New("checkpoint: future format version")
)

// writeHeader emits the file header: magic then version, little-endian.
func writeHeader(w io.Writer) error {
	var h [headerSize]byte
	copy(h[:4], magic)
	binary.LittleEndian.PutUint32(h[4:], Version)
	_, err := w.Write(h[:])
	return err
}

// readHeader validates the header and returns the file's format version.
func readHeader(r io.Reader) (uint32, error) {
	var h [headerSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(h[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, h[:4])
	}
	v := binary.LittleEndian.Uint32(h[4:])
	if v == 0 {
		return 0, fmt.Errorf("%w: version 0", ErrCorrupt)
	}
	if v > Version {
		return v, fmt.Errorf("%w: %d (this build reads up to %d)", ErrFutureVersion, v, Version)
	}
	return v, nil
}

// writeRecord frames one payload: length, CRC32 (IEEE) of the payload, then
// the payload itself.
func writeRecord(w io.Writer, payload []byte) error {
	var h [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(h[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRecord reads the next framed payload. A clean end of stream returns
// io.EOF; a torn header, truncated payload, implausible length, or CRC
// mismatch returns an error wrapping ErrCorrupt, which journal recovery
// treats as "the valid prefix ends here".
func readRecord(r io.Reader) ([]byte, error) {
	var h [recordHeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn record header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(h[:4])
	if n > maxRecordBytes {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated record (want %d bytes)", ErrCorrupt, n)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(h[4:]); got != want {
		return nil, fmt.Errorf("%w: record CRC mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return payload, nil
}
