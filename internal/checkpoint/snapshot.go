package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/runner"
)

// Meta fingerprints the session that wrote a snapshot. Resume refuses a
// checkpoint whose fingerprint disagrees with the session being started:
// replay only reconstructs searcher and RNG state when every determinism
// input matches, and silently continuing with a different seed or searcher
// would produce a report that looks authoritative but corresponds to no
// real run.
type Meta struct {
	Workload      string  `json:"workload"`
	Searcher      string  `json:"searcher"`
	Objective     string  `json:"objective"`
	Runner        string  `json:"runner"` // concrete runner type, e.g. "*runner.InProcess"
	Seed          int64   `json:"seed"`
	BudgetSeconds float64 `json:"budget_seconds"`
	Reps          int     `json:"reps"`
	Workers       int     `json:"workers"`
	MaxTrials     int     `json:"max_trials"`
	// Robustness fingerprints the session's straggler-hedging and
	// failure-quarantine options — they steer which trials run, so a
	// checkpoint cannot resume under different settings. Empty when both
	// are off, which keeps snapshots from older builds loadable.
	Robustness string `json:"robustness,omitempty"`
	// Transfer fingerprints the warm-start priors injected into the
	// session's searcher — they steer the very first proposals, so a
	// checkpoint taken warm cannot resume cold or under different priors.
	// Empty for cold sessions, which keeps snapshots from older builds
	// loadable and transfer-off snapshots byte-identical.
	Transfer string `json:"transfer,omitempty"`
	// Drift fingerprints the session's workload-drift options: the phase
	// schedule the workload follows and the detector the session re-tunes
	// under. Both steer which trials run and when the searcher is rebuilt,
	// so a drifting checkpoint cannot resume stationary (or under a
	// different script or sensitivity). Empty when drift is off, which
	// keeps stationary snapshots byte-identical to older builds.
	Drift string `json:"drift,omitempty"`
}

// Check reports the first fingerprint mismatch between the checkpoint's
// metadata and the resuming session's, or nil if they agree.
func (m Meta) Check(want Meta) error {
	type field struct {
		name      string
		got, want any
	}
	for _, f := range []field{
		{"workload", m.Workload, want.Workload},
		{"searcher", m.Searcher, want.Searcher},
		{"objective", m.Objective, want.Objective},
		{"runner", m.Runner, want.Runner},
		{"seed", m.Seed, want.Seed},
		{"budget_seconds", m.BudgetSeconds, want.BudgetSeconds},
		{"reps", m.Reps, want.Reps},
		{"workers", m.Workers, want.Workers},
		{"max_trials", m.MaxTrials, want.MaxTrials},
		{"robustness", m.Robustness, want.Robustness},
		{"transfer", m.Transfer, want.Transfer},
		{"drift", m.Drift, want.Drift},
	} {
		if f.got != f.want {
			return fmt.Errorf("checkpoint: %s mismatch: checkpoint has %v, session wants %v", f.name, f.got, f.want)
		}
	}
	return nil
}

// TrialRecord is one delivered measurement: the dispatch sequence number the
// engine assigned the trial, the flag-set key it evaluated, and the
// measurement the searcher observed. Seq and Key double as divergence
// checks on replay — if the resumed engine proposes a different config for a
// recorded seq, the determinism inputs changed and resume aborts rather
// than splicing mismatched histories.
type TrialRecord struct {
	Seq int                `json:"seq"`
	Key string             `json:"key"`
	M   runner.Measurement `json:"m"`
}

// PriorRecord serializes one warm-start prior a re-tuning epoch was opened
// with: the configuration (by canonical key and full-fidelity args) and its
// baseline-relative quality signal. Recorded verbatim so a resumed session
// rebuilds the epoch's searcher from exactly the priors the original run
// used — the transfer store the priors came from may have changed since.
type PriorRecord struct {
	Key  string   `json:"key"`
	Args []string `json:"args,omitempty"`
	Norm float64  `json:"norm"`
}

// EpochRecord is one re-tuning epoch a drifting session opened: at which
// trial, into which workload phase, and with which warm-start priors. The
// detector itself needs no state here — it is a pure fold over the trial
// log, so replay reconstructs it — but the priors are an external input
// (transfer-store lookups) and must be replayed verbatim.
type EpochRecord struct {
	Epoch  int           `json:"epoch"`
	Phase  int           `json:"phase"`
	Trial  int           `json:"trial"` // trials delivered when the epoch opened
	Priors []PriorRecord `json:"priors,omitempty"`
}

// Snapshot is a complete session checkpoint: everything needed to continue
// a killed run and converge to the byte-identical outcome of an
// uninterrupted one. Trials is the ordered log of delivered measurements;
// RunnerState is the runner's own opaque serialization (evaluated-config
// cache, noise-rep indices, chaos counters, elapsed virtual clock) produced
// by runner.StateSnapshotter. Epochs lists the re-tuning epochs a drifting
// session has opened (empty for stationary sessions, keeping their
// snapshots loadable by older builds — and older snapshots loadable here).
type Snapshot struct {
	Meta        Meta               `json:"meta"`
	Trial       int                `json:"trial"`   // trials completed when the snapshot was taken
	Elapsed     float64            `json:"elapsed"` // virtual seconds consumed
	BestKey     string             `json:"best_key"`
	BestScore   float64            `json:"best_score"`
	Baseline    runner.Measurement `json:"baseline"`
	Trials      []TrialRecord      `json:"trials"`
	Epochs      []EpochRecord      `json:"epochs,omitempty"`
	RunnerState json.RawMessage    `json:"runner_state,omitempty"`
}

// Encode writes the snapshot to w: header, then one framed JSON record.
func (s *Snapshot) Encode(w io.Writer) error {
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("checkpoint: encode snapshot: %w", err)
	}
	if err := writeHeader(w); err != nil {
		return err
	}
	return writeRecord(w, payload)
}

// Decode reads a snapshot written by Encode, failing closed on anything
// malformed: bad magic, future version, torn or CRC-corrupt record,
// non-JSON payload, or trailing garbage after the snapshot record.
func Decode(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	if _, err := readHeader(br); err != nil {
		return nil, err
	}
	payload, err := readRecord(br)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: missing snapshot record", ErrCorrupt)
		}
		return nil, err
	}
	var s Snapshot
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: snapshot payload: %v", ErrCorrupt, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after snapshot record", ErrCorrupt)
	}
	return &s, nil
}

// Save atomically replaces the snapshot at path: the bytes go to a temp
// file in the same directory, are fsynced, and only then renamed over the
// destination. A crash at any point leaves either the previous complete
// snapshot or the new one — never a torn file.
func (s *Snapshot) Save(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := s.Encode(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: save: sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: save: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// Load reads and validates the snapshot at path. The caller distinguishes
// "no checkpoint yet" with errors.Is(err, os.ErrNotExist).
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
