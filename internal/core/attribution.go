package core

import (
	"sort"

	"repro/internal/flags"
	"repro/internal/runner"
)

// FlagAttribution quantifies one flag's contribution to a winning
// configuration: how much slower the configuration gets when that single
// flag is reverted to its default.
type FlagAttribution struct {
	// Name is the flag; Value is the winning (non-default) setting.
	Name, Value string
	// DeltaPct is the relative slowdown from reverting the flag:
	// 100·(reverted − best)/best. Positive means the flag was pulling its
	// weight; near zero means it was a passenger; negative means the
	// winner would actually improve without it (noise artifacts and mild
	// interactions produce these).
	DeltaPct float64
	// Reverted reports whether the reverted configuration still ran;
	// false means removing the flag breaks the configuration outright
	// (e.g. reverting UseParNewGC=false under CMS).
	Reverted bool
}

// Attribute performs revert-one-flag analysis of a tuned configuration:
// for every flag the winner changed from its default, measure the
// configuration with just that flag restored. The cost is charged to the
// runner like any other measurement — attribution is an honest post-tuning
// experiment, not free introspection.
//
// Results are sorted by descending DeltaPct, so the first entries are the
// flags that actually won the session.
func Attribute(r runner.Runner, best *flags.Config, reps int) []FlagAttribution {
	if reps < 1 {
		reps = 3
	}
	base := r.Measure(best, reps)
	baseScore := Score(base)
	reg := best.Registry()
	changed := best.Diff(flags.NewConfig(reg))

	out := make([]FlagAttribution, 0, len(changed))
	for _, name := range changed {
		f := reg.Lookup(name)
		v, _ := best.Get(name)
		reverted := best.Clone()
		reverted.Unset(name)
		m := r.Measure(reverted, reps)
		fa := FlagAttribution{
			Name:     name,
			Value:    v.String(f.Type),
			Reverted: !m.Failed,
		}
		if !m.Failed && baseScore > 0 {
			fa.DeltaPct = 100 * (m.Mean - baseScore) / baseScore
		}
		out = append(out, fa)
	}
	sort.Slice(out, func(i, j int) bool {
		// Breaking flags (cannot revert) first — they are structurally
		// essential — then by descending contribution.
		if out[i].Reverted != out[j].Reverted {
			return !out[i].Reverted
		}
		if out[i].DeltaPct != out[j].DeltaPct {
			return out[i].DeltaPct > out[j].DeltaPct
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Minimize prunes a winning configuration down to the flags that earn
// their keep: passengers whose removal costs less than tolerancePct are
// reverted (least-contributing first, re-measuring after each removal so
// interaction effects are respected). The returned configuration performs
// within tolerancePct of the input; its measurements are charged to the
// runner.
//
// Tuned configurations accumulate noise-riding passengers — the paper's
// winners changed 10–25 flags, of which a handful matter. A minimal config
// is what one would actually deploy and document.
func Minimize(r runner.Runner, best *flags.Config, reps int, tolerancePct float64) *flags.Config {
	if reps < 1 {
		reps = 3
	}
	if tolerancePct <= 0 {
		tolerancePct = 1
	}
	attrs := Attribute(r, best, reps)
	current := best.Clone()
	budgetWall := Score(r.Measure(best, reps)) * (1 + tolerancePct/100)

	// Try removals least-contributing first.
	for i := len(attrs) - 1; i >= 0; i-- {
		a := attrs[i]
		if !a.Reverted {
			continue // structurally required
		}
		trial := current.Clone()
		trial.Unset(a.Name)
		m := r.Measure(trial, reps)
		if !m.Failed && Score(m) <= budgetWall {
			current = trial
		}
	}
	return current
}
