package core

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

func TestAttributeIdentifiesTheLoadBearingFlag(t *testing.T) {
	p, _ := workload.ByName("startup.compiler.compiler")
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	r := runner.NewInProcess(sim, p)

	// A hand-built winner: tiered compilation (the big lever) plus a
	// passenger flag with negligible effect.
	reg := flags.NewRegistry()
	best := flags.NewConfig(reg)
	best.SetBool("TieredCompilation", true)
	best.SetBool("ReduceSignalUsage", true) // ~0.2%

	attrs := Attribute(r, best, 1)
	if len(attrs) != 2 {
		t.Fatalf("expected 2 attributions, got %d: %+v", len(attrs), attrs)
	}
	if attrs[0].Name != "TieredCompilation" {
		t.Errorf("lead attribution should be TieredCompilation, got %s", attrs[0].Name)
	}
	if attrs[0].DeltaPct < 50 {
		t.Errorf("reverting tiered should cost >50%%, got %.1f%%", attrs[0].DeltaPct)
	}
	if attrs[1].DeltaPct > 5 {
		t.Errorf("passenger flag attributed %.1f%%", attrs[1].DeltaPct)
	}
	if attrs[0].Value != "true" {
		t.Errorf("attribution should carry the winning value, got %q", attrs[0].Value)
	}
}

func TestAttributeMarksStructurallyEssentialFlags(t *testing.T) {
	p, _ := workload.ByName("startup.scimark.monte_carlo") // tiny live set
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	r := runner.NewInProcess(sim, p)

	// A small-heap winner: reverting InitialHeapSize restores the 128 MB
	// default, which exceeds the 96 MB maximum — the VM refuses to start,
	// so the flag is structurally essential to this configuration.
	reg := flags.NewRegistry()
	best := flags.NewConfig(reg)
	best.SetInt("MaxHeapSize", 96<<20)
	best.SetInt("InitialHeapSize", 64<<20)

	attrs := Attribute(r, best, 1)
	byName := map[string]FlagAttribution{}
	for _, a := range attrs {
		byName[a.Name] = a
	}
	if a := byName["InitialHeapSize"]; a.Reverted {
		t.Error("reverting InitialHeapSize above MaxHeapSize should break startup")
	}
	if a := byName["MaxHeapSize"]; !a.Reverted {
		t.Error("reverting MaxHeapSize back to 512 MB should run fine")
	}
	if attrs[0].Name != "InitialHeapSize" {
		t.Errorf("breaking flags should sort first, got %s", attrs[0].Name)
	}
}

func TestAttributeChargesTheRunner(t *testing.T) {
	p, _ := workload.ByName("fop")
	r := runner.NewInProcess(jvmsim.New(), p)
	best := flags.NewConfig(flags.NewRegistry())
	best.SetBool("TieredCompilation", true)
	before := r.Elapsed()
	Attribute(r, best, 2)
	if r.Elapsed() <= before {
		t.Error("attribution measurements must consume virtual time")
	}
}

func TestAttributeEmptyDiff(t *testing.T) {
	p, _ := workload.ByName("fop")
	r := runner.NewInProcess(jvmsim.New(), p)
	if attrs := Attribute(r, flags.NewConfig(flags.NewRegistry()), 1); len(attrs) != 0 {
		t.Errorf("default config has nothing to attribute: %+v", attrs)
	}
}

func TestMinimizeDropsPassengersKeepsWinners(t *testing.T) {
	p, _ := workload.ByName("startup.compiler.compiler")
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	r := runner.NewInProcess(sim, p)

	reg := flags.NewRegistry()
	best := flags.NewConfig(reg)
	best.SetBool("TieredCompilation", true)  // the real winner
	best.SetBool("ReduceSignalUsage", true)  // passenger (+0.2%)
	best.SetInt("MaxJavaStackTraceDepth", 7) // inert passenger
	best.SetBool("UseGCTaskAffinity", true)  // near-zero effect

	min := Minimize(r, best, 1, 1.0)
	if !min.IsExplicit("TieredCompilation") || !min.Bool("TieredCompilation") {
		t.Error("minimization dropped the load-bearing flag")
	}
	if min.IsExplicit("MaxJavaStackTraceDepth") {
		t.Error("inert passenger survived minimization")
	}
	if len(min.ExplicitNames()) >= len(best.ExplicitNames()) {
		t.Errorf("nothing was pruned: %v", min.ExplicitNames())
	}

	// The minimal config must perform within tolerance.
	mBest := r.Measure(best, 1)
	mMin := r.Measure(min, 1)
	if mMin.Mean > mBest.Mean*1.015 {
		t.Errorf("minimal config too slow: %.2f vs %.2f", mMin.Mean, mBest.Mean)
	}
}

func TestMinimizeKeepsStructuralFlags(t *testing.T) {
	p, _ := workload.ByName("startup.scimark.monte_carlo")
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	r := runner.NewInProcess(sim, p)
	reg := flags.NewRegistry()
	best := flags.NewConfig(reg)
	best.SetInt("MaxHeapSize", 96<<20)
	best.SetInt("InitialHeapSize", 64<<20)
	min := Minimize(r, best, 1, 5)
	// InitialHeapSize cannot be removed while MaxHeapSize stays at 96 MB —
	// and if MaxHeapSize is pruned first (it is a passenger on this tiny
	// workload), InitialHeapSize may then go too. Whatever remains must
	// validate and run.
	m := r.Measure(min, 1)
	if m.Failed {
		t.Errorf("minimized config fails: %+v", m)
	}
}

func TestMinimizeDefaultsPassThrough(t *testing.T) {
	p, _ := workload.ByName("fop")
	r := runner.NewInProcess(jvmsim.New(), p)
	def := flags.NewConfig(flags.NewRegistry())
	min := Minimize(r, def, 0, 0) // exercises the parameter clamps too
	if len(min.ExplicitNames()) != 0 {
		t.Errorf("minimizing defaults should stay empty: %v", min.ExplicitNames())
	}
}
