package core

import (
	"testing"

	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Whole-session benchmarks: the cost of one complete budgeted tuning run
// per searcher. These quantify the orchestration overhead the virtual-time
// design buys back — a 200-virtual-minute session in tens of milliseconds.

func benchSession(b *testing.B, searcher string, budget float64) {
	b.Helper()
	p, ok := workload.ByName("xalan")
	if !ok {
		b.Fatal("no workload")
	}
	for i := 0; i < b.N; i++ {
		s, err := NewSearcher(searcher)
		if err != nil {
			b.Fatal(err)
		}
		session := &Session{
			Runner:        runner.NewInProcess(jvmsim.New(), p),
			Searcher:      s,
			BudgetSeconds: budget,
			Seed:          int64(i),
		}
		out, err := session.Run()
		if err != nil {
			b.Fatal(err)
		}
		if out.BestWall > out.DefaultWall {
			b.Fatal("tuned worse than default")
		}
	}
}

func BenchmarkSessionHierarchical(b *testing.B) { benchSession(b, "hierarchical", 6000) }
func BenchmarkSessionEnsemble(b *testing.B)     { benchSession(b, "ensemble", 6000) }
func BenchmarkSessionGeneticFlat(b *testing.B)  { benchSession(b, "genetic-flat", 6000) }
func BenchmarkSessionRandom(b *testing.B)       { benchSession(b, "random", 6000) }

// BenchmarkSessionThroughput16 is the headline hot-path benchmark: a
// 16-worker in-process tuning farm driven by the flat random searcher
// (mostly cache-miss proposals, so every trial pays the full
// propose → validate → format → simulate → observe path). The custom
// trials/s metric is the number the perf trajectory (BENCH_*.json) tracks.
func BenchmarkSessionThroughput16(b *testing.B) {
	p, ok := workload.ByName("xalan")
	if !ok {
		b.Fatal("no workload")
	}
	trials := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSearcher("random")
		if err != nil {
			b.Fatal(err)
		}
		session := &Session{
			Runner:        runner.NewInProcess(jvmsim.New(), p),
			Searcher:      s,
			BudgetSeconds: 12000,
			Workers:       16,
			Seed:          int64(i),
		}
		out, err := session.Run()
		if err != nil {
			b.Fatal(err)
		}
		trials += out.Trials
	}
	b.StopTimer()
	b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkAttribute(b *testing.B) {
	p, _ := workload.ByName("startup.xml.validation")
	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	r := runner.NewInProcess(sim, p)
	r.DisableCache = true
	session := &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      NewHierarchical(),
		BudgetSeconds: 3000,
		Seed:          1,
	}
	out, err := session.Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Attribute(r, out.Best, 1)) == 0 {
			b.Fatal("no attributions")
		}
	}
}
