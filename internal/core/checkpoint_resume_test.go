package core

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/runner"
)

// runToCheckpoint runs a session that checkpoints every round and is
// canceled once killAt trials have completed, then loads the checkpoint it
// left behind. The cancellation lands between rounds, like a kill signal.
func runToCheckpoint(t *testing.T, bench, searcher string, budget float64, seed int64, workers, killAt int) *checkpoint.Snapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "session.ckpt")
	s := newSession(t, bench, searcher, budget, seed)
	s.Workers = workers
	keeper := checkpoint.NewKeeper(path, 1, nil)
	keeper.SyncWrites = true
	s.Checkpoint = keeper

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Ctx = ctx
	s.OnProgress = func(tp TracePoint) {
		if tp.Trial >= killAt {
			cancel()
		}
	}
	if _, err := s.Run(); err == nil {
		t.Fatalf("session survived the kill at trial %d (budget too small?)", killAt)
	}
	if err := keeper.Close(); err != nil {
		t.Fatalf("keeper: %v", err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("no checkpoint after kill: %v", err)
	}
	if snap.Trial < killAt {
		t.Fatalf("checkpoint stopped at trial %d, kill was at %d", snap.Trial, killAt)
	}
	return snap
}

// outcomeFingerprint flattens the deterministic parts of an outcome for
// byte comparison.
func outcomeFingerprint(t *testing.T, out *Outcome) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Workload, Searcher, BestKey    string
		DefaultWall, BestWall, Elapsed float64
		Trials, Failures, CacheHits    int
		Flakes, Attempts, Transients   int
		Trace                          []TracePoint
		History                        []AttemptRecord
		BaseM, BestM                   runner.Measurement
		ImprovementPct, Speedup        float64
	}{
		Workload: out.Workload, Searcher: out.Searcher, BestKey: out.Best.Key(),
		DefaultWall: out.DefaultWall, BestWall: out.BestWall, Elapsed: out.Elapsed,
		Trials: out.Trials, Failures: out.Failures, CacheHits: out.CacheHits,
		Flakes: out.Flakes, Attempts: out.Attempts, Transients: out.TransientFailures,
		Trace: out.Trace, History: out.AttemptHistory,
		BaseM: out.BaseMeasurement, BestM: out.BestMeasurement,
		ImprovementPct: out.ImprovementPct, Speedup: out.Speedup,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSessionKillAndResumeByteIdentical(t *testing.T) {
	const (
		bench   = "fop"
		search  = "hillclimb"
		budget  = 900.0
		seed    = int64(11)
		workers = 2
		killAt  = 6
	)
	uninterrupted, err := func() (*Outcome, error) {
		s := newSession(t, bench, search, budget, seed)
		s.Workers = workers
		return s.Run()
	}()
	if err != nil {
		t.Fatal(err)
	}

	snap := runToCheckpoint(t, bench, search, budget, seed, workers, killAt)

	resumed := newSession(t, bench, search, budget, seed)
	resumed.Workers = workers
	resumed.Resume = snap
	out, err := resumed.Run()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}

	got, want := outcomeFingerprint(t, out), outcomeFingerprint(t, uninterrupted)
	if got != want {
		t.Fatalf("resumed outcome differs from uninterrupted run:\nresumed:       %s\nuninterrupted: %s", got, want)
	}
	if !reflect.DeepEqual(out.Trace, uninterrupted.Trace) {
		t.Fatal("convergence traces differ")
	}
}

func TestSessionResumeChecksFingerprint(t *testing.T) {
	snap := runToCheckpoint(t, "fop", "random", 600, 3, 1, 4)

	cases := []struct {
		name   string
		mutate func(*Session, *checkpoint.Snapshot)
		want   string
	}{
		{"seed", func(s *Session, _ *checkpoint.Snapshot) { s.Seed = 99 }, "seed mismatch"},
		{"budget", func(s *Session, _ *checkpoint.Snapshot) { s.BudgetSeconds = 1200 }, "budget_seconds mismatch"},
		{"workers", func(s *Session, _ *checkpoint.Snapshot) { s.Workers = 4 }, "workers mismatch"},
		{"searcher", func(s *Session, _ *checkpoint.Snapshot) {
			sr, err := NewSearcher("anneal")
			if err != nil {
				t.Fatal(err)
			}
			s.Searcher = sr
		}, "searcher mismatch"},
		{"trial count", func(_ *Session, sn *checkpoint.Snapshot) { sn.Trial++ }, "claims"},
		{"divergent trial key", func(_ *Session, sn *checkpoint.Snapshot) { sn.Trials[0].Key = "-Xbogus" }, "diverged"},
		{"divergent baseline", func(_ *Session, sn *checkpoint.Snapshot) { sn.Baseline.Key = "-Xbogus" }, "diverged"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newSession(t, "fop", "random", 600, 3)
			clone := *snap
			clone.Trials = append([]checkpoint.TrialRecord(nil), snap.Trials...)
			tc.mutate(s, &clone)
			s.Resume = &clone
			_, err := s.Run()
			if err == nil {
				t.Fatal("mismatched resume accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// plainRunner hides the snapshotting methods of the wrapped runner.
type plainRunner struct{ runner.Runner }

func TestSessionCheckpointNeedsSnapshotterRunner(t *testing.T) {
	s := newSession(t, "fop", "random", 600, 1)
	s.Runner = plainRunner{s.Runner}
	s.Checkpoint = checkpoint.NewKeeper(filepath.Join(t.TempDir(), "x.ckpt"), 1, nil)
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "cannot snapshot state") {
		t.Fatalf("session with non-snapshotting runner = %v, want snapshot error", err)
	}
}

func TestSessionResumeRejectsCorruptTrialLog(t *testing.T) {
	snap := runToCheckpoint(t, "fop", "random", 600, 5, 1, 3)
	snap.Trials = snap.Trials[:len(snap.Trials)-1]
	s := newSession(t, "fop", "random", 600, 5)
	s.Resume = snap
	if _, err := s.Run(); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("truncated trial log accepted: %v", err)
	}
}

// TestSessionCheckpointDoesNotPerturbOutcome guards the zero-interference
// property: a session that checkpoints every round produces the identical
// outcome to one that never checkpoints.
func TestSessionCheckpointDoesNotPerturbOutcome(t *testing.T) {
	plain, err := newSession(t, "xalan", "anneal", 900, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, "xalan", "anneal", 900, 8)
	keeper := checkpoint.NewKeeper(filepath.Join(t.TempDir(), "s.ckpt"), 1, nil)
	keeper.SyncWrites = true
	s.Checkpoint = keeper
	ckd, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := keeper.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := outcomeFingerprint(t, ckd), outcomeFingerprint(t, plain); got != want {
		t.Fatalf("checkpointing changed the outcome:\nwith:    %s\nwithout: %s", got, want)
	}
}
