// Package core implements the paper's auto-tuner: budgeted, anytime search
// over the JVM's whole flag space for the configuration that minimizes a
// benchmark's wall time.
//
// The tuner is organized as a Session driving a Searcher against a
// runner.Runner. The Session owns the economy (the 200-virtual-minute
// budget, baseline measurement, best-so-far tracking, the convergence
// trace); Searchers own the proposal strategy. The paper's searcher is
// Hierarchical (hierarchical.go), which descends the flag tree: survey the
// top-level branches (collector × compilation mode), keep a beam of the
// best, then evolve the flags *active* within those branches. Baseline
// searchers — flat random, hill climbing, simulated annealing, a flat
// genetic algorithm, and a prior-work-style fixed-subset tuner — share the
// same interface so every comparison in the paper's evaluation runs under
// identical budget accounting.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/drift"
	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Searcher proposes configurations and learns from their measurements.
// Implementations are not safe for concurrent use; a Session calls Propose
// and Observe only from its own goroutine. In multi-worker sessions the
// searcher may be asked for several proposals before any of them is
// observed, and observations arrive in virtual-completion order rather than
// proposal order — implementations must track outstanding proposals (see
// the pending maps in the built-in searchers) instead of assuming the next
// observation answers the latest proposal. Searchers that can exploit
// parallelism natively also implement BatchSearcher.
type Searcher interface {
	// Name identifies the strategy in reports.
	Name() string
	// Propose returns the next configuration to measure, or nil when the
	// searcher has nothing further to try.
	Propose(ctx *Context) *flags.Config
	// Observe delivers the measurement of a proposed configuration.
	Observe(ctx *Context, cfg *flags.Config, m runner.Measurement)
}

// Context is the session state visible to searchers.
type Context struct {
	// Reg is the flag registry being tuned over.
	Reg *flags.Registry
	// Tree is the flag hierarchy (used by the hierarchical searcher).
	Tree *hierarchy.Tree
	// Rng is the session's deterministic random source.
	Rng *rand.Rand
	// Objective is what the session minimizes (default throughput).
	Objective Objective
	// DefaultWall is the baseline (default configuration) wall time.
	DefaultWall float64
	// BestWall is the best mean wall time observed so far.
	BestWall float64
	// Best is the configuration that achieved BestWall.
	Best *flags.Config
	// Elapsed and Budget are virtual seconds consumed and allowed.
	Elapsed, Budget float64
	// Trial is the number of measurements taken so far.
	Trial int
}

// Score evaluates m under the session's objective.
func (c *Context) Score(m runner.Measurement) float64 {
	return c.Objective.Score(m)
}

// Score converts a measurement into the default (throughput) minimization
// objective: mean wall time, with failures scored +Inf.
func Score(m runner.Measurement) float64 {
	return ObjectiveThroughput.Score(m)
}

// Objective selects what a session minimizes.
type Objective string

// The tuning objectives.
const (
	// ObjectiveThroughput minimizes mean wall time — the paper's metric.
	ObjectiveThroughput Objective = "throughput"
	// ObjectivePause minimizes the maximum GC pause, the latency-tuning
	// use case (SLA-bound services); mean wall time only breaks ties.
	ObjectivePause Objective = "pause"
)

// Score evaluates a measurement under the objective (lower is better;
// failures are +Inf).
func (o Objective) Score(m runner.Measurement) float64 {
	if m.Failed || len(m.Walls) == 0 {
		return math.Inf(1)
	}
	switch o {
	case ObjectivePause:
		// The wall-time term breaks ties among pause-free configurations
		// and stops latency tuning from drifting into absurd slowness.
		return m.MeanPause + m.Mean*1e-4
	default:
		return m.Mean
	}
}

// TracePoint is one sample of the anytime convergence curve.
type TracePoint struct {
	// Elapsed is virtual tuning seconds consumed when the sample was taken.
	Elapsed float64
	// BestWall is the best mean wall time known at that moment.
	BestWall float64
	// Trial is the measurement count at that moment.
	Trial int
	// Flakes is the cumulative count of transient failures absorbed by
	// retries up to that moment.
	Flakes int
}

// AttemptRecord summarizes one configuration's measurement attempts across a
// session — how many times it was (re)measured, how many launch attempts
// that took, and how it ultimately fared. Cache replays involve no launches
// and are not recorded.
type AttemptRecord struct {
	// Key identifies the configuration.
	Key string
	// Trials is the number of fresh (non-cached) measurements delivered.
	Trials int
	// Attempts is the total launch attempts across those trials, retries
	// included.
	Attempts int
	// Flakes is how many of those attempts failed transiently and were
	// retried (or exhausted the retry budget).
	Flakes int
	// Failed and Transient describe the latest verdict; Failure names its
	// kind when Failed.
	Failed    bool
	Transient bool
	Failure   jvmsim.FailureKind
}

// Outcome is the result of one tuning session.
//
// Under the default throughput objective DefaultWall/BestWall are mean wall
// seconds; under ObjectivePause they are pause-objective scores (seconds of
// maximum GC pause, plus a small wall-time tiebreak) and ImprovementPct is
// the relative score reduction. BaseMeasurement and BestMeasurement carry
// both walls and pauses either way.
type Outcome struct {
	Workload       string
	Searcher       string
	Objective      Objective
	DefaultWall    float64
	BestWall       float64
	Best           *flags.Config
	ImprovementPct float64
	Speedup        float64
	Trials         int
	Failures       int
	CacheHits      int
	Elapsed        float64
	// Flakes is the total count of transient failures absorbed by retries;
	// Attempts is the total launch attempts (every trial costs at least
	// one); TransientFailures counts trials that were still failing
	// transiently when the retry budget ran out (the configuration is NOT
	// condemned — a later proposal may re-measure it).
	Flakes            int
	Attempts          int
	TransientFailures int
	// Degraded reports the session stopped early — virtual-budget expiry,
	// trial-budget expiry, wall-clock expiry, best-effort cancellation, or
	// a stall — and Best is the best-so-far answer rather than a completed
	// search; DegradedReason says why in one sentence. A session whose
	// searcher exhausted its strategy inside the budget is complete, not
	// degraded.
	Degraded       bool
	DegradedReason string
	// Quarantined counts proposals the failure quarantine rejected
	// unmeasured at zero cost (they still reach the searcher as failed
	// observations). Hedges and HedgeWins count straggler-watchdog
	// resolutions; a win means the hedged duplicate finished first and the
	// trial was charged the duplicate's path instead of the straggler's.
	Quarantined int
	Hedges      int
	HedgeWins   int
	// AttemptHistory summarizes per-configuration attempt accounting,
	// sorted by configuration key.
	AttemptHistory []AttemptRecord
	// Epochs is the per-epoch history of a drift-enabled session: one entry
	// per re-tuning epoch, each carrying the epoch's best and the drift
	// provenance that closed it. Nil when the session ran without a
	// DriftPolicy (a stationary session is one implicit epoch).
	Epochs []EpochOutcome
	Trace  []TracePoint
	// BaseMeasurement and BestMeasurement are the default config's and the
	// winner's raw measurements (walls and pauses).
	BaseMeasurement runner.Measurement
	BestMeasurement runner.Measurement
}

// DefaultBudgetSeconds is the paper's tuning budget: 200 minutes.
const DefaultBudgetSeconds = 200 * 60

// Session is one budgeted tuning run of a searcher on a workload.
type Session struct {
	// Runner measures configurations (and owns the virtual clock).
	Runner runner.Runner
	// Searcher is the proposal strategy.
	Searcher Searcher
	// Reg is the registry to tune; defaults to the standard catalog.
	Reg *flags.Registry
	// Tree is the hierarchy; defaults to the standard tree over Reg.
	Tree *hierarchy.Tree
	// BudgetSeconds is the virtual tuning budget; defaults to 200 minutes.
	BudgetSeconds float64
	// Reps is the repetitions per trial; defaults to 3.
	Reps int
	// Seed drives all randomness; sessions with equal inputs and seeds
	// produce identical outcomes.
	Seed int64
	// MaxTrials optionally bounds the number of measurements (0 = no cap).
	// A session stopped by this trial budget returns best-so-far marked
	// Degraded, exactly like virtual-budget expiry.
	MaxTrials int
	// RealBudget optionally bounds the session in wall-clock time: at the
	// first round boundary past the deadline the session stops and returns
	// best-so-far marked Degraded. Unlike the virtual budget it depends on
	// real scheduling, so two identical runs may stop at different trials —
	// it is the operator's safety net, not the paper's protocol knob (that
	// is BudgetSeconds).
	RealBudget time.Duration
	// BestEffort makes cancellation graceful: a session whose Ctx is
	// canceled returns the best-so-far outcome marked Degraded instead of
	// an error (cancellation before the baseline still errors — there is no
	// answer to return yet).
	BestEffort bool
	// Hedge, when non-nil, arms the straggler watchdog: trials whose
	// virtual cost blows a percentile-based deadline are hedged with a
	// duplicate dispatch, first result wins, loser canceled and accounted
	// in telemetry only. Entirely virtual-time-driven — fixed-seed sessions
	// stay byte-deterministic at any worker count.
	Hedge *HedgePolicy
	// Quarantine, when non-nil, arms the failure circuit breaker: flag-
	// hierarchy subtrees whose recent trials keep failing deterministically
	// are quarantined for a cooldown, their proposals rejected at zero cost
	// so chaos-heavy searches spend budget in viable regions.
	Quarantine *QuarantinePolicy
	// now is the wall clock RealBudget reads; tests inject it. nil means
	// time.Now.
	now func() time.Time
	// Objective is what the session minimizes; default ObjectiveThroughput.
	Objective Objective
	// Workers is the number of parallel evaluation slots (default 1, the
	// paper's single-machine setup). With W > 1 the session is a tuning
	// farm: each round it dispatches up to W Runner.Measure calls on real
	// goroutines, charges each to a virtual slot for its virtual cost, and
	// delivers the observations in virtual-completion order. Trials start
	// on the earliest-free slot, so the budget bounds the *makespan*
	// rather than total machine time. The Runner must be safe for
	// concurrent use (all built-in runners are). Sessions stay
	// deterministic for a fixed seed at any W; see executor.go.
	Workers int
	// Ctx optionally cancels the session between evaluation rounds. A
	// canceled session returns the context's error; measurements already
	// in flight complete first (cancellation granularity is one round).
	Ctx context.Context
	// OnProgress, when non-nil, is called from the session goroutine after
	// every delivered observation with the trace point just recorded —
	// live progress for long sessions (the HTTP API's job status).
	OnProgress func(TracePoint)
	// Telemetry optionally receives session metrics (session_* series and
	// the searcher_propose_seconds histogram); Trace optionally receives the
	// structured event stream (baseline/proposal/observe/barrier, plus the
	// runner-side events it commits at delivery time). Share the same
	// instances with the instrumented runner or chaos layer: the session
	// stamps their per-key pending events with virtual completion times,
	// which is what makes the trace byte-deterministic at any worker count.
	// Both are nil-safe no-ops when unset.
	Telemetry *telemetry.Registry
	Trace     *telemetry.Tracer
	// Checkpoint, when non-nil, makes the session crash-safe: at round
	// boundaries on the keeper's cadence the session snapshots its state —
	// baseline, the ordered log of delivered measurements, the incumbent
	// best, and the runner's serialized caches — and the keeper persists it
	// off the session goroutine (workers never block on the disk). Requires
	// a Runner implementing runner.StateSnapshotter.
	Checkpoint *checkpoint.Keeper
	// Resume, when non-nil, continues the session a previous checkpoint
	// describes. The snapshot's fingerprint must match this session's
	// options exactly; the session then replays the recorded measurement
	// log through the searcher (reconstructing searcher and RNG state
	// without re-measuring) and restores the runner's caches, so the
	// continued run converges to the byte-identical outcome of the
	// uninterrupted one. Divergence — a recorded trial whose key differs
	// from what the resumed engine proposes — fails the session rather than
	// splicing mismatched histories.
	Resume *checkpoint.Snapshot
	// Transfer fingerprints the warm-start priors injected into Searcher
	// (empty when the session starts cold). Warm-started sessions propose
	// different configurations than cold ones, so the fingerprint goes into
	// the checkpoint metadata: a checkpoint taken warm refuses to resume
	// cold (or under different priors), where replay would diverge.
	Transfer string
	// Phases optionally scripts workload drift: at each scheduled trial
	// boundary the runner's workload shifts to a new phase (the runner must
	// implement runner.PhaseSetter when the schedule has shifts). Shifts
	// take effect at round barriers, so they are deterministic per
	// (seed, workers). Nil means a stationary workload.
	Phases *jvmsim.PhaseSchedule
	// Drift, when non-nil, arms drift detection and live re-tuning: a
	// confirmed upward shift in the delivered-score stream closes the
	// current epoch and opens a new one with a rebuilt, warm-started
	// searcher (see DriftPolicy). Requires NewSearcher. A session may
	// script Phases without arming Drift — that is the oblivious tuner the
	// re-tuned one is evaluated against — and may arm Drift without Phases
	// (the false-positive guard: a stationary session must never re-tune).
	Drift *DriftPolicy
	// NewSearcher builds a fresh searcher for each re-tuning epoch; it must
	// produce the same strategy as Searcher (checkpoint fingerprints record
	// one searcher name for the whole session). Required when Drift is set.
	NewSearcher func() Searcher
	// EpochPriors, when non-nil, contributes extra warm-start priors to
	// each re-tuning epoch — typically transfer-store hits for the drifted
	// workload's fingerprint. Called once per epoch transition with the new
	// epoch's index and workload phase; the demoted incumbent is always
	// injected ahead of these. Priors must be built over the session's
	// registry. Resumed sessions replay the checkpoint's recorded priors
	// instead of calling this again.
	EpochPriors func(epoch, phase int) []PriorSample
}

// Run executes the session to budget exhaustion and returns the outcome.
func (s *Session) Run() (*Outcome, error) {
	if s.Runner == nil || s.Searcher == nil {
		return nil, fmt.Errorf("core: session needs a Runner and a Searcher")
	}
	reg := s.Reg
	if reg == nil {
		reg = flags.NewRegistry()
	}
	tree := s.Tree
	if tree == nil {
		tree = hierarchy.Build(reg)
	}
	budget := s.BudgetSeconds
	if budget <= 0 {
		budget = DefaultBudgetSeconds
	}
	reps := s.Reps
	if reps < 1 {
		reps = 3
	}

	objective := s.Objective
	if objective == "" {
		objective = ObjectiveThroughput
	}
	ctx := &Context{
		Reg:       reg,
		Tree:      tree,
		Rng:       rand.New(rand.NewSource(s.Seed)),
		Budget:    budget,
		Objective: objective,
	}
	out := &Outcome{
		Workload: s.Runner.Workload().Name,
		Searcher: s.Searcher.Name(),
	}

	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	runCtx := s.Ctx
	if runCtx == nil {
		runCtx = context.Background()
	}
	if err := runCtx.Err(); err != nil {
		return nil, fmt.Errorf("core: session canceled before baseline: %w", err)
	}
	// slotFree[i] is the virtual time at which evaluation slot i becomes
	// available. With one worker this degenerates to a running total.
	slotFree := make([]float64, workers)

	// Drift setup: validate the phase schedule against the runner and the
	// detector policy against its own invariants before any measurement.
	ds := &driftState{}
	if s.Phases != nil && len(s.Phases.Shifts) > 0 {
		if err := s.Phases.Validate(); err != nil {
			return nil, err
		}
		setter, ok := s.Runner.(runner.PhaseSetter)
		if !ok {
			return nil, fmt.Errorf("core: runner %T cannot phase-shift workloads (no SetPhase)", s.Runner)
		}
		ds.phases, ds.setter = s.Phases, setter
	}
	if s.Drift != nil {
		if err := s.Drift.Detector.Validate(); err != nil {
			return nil, err
		}
		if s.NewSearcher == nil {
			return nil, fmt.Errorf("core: Drift needs NewSearcher to rebuild the searcher per epoch")
		}
		ds.det = drift.New(s.Drift.Detector)
	}

	// Durability setup: checkpointing and resuming both need a runner that
	// can serialize its mutable state, and both share the session
	// fingerprint that guards against resuming under different options.
	var snapRunner runner.StateSnapshotter
	var meta checkpoint.Meta
	if s.Checkpoint != nil || s.Resume != nil {
		sr, ok := s.Runner.(runner.StateSnapshotter)
		if !ok {
			return nil, fmt.Errorf("core: runner %T cannot snapshot state for checkpoint/resume", s.Runner)
		}
		snapRunner = sr
		meta = checkpoint.Meta{
			Workload:      out.Workload,
			Searcher:      out.Searcher,
			Objective:     string(objective),
			Runner:        runnerFingerprint(s.Runner),
			Seed:          s.Seed,
			BudgetSeconds: budget,
			Reps:          reps,
			Workers:       workers,
			MaxTrials:     s.MaxTrials,
			Robustness:    robustnessFingerprint(s.Hedge, s.Quarantine),
			Transfer:      s.Transfer,
			Drift:         driftFingerprint(s.Drift, s.Phases),
		}
	}

	// Baseline: the default configuration, measured under the same economy.
	// A resumed session takes the recorded baseline instead of re-measuring:
	// the restored runner cache would answer a fresh Measure at zero cost,
	// which would corrupt the budget accounting the original run did.
	history := make(map[string]*AttemptRecord)
	def := flags.NewConfig(reg)
	defKey := def.Key()
	var base runner.Measurement
	replay := make(map[int]checkpoint.TrialRecord)
	epochReplay := make(map[int]checkpoint.EpochRecord)
	if s.Resume != nil {
		snap := s.Resume
		if err := snap.Meta.Check(meta); err != nil {
			return nil, err
		}
		if snap.Trial != len(snap.Trials) {
			return nil, fmt.Errorf("%w: snapshot claims %d trials but records %d",
				checkpoint.ErrCorrupt, snap.Trial, len(snap.Trials))
		}
		if snap.Baseline.Key != defKey {
			return nil, fmt.Errorf("core: resume diverged: checkpoint baseline measured %q, session default is %q",
				snap.Baseline.Key, defKey)
		}
		if err := snapRunner.RestoreState(snap.RunnerState); err != nil {
			return nil, err
		}
		base = snap.Baseline
		for _, rec := range snap.Trials {
			replay[rec.Seq] = rec
		}
		for _, rec := range snap.Epochs {
			if rec.Trial > snap.Trial {
				return nil, fmt.Errorf("%w: epoch %d opened at trial %d but snapshot records only %d trials",
					checkpoint.ErrCorrupt, rec.Epoch, rec.Trial, snap.Trial)
			}
			epochReplay[rec.Epoch] = rec
		}
		s.Telemetry.Counter("checkpoint_resumes_total").Inc()
		s.Telemetry.Counter("checkpoint_resumed_trials_total").Add(uint64(len(snap.Trials)))
	} else {
		base = s.Runner.Measure(def, reps)
	}
	if base.Failed {
		return nil, fmt.Errorf("core: default configuration fails on %s: %s",
			out.Workload, base.FailureMessage)
	}
	out.recordAttempts(history, defKey, base)
	ctx.DefaultWall = objective.Score(base)
	ctx.Best, ctx.BestWall = def, ctx.DefaultWall
	slotFree[0] = base.CostSeconds
	ctx.Elapsed = base.CostSeconds
	out.DefaultWall = ctx.DefaultWall
	out.Objective = objective
	out.BaseMeasurement = base
	out.BestMeasurement = base
	s.Telemetry.Gauge("session_budget_virtual_seconds").Set(budget)
	s.Telemetry.Gauge("session_workers").Set(float64(workers))
	// Stamp the runner-side events of the baseline measurement, then mark
	// the baseline itself.
	s.Trace.Commit(defKey, base.CostSeconds)
	s.Trace.Emit(telemetry.Event{
		T: base.CostSeconds, Kind: telemetry.EvBaseline, Key: defKey,
		Cost: base.CostSeconds, Score: ctx.DefaultWall,
	})
	tp := TracePoint{Elapsed: ctx.Elapsed, BestWall: ctx.BestWall, Flakes: out.Flakes}
	out.Trace = append(out.Trace, tp)
	if s.OnProgress != nil {
		s.OnProgress(tp)
	}

	var ck *ckState
	if snapRunner != nil {
		ck = &ckState{keeper: s.Checkpoint, meta: meta, base: base, snap: snapRunner,
			replay: replay, epochReplay: epochReplay}
	}
	rob := &robState{now: s.now}
	if rob.now == nil {
		rob.now = time.Now
	}
	if s.RealBudget > 0 {
		rob.deadline = rob.now().Add(s.RealBudget)
	}
	if s.Hedge != nil {
		rob.hg = newHedger(s.Hedge)
		rob.hg.observe(base.CostSeconds)
	}
	if s.Quarantine != nil {
		rob.quar = newQuarantine(s.Quarantine, tree, s.Telemetry, s.Trace)
	}
	if err := s.runLoop(runCtx, ctx, out, slotFree, reps, budget, history, ck, rob, ds); err != nil {
		return nil, err
	}
	if ds.det != nil {
		// Close the final (still-open) epoch so the report always accounts
		// every trial to an epoch; no drift closed it, so no provenance.
		ds.closeEpoch(ctx, out, nil)
	}
	if rob.hg != nil {
		out.Hedges, out.HedgeWins = rob.hg.hedges, rob.hg.wins
		s.Telemetry.Gauge("session_hedge_saved_virtual_seconds").Set(rob.hg.saved)
	}
	out.AttemptHistory = make([]AttemptRecord, 0, len(history))
	for _, rec := range history {
		out.AttemptHistory = append(out.AttemptHistory, *rec)
	}
	sort.Slice(out.AttemptHistory, func(i, j int) bool {
		return out.AttemptHistory[i].Key < out.AttemptHistory[j].Key
	})
	// Report the makespan: the time the busiest slot finishes.
	for _, f := range slotFree {
		if f > ctx.Elapsed {
			ctx.Elapsed = f
		}
	}

	s.Telemetry.Gauge("session_elapsed_virtual_seconds").Set(ctx.Elapsed)
	s.Telemetry.Gauge("session_best_score").Set(ctx.BestWall)

	out.Best = ctx.Best
	out.BestWall = ctx.BestWall
	out.Trials = ctx.Trial
	out.Elapsed = ctx.Elapsed
	out.ImprovementPct = stats.ImprovementPct(out.DefaultWall, out.BestWall)
	out.Speedup = stats.Speedup(out.DefaultWall, out.BestWall)
	return out, nil
}

// recordAttempts folds a fresh measurement into the session's flake
// accounting. Cache replays involve no launches and are skipped.
func (o *Outcome) recordAttempts(history map[string]*AttemptRecord, key string, m runner.Measurement) {
	if m.FromCache {
		return
	}
	attempts := m.Attempts
	if attempts < 1 {
		attempts = 1
	}
	o.Flakes += m.Flakes
	o.Attempts += attempts
	if m.Transient {
		o.TransientFailures++
	}
	rec := history[key]
	if rec == nil {
		rec = &AttemptRecord{Key: key}
		history[key] = rec
	}
	rec.Trials++
	rec.Attempts += attempts
	rec.Flakes += m.Flakes
	rec.Failed = m.Failed
	rec.Transient = m.Transient
	rec.Failure = m.Failure
}

// BestAt returns the best wall time known at the given virtual time, for
// convergence reporting. Times before the baseline measurement return the
// baseline. The scan tolerates out-of-order completion times from
// multi-worker sessions.
func (o *Outcome) BestAt(elapsed float64) float64 {
	best := o.DefaultWall
	for _, tp := range o.Trace {
		if tp.Elapsed <= elapsed && tp.BestWall < best {
			best = tp.BestWall
		}
	}
	return best
}
