package core

import (
	"math"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

func newSession(t *testing.T, bench, searcher string, budget float64, seed int64) *Session {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no workload %s", bench)
	}
	sim := jvmsim.New()
	s, err := NewSearcher(searcher)
	if err != nil {
		t.Fatal(err)
	}
	return &Session{
		Runner:        runner.NewInProcess(sim, p),
		Searcher:      s,
		BudgetSeconds: budget,
		Seed:          seed,
	}
}

func TestSessionRequiresRunnerAndSearcher(t *testing.T) {
	if _, err := (&Session{}).Run(); err == nil {
		t.Error("empty session should error")
	}
	if _, err := (&Session{Searcher: Random{}}).Run(); err == nil {
		t.Error("session without runner should error")
	}
}

func TestSessionImprovesStartupBenchmark(t *testing.T) {
	s := newSession(t, "startup.compiler.compiler", "hierarchical", 3000, 1)
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.ImprovementPct < 30 {
		t.Errorf("hierarchical tuner found only %.1f%% on a warm-up-bound program", out.ImprovementPct)
	}
	if out.Best == nil || out.BestWall >= out.DefaultWall {
		t.Error("outcome should carry an improved best config")
	}
	if out.Trials == 0 || out.Elapsed <= 0 {
		t.Error("outcome accounting looks empty")
	}
}

func TestSessionRespectsBudget(t *testing.T) {
	s := newSession(t, "fop", "hierarchical", 900, 2)
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The last trial may overshoot by at most one measurement (~6× timeout
	// + overhead); the loop must stop right after.
	slack := 6*out.DefaultWall + 10
	if out.Elapsed > 900+slack {
		t.Errorf("budget 900s but consumed %.0fs", out.Elapsed)
	}
	if out.Elapsed < 600 {
		t.Errorf("budget underused: %.0fs of 900s", out.Elapsed)
	}
}

func TestSessionDeterministicUnderSeed(t *testing.T) {
	a, err := newSession(t, "xalan", "hierarchical", 1500, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := newSession(t, "xalan", "hierarchical", 1500, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.BestWall != b.BestWall || a.Trials != b.Trials || a.Best.Key() != b.Best.Key() {
		t.Errorf("same seed, different outcomes: %.3f/%d vs %.3f/%d",
			a.BestWall, a.Trials, b.BestWall, b.Trials)
	}
	c, err := newSession(t, "xalan", "hierarchical", 1500, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Key() == c.Best.Key() && a.BestWall == c.BestWall && a.Trials == c.Trials {
		t.Log("different seeds converged to identical outcomes (possible but suspicious)")
	}
}

func TestSessionMaxTrials(t *testing.T) {
	s := newSession(t, "fop", "random", 1e9, 3)
	s.MaxTrials = 25
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 25 {
		t.Errorf("MaxTrials=25 but ran %d", out.Trials)
	}
}

func TestSessionNeverReturnsWorseThanDefault(t *testing.T) {
	for _, name := range SearcherNames() {
		s := newSession(t, "startup.scimark.fft", name, 1200, 11)
		out, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.BestWall > out.DefaultWall {
			t.Errorf("%s: best %.2f worse than default %.2f", name, out.BestWall, out.DefaultWall)
		}
		if out.ImprovementPct < 0 {
			t.Errorf("%s: negative improvement %.2f", name, out.ImprovementPct)
		}
	}
}

func TestTraceIsMonotone(t *testing.T) {
	out, err := newSession(t, "jython", "genetic-flat", 2000, 5).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trace) < 2 {
		t.Fatal("trace too short")
	}
	for i := 1; i < len(out.Trace); i++ {
		if out.Trace[i].BestWall > out.Trace[i-1].BestWall+1e-9 {
			t.Fatalf("best-so-far regressed at %d: %.3f -> %.3f",
				i, out.Trace[i-1].BestWall, out.Trace[i].BestWall)
		}
		if out.Trace[i].Elapsed < out.Trace[i-1].Elapsed {
			t.Fatalf("trace time went backwards at %d", i)
		}
	}
	if out.Trace[0].BestWall != out.DefaultWall {
		t.Error("trace should start at the baseline")
	}
}

func TestBestAt(t *testing.T) {
	o := &Outcome{
		DefaultWall: 100,
		Trace: []TracePoint{
			{Elapsed: 10, BestWall: 100},
			{Elapsed: 20, BestWall: 80},
			{Elapsed: 30, BestWall: 70},
		},
	}
	cases := []struct{ at, want float64 }{
		{0, 100}, {10, 100}, {25, 80}, {30, 70}, {1e9, 70},
	}
	for _, c := range cases {
		if got := o.BestAt(c.at); got != c.want {
			t.Errorf("BestAt(%.0f) = %.0f, want %.0f", c.at, got, c.want)
		}
	}
}

func TestScore(t *testing.T) {
	if !math.IsInf(Score(runner.Measurement{Failed: true}), 1) {
		t.Error("failures must score +Inf")
	}
	if !math.IsInf(Score(runner.Measurement{}), 1) {
		t.Error("empty measurements must score +Inf")
	}
	if Score(runner.Measurement{Mean: 5, Walls: []float64{5}}) != 5 {
		t.Error("successful measurements score their mean")
	}
}

func TestNewSearcher(t *testing.T) {
	for _, n := range SearcherNames() {
		s, err := NewSearcher(n)
		if err != nil || s == nil {
			t.Errorf("NewSearcher(%s): %v", n, err)
			continue
		}
		if s.Name() != n {
			t.Errorf("NewSearcher(%s).Name() = %s", n, s.Name())
		}
	}
	if s, err := NewSearcher("subset"); err != nil || s.Name() != "subset-hillclimb" {
		t.Error("subset alias should resolve")
	}
	if _, err := NewSearcher("nope"); err == nil {
		t.Error("unknown searcher should error")
	}
}

func TestHierarchicalSurveyCoversAllBranchCombos(t *testing.T) {
	// The first 8 proposals must be the 4 collectors × 2 JIT modes.
	p, _ := workload.ByName("fop")
	sim := jvmsim.New()
	r := runner.NewInProcess(sim, p)
	h := NewHierarchical()
	s := &Session{Runner: r, Searcher: h, BudgetSeconds: 1e9, Seed: 9}
	s.MaxTrials = 8
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	collectors := map[string]bool{}
	tiered := map[bool]bool{}
	for _, c := range h.combos {
		if !c.seen {
			t.Errorf("branch combo %s not measured in survey", c.label)
		}
		collectors[c.base.Key()] = true
		tiered[c.base.Bool("TieredCompilation")] = true
	}
	if len(h.combos) != 8 {
		t.Fatalf("expected 8 combos, got %d", len(h.combos))
	}
	if !tiered[true] || !tiered[false] {
		t.Error("survey should cover both JIT modes")
	}
}

func TestHierarchicalNeverProposesInvalidConfigs(t *testing.T) {
	p, _ := workload.ByName("tomcat")
	sim := jvmsim.New()
	r := runner.NewInProcess(sim, p)
	s := &Session{Runner: r, Searcher: NewHierarchical(), BudgetSeconds: 4000, Seed: 21}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Dependency resolution is the point of the hierarchy: no proposal
	// should fail VM startup. (OOM/timeout are legitimate — those need a
	// measurement to discover.)
	if out.Failures > out.Trials/10 {
		t.Errorf("hierarchical produced %d failures in %d trials", out.Failures, out.Trials)
	}
}

func TestHierarchicalBeatsSubsetOnStartupBench(t *testing.T) {
	// The paper's Figure 2: prior-work subset tuning cannot touch JIT
	// flags, so warm-up-dominated programs stay unimproved.
	budget := 4000.0
	full, err := newSession(t, "startup.xml.validation", "hierarchical", budget, 13).Run()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := newSession(t, "startup.xml.validation", "subset-hillclimb", budget, 13).Run()
	if err != nil {
		t.Fatal(err)
	}
	if full.ImprovementPct < sub.ImprovementPct+10 {
		t.Errorf("whole-JVM tuning (%.1f%%) should clearly beat subset tuning (%.1f%%)",
			full.ImprovementPct, sub.ImprovementPct)
	}
}

func TestSubsetOnlyTouchesItsFlags(t *testing.T) {
	p, _ := workload.ByName("h2")
	sim := jvmsim.New()
	r := runner.NewInProcess(sim, p)
	s := &Session{Runner: r, Searcher: NewSubset(), BudgetSeconds: 2000, Seed: 4}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, f := range SubsetFlags() {
		allowed[f] = true
	}
	for _, n := range out.Best.ExplicitNames() {
		if !allowed[n] {
			t.Errorf("subset tuner touched %s", n)
		}
	}
}

func TestGeneticFlatMaintainsBoundedPopulation(t *testing.T) {
	p, _ := workload.ByName("fop")
	sim := jvmsim.New()
	g := &GeneticFlat{PopSize: 6}
	s := &Session{Runner: runner.NewInProcess(sim, p), Searcher: g, BudgetSeconds: 1e9, Seed: 2}
	s.MaxTrials = 40
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(g.pop) != 6 {
		t.Errorf("population size %d, want 6", len(g.pop))
	}
	for i := 1; i < len(g.pop); i++ {
		if g.pop[i-1].wall > g.pop[i].wall {
			t.Error("population should stay sorted by fitness")
		}
	}
}

func TestHillClimbRestartsAfterStagnation(t *testing.T) {
	p, _ := workload.ByName("startup.scimark.fft")
	sim := jvmsim.New()
	h := &HillClimb{RestartAfter: 5}
	s := &Session{Runner: runner.NewInProcess(sim, p), Searcher: h, BudgetSeconds: 1e9, Seed: 3}
	s.MaxTrials = 60
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 60 {
		t.Fatalf("expected 60 trials, got %d", out.Trials)
	}
	// After 60 trials with restart-after-5, the climber must have moved off
	// its initial current config at least once.
	if h.current == nil {
		t.Fatal("climber never initialized")
	}
}

func TestOutcomeImprovementMathConsistent(t *testing.T) {
	out, err := newSession(t, "batik", "hillclimb", 1000, 6).Run()
	if err != nil {
		t.Fatal(err)
	}
	wantImp := 100 * (out.DefaultWall - out.BestWall) / out.DefaultWall
	if math.Abs(out.ImprovementPct-wantImp) > 1e-9 {
		t.Error("ImprovementPct inconsistent with walls")
	}
	wantSp := out.DefaultWall / out.BestWall
	if math.Abs(out.Speedup-wantSp) > 1e-9 {
		t.Error("Speedup inconsistent with walls")
	}
}

func TestSessionWithCustomRegistryAndDefaults(t *testing.T) {
	// Passing explicit Reg/Tree must work the same as defaults.
	p, _ := workload.ByName("fop")
	sim := jvmsim.New()
	reg := flags.NewRegistry()
	s := &Session{
		Runner:        runner.NewInProcess(sim, p),
		Searcher:      NewHierarchical(),
		Reg:           reg,
		BudgetSeconds: 800,
		Seed:          1,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Best.Registry() != reg {
		t.Error("best config should be bound to the provided registry")
	}
}
