package core

import (
	"fmt"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/drift"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// DriftPolicy arms live re-tuning: the session watches the scores of
// delivered trials with a drift.Detector, and when a workload drift is
// confirmed it opens a new epoch — the incumbent best is demoted to a
// candidate (re-proposed first, but no longer trusted), the searcher is
// rebuilt and warm-started from the demoted winner plus any transfer
// priors, and the robustness machinery (hedging window, quarantine,
// stall counter) restarts for the new regime. The virtual budget and the
// trial cap stay session-global: re-tuning spends the remaining budget,
// it does not get more.
type DriftPolicy struct {
	// Detector parameterizes the Page–Hinkley drift test; the zero value
	// means the drift package defaults.
	Detector drift.Config
}

// EpochOutcome summarizes one tuning epoch of a drift-enabled session.
// Epoch 0 is the pre-drift search; each confirmed drift closes the current
// epoch and opens the next. The last epoch is closed by budget exhaustion
// (or searcher completion) and carries zero drift fields.
type EpochOutcome struct {
	// Epoch is the 0-based epoch index.
	Epoch int
	// Phase is the workload phase in effect when the epoch closed.
	Phase int
	// Trials is the number of observations delivered during the epoch.
	Trials int
	// BestKey, BestScore, and Best describe the epoch's incumbent at close —
	// for a drift-closed epoch, the best of the regime that just ended.
	BestKey   string
	BestScore float64
	Best      *flags.Config
	// Drift provenance: the confirmation that closed this epoch. DriftTrial
	// is the session trial number of the confirming observation (0 when the
	// epoch was closed by budget, not drift); DriftScore the observed score;
	// DriftMean the detector's pre-drift level estimate (geometric mean);
	// DriftStat the Page–Hinkley statistic at confirmation.
	DriftTrial int
	DriftScore float64
	DriftMean  float64
	DriftStat  float64
	// StaleKey and StaleScore name the incumbent this epoch inherited from
	// its predecessor — the demoted pre-drift winner — and the score it held
	// under the pre-drift regime. Empty for epoch 0, which starts from the
	// baseline instead.
	StaleKey   string
	StaleScore float64
}

// driftFingerprint renders the session's drift options canonically for the
// checkpoint metadata. Empty when drift is entirely off, so stationary
// snapshots stay byte-identical to pre-drift builds.
func driftFingerprint(d *DriftPolicy, phases *jvmsim.PhaseSchedule) string {
	var parts []string
	if d != nil {
		parts = append(parts, "detect="+d.Detector.String())
	}
	if ps := phases.String(); ps != "" {
		parts = append(parts, "phases="+ps)
	}
	return strings.Join(parts, ";")
}

// driftState bundles the live re-tuning machinery threaded through the run
// loop: the phase schedule driving the workload, the detector watching the
// delivered scores, and the epoch bookkeeping. Always non-nil; phases and
// det are nil when the corresponding feature is off.
type driftState struct {
	phases *jvmsim.PhaseSchedule
	setter runner.PhaseSetter // non-nil iff phases has shifts
	det    *drift.Detector

	phase      int // workload phase currently set on the runner
	epoch      int // current epoch index
	epochStart int // ctx.Trial when the current epoch opened
	// demoted is set at an epoch transition: the incumbent best carries a
	// pre-drift score that no post-drift measurement can be compared
	// against, so the next successful observation replaces it
	// unconditionally. Keeping the stale (finite) score in ctx.BestWall
	// until then — rather than +Inf — keeps every trace point, checkpoint,
	// and gauge JSON-encodable.
	demoted bool
	// staleKey/staleScore describe the incumbent the current epoch
	// inherited (empty for epoch 0); recorded on the epoch's outcome.
	staleKey   string
	staleScore float64
	// pending is a drift confirmed mid-round; the transition happens at the
	// round barrier, where no measurement is in flight. pendingTrial is the
	// session trial number of the confirming observation.
	pending      *drift.Event
	pendingTrial int
}

// observe feeds one delivered, non-synthetic observation to the detector.
func (ds *driftState) observe(score float64, trial int) {
	if ds.det == nil || ds.pending != nil {
		return
	}
	if ev, ok := ds.det.Observe(score); ok {
		ds.pending = &ev
		ds.pendingTrial = trial
	}
}

// advancePhase applies the schedule at a round boundary: if the dispatched
// count has crossed a shift's trial threshold, the runner's workload moves
// to the new phase before the next batch is dispatched. Rounds are
// barriers, so no Measure call is in flight.
func (s *Session) advancePhase(ctx *Context, ds *driftState, dispatched int) error {
	if ds.setter == nil {
		return nil
	}
	p := ds.phases.PhaseAt(dispatched)
	if p == ds.phase {
		return nil
	}
	shift := ds.phases.ShiftAt(p)
	if err := ds.setter.SetPhase(p, shift); err != nil {
		return fmt.Errorf("core: phase shift at trial %d: %w", dispatched, err)
	}
	ds.phase = p
	s.Telemetry.Counter("session_phase_shifts_total").Inc()
	s.Telemetry.Gauge("session_phase").Set(float64(p))
	s.Trace.Emit(telemetry.Event{
		T: ctx.Elapsed, Kind: telemetry.EvPhase, Trial: ctx.Trial,
		Detail: fmt.Sprintf("ph%d|%s", p, shift),
	})
	return nil
}

// closeEpoch appends the current epoch's summary to the outcome. ev is the
// drift that closed it, or nil when the session ended inside the epoch.
func (ds *driftState) closeEpoch(ctx *Context, out *Outcome, ev *drift.Event) {
	eo := EpochOutcome{
		Epoch:      ds.epoch,
		Phase:      ds.phase,
		Trials:     ctx.Trial - ds.epochStart,
		BestKey:    ctx.Best.Key(),
		BestScore:  ctx.BestWall,
		Best:       ctx.Best.Clone(),
		StaleKey:   ds.staleKey,
		StaleScore: ds.staleScore,
	}
	if ev != nil {
		eo.DriftTrial = ds.pendingTrial
		eo.DriftScore = ev.Score
		eo.DriftMean = ev.Mean
		eo.DriftStat = ev.Stat
	}
	out.Epochs = append(out.Epochs, eo)
}

// openEpoch performs the re-tune transition at a round barrier after a
// confirmed drift: close the current epoch, demote the incumbent, rebuild
// the searcher warm-started from the demoted winner plus the session's
// per-epoch priors, and restart the detector and robustness machinery for
// the new regime. Returns the new searcher.
//
// A resuming session replays recorded epochs instead of re-deriving their
// priors: EpochPriors may consult a transfer store whose contents changed
// since the checkpoint, and splicing different priors into the replay
// would diverge it. Everything else re-derives deterministically from the
// trial log.
func (s *Session) openEpoch(ctx *Context, out *Outcome, ds *driftState, ck *ckState, rob *robState) (Searcher, error) {
	ev := ds.pending
	ds.pending = nil
	ds.closeEpoch(ctx, out, ev)

	stale := ctx.Best.Clone()
	staleScore := ctx.BestWall
	s.Trace.Emit(telemetry.Event{
		T: ctx.Elapsed, Kind: telemetry.EvDrift, Key: stale.Key(),
		Trial: ds.pendingTrial, Score: ev.Score,
		Detail: fmt.Sprintf("epoch=%d stat=%.4g mean=%.4g", ds.epoch+1, ev.Stat, ev.Mean),
	})
	s.Telemetry.Counter("session_drift_events_total").Inc()

	ds.epoch++
	ds.epochStart = ctx.Trial
	ds.demoted = true
	ds.staleKey = stale.Key()
	ds.staleScore = staleScore
	s.Telemetry.Gauge("session_epoch").Set(float64(ds.epoch))

	// The demoted winner is always the first prior: it is the best guess
	// until the new regime says otherwise, and re-measuring it first gives
	// the epoch its post-drift reference score.
	priors, err := s.epochPriors(ctx, ds, ck, stale, staleScore)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		ck.epochs = append(ck.epochs, epochRecord(ds, priors))
	}

	// Fresh regime, fresh machinery: the detector's level estimate, the
	// hedger's cost window, and the quarantine's failure streaks all
	// describe the old workload.
	ds.det.Reset()
	if s.Hedge != nil {
		rob.hg = newHedger(s.Hedge)
	}
	if s.Quarantine != nil {
		rob.quar = newQuarantine(s.Quarantine, ctx.Tree, s.Telemetry, s.Trace)
	}
	return NewWarmStart(s.NewSearcher(), priors), nil
}

// epochPriors assembles the warm-start priors for the epoch just opened:
// on a live run, the demoted incumbent followed by whatever EpochPriors
// contributes (transfer-store hits for the drifted workload); on a resumed
// run, the checkpoint's recorded priors verbatim.
func (s *Session) epochPriors(ctx *Context, ds *driftState, ck *ckState, stale *flags.Config, staleScore float64) ([]PriorSample, error) {
	if ck != nil {
		if rec, ok := ck.epochReplay[ds.epoch]; ok {
			if rec.Trial != ctx.Trial || rec.Phase != ds.phase {
				return nil, fmt.Errorf("core: resume diverged: checkpoint opened epoch %d at trial %d phase %d, session at trial %d phase %d",
					ds.epoch, rec.Trial, rec.Phase, ctx.Trial, ds.phase)
			}
			priors := make([]PriorSample, 0, len(rec.Priors))
			for _, pr := range rec.Priors {
				cfg, err := flags.ParseArgs(ctx.Reg, pr.Args)
				if err != nil {
					return nil, fmt.Errorf("core: resume epoch %d prior %q: %w", ds.epoch, pr.Key, err)
				}
				if key := cfg.Key(); key != pr.Key {
					return nil, fmt.Errorf("core: resume epoch %d prior: recorded key %q but args derive %q", ds.epoch, pr.Key, key)
				}
				priors = append(priors, PriorSample{Cfg: cfg, Norm: pr.Norm})
			}
			return priors, nil
		}
	}
	norm := 1.0
	if ctx.DefaultWall > 0 {
		norm = staleScore / ctx.DefaultWall
	}
	priors := []PriorSample{{Cfg: stale, Norm: norm}}
	if s.EpochPriors != nil {
		priors = append(priors, s.EpochPriors(ds.epoch, ds.phase)...)
	}
	return priors, nil
}

// epochRecord serializes the epoch transition for the checkpoint.
func epochRecord(ds *driftState, priors []PriorSample) checkpoint.EpochRecord {
	rec := checkpoint.EpochRecord{
		Epoch:  ds.epoch,
		Phase:  ds.phase,
		Trial:  ds.epochStart,
		Priors: make([]checkpoint.PriorRecord, len(priors)),
	}
	for i, p := range priors {
		rec.Priors[i] = checkpoint.PriorRecord{
			Key:  p.Cfg.Key(),
			Args: p.Cfg.ExplicitArgs(),
			Norm: p.Norm,
		}
	}
	return rec
}
