package core

import (
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/drift"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// driftSession builds a drift-enabled session: the workload shifts at the
// scheduled trial, the detector is armed at default sensitivity, and each
// epoch rebuilds the named searcher.
func driftSession(t testing.TB, bench, searcher string, budget float64, seed int64, workers int, sched *jvmsim.PhaseSchedule) *Session {
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no workload %s", bench)
	}
	sr, err := NewSearcher(searcher)
	if err != nil {
		t.Fatal(err)
	}
	return &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      sr,
		BudgetSeconds: budget,
		Seed:          seed,
		Workers:       workers,
		Phases:        sched,
		Drift:         &DriftPolicy{},
		NewSearcher: func() Searcher {
			s, err := NewSearcher(searcher)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func defaultSchedule(at int) *jvmsim.PhaseSchedule {
	return &jvmsim.PhaseSchedule{Shifts: []jvmsim.ScheduledShift{{AtTrial: at, Shift: jvmsim.DefaultShift()}}}
}

// TestDriftOpensEpochAndRecovers is the tentpole's acceptance test: a
// phase-shifting workload under an armed detector produces a re-tuning
// epoch whose post-drift best beats the stale pre-drift winner on the
// post-shift profile.
func TestDriftOpensEpochAndRecovers(t *testing.T) {
	sched := defaultSchedule(40)
	s := driftSession(t, "xalan", "hierarchical", 9000, 7, 3, sched)
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Epochs) < 2 {
		t.Fatalf("drifting session opened no re-tuning epoch: %d epochs", len(out.Epochs))
	}
	first := out.Epochs[0]
	if first.DriftTrial == 0 || first.DriftStat <= 0 {
		t.Fatalf("epoch 0 closed without drift provenance: %+v", first)
	}
	if first.DriftTrial <= 40 {
		t.Fatalf("drift confirmed at trial %d, before the shift at 40", first.DriftTrial)
	}
	last := out.Epochs[len(out.Epochs)-1]
	if last.DriftTrial != 0 {
		t.Fatalf("final epoch carries drift provenance: %+v", last)
	}
	if last.StaleKey != first.BestKey {
		t.Fatalf("epoch %d inherited stale %q, want epoch 0's best %q", last.Epoch, last.StaleKey, first.BestKey)
	}
	if last.Best == nil || last.BestKey == "" {
		t.Fatal("final epoch has no best")
	}
	// Ground truth: measure the stale winner and the re-tuned winner on the
	// post-shift profile with a fresh runner (identical rep allocation for
	// both keys — a fair comparison).
	base, _ := workload.ByName("xalan")
	shifted, err := sched.ProfileAt(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := runner.NewInProcess(jvmsim.New(), shifted)
	staleM := oracle.Measure(first.Best, 5)
	bestM := oracle.Measure(last.Best, 5)
	if bestM.Failed || staleM.Failed {
		t.Fatalf("oracle measurement failed: stale %v best %v", staleM.Failed, bestM.Failed)
	}
	if bestM.Mean >= staleM.Mean {
		t.Fatalf("re-tuned best (%.3f) does not beat stale winner (%.3f) on the post-shift profile",
			bestM.Mean, staleM.Mean)
	}
	// The session's reported best is the post-drift regime's, scored there.
	if out.BestWall != last.BestScore {
		t.Fatalf("session best %.4f != final epoch best %.4f", out.BestWall, last.BestScore)
	}
	if math.IsInf(out.BestWall, 0) || out.BestWall <= 0 {
		t.Fatalf("session best score not finite positive: %v", out.BestWall)
	}
}

// TestDriftDeterministicPerSeedWorkers: two identical drifting sessions
// produce byte-identical epochs, outcomes, and traces.
func TestDriftDeterministicPerSeedWorkers(t *testing.T) {
	run := func() (*Outcome, []byte) {
		tr := telemetry.NewTracer(0)
		s := driftSession(t, "fop", "hierarchical", 6000, 11, 4, defaultSchedule(30))
		s.Trace = tr
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		evs, _ := json.Marshal(tr.Events())
		return out, evs
	}
	a, ta := run()
	b, tb := run()
	ja, _ := json.Marshal(a.Epochs)
	jb, _ := json.Marshal(b.Epochs)
	if string(ja) != string(jb) {
		t.Fatalf("epochs diverged:\n%s\n%s", ja, jb)
	}
	if a.BestWall != b.BestWall || a.Trials != b.Trials || a.Best.Key() != b.Best.Key() {
		t.Fatalf("outcomes diverged: %v/%d vs %v/%d", a.BestWall, a.Trials, b.BestWall, b.Trials)
	}
	if string(ta) != string(tb) {
		t.Fatal("traces diverged")
	}
}

// TestDriftStationaryNoFalsePositives is the λ calibration guard: real
// stationary sessions — every built-in noise source, searcher dynamics,
// flaky retries — must never confirm a drift at default sensitivity. This
// is the session-level counterpart of the synthetic-stream guard in
// internal/drift.
func TestDriftStationaryNoFalsePositives(t *testing.T) {
	for _, searcher := range []string{"hierarchical", "random", "anneal"} {
		for seed := int64(1); seed <= 4; seed++ {
			s := driftSession(t, "h2", searcher, 6000, seed, 2, nil)
			out, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Epochs) != 1 {
				t.Fatalf("%s seed %d: stationary session opened %d epochs (false positive): %+v",
					searcher, seed, len(out.Epochs), out.Epochs)
			}
			if e := out.Epochs[0]; e.DriftTrial != 0 || e.StaleKey != "" || e.Trials != out.Trials {
				t.Fatalf("%s seed %d: stationary epoch record inconsistent: %+v", searcher, seed, e)
			}
		}
	}
}

// TestDriftObliviousSessionKeepsStaleBest: with a phase schedule but no
// detector the tuner is oblivious — it keeps trusting the pre-drift winner
// and reports no epochs. (This is the baseline the re-tuned session is
// evaluated against in EXPERIMENTS.md E18.)
func TestDriftObliviousSessionKeepsStaleBest(t *testing.T) {
	s := driftSession(t, "xalan", "hierarchical", 9000, 7, 3, defaultSchedule(40))
	s.Drift, s.NewSearcher = nil, nil
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Epochs != nil {
		t.Fatalf("oblivious session reported epochs: %+v", out.Epochs)
	}
	// The post-shift workload is uniformly slower, so nothing measured after
	// the shift beats the pre-shift incumbent: the reported best is stale.
	armed := driftSession(t, "xalan", "hierarchical", 9000, 7, 3, defaultSchedule(40))
	aout, err := armed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(aout.Epochs) < 2 {
		t.Fatal("armed twin opened no epoch")
	}
	if out.Best.Key() != aout.Epochs[0].BestKey {
		t.Fatalf("oblivious best %q should equal the armed session's pre-drift best %q",
			out.Best.Key(), aout.Epochs[0].BestKey)
	}
}

// TestDriftEpochPriorsInjected: the per-epoch prior hook's configurations
// are proposed right after the demoted incumbent.
func TestDriftEpochPriorsInjected(t *testing.T) {
	s := driftSession(t, "fop", "hierarchical", 6000, 3, 2, defaultSchedule(30))
	reg := flags.NewRegistry()
	s.Reg = reg
	prior, err := flags.ParseArgs(reg, []string{"-XX:+UseSerialGC"})
	if err != nil {
		t.Fatal(err)
	}
	var gotEpoch, gotPhase int
	s.EpochPriors = func(epoch, phase int) []PriorSample {
		gotEpoch, gotPhase = epoch, phase
		return []PriorSample{{Cfg: prior, Norm: 0.9}}
	}
	out, rerr := s.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(out.Epochs) < 2 {
		t.Fatal("no epoch opened")
	}
	if gotEpoch != 1 || gotPhase != 1 {
		t.Fatalf("EpochPriors called with (epoch=%d, phase=%d), want (1, 1)", gotEpoch, gotPhase)
	}
	// The injected prior was measured: it appears in the attempt history.
	found := false
	for _, rec := range out.AttemptHistory {
		if rec.Key == prior.Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected prior %q never measured", prior.Key())
	}
}

// TestDriftValidation: drift without a searcher factory, and shifting
// schedules on a runner without SetPhase, fail fast.
func TestDriftValidation(t *testing.T) {
	s := driftSession(t, "fop", "random", 1000, 1, 1, defaultSchedule(10))
	s.NewSearcher = nil
	if _, err := s.Run(); err == nil {
		t.Error("Drift without NewSearcher should error")
	}

	s2 := driftSession(t, "fop", "random", 1000, 1, 1, defaultSchedule(10))
	s2.Runner = phaselessRunner{s2.Runner}
	if _, err := s2.Run(); err == nil {
		t.Error("phase schedule on a runner without SetPhase should error")
	}

	s3 := driftSession(t, "fop", "random", 1000, 1, 1, nil)
	s3.Drift = &DriftPolicy{Detector: drift.Config{Lambda: math.NaN()}}
	if _, err := s3.Run(); err == nil {
		t.Error("invalid detector config should error")
	}
}

// phaselessRunner hides the embedded runner's SetPhase.
type phaselessRunner struct{ runner.Runner }

// TestDriftKillAndResumeMidEpoch: a drifting session killed after the
// re-tune transition resumes to the byte-identical outcome — including the
// epoch history — without re-invoking the EpochPriors hook (the recorded
// priors are replayed verbatim; the transfer store may have changed since).
func TestDriftKillAndResumeMidEpoch(t *testing.T) {
	const (
		budget  = 9000.0
		seed    = int64(7)
		workers = 3
		killAt  = 60 // past the drift confirmation (~trial 44), mid-epoch 1
	)
	sched := defaultSchedule(40)
	reg := flags.NewRegistry()
	prior, err := flags.ParseArgs(reg, []string{"-XX:+UseSerialGC"})
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Session {
		s := driftSession(t, "xalan", "hierarchical", budget, seed, workers, sched)
		s.Reg = reg
		s.EpochPriors = func(epoch, phase int) []PriorSample {
			return []PriorSample{{Cfg: prior, Norm: 0.9}}
		}
		return s
	}

	uninterrupted, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(uninterrupted.Epochs) < 2 {
		t.Fatalf("no epoch opened before the kill point: %d", len(uninterrupted.Epochs))
	}
	if dt := uninterrupted.Epochs[0].DriftTrial; dt >= killAt {
		t.Fatalf("drift at trial %d, kill at %d would land pre-epoch", dt, killAt)
	}

	// Kill: checkpoint every round, cancel once killAt trials are in.
	path := filepath.Join(t.TempDir(), "drift.ckpt")
	s := build()
	keeper := checkpoint.NewKeeper(path, 1, nil)
	keeper.SyncWrites = true
	s.Checkpoint = keeper
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Ctx = ctx
	s.OnProgress = func(tp TracePoint) {
		if tp.Trial >= killAt {
			cancel()
		}
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("session survived the kill")
	}
	if err := keeper.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Epochs) == 0 {
		t.Fatal("mid-epoch checkpoint records no epochs")
	}
	if len(snap.Epochs[0].Priors) != 2 {
		t.Fatalf("epoch record has %d priors, want demoted incumbent + injected prior", len(snap.Epochs[0].Priors))
	}

	// Resume: the hook must not be consulted again — replay uses the
	// recorded priors even though the "store" now answers differently.
	resumed := build()
	resumed.EpochPriors = func(epoch, phase int) []PriorSample {
		t.Fatalf("EpochPriors re-invoked on resume (epoch %d)", epoch)
		return nil
	}
	resumed.Resume = snap
	out, err := resumed.Run()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}

	if got, want := outcomeFingerprint(t, out), outcomeFingerprint(t, uninterrupted); got != want {
		t.Fatalf("resumed outcome differs:\nresumed:       %s\nuninterrupted: %s", got, want)
	}
	je, _ := json.Marshal(out.Epochs)
	jw, _ := json.Marshal(uninterrupted.Epochs)
	if string(je) != string(jw) {
		t.Fatalf("resumed epochs differ:\n%s\n%s", je, jw)
	}
}

// TestDriftResumeChecksFingerprint: a drifting checkpoint refuses to
// resume stationary, and vice versa.
func TestDriftResumeChecksFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift.ckpt")
	s := driftSession(t, "xalan", "hierarchical", 9000, 7, 3, defaultSchedule(40))
	keeper := checkpoint.NewKeeper(path, 1, nil)
	keeper.SyncWrites = true
	s.Checkpoint = keeper
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Ctx = ctx
	s.OnProgress = func(tp TracePoint) {
		if tp.Trial >= 20 {
			cancel()
		}
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("session survived the kill")
	}
	if err := keeper.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	stationary := driftSession(t, "xalan", "hierarchical", 9000, 7, 3, nil)
	stationary.Drift = nil
	stationary.NewSearcher = nil
	stationary.Resume = snap
	if _, err := stationary.Run(); err == nil || !strings.Contains(err.Error(), "drift mismatch") {
		t.Fatalf("drifting checkpoint resumed stationary: %v", err)
	}

	weaker := driftSession(t, "xalan", "hierarchical", 9000, 7, 3, defaultSchedule(40))
	weaker.Drift = &DriftPolicy{Detector: drift.Config{Lambda: 2 * drift.DefaultLambda}}
	weaker.Resume = snap
	if _, err := weaker.Run(); err == nil || !strings.Contains(err.Error(), "drift mismatch") {
		t.Fatalf("checkpoint resumed under a different sensitivity: %v", err)
	}
}

// BenchmarkEpochRetune measures the full re-tune path: a drifting session
// including detection, demotion, searcher rebuild, and the recovery search.
func BenchmarkEpochRetune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := driftSession(b, "fop", "hierarchical", 4000, int64(i), 2, defaultSchedule(30))
		out, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Epochs) < 2 {
			b.Fatal("no epoch opened")
		}
	}
}
