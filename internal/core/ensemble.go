package core

import (
	"math"

	"repro/internal/flags"
	"repro/internal/runner"
)

// Ensemble is an OpenTuner-style meta-searcher: it maintains a portfolio of
// sub-searchers and allocates each trial to one of them with a multi-armed
// bandit over recent credit. OpenTuner is the closest prior system to the
// paper's tuner (general-purpose, ensemble-of-techniques, budgeted), so
// this searcher is the reproduction's stand-in for an "off-the-shelf
// auto-tuner pointed at the JVM" — hierarchy-blind, but adaptive.
//
// Credit assignment follows OpenTuner's AUC bandit in spirit: a sub-searcher
// earns credit when its proposal improves on the global best, decayed over
// a sliding window; arms are chosen by credit with an exploration bonus.
type Ensemble struct {
	// Window is the sliding history length for credit (default 50).
	Window int
	// ExplorationC is the UCB-style exploration constant (default 1.4).
	ExplorationC float64

	arms    []ensembleArm
	pending map[*flags.Config]*armOutcome
	history []*armOutcome
	trialN  int
}

type ensembleArm struct {
	searcher Searcher
	uses     int
}

// armOutcome credits one proposal to the arm that made it. Entries are
// shared between the sliding history window and the pending map, so an
// observation that arrives after the window slid past it (multi-worker
// sessions deliver out of proposal order) still reaches the right arm.
type armOutcome struct {
	arm      int
	improved bool
}

// NewEnsemble builds the default portfolio: greedy local search, a flat GA,
// annealing, and pure random — the classic OpenTuner technique mix.
func NewEnsemble() *Ensemble {
	return &Ensemble{
		arms: []ensembleArm{
			{searcher: &HillClimb{}},
			{searcher: &GeneticFlat{}},
			{searcher: &Anneal{}},
			{searcher: Random{}},
		},
	}
}

// Name implements Searcher.
func (e *Ensemble) Name() string { return "ensemble" }

func (e *Ensemble) window() int {
	if e.Window > 0 {
		return e.Window
	}
	return 50
}

func (e *Ensemble) explorationC() float64 {
	if e.ExplorationC > 0 {
		return e.ExplorationC
	}
	return 1.4
}

// Propose implements Searcher: pick an arm by windowed credit + UCB
// exploration, then delegate.
func (e *Ensemble) Propose(ctx *Context) *flags.Config {
	e.trialN++
	arm := e.pickArm(ctx)
	cfg := e.arms[arm].searcher.Propose(ctx)
	if cfg == nil {
		// The chosen technique is exhausted; fall back to random.
		cfg = Random{}.Propose(ctx)
	}
	e.arms[arm].uses++
	if e.pending == nil {
		e.pending = make(map[*flags.Config]*armOutcome)
	}
	out := &armOutcome{arm: arm}
	e.pending[cfg] = out
	e.history = append(e.history, out)
	if len(e.history) > e.window() {
		e.history = e.history[1:]
	}
	return cfg
}

// pickArm scores each arm by recent success rate plus an exploration bonus.
func (e *Ensemble) pickArm(ctx *Context) int {
	// Ensure every arm is tried once first.
	for i := range e.arms {
		if e.arms[i].uses == 0 {
			return i
		}
	}
	credit := make([]float64, len(e.arms))
	uses := make([]float64, len(e.arms))
	for _, h := range e.history {
		uses[h.arm]++
		if h.improved {
			credit[h.arm]++
		}
	}
	bestArm, bestScore := 0, math.Inf(-1)
	total := float64(len(e.history)) + 1
	c := e.explorationC()
	for i := range e.arms {
		u := uses[i]
		if u == 0 {
			u = 0.5 // recently unused arms get a fresh chance
		}
		score := credit[i]/u + c*math.Sqrt(math.Log(total)/u)
		// Deterministic tie-break by index; add tiny jitter from the
		// session RNG so equal arms rotate.
		score += ctx.Rng.Float64() * 1e-6
		if score > bestScore {
			bestArm, bestScore = i, score
		}
	}
	return bestArm
}

// Observe implements Searcher: forward the measurement to the arm that made
// the proposal and record credit.
func (e *Ensemble) Observe(ctx *Context, cfg *flags.Config, m runner.Measurement) {
	out, ok := e.pending[cfg]
	if !ok {
		return
	}
	delete(e.pending, cfg)
	e.arms[out.arm].searcher.Observe(ctx, cfg, m)
	if sc := ctx.Score(m); sc < ctx.BestWall {
		out.improved = true
	}
}
