package core

import (
	"testing"

	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

func TestEnsembleRegistered(t *testing.T) {
	s, err := NewSearcher("ensemble")
	if err != nil || s.Name() != "ensemble" {
		t.Fatalf("ensemble not registered: %v", err)
	}
	found := false
	for _, n := range SearcherNames() {
		if n == "ensemble" {
			found = true
		}
	}
	if !found {
		t.Error("ensemble missing from SearcherNames")
	}
}

func TestEnsembleTriesEveryArm(t *testing.T) {
	p, _ := workload.ByName("fop")
	e := NewEnsemble()
	s := &Session{
		Runner:   runner.NewInProcess(jvmsim.New(), p),
		Searcher: e,
		Seed:     3,
	}
	s.MaxTrials = 12
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, arm := range e.arms {
		if arm.uses == 0 {
			t.Errorf("arm %d (%s) never used", i, arm.searcher.Name())
		}
	}
}

func TestEnsembleImproves(t *testing.T) {
	// h2's heap pressure is discoverable by any of the ensemble's arms.
	out, err := newSession(t, "h2", "ensemble", 8000, 5).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.ImprovementPct < 10 {
		t.Errorf("ensemble found only %.1f%%", out.ImprovementPct)
	}
}

func TestEnsembleWindowBounded(t *testing.T) {
	p, _ := workload.ByName("fop")
	e := &Ensemble{Window: 10}
	e.arms = NewEnsemble().arms
	s := &Session{
		Runner:   runner.NewInProcess(jvmsim.New(), p),
		Searcher: e,
		Seed:     4,
	}
	s.MaxTrials = 40
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.history) > 10 {
		t.Errorf("history grew to %d, window is 10", len(e.history))
	}
}

func TestEnsembleCreditsImprovingArm(t *testing.T) {
	// Feed the ensemble synthetic observations: make arm selection follow
	// credit by checking the recorded history flags.
	p, _ := workload.ByName("fop")
	e := NewEnsemble()
	s := &Session{
		Runner:   runner.NewInProcess(jvmsim.New(), p),
		Searcher: e,
		Seed:     6,
	}
	s.MaxTrials = 60
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, h := range e.history {
		if h.improved {
			improved++
		}
	}
	if out.ImprovementPct > 0 && improved == 0 {
		t.Error("session improved but no arm got credit")
	}
}

func TestSessionWorkersRunMoreTrials(t *testing.T) {
	run := func(workers int) *Outcome {
		p, _ := workload.ByName("fop")
		s := &Session{
			Runner:        runner.NewInProcess(jvmsim.New(), p),
			Searcher:      NewHierarchical(),
			BudgetSeconds: 2000,
			Seed:          8,
			Workers:       workers,
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one := run(1)
	four := run(4)
	if four.Trials < one.Trials*2 {
		t.Errorf("4 workers ran %d trials vs %d on one; expected ~4x", four.Trials, one.Trials)
	}
	if four.BestWall > one.BestWall*1.05 {
		t.Errorf("parallel tuning should not end much worse: %.2f vs %.2f",
			four.BestWall, one.BestWall)
	}
	// Makespan stays within the budget plus one measurement of slack.
	if four.Elapsed > 2000+6*four.DefaultWall+10 {
		t.Errorf("makespan %.0f exceeds budget", four.Elapsed)
	}
}

func TestSessionWorkersDeterministic(t *testing.T) {
	run := func() *Outcome {
		p, _ := workload.ByName("xalan")
		s := &Session{
			Runner:        runner.NewInProcess(jvmsim.New(), p),
			Searcher:      NewHierarchical(),
			BudgetSeconds: 1500,
			Seed:          9,
			Workers:       3,
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.BestWall != b.BestWall || a.Trials != b.Trials {
		t.Error("multi-worker sessions must stay deterministic")
	}
}
