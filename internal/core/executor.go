package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/flags"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// BatchSearcher is an optional Searcher extension for multi-worker
// sessions. A searcher that implements it is asked for up to n proposals at
// once, which the session evaluates concurrently on real goroutines; a
// searcher that does not is driven through repeated Propose calls instead.
//
// Returning fewer than n configurations leaves the remaining slots idle for
// one round (useful at phase boundaries — the hierarchical searcher stops a
// batch at the end of its branch survey so refinement only starts once every
// survey measurement has been observed). Returning an empty batch means the
// searcher is exhausted and ends the session.
type BatchSearcher interface {
	Searcher
	// ProposeBatch returns up to n configurations to evaluate concurrently.
	ProposeBatch(ctx *Context, n int) []*flags.Config
}

// trial is one dispatched measurement occupying a virtual evaluation slot.
type trial struct {
	seq   int     // dispatch order, the deterministic tie-break
	slot  int     // virtual slot charged for the measurement
	start float64 // virtual time the slot became free
	cfg   *flags.Config
	key   string // cfg.Key(), computed once at dispatch
	m     runner.Measurement
	// eff is the virtual cost actually charged to the slot — m.CostSeconds
	// unless the straggler watchdog resolved a hedge; hedged names the
	// watchdog's verdict when it did.
	eff    float64
	hedged string
	// synthetic marks a quarantine rejection: m was synthesized at zero
	// cost and the runner never saw the configuration. qlabel is the
	// quarantined subtree.
	synthetic bool
	qlabel    string
}

// robState bundles the overload-robustness machinery threaded through the
// loop: the straggler watchdog, the failure quarantine, and the wall-clock
// safety net. Always non-nil; individual features are nil when disabled.
type robState struct {
	hg       *hedger
	quar     *quarantine
	now      func() time.Time
	deadline time.Time // zero when no RealBudget is set
}

// ckState is the session's durability bookkeeping, non-nil only when
// checkpointing or resuming. log accumulates every delivered measurement in
// delivery order; replay maps dispatch seq → recorded trial for the resume
// prefix, satisfied without touching the runner. epochs accumulates the
// re-tuning epochs opened so far (with the warm-start priors each used);
// epochReplay maps epoch index → recorded epoch so a resumed session
// rebuilds each epoch's searcher from the original priors verbatim.
type ckState struct {
	keeper      *checkpoint.Keeper
	meta        checkpoint.Meta
	base        runner.Measurement
	snap        runner.StateSnapshotter
	log         []checkpoint.TrialRecord
	replay      map[int]checkpoint.TrialRecord
	epochs      []checkpoint.EpochRecord
	epochReplay map[int]checkpoint.EpochRecord
}

// write snapshots the session at a round boundary and hands it to the
// keeper, which persists it off the session goroutine. Rounds are barriers,
// so no Measure call is in flight and the runner state is consistent. A
// snapshot failure is counted but never fails the session — durability is
// best-effort, the search itself must not be.
func (s *Session) writeCheckpoint(ck *ckState, ctx *Context) {
	state, err := ck.snap.SnapshotState()
	if err != nil {
		s.Telemetry.Counter("checkpoint_snapshot_errors_total").Inc()
		return
	}
	// The full slice expression freezes the log's current extent; delivered
	// records are never rewritten, so the background encode can read them
	// while the session keeps appending.
	ck.keeper.Write(&checkpoint.Snapshot{
		Meta:        ck.meta,
		Trial:       ctx.Trial,
		Elapsed:     ctx.Elapsed,
		BestKey:     ctx.Best.Key(),
		BestScore:   ctx.BestWall,
		Baseline:    ck.base,
		Trials:      ck.log[:len(ck.log):len(ck.log)],
		Epochs:      ck.epochs[:len(ck.epochs):len(ck.epochs)],
		RunnerState: state,
	})
}

// runLoop is the session's evaluation engine: a bulk-synchronous batched
// executor. Each round it fills every budget-eligible slot with a proposal
// (earliest-free slot first), measures the whole batch concurrently on
// goroutines, then delivers the observations in virtual-completion order.
//
// Determinism for a fixed seed holds because every source of randomness is
// serialized deterministically: proposals draw from the session RNG on the
// session goroutine in slot order, noise-rep indices are allocated per
// configuration key by the runner, and a key is measured at most once per
// round (duplicates are deferred), so concurrent Measure calls never race on
// a key's rep sequence. Real goroutine scheduling only changes when results
// arrive in wall-clock time, never what they are or the order the searcher
// sees them in.
func (s *Session) runLoop(runCtx context.Context, ctx *Context, out *Outcome,
	slotFree []float64, reps int, budget float64, history map[string]*AttemptRecord,
	ck *ckState, rob *robState, ds *driftState) error {
	workers := len(slotFree)

	// searcher is the live proposal strategy. It starts as the session's
	// Searcher and is rebuilt (warm-started) at each re-tuning epoch.
	searcher := s.Searcher

	// Cache hits are free, so a searcher that re-proposes known
	// configurations forever would never consume budget; bound the
	// consecutive free trials to keep the loop total.
	freeTrials := 0
	const maxFreeTrials = 1000

	// degrade marks the outcome as stopped-early: the session still returns
	// its best-so-far answer, with the reason on the outcome and a labeled
	// counter in telemetry.
	degrade := func(tag, format string, args ...any) {
		out.Degraded = true
		out.DegradedReason = fmt.Sprintf(format, args...)
		s.Telemetry.Counter(`session_degraded_total{reason="` + tag + `"}`).Inc()
	}

	dispatched := 0
	seq := 0
	exhausted := false
	// carry holds proposals deferred from the previous round: duplicates of
	// a key already measuring in that round, or overflow past the round's
	// slot count. It is bounded by the slot count per round.
	var carry []*flags.Config

	for {
		if err := runCtx.Err(); err != nil {
			if s.BestEffort {
				degrade("canceled", "canceled after %d trials: %v", ctx.Trial, err)
				return nil
			}
			return fmt.Errorf("core: session canceled after %d trials: %w", ctx.Trial, err)
		}
		if !rob.deadline.IsZero() && !rob.now().Before(rob.deadline) {
			degrade("wall-clock", "wall-clock budget %s exhausted after %d trials", s.RealBudget, ctx.Trial)
			break
		}
		if freeTrials >= maxFreeTrials {
			degrade("stalled", "stalled after %d consecutive zero-cost trials", maxFreeTrials)
			break
		}
		// Apply the workload's phase schedule before dispatching: the round
		// is a barrier, so no measurement observes a half-applied shift.
		if err := s.advancePhase(ctx, ds, dispatched); err != nil {
			return err
		}

		// Pick the slots that can still start a trial inside the budget,
		// earliest-free first. Rounds are barriers, so each slot hosts at
		// most one trial per round.
		type pick struct {
			slot  int
			start float64
		}
		var picks []pick
		used := make([]bool, workers)
		for len(picks) < workers {
			sel := -1
			for i := 0; i < workers; i++ {
				if !used[i] && (sel < 0 || slotFree[i] < slotFree[sel]) {
					sel = i
				}
			}
			if sel < 0 || slotFree[sel] >= budget {
				break
			}
			if s.MaxTrials > 0 && dispatched+len(picks) >= s.MaxTrials {
				break
			}
			used[sel] = true
			picks = append(picks, pick{sel, slotFree[sel]})
		}
		if len(picks) == 0 {
			// No slot can start another trial: a budget ran out. (A searcher
			// that finished its strategy breaks below without degradation.)
			if s.MaxTrials > 0 && dispatched >= s.MaxTrials {
				degrade("trial-budget", "trial budget exhausted after %d trials", ctx.Trial)
			} else {
				degrade("budget", "virtual tuning budget exhausted after %d trials (%.0f virtual seconds)",
					ctx.Trial, budget)
			}
			break
		}

		// Gather proposals: deferred ones first, then the searcher. Proposal
		// latency is real time (the searcher thinking), not virtual time, and
		// feeds the searcher_propose_seconds histogram only — never the trace.
		proposals := carry
		carry = nil
		proposeHist := s.Telemetry.Histogram("searcher_propose_seconds", telemetry.DefLatencyBuckets)
		if !exhausted && len(proposals) < len(picks) {
			if bs, ok := searcher.(BatchSearcher); ok {
				ctx.Elapsed = picks[len(proposals)].start
				t0 := time.Now()
				got := bs.ProposeBatch(ctx, len(picks)-len(proposals))
				proposeHist.Observe(time.Since(t0).Seconds())
				if len(got) == 0 {
					exhausted = true
				}
				proposals = append(proposals, got...)
			} else {
				for len(proposals) < len(picks) {
					ctx.Elapsed = picks[len(proposals)].start
					t0 := time.Now()
					cfg := searcher.Propose(ctx)
					proposeHist.Observe(time.Since(t0).Seconds())
					if cfg == nil {
						exhausted = true
						break
					}
					proposals = append(proposals, cfg)
				}
			}
		}

		// Assign proposals to slots. A configuration key runs at most once
		// per round: concurrent measurements of one key would race on its
		// noise-rep sequence and break determinism, so duplicates wait for
		// the next round (where they replay from the runner's cache). A
		// proposal landing in a quarantined subtree still takes its slot —
		// as a synthetic zero-cost rejection the runner never sees, so the
		// slot's clock does not move and the searcher is told immediately.
		batch := make([]*trial, 0, len(picks))
		inRound := make(map[string]bool, len(picks))
		synthetics := 0
		for _, cfg := range proposals {
			key := cfg.Key()
			if len(batch) == len(picks) || inRound[key] {
				carry = append(carry, cfg)
				continue
			}
			inRound[key] = true
			p := picks[len(batch)]
			tr := &trial{seq: seq, slot: p.slot, start: p.start, cfg: cfg, key: key}
			if rob.quar != nil {
				if label, blocked := rob.quar.blocked(cfg, key, ctx.Trial, p.start); blocked {
					tr.m = syntheticQuarantined(key, label)
					tr.synthetic = true
					tr.qlabel = label
					synthetics++
				}
			}
			batch = append(batch, tr)
			s.Trace.Emit(telemetry.Event{
				T: p.start, Kind: telemetry.EvProposal, Key: key, Worker: p.slot,
			})
			seq++
		}
		if len(batch) == 0 {
			break
		}
		dispatched += len(batch)

		// Satisfy recorded trials from the resume log: the replay prefix
		// reconstructs searcher and RNG state without re-measuring. A
		// recorded seq whose key disagrees with the engine's proposal means
		// the determinism inputs changed — fail rather than splice
		// mismatched histories. Synthetic rejections never reach the runner
		// either way (a resumed quarantine re-derives them identically).
		fresh := batch
		if synthetics > 0 || (ck != nil && len(ck.replay) > 0) {
			fresh = make([]*trial, 0, len(batch))
			for _, tr := range batch {
				if ck != nil {
					if rec, ok := ck.replay[tr.seq]; ok {
						if rec.Key != tr.key {
							return fmt.Errorf("core: resume diverged at trial %d: checkpoint recorded %q, session proposed %q",
								tr.seq, rec.Key, tr.key)
						}
						tr.m = rec.M
						continue
					}
				}
				if !tr.synthetic {
					fresh = append(fresh, tr)
				}
			}
		}

		// Measure the fresh trials concurrently. This is where the session
		// overlaps real work: up to `workers` Runner.Measure calls in
		// flight — or, when the runner batches (runner.BatchMeasurer, the
		// dispatch pool's batched transport), the whole round in one call.
		// The two paths are byte-equivalent by the BatchMeasurer contract;
		// only the number of wire round trips differs.
		if len(fresh) == 1 {
			fresh[0].m = s.Runner.Measure(fresh[0].cfg, reps)
		} else if bm, ok := s.Runner.(runner.BatchMeasurer); ok && len(fresh) > 1 {
			cfgs := make([]*flags.Config, len(fresh))
			for i, tr := range fresh {
				cfgs[i] = tr.cfg
			}
			for i, m := range bm.MeasureBatch(cfgs, reps) {
				fresh[i].m = m
			}
		} else if len(fresh) > 1 {
			var wg sync.WaitGroup
			for _, tr := range fresh {
				wg.Add(1)
				go func(tr *trial) {
					defer wg.Done()
					tr.m = s.Runner.Measure(tr.cfg, reps)
				}(tr)
			}
			wg.Wait()
		}

		// Resolve the straggler watchdog in dispatch order before delivery:
		// each trial's effective cost is what its slot is charged, and the
		// watchdog's cost window advances deterministically (it never sees
		// goroutine scheduling). Replayed trials pass through the same
		// decisions, so a resumed session rebuilds the identical window.
		for _, tr := range batch {
			tr.eff = tr.m.CostSeconds
			if rob.hg == nil || tr.synthetic {
				continue
			}
			tr.eff, tr.hedged = rob.hg.decide(tr.m)
			if tr.hedged != "" {
				s.Telemetry.Counter("session_hedges_total").Inc()
				if tr.hedged == "hedge-won" {
					s.Telemetry.Counter("session_hedge_wins_total").Inc()
				}
			}
			rob.hg.observe(tr.eff)
		}
		if rob.hg != nil {
			if d, armed := rob.hg.deadline(); armed {
				s.Telemetry.Gauge("session_hedge_deadline_virtual_seconds").Set(d)
			}
		}

		// Deliver observations in virtual-completion order (dispatch order
		// breaks ties), charging each trial to its slot. The searcher sees
		// results as they would complete on a real farm, not in proposal
		// order — the synchronous-information assumption is gone.
		sort.Slice(batch, func(i, j int) bool {
			fi := batch[i].start + batch[i].eff
			fj := batch[j].start + batch[j].eff
			if fi != fj {
				return fi < fj
			}
			return batch[i].seq < batch[j].seq
		})
		for _, tr := range batch {
			slotFree[tr.slot] = tr.start + tr.eff
			ctx.Trial++
			ctx.Elapsed = slotFree[tr.slot]
			if ck != nil {
				ck.log = append(ck.log, checkpoint.TrialRecord{Seq: tr.seq, Key: tr.key, M: tr.m})
			}
			s.Telemetry.Counter("session_trials_total").Inc()
			if tr.m.FromCache {
				out.CacheHits++
				s.Telemetry.Counter("session_cache_hits_total").Inc()
			}
			if tr.eff == 0 {
				freeTrials++
			} else {
				freeTrials = 0
			}
			if tr.synthetic {
				out.Quarantined++
			} else if tr.m.Failed {
				out.Failures++
				s.Telemetry.Counter("session_failures_total").Inc()
			}
			if !tr.synthetic {
				out.recordAttempts(history, tr.key, tr.m)
			}
			searcher.Observe(ctx, tr.cfg, tr.m)
			if rob.quar != nil && !tr.synthetic {
				rob.quar.observe(tr.cfg, tr.key, ctx.Trial, ctx.Elapsed, tr.m)
			}
			sc := ctx.Objective.Score(tr.m)
			// After an epoch transition the incumbent's score describes the
			// old regime: the first successful post-drift observation replaces
			// it unconditionally, re-anchoring BestWall in the new regime
			// (the demoted winner itself is re-proposed first, so this is
			// normally its own post-drift re-measurement).
			if sc < ctx.BestWall || (ds.demoted && !tr.synthetic && !math.IsInf(sc, 1)) {
				ctx.Best, ctx.BestWall = tr.cfg.Clone(), sc
				out.BestMeasurement = tr.m
				ds.demoted = false
			}
			// Feed the drift detector in delivery order — the serialization
			// that makes its events deterministic. Synthetic quarantine
			// rejections never ran and say nothing about the workload.
			if !tr.synthetic {
				ds.observe(sc, ctx.Trial)
			}
			// Commit the trial's runner-side events (attempts, retries,
			// faults) stamped with the virtual completion time, then mark the
			// observation. Failed scores are +Inf, which JSON cannot carry —
			// the failure kind rides in Detail instead.
			s.Trace.Commit(tr.key, ctx.Elapsed)
			if tr.synthetic {
				s.Trace.Emit(telemetry.Event{
					T: ctx.Elapsed, Kind: telemetry.EvQuarantine, Key: tr.key,
					Worker: tr.slot, Trial: ctx.Trial, Detail: "skip:" + tr.qlabel,
				})
			}
			if tr.hedged != "" {
				s.Trace.Emit(telemetry.Event{
					T: ctx.Elapsed, Kind: telemetry.EvHedge, Key: tr.key,
					Worker: tr.slot, Trial: ctx.Trial, Cost: tr.eff, Detail: tr.hedged,
				})
			}
			ev := telemetry.Event{
				T: ctx.Elapsed, Kind: telemetry.EvObserve, Key: tr.key,
				Worker: tr.slot, Trial: ctx.Trial, Cost: tr.eff,
			}
			if !math.IsInf(sc, 1) {
				ev.Score = sc
			} else {
				ev.Detail = string(tr.m.Failure)
			}
			s.Trace.Emit(ev)
			s.Telemetry.Gauge("session_best_score").Set(ctx.BestWall)
			s.Telemetry.Gauge("session_elapsed_virtual_seconds").Set(ctx.Elapsed)
			tp := TracePoint{Elapsed: ctx.Elapsed, BestWall: ctx.BestWall, Trial: ctx.Trial, Flakes: out.Flakes}
			out.Trace = append(out.Trace, tp)
			if s.OnProgress != nil {
				s.OnProgress(tp)
			}
		}
		s.Telemetry.Counter("session_rounds_total").Inc()
		s.Trace.Emit(telemetry.Event{T: ctx.Elapsed, Kind: telemetry.EvBarrier, Trial: ctx.Trial})
		// A drift confirmed mid-round transitions here, at the barrier: the
		// epoch closes, the searcher is rebuilt warm, and the round-local
		// machinery (deferred proposals, the exhaustion latch, the stall
		// counter) restarts for the new regime. Transitioning before the
		// checkpoint write means the snapshot always records the epoch it
		// was taken in.
		if ds.pending != nil {
			next, err := s.openEpoch(ctx, out, ds, ck, rob)
			if err != nil {
				return err
			}
			searcher = next
			exhausted = false
			carry = nil
			freeTrials = 0
		}
		if ck != nil && ck.keeper.Due(ctx.Trial) {
			s.writeCheckpoint(ck, ctx)
		}
	}
	return nil
}
