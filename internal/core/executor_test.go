package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

// overlapRunner measures with a real wall-clock sleep and records how many
// Measure calls were in flight simultaneously — proof the session overlaps
// evaluations on real goroutines, not just in virtual bookkeeping. Virtual
// cost varies by configuration key so completions finish out of order.
type overlapRunner struct {
	prof        *workload.Profile
	inflight    int64
	maxInflight int64

	mu      sync.Mutex
	elapsed float64
}

func (r *overlapRunner) Workload() *workload.Profile { return r.prof }

func (r *overlapRunner) Elapsed() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.elapsed
}

func (r *overlapRunner) Measure(cfg *flags.Config, reps int) runner.Measurement {
	cur := atomic.AddInt64(&r.inflight, 1)
	for {
		max := atomic.LoadInt64(&r.maxInflight)
		if cur <= max || atomic.CompareAndSwapInt64(&r.maxInflight, max, cur) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	atomic.AddInt64(&r.inflight, -1)

	key := cfg.Key()
	cost := 5 + float64(len(key)%7)
	r.mu.Lock()
	r.elapsed += cost
	r.mu.Unlock()
	return runner.Measurement{Key: key, Walls: []float64{cost}, Mean: cost, CostSeconds: cost}
}

func TestMultiWorkerOverlapsEvaluations(t *testing.T) {
	p, _ := workload.ByName("fop")
	r := &overlapRunner{prof: p}
	s := &Session{Runner: r, Searcher: Random{}, BudgetSeconds: 300, Seed: 7, Workers: 4}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials < 8 {
		t.Fatalf("too few trials (%d) to demonstrate overlap", out.Trials)
	}
	if max := atomic.LoadInt64(&r.maxInflight); max < 2 {
		t.Errorf("Workers:4 never overlapped measurements (max in flight %d)", max)
	}
}

func TestMultiWorkerDeterministicForFixedSeed(t *testing.T) {
	for _, searcher := range []string{"hierarchical", "random"} {
		a, err := (newWorkerSession(t, searcher, 4, 42)).Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := (newWorkerSession(t, searcher, 4, 42)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if a.Trials != b.Trials || a.BestWall != b.BestWall || a.Elapsed != b.Elapsed {
			t.Errorf("%s/W=4: summaries differ across identical runs: (%d %.4f %.1f) vs (%d %.4f %.1f)",
				searcher, a.Trials, a.BestWall, a.Elapsed, b.Trials, b.BestWall, b.Elapsed)
		}
		if a.Best.Key() != b.Best.Key() {
			t.Errorf("%s/W=4: winning configs differ across identical runs", searcher)
		}
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Errorf("%s/W=4: convergence traces differ across identical runs", searcher)
		}
	}
}

func newWorkerSession(t *testing.T, searcher string, workers int, seed int64) *Session {
	t.Helper()
	s := newSession(t, "h2", searcher, 2400, seed)
	s.Workers = workers
	return s
}

func TestBestAtToleratesOutOfOrderTrace(t *testing.T) {
	// Multi-worker traces are ordered by delivery, not by virtual time: a
	// short trial on a late-starting slot can finish (virtually) before a
	// long trial delivered earlier. BestAt must scan, not binary-search.
	o := &Outcome{
		DefaultWall: 10,
		Trace: []TracePoint{
			{Elapsed: 30, BestWall: 8, Trial: 1},
			{Elapsed: 10, BestWall: 9.5, Trial: 2},
			{Elapsed: 20, BestWall: 9, Trial: 3},
		},
	}
	for _, tc := range []struct{ at, want float64 }{
		{5, 10}, {10, 9.5}, {20, 9}, {29.9, 9}, {30, 8}, {100, 8},
	} {
		if got := o.BestAt(tc.at); got != tc.want {
			t.Errorf("BestAt(%.1f) = %.2f, want %.2f", tc.at, got, tc.want)
		}
	}
}

func TestBestAtMonotonicOnRealSession(t *testing.T) {
	out, err := (newWorkerSession(t, "hierarchical", 4, 3)).Run()
	if err != nil {
		t.Fatal(err)
	}
	prev := out.BestAt(0)
	for tEl := 0.0; tEl <= out.Elapsed; tEl += out.Elapsed / 200 {
		cur := out.BestAt(tEl)
		if cur > prev {
			t.Fatalf("BestAt regressed: %.4f at %.1f after %.4f", cur, tEl, prev)
		}
		prev = cur
	}
}

func TestSessionCanceledBeforeBaseline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := newWorkerSession(t, "random", 2, 1)
	s.Ctx = ctx
	if _, err := s.Run(); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled session should return context.Canceled, got %v", err)
	}
}

func TestSessionCancelsBetweenRounds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := newWorkerSession(t, "hierarchical", 4, 1)
	s.Ctx = ctx
	s.OnProgress = func(tp TracePoint) {
		if tp.Trial >= 3 {
			cancel()
		}
	}
	_, err := s.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled session should return context.Canceled, got %v", err)
	}
}

// crashSearcher forever re-proposes one configuration that OOMs h2.
type crashSearcher struct{ cfg *flags.Config }

func (s *crashSearcher) Name() string { return "crash" }
func (s *crashSearcher) Propose(ctx *Context) *flags.Config {
	if s.cfg == nil {
		s.cfg = flags.NewConfig(ctx.Reg)
		s.cfg.SetInt("MaxHeapSize", 128<<20)
		s.cfg.SetInt("InitialHeapSize", 64<<20)
	}
	return s.cfg
}
func (s *crashSearcher) Observe(*Context, *flags.Config, runner.Measurement) {}

func TestSessionReplaysCrashingConfigForFree(t *testing.T) {
	// Regression for the budget leak: a searcher stuck on a known-crashing
	// config must pay the launch-and-crash cost exactly once. Before the
	// runner cached failures, every re-proposal burned real budget.
	p, _ := workload.ByName("h2")
	r := runner.NewInProcess(jvmsim.New(), p)
	s := &Session{Runner: r, Searcher: &crashSearcher{}, BudgetSeconds: 1e9, Seed: 4, MaxTrials: 6}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Failures != 6 {
		t.Errorf("all 6 trials should fail, got %d", out.Failures)
	}
	if out.CacheHits != 5 {
		t.Errorf("trials 2..6 should replay from the cache, got %d hits", out.CacheHits)
	}
	firstCrash := out.Trace[1].Elapsed // baseline, then the one paid crash
	if out.Elapsed != firstCrash {
		t.Errorf("cached crashes consumed budget: elapsed %.2f, want %.2f", out.Elapsed, firstCrash)
	}
}

func testSearcherContext(t *testing.T, seed int64) *Context {
	t.Helper()
	reg := flags.NewRegistry()
	return &Context{
		Reg:       reg,
		Tree:      hierarchy.Build(reg),
		Rng:       rand.New(rand.NewSource(seed)),
		Objective: ObjectiveThroughput,
	}
}

func TestRandomProposeBatch(t *testing.T) {
	ctx := testSearcherContext(t, 5)
	got := Random{}.ProposeBatch(ctx, 6)
	if len(got) != 6 {
		t.Fatalf("ProposeBatch(6) returned %d configs", len(got))
	}
	for i, cfg := range got {
		if cfg == nil {
			t.Fatalf("proposal %d is nil", i)
		}
	}
}

func TestHierarchicalProposeBatchStopsAtSurveyBoundary(t *testing.T) {
	ctx := testSearcherContext(t, 5)
	h := NewHierarchical()

	// A huge first batch must stop at the survey boundary: beams are seeded
	// from observed survey results, so refinement cannot be proposed until
	// every survey measurement has been delivered.
	first := h.ProposeBatch(ctx, 100)
	if len(first) != len(h.combos) {
		t.Fatalf("first batch has %d proposals, want the %d survey combos", len(first), len(h.combos))
	}
	if h.surveyed {
		t.Fatal("survey must not finish before its observations arrive")
	}
	for i, cfg := range first {
		m := runner.Measurement{Key: cfg.Key(), Walls: []float64{float64(10 + i)},
			Mean: float64(10 + i), CostSeconds: float64(10 + i)}
		ctx.Trial++
		h.Observe(ctx, cfg, m)
	}

	second := h.ProposeBatch(ctx, 4)
	if !h.surveyed {
		t.Fatal("survey should finish once all observations are in")
	}
	if len(second) != 4 {
		t.Fatalf("refinement batch has %d proposals, want 4", len(second))
	}
}
