package core

import (
	"sort"

	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/runner"
)

// Hierarchical is the paper's searcher. It exploits the flag tree twice:
//
//  1. Branch survey. The tree's decision points (garbage collector ×
//     compilation mode) span eight branch combinations; each is measured
//     once at otherwise-default settings, and a beam of the best
//     combinations is kept. This resolves the coarse, categorical part of
//     the space with eight trials instead of leaving collector choice to
//     chance mutations.
//
//  2. Guided refinement. Within each beam entry, a steady-state population
//     evolves only the flags the tree marks *active* under that branch —
//     CMS occupancy knobs never waste a trial under the parallel collector,
//     CompileThreshold is never mutated while tiered compilation is on, and
//     proposals are pre-checked against the tree's dependency rules so
//     configurations that cannot start are never launched.
//
// Occasional exploration trials revisit non-beam branches in case the
// survey was misled by noise.
type Hierarchical struct {
	// BeamWidth is how many branch combinations refinement keeps (default 2).
	BeamWidth int
	// PopSize is the per-beam population size (default 10).
	PopSize int
	// ExploreEvery inserts one non-beam exploration trial every N proposals
	// (default 50; 0 disables).
	ExploreEvery int

	surveyed  bool
	combos    []branchCombo
	surveyIdx int
	beams     []*beam
	pending   map[*flags.Config]pendingRef
	proposals int
}

// pendingRef remembers what an outstanding proposal was for, so its
// observation — which in multi-worker sessions may arrive after further
// proposals — lands in the right place: a survey combo, a beam's
// population, or (both nil) an exploration trial.
type pendingRef struct {
	combo *branchCombo
	beam  *beam
}

type branchCombo struct {
	label string
	apply func(c *flags.Config)
	base  *flags.Config
	wall  float64
	seen  bool
}

type beam struct {
	combo  *branchCombo
	active []string // tunable flags active under this branch
	pop    []individual
}

// NewHierarchical returns the paper's searcher with default parameters.
func NewHierarchical() *Hierarchical { return &Hierarchical{} }

// Name implements Searcher.
func (h *Hierarchical) Name() string { return "hierarchical" }

func (h *Hierarchical) beamWidth() int {
	if h.BeamWidth > 0 {
		return h.BeamWidth
	}
	return 2
}

func (h *Hierarchical) popSize() int {
	if h.PopSize > 0 {
		return h.PopSize
	}
	return 10
}

func (h *Hierarchical) exploreEvery() int {
	if h.ExploreEvery != 0 {
		return h.ExploreEvery
	}
	return 50
}

// initCombos enumerates the tree's branch cross product.
func (h *Hierarchical) initCombos(ctx *Context) {
	choices := ctx.Tree.Choices()
	combos := []branchCombo{{label: "", apply: func(*flags.Config) {}}}
	for _, ch := range choices {
		var next []branchCombo
		for _, prev := range combos {
			for _, b := range ch.Branches {
				prevApply, branchApply := prev.apply, b.Apply
				label := prev.label
				if label != "" {
					label += "+"
				}
				next = append(next, branchCombo{
					label: label + b.Name,
					apply: func(c *flags.Config) { prevApply(c); branchApply(c) },
				})
			}
		}
		combos = next
	}
	for i := range combos {
		base := flags.NewConfig(ctx.Reg)
		combos[i].apply(base)
		combos[i].base = base
	}
	h.combos = combos
}

// Propose implements Searcher.
func (h *Hierarchical) Propose(ctx *Context) *flags.Config {
	if h.combos == nil {
		h.initCombos(ctx)
	}
	h.proposals++

	// Phase 1: survey each branch combination once.
	if !h.surveyed {
		if h.surveyIdx < len(h.combos) {
			c := &h.combos[h.surveyIdx]
			h.surveyIdx++
			h.note(c.base, pendingRef{combo: c})
			return c.base
		}
		h.finishSurvey(ctx)
	}

	// Occasional exploration of a non-beam branch with a random mutation.
	if ee := h.exploreEvery(); ee > 0 && h.proposals%ee == 0 {
		if cfg := h.exploreProposal(ctx); cfg != nil {
			h.note(cfg, pendingRef{})
			return cfg
		}
	}

	// Phase 2: guided refinement within a beam.
	b := h.pickBeam(ctx)
	cfg := h.refineProposal(ctx, b)
	h.note(cfg, pendingRef{beam: b})
	return cfg
}

// ProposeBatch implements BatchSearcher. During the branch survey it hands
// out the remaining un-surveyed combos (they are independent, so the farm
// measures them in parallel) but stops the batch at the survey boundary:
// the beams must be seeded from *observed* survey results, and the session
// delivers every observation of a round before asking for the next batch.
// After the survey, refinement proposals are drawn normally.
func (h *Hierarchical) ProposeBatch(ctx *Context, n int) []*flags.Config {
	if h.combos == nil {
		h.initCombos(ctx)
	}
	var out []*flags.Config
	for len(out) < n {
		boundary := !h.surveyed && h.surveyIdx == len(h.combos)
		if boundary && len(out) > 0 {
			return out // finish the survey next round, fully informed
		}
		cfg := h.Propose(ctx)
		if cfg == nil {
			return out
		}
		out = append(out, cfg)
	}
	return out
}

func (h *Hierarchical) note(cfg *flags.Config, ref pendingRef) {
	if h.pending == nil {
		h.pending = make(map[*flags.Config]pendingRef)
	}
	h.pending[cfg] = ref
}

// finishSurvey ranks the surveyed combos and seeds the beams.
func (h *Hierarchical) finishSurvey(ctx *Context) {
	h.surveyed = true
	ranked := make([]*branchCombo, 0, len(h.combos))
	for i := range h.combos {
		if h.combos[i].seen {
			ranked = append(ranked, &h.combos[i])
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].wall < ranked[j].wall })
	n := h.beamWidth()
	if n > len(ranked) {
		n = len(ranked)
	}
	for _, c := range ranked[:n] {
		h.beams = append(h.beams, &beam{
			combo:  c,
			active: ctx.Tree.ActiveFlags(c.base),
			pop:    []individual{{cfg: c.base, wall: c.wall}},
		})
	}
	// Degenerate case: every combo failed (should not happen — defaults
	// run). Fall back to a beam on the raw default config.
	if len(h.beams) == 0 {
		def := flags.NewConfig(ctx.Reg)
		h.beams = append(h.beams, &beam{
			combo:  &branchCombo{label: "default", apply: func(*flags.Config) {}, base: def},
			active: ctx.Tree.ActiveFlags(def),
			pop:    []individual{{cfg: def, wall: ctx.DefaultWall}},
		})
	}
}

// pickBeam selects a beam to refine, weighted toward the better one but
// keeping the runner-up alive.
func (h *Hierarchical) pickBeam(ctx *Context) *beam {
	if len(h.beams) == 1 {
		return h.beams[0]
	}
	// 70% best beam, 30% spread over the rest.
	if ctx.Rng.Float64() < 0.7 {
		best := h.beams[0]
		for _, b := range h.beams[1:] {
			if b.pop[0].wall < best.pop[0].wall {
				best = b
			}
		}
		return best
	}
	return h.beams[ctx.Rng.Intn(len(h.beams))]
}

// refineProposal evolves a beam's population on its active flags only.
// Proposals are validated against the hierarchy's dependency rules before
// they are ever launched; invalid mutants are repaired by re-rolling.
func (h *Hierarchical) refineProposal(ctx *Context, b *beam) *flags.Config {
	for attempt := 0; attempt < 8; attempt++ {
		var child *flags.Config
		if len(b.pop) >= 4 && ctx.Rng.Float64() < 0.4 {
			p1 := b.pop[ctx.Rng.Intn(len(b.pop))]
			p2 := b.pop[ctx.Rng.Intn(len(b.pop))]
			child = flags.Crossover(p1.cfg, p2.cfg, b.active, ctx.Rng)
			// Crossover only copies active flags; reapply the branch
			// selection so the child stays inside the beam.
			b.combo.apply(child)
		} else {
			parent := b.pop[ctx.Rng.Intn(len(b.pop))]
			child = parent.cfg.Clone()
		}
		n := 1 + ctx.Rng.Intn(3)
		for i := 0; i < n; i++ {
			flags.MutateFlag(child, b.active[ctx.Rng.Intn(len(b.active))], ctx.Rng)
		}
		if hierarchy.Validate(child) == nil {
			return child
		}
	}
	// Could not repair; fall back to the beam base.
	return b.combo.base.Clone()
}

// exploreProposal mutates a random non-beam branch base.
func (h *Hierarchical) exploreProposal(ctx *Context) *flags.Config {
	inBeam := map[string]bool{}
	for _, b := range h.beams {
		inBeam[b.combo.label] = true
	}
	var others []*branchCombo
	for i := range h.combos {
		if !inBeam[h.combos[i].label] {
			others = append(others, &h.combos[i])
		}
	}
	if len(others) == 0 {
		return nil
	}
	c := others[ctx.Rng.Intn(len(others))]
	cfg := c.base.Clone()
	active := ctx.Tree.ActiveFlags(cfg)
	for i := 0; i < 2; i++ {
		flags.MutateFlag(cfg, active[ctx.Rng.Intn(len(active))], ctx.Rng)
	}
	if hierarchy.Validate(cfg) != nil {
		return nil
	}
	return cfg
}

// Observe implements Searcher.
func (h *Hierarchical) Observe(ctx *Context, cfg *flags.Config, m runner.Measurement) {
	ref, ok := h.pending[cfg]
	if !ok {
		return
	}
	delete(h.pending, cfg)
	sc := ctx.Score(m)
	if ref.combo != nil {
		// Survey phase: attach the result to its combo.
		ref.combo.wall = sc
		ref.combo.seen = !m.Failed
		return
	}
	b := ref.beam
	if b == nil {
		return // exploration trial: best-tracking happens in the session
	}
	ind := individual{cfg: cfg, wall: sc}
	if len(b.pop) < h.popSize() {
		b.pop = append(b.pop, ind)
	} else {
		worst := 0
		for i := range b.pop {
			if b.pop[i].wall >= b.pop[worst].wall {
				worst = i
			}
		}
		if ind.wall < b.pop[worst].wall {
			b.pop[worst] = ind
		}
	}
	sort.Slice(b.pop, func(i, j int) bool { return b.pop[i].wall < b.pop[j].wall })
}
