package core

import "fmt"

// NewSearcher constructs a searcher by name. Names are stable identifiers
// used by the CLI and the experiment harness.
func NewSearcher(name string) (Searcher, error) {
	switch name {
	case "hierarchical":
		return NewHierarchical(), nil
	case "random":
		return Random{}, nil
	case "hillclimb":
		return &HillClimb{}, nil
	case "anneal":
		return &Anneal{}, nil
	case "genetic-flat":
		return &GeneticFlat{}, nil
	case "ensemble":
		return NewEnsemble(), nil
	case "surrogate":
		return NewSurrogate(), nil
	case "subset-hillclimb", "subset":
		return NewSubset(), nil
	default:
		return nil, fmt.Errorf("core: unknown searcher %q (have %v)", name, SearcherNames())
	}
}

// SearcherNames lists the available strategies, the paper's tuner first.
func SearcherNames() []string {
	return []string{
		"hierarchical", "ensemble", "surrogate", "genetic-flat",
		"hillclimb", "anneal", "random", "subset-hillclimb",
	}
}
