package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// QuarantinedFailure marks trials the session rejected without measuring:
// their configuration fell in a flag-hierarchy subtree whose circuit breaker
// was open. The configuration is not condemned — the breaker's half-open
// probe re-measures the subtree once the cooldown passes.
const QuarantinedFailure jvmsim.FailureKind = "quarantined"

// HedgePolicy configures the straggler watchdog. The session tracks the
// virtual cost of recently delivered trials; a trial whose cost exceeds
// Factor times the Percentile of that window is treated as a straggler, and
// the watchdog hedges a duplicate dispatch at the deadline. First result
// wins: if the duplicate would have finished first (its clean cost rides in
// runner.Measurement.HedgeCostSeconds when the chaos layer stalled the
// primary), the trial is charged deadline+duplicate cost and the primary is
// canceled; otherwise the duplicate is canceled and the trial costs what it
// always did. Either way the loser is accounted in telemetry, never the
// budget — on a real farm it runs on a spare machine.
//
// The watchdog lives entirely in virtual time, so fixed-seed sessions stay
// byte-deterministic at any worker count with hedging enabled.
type HedgePolicy struct {
	// Percentile of the recent-cost window that anchors the deadline
	// (0 < p ≤ 1; values ≤ 0 mean the default, 0.9).
	Percentile float64
	// Factor multiplies the percentile cost into the deadline; values ≤ 0
	// mean the default, 3.
	Factor float64
	// Window is how many recent trial costs are remembered; values ≤ 0 mean
	// the default, 64.
	Window int
	// MinSamples is how many costs must be observed before the watchdog
	// arms; values ≤ 0 mean the default, 8.
	MinSamples int
	// MinSeconds floors the deadline so a streak of cheap trials cannot
	// hedge everything; values ≤ 0 mean the default, 1.
	MinSeconds float64
}

// Hedge policy defaults.
const (
	DefaultHedgePercentile = 0.9
	DefaultHedgeFactor     = 3.0
	DefaultHedgeWindow     = 64
	DefaultHedgeMinSamples = 8
	DefaultHedgeMinSeconds = 1.0
)

func (p HedgePolicy) normalized() HedgePolicy {
	if p.Percentile <= 0 || p.Percentile > 1 {
		p.Percentile = DefaultHedgePercentile
	}
	if p.Factor <= 0 {
		p.Factor = DefaultHedgeFactor
	}
	if p.Window <= 0 {
		p.Window = DefaultHedgeWindow
	}
	if p.MinSamples <= 0 {
		p.MinSamples = DefaultHedgeMinSamples
	}
	if p.MinSeconds <= 0 {
		p.MinSeconds = DefaultHedgeMinSeconds
	}
	return p
}

// String renders the normalized policy canonically; the checkpoint layer
// folds it into the session fingerprint.
func (p HedgePolicy) String() string {
	n := p.normalized()
	return fmt.Sprintf("p%g×%g,w%d,min%d,floor%g",
		n.Percentile, n.Factor, n.Window, n.MinSamples, n.MinSeconds)
}

// hedger is the watchdog state: a ring of recent delivered trial costs and
// the win/loss accounting.
type hedger struct {
	pol    HedgePolicy
	costs  []float64
	next   int
	filled bool

	hedges int
	wins   int
	saved  float64
}

func newHedger(p *HedgePolicy) *hedger {
	n := p.normalized()
	return &hedger{pol: n, costs: make([]float64, 0, n.Window)}
}

// observe feeds one delivered trial's effective cost into the window.
func (h *hedger) observe(cost float64) {
	if cost <= 0 {
		return
	}
	if len(h.costs) < h.pol.Window {
		h.costs = append(h.costs, cost)
		return
	}
	h.costs[h.next] = cost
	h.next = (h.next + 1) % h.pol.Window
	h.filled = true
}

// deadline returns the current straggler deadline, or false while the
// window is too small to arm the watchdog.
func (h *hedger) deadline() (float64, bool) {
	n := len(h.costs)
	if n < h.pol.MinSamples {
		return 0, false
	}
	sorted := make([]float64, n)
	copy(sorted, h.costs)
	sort.Float64s(sorted)
	idx := int(math.Ceil(h.pol.Percentile*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	d := sorted[idx] * h.pol.Factor
	if d < h.pol.MinSeconds {
		d = h.pol.MinSeconds
	}
	return d, true
}

// decide resolves one fresh measurement against the watchdog: the returned
// effective cost is what the trial charges its slot, and the verdict is ""
// (no hedge), "primary-won", or "hedge-won". Cache replays are free and
// never hedged.
func (h *hedger) decide(m runner.Measurement) (eff float64, verdict string) {
	raw := m.CostSeconds
	if m.FromCache || raw <= 0 {
		return raw, ""
	}
	d, armed := h.deadline()
	if !armed || raw <= d {
		return raw, ""
	}
	// The primary blew the deadline: a duplicate dispatched at d. Its clean
	// cost is HedgeCostSeconds when the chaos layer stalled the primary; a
	// genuinely slow configuration runs just as slowly the second time.
	dup := m.HedgeCostSeconds
	if dup <= 0 {
		dup = raw
	}
	h.hedges++
	if hedgeFinish := d + dup; hedgeFinish < raw {
		h.wins++
		h.saved += raw - hedgeFinish
		return hedgeFinish, "hedge-won"
	}
	return raw, "primary-won"
}

// QuarantinePolicy configures the failure circuit breaker. The session
// classifies every configuration into the flag-hierarchy subtrees it
// selects (one branch per tree choice, most specific match wins) and tracks
// a sliding window of deterministic-failure verdicts per subtree. A subtree
// whose failure density crosses Threshold is quarantined: its proposals are
// rejected unmeasured (zero cost, QuarantinedFailure) for CooldownTrials,
// after which a single half-open probe is measured — success closes the
// breaker, another deterministic failure re-opens it with a doubled
// cooldown (capped at MaxCooldownTrials).
type QuarantinePolicy struct {
	// Window is the verdicts remembered per subtree; values ≤ 0 mean the
	// default, 16.
	Window int
	// MinSamples is the verdicts required before the breaker may open;
	// values ≤ 0 mean the default, 8.
	MinSamples int
	// Threshold is the deterministic-failure fraction that opens the
	// breaker; values ≤ 0 mean the default, 0.7.
	Threshold float64
	// CooldownTrials is how many delivered trials a quarantine lasts before
	// the half-open probe; values ≤ 0 mean the default, 25.
	CooldownTrials int
	// MaxCooldownTrials caps the doubling of repeat offenders' cooldowns;
	// values ≤ 0 mean the default, 200.
	MaxCooldownTrials int
}

// Quarantine policy defaults.
const (
	DefaultQuarantineWindow      = 16
	DefaultQuarantineMinSamples  = 8
	DefaultQuarantineThreshold   = 0.7
	DefaultQuarantineCooldown    = 25
	DefaultQuarantineMaxCooldown = 200
)

func (p QuarantinePolicy) normalized() QuarantinePolicy {
	if p.Window <= 0 {
		p.Window = DefaultQuarantineWindow
	}
	if p.MinSamples <= 0 {
		p.MinSamples = DefaultQuarantineMinSamples
	}
	if p.MinSamples > p.Window {
		p.MinSamples = p.Window
	}
	if p.Threshold <= 0 || p.Threshold > 1 {
		p.Threshold = DefaultQuarantineThreshold
	}
	if p.CooldownTrials <= 0 {
		p.CooldownTrials = DefaultQuarantineCooldown
	}
	if p.MaxCooldownTrials < p.CooldownTrials {
		p.MaxCooldownTrials = DefaultQuarantineMaxCooldown
	}
	if p.MaxCooldownTrials < p.CooldownTrials {
		p.MaxCooldownTrials = p.CooldownTrials
	}
	return p
}

// String renders the normalized policy canonically for the session
// fingerprint.
func (p QuarantinePolicy) String() string {
	n := p.normalized()
	return fmt.Sprintf("w%d,min%d,t%g,cd%d..%d",
		n.Window, n.MinSamples, n.Threshold, n.CooldownTrials, n.MaxCooldownTrials)
}

// sigPair is one (flag, value) assignment that selects a subtree.
type sigPair struct {
	flag *flags.Flag
	name string
	want flags.Value
}

// subtreeSig identifies one branch of one tree choice by the flag values
// its Apply sets away from the defaults. A branch that leaves the defaults
// untouched has no pairs; such branches are not tracked at all — a
// zero-pair signature matches every configuration, so its breaker would
// absorb failures from unrelated subtrees and quarantine the whole space.
type subtreeSig struct {
	label string
	pairs []sigPair
}

func (s subtreeSig) matches(cfg *flags.Config) bool {
	for _, p := range s.pairs {
		v, ok := cfg.Get(p.name)
		if !ok || !v.Equal(p.flag.Type, p.want) {
			return false
		}
	}
	return true
}

// breaker is one subtree's circuit state.
type breaker struct {
	verdicts []bool // ring; true = deterministic failure
	size     int
	head     int
	count    int
	fails    int

	open  bool
	probe bool // a half-open probe is in flight
	until int  // trial index at which the half-open probe may dispatch
	trips int  // consecutive opens; doubles the cooldown
}

func (b *breaker) push(det bool, window int) {
	if b.count < window {
		b.verdicts = append(b.verdicts, det)
		b.count++
	} else {
		if b.verdicts[b.head] {
			b.fails--
		}
		b.verdicts[b.head] = det
		b.head = (b.head + 1) % window
	}
	if det {
		b.fails++
	}
}

func (b *breaker) reset() {
	b.verdicts = b.verdicts[:0]
	b.head, b.count, b.fails = 0, 0, 0
}

// quarantine is the session-side breaker bank: one breaker per hierarchy
// subtree, driven synchronously from the session goroutine so state
// transitions are deterministic for a fixed seed.
type quarantine struct {
	pol    QuarantinePolicy
	groups [][]subtreeSig // one group per tree choice
	state  map[string]*breaker
	tel    *telemetry.Registry
	trace  *telemetry.Tracer

	rejected int
	opens    int
}

func newQuarantine(pol *QuarantinePolicy, tree *hierarchy.Tree, tel *telemetry.Registry, trace *telemetry.Tracer) *quarantine {
	reg := tree.Registry()
	def := flags.NewConfig(reg)
	q := &quarantine{
		pol:   pol.normalized(),
		state: make(map[string]*breaker),
		tel:   tel,
		trace: trace,
	}
	for _, ch := range tree.Choices() {
		var group []subtreeSig
		for _, br := range ch.Branches {
			c := flags.NewConfig(reg)
			br.Apply(c)
			sig := subtreeSig{label: ch.Name + "/" + br.Name}
			for _, name := range c.Diff(def) {
				f := reg.Lookup(name)
				v, _ := c.Get(name)
				sig.pairs = append(sig.pairs, sigPair{flag: f, name: name, want: v})
			}
			if len(sig.pairs) == 0 {
				continue // default branch: matches everything, never tracked
			}
			group = append(group, sig)
		}
		q.groups = append(q.groups, group)
	}
	return q
}

// classify returns cfg's subtree labels, one per tree choice (the most
// specific matching branch of each).
func (q *quarantine) classify(cfg *flags.Config) []string {
	labels := make([]string, 0, len(q.groups))
	for _, group := range q.groups {
		best, bestN := -1, -1
		for i, sig := range group {
			if len(sig.pairs) > bestN && sig.matches(cfg) {
				best, bestN = i, len(sig.pairs)
			}
		}
		if best >= 0 {
			labels = append(labels, group[best].label)
		}
	}
	return labels
}

// blocked decides at proposal time whether cfg may dispatch. trial is the
// session's delivered-trial count (the cooldown clock); t is the virtual
// time for trace events. A proposal that reaches an open breaker past its
// cooldown becomes the breaker's single half-open probe and is allowed
// through.
func (q *quarantine) blocked(cfg *flags.Config, key string, trial int, t float64) (string, bool) {
	labels := q.classify(cfg)
	for _, label := range labels {
		st := q.state[label]
		if st == nil || !st.open {
			continue
		}
		if trial >= st.until && !st.probe {
			continue // eligible to probe; armed below if no other label blocks
		}
		q.rejected++
		q.tel.Counter("session_quarantine_rejected_total").Inc()
		return label, true
	}
	for _, label := range labels {
		if st := q.state[label]; st != nil && st.open {
			st.probe = true
			q.tel.Counter("session_quarantine_probes_total").Inc()
			q.trace.Emit(telemetry.Event{
				T: t, Kind: telemetry.EvQuarantine, Key: key, Detail: "probe:" + label,
			})
		}
	}
	return "", false
}

// observe folds a delivered measurement into the breakers of cfg's
// subtrees. trial is the delivered-trial count, t the virtual delivery time.
func (q *quarantine) observe(cfg *flags.Config, key string, trial int, t float64, m runner.Measurement) {
	if m.Failure == QuarantinedFailure {
		return // synthetic rejections must not feed the breaker
	}
	det := m.Failed && !m.Transient
	for _, label := range q.classify(cfg) {
		st := q.state[label]
		if st == nil {
			st = &breaker{}
			q.state[label] = st
		}
		if st.open {
			if !st.probe {
				continue // a pre-open in-flight trial; the probe decides
			}
			st.probe = false
			if det {
				st.trips++
				cd := q.cooldown(st.trips)
				st.until = trial + cd
				q.tel.Counter("session_quarantine_reopens_total").Inc()
				q.trace.Emit(telemetry.Event{
					T: t, Kind: telemetry.EvQuarantine, Key: key,
					Detail: fmt.Sprintf("reopen:%s:%d", label, cd),
				})
			} else {
				st.open = false
				st.trips = 0
				st.reset()
				q.tel.Counter("session_quarantine_closes_total").Inc()
				q.trace.Emit(telemetry.Event{
					T: t, Kind: telemetry.EvQuarantine, Key: key, Detail: "close:" + label,
				})
			}
			continue
		}
		st.push(det, q.pol.Window)
		if st.count >= q.pol.MinSamples &&
			float64(st.fails) >= q.pol.Threshold*float64(st.count) {
			st.open = true
			st.probe = false
			st.trips = 1
			st.until = trial + q.pol.CooldownTrials
			st.reset()
			q.opens++
			q.tel.Counter("session_quarantine_opens_total").Inc()
			q.trace.Emit(telemetry.Event{
				T: t, Kind: telemetry.EvQuarantine, Key: key,
				Detail: fmt.Sprintf("open:%s:%d", label, q.pol.CooldownTrials),
			})
		}
	}
}

// cooldown doubles per consecutive trip, capped.
func (q *quarantine) cooldown(trips int) int {
	cd := q.pol.CooldownTrials
	for i := 1; i < trips; i++ {
		cd *= 2
		if cd >= q.pol.MaxCooldownTrials {
			return q.pol.MaxCooldownTrials
		}
	}
	if cd > q.pol.MaxCooldownTrials {
		cd = q.pol.MaxCooldownTrials
	}
	return cd
}

// synthetic builds the zero-cost rejection delivered for a quarantined
// proposal. The message is deterministic: it appears in checkpoint logs.
func syntheticQuarantined(key, label string) runner.Measurement {
	return runner.Measurement{
		Key:            key,
		Failed:         true,
		Failure:        QuarantinedFailure,
		FailureMessage: "core: subtree " + label + " quarantined",
	}
}

// robustnessFingerprint renders the session's hedge/quarantine options for
// the checkpoint fingerprint: a run must not resume under different
// robustness semantics than it crashed with. Sessions with neither feature
// render "" — old checkpoints stay loadable.
func robustnessFingerprint(h *HedgePolicy, q *QuarantinePolicy) string {
	s := ""
	if h != nil {
		s += "hedge(" + h.String() + ")"
	}
	if q != nil {
		if s != "" {
			s += "+"
		}
		s += "quarantine(" + q.String() + ")"
	}
	return s
}

// runnerFingerprint renders the runner identity for the checkpoint
// fingerprint. The fingerprint guards determinism inputs, and transport is
// not one: a runner that is provably byte-equivalent to another (the
// dispatch pool vs the in-process runner) may claim that identity via the
// DeterminismFingerprint hook, so checkpoints written under either resume
// under the other. Everything else renders its concrete type, plus the
// chaos plan when the runner carries one.
func runnerFingerprint(r runner.Runner) string {
	if fp, ok := r.(interface{ DeterminismFingerprint() string }); ok {
		return fp.DeterminismFingerprint()
	}
	desc := fmt.Sprintf("%T", r)
	if ps, ok := r.(interface{ PlanString() string }); ok {
		desc += "(" + ps.PlanString() + ")"
	}
	return desc
}
