package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func TestHedgerDeadline(t *testing.T) {
	h := newHedger(&HedgePolicy{Percentile: 0.9, Factor: 3, Window: 64, MinSamples: 8, MinSeconds: 1})
	if _, armed := h.deadline(); armed {
		t.Fatal("watchdog armed with no samples")
	}
	for i := 1; i <= 10; i++ {
		h.observe(float64(i))
	}
	d, armed := h.deadline()
	if !armed {
		t.Fatal("watchdog not armed after 10 samples")
	}
	// p90 of 1..10 via ceil-rank is the 9th order statistic: 9. ×3 = 27.
	if d != 27 {
		t.Fatalf("deadline = %g, want 27", d)
	}

	// The floor guards against a streak of near-zero costs.
	cheap := newHedger(&HedgePolicy{MinSamples: 2, MinSeconds: 5})
	cheap.observe(0.01)
	cheap.observe(0.02)
	if d, _ := cheap.deadline(); d != 5 {
		t.Fatalf("floored deadline = %g, want 5", d)
	}

	// Zero and negative costs (synthetic rejections) never enter the window.
	h2 := newHedger(&HedgePolicy{MinSamples: 1})
	h2.observe(0)
	h2.observe(-1)
	if _, armed := h2.deadline(); armed {
		t.Fatal("zero-cost observations armed the watchdog")
	}
}

func TestHedgerDecide(t *testing.T) {
	h := newHedger(&HedgePolicy{Percentile: 0.9, Factor: 3, Window: 64, MinSamples: 4, MinSeconds: 1})
	for i := 0; i < 4; i++ {
		h.observe(10) // deadline = 30
	}

	if eff, v := h.decide(runner.Measurement{CostSeconds: 12}); eff != 12 || v != "" {
		t.Fatalf("fast trial hedged: eff=%g verdict=%q", eff, v)
	}
	// Straggler with a clean duplicate cost: the hedge dispatched at 30
	// finishes at 30+10=40, beating the 400-second primary.
	if eff, v := h.decide(runner.Measurement{CostSeconds: 400, HedgeCostSeconds: 10}); eff != 40 || v != "hedge-won" {
		t.Fatalf("straggler: eff=%g verdict=%q, want 40/hedge-won", eff, v)
	}
	// A genuinely slow config runs just as slowly re-dispatched: hedging
	// 35 at deadline 30 finishes at 65 — the primary keeps its cost.
	if eff, v := h.decide(runner.Measurement{CostSeconds: 35}); eff != 35 || v != "primary-won" {
		t.Fatalf("slow config: eff=%g verdict=%q, want 35/primary-won", eff, v)
	}
	// Cache replays are free and never hedged.
	if eff, v := h.decide(runner.Measurement{CostSeconds: 500, FromCache: true}); eff != 500 || v != "" {
		t.Fatalf("cache replay hedged: eff=%g verdict=%q", eff, v)
	}
	if h.hedges != 2 || h.wins != 1 {
		t.Fatalf("accounting: hedges=%d wins=%d, want 2/1", h.hedges, h.wins)
	}
	if want := 400.0 - 40.0; h.saved != want {
		t.Fatalf("saved=%g, want %g", h.saved, want)
	}
}

// quarantineHarness builds a quarantine over the real flag hierarchy and
// returns configs selecting the serial and G1 collector subtrees.
func quarantineHarness(t *testing.T, pol QuarantinePolicy) (*quarantine, *flags.Config, *flags.Config) {
	t.Helper()
	reg := flags.NewRegistry()
	tree := hierarchy.Build(reg)
	q := newQuarantine(&pol, tree, telemetry.New(), nil)

	mk := func(branch string) *flags.Config {
		for _, ch := range tree.Choices() {
			for _, br := range ch.Branches {
				if br.Name == branch {
					c := flags.NewConfig(reg)
					br.Apply(c)
					return c
				}
			}
		}
		t.Fatalf("no branch %q in the tree", branch)
		return nil
	}
	return q, mk("serial"), mk("g1")
}

func TestQuarantineBreakerLifecycle(t *testing.T) {
	pol := QuarantinePolicy{Window: 8, MinSamples: 4, Threshold: 0.5, CooldownTrials: 10, MaxCooldownTrials: 40}
	q, serial, g1 := quarantineHarness(t, pol)
	detFail := runner.Measurement{Failed: true, Failure: "configuration"}
	ok := runner.Measurement{CostSeconds: 5, Mean: 5}

	// Four deterministic failures open the serial subtree's breaker.
	trial := 0
	for i := 0; i < 4; i++ {
		trial++
		q.observe(serial, serial.Key(), trial, float64(trial), detFail)
	}
	if q.opens != 1 {
		t.Fatalf("opens=%d after 4 det failures at threshold 0.5/min 4", q.opens)
	}
	if label, blocked := q.blocked(serial, serial.Key(), trial+1, 0); !blocked || !strings.Contains(label, "serial") {
		t.Fatalf("serial subtree not blocked: %q/%v", label, blocked)
	}
	// Another subtree of the same choice is unaffected.
	if label, blocked := q.blocked(g1, g1.Key(), trial+1, 0); blocked {
		t.Fatalf("g1 subtree blocked by serial's breaker: %q", label)
	}

	// Past the cooldown the first proposal becomes the half-open probe...
	probeTrial := trial + pol.CooldownTrials + 1
	if _, blocked := q.blocked(serial, serial.Key(), probeTrial, 0); blocked {
		t.Fatal("probe-eligible proposal still blocked after cooldown")
	}
	// ...and while the probe is in flight, further proposals stay blocked.
	if _, blocked := q.blocked(serial, serial.Key(), probeTrial, 0); !blocked {
		t.Fatal("second proposal admitted while the probe is in flight")
	}
	// A failing probe re-opens with a doubled cooldown.
	q.observe(serial, serial.Key(), probeTrial, 0, detFail)
	if _, blocked := q.blocked(serial, serial.Key(), probeTrial+pol.CooldownTrials+1, 0); !blocked {
		t.Fatal("reopened breaker honored the original cooldown, not the doubled one")
	}
	probe2 := probeTrial + 2*pol.CooldownTrials + 1
	if _, blocked := q.blocked(serial, serial.Key(), probe2, 0); blocked {
		t.Fatal("probe not admitted after the doubled cooldown")
	}
	// A succeeding probe closes the breaker entirely.
	q.observe(serial, serial.Key(), probe2, 0, ok)
	if _, blocked := q.blocked(serial, serial.Key(), probe2+1, 0); blocked {
		t.Fatal("breaker still open after a successful probe")
	}

	// Synthetic rejections must never feed the verdict window.
	before := q.state["collector/serial"].count
	q.observe(serial, serial.Key(), probe2+2, 0, syntheticQuarantined(serial.Key(), "collector/serial"))
	if q.state["collector/serial"].count != before {
		t.Fatal("synthetic quarantined measurement entered the breaker window")
	}
}

func TestQuarantineCooldownDoublingCapped(t *testing.T) {
	q := &quarantine{pol: QuarantinePolicy{CooldownTrials: 10, MaxCooldownTrials: 35}.normalized()}
	for i, want := range map[int]int{1: 10, 2: 20, 3: 35, 10: 35} {
		if got := q.cooldown(i); got != want {
			t.Errorf("cooldown(trips=%d) = %d, want %d", i, got, want)
		}
	}
}

func TestRobustnessFingerprint(t *testing.T) {
	if s := robustnessFingerprint(nil, nil); s != "" {
		t.Errorf("both off should fingerprint empty, got %q", s)
	}
	h, q := &HedgePolicy{}, &QuarantinePolicy{}
	if s := robustnessFingerprint(h, nil); !strings.HasPrefix(s, "hedge(") {
		t.Errorf("hedge fingerprint: %q", s)
	}
	if s := robustnessFingerprint(h, q); !strings.Contains(s, ")+quarantine(") {
		t.Errorf("combined fingerprint: %q", s)
	}
}

func TestSessionDegradedOnVirtualBudget(t *testing.T) {
	s := newSession(t, "fop", "random", 900, 3)
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || !strings.Contains(out.DegradedReason, "virtual tuning budget") {
		t.Fatalf("budget expiry not degraded: %v %q", out.Degraded, out.DegradedReason)
	}
	if out.Best == nil || out.Trials == 0 {
		t.Fatal("degraded outcome should still carry the best-so-far result")
	}
}

func TestSessionDegradedOnTrialBudget(t *testing.T) {
	s := newSession(t, "fop", "random", 1e9, 3)
	s.MaxTrials = 25
	reg := telemetry.New()
	s.Telemetry = reg
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || !strings.Contains(out.DegradedReason, "trial budget") {
		t.Fatalf("trial-budget expiry not degraded: %v %q", out.Degraded, out.DegradedReason)
	}
	if reg.Snapshot()[`session_degraded_total{reason="trial-budget"}`] != 1 {
		t.Errorf("degraded counter missing: %v", reg.Snapshot())
	}
}

func TestSessionDegradedOnWallClock(t *testing.T) {
	s := newSession(t, "fop", "hierarchical", 1e9, 3)
	s.RealBudget = time.Minute
	// Injected wall clock: each reading jumps an hour, so the deadline has
	// passed by the first loop iteration — deterministically.
	base := time.Unix(0, 0)
	s.now = func() time.Time {
		base = base.Add(time.Hour)
		return base
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || !strings.Contains(out.DegradedReason, "wall-clock") {
		t.Fatalf("wall-clock expiry not degraded: %v %q", out.Degraded, out.DegradedReason)
	}
	if out.Best == nil {
		t.Fatal("degraded outcome lost the baseline best")
	}
}

func TestSessionBestEffortCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := newSession(t, "fop", "random", 1e6, 5)
	s.Ctx = ctx
	s.BestEffort = true
	s.OnProgress = func(tp TracePoint) {
		if tp.Trial >= 10 {
			cancel()
		}
	}
	out, err := s.Run()
	if err != nil {
		t.Fatalf("best-effort cancellation errored: %v", err)
	}
	if !out.Degraded || !strings.Contains(out.DegradedReason, "canceled") {
		t.Fatalf("cancellation not degraded: %v %q", out.Degraded, out.DegradedReason)
	}
	if out.Trials < 10 {
		t.Fatalf("best-so-far lost: %d trials", out.Trials)
	}

	// Without BestEffort, cancellation is still an error (old contract).
	ctx2, cancel2 := context.WithCancel(context.Background())
	s2 := newSession(t, "fop", "random", 1e6, 5)
	s2.Ctx = ctx2
	s2.OnProgress = func(tp TracePoint) {
		if tp.Trial >= 10 {
			cancel2()
		}
	}
	if _, err := s2.Run(); err == nil {
		t.Fatal("cancellation without BestEffort should error")
	}
}

func checkpointKeeper(t *testing.T, path string) *checkpoint.Keeper {
	t.Helper()
	k := checkpoint.NewKeeper(path, 1, nil)
	k.SyncWrites = true
	return k
}

func loadSnapshot(t *testing.T, path string) *checkpoint.Snapshot {
	t.Helper()
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// chaosSession builds a session measuring through the fault-injection layer.
func chaosSession(t *testing.T, bench, searcher, plan string, budget float64, seed int64, workers int) *Session {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no workload %s", bench)
	}
	pl, err := faultinject.ParsePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewSearcher(searcher)
	if err != nil {
		t.Fatal(err)
	}
	return &Session{
		Runner:        faultinject.New(runner.NewInProcess(jvmsim.New(), p), pl, seed),
		Searcher:      sr,
		BudgetSeconds: budget,
		Seed:          seed,
		Workers:       workers,
	}
}

// The engine's determinism contract is per (seed, workers) pair — Workers
// is part of the checkpoint fingerprint. The watchdog must preserve it:
// two runs at the same seed and worker count stay byte-identical even with
// hedging steering trial costs.
func TestHedgingDeterministicForFixedSeed(t *testing.T) {
	run := func() (*Outcome, string) {
		s := chaosSession(t, "fop", "hillclimb", "slow-trial", 2500, 11, 4)
		s.Hedge = &HedgePolicy{}
		tr := telemetry.NewTracer(1 << 16)
		s.Trace = tr
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return out, buf.String()
	}
	outA, traceA := run()
	outB, traceB := run()
	if outA.Hedges == 0 {
		t.Fatal("slow-trial scenario never tripped the watchdog; the test is vacuous")
	}
	if outA.Hedges != outB.Hedges || outA.HedgeWins != outB.HedgeWins ||
		outA.BestWall != outB.BestWall || outA.Trials != outB.Trials || outA.Elapsed != outB.Elapsed {
		t.Fatalf("hedged sessions diverge for a fixed seed: {h:%d w:%d best:%v trials:%d} vs {h:%d w:%d best:%v trials:%d}",
			outA.Hedges, outA.HedgeWins, outA.BestWall, outA.Trials,
			outB.Hedges, outB.HedgeWins, outB.BestWall, outB.Trials)
	}
	if traceA != traceB {
		t.Fatal("hedged traces are not byte-identical across runs")
	}
	if !strings.Contains(traceA, `"hedge"`) {
		t.Error("trace carries no hedge events despite hedges > 0")
	}
}

func TestHedgingSavesVirtualTime(t *testing.T) {
	base := chaosSession(t, "fop", "hillclimb", "slow-trial", 2500, 11, 2)
	plain, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	hedged := chaosSession(t, "fop", "hillclimb", "slow-trial", 2500, 11, 2)
	hedged.Hedge = &HedgePolicy{}
	reg := telemetry.New()
	hedged.Telemetry = reg
	out, err := hedged.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Hedging reclaims straggler time: the same budget runs at least as
	// many trials, and the saved-seconds gauge is positive.
	if out.Trials < plain.Trials {
		t.Errorf("hedged session ran fewer trials (%d) than unhedged (%d)", out.Trials, plain.Trials)
	}
	if out.HedgeWins == 0 {
		t.Fatal("no hedge wins under an 8× straggle factor")
	}
	if reg.Snapshot()["session_hedge_saved_virtual_seconds"] <= 0 {
		t.Error("saved-seconds gauge not positive")
	}
}

// vetoRunner deterministically fails every configuration selecting the
// given collector — a hard-broken subtree for the quarantine to find.
type vetoRunner struct {
	prof *workload.Profile
	veto hierarchy.Collector
}

func (r *vetoRunner) Workload() *workload.Profile { return r.prof }
func (r *vetoRunner) Elapsed() float64            { return 0 }

func (r *vetoRunner) Measure(cfg *flags.Config, reps int) runner.Measurement {
	key := cfg.Key()
	if col, err := hierarchy.SelectedCollector(cfg); err == nil && col == r.veto {
		return runner.Measurement{
			Key: key, Failed: true, Failure: "configuration",
			FailureMessage: "veto: " + string(r.veto), CostSeconds: 1,
		}
	}
	cost := 5 + float64(len(key)%5)
	return runner.Measurement{Key: key, Walls: []float64{cost}, Mean: cost, CostSeconds: cost}
}

func TestQuarantineIsolatesBrokenSubtree(t *testing.T) {
	run := func(workers int) *Outcome {
		p, _ := workload.ByName("fop")
		s := &Session{
			Runner:        &vetoRunner{prof: p, veto: hierarchy.G1},
			Searcher:      Random{},
			BudgetSeconds: 4000,
			Seed:          9,
			Workers:       workers,
			Quarantine:    &QuarantinePolicy{Window: 8, MinSamples: 4, Threshold: 0.5, CooldownTrials: 15},
			Telemetry:     telemetry.New(),
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run(3)
	if out.Quarantined == 0 {
		t.Fatal("breaker never rejected a G1 proposal despite every G1 config failing")
	}
	// Quarantined rejections are accounted separately, not as failures, and
	// cost nothing — the budget still buys real trials.
	if out.Failures == 0 || out.Best == nil {
		t.Fatalf("session accounting broken: failures=%d best=%v", out.Failures, out.Best)
	}
	// Breaker state evolves with delivery order, which is fixed per
	// (seed, workers): a repeat run must quarantine identically.
	again := run(3)
	if out.Quarantined != again.Quarantined || out.Trials != again.Trials ||
		out.BestWall != again.BestWall || out.Elapsed != again.Elapsed {
		t.Fatalf("quarantined sessions diverge for a fixed seed: {q:%d t:%d} vs {q:%d t:%d}",
			out.Quarantined, out.Trials, again.Quarantined, again.Trials)
	}
}

func TestHedgedSessionResumesByteIdentical(t *testing.T) {
	const (
		bench, search = "fop", "hillclimb"
		plan          = "slow-trial"
		budget        = 2000.0
		seed          = int64(11)
		workers       = 2
		killAt        = 6
	)
	mk := func() *Session {
		s := chaosSession(t, bench, search, plan, budget, seed, workers)
		s.Hedge = &HedgePolicy{}
		s.Quarantine = &QuarantinePolicy{}
		return s
	}
	uninterrupted, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	if uninterrupted.Hedges == 0 {
		t.Fatal("no hedges fired; resume test is vacuous")
	}

	path := t.TempDir() + "/hedged.ckpt"
	killed := mk()
	keeper := checkpointKeeper(t, path)
	killed.Checkpoint = keeper
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed.Ctx = ctx
	killed.OnProgress = func(tp TracePoint) {
		if tp.Trial >= killAt {
			cancel()
		}
	}
	if _, err := killed.Run(); err == nil {
		t.Fatal("session survived the kill")
	}
	if err := keeper.Close(); err != nil {
		t.Fatal(err)
	}

	resumed := mk()
	snap := loadSnapshot(t, path)
	resumed.Resume = snap
	out, err := resumed.Run()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, want := outcomeFingerprint(t, out), outcomeFingerprint(t, uninterrupted)
	if got != want {
		t.Fatalf("hedged resume diverged:\nresumed:       %s\nuninterrupted: %s", got, want)
	}
	if out.Hedges != uninterrupted.Hedges || out.Quarantined != uninterrupted.Quarantined {
		t.Fatalf("robustness accounting diverged on resume: hedges %d/%d quarantined %d/%d",
			out.Hedges, uninterrupted.Hedges, out.Quarantined, uninterrupted.Quarantined)
	}
}

func TestRobustnessFingerprintGuardsResume(t *testing.T) {
	path := t.TempDir() + "/fp.ckpt"
	s := newSession(t, "fop", "hillclimb", 600, 3)
	s.Hedge = &HedgePolicy{}
	keeper := checkpointKeeper(t, path)
	s.Checkpoint = keeper
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := keeper.Close(); err != nil {
		t.Fatal(err)
	}

	// Resuming without the hedge policy must refuse: the checkpoint was
	// written under different trial-steering semantics.
	plain := newSession(t, "fop", "hillclimb", 600, 3)
	plain.Resume = loadSnapshot(t, path)
	if _, err := plain.Run(); err == nil || !strings.Contains(err.Error(), "robustness") {
		t.Fatalf("fingerprint mismatch not caught: %v", err)
	}
}
