package core

import (
	"math"
	"sort"

	"repro/internal/flags"
	"repro/internal/runner"
)

// ---------------------------------------------------------------------------
// Flat random search: draw every tunable flag uniformly. This is the
// strawman that demonstrates why the paper needs structure — most draws
// conflict, crash, or engage expensive observability flags.
// ---------------------------------------------------------------------------

// Random is uniform sampling over the full flat space.
type Random struct{}

// Name implements Searcher.
func (Random) Name() string { return "random" }

// Propose implements Searcher.
func (Random) Propose(ctx *Context) *flags.Config {
	cfg := flags.NewConfig(ctx.Reg)
	flags.RandomizeFlags(cfg, ctx.Reg.TunableNames(), ctx.Rng)
	return cfg
}

// ProposeBatch implements BatchSearcher: independent draws parallelize
// trivially.
func (r Random) ProposeBatch(ctx *Context, n int) []*flags.Config {
	out := make([]*flags.Config, n)
	for i := range out {
		out[i] = r.Propose(ctx)
	}
	return out
}

// Observe implements Searcher.
func (Random) Observe(*Context, *flags.Config, runner.Measurement) {}

// ---------------------------------------------------------------------------
// Hill climbing: mutate a couple of flags at a time, keep improvements,
// restart on stagnation.
// ---------------------------------------------------------------------------

// HillClimb is first-improvement local search from the default config.
type HillClimb struct {
	// Flags restricts the search to the named flags; empty means every
	// tunable flag. (The Subset searcher is a HillClimb with Flags set.)
	Flags []string
	// RestartAfter is the stagnation limit before restarting from the best
	// known configuration with a kick; 0 means 30.
	RestartAfter int

	current     *flags.Config
	currentWall float64
	stagnant    int
	pending     map[*flags.Config]bool
}

// Name implements Searcher.
func (h *HillClimb) Name() string {
	if len(h.Flags) > 0 {
		return "subset-hillclimb"
	}
	return "hillclimb"
}

func (h *HillClimb) pool(ctx *Context) []string {
	if len(h.Flags) > 0 {
		return h.Flags
	}
	return ctx.Reg.TunableNames()
}

// Propose implements Searcher.
func (h *HillClimb) Propose(ctx *Context) *flags.Config {
	if h.current == nil {
		h.current = flags.NewConfig(ctx.Reg)
		h.currentWall = ctx.DefaultWall
	}
	limit := h.RestartAfter
	if limit <= 0 {
		limit = 30
	}
	if h.stagnant >= limit {
		// Kick: restart from the global best with a random double-mutation.
		h.current = ctx.Best.Clone()
		h.currentWall = ctx.BestWall
		h.stagnant = 0
		pool := h.pool(ctx)
		for i := 0; i < 2; i++ {
			flags.MutateFlag(h.current, pool[ctx.Rng.Intn(len(pool))], ctx.Rng)
		}
	}
	next := h.current.Clone()
	pool := h.pool(ctx)
	n := 1 + ctx.Rng.Intn(2)
	for i := 0; i < n; i++ {
		flags.MutateFlag(next, pool[ctx.Rng.Intn(len(pool))], ctx.Rng)
	}
	if h.pending == nil {
		h.pending = make(map[*flags.Config]bool)
	}
	h.pending[next] = true
	return next
}

// Observe implements Searcher. Observations may arrive for any outstanding
// proposal (multi-worker sessions deliver out of proposal order); each is
// judged against the climber's current position.
func (h *HillClimb) Observe(ctx *Context, cfg *flags.Config, m runner.Measurement) {
	if !h.pending[cfg] {
		return
	}
	delete(h.pending, cfg)
	if sc := ctx.Score(m); sc < h.currentWall {
		h.current, h.currentWall = cfg, sc
		h.stagnant = 0
	} else {
		h.stagnant++
	}
}

// NewSubset returns the prior-work proxy: hill climbing restricted to the
// half-dozen heap/GC flags earlier JVM-tuning papers considered. Its
// contrast with whole-JVM tuning is the paper's Figure 2.
func NewSubset() *HillClimb {
	return &HillClimb{Flags: SubsetFlags()}
}

// SubsetFlags is the fixed flag subset the prior-work baseline may touch.
func SubsetFlags() []string {
	return []string{
		"MaxHeapSize", "InitialHeapSize", "NewRatio",
		"SurvivorRatio", "MaxTenuringThreshold", "ParallelGCThreads",
	}
}

// ---------------------------------------------------------------------------
// Simulated annealing: accept uphill moves with temperature-scheduled
// probability; the schedule follows the consumed budget so it anneals over
// tuning time, not trial count.
// ---------------------------------------------------------------------------

// Anneal is simulated annealing over the flat space.
type Anneal struct {
	// StartTemp and EndTemp are relative to the baseline wall time.
	// Zero values default to 0.02 and 0.001.
	StartTemp, EndTemp float64

	current     *flags.Config
	currentWall float64
	pending     map[*flags.Config]bool
}

// Name implements Searcher.
func (a *Anneal) Name() string { return "anneal" }

// Propose implements Searcher.
func (a *Anneal) Propose(ctx *Context) *flags.Config {
	if a.current == nil {
		a.current = flags.NewConfig(ctx.Reg)
		a.currentWall = ctx.DefaultWall
	}
	next := a.current.Clone()
	pool := ctx.Reg.TunableNames()
	n := 1 + ctx.Rng.Intn(3)
	for i := 0; i < n; i++ {
		flags.MutateFlag(next, pool[ctx.Rng.Intn(len(pool))], ctx.Rng)
	}
	if a.pending == nil {
		a.pending = make(map[*flags.Config]bool)
	}
	a.pending[next] = true
	return next
}

// Observe implements Searcher.
func (a *Anneal) Observe(ctx *Context, cfg *flags.Config, m runner.Measurement) {
	if !a.pending[cfg] {
		return
	}
	delete(a.pending, cfg)
	sc := ctx.Score(m)
	if sc < a.currentWall {
		a.current, a.currentWall = cfg, sc
		return
	}
	if math.IsInf(sc, 1) {
		return // never walk into a crash
	}
	t0, t1 := a.StartTemp, a.EndTemp
	if t0 <= 0 {
		t0 = 0.02
	}
	if t1 <= 0 {
		t1 = 0.001
	}
	frac := clamp01(ctx.Elapsed / ctx.Budget)
	temp := t0 * math.Pow(t1/t0, frac) * ctx.DefaultWall
	if temp > 0 && ctx.Rng.Float64() < math.Exp(-(sc-a.currentWall)/temp) {
		a.current, a.currentWall = cfg, sc
	}
}

// ---------------------------------------------------------------------------
// Flat genetic algorithm: a steady-state GA whose genome is every tunable
// flag, with no knowledge of the hierarchy. The ablation partner of the
// hierarchical searcher (Figure 3).
// ---------------------------------------------------------------------------

// GeneticFlat is a steady-state GA over the flat space.
type GeneticFlat struct {
	// PopSize defaults to 16.
	PopSize int

	pop     []individual
	pending map[*flags.Config]bool
}

type individual struct {
	cfg  *flags.Config
	wall float64
}

// Name implements Searcher.
func (g *GeneticFlat) Name() string { return "genetic-flat" }

func (g *GeneticFlat) popSize() int {
	if g.PopSize > 0 {
		return g.PopSize
	}
	return 16
}

// Propose implements Searcher.
func (g *GeneticFlat) Propose(ctx *Context) *flags.Config {
	pool := ctx.Reg.TunableNames()
	// Seed the population with the default and light mutants of it.
	if len(g.pop) < g.popSize() {
		cfg := flags.NewConfig(ctx.Reg)
		for i := 0; i < len(g.pop); i++ { // 0 mutations for the first
			flags.MutateFlag(cfg, pool[ctx.Rng.Intn(len(pool))], ctx.Rng)
		}
		g.note(cfg)
		return cfg
	}
	// Tournament-select two parents, crossover, mutate.
	p1 := g.tournament(ctx)
	p2 := g.tournament(ctx)
	child := flags.Crossover(p1.cfg, p2.cfg, pool, ctx.Rng)
	n := 1 + ctx.Rng.Intn(3)
	for i := 0; i < n; i++ {
		flags.MutateFlag(child, pool[ctx.Rng.Intn(len(pool))], ctx.Rng)
	}
	g.note(child)
	return child
}

func (g *GeneticFlat) note(cfg *flags.Config) {
	if g.pending == nil {
		g.pending = make(map[*flags.Config]bool)
	}
	g.pending[cfg] = true
}

func (g *GeneticFlat) tournament(ctx *Context) individual {
	best := g.pop[ctx.Rng.Intn(len(g.pop))]
	for i := 0; i < 2; i++ {
		c := g.pop[ctx.Rng.Intn(len(g.pop))]
		if c.wall < best.wall {
			best = c
		}
	}
	return best
}

// Observe implements Searcher.
func (g *GeneticFlat) Observe(ctx *Context, cfg *flags.Config, m runner.Measurement) {
	if !g.pending[cfg] {
		return
	}
	delete(g.pending, cfg)
	ind := individual{cfg: cfg, wall: ctx.Score(m)}
	if len(g.pop) < g.popSize() {
		g.pop = append(g.pop, ind)
	} else if worst := g.worstIndex(); ind.wall < g.pop[worst].wall {
		g.pop[worst] = ind
	}
	sort.Slice(g.pop, func(i, j int) bool { return g.pop[i].wall < g.pop[j].wall })
}

func (g *GeneticFlat) worstIndex() int {
	w := 0
	for i := range g.pop {
		if g.pop[i].wall >= g.pop[w].wall {
			w = i
		}
	}
	return w
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
