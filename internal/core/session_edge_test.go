package core

import (
	"math"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

// exhaustedSearcher proposes a fixed number of configs, then nil.
type exhaustedSearcher struct{ left int }

func (e *exhaustedSearcher) Name() string { return "exhausted" }
func (e *exhaustedSearcher) Propose(ctx *Context) *flags.Config {
	if e.left == 0 {
		return nil
	}
	e.left--
	cfg := flags.NewConfig(ctx.Reg)
	cfg.SetInt("NewRatio", int64(1+e.left%8))
	return cfg
}
func (e *exhaustedSearcher) Observe(*Context, *flags.Config, runner.Measurement) {}

func TestSessionStopsWhenSearcherExhausts(t *testing.T) {
	p, _ := workload.ByName("fop")
	s := &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      &exhaustedSearcher{left: 5},
		BudgetSeconds: 1e9,
		Seed:          1,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 5 {
		t.Errorf("expected exactly 5 trials, got %d", out.Trials)
	}
}

func TestSessionBudgetSmallerThanBaseline(t *testing.T) {
	// Budget exhausted by the baseline itself: zero trials, outcome still
	// well-formed (best = default).
	p, _ := workload.ByName("fop")
	s := &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      NewHierarchical(),
		BudgetSeconds: 1, // baseline costs ~85s
		Seed:          2,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 0 {
		t.Errorf("no budget should mean no trials, got %d", out.Trials)
	}
	if out.ImprovementPct != 0 || out.BestWall != out.DefaultWall {
		t.Errorf("best should remain the default: %+v", out)
	}
	if len(out.Best.ExplicitNames()) != 0 {
		t.Error("best config should be the untouched default")
	}
}

func TestSessionFailingBaselineErrors(t *testing.T) {
	// A workload whose live set cannot fit the default heap makes the
	// baseline fail; the session must refuse to tune, not divide by zero.
	p, _ := workload.ByName("h2")
	big := *p
	big.LiveSetMB = 2000
	s := &Session{
		Runner:   runner.NewInProcess(jvmsim.New(), &big),
		Searcher: NewHierarchical(),
		Seed:     3,
	}
	if _, err := s.Run(); err == nil {
		t.Error("failing baseline should abort the session")
	}
}

func TestSessionPauseObjectiveEndToEnd(t *testing.T) {
	p, _ := workload.ByName("tradebeans")
	run := func(obj Objective) *Outcome {
		s := &Session{
			Runner:        runner.NewInProcess(jvmsim.New(), p),
			Searcher:      NewHierarchical(),
			BudgetSeconds: 6000,
			Seed:          4,
			Objective:     obj,
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	thr := run(ObjectiveThroughput)
	pause := run(ObjectivePause)
	if pause.Objective != ObjectivePause || thr.Objective != ObjectiveThroughput {
		t.Fatal("objective not recorded")
	}
	// The pause session's winner must pause no more than the throughput
	// session's winner (measured values, not scores).
	if pause.BestMeasurement.MeanPause > thr.BestMeasurement.MeanPause {
		t.Errorf("pause tuning paused longer: %.3fs vs %.3fs",
			pause.BestMeasurement.MeanPause, thr.BestMeasurement.MeanPause)
	}
	// And the throughput session's winner must be at least as fast.
	if thr.BestMeasurement.Mean > pause.BestMeasurement.Mean*1.02 {
		t.Errorf("throughput tuning slower: %.2fs vs %.2fs",
			thr.BestMeasurement.Mean, pause.BestMeasurement.Mean)
	}
}

func TestObjectiveScore(t *testing.T) {
	ok := runner.Measurement{Walls: []float64{10}, Mean: 10, MeanPause: 0.5}
	if got := ObjectiveThroughput.Score(ok); got != 10 {
		t.Errorf("throughput score = %v", got)
	}
	got := ObjectivePause.Score(ok)
	if got < 0.5 || got > 0.51 {
		t.Errorf("pause score = %v, want ≈0.501", got)
	}
	failed := runner.Measurement{Failed: true}
	if !math.IsInf(ObjectiveThroughput.Score(failed), 1) ||
		!math.IsInf(ObjectivePause.Score(failed), 1) {
		t.Error("failures score +Inf under every objective")
	}
	// The wall tiebreak orders two pause-free configs by speed.
	fast := runner.Measurement{Walls: []float64{10}, Mean: 10}
	slow := runner.Measurement{Walls: []float64{20}, Mean: 20}
	if ObjectivePause.Score(fast) >= ObjectivePause.Score(slow) {
		t.Error("wall time should break pause ties")
	}
}

func TestContextScoreFollowsObjective(t *testing.T) {
	m := runner.Measurement{Walls: []float64{10}, Mean: 10, MeanPause: 1}
	ctx := &Context{Objective: ObjectivePause}
	if ctx.Score(m) == m.Mean {
		t.Error("context should score under its objective, not throughput")
	}
	def := &Context{} // empty objective behaves as throughput
	if def.Score(m) != m.Mean {
		t.Error("empty objective should default to throughput")
	}
}

func TestSessionCacheHitsCounted(t *testing.T) {
	// A searcher that proposes the same config forever hits the cache on
	// every trial after the first.
	p, _ := workload.ByName("fop")
	same := &sameSearcher{}
	s := &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      same,
		BudgetSeconds: 1e9,
		Seed:          5,
	}
	s.MaxTrials = 10
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHits != 9 {
		t.Errorf("expected 9 cache hits of 10 trials, got %d", out.CacheHits)
	}
}

type sameSearcher struct{ cfg *flags.Config }

func (s *sameSearcher) Name() string { return "same" }
func (s *sameSearcher) Propose(ctx *Context) *flags.Config {
	if s.cfg == nil {
		s.cfg = flags.NewConfig(ctx.Reg)
		s.cfg.SetInt("NewRatio", 5)
	}
	return s.cfg
}
func (s *sameSearcher) Observe(*Context, *flags.Config, runner.Measurement) {}

func TestSessionTerminatesOnFreeTrialStorm(t *testing.T) {
	// Without MaxTrials, a searcher that only re-proposes one cached config
	// must not spin forever: the free-trial guard bounds it.
	p, _ := workload.ByName("fop")
	s := &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      &sameSearcher{},
		BudgetSeconds: 1e9,
		Seed:          6,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials > 1100 {
		t.Errorf("free-trial guard did not engage: %d trials", out.Trials)
	}
}
