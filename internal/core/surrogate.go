package core

import (
	"math"

	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/runner"
)

// Surrogate is a model-guided searcher: it fits a cheap separable surrogate
// to everything measured so far — per flag, a running score estimate for
// each region of the flag's domain — and proposes configurations that
// combine each flag's apparently-best region, with ε-greedy exploration.
//
// The surrogate assumes separability, which the JVM's flag space violates
// (that is the point of the hierarchy), so this searcher doubles as an
// ablation: how far does "learn each flag independently" get against
// structure-aware search? It respects the hierarchy enough to stay
// launchable — proposals are validated and repaired — but learns nothing
// about conditional relevance.
type Surrogate struct {
	// Epsilon is the exploration rate (default 0.25).
	Epsilon float64
	// Bins is the number of domain regions learned per Int flag (default 4).
	Bins int

	models  map[string]*flagModel
	names   []string
	groupOf map[string]string // flag name → hierarchy subtree, for exploration weighting
	warm    []PriorSample     // transfer priors folded into the model at init
	pending map[*flags.Config]bool
	seeded  int
}

type flagModel struct {
	flag *flags.Flag
	// For Bool: score sums/counts per value (false=0, true=1).
	// For Int: per bin. Enum unused by the standard catalog but handled.
	sum   []float64
	count []float64
}

// NewSurrogate returns a model-guided searcher with default parameters.
func NewSurrogate() *Surrogate { return &Surrogate{} }

// Name implements Searcher.
func (s *Surrogate) Name() string { return "surrogate" }

func (s *Surrogate) epsilon() float64 {
	if s.Epsilon > 0 {
		return s.Epsilon
	}
	return 0.25
}

func (s *Surrogate) bins() int {
	if s.Bins > 1 {
		return s.Bins
	}
	return 4
}

func (s *Surrogate) init(ctx *Context) {
	s.models = map[string]*flagModel{}
	s.names = ctx.Reg.TunableNames()
	for _, n := range s.names {
		f := ctx.Reg.Lookup(n)
		slots := s.bins()
		switch f.Type {
		case flags.Bool:
			slots = 2
		case flags.Enum:
			slots = len(f.Choices)
		}
		s.models[n] = &flagModel{
			flag:  f,
			sum:   make([]float64, slots),
			count: make([]float64, slots),
		}
	}
	// Group flags by the hierarchy subtree that owns them, so exploration
	// can be steered per-subtree instead of per-flag. The root's direct
	// flags form their own group; flags outside the tree get the empty
	// group and a neutral weight.
	s.groupOf = map[string]string{}
	if ctx.Tree != nil && ctx.Tree.Root != nil {
		var walk func(n *hierarchy.Node, top string)
		walk = func(n *hierarchy.Node, top string) {
			for _, name := range n.Flags {
				if _, ok := s.groupOf[name]; !ok {
					s.groupOf[name] = top
				}
			}
			for _, ch := range n.Children {
				t := top
				if t == "" {
					t = ch.Name
				}
				walk(ch, t)
			}
		}
		walk(ctx.Tree.Root, "")
	}
	// Fold transfer priors into the model: each prior's explicit flags get
	// its historical baseline-relative score, exactly the units Observe
	// credits. The model starts with an opinion where earlier sessions had
	// one and stays optimistic-uncertain everywhere else.
	for _, ps := range s.warm {
		if ps.Cfg == nil {
			continue
		}
		for _, n := range ps.Cfg.ExplicitNames() {
			fm, ok := s.models[n]
			if !ok {
				continue
			}
			v, _ := ps.Cfg.Get(n)
			slot := fm.slotOf(v)
			fm.sum[slot] += ps.Norm
			fm.count[slot]++
		}
	}
}

// PreloadPriors implements PriorPreloader: the samples are folded into the
// per-flag slot models when the model is first built (init needs the
// session context, which is not available yet at wrapping time).
func (s *Surrogate) PreloadPriors(samples []PriorSample) {
	s.warm = append(s.warm, samples...)
}

// slotOf maps a value to its model slot.
func (m *flagModel) slotOf(v flags.Value) int {
	switch m.flag.Type {
	case flags.Bool:
		if v.B {
			return 1
		}
		return 0
	case flags.Enum:
		for i, c := range m.flag.Choices {
			if c == v.S {
				return i
			}
		}
		return 0
	default:
		span := m.flag.Max - m.flag.Min
		if span <= 0 {
			return 0
		}
		idx := int(float64(v.I-m.flag.Min) / float64(span+1) * float64(len(m.sum)))
		if idx >= len(m.sum) {
			idx = len(m.sum) - 1
		}
		if idx < 0 {
			idx = 0
		}
		return idx
	}
}

// bestSlot returns the slot with the lowest mean score; unobserved slots
// are optimistic (tried eagerly).
func (m *flagModel) bestSlot() int {
	best, bestScore := -1, math.Inf(1)
	for i := range m.sum {
		if m.count[i] == 0 {
			return i // optimism under uncertainty
		}
		if mean := m.sum[i] / m.count[i]; mean < bestScore {
			best, bestScore = i, mean
		}
	}
	return best
}

// sampleInSlot draws a value from the slot's region of the domain.
func (s *Surrogate) sampleInSlot(ctx *Context, m *flagModel, slot int) flags.Value {
	switch m.flag.Type {
	case flags.Bool:
		return flags.BoolValue(slot == 1)
	case flags.Enum:
		return flags.EnumValue(m.flag.Choices[slot])
	default:
		span := m.flag.Max - m.flag.Min
		n := int64(len(m.sum))
		lo := m.flag.Min + span*int64(slot)/n
		hi := m.flag.Min + span*int64(slot+1)/n
		if hi <= lo {
			hi = lo + 1
		}
		v := lo + ctx.Rng.Int63n(hi-lo+1)
		return m.flag.Clamp(flags.IntValue(v))
	}
}

// Propose implements Searcher.
func (s *Surrogate) Propose(ctx *Context) *flags.Config {
	if s.models == nil {
		s.init(ctx)
	}
	// Seed phase: a few random configurations to give the model data.
	if s.seeded < 10 {
		s.seeded++
		cfg := flags.NewConfig(ctx.Reg)
		// Light randomization: a handful of flags, so seeds mostly run.
		for i := 0; i < 8; i++ {
			n := s.names[ctx.Rng.Intn(len(s.names))]
			flags.MutateFlag(cfg, n, ctx.Rng)
		}
		s.note(cfg)
		return cfg
	}

	eps := s.epsilon()
	weights := s.groupWeights()
	for attempt := 0; attempt < 8; attempt++ {
		cfg := flags.NewConfig(ctx.Reg)
		// Only set flags the model has an opinion about (or explores);
		// untouched flags stay at their defaults, keeping proposals sane.
		for _, n := range s.names {
			m := s.models[n]
			observed := 0.0
			for _, c := range m.count {
				observed += c
			}
			if observed == 0 {
				continue
			}
			// Hierarchy-aware exploration: scale the explore band by the
			// flag's subtree weight, so ε-exploration concentrates where
			// the model has seen scores actually move. The leave-default
			// band keeps its width, so regularization pressure is uniform.
			w := 1.0
			if weights != nil {
				if gw, ok := weights[s.groupOf[n]]; ok {
					w = gw
				}
			}
			r := ctx.Rng.Float64()
			explore := eps * 0.5 * w
			switch {
			case r < explore:
				// Explore: random slot.
				slot := ctx.Rng.Intn(len(m.sum))
				cfg.Set(n, s.sampleInSlot(ctx, m, slot)) //nolint:errcheck
			case r < explore+eps*0.5:
				// Leave at default (regularization toward sanity).
			default:
				best := m.bestSlot()
				if best >= 0 {
					_ = cfg.Set(n, s.sampleInSlot(ctx, m, best))
				}
			}
		}
		if hierarchy.Validate(cfg) == nil {
			if _, err := hierarchy.SelectedCollector(cfg); err == nil {
				s.note(cfg)
				return cfg
			}
		}
	}
	// Could not assemble a valid proposal; fall back to a best-config mutant.
	cfg := ctx.Best.Clone()
	flags.MutateFlag(cfg, s.names[ctx.Rng.Intn(len(s.names))], ctx.Rng)
	s.note(cfg)
	return cfg
}

// groupWeights derives a per-subtree exploration weight from the model's
// observed score spreads: for each flag the spread of its slot means, for
// each hierarchy subtree the maximum spread of its flags, normalized so the
// highest-impact subtree explores at 2× and flat subtrees at 0.5×. Returns
// nil (neutral weights everywhere) until some flag has two observed slots
// to compare — the GroupTuner insight, applied to ε instead of to a
// separate group-search phase.
func (s *Surrogate) groupWeights() map[string]float64 {
	spread := map[string]float64{}
	maxSpread := 0.0
	for _, n := range s.names {
		m := s.models[n]
		lo, hi, seen := math.Inf(1), math.Inf(-1), 0
		for i := range m.sum {
			if m.count[i] == 0 {
				continue
			}
			mean := m.sum[i] / m.count[i]
			if mean < lo {
				lo = mean
			}
			if mean > hi {
				hi = mean
			}
			seen++
		}
		if seen < 2 {
			continue
		}
		g := s.groupOf[n]
		if d := hi - lo; d > spread[g] {
			spread[g] = d
			if d > maxSpread {
				maxSpread = d
			}
		}
	}
	if maxSpread <= 0 {
		return nil
	}
	out := make(map[string]float64, len(spread))
	for g, d := range spread {
		out[g] = 0.5 + 1.5*d/maxSpread
	}
	return out
}

func (s *Surrogate) note(cfg *flags.Config) {
	if s.pending == nil {
		s.pending = make(map[*flags.Config]bool)
	}
	s.pending[cfg] = true
}

// Observe implements Searcher: credit every explicit flag of the proposal
// with the (normalized) score.
func (s *Surrogate) Observe(ctx *Context, cfg *flags.Config, m runner.Measurement) {
	if !s.pending[cfg] || s.models == nil {
		return
	}
	delete(s.pending, cfg)
	sc := ctx.Score(m)
	if math.IsInf(sc, 1) {
		// Failures teach too: charge a large penalty to the slots used.
		sc = ctx.DefaultWall * 3
	}
	norm := sc / ctx.DefaultWall
	for _, n := range cfg.ExplicitNames() {
		fm, ok := s.models[n]
		if !ok {
			continue
		}
		v, _ := cfg.Get(n)
		slot := fm.slotOf(v)
		fm.sum[slot] += norm
		fm.count[slot]++
	}
}
