package core

import (
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

func TestSurrogateRegistered(t *testing.T) {
	s, err := NewSearcher("surrogate")
	if err != nil || s.Name() != "surrogate" {
		t.Fatalf("surrogate not registered: %v", err)
	}
}

func TestSurrogateImprovesGCBoundBenchmark(t *testing.T) {
	// Heap size is nearly separable on h2, the surrogate's best case.
	out, err := newSession(t, "h2", "surrogate", 8000, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.ImprovementPct < 10 {
		t.Errorf("surrogate found only %.1f%% on its best-case benchmark", out.ImprovementPct)
	}
}

func TestSurrogateProposalsMostlyLaunch(t *testing.T) {
	p, _ := workload.ByName("xalan")
	s := &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      NewSurrogate(),
		BudgetSeconds: 4000,
		Seed:          7,
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Failures > out.Trials/4 {
		t.Errorf("%d of %d surrogate proposals failed to launch", out.Failures, out.Trials)
	}
}

func TestSurrogateModelLearnsDirections(t *testing.T) {
	// After a session on a warm-up-bound benchmark, the model's opinion of
	// TieredCompilation must favour "true".
	p, _ := workload.ByName("startup.compiler.compiler")
	sur := NewSurrogate()
	s := &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      sur,
		BudgetSeconds: 8000,
		Seed:          2,
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	m := sur.models["TieredCompilation"]
	if m == nil {
		t.Fatal("no model for TieredCompilation")
	}
	if m.count[0] == 0 || m.count[1] == 0 {
		t.Skip("model never observed both values under this seed")
	}
	if m.sum[1]/m.count[1] >= m.sum[0]/m.count[0] {
		t.Errorf("model should learn tiered=true is better: %v vs %v",
			m.sum[1]/m.count[1], m.sum[0]/m.count[0])
	}
}

func TestFlagModelSlots(t *testing.T) {
	p, _ := workload.ByName("fop")
	sur := NewSurrogate()
	s := &Session{
		Runner:        runner.NewInProcess(jvmsim.New(), p),
		Searcher:      sur,
		BudgetSeconds: 1e9,
		Seed:          1,
	}
	s.MaxTrials = 12
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	m := sur.models["MaxHeapSize"]
	// Slot mapping covers the domain ends.
	lo := m.slotOf(flags.IntValue(m.flag.Min))
	hi := m.slotOf(flags.IntValue(m.flag.Max))
	if lo != 0 || hi != len(m.sum)-1 {
		t.Errorf("slot mapping: min→%d, max→%d of %d", lo, hi, len(m.sum))
	}
}
