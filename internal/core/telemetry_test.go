package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// instrumentedSession wires one shared Registry+Tracer through both the
// runner and the session — the wiring every binary uses.
func instrumentedSession(t testing.TB, bench, searcher string, budget float64, seed int64, workers int) *Session {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no workload %s", bench)
	}
	s, err := NewSearcher(searcher)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	tr := telemetry.NewTracer(0)
	r := runner.NewInProcess(jvmsim.New(), p)
	r.Telemetry, r.Trace = tel, tr
	return &Session{
		Runner:        r,
		Searcher:      s,
		BudgetSeconds: budget,
		Seed:          seed,
		Workers:       workers,
		Telemetry:     tel,
		Trace:         tr,
	}
}

func TestSessionTelemetryMatchesOutcome(t *testing.T) {
	s := instrumentedSession(t, "fop", "hierarchical", 2000, 7, 3)
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Telemetry.Snapshot()
	if got := snap["session_trials_total"]; got != float64(out.Trials) {
		t.Errorf("session_trials_total = %g, want %d", got, out.Trials)
	}
	if got := snap["session_failures_total"]; got != float64(out.Failures) {
		t.Errorf("session_failures_total = %g, want %d", got, out.Failures)
	}
	if got := snap["session_cache_hits_total"]; got != float64(out.CacheHits) {
		t.Errorf("session_cache_hits_total = %g, want %d", got, out.CacheHits)
	}
	if got := snap["session_best_score"]; got != out.BestWall {
		t.Errorf("session_best_score = %g, want %g", got, out.BestWall)
	}
	if got := snap["session_elapsed_virtual_seconds"]; got != out.Elapsed {
		t.Errorf("session_elapsed_virtual_seconds = %g, want %g", got, out.Elapsed)
	}
	if snap["session_budget_virtual_seconds"] != 2000 {
		t.Errorf("budget gauge = %g", snap["session_budget_virtual_seconds"])
	}
	if snap["session_workers"] != 3 {
		t.Errorf("workers gauge = %g", snap["session_workers"])
	}
	if snap["session_rounds_total"] < 1 {
		t.Error("no rounds counted")
	}
	if snap["searcher_propose_seconds_count"] < 1 {
		t.Error("no propose latencies observed")
	}
	// The runner series rides in the same registry: baseline + trials.
	got := snap["runner_measures_total"] + snap["runner_cache_hits_total"]
	if want := float64(out.Trials + 1); got != want {
		t.Errorf("runner measures+cache hits = %g, want %g (trials+baseline)", got, want)
	}
}

func TestSessionTraceEventStream(t *testing.T) {
	s := instrumentedSession(t, "fop", "hierarchical", 1500, 3, 2)
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	evs := s.Trace.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	if kinds[telemetry.EvBaseline] != 1 {
		t.Errorf("baseline events = %d, want 1", kinds[telemetry.EvBaseline])
	}
	if kinds[telemetry.EvObserve] != out.Trials {
		t.Errorf("observe events = %d, want %d trials", kinds[telemetry.EvObserve], out.Trials)
	}
	if kinds[telemetry.EvProposal] != out.Trials {
		t.Errorf("proposal events = %d, want %d", kinds[telemetry.EvProposal], out.Trials)
	}
	if kinds[telemetry.EvAttempt] == 0 {
		t.Error("runner attempt events missing — commit wiring broken")
	}
	if kinds[telemetry.EvBarrier] == 0 {
		t.Error("no barrier events")
	}
	// Seq must be strictly increasing, and virtual times non-decreasing is
	// NOT required (delivery order is completion order within rounds), but
	// every event must carry a stamped virtual time.
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.T < 0 {
			t.Fatalf("event %d left unstamped: %+v", i, ev)
		}
	}
}

func traceBytes(t testing.TB, workers int, seed int64) []byte {
	s := instrumentedSession(t, "fop", "hierarchical", 1500, seed, workers)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSessionTraceByteDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		a := traceBytes(t, workers, 11)
		b := traceBytes(t, workers, 11)
		if !bytes.Equal(a, b) {
			t.Errorf("workers=%d: repeated runs differ", workers)
			la, lb := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
			for i := 0; i < len(la) && i < len(lb); i++ {
				if la[i] != lb[i] {
					t.Fatalf("first divergence at line %d:\n  %s\n  %s", i, la[i], lb[i])
				}
			}
		}
	}
}

func benchInstrumentedSession(b *testing.B, instrument bool) {
	p, ok := workload.ByName("xalan")
	if !ok {
		b.Fatal("no workload")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := runner.NewInProcess(jvmsim.New(), p)
		session := &Session{
			Runner:        r,
			Searcher:      NewHierarchical(),
			BudgetSeconds: 6000,
			Seed:          int64(i),
			Workers:       4,
		}
		if instrument {
			tel := telemetry.New()
			tr := telemetry.NewTracer(0)
			r.Telemetry, r.Trace = tel, tr
			session.Telemetry, session.Trace = tel, tr
		}
		if _, err := session.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// The pair quantifies full-session instrumentation overhead: metrics +
// trace recording versus the nil fast path.
func BenchmarkSessionInstrumented(b *testing.B) { benchInstrumentedSession(b, true) }
func BenchmarkSessionNoTelemetry(b *testing.B)  { benchInstrumentedSession(b, false) }
