package core

import (
	"repro/internal/flags"
	"repro/internal/runner"
)

// PriorSample is one warm-start prior with its quality signal: a
// configuration some earlier session found good, and that session's
// baseline-relative score (best/baseline, lower is better). Model-based
// searchers use Norm to pre-bias their estimates before the first local
// measurement arrives.
type PriorSample struct {
	Cfg  *flags.Config
	Norm float64
}

// PriorPreloader is implemented by searchers that can fold warm-start
// priors into their internal model before the session starts (Surrogate
// pre-loads its per-flag slot estimates). The WarmStart wrapper calls it
// once, before any Propose.
type PriorPreloader interface {
	PreloadPriors([]PriorSample)
}

// NewWarmStart wraps inner so that the given prior configurations are the
// session's first proposals, in order, before inner proposes anything. The
// priors must be built over the same *flags.Registry instance the session
// tunes (searchers diff and crossbreed observed configs, and those
// operations reject cross-registry configs).
//
// Every observation is forwarded to inner — all searchers in this package
// ignore observations of configs they did not propose, but they still see
// the session's ctx.Best move, and a PriorPreloader additionally receives
// the priors' historical scores up front. With no priors the wrapper
// disappears: NewWarmStart returns inner itself, which is what keeps
// transfer-off sessions byte-identical.
//
// If inner supports batch proposing, the wrapper does too, preserving the
// bulk-synchronous executor's round semantics: while priors remain a round
// is served from priors only, so the prior measurements land before inner's
// model-driven proposals are generated.
func NewWarmStart(inner Searcher, samples []PriorSample) Searcher {
	if len(samples) == 0 {
		return inner
	}
	if pl, ok := inner.(PriorPreloader); ok {
		pl.PreloadPriors(samples)
	}
	priors := make([]*flags.Config, len(samples))
	for i, s := range samples {
		priors[i] = s.Cfg
	}
	w := &warmStart{inner: inner, priors: priors}
	if _, ok := inner.(BatchSearcher); ok {
		return &warmStartBatch{w}
	}
	return w
}

type warmStart struct {
	inner  Searcher
	priors []*flags.Config
}

// Name implements Searcher. The wrapper is transparent: provenance surfaces
// through telemetry and the result's transfer info, not the searcher name,
// so checkpoints resume under the same name whether or not priors remain.
func (w *warmStart) Name() string { return w.inner.Name() }

// Propose implements Searcher: priors first, then the inner searcher.
func (w *warmStart) Propose(ctx *Context) *flags.Config {
	if len(w.priors) > 0 {
		cfg := w.priors[0]
		w.priors = w.priors[1:]
		return cfg
	}
	return w.inner.Propose(ctx)
}

// Observe implements Searcher. Forwarded unconditionally: inner searchers
// guard on their own pending sets, and prior measurements reach a
// PriorPreloader's model through PreloadPriors rather than here.
func (w *warmStart) Observe(ctx *Context, cfg *flags.Config, m runner.Measurement) {
	w.inner.Observe(ctx, cfg, m)
}

// warmStartBatch adds batch proposing when the inner searcher has it.
type warmStartBatch struct {
	*warmStart
}

// ProposeBatch implements BatchSearcher: rounds are served from the prior
// queue until it drains, then delegated. The wrapper never mixes priors and
// inner proposals in one round — the inner searcher should generate its
// batch after the priors' results are in its view of ctx.Best.
func (w *warmStartBatch) ProposeBatch(ctx *Context, n int) []*flags.Config {
	if len(w.priors) > 0 {
		k := n
		if k > len(w.priors) {
			k = len(w.priors)
		}
		out := w.priors[:k]
		w.priors = w.priors[k:]
		return out
	}
	return w.inner.(BatchSearcher).ProposeBatch(ctx, n)
}
