package core

import (
	"math/rand"
	"testing"

	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

func warmTestCtx(reg *flags.Registry) *Context {
	return &Context{
		Reg:         reg,
		Tree:        hierarchy.Build(reg),
		Rng:         rand.New(rand.NewSource(1)),
		Objective:   ObjectiveThroughput,
		DefaultWall: 20,
		BestWall:    20,
		Best:        flags.NewConfig(reg),
		Budget:      1e6,
	}
}

func warmPrior(t *testing.T, reg *flags.Registry, args ...string) *flags.Config {
	t.Helper()
	cfg, err := flags.ParseArgs(reg, args)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestWarmStartNoPriorsIsTransparent(t *testing.T) {
	inner := NewSurrogate()
	if got := NewWarmStart(inner, nil); got != Searcher(inner) {
		t.Fatal("empty warm start must return the inner searcher unchanged")
	}
}

func TestWarmStartServesPriorsFirst(t *testing.T) {
	reg := flags.NewRegistry()
	ctx := warmTestCtx(reg)
	p1 := warmPrior(t, reg, "-XX:+UseG1GC")
	p2 := warmPrior(t, reg, "-XX:+UseSerialGC")

	inner, err := NewSearcher("hillclimb")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWarmStart(inner, []PriorSample{{Cfg: p1, Norm: 0.8}, {Cfg: p2, Norm: 0.9}})
	if w.Name() != inner.Name() {
		t.Fatalf("wrapper name %q, want %q", w.Name(), inner.Name())
	}
	if got := w.Propose(ctx); got != p1 {
		t.Fatal("first proposal is not the first prior")
	}
	if got := w.Propose(ctx); got != p2 {
		t.Fatal("second proposal is not the second prior")
	}
	if got := w.Propose(ctx); got == nil || got == p1 || got == p2 {
		t.Fatal("after priors drain the inner searcher must propose")
	}
}

func TestWarmStartBatchServesPriorsInRounds(t *testing.T) {
	reg := flags.NewRegistry()
	ctx := warmTestCtx(reg)
	priors := []PriorSample{
		{Cfg: warmPrior(t, reg, "-XX:+UseG1GC"), Norm: 0.8},
		{Cfg: warmPrior(t, reg, "-XX:+UseSerialGC"), Norm: 0.9},
		{Cfg: warmPrior(t, reg, "-XX:+UseConcMarkSweepGC"), Norm: 0.85},
	}
	inner, err := NewSearcher("random") // Random implements BatchSearcher
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inner.(BatchSearcher); !ok {
		t.Fatal("test premise broken: random is not a BatchSearcher")
	}
	w := NewWarmStart(inner, priors)
	bs, ok := w.(BatchSearcher)
	if !ok {
		t.Fatal("wrapper over a BatchSearcher must stay a BatchSearcher")
	}
	// A round smaller than the prior queue serves only priors...
	first := bs.ProposeBatch(ctx, 2)
	if len(first) != 2 || first[0] != priors[0].Cfg || first[1] != priors[1].Cfg {
		t.Fatalf("first round = %d configs, want the first two priors", len(first))
	}
	// ...the next round drains the queue WITHOUT mixing in inner proposals...
	second := bs.ProposeBatch(ctx, 4)
	if len(second) != 1 || second[0] != priors[2].Cfg {
		t.Fatalf("second round = %d configs, want exactly the last prior", len(second))
	}
	// ...and only then does the inner searcher fill rounds.
	third := bs.ProposeBatch(ctx, 4)
	if len(third) != 4 {
		t.Fatalf("post-prior round = %d configs, want 4 from inner", len(third))
	}
}

func TestWarmStartPreloadsSurrogateModel(t *testing.T) {
	reg := flags.NewRegistry()
	ctx := warmTestCtx(reg)
	prior := warmPrior(t, reg, "-XX:+UseG1GC", "-XX:MaxGCPauseMillis=50")

	sur := NewSurrogate()
	w := NewWarmStart(sur, []PriorSample{{Cfg: prior, Norm: 0.75}})
	if got := w.Propose(ctx); got != prior {
		t.Fatal("first proposal is not the prior")
	}
	// The surrogate builds its model lazily at its own first proposal;
	// that init folds the preloaded samples in — so the model has the
	// priors' scores before the first model-driven proposal exists.
	if got := w.Propose(ctx); got == nil {
		t.Fatal("inner searcher did not propose after priors drained")
	}
	m := sur.models["MaxGCPauseMillis"]
	if m == nil {
		t.Fatal("no model for MaxGCPauseMillis")
	}
	v, _ := prior.Get("MaxGCPauseMillis")
	slot := m.slotOf(v)
	if m.count[slot] != 1 || m.sum[slot] != 0.75 {
		t.Fatalf("prior not folded into model: count=%v sum=%v", m.count[slot], m.sum[slot])
	}
	g1 := sur.models["UseG1GC"]
	if g1.count[1] != 1 {
		t.Fatal("prior's collector choice not folded into model")
	}
}

// TestWarmStartSessionDeterministic pins the determinism contract: two
// warm-started sessions with equal seeds and equal priors produce identical
// outcomes.
func TestWarmStartSessionDeterministic(t *testing.T) {
	run := func() *Outcome {
		reg := flags.NewRegistry()
		p, _ := workload.ByName("h2")
		prior := warmPrior(t, reg, "-XX:+UseG1GC", "-Xmx2g")
		s := &Session{
			Runner:        runner.NewInProcess(jvmsim.New(), p),
			Searcher:      NewWarmStart(NewSurrogate(), []PriorSample{{Cfg: prior, Norm: 0.8}}),
			Reg:           reg,
			BudgetSeconds: 3000,
			Seed:          11,
			Transfer:      "test-priors-v1",
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Best.Key() != b.Best.Key() || a.BestWall != b.BestWall || a.Trials != b.Trials {
		t.Fatalf("warm-started sessions diverged:\n%v %v %d\n%v %v %d",
			a.Best.Key(), a.BestWall, a.Trials, b.Best.Key(), b.BestWall, b.Trials)
	}
}
