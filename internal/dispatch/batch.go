package dispatch

import (
	"bytes"
	"encoding/json"
	"io"
)

// Batched dispatch ships several evaluation attempts in one HTTP round
// trip, amortizing the per-trial wire overhead (BENCH_2.json records
// ~90 µs/trial for single-trial loopback dispatch; a real-JVM runner makes
// that negligible, but the simulator answers in microseconds, so the hop
// dominates). The batch is transport aggregation only: every trial inside
// it keeps its own key, rep base, and verdict, so a batch is semantically
// identical to its trials dispatched one by one — which is exactly how the
// differential suite proves batched sessions byte-identical to unbatched
// and in-process ones.

// Batch protocol bounds.
const (
	// MaxBatchTrials bounds trials per batch request. Controllers batch at
	// most a round's worth of proposals (the worker count), so anything
	// past this is a bogus payload, not a workload.
	MaxBatchTrials = 256
	// MaxBatchRequestBytes bounds an evaluate-batch request body.
	MaxBatchRequestBytes = 8 << 20
)

// BatchRequest is one batched dispatch round trip: up to MaxBatchTrials
// evaluation attempts that the node answers positionally.
type BatchRequest struct {
	Trials []TrialRequest `json:"trials"`
}

// BatchEntry is the per-trial outcome inside a BatchResult: exactly one of
// Result or Error is set. A per-trial rejection condemns only its own
// trial — the siblings in the batch settle normally.
type BatchEntry struct {
	Result *TrialResult   `json:"result,omitempty"`
	Error  *ErrorEnvelope `json:"error,omitempty"`
}

// BatchResult answers a BatchRequest: Entries[i] is the verdict for
// Trials[i]. A well-formed response always carries exactly one entry per
// requested trial; anything else is a broken node, not a protocol answer.
type BatchResult struct {
	// Node names the evaluator that served the batch (diagnostic only).
	Node    string       `json:"node,omitempty"`
	Entries []BatchEntry `json:"entries"`
}

// Validate checks the batch envelope's self-contained invariants. The
// trials themselves are validated individually by the serving node so one
// bogus trial yields a per-entry rejection, not a whole-batch 400.
func (b *BatchRequest) Validate() error {
	switch {
	case len(b.Trials) == 0:
		return reject(CodeBadPayload, "dispatch: empty batch")
	case len(b.Trials) > MaxBatchTrials:
		return reject(CodeBadPayload, "dispatch: %d trials exceed batch limit %d", len(b.Trials), MaxBatchTrials)
	}
	return nil
}

// DecodeBatchRequest parses and validates a batch envelope. Unknown fields
// fail closed, exactly like DecodeTrialRequest. The hand-rolled scanner
// handles the shape our own controllers emit; anything it does not
// recognize — including unknown fields and drift requests — goes through
// the strict reflection decoder (see wirefast.go).
func DecodeBatchRequest(data []byte) (*BatchRequest, error) {
	if b, ok := fastDecodeBatchRequest(data); ok {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		return b, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b BatchRequest
	if err := dec.Decode(&b); err != nil {
		return nil, reject(CodeBadPayload, "dispatch: decode batch: %v", err)
	}
	if dec.More() {
		return nil, reject(CodeBadPayload, "dispatch: trailing data after batch")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// The batch wire mirror: BatchResult with every entry in compact form.
// See wireMeasurement — field names are identical to the plain structs,
// only zero-valued fields are elided.
type wireBatchEntry struct {
	Result *wireTrialResult `json:"result,omitempty"`
	Error  *ErrorEnvelope   `json:"error,omitempty"`
}

type wireBatchResult struct {
	Node    string           `json:"node,omitempty"`
	Entries []wireBatchEntry `json:"entries"`
}

// EncodeBatchResult writes res in its compact wire form: the hand-rolled
// appender when the message is representable (see wireenc.go), one
// conversion and one reflection pass otherwise — same bytes-on-the-wire
// semantics either way.
func EncodeBatchResult(w io.Writer, res *BatchResult) error {
	if b, ok := encodeBatchResult(res); ok {
		_, err := w.Write(b)
		return err
	}
	return stdEncodeBatchResult(w, res)
}

// stdEncodeBatchResult is the reflection path of EncodeBatchResult, kept
// callable on its own so the differential suite can compare the two
// encoders directly.
func stdEncodeBatchResult(w io.Writer, res *BatchResult) error {
	wire := wireBatchResult{Node: res.Node}
	if res.Entries != nil {
		wire.Entries = make([]wireBatchEntry, len(res.Entries))
	}
	scratch := make([]wireTrialResult, len(res.Entries))
	for i := range res.Entries {
		e := &res.Entries[i]
		if e.Result != nil {
			scratch[i] = toWire(e.Result)
			wire.Entries[i].Result = &scratch[i]
		}
		wire.Entries[i].Error = e.Error
	}
	return json.NewEncoder(w).Encode(&wire)
}

// batchFromWire converts a decoded wire mirror back to the plain structs,
// preserving the nil-vs-empty distinction of the entries slice (the
// differential fuzz target compares this against the fast scanner).
func batchFromWire(wire *wireBatchResult) *BatchResult {
	res := &BatchResult{Node: wire.Node}
	if wire.Entries != nil {
		res.Entries = make([]BatchEntry, len(wire.Entries))
	}
	for i := range wire.Entries {
		e := &wire.Entries[i]
		if e.Result != nil {
			res.Entries[i].Result = fromWire(e.Result)
		}
		res.Entries[i].Error = e.Error
	}
	return res
}

// decodeBatchResult is the client-side twin of EncodeBatchResult: the
// hand-rolled scanner when the body is exactly the shape our nodes emit,
// the reflection decoder for everything else (see wirefast.go).
func decodeBatchResult(data []byte) (*BatchResult, error) {
	if res, ok := fastDecodeBatchResult(data); ok {
		return res, nil
	}
	var wire wireBatchResult
	if err := decodeBody(data, &wire); err != nil {
		return nil, err
	}
	return batchFromWire(&wire), nil
}
