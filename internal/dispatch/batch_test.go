package dispatch

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
)

// batchFake scripts a BatchEvaluator for fault scenarios: single-trial
// placements delegate to fakeEval, batches to batchFn.
type batchFake struct {
	fakeEval
	batchFn func(req *BatchRequest) (*BatchResult, error)
}

func (b *batchFake) EvaluateBatch(_ context.Context, req *BatchRequest) (*BatchResult, error) {
	return b.batchFn(req)
}

// batchConfigs builds n distinct configurations (distinct heap sizes, so
// clamping cannot collapse keys) against one shared registry.
func batchConfigs(reg *flags.Registry, n int) []*flags.Config {
	const mb = int64(1) << 20
	cfgs := make([]*flags.Config, n)
	for i := range cfgs {
		c := flags.NewConfig(reg)
		c.SetInt("MaxHeapSize", (256+64*int64(i))*mb)
		if i%2 == 1 {
			c.SetBool("UseG1GC", true)
		}
		cfgs[i] = c
	}
	return cfgs
}

// TestMeasureBatchMatchesInProcess is the batching equivalence claim at
// unit scale: MeasureBatch over a fleet of Local evaluators produces, at
// every batch size, exactly the measurements and virtual clock the
// in-process runner produces for the same configurations — the batch knob
// changes round trips, never bytes.
func TestMeasureBatchMatchesInProcess(t *testing.T) {
	prof := poolProfile(t, "fop")
	reg := flags.NewRegistry()
	for _, batch := range []int{0, 1, 3, 16} {
		ip := runner.NewInProcess(jvmsim.New(), prof)
		cfgs := batchConfigs(reg, 6)
		want := make([]runner.Measurement, len(cfgs))
		for i, c := range cfgs {
			want[i] = ip.Measure(c, 2)
		}

		pool := newTestPool(t, "fop",
			NewLocal(prof, "n0"), NewLocal(prof, "n1"), NewLocal(prof, "n2"))
		pool.Batch = batch
		got := pool.MeasureBatch(cfgs, 2)
		for i := range got {
			if got[i].Key != want[i].Key || got[i].Mean != want[i].Mean ||
				got[i].CostSeconds != want[i].CostSeconds || got[i].Failed != want[i].Failed {
				t.Fatalf("batch=%d trial %d: %+v != in-process %+v", batch, i, got[i], want[i])
			}
		}
		if pool.Elapsed() != ip.Elapsed() {
			t.Fatalf("batch=%d: virtual clocks diverged: pool %v, in-process %v",
				batch, pool.Elapsed(), ip.Elapsed())
		}
	}
}

// TestMeasureBatchDegradesWithoutBatchEvaluator: nodes that cannot speak
// evaluate-batch serve their share of a wave trial by trial, with the
// same results.
func TestMeasureBatchDegradesWithoutBatchEvaluator(t *testing.T) {
	prof := poolProfile(t, "fop")
	local := NewLocal(prof, "plain")
	plain := &fakeEval{name: "plain", fn: func(req *TrialRequest) (*TrialResult, error) {
		return local.Evaluate(context.Background(), req)
	}}
	reg := flags.NewRegistry()
	cfgs := batchConfigs(reg, 4)

	ip := runner.NewInProcess(jvmsim.New(), prof)
	want := make([]runner.Measurement, len(cfgs))
	for i, c := range cfgs {
		want[i] = ip.Measure(c, 1)
	}

	pool := newTestPool(t, "fop", plain)
	pool.Batch = 16
	got := pool.MeasureBatch(cfgs, 1)
	for i := range got {
		if got[i].Failed || got[i].Mean != want[i].Mean {
			t.Fatalf("trial %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if pool.Telemetry.Counter("dispatch_batches_total").Value() != 0 {
		t.Error("a non-batchable node must never be counted as serving a batch")
	}
}

// TestMeasureBatchPartialSalvage: a node that dies after serving part of
// a batch loses only the unsettled remainder — salvage re-dispatches
// those trials under the same repBase, so every measurement still matches
// the in-process reference byte for byte.
func TestMeasureBatchPartialSalvage(t *testing.T) {
	prof := poolProfile(t, "fop")
	backing := NewLocal(prof, "half")
	faults := 0
	half := &batchFake{
		fakeEval: fakeEval{name: "half", fn: func(req *TrialRequest) (*TrialResult, error) {
			return backing.Evaluate(context.Background(), req)
		}},
		batchFn: func(req *BatchRequest) (*BatchResult, error) {
			res, err := backing.EvaluateBatch(context.Background(), req)
			if err != nil {
				return nil, err
			}
			if faults == 0 && len(res.Entries) > 1 {
				// Serve the first half, blank the rest: those placements
				// never measured anywhere and must salvage.
				faults++
				for i := len(res.Entries) / 2; i < len(res.Entries); i++ {
					res.Entries[i] = BatchEntry{Error: &ErrorEnvelope{Error: "evald: worker crashed", Code: CodeInternal}}
				}
			}
			return res, nil
		},
	}
	reg := flags.NewRegistry()
	cfgs := batchConfigs(reg, 6)

	ip := runner.NewInProcess(jvmsim.New(), prof)
	want := make([]runner.Measurement, len(cfgs))
	for i, c := range cfgs {
		want[i] = ip.Measure(c, 2)
	}

	pool := newTestPool(t, "fop", half, NewLocal(prof, "whole"))
	pool.Batch = 16
	got := pool.MeasureBatch(cfgs, 2)
	for i := range got {
		if got[i].Failed {
			t.Fatalf("trial %d should salvage: %+v", i, got[i])
		}
		if got[i].Mean != want[i].Mean || got[i].CostSeconds != want[i].CostSeconds {
			t.Fatalf("salvaged trial %d diverged: %+v != %+v", i, got[i], want[i])
		}
		if got[i].Attempts != want[i].Attempts || got[i].Flakes != want[i].Flakes {
			t.Fatalf("trial %d: salvage leaked into retry accounting: %+v != %+v", i, got[i], want[i])
		}
	}
	if pool.Elapsed() != ip.Elapsed() {
		t.Fatalf("salvage cost virtual time: pool %v, in-process %v", pool.Elapsed(), ip.Elapsed())
	}
	if faults != 1 {
		t.Fatalf("fault script fired %d times, want 1", faults)
	}
}

// TestBatchFaultStrikesBreakerOnce: one failed evaluate-batch round trip
// is one transport fault — the breaker advances once, not once per trial,
// so a single TCP reset cannot insta-quarantine a healthy node.
func TestBatchFaultStrikesBreakerOnce(t *testing.T) {
	pool := newTestPool(t, "fop", NewLocal(poolProfile(t, "fop"), "n"))
	clock := time.Unix(1000, 0)
	pool.now = func() time.Time { return clock }
	nd := pool.nodes[0]

	keys := []string{"k1", "k2", "k3", "k4"}
	for _, k := range keys {
		pool.acquire(k)
	}
	pool.settleBatchFault(nd, keys, 0)
	if nd.fails != 1 {
		t.Fatalf("one batch fault = one strike, got %d", nd.fails)
	}
	if nd.inflight != 0 {
		t.Fatalf("every placement of the batch must settle: inflight=%d", nd.inflight)
	}
	if nd.dead {
		t.Fatal("a single batch fault must not quarantine")
	}
}

// TestBatchShedFloorsCooldown: a 429 for the whole batch floors the
// node's cooldown with its Retry-After and takes no breaker strike.
func TestBatchShedFloorsCooldown(t *testing.T) {
	pool := newTestPool(t, "fop", NewLocal(poolProfile(t, "fop"), "n"))
	clock := time.Unix(1000, 0)
	pool.now = func() time.Time { return clock }
	nd := pool.nodes[0]

	pool.acquire("k1")
	pool.acquire("k2")
	pool.settleBatchFault(nd, []string{"k1", "k2"}, 4*time.Second)
	if nd.fails != 0 || nd.dead {
		t.Fatalf("shed batch must not strike the breaker: fails=%d dead=%v", nd.fails, nd.dead)
	}
	if want := clock.Add(4 * time.Second); !nd.until.Equal(want) {
		t.Fatalf("cooldown floor = %v, want %v", nd.until, want)
	}
	if pool.Telemetry.Counter("dispatch_node_shed_total").Value() != 1 {
		t.Error("shed batches should be counted")
	}
}

// TestBatchPerEntryRejectionCondemnsOnlyOwnTrial: a deterministic 4xx
// envelope inside an otherwise healthy batch condemns exactly its own
// trial; siblings settle normally and the node takes no strike.
func TestBatchPerEntryRejectionCondemnsOnlyOwnTrial(t *testing.T) {
	prof := poolProfile(t, "fop")
	backing := NewLocal(prof, "strict")
	reg := flags.NewRegistry()
	cfgs := batchConfigs(reg, 4)
	condemned := cfgs[2].Key()

	strict := &batchFake{
		fakeEval: fakeEval{name: "strict", fn: func(req *TrialRequest) (*TrialResult, error) {
			if req.Key == condemned {
				return nil, &NodeError{Node: "strict", Status: 400, Code: CodeBadFlag, Permanent: true,
					Err: errors.New("unknown flag")}
			}
			return backing.Evaluate(context.Background(), req)
		}},
		batchFn: func(req *BatchRequest) (*BatchResult, error) {
			res, err := backing.EvaluateBatch(context.Background(), req)
			if err != nil {
				return nil, err
			}
			for i := range req.Trials {
				if req.Trials[i].Key == condemned {
					res.Entries[i] = BatchEntry{Error: &ErrorEnvelope{Error: "bad flag", Code: CodeBadFlag}}
				}
			}
			return res, nil
		},
	}
	pool := newTestPool(t, "fop", strict)
	pool.Batch = 16
	got := pool.MeasureBatch(cfgs, 1)
	for i := range got {
		if cfgs[i].Key() == condemned {
			if !got[i].Failed || got[i].Failure != runner.NodeRejectedFailure {
				t.Fatalf("condemned trial: %+v", got[i])
			}
			continue
		}
		if got[i].Failed {
			t.Fatalf("sibling trial %d condemned by a per-entry rejection: %+v", i, got[i])
		}
	}
	// A rejection settles like its single-dispatch twin: one not-ok
	// placement, which the batch's successful siblings may immediately
	// reset. Either way it must never quarantine an otherwise healthy node.
	if nd := pool.nodes[0]; nd.fails > 1 || nd.dead {
		t.Fatalf("rejection settle diverged from single dispatch: fails=%d dead=%v", nd.fails, nd.dead)
	}
}
