// Dispatch-overhead benchmarks: the same trial measured through the
// in-process runner and through the Pool over a loopback-HTTP evald
// node. The pair quantifies what one network hop costs per trial — the
// baseline the BENCH_*.json trajectory tracks for the distributed plane.
package dispatch_test

import (
	"testing"

	"repro/internal/dispatch"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
)

// benchMeasure drives one fresh (cache-disabled) single-rep measurement
// per iteration: the propose→format→dispatch→simulate→decode path with
// the memoization layer out of the way, so the transport is what's timed.
func benchMeasure(b *testing.B, run runner.Runner) {
	b.Helper()
	cfg := flags.NewConfig(flags.NewRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := run.Measure(cfg, 1)
		if m.Failed {
			b.Fatalf("measurement failed: %s: %s", m.Failure, m.FailureMessage)
		}
	}
}

// BenchmarkDispatchInProcess is the floor: the same trial with no
// transport at all.
func BenchmarkDispatchInProcess(b *testing.B) {
	ip := runner.NewInProcess(jvmsim.New(), profileOf(b, "fop"))
	ip.DisableCache = true
	benchMeasure(b, ip)
}

// BenchmarkDispatchLoopback measures the full remote path: JSON encode,
// loopback HTTP to a real evald handler on a real socket, evaluate,
// JSON decode. The delta against BenchmarkDispatchInProcess is the
// per-trial dispatch overhead.
func BenchmarkDispatchLoopback(b *testing.B) {
	_, evs := startFleet(b, 1)
	pool, err := dispatch.NewPool(profileOf(b, "fop"), evs...)
	if err != nil {
		b.Fatal(err)
	}
	pool.DisableCache = true
	benchMeasure(b, pool)
}

// BenchmarkDispatchLoopback3Nodes spreads the same fresh trials across a
// three-node fleet, exercising shard placement and in-flight accounting
// alongside the wire cost.
func BenchmarkDispatchLoopback3Nodes(b *testing.B) {
	_, evs := startFleet(b, 3)
	pool, err := dispatch.NewPool(profileOf(b, "fop"), evs...)
	if err != nil {
		b.Fatal(err)
	}
	pool.DisableCache = true
	benchMeasure(b, pool)
}

// BenchmarkDispatchBatch16 ships 16 distinct fresh trials per
// evaluate-batch round trip to the same loopback node. ns/op stays
// per-trial (the counter advances by the batch width per MeasureBatch),
// so the number is directly comparable to BenchmarkDispatchLoopback: the
// delta over BenchmarkDispatchInProcess is the per-trial transport
// overhead, which batching must amortize.
func BenchmarkDispatchBatch16(b *testing.B) {
	_, evs := startFleet(b, 1)
	pool, err := dispatch.NewPool(profileOf(b, "fop"), evs...)
	if err != nil {
		b.Fatal(err)
	}
	pool.DisableCache = true
	pool.Batch = 16
	reg := flags.NewRegistry()
	cfgs := make([]*flags.Config, 16)
	const mb = int64(1) << 20
	for i := range cfgs {
		c := flags.NewConfig(reg)
		c.SetInt("MaxHeapSize", (256+64*int64(i))*mb)
		cfgs[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += len(cfgs) {
		for _, m := range pool.MeasureBatch(cfgs, 1) {
			if m.Failed {
				b.Fatalf("measurement failed: %s: %s", m.Failure, m.FailureMessage)
			}
		}
	}
}
