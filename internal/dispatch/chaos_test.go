// Node-kill matrix: sessions survive evald node deaths — real socket
// closes and injected flaps alike — by silent re-dispatch, degrading to
// best-so-far only when the whole fleet is gone, without losing or
// double-counting a trial.
package dispatch_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/faultinject"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// TestKillOneNodeByteIdentical kills one of three nodes mid-session (a
// real socket close with trials still to come) and demands the session's
// bytes be indistinguishable from the in-process run: re-dispatch is
// invisible to the virtual economy.
func TestKillOneNodeByteIdentical(t *testing.T) {
	const (
		bench  = "fop"
		seed   = int64(19)
		budget = 600.0
	)
	servers, evs := startFleet(t, 3)
	local := runSession(t, bench, "hierarchical", seed, budget, 1, inProcessRunner(t, bench))

	tracer := telemetry.NewTracer(1 << 14)
	pool, err := dispatch.NewPool(profileOf(t, bench), evs...)
	if err != nil {
		t.Fatal(err)
	}
	pool.Trace = tracer
	s, err := core.NewSearcher("hierarchical")
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	sess := &core.Session{
		Runner: pool, Searcher: s, BudgetSeconds: budget, Seed: seed,
		Trace: tracer,
		OnProgress: func(tp core.TracePoint) {
			if !killed && tp.Trial >= 4 {
				killed = true
				servers[1].CloseClientConnections()
				servers[1].Close()
			}
		},
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatalf("session with killed node: %v", err)
	}
	if !killed {
		t.Fatal("kill never armed — session too short to prove anything")
	}
	if got, want := outcomeFingerprint(t, out), local.fingerprint; got != want {
		t.Fatalf("node death leaked into the outcome\nwith kill:  %s\nin-process: %s", got, want)
	}
}

// TestKillAllNodesDegradesToBestSoFar closes the whole fleet mid-session:
// every further trial exhausts placement as a transient node-down
// failure, and the session ends degraded with the best-so-far answer —
// trials neither lost nor double-counted.
func TestKillAllNodesDegradesToBestSoFar(t *testing.T) {
	const (
		bench  = "fop"
		seed   = int64(5)
		budget = 3000.0
	)
	servers, evs := startFleet(t, 2)
	pool, err := dispatch.NewPool(profileOf(t, bench), evs...)
	if err != nil {
		t.Fatal(err)
	}
	pool.MaxTries = 4 // keep exhaustion cheap against closed sockets
	s, err := core.NewSearcher("hillclimb")
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	sess := &core.Session{
		Runner: pool, Searcher: s, BudgetSeconds: budget, Seed: seed,
		MaxTrials: 12,
		OnProgress: func(tp core.TracePoint) {
			if !killed && tp.Trial >= 3 {
				killed = true
				for _, ts := range servers {
					ts.CloseClientConnections()
					ts.Close()
				}
			}
		},
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatalf("session should degrade, not error: %v", err)
	}
	if !killed {
		t.Fatal("fleet kill never armed")
	}
	if out.Best == nil {
		t.Fatal("degraded session should still carry the best-so-far config")
	}
	if out.TransientFailures == 0 {
		t.Error("trials against a dead fleet should surface as transient failures")
	}
	seen := make(map[int]bool)
	for _, tp := range out.Trace {
		if seen[tp.Trial] {
			t.Fatalf("trial %d observed twice — double-counted across the fleet death", tp.Trial)
		}
		seen[tp.Trial] = true
	}
}

// TestNodeFlapsDuringHedgeByteIdentical runs the full robustness stack —
// straggler hedging under the chaos layer's "node-flaps" scenario, whose
// node-down component flaps placements through the dispatch FaultHook —
// and demands byte-identity with the in-process run under the same plan.
// Injected node deaths re-dispatch at zero virtual cost, so the hedged,
// straggling, flapping session reads exactly like the local one.
func TestNodeFlapsDuringHedgeByteIdentical(t *testing.T) {
	const (
		bench  = "fop"
		seed   = int64(23)
		budget = 900.0
	)
	plan, err := faultinject.ParsePlan("node-flaps")
	if err != nil {
		t.Fatal(err)
	}
	if plan.NodeDown <= 0 || plan.Straggle <= 0 {
		t.Fatalf("node-flaps scenario lost its faults: %+v", plan)
	}

	run := func(wrap func() runner.Runner) string {
		s, err := core.NewSearcher("anneal")
		if err != nil {
			t.Fatal(err)
		}
		chaos := faultinject.New(wrap(), plan, seed)
		sess := &core.Session{
			Runner: chaos, Searcher: s, BudgetSeconds: budget, Seed: seed,
			Hedge: &core.HedgePolicy{},
		}
		out, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return outcomeFingerprint(t, out)
	}

	local := run(func() runner.Runner {
		return runner.NewInProcess(jvmsim.New(), profileOf(t, bench))
	})
	_, evs := startFleet(t, 3)
	dist := run(func() runner.Runner {
		pool, err := dispatch.NewPool(profileOf(t, bench), evs...)
		if err != nil {
			t.Fatal(err)
		}
		pool.FaultHook = plan.NodeDownHook(seed)
		return pool
	})
	if dist != local {
		t.Fatalf("flapping fleet diverged from in-process chaos run\ndistributed: %s\nin-process:  %s", dist, local)
	}
}
