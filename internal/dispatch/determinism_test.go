// Differential determinism suite: the distributed evaluation plane is
// proven byte-equivalent to the in-process runner. For every built-in
// searcher, a fixed-seed session run against a fleet of real evald
// processes (httptest servers running the evald handler over sockets)
// must produce the same convergence trace, the same checkpoint file
// bytes, and the same final report as the same session run in-process.
package dispatch_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/evald"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// startFleet boots n evald nodes on real sockets and returns Remote
// evaluators pointed at them. Callers may close individual servers
// mid-run to simulate node death.
func startFleet(t testing.TB, n int) ([]*httptest.Server, []dispatch.Evaluator) {
	t.Helper()
	servers := make([]*httptest.Server, n)
	evs := make([]dispatch.Evaluator, n)
	for i := range servers {
		name := "node" + string(rune('0'+i))
		ts := httptest.NewServer(evald.New(evald.Config{Node: name}))
		t.Cleanup(ts.Close)
		servers[i] = ts
		evs[i] = dispatch.NewRemote(strings.TrimPrefix(ts.URL, "http://"))
	}
	return servers, evs
}

func profileOf(t testing.TB, bench string) *workload.Profile {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no workload %s", bench)
	}
	return p
}

// artifacts are the byte-comparable outputs of one session.
type artifacts struct {
	fingerprint string
	trace       []byte
	ckpt        []byte
}

// runSession runs one fixed-seed session with every observable output
// captured: the structured event trace (wired to both the runner and the
// session), an every-trial checkpoint, and a flattened outcome report.
func runSession(t *testing.T, bench, searcher string, seed int64, budget float64, workers int, wire func(tr *telemetry.Tracer) runner.Runner) artifacts {
	t.Helper()
	tracer := telemetry.NewTracer(1 << 14)
	run := wire(tracer)
	s, err := core.NewSearcher(searcher)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.ckpt")
	keeper := checkpoint.NewKeeper(path, 1, nil)
	keeper.SyncWrites = true
	sess := &core.Session{
		Runner:        run,
		Searcher:      s,
		BudgetSeconds: budget,
		Seed:          seed,
		Workers:       workers,
		Trace:         tracer,
		Checkpoint:    keeper,
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatalf("session (%s): %v", searcher, err)
	}
	if err := keeper.Close(); err != nil {
		t.Fatalf("keeper: %v", err)
	}
	ckpt, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	var buf bytes.Buffer
	tracer.Flush()
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return artifacts{fingerprint: outcomeFingerprint(t, out), trace: buf.Bytes(), ckpt: ckpt}
}

// outcomeFingerprint flattens the deterministic parts of an outcome for
// byte comparison (mirror of the core package's own differential helper).
func outcomeFingerprint(t *testing.T, out *core.Outcome) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Workload, Searcher, BestKey    string
		DefaultWall, BestWall, Elapsed float64
		Trials, Failures, CacheHits    int
		Flakes, Attempts, Transients   int
		Degraded                       bool
		Trace                          []core.TracePoint
		History                        []core.AttemptRecord
		BaseM, BestM                   runner.Measurement
		ImprovementPct, Speedup        float64
	}{
		Workload: out.Workload, Searcher: out.Searcher, BestKey: out.Best.Key(),
		DefaultWall: out.DefaultWall, BestWall: out.BestWall, Elapsed: out.Elapsed,
		Trials: out.Trials, Failures: out.Failures, CacheHits: out.CacheHits,
		Flakes: out.Flakes, Attempts: out.Attempts, Transients: out.TransientFailures,
		Degraded: out.Degraded,
		Trace:    out.Trace, History: out.AttemptHistory,
		BaseM: out.BaseMeasurement, BestM: out.BestMeasurement,
		ImprovementPct: out.ImprovementPct, Speedup: out.Speedup,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func inProcessRunner(t *testing.T, bench string) func(tr *telemetry.Tracer) runner.Runner {
	return func(tr *telemetry.Tracer) runner.Runner {
		ip := runner.NewInProcess(jvmsim.New(), profileOf(t, bench))
		ip.Trace = tr
		return ip
	}
}

func poolRunner(t *testing.T, bench string, evs []dispatch.Evaluator) func(tr *telemetry.Tracer) runner.Runner {
	return func(tr *telemetry.Tracer) runner.Runner {
		pool, err := dispatch.NewPool(profileOf(t, bench), evs...)
		if err != nil {
			t.Fatal(err)
		}
		pool.Trace = tr
		return pool
	}
}

func assertIdentical(t *testing.T, label string, local, dist artifacts) {
	t.Helper()
	if dist.fingerprint != local.fingerprint {
		t.Errorf("%s: outcome diverged\ndistributed: %s\nin-process:  %s", label, dist.fingerprint, local.fingerprint)
	}
	if !bytes.Equal(dist.trace, local.trace) {
		t.Errorf("%s: event traces diverged (%d vs %d bytes)", label, len(dist.trace), len(local.trace))
	}
	if !bytes.Equal(dist.ckpt, local.ckpt) {
		t.Errorf("%s: checkpoint files diverged (%d vs %d bytes)", label, len(dist.ckpt), len(local.ckpt))
	}
}

// TestDifferentialSearcherMatrix is the headline equivalence proof: every
// built-in searcher, fixed seed, in-process vs two local evald processes.
func TestDifferentialSearcherMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is socket-heavy")
	}
	const (
		bench  = "fop"
		seed   = int64(42)
		budget = 600.0
	)
	_, evs := startFleet(t, 2)
	for _, searcher := range core.SearcherNames() {
		searcher := searcher
		t.Run(searcher, func(t *testing.T) {
			local := runSession(t, bench, searcher, seed, budget, 1, inProcessRunner(t, bench))
			dist := runSession(t, bench, searcher, seed, budget, 1, poolRunner(t, bench, evs))
			assertIdentical(t, searcher, local, dist)
		})
	}
}

// TestDifferentialParallelWorkers holds equivalence under the parallel
// evaluation loop, where trials are genuinely concurrent on the fleet.
func TestDifferentialParallelWorkers(t *testing.T) {
	const (
		bench  = "h2"
		seed   = int64(7)
		budget = 900.0
	)
	_, evs := startFleet(t, 3)
	local := runSession(t, bench, "hillclimb", seed, budget, 3, inProcessRunner(t, bench))
	dist := runSession(t, bench, "hillclimb", seed, budget, 3, poolRunner(t, bench, evs))
	assertIdentical(t, "hillclimb/3-workers", local, dist)
}
