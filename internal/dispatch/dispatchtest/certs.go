// Package dispatchtest generates throwaway TLS material for the wire
// security tests and drills: a self-signed CA plus loopback leaf
// certificates it signs. Everything is written as PEM files so the same
// material drives in-process tls.Config tests and the CLI flags of real
// autotune/evald processes. Keys are fresh ECDSA P-256 per call — cheap
// to mint, useless outside the test that minted them.
package dispatchtest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"time"
)

// CA is a throwaway certificate authority.
type CA struct {
	// File is the PEM bundle peers load as their -tls-ca.
	File string

	cert *x509.Certificate
	key  *ecdsa.PrivateKey
}

// NewCA mints a self-signed CA named name and writes its PEM bundle into
// dir as <name>.pem.
func NewCA(dir, name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	file := filepath.Join(dir, name+".pem")
	if err := writePEM(file, "CERTIFICATE", der); err != nil {
		return nil, err
	}
	return &CA{File: file, cert: cert, key: key}, nil
}

// Issue signs a loopback leaf certificate (127.0.0.1, ::1, localhost) for
// both server and client use and writes <name>.pem / <name>-key.pem into
// dir, returning the two paths.
func (ca *CA) Issue(dir, name string) (certFile, keyFile string, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return "", "", err
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return "", "", err
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: name},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		DNSNames:     []string{"localhost"},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return "", "", err
	}
	certFile = filepath.Join(dir, name+".pem")
	if err := writePEM(certFile, "CERTIFICATE", der); err != nil {
		return "", "", err
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return "", "", err
	}
	keyFile = filepath.Join(dir, name+"-key.pem")
	if err := writePEM(keyFile, "EC PRIVATE KEY", keyDER); err != nil {
		return "", "", err
	}
	return certFile, keyFile, nil
}

func writePEM(path, kind string, der []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := pem.Encode(f, &pem.Block{Type: kind, Bytes: der}); err != nil {
		f.Close()
		return fmt.Errorf("encode %s: %w", path, err)
	}
	return f.Close()
}
