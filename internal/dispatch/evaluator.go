// Package dispatch is the distributed evaluation plane: it extracts the
// trial-dispatch seam of internal/runner into a transport-agnostic
// Evaluator interface (dispatch a keyed trial, get a measurement or a
// typed failure) and builds a fleet Pool on top of it — sharded dispatch
// with work-stealing, per-node in-flight accounting, heartbeats, circuit
// breakers, and node-death re-dispatch — that plugs into core.Session as
// an ordinary runner.Runner.
//
// The determinism contract: a measurement is a pure function of
// (config, benchmark, repBase, reps, timeout, noise) — runner.EvalConfig —
// and never of which node computed it. Node deaths are therefore handled
// *inside* a single attempt at zero virtual cost: the trial is silently
// re-dispatched with the same repBase to another live node, because the
// failed placement never ran anywhere. A fixed-seed session produces
// byte-identical traces, checkpoints, and reports whether trials ran
// in-process, on one node, or on a flapping fleet — the virtual economy
// models the JVM farm, not our transport.
package dispatch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Evaluator is the transport seam: one evaluation attempt in, one
// measurement (or typed failure) out. Implementations must be safe for
// concurrent use.
type Evaluator interface {
	// Name identifies the node for accounting and diagnostics.
	Name() string
	// Evaluate performs the attempt described by req. A returned error
	// means the placement failed (node unreachable, shed, or the request
	// was refused) and carries the classification; the measurement's own
	// failures (crashes, timeouts) travel inside TrialResult.
	Evaluate(ctx context.Context, req *TrialRequest) (*TrialResult, error)
}

// Eval is the transport-independent evaluation core shared by the Local
// evaluator and the evald server: validate, parse the config, verify the
// key, and measure via runner.EvalConfig under the request's noise model.
// It rejects with *RequestError — never panics — on any bogus input.
func Eval(prof *workload.Profile, reg *flags.Registry, req *TrialRequest) (*TrialResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if prof == nil || prof.Name != req.Benchmark {
		return nil, reject(CodeBadBenchmark, "dispatch: benchmark %q not served here", req.Benchmark)
	}
	// Parse into pooled scratch: the config lives only for this call (the
	// simulator reads it and retains nothing), so recycling it keeps the
	// registry-wide value arrays — the dominant per-trial allocation —
	// off the evaluation hot path.
	cfg := reg.AcquireConfig()
	defer reg.ReleaseConfig(cfg)
	if err := req.ParseConfigInto(cfg); err != nil {
		return nil, err
	}
	// Drift sessions ship the phase shift with every request: the node
	// derives the shifted profile exactly as a local runner would, so the
	// measurement stays a pure function of the request alone.
	if req.Shift != nil {
		shifted, err := req.Shift.Apply(prof)
		if err != nil {
			return nil, reject(CodeBadPayload, "dispatch: %v", err)
		}
		prof = shifted
	}
	noise := req.Noise
	if noise < 0 {
		noise = jvmsim.DefaultNoise
	}
	sim := &jvmsim.Simulator{Machine: jvmsim.DefaultMachine(), NoiseRelStdDev: noise}
	m := runner.EvalConfig(sim, prof, cfg, req.RepBase, req.Reps, req.TimeoutSeconds)
	return &TrialResult{Measurement: m}, nil
}

// EvalBatch is the transport-independent batch core shared by Local and
// the evald server: every trial evaluates independently (and concurrently
// — batch wall time tracks the slowest trial, not the sum), and a
// per-trial rejection becomes that entry's envelope so one bogus trial
// never condemns its siblings.
func EvalBatch(prof *workload.Profile, reg *flags.Registry, req *BatchRequest) *BatchResult {
	out := &BatchResult{Entries: make([]BatchEntry, len(req.Trials))}
	// Bounded workers pulling from a shared index counter, not one
	// goroutine per trial: the evaluation call tree is deep enough that a
	// fresh goroutine pays stack growth on every trial, which at batch
	// width dominates the work itself. A worker amortizes that growth
	// across all the trials it drains, and extra workers beyond the CPU
	// count buy nothing for a compute-bound simulator.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(req.Trials) {
		workers = len(req.Trials)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Trials) {
					return
				}
				res, err := Eval(prof, reg, &req.Trials[i])
				if err != nil {
					env := &ErrorEnvelope{Error: err.Error(), Code: CodeInternal}
					var re *RequestError
					if errors.As(err, &re) {
						env.Code = re.Code
					}
					out.Entries[i] = BatchEntry{Error: env}
					continue
				}
				out.Entries[i] = BatchEntry{Result: res}
			}
		}()
	}
	wg.Wait()
	return out
}

// Local is the in-process Evaluator: the same evaluation core the evald
// server runs, minus the HTTP hop. It exists so the Pool's dispatch
// machinery (sharding, stealing, re-dispatch, fleet accounting) is
// testable and usable without sockets, and serves as the differential
// oracle the remote path is proven against.
type Local struct {
	// Label names the node; defaults to "local".
	Label string
	// Prof is the profile served.
	Prof *workload.Profile

	reg *flags.Registry
}

// NewLocal builds a local evaluator for prof.
func NewLocal(prof *workload.Profile, label string) *Local {
	if label == "" {
		label = "local"
	}
	return &Local{Label: label, Prof: prof, reg: flags.NewRegistry()}
}

// Name implements Evaluator.
func (l *Local) Name() string { return l.Label }

// Evaluate implements Evaluator.
func (l *Local) Evaluate(_ context.Context, req *TrialRequest) (*TrialResult, error) {
	res, err := Eval(l.Prof, l.reg, req)
	if err != nil {
		return nil, err
	}
	res.Node = l.Label
	return res, nil
}

// EvaluateBatch implements BatchEvaluator, so the pool's batched waves
// work without sockets (and the differential suite can prove them
// byte-identical to single dispatch in-memory).
func (l *Local) EvaluateBatch(_ context.Context, req *BatchRequest) (*BatchResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	res := EvalBatch(l.Prof, l.reg, req)
	res.Node = l.Label
	for i := range res.Entries {
		if res.Entries[i].Result != nil {
			res.Entries[i].Result.Node = l.Label
		}
	}
	return res, nil
}
