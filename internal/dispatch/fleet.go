package dispatch

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/telemetry"
)

// Fleet state rides the same write-ahead journal machinery the job farm
// uses (checkpoint.Journal: CRC-framed, fsynced appends, salvaged-tail
// recovery), so a killed tuned resumes with its fleet view intact: which
// nodes it knew, which were last seen dead, and which trials were in
// flight on whom when the process died. Records are small JSON payloads:
//
//	{"op":"register","node":N}   node N configured statically (-nodes)
//	{"op":"join","node":N,"addr":A}  N registered itself at runtime from A
//	{"op":"leave","node":N}      N's liveness lease expired
//	{"op":"drain","node":N}      N deregistered itself (graceful decommission)
//	{"op":"dead","node":N}       N was quarantined (consecutive failures)
//	{"op":"alive","node":N}      N answered again after a quarantine
//	{"op":"dispatch","node":N,"key":K}  trial K placed on N
//	{"op":"settle","node":N,"key":K}    placement resolved (ok or failed)
//
// A dispatch without a matching settle is an orphan: the controller died
// while the trial was in flight. Orphans are adopted on recovery — their
// ownership is cleared and the session's own checkpoint replay decides
// whether the trial re-runs — and surfaced via Pool.Orphans so nothing is
// silently lost or double-counted. Join/leave/drain give a restarted
// controller the last-known dynamic membership (FleetView.Members): nodes
// that joined and never drained are re-dialed on resume without waiting
// for them to re-register.

const (
	opRegister = "register"
	opJoin     = "join"
	opLeave    = "leave"
	opDrain    = "drain"
	opDead     = "dead"
	opAlive    = "alive"
	opDispatch = "dispatch"
	opSettle   = "settle"
)

type fleetRecord struct {
	Op   string `json:"op"`
	Node string `json:"node,omitempty"`
	Addr string `json:"addr,omitempty"`
	Key  string `json:"key,omitempty"`
}

// Fleet is the durable fleet-state journal attached to a Pool.
type Fleet struct {
	j   *checkpoint.Journal
	tel *telemetry.Registry
}

// FleetView is the state reconstructed from a journal on open.
type FleetView struct {
	// Known lists every node ever registered, sorted.
	Known []string
	// Dead marks nodes whose last membership record was "dead".
	Dead map[string]bool
	// Members maps dynamically joined nodes (join without a later leave or
	// drain) to the address they advertised — the live membership the
	// controller last knew, re-dialed on resume.
	Members map[string]string
	// Inflight maps orphaned trial keys to the node that owned them when
	// the journal went quiet.
	Inflight map[string]string
}

// OpenFleet opens (or creates) the fleet journal at path and replays it
// into a view. Torn tails are salvaged by the journal layer.
func OpenFleet(path string, tel *telemetry.Registry) (*Fleet, *FleetView, error) {
	j, payloads, err := checkpoint.OpenJournal(path, tel)
	if err != nil {
		return nil, nil, fmt.Errorf("dispatch: open fleet journal: %w", err)
	}
	view := &FleetView{Dead: make(map[string]bool), Members: make(map[string]string), Inflight: make(map[string]string)}
	known := make(map[string]bool)
	for _, p := range payloads {
		var rec fleetRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			// The journal layer already CRC-checked the frame; a payload
			// that still fails to parse is from a future protocol. Skip it
			// rather than refuse the whole fleet.
			tel.Counter("dispatch_fleet_bad_records_total").Inc()
			continue
		}
		switch rec.Op {
		case opRegister:
			known[rec.Node] = true
		case opJoin:
			known[rec.Node] = true
			view.Members[rec.Node] = rec.Addr
			delete(view.Dead, rec.Node)
		case opLeave, opDrain:
			delete(view.Members, rec.Node)
		case opDead:
			known[rec.Node] = true
			view.Dead[rec.Node] = true
		case opAlive:
			known[rec.Node] = true
			delete(view.Dead, rec.Node)
		case opDispatch:
			view.Inflight[rec.Key] = rec.Node
		case opSettle:
			delete(view.Inflight, rec.Key)
		}
	}
	for n := range known {
		view.Known = append(view.Known, n)
	}
	sort.Strings(view.Known)
	return &Fleet{j: j, tel: tel}, view, nil
}

// append writes one record. Fleet durability is best-effort advisory
// state — a failed append must never fail a measurement — so errors are
// counted, not propagated.
func (f *Fleet) append(rec fleetRecord) {
	if f == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err == nil {
		err = f.j.Append(payload)
	}
	if err != nil {
		f.tel.Counter("dispatch_fleet_append_errors_total").Inc()
	}
}

func (f *Fleet) register(node string)   { f.append(fleetRecord{Op: opRegister, Node: node}) }
func (f *Fleet) join(node, addr string) { f.append(fleetRecord{Op: opJoin, Node: node, Addr: addr}) }
func (f *Fleet) leave(node string)      { f.append(fleetRecord{Op: opLeave, Node: node}) }
func (f *Fleet) drain(node string)      { f.append(fleetRecord{Op: opDrain, Node: node}) }
func (f *Fleet) dead(node string)       { f.append(fleetRecord{Op: opDead, Node: node}) }
func (f *Fleet) alive(node string)      { f.append(fleetRecord{Op: opAlive, Node: node}) }
func (f *Fleet) dispatch(node, key string) {
	f.append(fleetRecord{Op: opDispatch, Node: node, Key: key})
}
func (f *Fleet) settle(node, key string) { f.append(fleetRecord{Op: opSettle, Node: node, Key: key}) }

// Close closes the underlying journal.
func (f *Fleet) Close() error {
	if f == nil {
		return nil
	}
	return f.j.Close()
}
