package dispatch

import (
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestFleetReplay: membership, death, and in-flight ownership written by
// one process are reconstructed by the next.
func TestFleetReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	tel := telemetry.New()
	f, view, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(view.Known) != 0 || len(view.Inflight) != 0 {
		t.Fatalf("fresh journal should replay empty, got %+v", view)
	}
	f.register("a")
	f.register("b")
	f.dead("b")
	f.dispatch("a", "k1")
	f.dispatch("b", "k2")
	f.settle("a", "k1")
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	f2, view, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f2.Close()
	if len(view.Known) != 2 || view.Known[0] != "a" || view.Known[1] != "b" {
		t.Fatalf("known = %v, want [a b]", view.Known)
	}
	if !view.Dead["b"] || view.Dead["a"] {
		t.Fatalf("dead = %v, want only b", view.Dead)
	}
	if len(view.Inflight) != 1 || view.Inflight["k2"] != "b" {
		t.Fatalf("inflight = %v, want k2 owned by b", view.Inflight)
	}
}

// TestFleetAliveClearsDeath: a revival record supersedes an earlier
// death.
func TestFleetAliveClearsDeath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	tel := telemetry.New()
	f, _, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.register("a")
	f.dead("a")
	f.alive("a")
	f.Close()

	f2, view, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f2.Close()
	if view.Dead["a"] {
		t.Fatal("alive record should clear the death")
	}
}

// TestFleetSkipsBadRecords: a CRC-valid frame whose payload fails to
// parse (a future protocol generation) is counted and skipped, not fatal.
func TestFleetSkipsBadRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	tel := telemetry.New()
	j, _, err := checkpoint.OpenJournal(path, tel)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if err := j.Append([]byte(`{"op":"register","node":"a"}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.Append([]byte(`this is not json`)); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	j.Close()

	f, view, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatalf("fleet open over mixed journal: %v", err)
	}
	defer f.Close()
	if len(view.Known) != 1 || view.Known[0] != "a" {
		t.Fatalf("good record lost: %v", view.Known)
	}
	if tel.Counter("dispatch_fleet_bad_records_total").Value() != 1 {
		t.Error("bad record should be counted")
	}
}

// TestAttachFleetAdoptsOrphans: a dispatch with no settle from a dead
// controller is adopted — ownership cleared, surfaced via Orphans, and
// absent from the next replay.
func TestAttachFleetAdoptsOrphans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.journal")
	tel := telemetry.New()
	f, _, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.register("a")
	f.register("b")
	f.dead("b")
	f.dispatch("a", "trial-x")
	f.Close() // controller "dies" with trial-x in flight

	prof, ok := workload.ByName("fop")
	if !ok {
		t.Fatal("no fop workload")
	}
	pool, err := NewPool(prof, NewLocal(prof, "a"), NewLocal(prof, "b"))
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	pool.Telemetry = tel
	f2, view, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	pool.AttachFleet(f2, view)
	if got := pool.Orphans(); len(got) != 1 || got[0] != "trial-x" {
		t.Fatalf("orphans = %v, want [trial-x]", got)
	}
	if !pool.nodes[1].dead || pool.nodes[1].until.IsZero() {
		t.Fatal("node last seen dead should start quarantined")
	}
	if pool.nodes[0].dead {
		t.Fatal("healthy node should start in rotation")
	}
	if tel.Counter("dispatch_orphans_adopted_total").Value() != 1 {
		t.Error("adoption should be counted")
	}
	pool.Close()

	f3, view, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer f3.Close()
	if len(view.Inflight) != 0 {
		t.Fatalf("adopted orphans should be settled in the journal, still have %v", view.Inflight)
	}
}

// TestFleetNilSafe: a pool without a fleet journal must never crash on
// the journaling paths.
func TestFleetNilSafe(t *testing.T) {
	var f *Fleet
	f.register("a")
	f.dispatch("a", "k")
	f.settle("a", "k")
	if err := f.Close(); err != nil {
		t.Fatalf("nil fleet close: %v", err)
	}
}
