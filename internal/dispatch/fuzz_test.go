package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// FuzzDecodeRegisterRequest holds the registration decoder's contract:
// arbitrary bytes either yield a validated request or a typed
// *RequestError, and any accepted request survives a re-encode round trip
// unchanged. The seed corpus under testdata/fuzz covers the
// malformed-registration taxonomy (missing addr, oversized names, bogus
// TTLs, unknown fields, trailing data).
func FuzzDecodeRegisterRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte(``),
		[]byte(`{`),
		[]byte(`null`),
		[]byte(`{"addr":"10.0.0.1:7421"}`),
		[]byte(`{"addr":"10.0.0.1:7421","node":"n1","ttl_seconds":30}`),
		[]byte(`{"node":"orphan"}`),
		[]byte(`{"addr":"10.0.0.1:7421","ttl_seconds":-5}`),
		[]byte(`{"addr":"10.0.0.1:7421","ttl_seconds":999999}`),
		[]byte(`{"addr":"10.0.0.1:7421","surprise":true}`),
		[]byte(`{"addr":"10.0.0.1:7421"}{"addr":"x"}`),
		[]byte("\x00\x01\xff"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		q, err := DecodeRegisterRequest(body)
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("rejection is not a *RequestError: %v", err)
			}
			return
		}
		out, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("accepted registration fails to re-encode: %v", err)
		}
		again, err := DecodeRegisterRequest(out)
		if err != nil {
			t.Fatalf("re-encoded registration rejected: %v (%s)", err, out)
		}
		if *q != *again {
			t.Fatalf("round trip changed the registration: %+v != %+v", q, again)
		}
	})
}

// FuzzDecodeBatchRequest holds the batch decoder's envelope contract:
// arbitrary bytes either yield a bounded batch or a typed *RequestError —
// per-trial validity is deliberately NOT the envelope's business, so an
// accepted batch may still carry trials a node will reject individually.
func FuzzDecodeBatchRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte(``),
		[]byte(`{}`),
		[]byte(`{"trials":[]}`),
		[]byte(`{"trials":[{"key":"","benchmark":"fop","reps":1,"noise":-1}]}`),
		[]byte(`{"trials":[{"key":"a","benchmark":"fop","reps":1,"noise":-1},{"key":"b","benchmark":"fop","reps":2,"noise":-1}]}`),
		[]byte(`{"trials":[{"key":"","benchmark":"quake3","reps":-9,"noise":-1}]}`),
		[]byte(`{"trials":null}`),
		[]byte(`{"trials":[{"key":"k","benchmark":"fop","args":["-Xmx256m","-XX:+UseParallelGC"],"rep_base":5,"reps":3,"timeout_seconds":2.5,"noise":0.05}]}`),
		[]byte(`{"trials":[{"key":"k","benchmark":"fop","args":[],"rep_base":0,"reps":1,"noise":-1}]}`),
		[]byte(`{"trials":[{"key":"k","benchmark":"fop","reps":1,"noise":-1,"phase":2}]}`),
		[]byte(`{"trials":[{"key":"k","benchmark":"fop","reps":1,"noise":-1,"shift":{"alloc":1.5,"live":0.8}}]}`),
		[]byte(`{"trials":[{"key":"k","benchmark":"fop","rep_base":1.5,"reps":1,"noise":-1}]}`),
		[]byte(`{"trials":[{"key":"über","benchmark":"fop","reps":1,"noise":1e-3}]}`),
		[]byte(`{"trials":[{}],"surprise":1}`),
		[]byte(`{"trials":[{"key":""}]}{"trials":[]}`),
		[]byte("\xff\xfe"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		// The hand-rolled scanner may bail on anything, but when it
		// accepts, the strict reflection decoder must agree byte for byte
		// on the result (wirefast.go's contract, request side).
		if fast, ok := fastDecodeBatchRequest(body); ok {
			dec := json.NewDecoder(bytes.NewReader(body))
			dec.DisallowUnknownFields()
			var slow BatchRequest
			if err := dec.Decode(&slow); err != nil {
				t.Fatalf("fast path accepted %q but encoding/json rejects it: %v", body, err)
			}
			if dec.More() {
				t.Fatalf("fast path accepted %q despite trailing data", body)
			}
			if !reflect.DeepEqual(fast, &slow) {
				t.Fatalf("decoders disagree on %q:\nfast: %+v\nslow: %+v", body, fast, &slow)
			}
		}
		b, err := DecodeBatchRequest(body)
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("rejection is not a *RequestError: %v", err)
			}
			return
		}
		if len(b.Trials) == 0 || len(b.Trials) > MaxBatchTrials {
			t.Fatalf("accepted batch outside bounds: %d trials", len(b.Trials))
		}
		out, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("accepted batch fails to re-encode: %v", err)
		}
		if _, err := DecodeBatchRequest(out); err != nil {
			t.Fatalf("re-encoded batch rejected: %v (%s)", err, out)
		}
		// The appender must agree with the reflection encoder: its bytes
		// decode back to the very same batch (wireenc.go's contract).
		if enc, ok := encodeBatchRequest(b); ok {
			again, err := DecodeBatchRequest(enc)
			if err != nil {
				t.Fatalf("appender output rejected: %v (%s)", err, enc)
			}
			if !reflect.DeepEqual(b, again) {
				t.Fatalf("appender round trip changed the batch:\nin:  %+v\nout: %+v", b, again)
			}
		}
	})
}

// FuzzRegistrationEnvelope throws arbitrary bytes at the controller's
// fleet endpoints and holds the membership wire contract: every response
// is 200 with a RegisterResponse (register), 200 (deregister), or 4xx
// with a well-formed ErrorEnvelope — never a panic, never a 5xx for a bad
// input, and a rejected registration never grows the fleet.
func FuzzRegistrationEnvelope(f *testing.F) {
	seeds := []struct {
		path string
		body []byte
	}{
		{RegisterPath, []byte(`{"addr":"127.0.0.1:1","node":"n1","ttl_seconds":30}`)},
		{RegisterPath, []byte(`{"node":"orphan"}`)},
		{RegisterPath, []byte(`{"addr":"127.0.0.1:1","bogus":true}`)},
		{RegisterPath, []byte(`{`)},
		{DeregisterPath, []byte(`{"node":"n1"}`)},
		{DeregisterPath, []byte(`{}`)},
		{DeregisterPath, []byte(`]][[`)},
	}
	for _, s := range seeds {
		f.Add(s.path == RegisterPath, s.body)
	}
	prof := fuzzProfile(f)
	f.Fuzz(func(t *testing.T, register bool, body []byte) {
		pool, err := NewDynamicPool(prof)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMembership(pool, nil)
		path := DeregisterPath
		if register {
			path = RegisterPath
		}
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		m.Handler().ServeHTTP(w, r)
		switch {
		case w.Code == http.StatusOK:
			if register {
				var res RegisterResponse
				if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
					t.Fatalf("200 with non-RegisterResponse body %q: %v", w.Body, err)
				}
				if res.LeaseSeconds <= 0 {
					t.Fatalf("granted a non-positive lease: %+v", res)
				}
				if len(pool.Nodes()) != 1 {
					t.Fatalf("accepted registration joined %d nodes, want 1", len(pool.Nodes()))
				}
			}
		case w.Code >= 400 && w.Code < 500:
			var env ErrorEnvelope
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatalf("%d with non-envelope body %q: %v", w.Code, w.Body, err)
			}
			if env.Code == "" || env.Error == "" {
				t.Fatalf("%d envelope missing fields: %+v", w.Code, env)
			}
			if register && len(pool.Nodes()) != 0 {
				t.Fatalf("rejected registration still grew the fleet: %v", pool.Nodes())
			}
		default:
			t.Fatalf("bogus payload produced status %d (body %q) — want 200 or 4xx", w.Code, w.Body)
		}
	})
}

func fuzzProfile(f *testing.F) *workload.Profile {
	p, ok := workload.ByName("fop")
	if !ok {
		f.Fatal("no workload fop")
	}
	return p
}

// FuzzFastBatchResultDecode holds wirefast.go's contract: the hand-rolled
// batch-response scanner may bail on anything (that just costs the
// reflection fallback), but whenever it ACCEPTS a body, encoding/json
// must accept it too and produce a deeply equal BatchResult. Deviations
// in either the value decoded or the accept/reject verdict are bugs.
func FuzzFastBatchResultDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte(``),
		[]byte(`{}`),
		[]byte(`{"entries":[]}`),
		[]byte(`{"node":"n1","entries":[{"result":{"node":"n1","measurement":{"Key":"MaxHeapSize=268435456","Walls":[1.25],"Mean":1.25,"Pauses":[0.004],"MeanPause":0.004,"CostSeconds":3.25,"Attempts":1}}}]}`),
		[]byte(`{"node":"n1","entries":[{"error":{"error":"evald: worker crashed","code":"internal"}}]}`),
		[]byte(`{"entries":[{"result":{"measurement":{"Failed":true,"Failure":"crash","FailureMessage":"exit 134","CostSeconds":0.5,"Attempts":2,"Flakes":1,"Transient":true}}},{"error":{"error":"busy","code":"busy","retry_after_seconds":3}}]}`),
		[]byte(`{"entries":[{"result":{"measurement":{"Key":"quoted \"key\""}}}]}`),
		[]byte(`{"entries":[{"result":{"measurement":{"Attempts":3.5}}}]}`),
		[]byte(`{"entries":[{"result":{"measurement":{"Mean":+3}}}]}`),
		[]byte(`{"entries":[{"result":{"measurement":{"Walls":[01]}}}]}`),
		[]byte(`{"entries":[{"result":{"measurement":{"Key":"über"}}}]}`),
		[]byte(`{"entries":null}`),
		[]byte(`{"entries":[]} trailing`),
		[]byte("\xff\xfe"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fast, ok := fastDecodeBatchResult(data)
		if !ok {
			return
		}
		var wire wireBatchResult
		if err := decodeBody(data, &wire); err != nil {
			t.Fatalf("fast path accepted %q but encoding/json rejects it: %v", data, err)
		}
		slow := batchFromWire(&wire)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("fast path decoded %q as\n%+v\nencoding/json as\n%+v", data, fast, slow)
		}
		// And the encoder differential (wireenc.go's contract): when the
		// appender can represent the decoded result, its bytes and the
		// reflection encoder's bytes must decode to the same value — the
		// two encoders may format differently (float spellings), but a
		// reader can never tell which one served the response.
		enc, ok := encodeBatchResult(fast)
		if !ok {
			return
		}
		var buf bytes.Buffer
		if err := stdEncodeBatchResult(&buf, fast); err != nil {
			t.Fatalf("appender encoded %+v but encoding/json cannot: %v", fast, err)
		}
		fromFast, err := decodeBatchResult(enc)
		if err != nil {
			t.Fatalf("appender output rejected: %v (%s)", err, enc)
		}
		fromStd, err := decodeBatchResult(buf.Bytes())
		if err != nil {
			t.Fatalf("reflection output rejected: %v (%s)", err, buf.Bytes())
		}
		if !reflect.DeepEqual(fromFast, fromStd) {
			t.Fatalf("encoders disagree after round trip:\nappender:   %+v\nreflection: %+v", fromFast, fromStd)
		}
	})
}
