// Membership matrix: fixed-seed sessions stay byte-identical to the
// in-process run while the fleet churns underneath them — nodes joining
// through real registration POSTs mid-hedge, draining mid-batch,
// re-registering after a flap — and while the batched transport regroups
// trials into waves of any size. Placement is transport; the session's
// bytes are the proof.
package dispatch_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/evald"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// postMembership POSTs one membership payload (register or deregister) to
// the controller's fleet endpoint and fails the test on any non-200.
func postMembership(t *testing.T, base, path string, payload any) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
}

// startEvaldNode boots one named evald node and returns its server and
// dialable address.
func startEvaldNode(t *testing.T, name string) (*httptest.Server, string) {
	t.Helper()
	ts := httptest.NewServer(evald.New(evald.Config{Node: name}))
	t.Cleanup(ts.Close)
	return ts, strings.TrimPrefix(ts.URL, "http://")
}

// dynamicFixture is a controller-side membership stack for one session: a
// dynamic pool fed by a Membership handler on a real socket.
type dynamicFixture struct {
	pool *dispatch.Pool
	base string
}

func newDynamicFixture(t *testing.T, bench string, batch int, evs ...dispatch.Evaluator) *dynamicFixture {
	t.Helper()
	pool, err := dispatch.NewDynamicPool(profileOf(t, bench), evs...)
	if err != nil {
		t.Fatal(err)
	}
	pool.Batch = batch
	pool.Telemetry = telemetry.New()
	m := dispatch.NewMembership(pool, nil)
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(ts.Close)
	return &dynamicFixture{pool: pool, base: ts.URL}
}

func (f *dynamicFixture) register(t *testing.T, name, addr string) {
	postMembership(t, f.base, dispatch.RegisterPath, &dispatch.RegisterRequest{Addr: addr, Node: name})
}

func (f *dynamicFixture) deregister(t *testing.T, name string) {
	postMembership(t, f.base, dispatch.DeregisterPath, &dispatch.DeregisterRequest{Node: name})
}

// TestDifferentialBatchedDispatch: the batched transport at several batch
// sizes against the parallel evaluation loop, byte-identical to the
// in-process session — trace, checkpoint, and outcome alike.
func TestDifferentialBatchedDispatch(t *testing.T) {
	const (
		bench  = "h2"
		seed   = int64(11)
		budget = 900.0
	)
	local := runSession(t, bench, "hillclimb", seed, budget, 3, inProcessRunner(t, bench))
	_, evs := startFleet(t, 2)
	for _, batch := range []int{1, 3, 16} {
		dist := runSession(t, bench, "hillclimb", seed, budget, 3, func(tr *telemetry.Tracer) runner.Runner {
			pool, err := dispatch.NewPool(profileOf(t, bench), evs...)
			if err != nil {
				t.Fatal(err)
			}
			pool.Batch = batch
			pool.Trace = tr
			return pool
		})
		assertIdentical(t, fmt.Sprintf("batch=%d", batch), local, dist)
	}
}

// TestJoinDuringHedgeByteIdentical: a session starts on a one-node
// dynamic fleet with straggler hedging armed; a second node registers
// itself mid-run through the real fleet endpoint. The join must widen the
// fleet without moving a byte of the outcome.
func TestJoinDuringHedgeByteIdentical(t *testing.T) {
	const (
		bench  = "fop"
		seed   = int64(31)
		budget = 600.0
	)
	local := func() string {
		s, err := core.NewSearcher("anneal")
		if err != nil {
			t.Fatal(err)
		}
		sess := &core.Session{
			Runner: inProcessRunner(t, bench)(nil), Searcher: s,
			BudgetSeconds: budget, Seed: seed, Hedge: &core.HedgePolicy{},
		}
		out, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return outcomeFingerprint(t, out)
	}()

	_, addr0 := startEvaldNode(t, "m0")
	_, addr1 := startEvaldNode(t, "m1")
	fx := newDynamicFixture(t, bench, 0)
	fx.register(t, "m0", addr0)

	s, err := core.NewSearcher("anneal")
	if err != nil {
		t.Fatal(err)
	}
	joined := false
	sess := &core.Session{
		Runner: fx.pool, Searcher: s, BudgetSeconds: budget, Seed: seed,
		Hedge: &core.HedgePolicy{},
		OnProgress: func(tp core.TracePoint) {
			if !joined && tp.Trial >= 4 {
				joined = true
				fx.register(t, "m1", addr1)
			}
		},
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !joined {
		t.Fatal("join never armed — session too short to prove anything")
	}
	if got := fx.pool.Nodes(); len(got) != 2 {
		t.Fatalf("fleet after join = %v, want 2 nodes", got)
	}
	if got := outcomeFingerprint(t, out); got != local {
		t.Fatalf("mid-hedge join leaked into the outcome\nwith join:  %s\nin-process: %s", got, local)
	}
}

// TestDrainDuringBatchByteIdentical: a two-node fleet serving batched
// waves loses one node to a graceful drain (deregistration) while waves
// are in flight. The drained node's share salvages onto the survivor
// under the same repBase — byte-identical outcome.
func TestDrainDuringBatchByteIdentical(t *testing.T) {
	const (
		bench  = "h2"
		seed   = int64(17)
		budget = 900.0
	)
	local := func() string {
		s, err := core.NewSearcher("hillclimb")
		if err != nil {
			t.Fatal(err)
		}
		sess := &core.Session{
			Runner: inProcessRunner(t, bench)(nil), Searcher: s,
			BudgetSeconds: budget, Seed: seed, Workers: 3,
		}
		out, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return outcomeFingerprint(t, out)
	}()

	_, addr0 := startEvaldNode(t, "b0")
	_, addr1 := startEvaldNode(t, "b1")
	fx := newDynamicFixture(t, bench, 8)
	fx.register(t, "b0", addr0)
	fx.register(t, "b1", addr1)

	s, err := core.NewSearcher("hillclimb")
	if err != nil {
		t.Fatal(err)
	}
	drained := false
	sess := &core.Session{
		Runner: fx.pool, Searcher: s, BudgetSeconds: budget, Seed: seed, Workers: 3,
		OnProgress: func(tp core.TracePoint) {
			if !drained && tp.Trial >= 4 {
				drained = true
				fx.deregister(t, "b1")
			}
		},
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !drained {
		t.Fatal("drain never armed — session too short to prove anything")
	}
	if got := fx.pool.Nodes(); len(got) != 1 || got[0] != "b0" {
		t.Fatalf("fleet after drain = %v, want [b0]", got)
	}
	if got := outcomeFingerprint(t, out); got != local {
		t.Fatalf("mid-batch drain leaked into the outcome\nwith drain: %s\nin-process: %s", got, local)
	}
}

// TestReRegisterAfterFlapByteIdentical: a node's socket dies mid-session
// (breaker quarantines it), then the node comes back at a NEW address and
// re-registers under its old name. The re-registration revives the member
// in place — and none of it moves the session's bytes.
func TestReRegisterAfterFlapByteIdentical(t *testing.T) {
	const (
		bench  = "fop"
		seed   = int64(37)
		budget = 900.0
	)
	local := func() string {
		s, err := core.NewSearcher("hierarchical")
		if err != nil {
			t.Fatal(err)
		}
		sess := &core.Session{
			Runner: inProcessRunner(t, bench)(nil), Searcher: s,
			BudgetSeconds: budget, Seed: seed,
		}
		out, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return outcomeFingerprint(t, out)
	}()

	srv0, addr0 := startEvaldNode(t, "f0")
	_, addr1 := startEvaldNode(t, "f1")
	fx := newDynamicFixture(t, bench, 0)
	fx.register(t, "f0", addr0)
	fx.register(t, "f1", addr1)

	s, err := core.NewSearcher("hierarchical")
	if err != nil {
		t.Fatal(err)
	}
	flapped, revived := false, false
	sess := &core.Session{
		Runner: fx.pool, Searcher: s, BudgetSeconds: budget, Seed: seed,
		OnProgress: func(tp core.TracePoint) {
			switch {
			case !flapped && tp.Trial >= 3:
				flapped = true
				srv0.CloseClientConnections()
				srv0.Close()
			case flapped && !revived && tp.Trial >= 6:
				revived = true
				_, again := startEvaldNode(t, "f0")
				fx.register(t, "f0", again)
			}
		},
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !flapped || !revived {
		t.Fatalf("flap script incomplete: flapped=%v revived=%v", flapped, revived)
	}
	if fx.pool.Telemetry.Counter("dispatch_node_rejoined_total").Value() == 0 {
		t.Error("re-registration under a known name should count as a rejoin")
	}
	if got := fx.pool.Nodes(); len(got) != 2 {
		t.Fatalf("fleet after flap+rejoin = %v, want 2 nodes", got)
	}
	if got := outcomeFingerprint(t, out); got != local {
		t.Fatalf("flap + re-register leaked into the outcome\nwith flap:  %s\nin-process: %s", got, local)
	}
}
