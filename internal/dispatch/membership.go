package dispatch

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Dynamic fleet membership. PR 7 wired the fleet by hand (-nodes a,b,c);
// here nodes introduce themselves: evald -join <controller> POSTs a
// registration to the controller's fleet endpoint, re-POSTs it
// periodically as a liveness lease, and DELETEs itself (deregister) when
// draining. The controller side is Membership: it turns registrations
// into Pool.Join calls (dialing the advertised address), expires silent
// nodes after their lease lapses (Pool.Leave, journaled "leave"), and
// removes draining nodes immediately (journaled "drain") so their
// in-flight remainder re-dispatches at zero virtual cost instead of
// waiting out a heartbeat timeout. Registration is authenticated exactly
// like evaluation: mutual TLS at the transport, shared bearer token at
// the request — an unknown peer cannot vote itself into the fleet.

// RegisterPath is the controller's fleet registration endpoint.
const RegisterPath = "/v1/fleet/register"

// DeregisterPath is the controller's fleet deregistration endpoint.
const DeregisterPath = "/v1/fleet/deregister"

// Registration protocol bounds.
const (
	// MaxRegisterBytes bounds a registration request body.
	MaxRegisterBytes = 1 << 16
	// MaxAddrLen bounds the advertised address length.
	MaxAddrLen = 512
	// MaxLeaseSeconds caps the lease a node may request.
	MaxLeaseSeconds = 3600
)

// RegisterRequest is one node announcing (or renewing) itself.
type RegisterRequest struct {
	// Addr is the address controllers dial to reach the node's evaluate
	// endpoints ("host:port" or a full base URL). Required.
	Addr string `json:"addr"`
	// Node names the node; defaults to Addr. The name is the fleet-wide
	// identity: re-registering under a known name renews its lease (and
	// revives it after a flap) rather than adding a duplicate.
	Node string `json:"node,omitempty"`
	// TTLSeconds is the lease the node asks for; the controller clamps it
	// and answers with the granted lease. Zero means the controller's
	// default.
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

// RegisterResponse grants a lease: the node must re-register within
// LeaseSeconds or the controller declares it gone.
type RegisterResponse struct {
	Node         string `json:"node"`
	LeaseSeconds int    `json:"lease_seconds"`
}

// DeregisterRequest is a draining node removing itself from the fleet.
type DeregisterRequest struct {
	Node string `json:"node"`
}

// Validate checks the registration's self-contained invariants.
func (q *RegisterRequest) Validate() error {
	switch {
	case q.Addr == "":
		return reject(CodeBadPayload, "dispatch: registration missing addr")
	case len(q.Addr) > MaxAddrLen:
		return reject(CodeBadPayload, "dispatch: addr exceeds %d bytes", MaxAddrLen)
	case len(q.Node) > MaxAddrLen:
		return reject(CodeBadPayload, "dispatch: node name exceeds %d bytes", MaxAddrLen)
	case q.TTLSeconds < 0 || q.TTLSeconds > MaxLeaseSeconds:
		return reject(CodeBadPayload, "dispatch: ttl %d outside [0, %d]", q.TTLSeconds, MaxLeaseSeconds)
	}
	return nil
}

// DecodeRegisterRequest parses and validates a registration body. Unknown
// fields fail closed, like every other wire decoder here.
func DecodeRegisterRequest(data []byte) (*RegisterRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var q RegisterRequest
	if err := dec.Decode(&q); err != nil {
		return nil, reject(CodeBadPayload, "dispatch: decode registration: %v", err)
	}
	if dec.More() {
		return nil, reject(CodeBadPayload, "dispatch: trailing data after registration")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// DecodeDeregisterRequest parses and validates a deregistration body.
func DecodeDeregisterRequest(data []byte) (*DeregisterRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var q DeregisterRequest
	if err := dec.Decode(&q); err != nil {
		return nil, reject(CodeBadPayload, "dispatch: decode deregistration: %v", err)
	}
	if dec.More() {
		return nil, reject(CodeBadPayload, "dispatch: trailing data after deregistration")
	}
	if q.Node == "" {
		return nil, reject(CodeBadPayload, "dispatch: deregistration missing node")
	}
	if len(q.Node) > MaxAddrLen {
		return nil, reject(CodeBadPayload, "dispatch: node name exceeds %d bytes", MaxAddrLen)
	}
	return &q, nil
}

// Membership is the controller-side registry: it serves the registration
// endpoints, maps leases onto a dynamic Pool, and expires silent nodes.
type Membership struct {
	// LeaseTTL is the default (and maximum granted) liveness lease;
	// zero means 15s.
	LeaseTTL time.Duration
	// Sweep is the expiry janitor's period; zero means LeaseTTL/3.
	Sweep time.Duration
	// Sec authenticates registrations and supplies the dial credentials
	// for joined nodes; nil means open and plaintext.
	Sec *Security
	// Telemetry receives the dispatch_membership_* counters.
	Telemetry *telemetry.Registry
	// Dial builds the evaluator for a registered node: name is the node's
	// fleet-wide identity (the evaluator's Name must answer it, or the
	// lease table and the pool would disagree about who is who), addr the
	// address it advertised. Defaults to NewSecureRemote under Sec.
	Dial func(name, addr string) (Evaluator, error)

	pool *Pool

	mu     sync.Mutex
	leases map[string]time.Time
	stop   chan struct{}
	done   chan struct{}
}

// NewMembership builds a registry feeding pool, which should be a dynamic
// pool (NewDynamicPool) so joins can land on an empty fleet.
func NewMembership(pool *Pool, sec *Security) *Membership {
	return &Membership{Sec: sec, pool: pool, leases: make(map[string]time.Time)}
}

func (m *Membership) leaseTTL() time.Duration {
	if m.LeaseTTL > 0 {
		return m.LeaseTTL
	}
	return 15 * time.Second
}

func (m *Membership) dial(name, addr string) (Evaluator, error) {
	if m.Dial != nil {
		return m.Dial(name, addr)
	}
	rem, err := NewSecureRemote(addr, m.Sec)
	if err != nil {
		return nil, err
	}
	// The registered name is the node's fleet-wide identity: pool member,
	// lease key, and journal records must all agree on it, or a drain
	// could never find the node it is draining.
	rem.NodeName = name
	return rem, nil
}

// Handler returns the HTTP handler serving the registration endpoints;
// mount it on the controller's fleet listener.
func (m *Membership) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(RegisterPath, m.handleRegister)
	mux.HandleFunc(DeregisterPath, m.handleDeregister)
	return mux
}

func (m *Membership) writeError(w http.ResponseWriter, status int, err error) {
	env := ErrorEnvelope{Error: err.Error(), Code: CodeInternal}
	var re *RequestError
	if errors.As(err, &re) {
		env.Code = re.Code
	}
	writeJSON(w, status, env)
}

// gate runs the shared method/auth/body admission for both endpoints and
// returns the request body, or nil after writing the rejection.
func (m *Membership) gate(w http.ResponseWriter, r *http.Request) []byte {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorEnvelope{Error: "dispatch: POST only", Code: CodeMethod})
		return nil
	}
	if !m.Sec.Authorize(r) {
		m.counter("dispatch_membership_unauthorized_total").Inc()
		writeJSON(w, http.StatusUnauthorized, ErrorEnvelope{Error: "dispatch: missing or invalid credentials", Code: CodeUnauthorized})
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxRegisterBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorEnvelope{Error: "dispatch: read body: " + err.Error(), Code: CodeBadPayload})
		return nil
	}
	return data
}

func (m *Membership) handleRegister(w http.ResponseWriter, r *http.Request) {
	data := m.gate(w, r)
	if data == nil {
		return
	}
	q, err := DecodeRegisterRequest(data)
	if err != nil {
		m.writeError(w, http.StatusBadRequest, err)
		return
	}
	name := q.Node
	if name == "" {
		name = q.Addr
	}
	ev, err := m.dial(name, q.Addr)
	if err != nil {
		m.writeError(w, http.StatusBadRequest, reject(CodeBadPayload, "dispatch: dial %s: %v", q.Addr, err))
		return
	}
	ttl := m.leaseTTL()
	if q.TTLSeconds > 0 {
		if asked := time.Duration(q.TTLSeconds) * time.Second; asked < ttl {
			ttl = asked
		}
	}
	m.mu.Lock()
	_, renewal := m.leases[name]
	m.leases[name] = time.Now().Add(ttl)
	m.mu.Unlock()
	if !renewal {
		m.counter("dispatch_membership_registers_total").Inc()
	}
	// Join is idempotent for a known name (lease renewal), and revives the
	// node after a flap — re-registration is the node's proof of life.
	m.pool.Join(ev, q.Addr)
	writeJSON(w, http.StatusOK, RegisterResponse{Node: name, LeaseSeconds: int(ttl / time.Second)})
}

func (m *Membership) handleDeregister(w http.ResponseWriter, r *http.Request) {
	data := m.gate(w, r)
	if data == nil {
		return
	}
	q, err := DecodeDeregisterRequest(data)
	if err != nil {
		m.writeError(w, http.StatusBadRequest, err)
		return
	}
	m.mu.Lock()
	delete(m.leases, q.Node)
	m.mu.Unlock()
	m.pool.Leave(q.Node, true)
	m.counter("dispatch_membership_drains_total").Inc()
	writeJSON(w, http.StatusOK, struct{}{})
}

// Expire removes every node whose lease lapsed at or before now,
// returning the expired names. The janitor calls it periodically; tests
// call it directly.
func (m *Membership) Expire(now time.Time) []string {
	m.mu.Lock()
	var gone []string
	for name, until := range m.leases {
		if now.After(until) {
			gone = append(gone, name)
			delete(m.leases, name)
		}
	}
	m.mu.Unlock()
	for _, name := range gone {
		m.pool.Leave(name, false)
		m.counter("dispatch_membership_expired_total").Inc()
	}
	return gone
}

// Start launches the lease-expiry janitor; Close stops it.
func (m *Membership) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	sweep := m.Sweep
	if sweep <= 0 {
		sweep = m.leaseTTL() / 3
	}
	stop, done := make(chan struct{}), make(chan struct{})
	m.stop, m.done = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(sweep)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				m.Expire(time.Now())
			}
		}
	}()
}

// Serve binds the registration endpoints on addr (with the security
// config's TLS material, when present), starts the lease janitor, and
// returns the bound address — addr may use port 0 — plus a shutdown func
// that stops both.
func (m *Membership) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("dispatch: fleet listen: %w", err)
	}
	tcfg, err := m.Sec.ServerTLS()
	if err != nil {
		ln.Close()
		return "", nil, err
	}
	if tcfg != nil {
		ln = tls.NewListener(ln, tcfg)
	}
	srv := &http.Server{Handler: m.Handler()}
	go srv.Serve(ln)
	m.Start()
	return ln.Addr().String(), func() error {
		m.Close()
		return srv.Close()
	}, nil
}

// Close stops the janitor.
func (m *Membership) Close() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (m *Membership) counter(name string) *telemetry.Counter {
	return m.Telemetry.Counter(name)
}

// Joiner is the evald-side membership client: it registers the node with
// the controller, re-registers every Interval to keep the lease alive,
// and deregisters on drain.
type Joiner struct {
	// Controller is the controller's fleet endpoint base URL (or bare
	// "host:port"; the security config decides the scheme).
	Controller string
	// Advertise is the address controllers should dial for this node.
	Advertise string
	// Node names the node; defaults to Advertise.
	Node string
	// Interval is the re-registration period; zero means 5s.
	Interval time.Duration
	// Sec supplies TLS material and the bearer token.
	Sec *Security

	clientOnce sync.Once
	client     *http.Client
	clientErr  error
}

func (j *Joiner) base() string {
	b := strings.TrimRight(j.Controller, "/")
	if !strings.Contains(b, "://") {
		b = j.Sec.Scheme() + "://" + b
	}
	return b
}

func (j *Joiner) interval() time.Duration {
	if j.Interval > 0 {
		return j.Interval
	}
	return 5 * time.Second
}

func (j *Joiner) httpClient() (*http.Client, error) {
	j.clientOnce.Do(func() {
		j.client, j.clientErr = j.Sec.HTTPClient()
	})
	return j.client, j.clientErr
}

func (j *Joiner) post(ctx context.Context, path string, payload any) error {
	client, err := j.httpClient()
	if err != nil {
		return err
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, j.base()+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	j.Sec.Bearer(hr)
	resp, err := client.Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, MaxRegisterBytes))
	if resp.StatusCode != http.StatusOK {
		var env ErrorEnvelope
		if json.Unmarshal(data, &env) == nil && env.Error != "" {
			return fmt.Errorf("dispatch: controller answered %d [%s]: %s", resp.StatusCode, env.Code, env.Error)
		}
		return fmt.Errorf("dispatch: controller answered %d", resp.StatusCode)
	}
	return nil
}

// Register performs one registration (join or lease renewal).
func (j *Joiner) Register(ctx context.Context) error {
	ttl := 3 * j.interval()
	return j.post(ctx, RegisterPath, &RegisterRequest{
		Addr: j.Advertise, Node: j.Node, TTLSeconds: int(ttl / time.Second),
	})
}

// Deregister removes the node from the fleet (graceful drain).
func (j *Joiner) Deregister(ctx context.Context) error {
	name := j.Node
	if name == "" {
		name = j.Advertise
	}
	return j.post(ctx, DeregisterPath, &DeregisterRequest{Node: name})
}

// Run re-registers every Interval until ctx is done. Transient controller
// outages are retried on the next tick — the lease TTL (3× the interval)
// rides out two missed renewals.
func (j *Joiner) Run(ctx context.Context) {
	tick := time.NewTicker(j.interval())
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			_ = j.Register(ctx)
		}
	}
}

// writeJSON writes one JSON response with the envelope conventions of the
// evald server.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
