package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// localDial wires a Membership to in-process evaluators: registrations
// "dial" a Local instead of a socket, so the registry's lifecycle is
// testable without HTTP servers behind it.
func localDial(t testing.TB, bench string) func(name, addr string) (Evaluator, error) {
	t.Helper()
	prof := poolProfile(t, bench)
	return func(name, _ string) (Evaluator, error) {
		return NewLocal(prof, name), nil
	}
}

func newDynamicTestPool(t testing.TB, bench string, evs ...Evaluator) *Pool {
	t.Helper()
	p, err := NewDynamicPool(poolProfile(t, bench), evs...)
	if err != nil {
		t.Fatalf("NewDynamicPool: %v", err)
	}
	p.Telemetry = telemetry.New()
	return p
}

func postJSON(t *testing.T, h http.Handler, path string, payload any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// TestMembershipRegisterRenewDrainExpire walks one node through the whole
// membership lifecycle: register (join), re-register (lease renewal, no
// duplicate), deregister (drain, immediate removal), and a second node
// whose silence expires its lease.
func TestMembershipRegisterRenewDrainExpire(t *testing.T) {
	pool := newDynamicTestPool(t, "fop")
	m := NewMembership(pool, nil)
	m.Dial = localDial(t, "fop")
	m.Telemetry = pool.Telemetry
	h := m.Handler()

	// Join.
	w := postJSON(t, h, RegisterPath, &RegisterRequest{Addr: "10.0.0.1:1", Node: "n1", TTLSeconds: 10}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	var resp RegisterResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Node != "n1" || resp.LeaseSeconds <= 0 {
		t.Fatalf("bogus lease grant: %+v", resp)
	}
	if got := pool.Nodes(); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("pool after join: %v", got)
	}

	// Renewal must not duplicate the node.
	w = postJSON(t, h, RegisterPath, &RegisterRequest{Addr: "10.0.0.1:1", Node: "n1", TTLSeconds: 10}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("renewal: %d %s", w.Code, w.Body)
	}
	if got := pool.Nodes(); len(got) != 1 {
		t.Fatalf("renewal duplicated the node: %v", got)
	}

	// A second node joins, then goes silent: Expire reaps only it.
	postJSON(t, h, RegisterPath, &RegisterRequest{Addr: "10.0.0.2:1", Node: "n2", TTLSeconds: 5}, nil)
	if got := pool.Nodes(); len(got) != 2 {
		t.Fatalf("pool after second join: %v", got)
	}
	gone := m.Expire(time.Now().Add(7 * time.Second))
	if len(gone) != 1 || gone[0] != "n2" {
		t.Fatalf("expire reaped %v, want [n2]", gone)
	}
	if got := pool.Nodes(); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("pool after expiry: %v", got)
	}

	// Drain: immediate removal, no lease wait.
	w = postJSON(t, h, DeregisterPath, &DeregisterRequest{Node: "n1"}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("deregister: %d %s", w.Code, w.Body)
	}
	if got := pool.Nodes(); len(got) != 0 {
		t.Fatalf("pool after drain: %v", got)
	}
	if pool.Telemetry.Counter("dispatch_membership_drains_total").Value() != 1 {
		t.Error("drain should be counted")
	}
	if pool.Telemetry.Counter("dispatch_membership_expired_total").Value() != 1 {
		t.Error("expiry should be counted")
	}
}

// TestMembershipAuthFailClosed: with a token configured, registration and
// deregistration without (or with wrong) credentials are 401
// CodeUnauthorized envelopes and change nothing — an unknown peer cannot
// vote itself into, or a victim out of, the fleet.
func TestMembershipAuthFailClosed(t *testing.T) {
	pool := newDynamicTestPool(t, "fop")
	m := NewMembership(pool, &Security{Token: "s3cret"})
	m.Dial = localDial(t, "fop")
	h := m.Handler()

	reg := &RegisterRequest{Addr: "10.0.0.1:1", Node: "mallory"}
	for _, hdr := range []map[string]string{
		nil,
		{"Authorization": "Bearer wrong"},
		{"Authorization": "s3cret"}, // missing Bearer prefix
	} {
		w := postJSON(t, h, RegisterPath, reg, hdr)
		if w.Code != http.StatusUnauthorized {
			t.Fatalf("register with %v: %d, want 401", hdr, w.Code)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Code != CodeUnauthorized {
			t.Fatalf("401 without a CodeUnauthorized envelope: %s", w.Body)
		}
		if len(pool.Nodes()) != 0 {
			t.Fatal("unauthenticated registration mutated the fleet")
		}
	}

	// The right token is accepted; then a credential-less drain of the
	// legitimate node must bounce.
	w := postJSON(t, h, RegisterPath, reg, map[string]string{"Authorization": "Bearer s3cret"})
	if w.Code != http.StatusOK {
		t.Fatalf("authorized register: %d %s", w.Code, w.Body)
	}
	w = postJSON(t, h, DeregisterPath, &DeregisterRequest{Node: "mallory"}, nil)
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated deregister: %d, want 401", w.Code)
	}
	if len(pool.Nodes()) != 1 {
		t.Fatal("unauthenticated deregistration mutated the fleet")
	}
}

// TestJoinerLifecycle drives the evald-side client against a real
// controller endpoint: register joins the pool, deregister drains it
// immediately — the node never waits out a heartbeat or lease timeout.
func TestJoinerLifecycle(t *testing.T) {
	pool := newDynamicTestPool(t, "fop")
	m := NewMembership(pool, &Security{Token: "tok"})
	m.Dial = localDial(t, "fop")
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	j := &Joiner{Controller: ts.URL, Advertise: "10.9.9.9:1", Node: "joiner", Sec: &Security{Token: "tok"}}
	if err := j.Register(context.Background()); err != nil {
		t.Fatalf("register: %v", err)
	}
	if got := pool.Nodes(); len(got) != 1 || got[0] != "joiner" {
		t.Fatalf("pool after join: %v", got)
	}
	if err := j.Deregister(context.Background()); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if got := pool.Nodes(); len(got) != 0 {
		t.Fatalf("drain should remove the node immediately: %v", got)
	}

	// Wrong token: both directions bounce.
	bad := &Joiner{Controller: ts.URL, Advertise: "10.9.9.9:2", Node: "evil", Sec: &Security{Token: "nope"}}
	if err := bad.Register(context.Background()); err == nil {
		t.Fatal("register with wrong token should fail")
	}
	if len(pool.Nodes()) != 0 {
		t.Fatal("rejected registration mutated the fleet")
	}
}

// TestDynamicPoolJoinGraceWait: a dynamic pool whose fleet is momentarily
// empty waits for the first join instead of failing the trial — and the
// measurement that eventually lands is byte-identical to in-process.
func TestDynamicPoolJoinGraceWait(t *testing.T) {
	prof := poolProfile(t, "fop")
	pool := newDynamicTestPool(t, "fop")
	pool.JoinGrace = 5 * time.Second

	go func() {
		time.Sleep(50 * time.Millisecond)
		pool.Join(NewLocal(prof, "latecomer"), "latecomer")
	}()

	ip := runner.NewInProcess(jvmsim.New(), prof)
	cfg := flags.NewConfig(flags.NewRegistry())
	want := ip.Measure(cfg, 2)
	got := pool.Measure(cfg, 2)
	if got.Failed {
		t.Fatalf("trial failed despite a node joining within grace: %+v", got)
	}
	if got.Mean != want.Mean || got.CostSeconds != want.CostSeconds {
		t.Fatalf("late-join measurement diverged: %+v != %+v", got, want)
	}
	if pool.Elapsed() != ip.Elapsed() {
		t.Fatalf("join-grace wait leaked into the virtual clock: %v != %v", pool.Elapsed(), ip.Elapsed())
	}
}

// TestDynamicPoolJoinGraceExpires: no node ever joins, so the trial
// surfaces as the usual transient NodeDownFailure once the grace lapses.
func TestDynamicPoolJoinGraceExpires(t *testing.T) {
	pool := newDynamicTestPool(t, "fop")
	pool.JoinGrace = 50 * time.Millisecond
	pool.MaxTries = 2
	m := pool.Measure(flags.NewConfig(flags.NewRegistry()), 1)
	if !m.Failed || m.Failure != runner.NodeDownFailure {
		t.Fatalf("empty dynamic fleet should exhaust as node-down: %+v", m)
	}
	if !m.Transient {
		t.Fatal("an empty fleet is transient — nodes may still join")
	}
}

// TestPoolJoinRevivesFlappedNode: re-registration under a known name is
// the node's proof of life — the breaker resets and the fresh evaluator
// replaces the dead one.
func TestPoolJoinRevivesFlappedNode(t *testing.T) {
	prof := poolProfile(t, "fop")
	broken := &fakeEval{name: "flappy", fn: func(*TrialRequest) (*TrialResult, error) {
		return nil, &NodeError{Node: "flappy", Err: errors.New("connection refused")}
	}}
	pool := newDynamicTestPool(t, "fop", broken)
	pool.MaxTries = 3
	pool.Retry = runner.RetryPolicy{MaxAttempts: 1}
	pool.JoinGrace = time.Millisecond
	clock := time.Unix(1000, 0)
	pool.now = func() time.Time { return clock }

	cfg := flags.NewConfig(flags.NewRegistry())
	if m := pool.Measure(cfg, 1); !m.Failed {
		t.Fatalf("broken node should exhaust placement: %+v", m)
	}
	if nd := pool.nodes[0]; !nd.dead {
		t.Fatal("consecutive failures should quarantine the node")
	}

	// The node restarts and re-registers under the same name.
	if fresh := pool.Join(NewLocal(prof, "flappy"), "flappy:1"); fresh {
		t.Fatal("re-join under a known name should not report a new node")
	}
	if nd := pool.nodes[0]; nd.dead || nd.fails != 0 {
		t.Fatalf("re-join should revive the breaker: %+v", nd)
	}
	if m := pool.Measure(cfg, 1); m.Failed {
		t.Fatalf("revived node should serve: %+v", m)
	}
	if pool.Telemetry.Counter("dispatch_node_rejoined_total").Value() != 1 {
		t.Error("re-join should be counted")
	}
}

// TestFleetJournalMembershipReplay: join/leave/drain records replay into
// the last-known live membership, so a restarted controller re-dials
// exactly the nodes that were in the fleet when it died.
func TestFleetJournalMembershipReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.fleet")
	f, _, err := OpenFleet(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.join("a", "10.0.0.1:1")
	f.join("b", "10.0.0.2:1")
	f.join("c", "10.0.0.3:1")
	f.leave("a")              // lease expired
	f.drain("b")              // graceful decommission
	f.join("a", "10.0.0.1:9") // a came back at a new address
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, view, err := OpenFleet(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "10.0.0.1:9", "c": "10.0.0.3:1"}
	if len(view.Members) != len(want) {
		t.Fatalf("members %v, want %v", view.Members, want)
	}
	for name, addr := range want {
		if view.Members[name] != addr {
			t.Fatalf("member %s at %q, want %q", name, view.Members[name], addr)
		}
	}
	if !sliceHas(view.Known, "b") {
		t.Error("a drained node should stay known (its trials may be orphaned)")
	}
}

func sliceHas(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestPoolHonorsRetryAfterFloor: a 429 shed with a Retry-After hint
// floors the node's cooldown without advancing the breaker — the node is
// loaded, not broken, and must never be journaled dead for shedding.
func TestPoolHonorsRetryAfterFloor(t *testing.T) {
	prof := poolProfile(t, "fop")
	shed := true
	local := NewLocal(prof, "busy")
	busy := &fakeEval{name: "busy", fn: func(req *TrialRequest) (*TrialResult, error) {
		if shed {
			return nil, &NodeError{Node: "busy", Status: http.StatusTooManyRequests,
				Code: CodeBusy, RetryAfter: 3 * time.Second, Err: errors.New("node shedding load")}
		}
		return local.Evaluate(context.Background(), req)
	}}
	// Put the shedding node at the trial key's shard index, so the first
	// placement is guaranteed to hit it and shed.
	cfg := flags.NewConfig(flags.NewRegistry())
	evs := make([]Evaluator, 2)
	evs[shardOf(cfg.Key(), 2)] = busy
	evs[1-shardOf(cfg.Key(), 2)] = NewLocal(prof, "calm")
	pool := newTestPool(t, "fop", evs...)
	clock := time.Unix(1000, 0)
	pool.now = func() time.Time { return clock }

	if m := pool.Measure(cfg, 1); m.Failed {
		t.Fatalf("shed trial should land on the calm node: %+v", m)
	}
	nd := pool.nodes[0]
	if nd.name != "busy" {
		nd = pool.nodes[1]
	}
	if nd.fails != 0 || nd.dead {
		t.Fatalf("shedding advanced the breaker: fails=%d dead=%v", nd.fails, nd.dead)
	}
	if want := clock.Add(3 * time.Second); !nd.until.Equal(want) {
		t.Fatalf("Retry-After should floor the cooldown: until=%v want=%v", nd.until, want)
	}
	if pool.Telemetry.Counter("dispatch_node_shed_total").Value() == 0 {
		t.Error("shed placements should be counted")
	}

	// Inside the floor the node is skipped; past it, it serves again.
	shed = false
	if nd2 := pool.acquire(cfg.Key() + "x"); nd2 != nil && nd2.name == "busy" {
		t.Fatal("node acquired inside its Retry-After floor")
	} else if nd2 != nil {
		pool.settle(nd2, cfg.Key()+"x", true)
	}
	clock = clock.Add(4 * time.Second)
	if m := pool.Measure(cfg, 2); m.Failed {
		t.Fatalf("recovered node should serve: %+v", m)
	}
}

// TestMembershipServeRoundTrip: the Serve helper binds a real listener,
// serves registrations, and shuts down cleanly.
func TestMembershipServeRoundTrip(t *testing.T) {
	pool := newDynamicTestPool(t, "fop")
	m := NewMembership(pool, nil)
	m.Dial = localDial(t, "fop")
	m.Sweep = time.Hour // keep the janitor quiet; this test is about Serve

	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	j := &Joiner{Controller: addr, Advertise: "10.0.0.5:1", Node: "served"}
	if err := j.Register(context.Background()); err != nil {
		t.Fatalf("register against Serve listener: %v", err)
	}
	if got := pool.Nodes(); len(got) != 1 || got[0] != "served" {
		t.Fatalf("pool after join: %v", got)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := j.Register(context.Background()); err == nil {
		t.Fatal("register should fail after shutdown")
	}
}

// TestFleetStateUnchangedByMembershipOps: the fleet journal file survives
// the OS-level sanity check — records written by membership ops replay
// without salvage warnings on a clean reopen.
func TestFleetStateUnchangedByMembershipOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.fleet")
	tel := telemetry.New()
	f, _, err := OpenFleet(path, tel)
	if err != nil {
		t.Fatal(err)
	}
	f.join("x", "addr:1")
	f.drain("x")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file missing: %v", err)
	}
	if _, view, err := OpenFleet(path, tel); err != nil {
		t.Fatal(err)
	} else if len(view.Members) != 0 {
		t.Fatalf("drained node resurrected on replay: %v", view.Members)
	}
}
