package dispatch

import (
	"strings"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
)

func TestPoolSetPhaseMatchesInProcess(t *testing.T) {
	prof := poolProfile(t, "fop")
	pool := newTestPool(t, "fop", NewLocal(prof, "n0"))
	pool.Noise = 0

	sim := jvmsim.New()
	sim.NoiseRelStdDev = 0
	local := runner.NewInProcess(sim, prof)

	reg := flags.NewRegistry()
	cfg := flags.NewConfig(reg)
	cfg.SetInt("MaxHeapSize", 1<<30)
	timeout0 := pool.TimeoutSeconds
	before := pool.Measure(cfg, 2)

	// An invalid shift fails closed before any node sees it.
	if err := pool.SetPhase(1, jvmsim.PhaseShift{AllocFactor: -1}); err == nil {
		t.Fatal("negative shift factor accepted")
	}

	// Through a real shift, the pool must stay a drop-in for the phase-aware
	// in-process runner: same measurement, same rescaled kill threshold, and
	// a genuine re-measurement (no cross-phase cache hit).
	if err := pool.SetPhase(1, jvmsim.DefaultShift()); err != nil {
		t.Fatal(err)
	}
	if err := local.SetPhase(1, jvmsim.DefaultShift()); err != nil {
		t.Fatal(err)
	}
	eff, err := jvmsim.DefaultShift().Apply(prof)
	if err != nil {
		t.Fatal(err)
	}
	if want := runner.PhaseTimeout(timeout0, jvmsim.New(), prof, eff); pool.TimeoutSeconds != want {
		t.Errorf("pool timeout %g, want rescaled %g", pool.TimeoutSeconds, want)
	}
	pm := pool.Measure(cfg, 2)
	lm := local.Measure(cfg.Clone(), 2)
	if pm.FromCache {
		t.Error("pre-shift measurement served as a post-shift cache hit")
	}
	if pm.Mean != lm.Mean || pm.Mean <= before.Mean {
		t.Errorf("shifted pool mean %g, in-process %g, pre-shift %g", pm.Mean, lm.Mean, before.Mean)
	}

	// Phase 0 restores the base regime and replays the phase-0 cache.
	if err := pool.SetPhase(0, jvmsim.PhaseShift{}); err != nil {
		t.Fatal(err)
	}
	back := pool.Measure(cfg, 2)
	if !back.FromCache || back.Mean != before.Mean {
		t.Error("phase 0 should replay the phase-0 cache")
	}
}

func TestTrialRequestPhaseValidation(t *testing.T) {
	shift := jvmsim.DefaultShift()
	base := func() *TrialRequest {
		return &TrialRequest{Benchmark: "fop", Reps: 1, Noise: -1}
	}
	cases := []struct {
		name string
		mut  func(*TrialRequest)
		want string
	}{
		{"negative phase", func(q *TrialRequest) { q.Phase = -1 }, "out of range"},
		{"huge phase", func(q *TrialRequest) { q.Phase = 1 << 21; q.Shift = &shift }, "out of range"},
		{"phase without shift", func(q *TrialRequest) { q.Phase = 1 }, "without a shift"},
		{"shift without phase", func(q *TrialRequest) { q.Shift = &shift }, "shift without a phase"},
		{"invalid shift", func(q *TrialRequest) {
			q.Phase = 1
			q.Shift = &jvmsim.PhaseShift{AllocFactor: -2}
		}, "alloc"},
	}
	for _, tc := range cases {
		q := base()
		tc.mut(q)
		err := q.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		re, ok := err.(*RequestError)
		if !ok || re.Code != CodeBadPayload {
			t.Errorf("%s: want *RequestError with %s, got %#v", tc.name, CodeBadPayload, err)
			continue
		}
		if !strings.Contains(re.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, re.Error(), tc.want)
		}
	}
	q := base()
	q.Phase = 1
	q.Shift = &shift
	if err := q.Validate(); err != nil {
		t.Errorf("valid phased request rejected: %v", err)
	}
}
