package dispatch

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Pool shards measurement trials across a fleet of Evaluator nodes and
// implements runner.Runner, so core.Session drives a distributed fleet
// exactly as it drives the in-process simulator. Placement is sharded by
// trial key with work-stealing: the key's preferred node takes the trial
// unless another live node has strictly fewer trials in flight. Nodes that
// fail consecutively are quarantined behind a doubling cooldown with
// half-open probes — the same circuit-breaker shape core.QuarantinePolicy
// applies to broken flag subtrees — and a dead node's in-flight trials are
// silently re-dispatched to survivors at zero virtual cost (the failed
// placement never ran anywhere, and measurements are node-independent, so
// the session's bytes cannot tell). Only when every placement attempt is
// exhausted does a trial surface as a transient NodeDownFailure routed
// through the runner retry classes.
//
// Pool implements runner.StateSnapshotter with the exact serialization of
// the in-process runner and reports the in-process determinism
// fingerprint, so checkpoints move freely between local and distributed
// runs. Fleet membership and in-flight ownership are durably journaled
// via AttachFleet. Safe for concurrent use.
type Pool struct {
	// Retry bounds re-attempts of transiently failed measurements; the
	// zero value means the defaults (see runner.RetryPolicy).
	Retry runner.RetryPolicy
	// TimeoutSeconds is the per-repetition harness kill threshold sent
	// with every trial. NewPool defaults it like runner.NewInProcess: 6×
	// the default configuration's wall time.
	TimeoutSeconds float64
	// Noise is the simulator noise level sent with every trial; negative
	// means the simulator default.
	Noise float64
	// DisableCache turns off config-key memoization.
	DisableCache bool
	// MaxNodeFailures is how many consecutive placement failures
	// quarantine a node; values below 1 mean the default, 3.
	MaxNodeFailures int
	// Cooldown is the first quarantine's length, doubling each round up
	// to MaxCooldown. Zero means 250ms / 15s.
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// MaxTries bounds placements per attempt before the trial surfaces as
	// a transient NodeDownFailure; values below 1 mean 8× the fleet size.
	MaxTries int
	// Batch caps trials per evaluate-batch round trip. Zero disables
	// batched transport: MeasureBatch still satisfies the executor's batch
	// seam but degrades to concurrent single-trial placement, which is the
	// reference behavior batching must stay byte-identical to.
	Batch int
	// JoinGrace is how long a placement waits for a first node when a
	// dynamic pool's fleet is momentarily empty (nodes join at runtime;
	// the session may start before the first registration lands). Zero
	// means 10s for dynamic pools. Waiting burns real time only — virtual
	// cost and determinism are untouched.
	JoinGrace time.Duration
	// Telemetry and Trace optionally receive the shared runner_* series
	// plus the dispatch_* fleet counters. When a ChaosRunner wraps this
	// pool, wire them to the chaos layer instead.
	Telemetry *telemetry.Registry
	Trace     *telemetry.Tracer
	// FaultHook, when set, is consulted before every placement and forces
	// a simulated node death when it returns true. The chaos layer's
	// node-down plans plug in here (Plan.NodeDownHook); the schedule is a
	// pure function of (seed, key, try) — deliberately not of the node —
	// so injected flaps are identical at any fleet size.
	FaultHook func(node, key string, try int) bool

	profile *workload.Profile
	now     func() time.Time
	dynamic bool

	mu      sync.Mutex
	nodes   []*node
	fleet   *Fleet
	orphans []string
	elapsed runner.VirtualClock
	reps    map[string]int
	cache   map[string]runner.Measurement
	// phase and shift support phase-shifting workloads (runner.PhaseSetter):
	// the shift travels with every request so any node derives the shifted
	// profile itself. Per-key state above is scoped through runner.PhaseKey,
	// the same convention as the in-process runner, so snapshots stay
	// byte-compatible.
	phase int
	shift jvmsim.PhaseShift
	// timeout0 captures TimeoutSeconds at the first phase shift: phase
	// timeouts rescale from the base-profile threshold (runner.PhaseTimeout)
	// so repeated shifts never compound.
	timeout0    float64
	timeout0Set bool

	hbStop chan struct{}
	hbDone chan struct{}
}

// node is the Pool's view of one evaluator.
type node struct {
	ev   Evaluator
	name string

	inflight int       // trials currently placed here
	fails    int       // consecutive placement failures
	rounds   int       // quarantine rounds survived (cooldown doubling)
	until    time.Time // quarantined until; zero when healthy
	dead     bool      // currently considered dead (journaled)
	evals    uint64    // successful evaluations served
}

// errInjectedNodeDown marks a FaultHook-forced placement failure.
var errInjectedNodeDown = errors.New("dispatch: injected node-down fault")

// NewPool builds a pool over evs measuring prof. At least one evaluator
// is required.
func NewPool(prof *workload.Profile, evs ...Evaluator) (*Pool, error) {
	if len(evs) == 0 {
		return nil, errors.New("dispatch: pool needs at least one evaluator node")
	}
	return newPool(prof, evs)
}

// NewDynamicPool builds a pool whose fleet may start empty and change at
// runtime: nodes enter via Join (the membership registry calls it on
// registration) and leave via Leave (drain or lease expiry). Placements
// against a momentarily empty fleet wait up to JoinGrace for a first node
// instead of failing.
func NewDynamicPool(prof *workload.Profile, evs ...Evaluator) (*Pool, error) {
	p, err := newPool(prof, evs)
	if err != nil {
		return nil, err
	}
	p.dynamic = true
	return p, nil
}

func newPool(prof *workload.Profile, evs []Evaluator) (*Pool, error) {
	if prof == nil {
		return nil, errors.New("dispatch: pool needs a workload profile")
	}
	p := &Pool{
		Noise:   -1,
		profile: prof,
		now:     time.Now,
		reps:    make(map[string]int),
		cache:   make(map[string]runner.Measurement),
	}
	p.TimeoutSeconds = 6 * jvmsim.New().DefaultWall(flags.NewRegistry(), prof, 1)
	seen := make(map[string]bool)
	for _, ev := range evs {
		name := ev.Name()
		if seen[name] {
			return nil, fmt.Errorf("dispatch: duplicate node name %q", name)
		}
		seen[name] = true
		p.nodes = append(p.nodes, &node{ev: ev, name: name})
	}
	return p, nil
}

// Workload implements runner.Runner.
func (p *Pool) Workload() *workload.Profile { return p.profile }

// Elapsed implements runner.Runner.
func (p *Pool) Elapsed() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.elapsed.Seconds()
}

// DeterminismFingerprint implements the core engine's fingerprint hook.
// The pool is byte-equivalent to the in-process runner by construction
// (the differential suite proves it), and the checkpoint fingerprint
// guards determinism inputs, not transport — so a checkpoint written
// under either resumes under the other.
func (p *Pool) DeterminismFingerprint() string { return "*runner.InProcess" }

// Orphans returns the trial keys recovered from the fleet journal as
// in-flight when a previous controller died, sorted. Their ownership has
// been cleared; the session's own checkpoint replay decides whether they
// re-run, so nothing is lost or double-counted.
func (p *Pool) Orphans() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.orphans...)
}

// AttachFleet wires a durable fleet journal (and the view replayed from
// it) into the pool: known-dead nodes start quarantined until a probe
// revives them, orphaned in-flight trials are adopted, and membership for
// new nodes is journaled. Call before the first Measure. The pool owns
// the journal from here; Close closes it.
func (p *Pool) AttachFleet(f *Fleet, view *FleetView) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fleet = f
	known := make(map[string]bool)
	if view != nil {
		for _, n := range view.Known {
			known[n] = true
		}
	}
	t := p.now()
	for _, nd := range p.nodes {
		if !known[nd.name] {
			f.register(nd.name)
		}
		if view != nil && view.Dead[nd.name] {
			// Last seen dead: keep it out of rotation until a heartbeat or
			// half-open placement proves it back.
			nd.dead = true
			nd.until = t.Add(p.cooldown(0))
		}
	}
	if view != nil && len(view.Inflight) > 0 {
		for key, owner := range view.Inflight {
			p.orphans = append(p.orphans, key)
			f.settle(owner, key)
		}
		sort.Strings(p.orphans)
		p.Telemetry.Counter("dispatch_orphans_adopted_total").Add(uint64(len(p.orphans)))
	}
}

// Join adds ev to the fleet at runtime, journaling the membership change.
// A re-join under a known name (a node that flapped and re-registered, or
// one resumed from the fleet journal) swaps in the fresh evaluator and
// revives the breaker rather than duplicating the node. addr is the
// address the node advertised, recorded so a restarted controller can
// re-dial it. Returns true when the node is new to this pool.
func (p *Pool) Join(ev Evaluator, addr string) bool {
	name := ev.Name()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nd := range p.nodes {
		if nd.name != name {
			continue
		}
		nd.ev = ev
		p.reviveLocked(nd)
		p.fleet.join(name, addr)
		p.Telemetry.Counter("dispatch_node_rejoined_total").Inc()
		return false
	}
	p.nodes = append(p.nodes, &node{ev: ev, name: name})
	p.fleet.join(name, addr)
	p.Telemetry.Counter("dispatch_node_joined_total").Inc()
	return true
}

// Leave removes the named node from rotation. drained marks a graceful
// decommission (the node deregistered itself); false means its liveness
// lease expired. Placements already in flight on the node settle normally
// — a drain lets them finish, and a death surfaces as a transport fault
// that re-dispatches the trial at zero virtual cost either way. Returns
// true when the node was present.
func (p *Pool) Leave(name string, drained bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, nd := range p.nodes {
		if nd.name != name {
			continue
		}
		p.nodes = append(p.nodes[:i], p.nodes[i+1:]...)
		if drained {
			p.fleet.drain(name)
			p.Telemetry.Counter("dispatch_node_drained_total").Inc()
		} else {
			p.fleet.leave(name)
			p.Telemetry.Counter("dispatch_node_left_total").Inc()
		}
		return true
	}
	return false
}

// Nodes returns the current fleet's node names, sorted.
func (p *Pool) Nodes() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.nodes))
	for _, nd := range p.nodes {
		names = append(names, nd.name)
	}
	sort.Strings(names)
	return names
}

func (p *Pool) maxNodeFailures() int {
	if p.MaxNodeFailures < 1 {
		return 3
	}
	return p.MaxNodeFailures
}

func (p *Pool) maxTries() int {
	if p.MaxTries >= 1 {
		return p.MaxTries
	}
	p.mu.Lock()
	n := len(p.nodes)
	p.mu.Unlock()
	if n < 1 {
		// A dynamic fleet can be momentarily empty; the budget must still
		// let the join-grace wait run.
		n = 1
	}
	return 8 * n
}

// anyNodeAlive reports whether at least one node has not been declared
// dead by the breaker — i.e. whether waiting out cooldowns can help.
func (p *Pool) anyNodeAlive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nd := range p.nodes {
		if !nd.dead {
			return true
		}
	}
	return false
}

func (p *Pool) joinGrace() time.Duration {
	if p.JoinGrace > 0 {
		return p.JoinGrace
	}
	if p.dynamic {
		return 10 * time.Second
	}
	return 0
}

// waitForNode blocks (real time, not virtual) until the fleet is non-empty
// or the join grace expires, returning true when a node is available. Only
// dynamic pools wait; a static pool with no nodes cannot gain one.
func (p *Pool) waitForNode(deadline time.Time) bool {
	grace := p.joinGrace()
	if grace <= 0 {
		return false
	}
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		p.mu.Lock()
		n := len(p.nodes)
		p.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// cooldown returns the quarantine length for round r (0-based), doubling
// from Cooldown up to MaxCooldown.
func (p *Pool) cooldown(r int) time.Duration {
	base := p.Cooldown
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	capd := p.MaxCooldown
	if capd <= 0 {
		capd = 15 * time.Second
	}
	d := base
	for i := 0; i < r && d < capd; i++ {
		d *= 2
	}
	if d > capd {
		d = capd
	}
	return d
}

// shardOf maps a trial key to its preferred node index.
func shardOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// eligible reports whether the node is in rotation at time t: healthy, or
// quarantined with an expired cooldown (a half-open probe slot).
func (nd *node) eligible(t time.Time) bool {
	return nd.until.IsZero() || !t.Before(nd.until)
}

// acquire picks a node for key and accounts the placement. Preference:
// the key's shard owner, unless another eligible node has strictly fewer
// trials in flight (work-stealing). When every node is quarantined the
// least-loaded node is force-probed anyway — giving up instantly would
// turn one bad burst into a dead session. Returns nil only for an empty
// fleet.
func (p *Pool) acquire(key string) *node {
	t := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *node
	for _, nd := range p.nodes {
		if !nd.eligible(t) {
			continue
		}
		if best == nil || nd.inflight < best.inflight {
			best = nd
		}
	}
	if best == nil {
		// Fleet-wide quarantine: force a half-open probe instead of
		// failing the trial outright. Probe the node whose cooldown
		// expires soonest — a shed node that announced a short
		// Retry-After is a far better bet than a dead node whose
		// doubling quarantine keeps pushing its horizon out — and break
		// ties toward the fewest trials in flight.
		for _, nd := range p.nodes {
			if best == nil || nd.until.Before(best.until) ||
				(nd.until.Equal(best.until) && nd.inflight < best.inflight) {
				best = nd
			}
		}
		if best == nil {
			return nil
		}
		p.Telemetry.Counter("dispatch_forced_probes_total").Inc()
	} else if pref := p.nodes[shardOf(key, len(p.nodes))]; pref.eligible(t) && pref.inflight <= best.inflight {
		best = pref
	}
	best.inflight++
	p.fleet.dispatch(best.name, key)
	return best
}

// settle accounts the end of a placement: success resets the node's
// breaker (reviving it if it was dead), failure advances it and may
// quarantine the node.
func (p *Pool) settle(nd *node, key string, ok bool) {
	t := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	nd.inflight--
	p.fleet.settle(nd.name, key)
	if ok {
		nd.evals++
		p.reviveLocked(nd)
		return
	}
	p.failLocked(nd, t)
}

// settleShed accounts the end of a placement the node shed (429 with a
// Retry-After hint): the node is loaded, not broken, so the breaker does
// not advance and the node is never journaled dead — instead the hint
// becomes a cooldown floor, keeping the pool from hammering a node that
// said when it wants to be bothered again.
func (p *Pool) settleShed(nd *node, key string, d time.Duration) {
	t := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	nd.inflight--
	p.fleet.settle(nd.name, key)
	if until := t.Add(d); nd.until.Before(until) {
		nd.until = until
	}
	p.Telemetry.Counter("dispatch_node_shed_total").Inc()
}

// reviveLocked resets a node's breaker after a successful interaction.
func (p *Pool) reviveLocked(nd *node) {
	if nd.dead {
		nd.dead = false
		p.fleet.alive(nd.name)
		p.Telemetry.Counter("dispatch_node_revived_total").Inc()
	}
	nd.fails, nd.rounds, nd.until = 0, 0, time.Time{}
}

// failLocked advances a node's breaker after a failed interaction.
func (p *Pool) failLocked(nd *node, t time.Time) {
	nd.fails++
	p.Telemetry.Counter("dispatch_node_failures_total").Inc()
	if nd.fails < p.maxNodeFailures() {
		return
	}
	nd.fails = 0
	nd.until = t.Add(p.cooldown(nd.rounds))
	nd.rounds++
	p.Telemetry.Counter("dispatch_node_quarantined_total").Inc()
	if !nd.dead {
		nd.dead = true
		p.fleet.dead(nd.name)
	}
}

// SetPhase implements runner.PhaseSetter: subsequent trials carry the
// shift on the wire and the pool's rep indices and cache re-scope to the
// new phase (runner.PhaseKey), exactly like the in-process runner. The
// shift is validated here, before any node sees it, and the harness kill
// threshold recalibrates to the shifted workload's baseline
// (runner.PhaseTimeout) so the per-request timeout matches what an
// in-process runner would enforce.
func (p *Pool) SetPhase(phase int, shift jvmsim.PhaseShift) error {
	eff, err := shift.Apply(p.profile)
	if err != nil {
		return err
	}
	if phase == 0 {
		eff = p.profile
	}
	p.mu.Lock()
	if !p.timeout0Set {
		p.timeout0, p.timeout0Set = p.TimeoutSeconds, true
	}
	p.phase, p.shift = phase, shift
	p.TimeoutSeconds = runner.PhaseTimeout(p.timeout0, jvmsim.New(), p.profile, eff)
	p.mu.Unlock()
	return nil
}

// Measure implements runner.Runner with the exact cache, rep-index,
// retry, and telemetry semantics of runner.InProcess — the dispatch layer
// only changes where the attempt body runs.
func (p *Pool) Measure(cfg *flags.Config, reps int) runner.Measurement {
	return p.measure(cfg, reps, p.place)
}

// measure is the shared Measure body; place runs one placement attempt
// (single-trial transport, or a rendezvous into a batched wave — the
// choice changes only where the bytes travel, never what they are).
func (p *Pool) measure(cfg *flags.Config, reps int, place func(*TrialRequest) runner.Measurement) runner.Measurement {
	if reps < 1 {
		reps = 1
	}
	key := cfg.Key()

	p.mu.Lock()
	// Phases only change between rounds (the PhaseSetter contract), never
	// while a Measure is in flight.
	phase, shift := p.phase, p.shift
	sk := runner.PhaseKey(phase, key)
	if !p.DisableCache {
		if m, ok := p.cache[sk]; ok && (m.Failed || len(m.Walls) >= reps) {
			p.mu.Unlock()
			m.FromCache = true
			m.CostSeconds = 0
			runner.NoteCacheHit(p.Telemetry, p.Trace, key)
			return m
		}
	}
	p.mu.Unlock()

	// ExplicitArgs, not CommandLine: the minimal rendering drops explicit
	// assignments that equal a flag's default, and the simulated VM — like
	// a real one — behaves differently when, say, UseParallelGC is forced
	// rather than defaulted. The transport form must carry explicitness.
	args := cfg.ExplicitArgs()
	m := p.Retry.Run(func(n int) runner.Measurement {
		// Each attempt draws fresh noise-rep indices so a retried run is a
		// genuinely new measurement, not a replay.
		p.mu.Lock()
		repBase := p.reps[sk]
		p.reps[sk] = repBase + reps
		p.mu.Unlock()

		req := &TrialRequest{
			Key: key, Benchmark: p.profile.Name, Args: args,
			RepBase: repBase, Reps: reps,
			TimeoutSeconds: p.TimeoutSeconds, Noise: p.Noise,
		}
		if phase > 0 {
			s := shift
			req.Phase, req.Shift = phase, &s
		}
		m := place(req)
		runner.NoteAttempt(p.Telemetry, p.Trace, key, n, n > 0, m)
		return m
	})
	runner.NoteMeasured(p.Telemetry, p.Trace, key, m)

	p.mu.Lock()
	p.elapsed.Charge(m.CostSeconds)
	if !p.DisableCache && !m.Transient {
		p.cache[sk] = m
	}
	p.mu.Unlock()
	return m
}

// place runs one measurement attempt against the fleet, silently
// re-dispatching across node deaths. Every placement failure is free in
// virtual time — the trial never ran anywhere — and invisible to the
// trace; only the dispatch_* counters see it. The attempt ends with the
// first node that answers (its measurement is node-independent), with a
// deterministic rejection, or — after MaxTries placements — with a
// transient NodeDownFailure for the retry policy to absorb.
func (p *Pool) place(req *TrialRequest) runner.Measurement {
	p.Telemetry.Counter("dispatch_trials_total").Inc()
	var joinDeadline time.Time
	for try := 0; try < p.maxTries(); try++ {
		if try > 0 {
			p.Telemetry.Counter("dispatch_redispatch_total").Inc()
			// Back off (real time only) exactly like a batched wave: a
			// re-dispatch that instantly re-fails burns the try budget in
			// microseconds, which under a node kill plus a shed burst can
			// exhaust every placement before a 429'd node's Retry-After
			// expires — surfacing a spurious transient failure that the
			// retry policy then charges to the session. Waiting is
			// pointless when the whole fleet is breaker-dead (only a
			// heartbeat or a join can help, and those run on their own
			// cadence), so a fully dead fleet still fails fast.
			if p.anyNodeAlive() {
				p.waveBackoff(try)
			}
		}
		nd := p.acquire(req.Key)
		if nd == nil {
			// Empty fleet. A dynamic pool waits out the join grace — the
			// session may have started before the first node registered —
			// then retries the placement without burning the try budget.
			if joinDeadline.IsZero() {
				joinDeadline = time.Now().Add(p.joinGrace())
			}
			if p.waitForNode(joinDeadline) {
				try--
				continue
			}
			break
		}
		var res *TrialResult
		var err error
		if p.FaultHook != nil && p.FaultHook(nd.name, req.Key, try) {
			p.Telemetry.Counter("dispatch_injected_node_down_total").Inc()
			err = &NodeError{Node: nd.name, Err: errInjectedNodeDown}
		} else {
			res, err = nd.ev.Evaluate(context.Background(), req)
			if err == nil && res.Measurement.Key != req.Key {
				// A node answering with the wrong trial is broken, not the
				// request: treat it like a transport fault.
				err = &NodeError{Node: nd.name, Err: fmt.Errorf("answered key %q for trial %q", res.Measurement.Key, req.Key)}
			}
		}
		if err == nil {
			p.settle(nd, req.Key, true)
			p.Telemetry.Counter("dispatch_evals_total").Inc()
			return res.Measurement
		}
		if d := retryAfterOf(err); d > 0 {
			p.settleShed(nd, req.Key, d)
		} else {
			p.settle(nd, req.Key, false)
		}
		if permanentError(err) {
			// The node understood the request and refused it; every node
			// would. The rejection condemns the trial deterministically.
			p.Telemetry.Counter("dispatch_rejected_total").Inc()
			return runner.Measurement{
				Key: req.Key, Failed: true, Failure: runner.NodeRejectedFailure,
				FailureMessage: err.Error(),
			}
		}
	}
	p.Telemetry.Counter("dispatch_no_node_total").Inc()
	return runner.Measurement{
		Key: req.Key, Failed: true, Failure: runner.NodeDownFailure,
		FailureMessage: fmt.Sprintf("dispatch: no evaluator node reachable after %d placements", p.maxTries()),
	}
}

// permanentError reports whether a placement error is a deterministic
// protocol rejection rather than a node fault.
func permanentError(err error) bool {
	var ne *NodeError
	if errors.As(err, &ne) {
		return ne.Permanent
	}
	var re *RequestError
	return errors.As(err, &re)
}

// retryAfterOf extracts a shed node's backoff hint, if the error carries
// one.
func retryAfterOf(err error) time.Duration {
	var ne *NodeError
	if errors.As(err, &ne) {
		return ne.RetryAfter
	}
	return 0
}

// Pinger is implemented by evaluators that support liveness probes
// (Remote); heartbeats skip the rest.
type Pinger interface {
	Ping(ctx context.Context) error
}

// Probe pings every probeable node once, reviving quarantined nodes that
// answer and advancing the breaker of nodes that don't.
func (p *Pool) Probe(ctx context.Context) {
	p.mu.Lock()
	nds := append([]*node(nil), p.nodes...)
	p.mu.Unlock()
	for _, nd := range nds {
		pg, ok := nd.ev.(Pinger)
		if !ok {
			continue
		}
		p.Telemetry.Counter("dispatch_heartbeats_total").Inc()
		err := pg.Ping(ctx)
		t := p.now()
		p.mu.Lock()
		if err == nil {
			p.reviveLocked(nd)
		} else {
			p.failLocked(nd, t)
		}
		p.mu.Unlock()
	}
}

// StartHeartbeats launches the periodic liveness prober. Call Close to
// stop it.
func (p *Pool) StartHeartbeats(every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hbStop != nil {
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	p.hbStop, p.hbDone = stop, done
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				p.Probe(context.Background())
			}
		}
	}()
}

// Close stops heartbeats and closes the fleet journal, if any.
func (p *Pool) Close() error {
	p.mu.Lock()
	stop, done := p.hbStop, p.hbDone
	p.hbStop, p.hbDone = nil, nil
	f := p.fleet
	p.fleet = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return f.Close()
}

// SnapshotState implements runner.StateSnapshotter, byte-for-byte the
// in-process runner's serialization. Fleet state is deliberately absent —
// it lives in its own journal and is not a determinism input.
func (p *Pool) SnapshotState() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return runner.MarshalState(p.elapsed.Seconds(), p.reps, p.cache)
}

// RestoreState implements runner.StateSnapshotter.
func (p *Pool) RestoreState(data []byte) error {
	elapsed, reps, cache, err := runner.UnmarshalState(data)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.elapsed.Set(elapsed)
	p.reps, p.cache = reps, cache
	return nil
}
