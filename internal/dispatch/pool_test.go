package dispatch

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func poolProfile(t testing.TB, name string) *workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	return p
}

// fakeEval scripts an Evaluator for fault scenarios.
type fakeEval struct {
	name string
	fn   func(req *TrialRequest) (*TrialResult, error)
}

func (f *fakeEval) Name() string { return f.name }
func (f *fakeEval) Evaluate(_ context.Context, req *TrialRequest) (*TrialResult, error) {
	return f.fn(req)
}

// pingableEval is a fakeEval whose liveness is probed by heartbeats.
type pingableEval struct {
	fakeEval
	ping func() error
}

func (p *pingableEval) Ping(context.Context) error { return p.ping() }

func newTestPool(t testing.TB, bench string, evs ...Evaluator) *Pool {
	t.Helper()
	p, err := NewPool(poolProfile(t, bench), evs...)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	p.Telemetry = telemetry.New()
	return p
}

// TestPoolMatchesInProcess is the core determinism claim at unit scale:
// the same sequence of Measure calls against a fleet of Local evaluators
// and against runner.InProcess produces identical measurements, identical
// virtual clocks, and byte-identical snapshot state.
func TestPoolMatchesInProcess(t *testing.T) {
	prof := poolProfile(t, "fop")
	reg := flags.NewRegistry()
	ip := runner.NewInProcess(jvmsim.New(), prof)
	pool := newTestPool(t, "fop",
		NewLocal(prof, "n0"), NewLocal(prof, "n1"), NewLocal(prof, "n2"))

	base := flags.NewConfig(reg)
	heap := flags.NewConfig(reg)
	heap.SetInt("MaxHeapSize", 1<<30)
	g1 := flags.NewConfig(reg)
	g1.SetBool("UseG1GC", true)

	// Defaults, a cache hit, a rep upgrade, and two more configs.
	calls := []struct {
		cfg  *flags.Config
		reps int
	}{
		{base, 1}, {base.Clone(), 1}, {base.Clone(), 3},
		{heap, 2}, {g1, 2}, {heap.Clone(), 2},
	}
	for i, c := range calls {
		want := ip.Measure(c.cfg, c.reps)
		got := pool.Measure(c.cfg, c.reps)
		if got.Key != want.Key || got.Mean != want.Mean || got.CostSeconds != want.CostSeconds ||
			got.FromCache != want.FromCache || got.Failed != want.Failed {
			t.Fatalf("call %d: pool %+v != in-process %+v", i, got, want)
		}
		if len(got.Walls) != len(want.Walls) {
			t.Fatalf("call %d: wall count %d != %d", i, len(got.Walls), len(want.Walls))
		}
		for j := range got.Walls {
			if got.Walls[j] != want.Walls[j] {
				t.Fatalf("call %d rep %d: wall %v != %v", i, j, got.Walls[j], want.Walls[j])
			}
		}
	}
	if pool.Elapsed() != ip.Elapsed() {
		t.Fatalf("virtual clocks diverged: pool %v, in-process %v", pool.Elapsed(), ip.Elapsed())
	}

	ps, err := pool.SnapshotState()
	if err != nil {
		t.Fatalf("pool snapshot: %v", err)
	}
	is, err := ip.SnapshotState()
	if err != nil {
		t.Fatalf("in-process snapshot: %v", err)
	}
	if !bytes.Equal(ps, is) {
		t.Fatalf("snapshot state diverged:\npool: %s\nin-process: %s", ps, is)
	}
	if fp := pool.DeterminismFingerprint(); fp != "*runner.InProcess" {
		t.Fatalf("fingerprint %q; checkpoints would not move between runners", fp)
	}
}

// TestPoolRedispatchOnDeadNode: a node that always fails placements is
// invisible to the measurement — the trial lands on the survivor with no
// retry accounting and no extra virtual cost.
func TestPoolRedispatchOnDeadNode(t *testing.T) {
	prof := poolProfile(t, "fop")
	dead := &fakeEval{name: "dead", fn: func(*TrialRequest) (*TrialResult, error) {
		return nil, &NodeError{Node: "dead", Err: errors.New("connection refused")}
	}}
	pool := newTestPool(t, "fop", dead, NewLocal(prof, "live"))

	ip := runner.NewInProcess(jvmsim.New(), prof)
	cfg := flags.NewConfig(flags.NewRegistry())
	want := ip.Measure(cfg, 2)
	got := pool.Measure(cfg, 2)
	if got.Failed {
		t.Fatalf("measurement failed despite a live node: %+v", got)
	}
	if got.Attempts != 1 || got.Flakes != 0 {
		t.Fatalf("node death leaked into retry accounting: attempts=%d flakes=%d", got.Attempts, got.Flakes)
	}
	if got.Mean != want.Mean || got.CostSeconds != want.CostSeconds {
		t.Fatalf("re-dispatched measurement diverged: %+v != %+v", got, want)
	}
	if v := pool.Telemetry.Counter("dispatch_redispatch_total").Value(); v == 0 && pool.nodes[shardOf(cfg.Key(), 2)].name == "dead" {
		t.Error("expected a re-dispatch when the shard owner is dead")
	}
}

// TestPoolAllNodesDead: with no reachable node the trial surfaces as a
// transient NodeDownFailure — never cached, so a recovered fleet gets to
// re-measure it.
func TestPoolAllNodesDead(t *testing.T) {
	down := func(name string) *fakeEval {
		return &fakeEval{name: name, fn: func(*TrialRequest) (*TrialResult, error) {
			return nil, &NodeError{Node: name, Err: errors.New("no route to host")}
		}}
	}
	pool := newTestPool(t, "fop", down("a"), down("b"))
	cfg := flags.NewConfig(flags.NewRegistry())
	m := pool.Measure(cfg, 1)
	if !m.Failed || m.Failure != runner.NodeDownFailure {
		t.Fatalf("expected node-down failure, got %+v", m)
	}
	if !m.Transient {
		t.Fatal("fleet-wide exhaustion must stay transient — the config is not condemned")
	}
	if again := pool.Measure(cfg, 1); again.FromCache {
		t.Fatal("transient node-down verdicts must not be cached")
	}
	if pool.Telemetry.Counter("dispatch_no_node_total").Value() == 0 {
		t.Error("exhausted placements should be counted")
	}
}

// TestPoolPermanentRejection: a protocol-level refusal condemns the trial
// deterministically — it is cached and carries NodeRejectedFailure.
func TestPoolPermanentRejection(t *testing.T) {
	rej := &fakeEval{name: "strict", fn: func(req *TrialRequest) (*TrialResult, error) {
		return nil, &NodeError{Node: "strict", Status: 400, Code: CodeBadFlag, Permanent: true,
			Err: errors.New("unknown flag")}
	}}
	pool := newTestPool(t, "fop", rej)
	cfg := flags.NewConfig(flags.NewRegistry())
	m := pool.Measure(cfg, 1)
	if !m.Failed || m.Failure != runner.NodeRejectedFailure {
		t.Fatalf("expected node-rejected failure, got %+v", m)
	}
	if m.Transient {
		t.Fatal("a rejection every node would repeat is not transient")
	}
	if again := pool.Measure(cfg, 1); !again.FromCache {
		t.Fatal("deterministic rejections should be cached like any failure")
	}
}

// TestPoolQuarantineAndRevive drives one node through the circuit
// breaker with an injected clock: consecutive failures quarantine it
// behind a doubling cooldown, a successful placement after the cooldown
// revives it.
func TestPoolQuarantineAndRevive(t *testing.T) {
	prof := poolProfile(t, "fop")
	broken := true
	local := NewLocal(prof, "flaky")
	flaky := &fakeEval{name: "flaky", fn: func(req *TrialRequest) (*TrialResult, error) {
		if broken {
			return nil, &NodeError{Node: "flaky", Err: errors.New("reset by peer")}
		}
		return local.Evaluate(context.Background(), req)
	}}
	pool := newTestPool(t, "fop", flaky)
	pool.MaxTries = 3 // one Measure attempt = 3 placements = quarantine threshold
	pool.Retry = runner.RetryPolicy{MaxAttempts: 1}
	clock := time.Unix(1000, 0)
	pool.now = func() time.Time { return clock }

	cfg := flags.NewConfig(flags.NewRegistry())
	if m := pool.Measure(cfg, 1); !m.Failed || m.Failure != runner.NodeDownFailure {
		t.Fatalf("expected exhaustion, got %+v", m)
	}
	nd := pool.nodes[0]
	if !nd.dead || nd.until.IsZero() {
		t.Fatalf("3 consecutive failures should quarantine: dead=%v until=%v", nd.dead, nd.until)
	}
	if pool.Telemetry.Counter("dispatch_node_quarantined_total").Value() != 1 {
		t.Error("quarantine should be counted once")
	}

	// Still inside the cooldown the node is only reachable via forced
	// probes (it is the whole fleet); past the cooldown it is a regular
	// half-open candidate. Either way a success revives it.
	broken = false
	clock = clock.Add(time.Minute)
	if m := pool.Measure(cfg, 1); m.Failed {
		t.Fatalf("revived node should serve: %+v", m)
	}
	if nd.dead || !nd.until.IsZero() || nd.fails != 0 {
		t.Fatalf("success should reset the breaker: %+v", nd)
	}
	if pool.Telemetry.Counter("dispatch_node_revived_total").Value() != 1 {
		t.Error("revival should be counted")
	}
}

// TestPoolCooldownDoubles checks the quarantine backoff shape.
func TestPoolCooldownDoubles(t *testing.T) {
	pool := newTestPool(t, "fop", NewLocal(poolProfile(t, "fop"), "n"))
	want := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second}
	for r, w := range want {
		if d := pool.cooldown(r); d != w {
			t.Errorf("cooldown(%d) = %v, want %v", r, d, w)
		}
	}
	if d := pool.cooldown(40); d != 15*time.Second {
		t.Errorf("cooldown cap = %v, want 15s", d)
	}
}

// TestPoolWorkStealing: an idle fleet places on the key's shard owner;
// a loaded shard owner loses the trial to the least-loaded node.
func TestPoolWorkStealing(t *testing.T) {
	prof := poolProfile(t, "fop")
	pool := newTestPool(t, "fop", NewLocal(prof, "n0"), NewLocal(prof, "n1"), NewLocal(prof, "n2"))
	key := "some-trial-key"
	owner := pool.nodes[shardOf(key, len(pool.nodes))]

	nd := pool.acquire(key)
	if nd != owner {
		t.Fatalf("idle fleet placed %q on %s, want shard owner %s", key, nd.name, owner.name)
	}
	pool.settle(nd, key, true)

	// Load the shard owner: the trial must be stolen by an idle node.
	owner.inflight = 4
	nd = pool.acquire(key)
	if nd == owner {
		t.Fatal("loaded shard owner should lose the trial to an idle node")
	}
	pool.settle(nd, key, true)
	owner.inflight = 0
}

// TestPoolHeartbeatProbes: a probe failure advances the breaker, a probe
// success revives a quarantined node without waiting for a placement.
func TestPoolHeartbeatProbes(t *testing.T) {
	pingErr := errors.New("down")
	pe := &pingableEval{
		fakeEval: fakeEval{name: "remote", fn: func(*TrialRequest) (*TrialResult, error) {
			return nil, &NodeError{Node: "remote", Err: errors.New("down")}
		}},
		ping: func() error { return pingErr },
	}
	pool := newTestPool(t, "fop", pe)
	clock := time.Unix(1000, 0)
	pool.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		pool.Probe(context.Background())
	}
	if nd := pool.nodes[0]; !nd.dead {
		t.Fatal("3 failed probes should quarantine the node")
	}
	pingErr = nil
	pool.Probe(context.Background())
	if nd := pool.nodes[0]; nd.dead || !nd.until.IsZero() {
		t.Fatal("a successful probe should revive the node")
	}
	if pool.Telemetry.Counter("dispatch_heartbeats_total").Value() != 4 {
		t.Error("probes should be counted")
	}
}

// TestPoolStateRoundTrip: snapshot from one pool restores into a fresh
// pool, cache and clock intact.
func TestPoolStateRoundTrip(t *testing.T) {
	prof := poolProfile(t, "fop")
	a := newTestPool(t, "fop", NewLocal(prof, "n"))
	cfg := flags.NewConfig(flags.NewRegistry())
	m := a.Measure(cfg, 2)
	state, err := a.SnapshotState()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	b := newTestPool(t, "fop", NewLocal(prof, "n"))
	if err := b.RestoreState(state); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if b.Elapsed() != a.Elapsed() {
		t.Fatalf("restored clock %v != %v", b.Elapsed(), a.Elapsed())
	}
	got := b.Measure(cfg, 2)
	if !got.FromCache || got.Mean != m.Mean {
		t.Fatalf("restored cache should replay: %+v", got)
	}
}

// TestPoolRejectsBadFleets covers constructor validation.
func TestPoolRejectsBadFleets(t *testing.T) {
	prof := poolProfile(t, "fop")
	if _, err := NewPool(prof); err == nil {
		t.Error("empty fleet should be rejected")
	}
	if _, err := NewPool(nil, NewLocal(prof, "n")); err == nil {
		t.Error("nil profile should be rejected")
	}
	if _, err := NewPool(prof, NewLocal(prof, "n"), NewLocal(prof, "n")); err == nil {
		t.Error("duplicate node names should be rejected")
	}
}

// TestPoolFaultHookInjectsNodeDeath: the chaos seam forces placement
// failures without any evaluator involvement.
func TestPoolFaultHookInjectsNodeDeath(t *testing.T) {
	prof := poolProfile(t, "fop")
	served := 0
	local := NewLocal(prof, "n")
	counting := &fakeEval{name: "n", fn: func(req *TrialRequest) (*TrialResult, error) {
		served++
		return local.Evaluate(context.Background(), req)
	}}
	pool := newTestPool(t, "fop", counting)
	pool.FaultHook = func(node, key string, try int) bool { return try == 0 }

	m := pool.Measure(flags.NewConfig(flags.NewRegistry()), 1)
	if m.Failed {
		t.Fatalf("second placement should land: %+v", m)
	}
	if served != 1 {
		t.Fatalf("evaluator ran %d times; the injected death must not reach it", served)
	}
	if pool.Telemetry.Counter("dispatch_injected_node_down_total").Value() != 1 {
		t.Error("injected fault should be counted")
	}
}
