package dispatch

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/flags"
	"repro/internal/runner"
)

// Batched dispatch, pool side. MeasureBatch implements the executor's
// runner.BatchMeasurer seam: a round of fresh trials arrives as one call,
// and the pool ships it in waves of evaluate-batch round trips instead of
// one HTTP POST per trial. The machinery is transport-only by design —
// every trial keeps the exact cache, rep-index, retry, and telemetry path
// of a single Measure (literally the same measure() body; only the
// placement callback changes), so a batched session is byte-identical to
// an unbatched or in-process one at any batch size. That equivalence is
// what lets partial-batch salvage re-dispatch the unsettled remainder of a
// failed batch under the same repBase: a placement that never settled
// never measured anywhere, exactly like a single-dispatch node death.

// BatchEvaluator is implemented by evaluators that can serve several
// trials in one round trip (Remote, Local). Nodes without it degrade to
// per-trial placement inside the wave.
type BatchEvaluator interface {
	EvaluateBatch(ctx context.Context, req *BatchRequest) (*BatchResult, error)
}

// batchCall is one trial's rendezvous with the wave coordinator: a
// placement request and the channel its measurement comes back on.
type batchCall struct {
	req   *TrialRequest
	reply chan runner.Measurement
}

// MeasureBatch implements runner.BatchMeasurer. With Batch <= 0 it
// degrades to the reference behavior — concurrent single Measures, which
// is exactly what the executor would do without the seam — so the batch
// knob can never change results, only round trips.
func (p *Pool) MeasureBatch(cfgs []*flags.Config, reps int) []runner.Measurement {
	out := make([]runner.Measurement, len(cfgs))
	switch {
	case len(cfgs) == 0:
		return out
	case len(cfgs) == 1:
		out[0] = p.Measure(cfgs[0], reps)
		return out
	case p.Batch <= 0:
		var wg sync.WaitGroup
		for i, cfg := range cfgs {
			wg.Add(1)
			go func(i int, cfg *flags.Config) {
				defer wg.Done()
				out[i] = p.Measure(cfg, reps)
			}(i, cfg)
		}
		wg.Wait()
		return out
	}

	// Each trial runs the ordinary measure body in its own goroutine; its
	// placement attempts rendezvous on calls. The coordinator releases a
	// wave when every still-active trial has an attempt pending — a
	// deterministic grouping rule (no linger timers), so batch composition
	// depends only on which trials are still in flight, never on timing.
	calls := make(chan *batchCall)
	finished := make(chan struct{})
	for i, cfg := range cfgs {
		go func(i int, cfg *flags.Config) {
			out[i] = p.measure(cfg, reps, func(req *TrialRequest) runner.Measurement {
				c := &batchCall{req: req, reply: make(chan runner.Measurement, 1)}
				calls <- c
				return <-c.reply
			})
			finished <- struct{}{}
		}(i, cfg)
	}
	active := len(cfgs)
	var pending []*batchCall
	for active > 0 {
		select {
		case c := <-calls:
			pending = append(pending, c)
		case <-finished:
			active--
		}
		if active > 0 && len(pending) == active {
			p.placeWave(pending)
			pending = nil
		}
	}
	return out
}

// placeWave places one wave of trials across the fleet, re-dispatching
// the unsettled remainder round after round (partial-batch salvage) until
// every trial settles or the try budget is spent. Re-dispatch rounds back
// off exponentially with jitter — real time only, invisible to virtual
// cost and the session's bytes.
func (p *Pool) placeWave(wave []*batchCall) {
	for range wave {
		p.Telemetry.Counter("dispatch_trials_total").Inc()
	}
	remaining := append([]*batchCall(nil), wave...)
	maxTries := p.maxTries()
	var joinDeadline time.Time
	for try := 0; len(remaining) > 0; try++ {
		if try >= maxTries {
			for _, c := range remaining {
				p.Telemetry.Counter("dispatch_no_node_total").Inc()
				c.reply <- runner.Measurement{
					Key: c.req.Key, Failed: true, Failure: runner.NodeDownFailure,
					FailureMessage: fmt.Sprintf("dispatch: no evaluator node reachable after %d placements", maxTries),
				}
			}
			return
		}
		if try > 0 {
			p.Telemetry.Counter("dispatch_redispatch_total").Add(uint64(len(remaining)))
			p.waveBackoff(try)
		}

		// Assign the round's trials through the same acquire as single
		// dispatch, so work-stealing, in-flight accounting, and the fleet
		// journal see batched trials identically.
		assign := make(map[*node][]*batchCall)
		var next []*batchCall
		empty := false
		for _, c := range remaining {
			nd := p.acquire(c.req.Key)
			if nd == nil {
				empty = true
				next = append(next, c)
				continue
			}
			if p.FaultHook != nil && p.FaultHook(nd.name, c.req.Key, try) {
				p.Telemetry.Counter("dispatch_injected_node_down_total").Inc()
				p.settle(nd, c.req.Key, false)
				next = append(next, c)
				continue
			}
			assign[nd] = append(assign[nd], c)
		}
		if empty && len(assign) == 0 {
			// Whole fleet gone mid-wave. A dynamic pool waits out the join
			// grace for a replacement without burning the try budget.
			if joinDeadline.IsZero() {
				joinDeadline = time.Now().Add(p.joinGrace())
			}
			if p.waitForNode(joinDeadline) {
				try--
			}
			remaining = next
			continue
		}

		var wg sync.WaitGroup
		var mu sync.Mutex
		for nd, cs := range assign {
			wg.Add(1)
			go func(nd *node, cs []*batchCall) {
				defer wg.Done()
				redo := p.shipNode(nd, cs, try)
				if len(redo) > 0 {
					mu.Lock()
					next = append(next, redo...)
					mu.Unlock()
				}
			}(nd, cs)
		}
		wg.Wait()
		remaining = next
	}
}

// waveBackoff sleeps between re-dispatch rounds: exponential from 2ms
// doubling to a 250ms cap, with ±50% jitter so salvage retries from many
// concurrent waves don't synchronize against a recovering fleet.
func (p *Pool) waveBackoff(round int) {
	d := 2 * time.Millisecond
	for i := 1; i < round && d < 250*time.Millisecond; i++ {
		d *= 2
	}
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	time.Sleep(d)
}

// shipNode ships one node's share of a wave, chunked to the batch cap,
// and returns the trials that must re-dispatch elsewhere.
func (p *Pool) shipNode(nd *node, cs []*batchCall, try int) []*batchCall {
	var redo []*batchCall
	be, batchable := nd.ev.(BatchEvaluator)
	for len(cs) > 0 {
		n := len(cs)
		if n > p.Batch {
			n = p.Batch
		}
		chunk := cs[:n]
		cs = cs[n:]
		if !batchable || len(chunk) == 1 {
			for _, c := range chunk {
				redo = append(redo, p.shipOne(nd, c)...)
			}
			continue
		}
		req := &BatchRequest{Trials: make([]TrialRequest, len(chunk))}
		for i, c := range chunk {
			req.Trials[i] = *c.req
		}
		res, err := be.EvaluateBatch(context.Background(), req)
		if err != nil {
			keys := make([]string, len(chunk))
			for i, c := range chunk {
				keys[i] = c.req.Key
			}
			p.settleBatchFault(nd, keys, retryAfterOf(err))
			redo = append(redo, chunk...)
			continue
		}
		p.Telemetry.Counter("dispatch_batches_total").Inc()
		for i, c := range chunk {
			redo = append(redo, p.settleEntry(nd, c, &res.Entries[i])...)
		}
	}
	return redo
}

// shipOne runs one single-trial placement inside a wave, mirroring the
// inner body of place(). It returns the trial when it must re-dispatch.
func (p *Pool) shipOne(nd *node, c *batchCall) []*batchCall {
	res, err := nd.ev.Evaluate(context.Background(), c.req)
	if err == nil && res.Measurement.Key != c.req.Key {
		err = &NodeError{Node: nd.name, Err: fmt.Errorf("answered key %q for trial %q", res.Measurement.Key, c.req.Key)}
	}
	if err == nil {
		p.settle(nd, c.req.Key, true)
		p.Telemetry.Counter("dispatch_evals_total").Inc()
		c.reply <- res.Measurement
		return nil
	}
	if d := retryAfterOf(err); d > 0 {
		p.settleShed(nd, c.req.Key, d)
	} else {
		p.settle(nd, c.req.Key, false)
	}
	if permanentError(err) {
		p.Telemetry.Counter("dispatch_rejected_total").Inc()
		c.reply <- runner.Measurement{
			Key: c.req.Key, Failed: true, Failure: runner.NodeRejectedFailure,
			FailureMessage: err.Error(),
		}
		return nil
	}
	return []*batchCall{c}
}

// settleEntry resolves one trial of a successfully returned batch.
func (p *Pool) settleEntry(nd *node, c *batchCall, e *BatchEntry) []*batchCall {
	switch {
	case e.Result != nil && e.Result.Measurement.Key == c.req.Key:
		p.settle(nd, c.req.Key, true)
		p.Telemetry.Counter("dispatch_evals_total").Inc()
		c.reply <- e.Result.Measurement
		return nil
	case e.Error != nil && e.Error.Error != "" &&
		e.Error.Code != CodeInternal && e.Error.Code != CodeBusy && e.Error.Code != CodeUnauthorized:
		// A per-entry envelope is the node refusing that one trial — the
		// same deterministic verdict as a single-dispatch 4xx, condemning
		// only its own trial; siblings in the batch settle normally.
		p.settle(nd, c.req.Key, false)
		p.Telemetry.Counter("dispatch_rejected_total").Inc()
		ne := &NodeError{Node: nd.name, Code: e.Error.Code, Permanent: true, Err: fmt.Errorf("%s", e.Error.Error)}
		c.reply <- runner.Measurement{
			Key: c.req.Key, Failed: true, Failure: runner.NodeRejectedFailure,
			FailureMessage: ne.Error(),
		}
		return nil
	default:
		// Wrong key, a per-entry internal error, or an empty entry: that
		// one placement failed transiently; salvage re-dispatches it under
		// the same repBase (it never measured anywhere).
		p.settle(nd, c.req.Key, false)
		return []*batchCall{c}
	}
}

// settleBatchFault accounts a whole-batch transport failure: every
// trial's placement ends (in-flight counts, fleet journal), but the
// breaker advances once — one TCP fault must not count as a batch's worth
// of strikes and insta-quarantine an otherwise healthy node. A shed batch
// (429) floors the cooldown instead, like settleShed.
func (p *Pool) settleBatchFault(nd *node, keys []string, retryAfter time.Duration) {
	t := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, k := range keys {
		nd.inflight--
		p.fleet.settle(nd.name, k)
	}
	if retryAfter > 0 {
		if until := t.Add(retryAfter); nd.until.Before(until) {
			nd.until = until
		}
		p.Telemetry.Counter("dispatch_node_shed_total").Inc()
		return
	}
	p.failLocked(nd, t)
}
