package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
)

// The wire protocol between a tuning session and an evald measurement node
// is one JSON round trip per evaluation attempt. The request names the
// trial by its canonical config key and carries everything the measurement
// is a function of — command-line args, benchmark name, noise-rep base,
// repetition count, timeout, and noise level — so any node computes the
// byte-identical measurement. The response is the runner.Measurement plus
// the answering node's name; rejections are ErrorEnvelope with a stable
// machine code, mirroring the httpapi admission envelopes.

// Wire protocol bounds. Requests and responses are small (a config is a
// few dozen flags); anything past the cap is a malformed or hostile
// payload and is rejected before decoding.
const (
	// MaxRequestBytes bounds an evaluate request body.
	MaxRequestBytes = 1 << 20
	// MaxReps bounds repetitions per request; the paper uses single-digit
	// rep counts, so anything large is a bogus payload, not a workload.
	MaxReps = 1024
	// MaxArgs bounds the command-line argument count per request.
	MaxArgs = 4096
)

// Rejection codes carried in ErrorEnvelope.Code. Stable wire contract.
const (
	// CodeBadPayload: the body was not a well-formed TrialRequest.
	CodeBadPayload = "bad-payload"
	// CodeBadFlag: an argument referenced an unknown flag or malformed
	// value (flags.UnknownFlagError and friends).
	CodeBadFlag = "bad-flag"
	// CodeBadBenchmark: the benchmark name resolved to no built-in profile.
	CodeBadBenchmark = "bad-benchmark"
	// CodeKeyMismatch: the declared trial key does not match the canonical
	// key of the parsed configuration.
	CodeKeyMismatch = "key-mismatch"
	// CodeBusy: the node's admission control shed the request (HTTP 429).
	CodeBusy = "busy"
	// CodeMethod: wrong HTTP method or path usage (HTTP 405).
	CodeMethod = "method"
	// CodeInternal: the node hit an unexpected internal error (HTTP 500).
	CodeInternal = "internal"
	// CodeUnauthorized: the peer presented no bearer token, a wrong one, or
	// no acceptable client certificate (HTTP 401). Fail-closed: nothing is
	// evaluated, registered, or deregistered without credentials.
	CodeUnauthorized = "unauthorized"
)

// TrialRequest is one evaluation attempt on the wire.
type TrialRequest struct {
	// Key is the canonical configuration key (flags.Config.Key) the caller
	// derived; the node re-derives it from Args and rejects on mismatch so
	// a corrupted request can never be attributed to the wrong trial.
	Key string `json:"key"`
	// Benchmark names a built-in workload profile (workload.ByName).
	Benchmark string `json:"benchmark"`
	// Args is the full-fidelity -XX: command line of the configuration
	// (flags.Config.ExplicitArgs): every explicit assignment, including
	// forced defaults, so explicitness-dependent VM behavior survives the
	// wire.
	Args []string `json:"args,omitempty"`
	// RepBase is the first noise-rep index of this attempt; the session's
	// runner allocates rep indices so retries are fresh measurements.
	RepBase int `json:"rep_base"`
	// Reps is the repetition count.
	Reps int `json:"reps"`
	// TimeoutSeconds is the harness kill threshold; 0 disables it.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Noise is the simulator's relative noise stddev. Negative means the
	// simulator default (jvmsim.DefaultNoise); the field is explicit so
	// every node measures under the session's noise model.
	Noise float64 `json:"noise"`
	// Phase and Shift carry phase-shifting workloads (drift sessions; see
	// internal/jvmsim.PhaseShift) over the wire: the node applies Shift to
	// the resolved base profile before measuring. Both are omitted in phase
	// 0, so stationary sessions emit byte-identical requests to builds
	// without drift support — and nodes of an older protocol generation
	// fail closed on the unknown fields rather than silently measuring the
	// un-shifted workload (the fleet must be upgraded in lockstep to run
	// drift jobs; see docs/DISTRIBUTED.md).
	Phase int                `json:"phase,omitempty"`
	Shift *jvmsim.PhaseShift `json:"shift,omitempty"`
}

// TrialResult is a successful evaluation on the wire.
type TrialResult struct {
	// Node names the evaluator that produced the measurement (diagnostic
	// only — the measurement is node-independent by construction).
	Node string `json:"node,omitempty"`
	// Measurement is the attempt's outcome, before retry accounting.
	Measurement runner.Measurement `json:"measurement"`
}

// wireMeasurement is runner.Measurement's wire form: the same field names
// the plain struct would emit, but with omitempty throughout. A successful
// trial leaves half the fields at their zero values (failure diagnostics,
// cache and retry accounting), and at batch width the reflection walk over
// those absent fields on both encode and decode is a measurable per-trial
// tax. Decoding an omitted field yields its zero value, so the round trip
// is exact.
type wireMeasurement struct {
	Key              string             `json:"Key,omitempty"`
	Walls            []float64          `json:"Walls,omitempty"`
	Mean             float64            `json:"Mean,omitempty"`
	Pauses           []float64          `json:"Pauses,omitempty"`
	MeanPause        float64            `json:"MeanPause,omitempty"`
	Failed           bool               `json:"Failed,omitempty"`
	Failure          jvmsim.FailureKind `json:"Failure,omitempty"`
	FailureMessage   string             `json:"FailureMessage,omitempty"`
	CostSeconds      float64            `json:"CostSeconds,omitempty"`
	HedgeCostSeconds float64            `json:"HedgeCostSeconds,omitempty"`
	FromCache        bool               `json:"FromCache,omitempty"`
	Attempts         int                `json:"Attempts,omitempty"`
	Flakes           int                `json:"Flakes,omitempty"`
	Transient        bool               `json:"Transient,omitempty"`
}

type wireTrialResult struct {
	Node        string          `json:"node,omitempty"`
	Measurement wireMeasurement `json:"measurement"`
}

// toWire converts a TrialResult to its compact wire form. Conversions
// happen once per message at the serialization boundary (never via custom
// Marshaler/Unmarshaler methods, which would force the json package to
// re-scan every nested message).
func toWire(t *TrialResult) wireTrialResult {
	m := t.Measurement
	return wireTrialResult{Node: t.Node, Measurement: wireMeasurement{
		Key: m.Key, Walls: m.Walls, Mean: m.Mean, Pauses: m.Pauses,
		MeanPause: m.MeanPause, Failed: m.Failed, Failure: m.Failure,
		FailureMessage: m.FailureMessage, CostSeconds: m.CostSeconds,
		HedgeCostSeconds: m.HedgeCostSeconds, FromCache: m.FromCache,
		Attempts: m.Attempts, Flakes: m.Flakes, Transient: m.Transient,
	}}
}

// fromWire converts the wire form back; omitted fields land on their zero
// values, so the round trip reproduces the original struct exactly.
func fromWire(w *wireTrialResult) *TrialResult {
	m := w.Measurement
	return &TrialResult{Node: w.Node, Measurement: runner.Measurement{
		Key: m.Key, Walls: m.Walls, Mean: m.Mean, Pauses: m.Pauses,
		MeanPause: m.MeanPause, Failed: m.Failed, Failure: m.Failure,
		FailureMessage: m.FailureMessage, CostSeconds: m.CostSeconds,
		HedgeCostSeconds: m.HedgeCostSeconds, FromCache: m.FromCache,
		Attempts: m.Attempts, Flakes: m.Flakes, Transient: m.Transient,
	}}
}

// EncodeTrialResult writes res in its compact wire form. The evald
// server's evaluate endpoint responds through it; the emitted field names
// match the plain structs, so any std-JSON consumer decodes it unchanged.
func EncodeTrialResult(w io.Writer, res *TrialResult) error {
	return json.NewEncoder(w).Encode(toWire(res))
}

// ErrorEnvelope is the JSON body of every evald rejection: a stable
// machine code, a human diagnostic, and — for shed requests — a retry
// hint. A bogus payload yields this envelope with status 400, never a
// worker panic.
type ErrorEnvelope struct {
	Error             string `json:"error"`
	Code              string `json:"code"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// RequestError is a typed protocol rejection: the request itself is
// invalid, every node would refuse it the same way, and the dispatch layer
// treats it as a deterministic verdict rather than a node fault.
type RequestError struct {
	Code string
	msg  string
}

func (e *RequestError) Error() string { return e.msg }

func reject(code, format string, args ...any) *RequestError {
	return &RequestError{Code: code, msg: fmt.Sprintf(format, args...)}
}

// Validate checks the request's self-contained invariants (bounds and
// required fields). Flag parsing and benchmark resolution happen later,
// against a registry and profile table, and return their own codes.
func (q *TrialRequest) Validate() error {
	// Note: an empty Key is legitimate — it is the canonical key of the
	// all-defaults configuration (the baseline trial). Key integrity is
	// enforced by ParseConfig's mismatch check instead.
	switch {
	case q.Benchmark == "":
		return reject(CodeBadPayload, "dispatch: request missing benchmark")
	case q.Reps < 1 || q.Reps > MaxReps:
		return reject(CodeBadPayload, "dispatch: reps %d outside [1, %d]", q.Reps, MaxReps)
	case q.RepBase < 0 || q.RepBase > 1<<40:
		return reject(CodeBadPayload, "dispatch: rep base %d out of range", q.RepBase)
	case len(q.Args) > MaxArgs:
		return reject(CodeBadPayload, "dispatch: %d args exceed limit %d", len(q.Args), MaxArgs)
	case q.TimeoutSeconds < 0 || q.TimeoutSeconds > 1e9:
		return reject(CodeBadPayload, "dispatch: timeout %g out of range", q.TimeoutSeconds)
	case q.Noise > 1:
		return reject(CodeBadPayload, "dispatch: noise %g out of range", q.Noise)
	case q.Phase < 0 || q.Phase > 1<<20:
		return reject(CodeBadPayload, "dispatch: phase %d out of range", q.Phase)
	case q.Phase > 0 && q.Shift == nil:
		return reject(CodeBadPayload, "dispatch: phase %d without a shift", q.Phase)
	case q.Phase == 0 && q.Shift != nil:
		return reject(CodeBadPayload, "dispatch: shift without a phase")
	}
	if q.Shift != nil {
		if err := q.Shift.Validate(); err != nil {
			return reject(CodeBadPayload, "dispatch: %v", err)
		}
	}
	return nil
}

// DecodeTrialRequest parses and validates a request body. Unknown fields
// fail closed: a request from a different protocol generation must be
// rejected loudly, not half-understood.
func DecodeTrialRequest(data []byte) (*TrialRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var q TrialRequest
	if err := dec.Decode(&q); err != nil {
		return nil, reject(CodeBadPayload, "dispatch: decode request: %v", err)
	}
	if dec.More() {
		return nil, reject(CodeBadPayload, "dispatch: trailing data after request")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// ParseConfig resolves the request's Args against reg and verifies the
// declared key matches the canonical key of the parsed configuration.
func (q *TrialRequest) ParseConfig(reg *flags.Registry) (*flags.Config, error) {
	cfg := flags.NewConfig(reg)
	if err := q.ParseConfigInto(cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ParseConfigInto is ParseConfig into caller-owned scratch: it resolves
// Args into cfg (resetting it first) and verifies the declared key. The
// evaluation hot path pairs it with Registry.AcquireConfig so a node
// serving thousands of trials never allocates a registry-wide Config per
// request.
func (q *TrialRequest) ParseConfigInto(cfg *flags.Config) error {
	if err := flags.ParseArgsInto(cfg, q.Args); err != nil {
		return reject(CodeBadFlag, "dispatch: parse args: %v", err)
	}
	if key := cfg.Key(); key != q.Key {
		return reject(CodeKeyMismatch, "dispatch: declared key %q but args derive %q", q.Key, key)
	}
	return nil
}
