package dispatch

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/flags"
	"repro/internal/workload"
)

func wantCode(t *testing.T, err error, code string) {
	t.Helper()
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("want *RequestError(%s), got %T: %v", code, err, err)
	}
	if re.Code != code {
		t.Fatalf("code = %q, want %q (err: %v)", re.Code, code, err)
	}
}

func validRequest(t *testing.T) *TrialRequest {
	t.Helper()
	reg := flags.NewRegistry()
	cfg := flags.NewConfig(reg)
	cfg.SetInt("MaxHeapSize", 1<<30)
	return &TrialRequest{
		Key: cfg.Key(), Benchmark: "fop", Args: cfg.CommandLine(),
		RepBase: 0, Reps: 2, TimeoutSeconds: 60, Noise: -1,
	}
}

func TestDecodeTrialRequestRoundTrip(t *testing.T) {
	req := validRequest(t)
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrialRequest(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Key != req.Key || got.Benchmark != req.Benchmark || got.Reps != req.Reps {
		t.Fatalf("round trip mangled the request: %+v", got)
	}
}

func TestDecodeTrialRequestRejections(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not json", `]][[`},
		{"truncated", `{"key":"k","bench`},
		{"unknown field", `{"key":"k","benchmark":"fop","reps":1,"noise":-1,"exploit":"x"}`},
		{"trailing data", `{"key":"k","benchmark":"fop","reps":1,"noise":-1}{"again":1}`},
		{"missing benchmark", `{"key":"k","reps":1,"noise":-1}`},
		{"zero reps", `{"key":"k","benchmark":"fop","reps":0,"noise":-1}`},
		{"huge reps", `{"key":"k","benchmark":"fop","reps":99999,"noise":-1}`},
		{"negative rep base", `{"key":"k","benchmark":"fop","reps":1,"rep_base":-1,"noise":-1}`},
		{"negative timeout", `{"key":"k","benchmark":"fop","reps":1,"timeout_seconds":-5,"noise":-1}`},
		{"absurd noise", `{"key":"k","benchmark":"fop","reps":1,"noise":40}`},
		{"wrong type", `{"key":17,"benchmark":"fop","reps":1,"noise":-1}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeTrialRequest([]byte(c.body))
			wantCode(t, err, CodeBadPayload)
		})
	}
}

func TestParseConfigRejectsUnknownFlag(t *testing.T) {
	req := validRequest(t)
	req.Args = []string{"-XX:+EnableTimeTravel"}
	_, err := req.ParseConfig(flags.NewRegistry())
	wantCode(t, err, CodeBadFlag)
}

func TestParseConfigRejectsKeyMismatch(t *testing.T) {
	req := validRequest(t)
	req.Key = "lies"
	_, err := req.ParseConfig(flags.NewRegistry())
	wantCode(t, err, CodeKeyMismatch)
}

func TestEvalRejectsWrongBenchmark(t *testing.T) {
	prof, _ := workload.ByName("h2")
	req := validRequest(t) // declares fop
	_, err := Eval(prof, flags.NewRegistry(), req)
	wantCode(t, err, CodeBadBenchmark)
}

func TestEvalMeasures(t *testing.T) {
	prof, _ := workload.ByName("fop")
	req := validRequest(t)
	res, err := Eval(prof, flags.NewRegistry(), req)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if res.Measurement.Key != req.Key {
		t.Fatalf("measurement key %q != request key %q", res.Measurement.Key, req.Key)
	}
	if res.Measurement.Failed || len(res.Measurement.Walls) != req.Reps {
		t.Fatalf("unexpected measurement: %+v", res.Measurement)
	}
}

// TestEvalRepBaseShiftsNoise: the same trial at different rep bases is a
// different draw — the mechanism that makes retries fresh measurements —
// while the same rep base reproduces bytes exactly.
func TestEvalRepBaseShiftsNoise(t *testing.T) {
	prof, _ := workload.ByName("fop")
	reg := flags.NewRegistry()
	req := validRequest(t)

	a, err := Eval(prof, reg, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Eval(prof, reg, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Measurement.Mean != b.Measurement.Mean {
		t.Fatal("identical requests must produce identical measurements")
	}
	shifted := *req
	shifted.RepBase = 100
	c, err := Eval(prof, reg, &shifted)
	if err != nil {
		t.Fatal(err)
	}
	if c.Measurement.Mean == a.Measurement.Mean {
		t.Fatal("shifting the rep base should draw fresh noise")
	}
}

func TestNodeErrorMessage(t *testing.T) {
	ne := &NodeError{Node: "n1", Status: 503, Err: errors.New("boom")}
	if msg := ne.Error(); !strings.Contains(msg, "n1") || !strings.Contains(msg, "boom") {
		t.Fatalf("node error should name the node and cause: %q", msg)
	}
	if !errors.Is(ne, ne.Err) && ne.Unwrap() == nil {
		t.Fatal("node error should unwrap its cause")
	}
}
