package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// EvaluatePath is the evald measurement endpoint.
const EvaluatePath = "/v1/evaluate"

// EvaluateBatchPath is the evald batched-measurement endpoint.
const EvaluateBatchPath = "/v1/evaluate-batch"

// HealthPath is the evald liveness endpoint heartbeats probe.
const HealthPath = "/healthz"

// NodeError classifies a failed placement on one node. Transport faults
// (connection refused, 5xx, shed, garbled response) are transient: the
// trial is silently re-dispatched elsewhere and the node marked suspect.
// Permanent errors are protocol rejections (4xx envelopes): every node
// would refuse the same request, so re-dispatching is pointless and the
// rejection becomes a deterministic verdict for the trial.
type NodeError struct {
	// Node names the evaluator that failed.
	Node string
	// Status is the HTTP status when the node answered at all.
	Status int
	// Code is the envelope code for protocol rejections.
	Code string
	// Permanent marks a deterministic protocol rejection.
	Permanent bool
	// RetryAfter is the node's own backoff hint (429 shed responses). The
	// pool honors it as a cooldown floor instead of hammering a loaded node.
	RetryAfter time.Duration
	// Err is the underlying cause.
	Err error
}

func (e *NodeError) Error() string {
	verb := "placement failed"
	if e.Permanent {
		verb = "rejected trial"
	}
	s := fmt.Sprintf("dispatch: node %s %s", e.Node, verb)
	if e.Status != 0 {
		s += fmt.Sprintf(" (http %d)", e.Status)
	}
	if e.Code != "" {
		s += fmt.Sprintf(" [%s]", e.Code)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *NodeError) Unwrap() error { return e.Err }

// Remote is the HTTP/JSON Evaluator: one POST per evaluation attempt
// against an evald node. Safe for concurrent use.
type Remote struct {
	base string
	// Client is the HTTP client; defaults to a dedicated client so node
	// connection pools are independent of the ambient default transport.
	Client *http.Client
	// RequestTimeout bounds one evaluation round trip in real time.
	// Defaults to 30s — generous, because the simulator answers in
	// microseconds and anything slower is a sick node.
	RequestTimeout time.Duration
	// BatchTimeout bounds one evaluate-batch round trip; it defaults to
	// RequestTimeout (a batch is served concurrently node-side, so its
	// wall time tracks the slowest trial, not the sum).
	BatchTimeout time.Duration
	// Token is the shared bearer credential stamped on every request.
	Token string
	// NodeName overrides the fleet identity (Name); empty means the base
	// URL. Dynamic membership sets it so the pool, the lease table, and
	// the fleet journal all key a joined node by its registered name.
	NodeName string
}

// NewRemote builds a remote evaluator for addr, which may be a bare
// "host:port" or a full "http://..." base URL.
func NewRemote(addr string) *Remote {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Remote{base: base, Client: &http.Client{}}
}

// NewSecureRemote builds a remote evaluator whose transport and requests
// carry sec's credentials: the client TLS material for the dial and the
// bearer token on every request. A bare "host:port" addr gets the scheme
// the security config implies.
func NewSecureRemote(addr string, sec *Security) (*Remote, error) {
	if sec == nil {
		sec = &Security{}
	}
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = sec.Scheme() + "://" + base
	}
	client, err := sec.HTTPClient()
	if err != nil {
		return nil, err
	}
	return &Remote{base: base, Client: client, Token: sec.Token}, nil
}

// Name implements Evaluator; the node is named by its base URL unless
// NodeName overrides it.
func (r *Remote) Name() string {
	if r.NodeName != "" {
		return r.NodeName
	}
	return r.base
}

func (r *Remote) timeout() time.Duration {
	if r.RequestTimeout > 0 {
		return r.RequestTimeout
	}
	return 30 * time.Second
}

func (r *Remote) fail(status int, err error) *NodeError {
	return &NodeError{Node: r.base, Status: status, Err: err}
}

// post runs one JSON POST round trip and returns the status, response
// body (capped at maxBody), and headers. Transport faults come back as
// transient NodeErrors.
func (r *Remote) post(ctx context.Context, path string, payload any, timeout time.Duration, maxBody int64) (int, []byte, http.Header, error) {
	var body []byte
	// Batch requests go through the purpose-built appender when they are
	// representable (wireenc.go) — at batch width the reflection encoder
	// is real per-trial overhead; everything else takes encoding/json.
	if br, ok := payload.(*BatchRequest); ok {
		body, ok = encodeBatchRequest(br)
		if !ok {
			body = nil
		}
	}
	if body == nil {
		var err error
		body, err = json.Marshal(payload)
		if err != nil {
			return 0, nil, nil, r.fail(0, fmt.Errorf("encode request: %w", err))
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, r.fail(0, err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if r.Token != "" {
		hr.Header.Set("Authorization", "Bearer "+r.Token)
	}
	resp, err := r.Client.Do(hr)
	if err != nil {
		return 0, nil, nil, r.fail(0, err)
	}
	defer resp.Body.Close()
	// Size the read buffer from Content-Length: growing a fresh buffer
	// through io.ReadAll is measurable garbage at batch width.
	var buf bytes.Buffer
	if n := resp.ContentLength; n > 0 && n < maxBody {
		buf.Grow(int(n))
	}
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, maxBody)); err != nil {
		return resp.StatusCode, nil, resp.Header, r.fail(resp.StatusCode, fmt.Errorf("read response: %w", err))
	}
	return resp.StatusCode, buf.Bytes(), resp.Header, nil
}

// decodeBody unmarshals a response body through a streaming decoder,
// skipping json.Unmarshal's whole-body validity pre-scan — the decode
// itself reports malformed bytes, and on the batch path the second scan
// is a per-trial cost for no added safety.
func decodeBody(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// retryAfterHint extracts the node's backoff hint from a shed response:
// the standard Retry-After header (delay-seconds form) or the envelope's
// retry_after_seconds field, whichever is present.
func retryAfterHint(h http.Header, data []byte) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(h.Get("Retry-After"))); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.RetryAfterSeconds > 0 {
		return time.Duration(env.RetryAfterSeconds) * time.Second
	}
	return 0
}

// classify turns a non-200 response into the NodeError the pool acts on.
func (r *Remote) classify(status int, data []byte, h http.Header) error {
	switch {
	case status == http.StatusUnauthorized:
		// The node refused our credentials. That is a property of this
		// controller↔node pairing, not of the trial — another node with
		// matching credentials can still serve it — so the error is
		// transient (the breaker quarantines the misconfigured node) but
		// keeps its code for diagnostics and fail-closed accounting.
		return &NodeError{Node: r.base, Status: status, Code: CodeUnauthorized, Err: fmt.Errorf("credentials rejected")}
	case status == http.StatusTooManyRequests:
		// Shed load is the node's problem, and the trial goes elsewhere —
		// but the node told us when it wants to be bothered again, and the
		// pool honors that as its cooldown floor.
		return &NodeError{Node: r.base, Status: status, Code: CodeBusy, RetryAfter: retryAfterHint(h, data), Err: fmt.Errorf("node shedding load")}
	case status >= 400 && status < 500:
		// A 4xx envelope is the node refusing the request itself: a
		// deterministic verdict, not a node fault.
		var env ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Error == "" {
			// A 4xx without a well-formed envelope is not our protocol
			// speaking; treat the node as broken, not the request.
			return r.fail(status, fmt.Errorf("malformed rejection body"))
		}
		return &NodeError{Node: r.base, Status: status, Code: env.Code, Permanent: true, Err: fmt.Errorf("%s", env.Error)}
	default:
		// 5xx or anything else: the node is sick.
		return r.fail(status, fmt.Errorf("unexpected status"))
	}
}

// Evaluate implements Evaluator.
func (r *Remote) Evaluate(ctx context.Context, req *TrialRequest) (*TrialResult, error) {
	status, data, hdr, err := r.post(ctx, EvaluatePath, req, r.timeout(), MaxRequestBytes)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, r.classify(status, data, hdr)
	}
	var wire wireTrialResult
	if err := decodeBody(data, &wire); err != nil {
		return nil, r.fail(status, fmt.Errorf("decode response: %w", err))
	}
	return fromWire(&wire), nil
}

func (r *Remote) batchTimeout() time.Duration {
	if r.BatchTimeout > 0 {
		return r.BatchTimeout
	}
	return r.timeout()
}

// EvaluateBatch ships a whole batch of trials in one round trip. A non-OK
// response or malformed body fails the batch as one transient transport
// fault (the caller salvages nothing and advances the breaker once); an OK
// response always carries one entry per trial, each settling its own trial
// independently.
func (r *Remote) EvaluateBatch(ctx context.Context, req *BatchRequest) (*BatchResult, error) {
	status, data, hdr, err := r.post(ctx, EvaluateBatchPath, req, r.batchTimeout(), MaxBatchRequestBytes)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, r.classify(status, data, hdr)
	}
	res, err := decodeBatchResult(data)
	if err != nil {
		return nil, r.fail(status, fmt.Errorf("decode batch response: %w", err))
	}
	if len(res.Entries) != len(req.Trials) {
		return nil, r.fail(status, fmt.Errorf("batch answered %d entries for %d trials", len(res.Entries), len(req.Trials)))
	}
	return res, nil
}

// Ping probes the node's liveness endpoint; used by Pool heartbeats.
func (r *Remote) Ping(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, r.timeout())
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+HealthPath, nil)
	if err != nil {
		return r.fail(0, err)
	}
	resp, err := r.Client.Do(hr)
	if err != nil {
		return r.fail(0, err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return r.fail(resp.StatusCode, fmt.Errorf("unhealthy"))
	}
	return nil
}
