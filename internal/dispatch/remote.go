package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// EvaluatePath is the evald measurement endpoint.
const EvaluatePath = "/v1/evaluate"

// HealthPath is the evald liveness endpoint heartbeats probe.
const HealthPath = "/healthz"

// NodeError classifies a failed placement on one node. Transport faults
// (connection refused, 5xx, shed, garbled response) are transient: the
// trial is silently re-dispatched elsewhere and the node marked suspect.
// Permanent errors are protocol rejections (4xx envelopes): every node
// would refuse the same request, so re-dispatching is pointless and the
// rejection becomes a deterministic verdict for the trial.
type NodeError struct {
	// Node names the evaluator that failed.
	Node string
	// Status is the HTTP status when the node answered at all.
	Status int
	// Code is the envelope code for protocol rejections.
	Code string
	// Permanent marks a deterministic protocol rejection.
	Permanent bool
	// Err is the underlying cause.
	Err error
}

func (e *NodeError) Error() string {
	verb := "placement failed"
	if e.Permanent {
		verb = "rejected trial"
	}
	s := fmt.Sprintf("dispatch: node %s %s", e.Node, verb)
	if e.Status != 0 {
		s += fmt.Sprintf(" (http %d)", e.Status)
	}
	if e.Code != "" {
		s += fmt.Sprintf(" [%s]", e.Code)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *NodeError) Unwrap() error { return e.Err }

// Remote is the HTTP/JSON Evaluator: one POST per evaluation attempt
// against an evald node. Safe for concurrent use.
type Remote struct {
	base string
	// Client is the HTTP client; defaults to a dedicated client so node
	// connection pools are independent of the ambient default transport.
	Client *http.Client
	// RequestTimeout bounds one evaluation round trip in real time.
	// Defaults to 30s — generous, because the simulator answers in
	// microseconds and anything slower is a sick node.
	RequestTimeout time.Duration
}

// NewRemote builds a remote evaluator for addr, which may be a bare
// "host:port" or a full "http://..." base URL.
func NewRemote(addr string) *Remote {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Remote{base: base, Client: &http.Client{}}
}

// Name implements Evaluator; the node is named by its base URL.
func (r *Remote) Name() string { return r.base }

func (r *Remote) timeout() time.Duration {
	if r.RequestTimeout > 0 {
		return r.RequestTimeout
	}
	return 30 * time.Second
}

func (r *Remote) fail(status int, err error) *NodeError {
	return &NodeError{Node: r.base, Status: status, Err: err}
}

// Evaluate implements Evaluator.
func (r *Remote) Evaluate(ctx context.Context, req *TrialRequest) (*TrialResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, r.fail(0, fmt.Errorf("encode request: %w", err))
	}
	ctx, cancel := context.WithTimeout(ctx, r.timeout())
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+EvaluatePath, bytes.NewReader(body))
	if err != nil {
		return nil, r.fail(0, err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := r.Client.Do(hr)
	if err != nil {
		return nil, r.fail(0, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxRequestBytes))
	if err != nil {
		return nil, r.fail(resp.StatusCode, fmt.Errorf("read response: %w", err))
	}

	switch {
	case resp.StatusCode == http.StatusOK:
		var res TrialResult
		if err := json.Unmarshal(data, &res); err != nil {
			return nil, r.fail(resp.StatusCode, fmt.Errorf("decode response: %w", err))
		}
		return &res, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests:
		// A 4xx envelope is the node refusing the request itself: a
		// deterministic verdict, not a node fault. 429 is the exception —
		// shed load is the node's problem, and the trial goes elsewhere.
		var env ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Error == "" {
			// A 4xx without a well-formed envelope is not our protocol
			// speaking; treat the node as broken, not the request.
			return nil, r.fail(resp.StatusCode, fmt.Errorf("malformed rejection body"))
		}
		return nil, &NodeError{Node: r.base, Status: resp.StatusCode, Code: env.Code, Permanent: true, Err: fmt.Errorf("%s", env.Error)}
	default:
		// 429, 5xx, or anything else: the node is sick or shedding.
		return nil, r.fail(resp.StatusCode, fmt.Errorf("unexpected status"))
	}
}

// Ping probes the node's liveness endpoint; used by Pool heartbeats.
func (r *Remote) Ping(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, r.timeout())
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+HealthPath, nil)
	if err != nil {
		return r.fail(0, err)
	}
	resp, err := r.Client.Do(hr)
	if err != nil {
		return r.fail(0, err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return r.fail(resp.StatusCode, fmt.Errorf("unhealthy"))
	}
	return nil
}
