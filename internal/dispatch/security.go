package dispatch

import (
	"crypto/subtle"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Wire security is two independent, composable layers, both fail-closed:
//
//   - Mutual TLS: -tls-cert/-tls-key name this process's certificate,
//     -tls-ca the CA that signed the peer's. Servers demand and verify a
//     client certificate; clients verify the server against the same CA.
//     A connection from outside the CA's trust domain never reaches a
//     handler — the handshake itself fails.
//   - Shared bearer token: -auth-token is compared in constant time
//     against the Authorization header of every request. A missing or
//     wrong token is a 401 ErrorEnvelope with CodeUnauthorized.
//
// Either layer alone is useful (token-only for trusted networks, mTLS-only
// for cert-managed fleets); together they give transport identity plus an
// application-level credential that rotates without reissuing certs.

// Security carries the wire credentials shared by controllers and nodes.
// The zero value is plaintext-and-open (the loopback/test default).
type Security struct {
	// CertFile and KeyFile are this process's PEM certificate and key.
	CertFile string
	KeyFile  string
	// CAFile is the PEM CA bundle the peer must chain to. Setting it on a
	// server demands client certificates (mutual TLS).
	CAFile string
	// Token is the shared bearer token; empty disables the check.
	Token string
}

// TLS reports whether any TLS material is configured.
func (s *Security) TLS() bool {
	return s != nil && (s.CertFile != "" || s.KeyFile != "" || s.CAFile != "")
}

// Enabled reports whether the security layer does anything at all.
func (s *Security) Enabled() bool { return s.TLS() || (s != nil && s.Token != "") }

func (s *Security) loadCA() (*x509.CertPool, error) {
	pem, err := os.ReadFile(s.CAFile)
	if err != nil {
		return nil, fmt.Errorf("dispatch: read CA bundle: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("dispatch: no certificates in CA bundle %s", s.CAFile)
	}
	return pool, nil
}

// ServerTLS builds the tls.Config for a listening evald or controller
// registration endpoint. With a CA configured, client certificates are
// required and verified — an unknown peer fails the handshake, fail-closed.
func (s *Security) ServerTLS() (*tls.Config, error) {
	if !s.TLS() {
		return nil, nil
	}
	if s.CertFile == "" || s.KeyFile == "" {
		return nil, fmt.Errorf("dispatch: TLS serving requires both -tls-cert and -tls-key")
	}
	cert, err := tls.LoadX509KeyPair(s.CertFile, s.KeyFile)
	if err != nil {
		return nil, fmt.Errorf("dispatch: load key pair: %w", err)
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	if s.CAFile != "" {
		ca, err := s.loadCA()
		if err != nil {
			return nil, err
		}
		cfg.ClientCAs = ca
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

// ClientTLS builds the tls.Config for dialing a TLS peer: the CA bundle
// verifies the server, and this process's certificate (when configured)
// answers the server's mutual-TLS demand.
func (s *Security) ClientTLS() (*tls.Config, error) {
	if !s.TLS() {
		return nil, nil
	}
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if s.CAFile != "" {
		ca, err := s.loadCA()
		if err != nil {
			return nil, err
		}
		cfg.RootCAs = ca
	}
	if s.CertFile != "" {
		if s.KeyFile == "" {
			return nil, fmt.Errorf("dispatch: -tls-cert without -tls-key")
		}
		cert, err := tls.LoadX509KeyPair(s.CertFile, s.KeyFile)
		if err != nil {
			return nil, fmt.Errorf("dispatch: load key pair: %w", err)
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}

// HTTPClient builds an HTTP client whose transport dials with the
// configured client TLS material. Plaintext configs get a plain client.
func (s *Security) HTTPClient() (*http.Client, error) {
	tcfg, err := s.ClientTLS()
	if err != nil {
		return nil, err
	}
	if tcfg == nil {
		return &http.Client{}, nil
	}
	return &http.Client{Transport: &http.Transport{TLSClientConfig: tcfg}}, nil
}

// Scheme returns the URL scheme matching the security config.
func (s *Security) Scheme() string {
	if s.TLS() {
		return "https"
	}
	return "http"
}

// Authorize checks the request's bearer token in constant time. It returns
// true when the request may proceed; handlers answer false with a 401
// CodeUnauthorized envelope.
func (s *Security) Authorize(r *http.Request) bool {
	if s == nil || s.Token == "" {
		return true
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(s.Token)) == 1
}

// Bearer stamps the shared token onto an outbound request.
func (s *Security) Bearer(r *http.Request) {
	if s != nil && s.Token != "" {
		r.Header.Set("Authorization", "Bearer "+s.Token)
	}
}
