// Wire-security regression suite: mutual TLS and the shared bearer token
// must both fail closed. An unauthenticated or wrong-CA peer gets a
// handshake failure or a 401 envelope — never an evaluation, never a
// registration — and a single misconfigured node quarantines without
// condemning the trials it refused.
package dispatch_test

import (
	"context"
	"crypto/tls"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/dispatch/dispatchtest"
	"repro/internal/evald"
	"repro/internal/flags"
	"repro/internal/runner"
)

// trialReq is a minimal valid evaluate payload for the "fop" profile's
// default configuration.
func trialReq() *dispatch.TrialRequest {
	return &dispatch.TrialRequest{Benchmark: "fop", Reps: 1, Noise: -1}
}

// startMTLSEvald serves a real evald node behind the Security config's
// TLS material and returns its host:port.
func startMTLSEvald(t *testing.T, sec *dispatch.Security, cfg evald.Config) string {
	t.Helper()
	tcfg, err := sec.ServerTLS()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: evald.New(cfg)}
	go srv.Serve(tls.NewListener(ln, tcfg))
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// TestMTLSFailClosed: an evald node demanding client certificates serves
// peers from its own CA's trust domain and rejects everyone else at the
// handshake — no credentials, no evaluation, fail-closed.
func TestMTLSFailClosed(t *testing.T) {
	dir := t.TempDir()
	ca, err := dispatchtest.NewCA(dir, "fleet-ca")
	if err != nil {
		t.Fatal(err)
	}
	srvCert, srvKey, err := ca.Issue(dir, "node")
	if err != nil {
		t.Fatal(err)
	}
	cliCert, cliKey, err := ca.Issue(dir, "controller")
	if err != nil {
		t.Fatal(err)
	}
	rogueCA, err := dispatchtest.NewCA(dir, "rogue-ca")
	if err != nil {
		t.Fatal(err)
	}
	rogueCert, rogueKey, err := rogueCA.Issue(dir, "intruder")
	if err != nil {
		t.Fatal(err)
	}

	addr := startMTLSEvald(t, &dispatch.Security{CertFile: srvCert, KeyFile: srvKey, CAFile: ca.File},
		evald.Config{Node: "sec0"})

	// The right credentials evaluate.
	good, err := dispatch.NewSecureRemote(addr, &dispatch.Security{
		CertFile: cliCert, KeyFile: cliKey, CAFile: ca.File,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := good.Evaluate(context.Background(), trialReq())
	if err != nil {
		t.Fatalf("trusted peer should evaluate: %v", err)
	}
	if res.Measurement.Failed {
		t.Fatalf("measurement failed: %+v", res.Measurement)
	}

	// No client certificate: the server's RequireAndVerifyClientCert kills
	// the handshake.
	anon, err := dispatch.NewSecureRemote(addr, &dispatch.Security{CAFile: ca.File})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anon.Evaluate(context.Background(), trialReq()); err == nil {
		t.Fatal("peer without a client certificate must be rejected")
	} else if permanentNodeError(err) {
		t.Fatalf("a handshake failure is a transport fault, not a trial verdict: %v", err)
	}

	// A certificate from outside the CA's trust domain: same fate.
	intruder, err := dispatch.NewSecureRemote(addr, &dispatch.Security{
		CertFile: rogueCert, KeyFile: rogueKey, CAFile: ca.File,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intruder.Evaluate(context.Background(), trialReq()); err == nil {
		t.Fatal("wrong-CA peer must be rejected")
	}

	// And the inverse: a client verifying against the rogue CA refuses the
	// legitimate server — trust is mutual.
	doubter, err := dispatch.NewSecureRemote(addr, &dispatch.Security{
		CertFile: cliCert, KeyFile: cliKey, CAFile: rogueCA.File,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doubter.Evaluate(context.Background(), trialReq()); err == nil {
		t.Fatal("client must refuse a server outside its own CA's trust domain")
	}
}

// TestBearerTokenFailClosed: an evald node with a token demands it on
// every evaluate request; a missing or wrong token is a 401
// CodeUnauthorized envelope and nothing is evaluated.
func TestBearerTokenFailClosed(t *testing.T) {
	ts := httptest.NewServer(evald.New(evald.Config{
		Node: "tok0", Auth: &dispatch.Security{Token: "hunter2"},
	}))
	defer ts.Close()
	addr := ts.Listener.Addr().String()

	for name, sec := range map[string]*dispatch.Security{
		"no token":    {},
		"wrong token": {Token: "hunter3"},
	} {
		rem, err := dispatch.NewSecureRemote(addr, sec)
		if err != nil {
			t.Fatal(err)
		}
		_, err = rem.Evaluate(context.Background(), trialReq())
		var ne *dispatch.NodeError
		if !errors.As(err, &ne) {
			t.Fatalf("%s: want NodeError, got %v", name, err)
		}
		if ne.Status != http.StatusUnauthorized || ne.Code != dispatch.CodeUnauthorized {
			t.Fatalf("%s: want 401 %s, got %+v", name, dispatch.CodeUnauthorized, ne)
		}
		if ne.Permanent {
			t.Fatalf("%s: a credential mismatch is a node-pairing fault, not a trial verdict", name)
		}
	}

	good, err := dispatch.NewSecureRemote(addr, &dispatch.Security{Token: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Evaluate(context.Background(), trialReq()); err != nil {
		t.Fatalf("matching token should evaluate: %v", err)
	}
}

// TestPool401QuarantinesWithoutCondemning: one node of the fleet has the
// wrong token. Its 401s must not condemn trials (another node's matching
// credentials can still serve them) — the trial lands elsewhere and the
// misconfigured node takes breaker strikes like any sick node.
func TestPool401QuarantinesWithoutCondemning(t *testing.T) {
	token := &dispatch.Security{Token: "right"}
	ts := httptest.NewServer(evald.New(evald.Config{Node: "authed", Auth: token}))
	defer ts.Close()
	addr := ts.Listener.Addr().String()

	misconfigured, err := dispatch.NewSecureRemote(addr, &dispatch.Security{Token: "wrong"})
	if err != nil {
		t.Fatal(err)
	}
	misconfigured.NodeName = "misconfigured"
	authed, err := dispatch.NewSecureRemote(addr, token)
	if err != nil {
		t.Fatal(err)
	}

	pool, err := dispatch.NewPool(profileOf(t, "fop"), misconfigured, authed)
	if err != nil {
		t.Fatal(err)
	}
	m := pool.Measure(flags.NewConfig(flags.NewRegistry()), 1)
	if m.Failed {
		t.Fatalf("trial should re-dispatch past the misconfigured node: %+v", m)
	}
	if m.Failure == runner.NodeRejectedFailure {
		t.Fatal("a 401 must never condemn the trial as node-rejected")
	}
}

// TestRemoteHonorsRetryAfter: the Retry-After of a 429 shed response —
// header or envelope field — surfaces on the NodeError so the pool can
// floor the node's cooldown with it.
func TestRemoteHonorsRetryAfter(t *testing.T) {
	cases := []struct {
		name    string
		handler http.HandlerFunc
		want    time.Duration
	}{
		{"header", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "7")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"evald: node saturated","code":"busy"}`))
		}, 7 * time.Second},
		{"envelope", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"evald: node saturated","code":"busy","retry_after_seconds":3}`))
		}, 3 * time.Second},
		{"none", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"evald: node saturated","code":"busy"}`))
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(tc.handler)
			defer ts.Close()
			rem := dispatch.NewRemote(ts.Listener.Addr().String())
			_, err := rem.Evaluate(context.Background(), trialReq())
			var ne *dispatch.NodeError
			if !errors.As(err, &ne) {
				t.Fatalf("want NodeError, got %v", err)
			}
			if ne.Permanent {
				t.Fatal("shed load is transient")
			}
			if ne.RetryAfter != tc.want {
				t.Fatalf("RetryAfter = %v, want %v", ne.RetryAfter, tc.want)
			}
		})
	}
}

func permanentNodeError(err error) bool {
	var ne *dispatch.NodeError
	return errors.As(err, &ne) && ne.Permanent
}
