package dispatch

import (
	"math"
	"strconv"

	"repro/internal/runner"
)

// Hand-rolled encoders for the batch wire shapes, the sending twin of
// wirefast.go: reflection encoding of a 16-trial request (and its
// response) was the largest remaining per-trial cost in batched dispatch
// after the decode side went scanner-first. The emitted bytes are plain
// JSON — field names and omitempty semantics mirror the wire structs
// exactly, so any standard decoder (including older nodes and the
// reflection fallback) reads them unchanged. Encoding is opportunistic
// like decoding: a message the appenders cannot represent exactly
// (non-finite floats, drift fields) falls back to encoding/json.

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string. Quotes, backslashes, and
// control bytes are escaped; everything else — including multi-byte
// UTF-8 — passes through raw, which std decoders accept unchanged.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f in its shortest exact decimal form — the
// parse side (strconv.ParseFloat, used by both our scanner and
// encoding/json) recovers the identical bits. Non-finite values have no
// JSON spelling; ok=false tells the caller to fall back to
// encoding/json, which reports them as a proper error.
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64), true
}

// fieldSep appends the separator before a field: '{' for the first,
// ',' after.
func fieldSep(b []byte, first *bool) []byte {
	if *first {
		*first = false
		return append(b, '{')
	}
	return append(b, ',')
}

func appendFloatField(b []byte, first *bool, name string, f float64) ([]byte, bool) {
	b = fieldSep(b, first)
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return appendJSONFloat(b, f)
}

func appendFloatsField(b []byte, first *bool, name string, fs []float64) ([]byte, bool) {
	b = fieldSep(b, first)
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, '"', ':', '[')
	ok := true
	for i, f := range fs {
		if i > 0 {
			b = append(b, ',')
		}
		if b, ok = appendJSONFloat(b, f); !ok {
			return b, false
		}
	}
	return append(b, ']'), true
}

func appendStringField(b []byte, first *bool, name, s string) []byte {
	b = fieldSep(b, first)
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return appendJSONString(b, s)
}

func appendIntField(b []byte, first *bool, name string, n int) []byte {
	b = fieldSep(b, first)
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(n), 10)
}

func appendBoolField(b []byte, first *bool, name string) []byte {
	b = fieldSep(b, first)
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return append(b, "true"...)
}

// closeObject terminates an object opened through fieldSep; an object
// with no fields emitted still needs its braces.
func closeObject(b []byte, first bool) []byte {
	if first {
		return append(b, '{', '}')
	}
	return append(b, '}')
}

// appendMeasurement appends m in the wireMeasurement shape: identical
// field names, zero values elided.
func appendMeasurement(b []byte, m *runner.Measurement) ([]byte, bool) {
	first, ok := true, true
	if m.Key != "" {
		b = appendStringField(b, &first, "Key", m.Key)
	}
	if len(m.Walls) > 0 {
		if b, ok = appendFloatsField(b, &first, "Walls", m.Walls); !ok {
			return b, false
		}
	}
	if m.Mean != 0 {
		if b, ok = appendFloatField(b, &first, "Mean", m.Mean); !ok {
			return b, false
		}
	}
	if len(m.Pauses) > 0 {
		if b, ok = appendFloatsField(b, &first, "Pauses", m.Pauses); !ok {
			return b, false
		}
	}
	if m.MeanPause != 0 {
		if b, ok = appendFloatField(b, &first, "MeanPause", m.MeanPause); !ok {
			return b, false
		}
	}
	if m.Failed {
		b = appendBoolField(b, &first, "Failed")
	}
	if m.Failure != "" {
		b = appendStringField(b, &first, "Failure", string(m.Failure))
	}
	if m.FailureMessage != "" {
		b = appendStringField(b, &first, "FailureMessage", m.FailureMessage)
	}
	if m.CostSeconds != 0 {
		if b, ok = appendFloatField(b, &first, "CostSeconds", m.CostSeconds); !ok {
			return b, false
		}
	}
	if m.HedgeCostSeconds != 0 {
		if b, ok = appendFloatField(b, &first, "HedgeCostSeconds", m.HedgeCostSeconds); !ok {
			return b, false
		}
	}
	if m.FromCache {
		b = appendBoolField(b, &first, "FromCache")
	}
	if m.Attempts != 0 {
		b = appendIntField(b, &first, "Attempts", m.Attempts)
	}
	if m.Flakes != 0 {
		b = appendIntField(b, &first, "Flakes", m.Flakes)
	}
	if m.Transient {
		b = appendBoolField(b, &first, "Transient")
	}
	return closeObject(b, first), true
}

// encodeBatchResult renders res in its compact wire form without
// reflection. ok=false (non-finite float somewhere) means the caller
// must use the encoding/json path instead.
func encodeBatchResult(res *BatchResult) ([]byte, bool) {
	// A successful 16-trial batch is a little over 2KB on the wire.
	b := make([]byte, 0, 256+192*len(res.Entries))
	b = append(b, '{')
	if res.Node != "" {
		b = append(b, `"node":`...)
		b = appendJSONString(b, res.Node)
		b = append(b, ',')
	}
	b = append(b, `"entries":`...)
	if res.Entries == nil {
		b = append(b, "null}\n"...)
		return b, true
	}
	b = append(b, '[')
	ok := true
	for i := range res.Entries {
		if i > 0 {
			b = append(b, ',')
		}
		e := &res.Entries[i]
		first := true
		if e.Result != nil {
			b = fieldSep(b, &first)
			b = append(b, `"result":`...)
			rf := true
			if e.Result.Node != "" {
				b = appendStringField(b, &rf, "node", e.Result.Node)
			}
			b = fieldSep(b, &rf)
			b = append(b, `"measurement":`...)
			if b, ok = appendMeasurement(b, &e.Result.Measurement); !ok {
				return b, false
			}
			b = closeObject(b, rf)
		}
		if e.Error != nil {
			b = fieldSep(b, &first)
			b = append(b, `"error":`...)
			b = appendErrorEnvelope(b, e.Error)
		}
		b = closeObject(b, first)
	}
	b = append(b, ']', '}', '\n')
	return b, true
}

func appendErrorEnvelope(b []byte, env *ErrorEnvelope) []byte {
	b = append(b, `{"error":`...)
	b = appendJSONString(b, env.Error)
	b = append(b, `,"code":`...)
	b = appendJSONString(b, env.Code)
	if env.RetryAfterSeconds != 0 {
		b = append(b, `,"retry_after_seconds":`...)
		b = strconv.AppendInt(b, int64(env.RetryAfterSeconds), 10)
	}
	return append(b, '}')
}

// encodeBatchRequest renders req without reflection. Drift requests
// (phase/shift) and non-finite floats fall back to encoding/json;
// stationary sessions — the steady state — never do.
func encodeBatchRequest(req *BatchRequest) ([]byte, bool) {
	size := 64
	for i := range req.Trials {
		t := &req.Trials[i]
		size += 128 + len(t.Key) + len(t.Benchmark)
		for _, a := range t.Args {
			size += len(a) + 3
		}
	}
	b := make([]byte, 0, size)
	b = append(b, `{"trials":[`...)
	ok := true
	for i := range req.Trials {
		t := &req.Trials[i]
		if t.Phase != 0 || t.Shift != nil {
			return nil, false
		}
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"key":`...)
		b = appendJSONString(b, t.Key)
		b = append(b, `,"benchmark":`...)
		b = appendJSONString(b, t.Benchmark)
		if t.Args != nil {
			b = append(b, `,"args":[`...)
			for j, a := range t.Args {
				if j > 0 {
					b = append(b, ',')
				}
				b = appendJSONString(b, a)
			}
			b = append(b, ']')
		}
		b = append(b, `,"rep_base":`...)
		b = strconv.AppendInt(b, int64(t.RepBase), 10)
		b = append(b, `,"reps":`...)
		b = strconv.AppendInt(b, int64(t.Reps), 10)
		if t.TimeoutSeconds != 0 {
			b = append(b, `,"timeout_seconds":`...)
			if b, ok = appendJSONFloat(b, t.TimeoutSeconds); !ok {
				return nil, false
			}
		}
		b = append(b, `,"noise":`...)
		if b, ok = appendJSONFloat(b, t.Noise); !ok {
			return nil, false
		}
		b = append(b, '}')
	}
	b = append(b, ']', '}')
	return b, true
}
