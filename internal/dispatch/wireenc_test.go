package dispatch

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/jvmsim"
	"repro/internal/runner"
)

// TestEncodeBatchResultMatchesStd drives the appender and the reflection
// encoder over the same results — including the string and float shapes
// most likely to expose an escaping or formatting bug — and demands that
// a reader cannot tell which encoder produced the bytes.
func TestEncodeBatchResultMatchesStd(t *testing.T) {
	cases := []struct {
		name string
		res  *BatchResult
	}{
		{"nil entries", &BatchResult{Node: "n1"}},
		{"empty entries", &BatchResult{Entries: []BatchEntry{}}},
		{"empty entry", &BatchResult{Entries: []BatchEntry{{}}}},
		{"success", &BatchResult{Node: "n1", Entries: []BatchEntry{{
			Result: &TrialResult{Node: "n1", Measurement: runner.Measurement{
				Key: "MaxHeapSize=268435456 UseParallelGC=true", Walls: []float64{1.25, 1.5},
				Mean: 1.375, Pauses: []float64{0.004}, MeanPause: 0.004,
				CostSeconds: 4.52984832e+08, Attempts: 1,
			}},
		}}}},
		{"failure flags", &BatchResult{Entries: []BatchEntry{{
			Result: &TrialResult{Measurement: runner.Measurement{
				Failed: true, Failure: jvmsim.FailureKind("crash"),
				FailureMessage: "exit 134", CostSeconds: 0.5,
				HedgeCostSeconds: 1e-7, FromCache: true,
				Attempts: 2, Flakes: 1, Transient: true,
			}},
		}}}},
		{"nasty strings", &BatchResult{Node: "weird \"node\"\n", Entries: []BatchEntry{{
			Result: &TrialResult{Node: "tab\there", Measurement: runner.Measurement{
				Key:            `quote " backslash \ slash /`,
				FailureMessage: "control \x01\x1f\r bytes, ünïcode ☃",
				Failure:        jvmsim.FailureKind("<&>"),
			}},
		}}}},
		{"error entries", &BatchResult{Entries: []BatchEntry{
			{Error: &ErrorEnvelope{Error: "evald: node saturated", Code: CodeBusy, RetryAfterSeconds: 3}},
			{Error: &ErrorEnvelope{Error: "bad \"trial\"", Code: CodeBadPayload}},
		}}},
		{"mixed", &BatchResult{Node: "n2", Entries: []BatchEntry{
			{Result: &TrialResult{Measurement: runner.Measurement{Mean: -5.5, Walls: []float64{0, -0.25, 1e21}}}},
			{Error: &ErrorEnvelope{Error: "busy", Code: CodeBusy, RetryAfterSeconds: 1}},
			{Result: &TrialResult{Measurement: runner.Measurement{Key: "zeroes elided"}}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc, ok := encodeBatchResult(tc.res)
			if !ok {
				t.Fatalf("appender refused a finite result: %+v", tc.res)
			}
			var std bytes.Buffer
			if err := stdEncodeBatchResult(&std, tc.res); err != nil {
				t.Fatalf("reflection encode: %v", err)
			}
			fromFast, err := decodeBatchResult(enc)
			if err != nil {
				t.Fatalf("appender output rejected: %v (%s)", err, enc)
			}
			fromStd, err := decodeBatchResult(std.Bytes())
			if err != nil {
				t.Fatalf("reflection output rejected: %v (%s)", err, std.Bytes())
			}
			if !reflect.DeepEqual(fromFast, fromStd) {
				t.Fatalf("encoders disagree after round trip:\nappender:   %+v (%s)\nreflection: %+v (%s)",
					fromFast, enc, fromStd, std.Bytes())
			}
			// The appender's bytes must also satisfy a plain strict decoder
			// directly — not just our own fast scanner.
			var wire wireBatchResult
			if err := decodeBody(enc, &wire); err != nil {
				t.Fatalf("encoding/json rejects appender output: %v (%s)", err, enc)
			}
			if got := batchFromWire(&wire); !reflect.DeepEqual(got, fromStd) {
				t.Fatalf("strict decode of appender bytes diverges:\ngot:  %+v\nwant: %+v", got, fromStd)
			}
		})
	}
}

// TestEncodeBatchResultNonFinite holds the fallback contract: values with
// no JSON spelling make the appender bail rather than emit garbage.
func TestEncodeBatchResultNonFinite(t *testing.T) {
	bad := []*BatchResult{
		{Entries: []BatchEntry{{Result: &TrialResult{Measurement: runner.Measurement{Mean: math.NaN()}}}}},
		{Entries: []BatchEntry{{Result: &TrialResult{Measurement: runner.Measurement{Walls: []float64{1, math.Inf(1)}}}}}},
		{Entries: []BatchEntry{{Result: &TrialResult{Measurement: runner.Measurement{CostSeconds: math.Inf(-1)}}}}},
	}
	for _, res := range bad {
		if _, ok := encodeBatchResult(res); ok {
			t.Fatalf("appender accepted a non-finite result: %+v", res)
		}
	}
}

// TestEncodeBatchRequestRoundTrip holds the request appender's contract:
// everything it emits decodes — through both the scanner and the strict
// reflection path — back to the original batch, and unrepresentable
// requests (drift trials, non-finite floats) bail to encoding/json.
func TestEncodeBatchRequestRoundTrip(t *testing.T) {
	reqs := []*BatchRequest{
		{Trials: []TrialRequest{{Key: "a=1 b=2", Benchmark: "fop", RepBase: 0, Reps: 3, Noise: -1}}},
		{Trials: []TrialRequest{{
			Key: "k", Benchmark: "fop", Args: []string{"-Xmx256m", "-XX:+UseParallelGC"},
			RepBase: 5, Reps: 1, TimeoutSeconds: 2.5, Noise: 0.05,
		}}},
		{Trials: []TrialRequest{{Key: "empty args", Benchmark: "fop", Args: []string{}, Reps: 1, Noise: 1e-3}}},
		{Trials: []TrialRequest{
			{Key: `quote " backslash \ newline` + "\n", Benchmark: "tab\tbench", Reps: 2, Noise: 0},
			{Key: "ünïcode ☃", Benchmark: "fop", Args: []string{"", "ctrl\x01"}, RepBase: 1 << 30, Reps: 7, Noise: 4.52984832e+08},
		}},
	}
	for _, req := range reqs {
		enc, ok := encodeBatchRequest(req)
		if !ok {
			t.Fatalf("appender refused a stationary batch: %+v", req)
		}
		again, err := DecodeBatchRequest(enc)
		if err != nil {
			t.Fatalf("appender output rejected: %v (%s)", err, enc)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip changed the batch:\nin:  %+v\nout: %+v (%s)", req, again, enc)
		}
		dec := json.NewDecoder(bytes.NewReader(enc))
		dec.DisallowUnknownFields()
		var strict BatchRequest
		if err := dec.Decode(&strict); err != nil {
			t.Fatalf("encoding/json rejects appender output: %v (%s)", err, enc)
		}
		if !reflect.DeepEqual(req, &strict) {
			t.Fatalf("strict decode of appender bytes diverges:\ngot:  %+v\nwant: %+v", &strict, req)
		}
	}

	bail := []*BatchRequest{
		{Trials: []TrialRequest{{Key: "drift", Benchmark: "fop", Reps: 1, Noise: -1,
			Phase: 2, Shift: &jvmsim.PhaseShift{AllocFactor: 1.5}}}},
		{Trials: []TrialRequest{{Key: "nan", Benchmark: "fop", Reps: 1, Noise: math.NaN()}}},
		{Trials: []TrialRequest{{Key: "inf", Benchmark: "fop", Reps: 1, TimeoutSeconds: math.Inf(1), Noise: -1}}},
	}
	for _, req := range bail {
		if _, ok := encodeBatchRequest(req); ok {
			t.Fatalf("appender accepted an unrepresentable batch: %+v", req)
		}
	}
}
