package dispatch

import (
	"strconv"
	"unicode/utf8"

	"repro/internal/jvmsim"
	"repro/internal/runner"
)

// A hand-rolled scanner for the batch-response wire shape. Reflection
// decoding of a 16-entry BatchResult was the single largest per-trial
// cost left in batched dispatch (the JSON is tiny; the field-name
// matching is not). The scanner is strictly opportunistic: it decodes
// exactly the documented shape, and bails out — causing the caller to
// fall back to the encoding/json path — on ANYTHING it does not expect:
// escape sequences, unknown fields, out-of-range numbers, trailing data.
// Correctness therefore never depends on this file; only speed does.
// FuzzFastBatchResultDecode holds the equivalence: whenever the fast
// path accepts, its result is byte-for-byte what encoding/json produces.

type jscan struct {
	b []byte
	i int
}

func (p *jscan) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// lit consumes c (after whitespace); false means shape mismatch.
func (p *jscan) lit(c byte) bool {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// peek reports whether the next non-space byte is c, without consuming.
func (p *jscan) peek(c byte) bool {
	p.ws()
	return p.i < len(p.b) && p.b[p.i] == c
}

// str consumes a JSON string with no escapes and no control bytes; a
// non-ASCII segment must be valid UTF-8 (encoding/json rewrites invalid
// sequences — the fast path must never disagree, so it bails instead).
// Anything needing unescaping bails to the slow path.
func (p *jscan) str() (string, bool) {
	if !p.lit('"') {
		return "", false
	}
	start := p.i
	ascii := true
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			if !ascii && !utf8.Valid(p.b[start:p.i]) {
				return "", false
			}
			s := string(p.b[start:p.i])
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return "", false
		}
		if c >= 0x80 {
			ascii = false
		}
		p.i++
	}
	return "", false
}

// numToken consumes the maximal number-shaped token and returns it only
// if it is a syntactically valid JSON number — strconv accepts spellings
// JSON forbids ("+3", ".5", "01"), and the fast path must reject exactly
// what encoding/json rejects.
func (p *jscan) numToken() ([]byte, bool) {
	p.ws()
	start := p.i
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p.i++
		default:
			goto done
		}
	}
done:
	tok := p.b[start:p.i]
	if len(tok) == 0 || !validJSONNumber(tok) {
		return nil, false
	}
	return tok, true
}

// validJSONNumber checks s against the RFC 8259 number grammar.
func validJSONNumber(s []byte) bool {
	i := 0
	if i < len(s) && s[i] == '-' {
		i++
	}
	switch {
	case i < len(s) && s[i] == '0':
		i++
	case i < len(s) && s[i] >= '1' && s[i] <= '9':
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < len(s) && s[i] == '.' {
		i++
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return false
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return false
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	return i == len(s)
}

// num consumes a JSON number and parses it exactly as encoding/json
// would (both delegate float conversion to strconv.ParseFloat).
func (p *jscan) num() (float64, bool) {
	tok, ok := p.numToken()
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	return f, err == nil
}

func (p *jscan) boolean() (bool, bool) {
	p.ws()
	if len(p.b)-p.i >= 4 && string(p.b[p.i:p.i+4]) == "true" {
		p.i += 4
		return true, true
	}
	if len(p.b)-p.i >= 5 && string(p.b[p.i:p.i+5]) == "false" {
		p.i += 5
		return false, true
	}
	return false, false
}

// floats consumes an array of numbers.
func (p *jscan) floats() ([]float64, bool) {
	if !p.lit('[') {
		return nil, false
	}
	if p.peek(']') {
		p.i++
		return []float64{}, true
	}
	var out []float64
	for {
		f, ok := p.num()
		if !ok {
			return nil, false
		}
		out = append(out, f)
		if p.lit(',') {
			continue
		}
		if p.lit(']') {
			return out, true
		}
		return nil, false
	}
}

// object walks {"key": value, ...}, calling field for each key. field
// must consume the value and report success; an unknown key bails out
// (the std path decides whether that is an error).
func (p *jscan) object(field func(key string) bool) bool {
	if !p.lit('{') {
		return false
	}
	if p.peek('}') {
		p.i++
		return true
	}
	for {
		key, ok := p.str()
		if !ok || !p.lit(':') {
			return false
		}
		if !field(key) {
			return false
		}
		if p.lit(',') {
			continue
		}
		return p.lit('}')
	}
}

// intField consumes an integer-spelled JSON number: encoding/json rejects
// fraction and exponent forms for Go int fields, so the fast path does too.
func (p *jscan) intField(dst *int) bool {
	tok, ok := p.numToken()
	if !ok {
		return false
	}
	n, err := strconv.Atoi(string(tok))
	if err != nil {
		return false
	}
	*dst = n
	return true
}

func (p *jscan) measurement(m *runner.Measurement) bool {
	return p.object(func(key string) bool {
		ok := false
		switch key {
		case "Key":
			m.Key, ok = p.str()
		case "Walls":
			m.Walls, ok = p.floats()
		case "Mean":
			m.Mean, ok = p.num()
		case "Pauses":
			m.Pauses, ok = p.floats()
		case "MeanPause":
			m.MeanPause, ok = p.num()
		case "Failed":
			m.Failed, ok = p.boolean()
		case "Failure":
			var s string
			if s, ok = p.str(); ok {
				m.Failure = jvmsim.FailureKind(s)
			}
		case "FailureMessage":
			m.FailureMessage, ok = p.str()
		case "CostSeconds":
			m.CostSeconds, ok = p.num()
		case "HedgeCostSeconds":
			m.HedgeCostSeconds, ok = p.num()
		case "FromCache":
			m.FromCache, ok = p.boolean()
		case "Attempts":
			ok = p.intField(&m.Attempts)
		case "Flakes":
			ok = p.intField(&m.Flakes)
		case "Transient":
			m.Transient, ok = p.boolean()
		}
		return ok
	})
}

func (p *jscan) trialResult() (*TrialResult, bool) {
	res := &TrialResult{}
	ok := p.object(func(key string) bool {
		switch key {
		case "node":
			var o bool
			res.Node, o = p.str()
			return o
		case "measurement":
			return p.measurement(&res.Measurement)
		}
		return false
	})
	return res, ok
}

func (p *jscan) errorEnvelope() (*ErrorEnvelope, bool) {
	env := &ErrorEnvelope{}
	ok := p.object(func(key string) bool {
		o := false
		switch key {
		case "error":
			env.Error, o = p.str()
		case "code":
			env.Code, o = p.str()
		case "retry_after_seconds":
			o = p.intField(&env.RetryAfterSeconds)
		}
		return o
	})
	return env, ok
}

// strs consumes an array of strings (each under the same no-escape
// contract as str).
func (p *jscan) strs() ([]string, bool) {
	if !p.lit('[') {
		return nil, false
	}
	if p.peek(']') {
		p.i++
		return []string{}, true
	}
	var out []string
	for {
		s, ok := p.str()
		if !ok {
			return nil, false
		}
		out = append(out, s)
		if p.lit(',') {
			continue
		}
		if p.lit(']') {
			return out, true
		}
		return nil, false
	}
}

// trialRequest decodes one stationary trial request. Drift fields
// ("phase", "shift") bail to the reflection path — they are rare and the
// nested shift object is not worth hand-scanning — as does any unknown
// field, which the strict std decoder then rejects properly.
func (p *jscan) trialRequest(tr *TrialRequest) bool {
	return p.object(func(key string) bool {
		ok := false
		switch key {
		case "key":
			tr.Key, ok = p.str()
		case "benchmark":
			tr.Benchmark, ok = p.str()
		case "args":
			tr.Args, ok = p.strs()
		case "rep_base":
			ok = p.intField(&tr.RepBase)
		case "reps":
			ok = p.intField(&tr.Reps)
		case "timeout_seconds":
			tr.TimeoutSeconds, ok = p.num()
		case "noise":
			tr.Noise, ok = p.num()
		}
		return ok
	})
}

// fastDecodeBatchRequest decodes the exact shape our controllers emit,
// the server-side twin of fastDecodeBatchResult. ok=false means "use the
// strict encoding/json path", never "bad request" — so unknown fields
// still fail closed through DisallowUnknownFields, with its error text.
func fastDecodeBatchRequest(data []byte) (*BatchRequest, bool) {
	p := &jscan{b: data}
	req := &BatchRequest{}
	shape := p.object(func(key string) bool {
		if key != "trials" {
			return false
		}
		if !p.lit('[') {
			return false
		}
		if p.peek(']') {
			p.i++
			req.Trials = []TrialRequest{}
			return true
		}
		for {
			var tr TrialRequest
			if !p.trialRequest(&tr) {
				return false
			}
			req.Trials = append(req.Trials, tr)
			if p.lit(',') {
				continue
			}
			return p.lit(']')
		}
	})
	if !shape {
		return nil, false
	}
	p.ws()
	if p.i != len(p.b) {
		return nil, false
	}
	return req, true
}

// fastDecodeBatchResult decodes the exact shape our evald emits. ok=false
// means "shape not recognized — use encoding/json", never "bad response".
func fastDecodeBatchResult(data []byte) (*BatchResult, bool) {
	p := &jscan{b: data}
	res := &BatchResult{}
	shape := p.object(func(key string) bool {
		switch key {
		case "node":
			var o bool
			res.Node, o = p.str()
			return o
		case "entries":
			if !p.lit('[') {
				return false
			}
			if p.peek(']') {
				p.i++
				res.Entries = []BatchEntry{}
				return true
			}
			for {
				var e BatchEntry
				entry := p.object(func(k string) bool {
					switch k {
					case "result":
						var o bool
						e.Result, o = p.trialResult()
						return o
					case "error":
						var o bool
						e.Error, o = p.errorEnvelope()
						return o
					}
					return false
				})
				if !entry {
					return false
				}
				res.Entries = append(res.Entries, e)
				if p.lit(',') {
					continue
				}
				return p.lit(']')
			}
		}
		return false
	})
	if !shape {
		return nil, false
	}
	p.ws()
	if p.i != len(p.b) {
		return nil, false
	}
	return res, true
}
