// Package drift detects workload drift on a tuning session's measurement
// stream. Production JVMs do not run one fixed profile: allocation rates
// and request mixes shift mid-flight, and a configuration tuned before the
// shift silently degrades after it. The detector watches the scores of
// delivered trials and raises a drift event when their level shifts up by
// more than search dynamics explain — the signal core.Session uses to open
// a re-tuning epoch (see docs/DRIFT.md).
//
// # Detector
//
// The test is a one-sided Page–Hinkley mean-shift test on the log of each
// delivered score. Logs because workload drift is multiplicative — an
// allocation surge scales every configuration's wall time by a factor, so
// it shifts log-scores additively and uniformly, while also compressing
// the heavy right tail of bad configurations. One-sided (upward only)
// because a healthy search *trends down* as it converges: a two-sided test
// would read convergence itself as drift, and a drift that makes every
// configuration faster strands no stale winner.
//
// Page–Hinkley maintains the running mean m_t of the observations x_1..x_t
// and the cumulative deviation
//
//	U_t = Σ_{i≤t} (x_i − m_i − δ)
//
// where δ (Config.Delta) is the magnitude of level noise to tolerate. The
// statistic PH_t = U_t − min_{i≤t} U_i measures how persistently recent
// observations sit above the historical mean; a stationary stream keeps it
// near zero, an upward level shift grows it linearly. Drift is confirmed
// when PH_t > λ (Config.Lambda, the sensitivity knob: lower fires earlier).
//
// The detector is a pure fold over the observation sequence — no clocks,
// no randomness, O(1) state and work per observation — so a session that
// feeds it delivered scores in delivery order inherits its determinism:
// the same (seed, workers) fires the same events at the same trials at any
// goroutine schedule, and a resumed session replays to the identical
// detector state.
package drift

import (
	"fmt"
	"math"
)

// Defaults. Lambda is calibrated against stationary sessions across the
// built-in workloads, searchers, and seeds (see calibration_test.go): the
// largest PH statistic a stationary session reaches stays well under the
// default, so default-or-higher sensitivity never false-positives, while a
// genuine 2–3× drift pushes the statistic past it within a round or two.
const (
	// DefaultDelta is the tolerated log-score level noise (≈5% level play).
	DefaultDelta = 0.05
	// DefaultLambda is the decision threshold on the Page–Hinkley statistic.
	DefaultLambda = 6.0
	// DefaultWarmup is how many observations seed the mean before the test
	// arms; it covers the baseline and the first exploration round.
	DefaultWarmup = 8
)

// Config parameterizes a Detector. The zero value means the defaults.
type Config struct {
	// Delta is the level-noise tolerance in log-score units: per-observation
	// deviation below it never accumulates. 0 means DefaultDelta; negative
	// means exactly 0 (tolerate nothing).
	Delta float64
	// Lambda is the decision threshold on the Page–Hinkley statistic — the
	// sensitivity knob. Lower fires earlier (more sensitive), higher needs
	// more persistent evidence. 0 means DefaultLambda.
	Lambda float64
	// Warmup is how many observations seed the running mean before the test
	// can fire. 0 means DefaultWarmup; negative means no warmup.
	Warmup int
}

func (c Config) normalized() Config {
	switch {
	case c.Delta == 0:
		c.Delta = DefaultDelta
	case c.Delta < 0:
		c.Delta = 0
	}
	if c.Lambda == 0 {
		c.Lambda = DefaultLambda
	}
	switch {
	case c.Warmup == 0:
		c.Warmup = DefaultWarmup
	case c.Warmup < 0:
		c.Warmup = 0
	}
	return c
}

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	n := c.normalized()
	if math.IsNaN(n.Delta) || math.IsInf(n.Delta, 0) {
		return fmt.Errorf("drift: Delta must be finite, got %v", c.Delta)
	}
	if n.Lambda <= 0 || math.IsNaN(n.Lambda) || math.IsInf(n.Lambda, 0) {
		return fmt.Errorf("drift: Lambda must be positive and finite, got %v", c.Lambda)
	}
	return nil
}

// String renders the effective (normalized) configuration canonically; the
// checkpoint layer folds it into the session fingerprint so a run cannot
// resume under a different detector than the one it crashed with.
func (c Config) String() string {
	n := c.normalized()
	return fmt.Sprintf("ph(delta=%g,lambda=%g,warmup=%d)", n.Delta, n.Lambda, n.Warmup)
}

// Event describes one confirmed drift.
type Event struct {
	// Observation is the 1-based index (within the current epoch) of the
	// observation that confirmed the drift.
	Observation int
	// Score is the observed score that confirmed it.
	Score float64
	// Mean is the pre-drift level estimate, mapped back from log space: the
	// geometric mean of the epoch's observations so far.
	Mean float64
	// Stat is the Page–Hinkley statistic at confirmation (> Lambda).
	Stat float64
}

// Detector is the online drift test. Not safe for concurrent use: the
// session feeds it delivered scores in delivery order, which is exactly
// the serialization that makes it deterministic.
type Detector struct {
	cfg Config

	n      int     // observations this epoch
	mean   float64 // running mean of log-scores
	cum    float64 // U_t
	minCum float64 // min_i U_i
	fired  bool    // suppress repeat events until Reset
}

// New builds a detector; the zero Config means the defaults.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.normalized()}
}

// Config returns the effective (normalized) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Observe folds one delivered score into the test and reports whether it
// confirmed a drift. Only finite positive scores count — failed trials
// have no score and skip the detector entirely (the caller's contract).
// After a confirmation the detector stays silent until Reset: one epoch,
// one event.
func (d *Detector) Observe(score float64) (Event, bool) {
	if d.fired || !(score > 0) || math.IsInf(score, 0) {
		return Event{}, false
	}
	x := math.Log(score)
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	if d.n <= d.cfg.Warmup {
		return Event{}, false
	}
	d.cum += x - d.mean - d.cfg.Delta
	if d.cum < d.minCum {
		d.minCum = d.cum
	}
	if stat := d.cum - d.minCum; stat > d.cfg.Lambda {
		d.fired = true
		return Event{
			Observation: d.n,
			Score:       score,
			Mean:        math.Exp(d.mean),
			Stat:        stat,
		}, true
	}
	return Event{}, false
}

// Stat returns the current Page–Hinkley statistic (diagnostic).
func (d *Detector) Stat() float64 {
	if d.n <= d.cfg.Warmup {
		return 0
	}
	return d.cum - d.minCum
}

// Observations returns how many scores the current epoch has folded in.
func (d *Detector) Observations() int { return d.n }

// Reset clears the epoch state: the post-drift phase is a new level to
// learn from scratch, so the mean, the cumulative deviations, and the
// one-shot latch all restart.
func (d *Detector) Reset() {
	d.n, d.mean, d.cum, d.minCum, d.fired = 0, 0, 0, 0, false
}
