package drift

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestDefaultsNormalization(t *testing.T) {
	d := New(Config{})
	cfg := d.Config()
	if cfg.Delta != DefaultDelta || cfg.Lambda != DefaultLambda || cfg.Warmup != DefaultWarmup {
		t.Fatalf("zero config did not normalize to defaults: %+v", cfg)
	}
	// Negative means "exactly zero", distinct from "default".
	n := Config{Delta: -1, Warmup: -1}.normalized()
	if n.Delta != 0 || n.Warmup != 0 {
		t.Fatalf("negative Delta/Warmup should normalize to 0: %+v", n)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	for _, bad := range []Config{
		{Lambda: math.NaN()},
		{Lambda: math.Inf(1)},
		{Lambda: -3},
		{Delta: math.NaN()},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v should not validate", bad)
		}
	}
}

func TestStringCanonical(t *testing.T) {
	if got, want := (Config{}).String(), "ph(delta=0.05,lambda=6,warmup=8)"; got != want {
		t.Fatalf("default config string %q, want %q", got, want)
	}
	// Explicit defaults render identically to the zero value: the string is
	// a fingerprint, and equal effective configs must fingerprint equally.
	explicit := Config{Delta: DefaultDelta, Lambda: DefaultLambda, Warmup: DefaultWarmup}
	if explicit.String() != (Config{}).String() {
		t.Fatalf("explicit defaults fingerprint differently: %q vs %q", explicit.String(), (Config{}).String())
	}
	if !strings.Contains((Config{Lambda: 3.5}).String(), "lambda=3.5") {
		t.Fatalf("lambda missing from %q", Config{Lambda: 3.5})
	}
}

// TestDetectsUpwardShift: a stationary noisy level followed by a sustained
// multiplicative jump must fire, and fire only once.
func TestDetectsUpwardShift(t *testing.T) {
	d := New(Config{})
	rng := rand.New(rand.NewSource(1))
	fired := 0
	var at int
	for i := 0; i < 200; i++ {
		level := 10.0
		if i >= 100 {
			level = 25.0 // 2.5× drift
		}
		score := level * math.Exp(rng.NormFloat64()*0.05)
		if _, ok := d.Observe(score); ok {
			fired++
			at = i
		}
	}
	if fired != 1 {
		t.Fatalf("want exactly one event, got %d", fired)
	}
	if at < 100 || at > 110 {
		t.Fatalf("drift at trial 100 confirmed at observation %d; want within a few trials", at)
	}
}

// TestIgnoresDownwardShift: convergence (scores improving) must not fire —
// the test is one-sided by design.
func TestIgnoresDownwardShift(t *testing.T) {
	d := New(Config{})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		level := 10.0
		if i >= 100 {
			level = 4.0
		}
		score := level * math.Exp(rng.NormFloat64()*0.05)
		if ev, ok := d.Observe(score); ok {
			t.Fatalf("downward shift fired at %d: %+v", i, ev)
		}
	}
}

// TestStationaryNoFalsePositive: pure noise at one level never fires at
// default-or-weaker sensitivity, even over a long session with a gradual
// convergence trend mixed in (the search finding better configurations).
func TestStationaryNoFalsePositive(t *testing.T) {
	for _, lambda := range []float64{0, DefaultLambda, 2 * DefaultLambda, 10 * DefaultLambda} {
		for seed := int64(0); seed < 20; seed++ {
			d := New(Config{Lambda: lambda})
			rng := rand.New(rand.NewSource(seed))
			level := 12.0
			for i := 0; i < 500; i++ {
				// Converging search: the level drifts *down* 30% over the
				// session while per-trial noise scatters ±10%.
				trend := 1 - 0.3*float64(i)/500
				score := level * trend * math.Exp(rng.NormFloat64()*0.1)
				if ev, ok := d.Observe(score); ok {
					t.Fatalf("λ=%g seed=%d: stationary stream fired at %d: %+v", lambda, seed, i, ev)
				}
			}
		}
	}
}

// TestDeterminism: the detector is a pure fold — identical sequences give
// identical events and state.
func TestDeterminism(t *testing.T) {
	seq := make([]float64, 400)
	rng := rand.New(rand.NewSource(3))
	for i := range seq {
		level := 8.0
		if i >= 250 {
			level = 20.0
		}
		seq[i] = level * math.Exp(rng.NormFloat64()*0.08)
	}
	run := func() (events []Event, stat float64) {
		d := New(Config{})
		for _, s := range seq {
			if ev, ok := d.Observe(s); ok {
				events = append(events, ev)
			}
		}
		return events, d.Stat()
	}
	e1, s1 := run()
	e2, s2 := run()
	if len(e1) != 1 || len(e2) != 1 || e1[0] != e2[0] || s1 != s2 {
		t.Fatalf("detector not deterministic: %+v/%v vs %+v/%v", e1, s1, e2, s2)
	}
}

// TestSkipsNonPositive: failed trials (no score) and garbage must not
// perturb the state.
func TestSkipsNonPositive(t *testing.T) {
	d := New(Config{Warmup: 2})
	for _, s := range []float64{10, 10.5} {
		d.Observe(s)
	}
	before := d.Observations()
	for _, junk := range []float64{0, -3, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := d.Observe(junk); ok {
			t.Fatalf("junk score %v fired", junk)
		}
	}
	if d.Observations() != before {
		t.Fatalf("junk scores advanced state: %d → %d", before, d.Observations())
	}
}

// TestOneShotUntilReset: after a confirmation the detector is silent; Reset
// rearms it and clears all state.
func TestOneShotUntilReset(t *testing.T) {
	d := New(Config{Warmup: 4, Lambda: 1})
	feed := func(level float64, n int) (fired int) {
		for i := 0; i < n; i++ {
			if _, ok := d.Observe(level); ok {
				fired++
			}
		}
		return fired
	}
	feed(10, 6)
	if f := feed(40, 20); f != 1 {
		t.Fatalf("first drift: want 1 event, got %d", f)
	}
	if f := feed(100, 20); f != 0 {
		t.Fatalf("latched detector fired again: %d", f)
	}
	d.Reset()
	if d.Observations() != 0 || d.Stat() != 0 {
		t.Fatalf("Reset left state: n=%d stat=%g", d.Observations(), d.Stat())
	}
	feed(40, 6)
	if f := feed(160, 20); f != 1 {
		t.Fatalf("re-armed detector: want 1 event, got %d", f)
	}
}

// TestWarmupArming: the test cannot fire inside the warmup window no matter
// how violent the shift.
func TestWarmupArming(t *testing.T) {
	d := New(Config{Warmup: 50, Lambda: 0.5})
	for i := 0; i < 50; i++ {
		score := 1.0
		if i >= 10 {
			score = 1000
		}
		if _, ok := d.Observe(score); ok {
			t.Fatalf("fired during warmup at %d", i)
		}
	}
}

// TestEventFields: the event describes the confirmation usefully.
func TestEventFields(t *testing.T) {
	d := New(Config{Warmup: 4, Lambda: 1})
	var ev Event
	var ok bool
	for i := 0; i < 30 && !ok; i++ {
		level := 10.0
		if i >= 10 {
			level = 30.0
		}
		ev, ok = d.Observe(level)
	}
	if !ok {
		t.Fatal("no event")
	}
	if ev.Score != 30 {
		t.Errorf("event score %g, want 30", ev.Score)
	}
	if ev.Stat <= 1 {
		t.Errorf("event stat %g, want > λ=1", ev.Stat)
	}
	if ev.Mean < 10 || ev.Mean > 30 {
		t.Errorf("pre-drift mean estimate %g outside (10, 30)", ev.Mean)
	}
	if ev.Observation < 11 {
		t.Errorf("confirmed at observation %d, before the shift", ev.Observation)
	}
}

func BenchmarkDriftDetector(b *testing.B) {
	seq := make([]float64, 1024)
	rng := rand.New(rand.NewSource(4))
	for i := range seq {
		seq[i] = 10 * math.Exp(rng.NormFloat64()*0.1)
	}
	d := New(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(seq[i%len(seq)])
	}
}
