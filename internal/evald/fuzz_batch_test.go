package evald

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dispatch"
)

// FuzzEvaluateBatchEnvelope throws arbitrary bytes at the batched
// evaluate endpoint and holds its wire contract: a 200 always carries a
// BatchResult with exactly one entry per requested trial (each entry a
// result or a well-formed per-entry envelope), everything else is a 4xx
// ErrorEnvelope — never a panic, never a 5xx for a bad input.
func FuzzEvaluateBatchEnvelope(f *testing.F) {
	seeds := [][]byte{
		[]byte(``),
		[]byte(`{`),
		[]byte(`{"trials":[]}`),
		[]byte(`{"trials":[{"key":"","benchmark":"fop","reps":1,"noise":-1}]}`),
		[]byte(`{"trials":[{"key":"","benchmark":"fop","reps":1,"noise":-1},{"key":"","benchmark":"quake3","reps":1,"noise":-1}]}`),
		[]byte(`{"trials":[{"key":"mismatch","benchmark":"fop","reps":1,"noise":-1}]}`),
		[]byte(`{"trials":[{"key":"","benchmark":"fop","reps":-2,"noise":-1}]}`),
		[]byte(`{"trials":[{"key":"","benchmark":"fop","reps":1,"noise":-1,"surprise":1}]}`),
		[]byte(`{"trials":null}`),
		[]byte(`{"trials":[{}]}{"trials":[]}`),
		[]byte("\x00\xff"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := New(Config{MaxConcurrent: 4})
	f.Fuzz(func(t *testing.T, body []byte) {
		var req dispatch.BatchRequest
		wantEntries := -1
		if json.Unmarshal(body, &req) == nil {
			wantEntries = len(req.Trials)
		}
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, dispatch.EvaluateBatchPath, bytes.NewReader(body))
		srv.ServeHTTP(w, r)
		switch {
		case w.Code == http.StatusOK:
			var res dispatch.BatchResult
			if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
				t.Fatalf("200 with non-BatchResult body %q: %v", w.Body, err)
			}
			if wantEntries >= 0 && len(res.Entries) != wantEntries {
				t.Fatalf("%d trials answered by %d entries", wantEntries, len(res.Entries))
			}
			for i, e := range res.Entries {
				if (e.Result == nil) == (e.Error == nil) {
					t.Fatalf("entry %d is not exactly-one-of result/error: %+v", i, e)
				}
				if e.Error != nil && (e.Error.Code == "" || e.Error.Error == "") {
					t.Fatalf("entry %d envelope missing fields: %+v", i, e.Error)
				}
			}
		case w.Code >= 400 && w.Code < 500:
			var env dispatch.ErrorEnvelope
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatalf("%d with non-envelope body %q: %v", w.Code, w.Body, err)
			}
			if env.Code == "" || env.Error == "" {
				t.Fatalf("%d envelope missing fields: %+v", w.Code, env)
			}
		default:
			t.Fatalf("bogus payload produced status %d (body %q) — want 200 or 4xx", w.Code, w.Body)
		}
	})
}
