package evald

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dispatch"
)

// FuzzEvaluateEnvelope throws arbitrary bytes at the evaluate endpoint
// and holds the wire contract: every response is 200 with a TrialResult
// or 4xx with a well-formed ErrorEnvelope — never a panic, never a naked
// non-JSON error, never a 5xx for a bad input. The seed corpus under
// testdata/fuzz covers the malformed-payload taxonomy (bad JSON, unknown
// fields and flags, truncated bodies, key mismatches, bogus bounds).
func FuzzEvaluateEnvelope(f *testing.F) {
	seeds := [][]byte{
		[]byte(``),
		[]byte(`{`),
		[]byte(`]][[`),
		[]byte(`{"key":"","benchmark":"fop","reps":1,"noise":-1}`),
		[]byte(`{"key":"","benchmark":"fop","reps":1,"noise":-1,"surprise":true}`),
		[]byte(`{"key":"","benchmark":"fop","args":["-XX:+NoSuchFlag"],"reps":1,"noise":-1}`),
		[]byte(`{"key":"mismatch","benchmark":"fop","reps":1,"noise":-1}`),
		[]byte(`{"key":"","benchmark":"quake3","reps":1,"noise":-1}`),
		[]byte(`{"key":"","benchmark":"fop","reps":-3,"noise":-1}`),
		[]byte(`{"key":"","benchmark":"fop","reps":1,"rep_base":900719925474,"noise":-1}`),
		[]byte(`{"key":"","benchmark":"fop","reps":1,"noise":1e308}`),
		[]byte(`{"key":"","benchmark":"fop","reps":1,"noise":-1}{"key":""}`),
		[]byte(`{"key":"","benchmark":"fop","reps":1,"timeout_seconds":-1,"noise":-1}`),
		[]byte("\x00\x01\x02\xff"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := New(Config{MaxConcurrent: 4})
	f.Fuzz(func(t *testing.T, body []byte) {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, dispatch.EvaluatePath, bytes.NewReader(body))
		srv.ServeHTTP(w, r) // the handler's recover would turn a panic into a 500
		switch {
		case w.Code == http.StatusOK:
			var res dispatch.TrialResult
			if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
				t.Fatalf("200 with non-TrialResult body %q: %v", w.Body, err)
			}
		case w.Code >= 400 && w.Code < 500:
			var env dispatch.ErrorEnvelope
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatalf("%d with non-envelope body %q: %v", w.Code, w.Body, err)
			}
			if env.Code == "" || env.Error == "" {
				t.Fatalf("%d envelope missing fields: %+v", w.Code, env)
			}
		default:
			t.Fatalf("bogus payload produced status %d (body %q) — want 200 or 4xx", w.Code, w.Body)
		}
	})
}

// FuzzDecodeTrialRequest holds the decoder's contract directly: it
// either returns a validated request or a typed *RequestError; any
// request it accepts re-encodes and decodes to the same value.
func FuzzDecodeTrialRequest(f *testing.F) {
	f.Add([]byte(`{"key":"","benchmark":"fop","reps":1,"noise":-1}`))
	f.Add([]byte(`{"key":"k","benchmark":"h2","args":["-Xmx4g"],"reps":3,"rep_base":7,"noise":0.01}`))
	f.Add([]byte(`{"reps":1}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := dispatch.DecodeTrialRequest(body)
		if err != nil {
			return
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request fails to re-encode: %v", err)
		}
		again, err := dispatch.DecodeTrialRequest(out)
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v (%s)", err, out)
		}
		if *req2str(req) != *req2str(again) {
			t.Fatalf("round trip changed the request:\n%s\n%s", *req2str(req), *req2str(again))
		}
	})
}

func req2str(q *dispatch.TrialRequest) *string {
	b, _ := json.Marshal(q)
	s := string(b)
	return &s
}
