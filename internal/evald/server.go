// Package evald is the measurement node of the distributed evaluation
// plane: a thin HTTP server wrapping the shared evaluation core
// (runner.EvalConfig via dispatch.Eval) behind the wire protocol of
// internal/dispatch. It is deliberately stateless — a measurement is a
// pure function of the request, so nodes are interchangeable, a killed
// node loses nothing, and the controller's re-dispatch is free.
//
// Endpoints:
//
//	POST /v1/evaluate        one evaluation attempt; dispatch.TrialRequest
//	                         in, dispatch.TrialResult out. Bogus payloads
//	                         get a 400 dispatch.ErrorEnvelope — never a
//	                         panic.
//	POST /v1/evaluate-batch  up to dispatch.MaxBatchTrials attempts in one
//	                         round trip; per-trial verdicts come back
//	                         positionally, so one bogus trial rejects only
//	                         its own entry.
//	GET  /healthz            liveness for the controller's heartbeats.
//	GET  /metrics            Prometheus exposition of the node's telemetry.
//
// Admission control mirrors the tuned farm: a concurrency gate sized to
// the host sheds excess load with 429 + Retry-After and the same JSON
// envelope shape, so a saturated node reads as "busy, come back" and the
// dispatch layer steals the trial to a sibling.
//
// With a bearer token configured (Config.Auth), both evaluate endpoints
// demand it and answer 401 + CodeUnauthorized envelopes otherwise —
// fail-closed: nothing is evaluated without credentials. /healthz and
// /metrics stay open (liveness probes and scrapers carry no secrets).
// Transport-level mutual TLS wraps the listener in cmd/evald, not here.
package evald

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"

	"repro/internal/dispatch"
	"repro/internal/flags"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config parameterizes a node.
type Config struct {
	// Node is the name the node reports in results and /healthz;
	// defaults to "evald".
	Node string
	// MaxConcurrent bounds in-flight evaluations; excess requests are
	// shed with 429. Values below 1 mean GOMAXPROCS.
	MaxConcurrent int
	// MaxBodyBytes bounds request bodies; values below 1 mean
	// dispatch.MaxRequestBytes.
	MaxBodyBytes int64
	// Telemetry receives the node's metric series; nil means a private
	// registry (always exposed via /metrics).
	Telemetry *telemetry.Registry
	// Auth gates the evaluate endpoints (bearer token); nil or a zero
	// value means open.
	Auth *dispatch.Security
}

// Server is an evald node. It implements http.Handler.
type Server struct {
	cfg Config
	reg *flags.Registry
	tel *telemetry.Registry
	sem chan struct{}
	mux *http.ServeMux
}

// New builds a node.
func New(cfg Config) *Server {
	if cfg.Node == "" {
		cfg.Node = "evald"
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes < 1 {
		cfg.MaxBodyBytes = dispatch.MaxRequestBytes
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New()
	}
	s := &Server{
		cfg: cfg,
		reg: flags.NewRegistry(),
		tel: tel,
		sem: make(chan struct{}, cfg.MaxConcurrent),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(dispatch.EvaluatePath, s.handleEvaluate)
	s.mux.HandleFunc(dispatch.EvaluateBatchPath, s.handleEvaluateBatch)
	s.mux.HandleFunc(dispatch.HealthPath, s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeEnvelope emits the protocol rejection envelope.
func writeEnvelope(w http.ResponseWriter, status int, env dispatch.ErrorEnvelope) {
	w.Header().Set("Content-Type", "application/json")
	if env.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", env.RetryAfterSeconds))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(env)
}

func (s *Server) rejected(w http.ResponseWriter, status int, env dispatch.ErrorEnvelope) {
	s.tel.Counter(`evald_rejected_total{code="` + env.Code + `"}`).Inc()
	writeEnvelope(w, status, env)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	// A panic must never take the node down or leave the dispatcher
	// hanging: whatever slipped past validation becomes a 500 envelope.
	defer func() {
		if rec := recover(); rec != nil {
			s.tel.Counter("evald_panics_total").Inc()
			writeEnvelope(w, http.StatusInternalServerError, dispatch.ErrorEnvelope{
				Error: fmt.Sprintf("evald: internal error: %v", rec), Code: dispatch.CodeInternal,
			})
		}
	}()

	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.rejected(w, http.StatusBadRequest, dispatch.ErrorEnvelope{
			Error: fmt.Sprintf("evald: read body: %v", err), Code: dispatch.CodeBadPayload,
		})
		return
	}
	req, err := dispatch.DecodeTrialRequest(body)
	if err != nil {
		s.rejected(w, http.StatusBadRequest, envelopeFor(err))
		return
	}
	prof, ok := workload.ByName(req.Benchmark)
	if !ok {
		s.rejected(w, http.StatusBadRequest, dispatch.ErrorEnvelope{
			Error: fmt.Sprintf("evald: unknown benchmark %q", req.Benchmark), Code: dispatch.CodeBadBenchmark,
		})
		return
	}
	res, err := dispatch.Eval(prof, s.reg, req)
	if err != nil {
		s.rejected(w, http.StatusBadRequest, envelopeFor(err))
		return
	}
	res.Node = s.cfg.Node

	s.tel.Counter("evald_evaluations_total").Inc()
	s.tel.Histogram("evald_eval_cost_seconds", telemetry.DefSecondsBuckets).
		Observe(res.Measurement.CostSeconds)
	w.Header().Set("Content-Type", "application/json")
	dispatch.EncodeTrialResult(w, res)
}

// admit runs the shared admission gate for the evaluate endpoints:
// method, credentials, then the concurrency slot. It returns the slot's
// release func, or nil after writing the rejection. Credentials are
// checked before the semaphore so an unauthenticated flood can never
// starve real work, and the 401 leaks nothing about the node's load.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) func() {
	if r.Method != http.MethodPost {
		s.rejected(w, http.StatusMethodNotAllowed, dispatch.ErrorEnvelope{
			Error: "evald: POST required", Code: dispatch.CodeMethod,
		})
		return nil
	}
	if !s.cfg.Auth.Authorize(r) {
		s.rejected(w, http.StatusUnauthorized, dispatch.ErrorEnvelope{
			Error: "evald: missing or invalid credentials", Code: dispatch.CodeUnauthorized,
		})
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	default:
		s.tel.Counter("evald_shed_total").Inc()
		s.rejected(w, http.StatusTooManyRequests, dispatch.ErrorEnvelope{
			Error: "evald: node saturated", Code: dispatch.CodeBusy, RetryAfterSeconds: 1,
		})
		return nil
	}
}

func (s *Server) handleEvaluateBatch(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.tel.Counter("evald_panics_total").Inc()
			writeEnvelope(w, http.StatusInternalServerError, dispatch.ErrorEnvelope{
				Error: fmt.Sprintf("evald: internal error: %v", rec), Code: dispatch.CodeInternal,
			})
		}
	}()

	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, dispatch.MaxBatchRequestBytes))
	if err != nil {
		s.rejected(w, http.StatusBadRequest, dispatch.ErrorEnvelope{
			Error: fmt.Sprintf("evald: read body: %v", err), Code: dispatch.CodeBadPayload,
		})
		return
	}
	req, err := dispatch.DecodeBatchRequest(body)
	if err != nil {
		s.rejected(w, http.StatusBadRequest, envelopeFor(err))
		return
	}
	// One benchmark profile serves the whole batch: a controller's wave is
	// one session's round, and sessions measure one workload. A mixed
	// batch still answers per-entry (bad-benchmark envelopes), not 400.
	res := &dispatch.BatchResult{Node: s.cfg.Node, Entries: make([]dispatch.BatchEntry, len(req.Trials))}
	byBench := make(map[string][]int)
	for i := range req.Trials {
		byBench[req.Trials[i].Benchmark] = append(byBench[req.Trials[i].Benchmark], i)
	}
	for bench, idxs := range byBench {
		prof, ok := workload.ByName(bench)
		if !ok {
			for _, i := range idxs {
				res.Entries[i] = dispatch.BatchEntry{Error: &dispatch.ErrorEnvelope{
					Error: fmt.Sprintf("evald: unknown benchmark %q", bench), Code: dispatch.CodeBadBenchmark,
				}}
			}
			continue
		}
		sub := &dispatch.BatchRequest{Trials: make([]dispatch.TrialRequest, len(idxs))}
		for j, i := range idxs {
			sub.Trials[j] = req.Trials[i]
		}
		out := dispatch.EvalBatch(prof, s.reg, sub)
		for j, i := range idxs {
			e := out.Entries[j]
			if e.Result != nil {
				e.Result.Node = s.cfg.Node
				s.tel.Counter("evald_evaluations_total").Inc()
				s.tel.Histogram("evald_eval_cost_seconds", telemetry.DefSecondsBuckets).
					Observe(e.Result.Measurement.CostSeconds)
			} else if e.Error != nil {
				s.tel.Counter(`evald_rejected_total{code="` + e.Error.Code + `"}`).Inc()
			}
			res.Entries[i] = e
		}
	}
	s.tel.Counter("evald_batches_total").Inc()
	w.Header().Set("Content-Type", "application/json")
	dispatch.EncodeBatchResult(w, res)
}

// envelopeFor renders a protocol error as its wire envelope.
func envelopeFor(err error) dispatch.ErrorEnvelope {
	env := dispatch.ErrorEnvelope{Error: err.Error(), Code: dispatch.CodeBadPayload}
	var re *dispatch.RequestError
	if errors.As(err, &re) {
		env.Code = re.Code
	}
	return env
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"node":     s.cfg.Node,
		"inflight": len(s.sem),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.tel.WritePrometheus(w)
}
