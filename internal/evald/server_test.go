package evald

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dispatch"
	"repro/internal/flags"
	"repro/internal/telemetry"
)

func evaluateBody(t testing.TB) []byte {
	t.Helper()
	cfg := flags.NewConfig(flags.NewRegistry())
	cfg.SetInt("MaxHeapSize", 1<<30)
	req := &dispatch.TrialRequest{
		Key: cfg.Key(), Benchmark: "fop", Args: cfg.CommandLine(),
		Reps: 2, TimeoutSeconds: 120, Noise: -1,
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func post(s *Server, body []byte) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, dispatch.EvaluatePath, bytes.NewReader(body))
	s.ServeHTTP(w, r)
	return w
}

func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder) dispatch.ErrorEnvelope {
	t.Helper()
	var env dispatch.ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("rejection body is not an envelope: %v (body %q)", err, w.Body.String())
	}
	if env.Code == "" || env.Error == "" {
		t.Fatalf("envelope missing code or error: %+v", env)
	}
	return env
}

func TestEvaluateHappyPath(t *testing.T) {
	s := New(Config{Node: "w1"})
	w := post(s, evaluateBody(t))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body)
	}
	var res dispatch.TrialResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Node != "w1" {
		t.Errorf("node = %q, want w1", res.Node)
	}
	if res.Measurement.Failed || len(res.Measurement.Walls) != 2 {
		t.Fatalf("unexpected measurement: %+v", res.Measurement)
	}
}

func TestEvaluateSameRequestSameBytes(t *testing.T) {
	s := New(Config{})
	body := evaluateBody(t)
	a, b := post(s, body), post(s, body)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d/%d", a.Code, b.Code)
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatal("a node must answer identical requests with identical bytes")
	}
}

func TestEvaluateRejections(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name string
		body string
		code string
	}{
		{"garbage", `%%%%`, dispatch.CodeBadPayload},
		{"unknown benchmark", `{"key":"","benchmark":"quake3","reps":1,"noise":-1}`, dispatch.CodeBadBenchmark},
		{"unknown flag", `{"key":"","benchmark":"fop","args":["-XX:+FTLDrive"],"reps":1,"noise":-1}`, dispatch.CodeBadFlag},
		{"key mismatch", `{"key":"wrong","benchmark":"fop","reps":1,"noise":-1}`, dispatch.CodeKeyMismatch},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := post(s, []byte(c.body))
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", w.Code, w.Body)
			}
			if env := decodeEnvelope(t, w); env.Code != c.code {
				t.Fatalf("code %q, want %q", env.Code, c.code)
			}
		})
	}
}

func TestEvaluateMethodNotAllowed(t *testing.T) {
	s := New(Config{})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, dispatch.EvaluatePath, nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", w.Code)
	}
	if env := decodeEnvelope(t, w); env.Code != dispatch.CodeMethod {
		t.Fatalf("code %q, want %q", env.Code, dispatch.CodeMethod)
	}
}

func TestEvaluateOversizedBody(t *testing.T) {
	s := New(Config{MaxBodyBytes: 64})
	w := post(s, bytes.Repeat([]byte("x"), 1024))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if env := decodeEnvelope(t, w); env.Code != dispatch.CodeBadPayload {
		t.Fatalf("code %q, want %q", env.Code, dispatch.CodeBadPayload)
	}
}

func TestEvaluateShedsWhenSaturated(t *testing.T) {
	tel := telemetry.New()
	s := New(Config{MaxConcurrent: 1, Telemetry: tel})
	s.sem <- struct{}{} // occupy the only slot
	w := post(s, evaluateBody(t))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	env := decodeEnvelope(t, w)
	if env.Code != dispatch.CodeBusy || env.RetryAfterSeconds < 1 {
		t.Fatalf("busy envelope: %+v", env)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed responses should carry Retry-After")
	}
	if tel.Counter("evald_shed_total").Value() != 1 {
		t.Error("shed should be counted")
	}
	<-s.sem
	if w := post(s, evaluateBody(t)); w.Code != http.StatusOK {
		t.Fatalf("freed node should serve again, got %d", w.Code)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{Node: "w9"})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, dispatch.HealthPath, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var h struct {
		Status string `json:"status"`
		Node   string `json:"node"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Node != "w9" {
		t.Fatalf("health = %+v", h)
	}
}

func TestMetricsExposition(t *testing.T) {
	s := New(Config{})
	post(s, evaluateBody(t))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "evald_evaluations_total") {
		t.Fatalf("metrics missing evaluation counter:\n%s", w.Body)
	}
}

// TestRemoteAgainstServer closes the loop: the dispatch.Remote client
// against a real evald server over a socket classifies success, protocol
// rejections, and shedding exactly as the Pool expects.
func TestRemoteAgainstServer(t *testing.T) {
	s := New(Config{Node: "w1"})
	ts := httptest.NewServer(s)
	defer ts.Close()
	rem := dispatch.NewRemote(strings.TrimPrefix(ts.URL, "http://"))

	ctx := context.Background()
	var req dispatch.TrialRequest
	if err := json.Unmarshal(evaluateBody(t), &req); err != nil {
		t.Fatal(err)
	}
	res, err := rem.Evaluate(ctx, &req)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if res.Node != "w1" || res.Measurement.Key != req.Key {
		t.Fatalf("unexpected result: %+v", res)
	}
	if err := rem.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// A protocol rejection must classify as permanent.
	bad := req
	bad.Key = "mismatched"
	_, err = rem.Evaluate(ctx, &bad)
	var ne *dispatch.NodeError
	if !errors.As(err, &ne) || !ne.Permanent || ne.Code != dispatch.CodeKeyMismatch {
		t.Fatalf("want permanent key-mismatch NodeError, got %v", err)
	}

	// A dead socket must classify as transient.
	ts.Close()
	_, err = rem.Evaluate(ctx, &req)
	if !errors.As(err, &ne) || ne.Permanent {
		t.Fatalf("want transient NodeError from dead socket, got %v", err)
	}
}
