package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/report"
)

// CSVConvergence renders Figure 1's data as CSV: one column per benchmark,
// x = tuning minutes, y = improvement percent.
func CSVConvergence(r *ConvergenceResult) string {
	series := make([]*report.Series, len(r.Benchmarks))
	for i, b := range r.Benchmarks {
		s := &report.Series{Name: b}
		for m, min := range r.MinuteMarks {
			s.Add(min, r.ImprovementAt[i][m])
		}
		series[i] = s
	}
	return report.CSV("minutes", series...)
}

// CSVComparison renders a searcher-comparison matrix as CSV: one row per
// benchmark, one column per searcher, cells are improvement percent.
func CSVComparison(r *ComparisonResult, searchers []string) string {
	byBench := map[string]map[string]float64{}
	var order []string
	for _, row := range r.Rows {
		if byBench[row.Benchmark] == nil {
			byBench[row.Benchmark] = map[string]float64{}
			order = append(order, row.Benchmark)
		}
		byBench[row.Benchmark][row.Searcher] = row.ImprovementPct
	}
	out := "benchmark"
	for _, s := range searchers {
		out += "," + s
	}
	out += "\n"
	for _, b := range order {
		out += b
		for _, s := range searchers {
			out += fmt.Sprintf(",%.2f", byBench[b][s])
		}
		out += "\n"
	}
	return out
}

// CSVSuite renders a Table 1/2 result as CSV.
func CSVSuite(r *SuiteResult) string {
	out := "benchmark,default_seconds,tuned_seconds,speedup,improvement_pct,trials,flakes,collector,tiered\n"
	for _, row := range r.Rows {
		out += fmt.Sprintf("%s,%.3f,%.3f,%.3f,%.2f,%d,%d,%s,%v\n",
			row.Benchmark, row.DefaultWall, row.BestWall, row.Speedup,
			row.ImprovementPct, row.Trials, row.Flakes, row.Collector, row.Tiered)
	}
	return out
}

// CSVScaling renders E9's data as CSV.
func CSVScaling(rows []ScalingRow) string {
	out := "benchmark,workers,trials,improvement_pct,makespan_min\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s,%d,%d,%.2f,%.1f\n",
			r.Benchmark, r.Workers, r.Trials, r.ImprovementPct, r.MakespanMin)
	}
	return out
}

// WriteCSVDir regenerates the figure/table data files into dir, creating it
// if needed, and returns the sorted list of files written.
func WriteCSVDir(dir string, cfg Config) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	files := map[string]func() (string, error){
		"table1_specjvm2008.csv": func() (string, error) {
			r, err := RunSuite("specjvm2008", cfg)
			if err != nil {
				return "", err
			}
			return CSVSuite(r), nil
		},
		"table2_dacapo.csv": func() (string, error) {
			r, err := RunSuite("dacapo", cfg)
			if err != nil {
				return "", err
			}
			return CSVSuite(r), nil
		},
		"figure1_convergence.csv": func() (string, error) {
			r, err := RunConvergence(nil, cfg)
			if err != nil {
				return "", err
			}
			return CSVConvergence(r), nil
		},
		"figure2_subset_vs_full.csv": func() (string, error) {
			searchers := []string{"hierarchical", "subset-hillclimb"}
			r, err := RunComparison(nil, searchers, cfg)
			if err != nil {
				return "", err
			}
			return CSVComparison(r, searchers), nil
		},
		"figure4_scaling.csv": func() (string, error) {
			rows, err := RunParallelScaling(nil, nil, cfg)
			if err != nil {
				return "", err
			}
			return CSVScaling(rows), nil
		},
	}
	var written []string
	for name, gen := range files {
		content, err := gen()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return nil, err
		}
		written = append(written, path)
	}
	sort.Strings(written)
	return written, nil
}
