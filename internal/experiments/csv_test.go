package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVConvergence(t *testing.T) {
	res, err := RunConvergence([]string{"fop"}, quick())
	if err != nil {
		t.Fatal(err)
	}
	out := CSVConvergence(res)
	if !strings.HasPrefix(out, "minutes,fop\n") {
		t.Errorf("csv header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != len(res.MinuteMarks)+1 {
		t.Error("csv row count mismatch")
	}
}

func TestCSVComparison(t *testing.T) {
	searchers := []string{"hierarchical", "random"}
	res, err := RunComparison([]string{"fop"}, searchers, Config{BudgetSeconds: 600, Reps: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := CSVComparison(res, searchers)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "benchmark,hierarchical,random" {
		t.Errorf("header: %q", lines[0])
	}
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "fop,") {
		t.Errorf("rows: %v", lines)
	}
}

func TestCSVSuiteAndScaling(t *testing.T) {
	suite, err := RunSuite("dacapo", Config{BudgetSeconds: 400, Reps: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := CSVSuite(suite)
	if !strings.Contains(out, "h2,") || !strings.Contains(out, "collector") {
		t.Error("suite csv incomplete")
	}
	rows, err := RunParallelScaling([]string{"fop"}, []int{1, 2}, Config{BudgetSeconds: 400, Reps: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sc := CSVScaling(rows)
	if !strings.Contains(sc, "fop,1,") || !strings.Contains(sc, "fop,2,") {
		t.Errorf("scaling csv:\n%s", sc)
	}
}

func TestWriteCSVDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	files, err := WriteCSVDir(dir, Config{BudgetSeconds: 400, Reps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 5 {
		t.Fatalf("expected 5 files, got %v", files)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil || len(data) == 0 {
			t.Errorf("file %s unreadable or empty: %v", f, err)
		}
	}
}
