package experiments

import (
	"fmt"

	"repro/hotspot"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/workload"
)

// DriftRow is one benchmark's drift-recovery comparison: the same scheduled
// workload shift tuned obliviously (detector off — the winner goes stale),
// with live re-tuning (detector on — a new epoch recovers), and from
// scratch on the post-shift profile (the oracle the recovery is measured
// against). All winners are re-measured on one oracle runner over the
// shifted profile so the walls are directly comparable.
type DriftRow struct {
	Benchmark string
	// DriftTrial is the trial at which the armed session confirmed the
	// shift; Epochs its total epoch count.
	DriftTrial int
	Epochs     int
	// DefaultWall is the default configuration's wall on the shifted
	// profile; StaleWall / RetunedWall / ScratchWall are the oblivious,
	// re-tuned, and from-scratch winners on the same profile.
	DefaultWall float64
	StaleWall   float64
	RetunedWall float64
	ScratchWall float64
	// RecoveryPct is the share of the from-scratch session's improvement
	// (over the shifted default) that the re-tuned session achieved.
	RecoveryPct float64
}

// DefaultDriftBenchmarks covers a GC-bound profile (xalan) and a
// startup-weighted one (fop).
var DefaultDriftBenchmarks = []string{"xalan", "fop"}

// driftEvalAtTrial is the scheduled shift point: late enough for the
// pre-drift search to converge, early enough to leave re-tuning budget.
const driftEvalAtTrial = 40

// RunDriftEval (E18) measures what live re-tuning buys under workload
// drift. Per benchmark, three sessions run at the same budget and seed
// family: oblivious (shift scheduled, detector off), armed (shift
// scheduled, detector on), and from-scratch (tuned directly on the
// post-shift profile — the best any tuner could do given the new regime
// outright). Recovery is the armed session's improvement over the shifted
// default as a fraction of the from-scratch session's.
func RunDriftEval(benchmarks []string, cfg Config) ([]DriftRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = DefaultDriftBenchmarks
	}
	rows := make([]DriftRow, len(benchmarks))
	err := forEach(len(benchmarks), cfg.workers(), func(i int) error {
		bench := benchmarks[i]
		base := hotspot.Options{
			Benchmark:     bench,
			BudgetMinutes: cfg.budget() / 60,
			Reps:          cfg.reps(),
			Seed:          cfg.subSeed(i * 2),
			Workers:       3,
			Noise:         -1,
			Chaos:         fmt.Sprintf("drift-at=%d", driftEvalAtTrial),
		}
		oblivious, err := hotspot.Tune(base)
		if err != nil {
			return err
		}
		armed := base
		armed.Drift = true
		retuned, err := hotspot.Tune(armed)
		if err != nil {
			return err
		}
		if len(retuned.Epochs) < 2 {
			return fmt.Errorf("drift eval %s: armed session opened no re-tuning epoch", bench)
		}

		prof, ok := workload.ByName(bench)
		if !ok {
			return fmt.Errorf("drift eval: no workload %s", bench)
		}
		shifted, err := jvmsim.DefaultSchedule([]int{driftEvalAtTrial}).ProfileAt(prof, 1)
		if err != nil {
			return err
		}
		scratchOpts := hotspot.Options{
			Workload:      shifted,
			BudgetMinutes: cfg.budget() / 60,
			Reps:          cfg.reps(),
			Seed:          cfg.subSeed(i*2 + 1),
			Noise:         -1,
		}
		scratch, err := hotspot.Tune(scratchOpts)
		if err != nil {
			return err
		}

		// One oracle runner scores every winner on the shifted profile with
		// the same rep allocation — the comparison the sessions themselves
		// cannot make (each measured under its own noise stream and regime).
		reg := flags.NewRegistry()
		oracle := runner.NewInProcess(jvmsim.New(), shifted)
		score := func(args []string) (float64, error) {
			c, err := flags.ParseArgs(reg, args)
			if err != nil {
				return 0, err
			}
			m := oracle.Measure(c, cfg.reps())
			if m.Failed {
				return 0, fmt.Errorf("drift eval %s: oracle measurement failed: %s", bench, m.FailureMessage)
			}
			return m.Mean, nil
		}
		row := DriftRow{
			Benchmark:  bench,
			DriftTrial: retuned.Epochs[0].DriftTrial,
			Epochs:     len(retuned.Epochs),
		}
		if row.DefaultWall, err = score(nil); err != nil {
			return err
		}
		if row.StaleWall, err = score(oblivious.CommandLine); err != nil {
			return err
		}
		if row.RetunedWall, err = score(retuned.CommandLine); err != nil {
			return err
		}
		if row.ScratchWall, err = score(scratch.CommandLine); err != nil {
			return err
		}
		if gap := row.DefaultWall - row.ScratchWall; gap > 0 {
			row.RecoveryPct = 100 * (row.DefaultWall - row.RetunedWall) / gap
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderDrift renders E18.
func RenderDrift(rows []DriftRow) string {
	t := report.NewTable(
		"E18: drift recovery — oblivious vs re-tuned vs from-scratch on the shifted profile",
		"Benchmark", "Drift trial", "Epochs", "Default", "Stale", "Re-tuned", "Scratch", "Recovery")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%d", r.DriftTrial),
			fmt.Sprintf("%d", r.Epochs),
			fmt.Sprintf("%.2fs", r.DefaultWall),
			fmt.Sprintf("%.2fs", r.StaleWall),
			fmt.Sprintf("%.2fs", r.RetunedWall),
			fmt.Sprintf("%.2fs", r.ScratchWall),
			fmt.Sprintf("%.1f%%", r.RecoveryPct))
	}
	return t.String()
}
