package experiments

import (
	"strings"
	"testing"
)

func TestRunDriftEval(t *testing.T) {
	rows, err := RunDriftEval([]string{"xalan"}, Config{BudgetSeconds: 9000, Reps: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("expected 1 row, got %d", len(rows))
	}
	r := rows[0]
	if r.Epochs < 2 || r.DriftTrial <= driftEvalAtTrial {
		t.Fatalf("armed session did not re-tune past the shift: %+v", r)
	}
	if r.RetunedWall >= r.StaleWall {
		t.Errorf("re-tuned winner (%.3fs) does not beat the stale one (%.3fs) on the shifted profile",
			r.RetunedWall, r.StaleWall)
	}
	if r.RecoveryPct < 90 {
		t.Errorf("re-tuning recovered only %.1f%% of the from-scratch improvement", r.RecoveryPct)
	}
	out := RenderDrift(rows)
	if !strings.Contains(out, "xalan") || !strings.Contains(out, "E18") {
		t.Error("render incomplete")
	}
}

func TestRunDriftEvalDefaults(t *testing.T) {
	if len(DefaultDriftBenchmarks) < 2 {
		t.Fatal("default benchmark set too small to demonstrate drift recovery")
	}
}
