// Package experiments regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md). Each experiment returns both
// structured results — which the root-level benchmarks assert shape
// properties against — and rendered report artifacts, which cmd/experiments
// prints.
//
// Sessions for different benchmarks are independent, so each experiment
// fans out across a worker pool sized to the host.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/flags"
	"repro/internal/hierarchy"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config are the knobs shared by all experiments.
type Config struct {
	// BudgetSeconds per tuning session; default 200 virtual minutes.
	BudgetSeconds float64
	// Reps per measurement; default 3.
	Reps int
	// Seed for all sessions (each session derives its own sub-seed).
	Seed int64
	// Workers bounds parallel sessions; default NumCPU.
	Workers int
	// Noise overrides the simulator's measurement noise (relative stddev);
	// negative or zero-value means the default 1.5%.
	Noise float64
}

func (c Config) budget() float64 {
	if c.BudgetSeconds > 0 {
		return c.BudgetSeconds
	}
	return core.DefaultBudgetSeconds
}

func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	return 3
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// subSeed derives a deterministic per-task seed.
func (c Config) subSeed(i int) int64 {
	return c.Seed*1_000_003 + int64(i)*7919
}

// tuneOne runs a single session.
func tuneOne(p *workload.Profile, searcher string, cfg Config, seed int64) (*core.Outcome, error) {
	s, err := core.NewSearcher(searcher)
	if err != nil {
		return nil, err
	}
	sim := jvmsim.New()
	if cfg.Noise > 0 {
		sim.NoiseRelStdDev = cfg.Noise
	}
	session := &core.Session{
		Runner:        runner.NewInProcess(sim, p),
		Searcher:      s,
		BudgetSeconds: cfg.budget(),
		Reps:          cfg.reps(),
		Seed:          seed,
	}
	return session.Run()
}

// forEach runs fn(i) for i in [0, n) on the worker pool, collecting the
// first error.
func forEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// SuiteRow is one benchmark's line in Table 1 or Table 2.
type SuiteRow struct {
	Benchmark      string
	DefaultWall    float64
	BestWall       float64
	ImprovementPct float64
	Speedup        float64
	Trials         int
	// Flakes counts transient failures absorbed by measurement retries
	// (always 0 on a healthy farm; nonzero under fault injection).
	Flakes    int
	Collector string
	Tiered    bool
}

// SuiteResult is a whole suite's tuning outcome.
type SuiteResult struct {
	Suite          string
	Rows           []SuiteRow
	AvgImprovement float64
	MaxImprovement float64
	// TopThree are the three largest improvements, descending.
	TopThree [3]float64
}

// RunSuite tunes every program of a suite with the hierarchical searcher —
// experiments E1 (specjvm2008) and E2 (dacapo).
func RunSuite(suite string, cfg Config) (*SuiteResult, error) {
	var profiles []*workload.Profile
	switch suite {
	case "specjvm2008":
		profiles = workload.SPECjvm2008()
	case "dacapo":
		profiles = workload.DaCapo()
	default:
		return nil, fmt.Errorf("experiments: unknown suite %q", suite)
	}
	res := &SuiteResult{Suite: suite, Rows: make([]SuiteRow, len(profiles))}
	err := forEach(len(profiles), cfg.workers(), func(i int) error {
		out, err := tuneOne(profiles[i], "hierarchical", cfg, cfg.subSeed(i))
		if err != nil {
			return fmt.Errorf("%s: %w", profiles[i].Name, err)
		}
		col, _ := hierarchy.SelectedCollector(out.Best)
		res.Rows[i] = SuiteRow{
			Benchmark:      profiles[i].Name,
			DefaultWall:    out.DefaultWall,
			BestWall:       out.BestWall,
			ImprovementPct: out.ImprovementPct,
			Speedup:        out.Speedup,
			Trials:         out.Trials,
			Flakes:         out.Flakes,
			Collector:      string(col),
			Tiered:         out.Best.Bool("TieredCompilation"),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	imps := make([]float64, len(res.Rows))
	for i, r := range res.Rows {
		imps[i] = r.ImprovementPct
	}
	res.AvgImprovement = stats.Mean(imps)
	res.MaxImprovement = stats.Max(imps)
	sorted := append([]float64(nil), imps...)
	for i := 0; i < 3 && i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
		res.TopThree[i] = sorted[i]
	}
	return res, nil
}

// ConvergenceResult holds Figure 1: best-so-far improvement over tuning
// time for representative benchmarks.
type ConvergenceResult struct {
	// Benchmarks are the curve names.
	Benchmarks []string
	// MinuteMarks are the x samples (virtual minutes).
	MinuteMarks []float64
	// ImprovementAt[b][m] is percent improvement of benchmark b at minute
	// mark m.
	ImprovementAt [][]float64
}

// DefaultConvergenceBenchmarks are the paper-style representative picks:
// two JIT-bound startup programs and two GC-bound DaCapo programs.
var DefaultConvergenceBenchmarks = []string{
	"startup.compiler.compiler", "startup.xml.validation", "h2", "eclipse",
}

// RunConvergence produces Figure 1.
func RunConvergence(benchmarks []string, cfg Config) (*ConvergenceResult, error) {
	if len(benchmarks) == 0 {
		benchmarks = DefaultConvergenceBenchmarks
	}
	marks := []float64{5, 10, 20, 40, 60, 80, 100, 120, 160, 200}
	res := &ConvergenceResult{
		Benchmarks:    benchmarks,
		MinuteMarks:   marks,
		ImprovementAt: make([][]float64, len(benchmarks)),
	}
	err := forEach(len(benchmarks), cfg.workers(), func(i int) error {
		p, ok := workload.ByName(benchmarks[i])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", benchmarks[i])
		}
		out, err := tuneOne(p, "hierarchical", cfg, cfg.subSeed(i))
		if err != nil {
			return err
		}
		row := make([]float64, len(marks))
		for m, min := range marks {
			row[m] = stats.ImprovementPct(out.DefaultWall, out.BestAt(min*60))
		}
		res.ImprovementAt[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SpaceResult holds Table 3: the search-space reduction numbers.
type SpaceResult struct {
	TotalFlags        int
	TunableFlags      int
	FlatLog10         float64
	HierarchicalLog10 float64
	ReductionLog10    float64
	ActivePerBranch   map[string]int
}

// RunSpace produces Table 3 — pure accounting, no tuning.
func RunSpace() *SpaceResult {
	reg := flags.NewRegistry()
	tree := hierarchy.Build(reg)
	ss := tree.SpaceSize()
	return &SpaceResult{
		TotalFlags:        reg.Len(),
		TunableFlags:      ss.TunableFlags,
		FlatLog10:         ss.FlatLog10,
		HierarchicalLog10: ss.HierarchicalLog10,
		ReductionLog10:    ss.FlatLog10 - ss.HierarchicalLog10,
		ActivePerBranch:   ss.ActivePerBranch,
	}
}

// ComparisonRow is one benchmark × searcher outcome.
type ComparisonRow struct {
	Benchmark      string
	Searcher       string
	ImprovementPct float64
	Trials         int
	Failures       int
}

// ComparisonResult holds Figures 2 and 3: improvements per searcher.
type ComparisonResult struct {
	Rows []ComparisonRow
	// AvgBySearcher is mean improvement per searcher across benchmarks.
	AvgBySearcher map[string]float64
}

// DefaultComparisonBenchmarks mixes JIT-bound and GC-bound programs.
var DefaultComparisonBenchmarks = []string{
	"startup.compiler.compiler", "startup.xml.validation",
	"startup.crypto.aes", "startup.scimark.sparse",
	"h2", "eclipse", "xalan", "lusearch",
}

// RunComparison tunes each benchmark with each searcher — E5 uses
// searchers {hierarchical, subset-hillclimb}, E6 the full strategy set.
func RunComparison(benchmarks, searchers []string, cfg Config) (*ComparisonResult, error) {
	if len(benchmarks) == 0 {
		benchmarks = DefaultComparisonBenchmarks
	}
	type task struct{ b, s int }
	var tasks []task
	for b := range benchmarks {
		for s := range searchers {
			tasks = append(tasks, task{b, s})
		}
	}
	rows := make([]ComparisonRow, len(tasks))
	err := forEach(len(tasks), cfg.workers(), func(i int) error {
		t := tasks[i]
		p, ok := workload.ByName(benchmarks[t.b])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", benchmarks[t.b])
		}
		// Seed depends on the benchmark only, so searchers face identical
		// noise draws where configs coincide.
		out, err := tuneOne(p, searchers[t.s], cfg, cfg.subSeed(t.b))
		if err != nil {
			return err
		}
		rows[i] = ComparisonRow{
			Benchmark:      benchmarks[t.b],
			Searcher:       searchers[t.s],
			ImprovementPct: out.ImprovementPct,
			Trials:         out.Trials,
			Failures:       out.Failures,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &ComparisonResult{Rows: rows, AvgBySearcher: map[string]float64{}}
	counts := map[string]int{}
	for _, r := range rows {
		res.AvgBySearcher[r.Searcher] += r.ImprovementPct
		counts[r.Searcher]++
	}
	for s, sum := range res.AvgBySearcher {
		res.AvgBySearcher[s] = sum / float64(counts[s])
	}
	return res, nil
}

// BestConfigRow is one line of Table 4: what the winning configuration
// actually chose.
type BestConfigRow struct {
	Benchmark      string
	Collector      string
	Tiered         bool
	HeapMB         int64
	ImprovementPct float64
	KeyChanges     []string // non-default flags, canonical order
}

// RunBestConfigs produces Table 4 for the given benchmarks (both suites if
// empty).
func RunBestConfigs(benchmarks []string, cfg Config) ([]BestConfigRow, error) {
	if len(benchmarks) == 0 {
		for _, p := range workload.All() {
			benchmarks = append(benchmarks, p.Name)
		}
	}
	rows := make([]BestConfigRow, len(benchmarks))
	err := forEach(len(benchmarks), cfg.workers(), func(i int) error {
		p, ok := workload.ByName(benchmarks[i])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", benchmarks[i])
		}
		out, err := tuneOne(p, "hierarchical", cfg, cfg.subSeed(i))
		if err != nil {
			return err
		}
		col, _ := hierarchy.SelectedCollector(out.Best)
		rows[i] = BestConfigRow{
			Benchmark:      benchmarks[i],
			Collector:      string(col),
			Tiered:         out.Best.Bool("TieredCompilation"),
			HeapMB:         out.Best.Int("MaxHeapSize") >> 20,
			ImprovementPct: out.ImprovementPct,
			KeyChanges:     out.Best.Diff(flags.NewConfig(out.Best.Registry())),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
