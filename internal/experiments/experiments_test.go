package experiments

import (
	"strings"
	"testing"
)

// quick returns a config small enough for unit tests but large enough for
// the searchers to find the big wins.
func quick() Config {
	return Config{BudgetSeconds: 1800, Reps: 2, Seed: 42}
}

func TestRunSuiteSPECjvm(t *testing.T) {
	res, err := RunSuite("specjvm2008", quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("expected 16 rows, got %d", len(res.Rows))
	}
	if res.AvgImprovement <= 0 {
		t.Error("suite should improve on average")
	}
	if res.TopThree[0] < res.TopThree[1] || res.TopThree[1] < res.TopThree[2] {
		t.Errorf("TopThree not sorted: %v", res.TopThree)
	}
	if res.MaxImprovement != res.TopThree[0] {
		t.Error("max must equal the first of top three")
	}
	out := RenderSuite(res, "Table 1")
	if !strings.Contains(out, "startup.compiler.compiler") || !strings.Contains(out, "average") {
		t.Error("rendered table incomplete")
	}
}

func TestRunSuiteDaCapo(t *testing.T) {
	res, err := RunSuite("dacapo", quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("expected 13 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.BestWall > r.DefaultWall {
			t.Errorf("%s: tuned worse than default", r.Benchmark)
		}
		if r.Collector == "" {
			t.Errorf("%s: missing collector", r.Benchmark)
		}
	}
}

func TestRunSuiteUnknown(t *testing.T) {
	if _, err := RunSuite("nope", quick()); err == nil {
		t.Error("unknown suite should error")
	}
}

func TestRunSuiteDeterministic(t *testing.T) {
	a, err := RunSuite("dacapo", Config{BudgetSeconds: 600, Reps: 1, Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite("dacapo", Config{BudgetSeconds: 600, Reps: 1, Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].BestWall != b.Rows[i].BestWall {
			t.Fatalf("parallelism changed results for %s", a.Rows[i].Benchmark)
		}
	}
}

func TestRunConvergence(t *testing.T) {
	res, err := RunConvergence([]string{"startup.xml.validation", "h2"}, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ImprovementAt) != 2 {
		t.Fatal("expected 2 curves")
	}
	for i, curve := range res.ImprovementAt {
		for m := 1; m < len(curve); m++ {
			if curve[m] < curve[m-1]-1e-9 {
				t.Errorf("curve %d not monotone at mark %d: %v", i, m, curve)
			}
		}
	}
	out := RenderConvergence(res)
	if !strings.Contains(out, "minutes,") || !strings.Contains(out, "Figure 1") {
		t.Error("rendered convergence missing parts")
	}
}

func TestRunConvergenceUnknownBenchmark(t *testing.T) {
	if _, err := RunConvergence([]string{"nope"}, quick()); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestRunSpace(t *testing.T) {
	res := RunSpace()
	if res.TotalFlags < 600 {
		t.Errorf("registry should model 600+ flags, got %d", res.TotalFlags)
	}
	if res.ReductionLog10 < 3 {
		t.Errorf("hierarchy should cut orders of magnitude, got %.1f", res.ReductionLog10)
	}
	if len(res.ActivePerBranch) != 8 {
		t.Errorf("expected 8 branch combos, got %d", len(res.ActivePerBranch))
	}
	out := RenderSpace(res)
	if !strings.Contains(out, "reduction") {
		t.Error("rendered space table incomplete")
	}
}

func TestRunComparison(t *testing.T) {
	benches := []string{"startup.xml.validation", "h2"}
	searchers := []string{"hierarchical", "subset-hillclimb"}
	res, err := RunComparison(benches, searchers, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	if res.AvgBySearcher["hierarchical"] <= res.AvgBySearcher["subset-hillclimb"] {
		t.Errorf("whole-JVM tuning should beat the subset baseline on average: %v",
			res.AvgBySearcher)
	}
	out := RenderComparison(res, "Figure 2", searchers)
	if !strings.Contains(out, "hierarchical") || !strings.Contains(out, "average") {
		t.Error("rendered comparison incomplete")
	}
}

func TestRunBestConfigs(t *testing.T) {
	rows, err := RunBestConfigs([]string{"h2", "startup.compiler.compiler"}, quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("expected 2 rows")
	}
	for _, r := range rows {
		if r.Collector == "" || r.HeapMB <= 0 {
			t.Errorf("row incomplete: %+v", r)
		}
	}
	// The startup benchmark's winner should enable tiered compilation or
	// lower the compile threshold — i.e., actually change JIT flags.
	if len(rows[1].KeyChanges) == 0 {
		t.Error("winning config should differ from defaults")
	}
	out := RenderBestConfigs(rows)
	if !strings.Contains(out, "h2") {
		t.Error("rendered best-config table incomplete")
	}
}

func TestForEachPropagatesErrors(t *testing.T) {
	err := forEach(10, 4, func(i int) error {
		if i == 5 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Errorf("expected errTest, got %v", err)
	}
	if err := forEach(0, 4, func(int) error { return errTest }); err != nil {
		t.Error("zero tasks should not error")
	}
}

type testErr string

func (e testErr) Error() string { return string(e) }

var errTest = testErr("boom")
