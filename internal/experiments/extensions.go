package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The experiments in this file go beyond the paper: robustness of its
// headline numbers across random seeds (E8) and the natural extension of
// budgeted tuning to a parallel evaluation farm (E9).

// SeedVarianceRow is one benchmark's improvement distribution across seeds.
type SeedVarianceRow struct {
	Benchmark    string
	Improvements []float64
	Mean         float64
	CI95         float64
	Min, Max     float64
}

// DefaultSeedVarianceBenchmarks mixes a dramatic winner, a mid-pack
// program, and a small-gain kernel from each suite.
var DefaultSeedVarianceBenchmarks = []string{
	"startup.compiler.compiler", "startup.serial", "startup.scimark.fft",
	"h2", "xalan", "sunflow",
}

// RunSeedVariance (E8) repeats the tuning session across seeds and reports
// the spread: how much of the paper's per-benchmark number is luck.
func RunSeedVariance(benchmarks []string, seeds int, cfg Config) ([]SeedVarianceRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = DefaultSeedVarianceBenchmarks
	}
	if seeds < 2 {
		seeds = 5
	}
	type task struct{ b, s int }
	var tasks []task
	for b := range benchmarks {
		for s := 0; s < seeds; s++ {
			tasks = append(tasks, task{b, s})
		}
	}
	imps := make([]float64, len(tasks))
	err := forEach(len(tasks), cfg.workers(), func(i int) error {
		t := tasks[i]
		p, ok := workload.ByName(benchmarks[t.b])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", benchmarks[t.b])
		}
		out, err := tuneOne(p, "hierarchical", cfg, cfg.subSeed(t.b*1000+t.s))
		if err != nil {
			return err
		}
		imps[i] = out.ImprovementPct
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SeedVarianceRow, len(benchmarks))
	for b, name := range benchmarks {
		sample := make([]float64, seeds)
		for s := 0; s < seeds; s++ {
			sample[s] = imps[b*seeds+s]
		}
		rows[b] = SeedVarianceRow{
			Benchmark:    name,
			Improvements: sample,
			Mean:         stats.Mean(sample),
			CI95:         stats.CI95(sample),
			Min:          stats.Min(sample),
			Max:          stats.Max(sample),
		}
	}
	return rows, nil
}

// RenderSeedVariance renders E8.
func RenderSeedVariance(rows []SeedVarianceRow, seeds int) string {
	t := report.NewTable(
		fmt.Sprintf("E8: improvement stability across %d seeds", seeds),
		"Benchmark", "Mean", "±95% CI", "Min", "Max")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.1f%%", r.Mean),
			fmt.Sprintf("%.1f", r.CI95),
			fmt.Sprintf("%.1f%%", r.Min),
			fmt.Sprintf("%.1f%%", r.Max))
	}
	return t.String()
}

// ScalingRow is one (benchmark, workers) outcome.
type ScalingRow struct {
	Benchmark      string
	Workers        int
	Trials         int
	ImprovementPct float64
	MakespanMin    float64
}

// RunParallelScaling (E9) tunes with 1..maxWorkers parallel virtual
// evaluation slots under the same wall budget: parallel tuning buys trials,
// and trials buy (diminishing) improvement.
func RunParallelScaling(benchmarks []string, workerCounts []int, cfg Config) ([]ScalingRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"startup.compiler.compiler", "h2"}
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	type task struct{ b, w int }
	var tasks []task
	for b := range benchmarks {
		for w := range workerCounts {
			tasks = append(tasks, task{b, w})
		}
	}
	rows := make([]ScalingRow, len(tasks))
	err := forEach(len(tasks), cfg.workers(), func(i int) error {
		t := tasks[i]
		p, ok := workload.ByName(benchmarks[t.b])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", benchmarks[t.b])
		}
		searcher, err := core.NewSearcher("hierarchical")
		if err != nil {
			return err
		}
		session := &core.Session{
			Runner:        runner.NewInProcess(jvmsim.New(), p),
			Searcher:      searcher,
			BudgetSeconds: cfg.budget(),
			Reps:          cfg.reps(),
			Seed:          cfg.subSeed(t.b),
			Workers:       workerCounts[t.w],
		}
		out, err := session.Run()
		if err != nil {
			return err
		}
		rows[i] = ScalingRow{
			Benchmark:      benchmarks[t.b],
			Workers:        workerCounts[t.w],
			Trials:         out.Trials,
			ImprovementPct: out.ImprovementPct,
			MakespanMin:    out.Elapsed / 60,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RobustnessRow summarizes the tuner's behaviour over one family of
// generated workloads.
type RobustnessRow struct {
	Kind         string
	N            int
	MeanImp      float64
	MinImp       float64
	MaxImp       float64
	MeanTrials   float64
	DefaultFails int
}

// RunGeneratedRobustness (E10) tunes randomly generated workloads — programs
// the profiles were never calibrated against — and checks the tuner's
// contract: the default configuration always runs, and tuning never ends
// worse than default.
func RunGeneratedRobustness(perKind int, cfg Config) ([]RobustnessRow, error) {
	if perKind < 1 {
		perKind = 5
	}
	kinds := workload.GenKinds()
	type task struct{ k, i int }
	var tasks []task
	for k := range kinds {
		for i := 0; i < perKind; i++ {
			tasks = append(tasks, task{k, i})
		}
	}
	imps := make([]float64, len(tasks))
	trials := make([]int, len(tasks))
	err := forEach(len(tasks), cfg.workers(), func(ti int) error {
		t := tasks[ti]
		p, err := workload.Generate(kinds[t.k], cfg.subSeed(t.k*100+t.i))
		if err != nil {
			return err
		}
		out, err := tuneOne(p, "hierarchical", cfg, cfg.subSeed(ti))
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		imps[ti] = out.ImprovementPct
		trials[ti] = out.Trials
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]RobustnessRow, len(kinds))
	for k, kind := range kinds {
		sample := make([]float64, perKind)
		tr := 0
		for i := 0; i < perKind; i++ {
			sample[i] = imps[k*perKind+i]
			tr += trials[k*perKind+i]
		}
		rows[k] = RobustnessRow{
			Kind:       string(kind),
			N:          perKind,
			MeanImp:    stats.Mean(sample),
			MinImp:     stats.Min(sample),
			MaxImp:     stats.Max(sample),
			MeanTrials: float64(tr) / float64(perKind),
		}
	}
	return rows, nil
}

// RenderGeneratedRobustness renders E10.
func RenderGeneratedRobustness(rows []RobustnessRow) string {
	t := report.NewTable("E10: robustness on generated (uncalibrated) workloads",
		"Family", "N", "Mean improvement", "Min", "Max", "Mean trials")
	for _, r := range rows {
		t.AddRow(r.Kind, r.N,
			fmt.Sprintf("%.1f%%", r.MeanImp),
			fmt.Sprintf("%.1f%%", r.MinImp),
			fmt.Sprintf("%.1f%%", r.MaxImp),
			fmt.Sprintf("%.0f", r.MeanTrials))
	}
	return t.String()
}

// CommonConfigRow compares one program's per-program tuning result with
// its performance under the suite-wide common configuration.
type CommonConfigRow struct {
	Benchmark     string
	PerProgramPct float64 // improvement when tuned individually
	CommonPct     float64 // improvement under the common config
}

// CommonConfigResult holds E11.
type CommonConfigResult struct {
	Suite string
	// CommonFlags is the winning common configuration's command line.
	CommonFlags []string
	// SuiteAvgCommonPct is the suite-mean improvement of the one common
	// config; SuiteAvgPerProgramPct is the mean when every program gets
	// its own tuning run.
	SuiteAvgCommonPct     float64
	SuiteAvgPerProgramPct float64
	Rows                  []CommonConfigRow
}

// RunCommonConfig (E11) searches for a single configuration that serves a
// whole suite, under the same *total* budget per-program tuning gets
// (budget × suite size), then compares per program. The interesting shape:
// a common config captures much of the average win but sacrifices the
// program-specific extremes.
func RunCommonConfig(suite string, cfg Config) (*CommonConfigResult, error) {
	var profiles []*workload.Profile
	switch suite {
	case "specjvm2008":
		profiles = workload.SPECjvm2008()
	case "dacapo":
		profiles = workload.DaCapo()
	default:
		return nil, fmt.Errorf("experiments: unknown suite %q", suite)
	}

	// Per-program tuning (the paper's setup) for the comparison column.
	per, err := RunSuite(suite, cfg)
	if err != nil {
		return nil, err
	}

	// Common-config tuning over the aggregate objective.
	sim := jvmsim.New()
	multi, err := runner.NewMulti(sim, profiles)
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSearcher("hierarchical")
	if err != nil {
		return nil, err
	}
	session := &core.Session{
		Runner:        multi,
		Searcher:      searcher,
		BudgetSeconds: cfg.budget() * float64(len(profiles)),
		Reps:          cfg.reps(),
		Seed:          cfg.Seed,
	}
	out, err := session.Run()
	if err != nil {
		return nil, err
	}

	res := &CommonConfigResult{
		Suite:                 suite,
		CommonFlags:           out.Best.CommandLine(),
		SuiteAvgCommonPct:     out.ImprovementPct,
		SuiteAvgPerProgramPct: per.AvgImprovement,
	}
	walls := multi.MemberWalls(out.Best, cfg.reps())
	baselines := multi.Baselines()
	for i, p := range profiles {
		row := CommonConfigRow{
			Benchmark:     p.Name,
			PerProgramPct: per.Rows[i].ImprovementPct,
		}
		if walls[i] > 0 {
			row.CommonPct = stats.ImprovementPct(baselines[i], walls[i])
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// NoiseRow is one (noise level, benchmark) outcome of E12.
type NoiseRow struct {
	NoisePct       float64 // relative measurement noise in percent
	Benchmark      string
	ImprovementPct float64 // claimed improvement (noisy means)
	TrueImpPct     float64 // the winner's true (noiseless) improvement
}

// RunNoiseSensitivity (E12) re-runs tuning under increasing measurement
// noise and scores each winner on a noiseless oracle. The interesting
// shape: claimed improvements inflate with noise (the tuner picks lucky
// measurements) while true improvements degrade slowly — quantifying how
// much of a tuning result one should believe at a given noise level.
func RunNoiseSensitivity(benchmarks []string, noisePcts []float64, cfg Config) ([]NoiseRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"startup.xml.validation", "h2"}
	}
	if len(noisePcts) == 0 {
		noisePcts = []float64{0, 1.5, 5, 10}
	}
	type task struct{ b, n int }
	var tasks []task
	for b := range benchmarks {
		for n := range noisePcts {
			tasks = append(tasks, task{b, n})
		}
	}
	rows := make([]NoiseRow, len(tasks))
	err := forEach(len(tasks), cfg.workers(), func(i int) error {
		t := tasks[i]
		p, ok := workload.ByName(benchmarks[t.b])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", benchmarks[t.b])
		}
		c := cfg
		c.Noise = noisePcts[t.n] / 100
		if c.Noise == 0 {
			c.Noise = -1 // sentinel: tuneOne only overrides when > 0
		}
		out, err := tuneOneNoise(p, cfg, c.Noise, cfg.subSeed(t.b))
		if err != nil {
			return err
		}
		oracle := jvmsim.New()
		oracle.NoiseRelStdDev = 0
		def := oracle.Run(flags.NewConfig(out.Best.Registry()), p, 0).WallSeconds
		tuned := oracle.Run(out.Best, p, 0)
		row := NoiseRow{
			NoisePct:       noisePcts[t.n],
			Benchmark:      benchmarks[t.b],
			ImprovementPct: out.ImprovementPct,
		}
		if !tuned.Failed {
			row.TrueImpPct = stats.ImprovementPct(def, tuned.WallSeconds)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// tuneOneNoise is tuneOne with an explicit noise level (-1 = zero noise).
func tuneOneNoise(p *workload.Profile, cfg Config, noise float64, seed int64) (*core.Outcome, error) {
	s, err := core.NewSearcher("hierarchical")
	if err != nil {
		return nil, err
	}
	sim := jvmsim.New()
	if noise > 0 {
		sim.NoiseRelStdDev = noise
	} else if noise < 0 {
		sim.NoiseRelStdDev = 0
	}
	session := &core.Session{
		Runner:        runner.NewInProcess(sim, p),
		Searcher:      s,
		BudgetSeconds: cfg.budget(),
		Reps:          cfg.reps(),
		Seed:          seed,
	}
	return session.Run()
}

// RenderNoiseSensitivity renders E12.
func RenderNoiseSensitivity(rows []NoiseRow) string {
	t := report.NewTable("E12: tuning under measurement noise (claimed vs true improvement)",
		"Benchmark", "Noise", "Claimed", "True")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.1f%%", r.NoisePct),
			fmt.Sprintf("%.1f%%", r.ImprovementPct),
			fmt.Sprintf("%.1f%%", r.TrueImpPct))
	}
	return t.String()
}

// RenderCommonConfig renders E11.
func RenderCommonConfig(r *CommonConfigResult) string {
	t := report.NewTable(
		fmt.Sprintf("E11: one common configuration for the %s suite vs per-program tuning", r.Suite),
		"Benchmark", "Per-program", "Common config")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprintf("%.1f%%", row.PerProgramPct),
			fmt.Sprintf("%.1f%%", row.CommonPct))
	}
	t.AddFooter("average",
		fmt.Sprintf("%.1f%%", r.SuiteAvgPerProgramPct),
		fmt.Sprintf("%.1f%%", r.SuiteAvgCommonPct))
	return t.String()
}

// RenderParallelScaling renders E9.
func RenderParallelScaling(rows []ScalingRow) string {
	t := report.NewTable("E9: parallel tuning farm under a fixed wall budget",
		"Benchmark", "Workers", "Trials", "Improvement", "Makespan(min)")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Workers, r.Trials,
			fmt.Sprintf("%.1f%%", r.ImprovementPct),
			fmt.Sprintf("%.0f", r.MakespanMin))
	}
	return t.String()
}
