package experiments

import (
	"strings"
	"testing"
)

func TestRunSeedVariance(t *testing.T) {
	rows, err := RunSeedVariance([]string{"fop", "startup.scimark.fft"}, 3,
		Config{BudgetSeconds: 900, Reps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Improvements) != 3 {
			t.Errorf("%s: expected 3 seeds, got %d", r.Benchmark, len(r.Improvements))
		}
		if r.Min > r.Mean || r.Mean > r.Max {
			t.Errorf("%s: min/mean/max inconsistent: %+v", r.Benchmark, r)
		}
		if r.Mean < 0 {
			t.Errorf("%s: negative mean improvement %f", r.Benchmark, r.Mean)
		}
	}
	out := RenderSeedVariance(rows, 3)
	if !strings.Contains(out, "fop") || !strings.Contains(out, "CI") {
		t.Error("render incomplete")
	}
}

func TestRunSeedVarianceDefaults(t *testing.T) {
	if _, err := RunSeedVariance([]string{"nope"}, 2, quick()); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestRunParallelScaling(t *testing.T) {
	rows, err := RunParallelScaling([]string{"fop"}, []int{1, 4},
		Config{BudgetSeconds: 1200, Reps: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	if rows[1].Trials <= rows[0].Trials {
		t.Errorf("4 workers should run more trials: %d vs %d", rows[1].Trials, rows[0].Trials)
	}
	if rows[1].ImprovementPct < rows[0].ImprovementPct-2 {
		t.Errorf("more trials should not tune much worse: %.1f vs %.1f",
			rows[1].ImprovementPct, rows[0].ImprovementPct)
	}
	out := RenderParallelScaling(rows)
	if !strings.Contains(out, "Workers") {
		t.Error("render incomplete")
	}
}

func TestRunParallelScalingUnknown(t *testing.T) {
	if _, err := RunParallelScaling([]string{"nope"}, nil, quick()); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestRunGeneratedRobustness(t *testing.T) {
	rows, err := RunGeneratedRobustness(2, Config{BudgetSeconds: 900, Reps: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 families, got %d", len(rows))
	}
	for _, r := range rows {
		if r.MinImp < 0 {
			t.Errorf("%s: tuning ended worse than default (%.1f%%)", r.Kind, r.MinImp)
		}
		if r.N != 2 {
			t.Errorf("%s: N = %d", r.Kind, r.N)
		}
	}
	out := RenderGeneratedRobustness(rows)
	if !strings.Contains(out, "startup") || !strings.Contains(out, "mixed") {
		t.Error("render incomplete")
	}
}

func TestRunCommonConfig(t *testing.T) {
	res, err := RunCommonConfig("dacapo", Config{BudgetSeconds: 600, Reps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("expected 13 rows, got %d", len(res.Rows))
	}
	if res.SuiteAvgCommonPct <= 0 {
		t.Error("common config should still improve the suite")
	}
	if res.SuiteAvgCommonPct > res.SuiteAvgPerProgramPct+5 {
		t.Errorf("common config (%.1f%%) should not dominate per-program tuning (%.1f%%)",
			res.SuiteAvgCommonPct, res.SuiteAvgPerProgramPct)
	}
	if len(res.CommonFlags) == 0 {
		t.Error("common config should change flags")
	}
	out := RenderCommonConfig(res)
	if !strings.Contains(out, "common configuration") || !strings.Contains(out, "average") {
		t.Error("render incomplete")
	}
	if _, err := RunCommonConfig("nope", quick()); err == nil {
		t.Error("unknown suite should error")
	}
}

func TestRunNoiseSensitivity(t *testing.T) {
	rows, err := RunNoiseSensitivity([]string{"fop"}, []float64{0, 8}, Config{BudgetSeconds: 1200, Reps: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	zero, noisy := rows[0], rows[1]
	if zero.NoisePct != 0 || noisy.NoisePct != 8 {
		t.Fatalf("rows out of order: %+v", rows)
	}
	// Under zero noise, claimed == true.
	if diff := zero.ImprovementPct - zero.TrueImpPct; diff > 0.01 || diff < -0.01 {
		t.Errorf("zero noise should have claimed == true: %.2f vs %.2f",
			zero.ImprovementPct, zero.TrueImpPct)
	}
	// Under heavy noise the claim drifts from the truth (usually inflating,
	// but a noisy baseline can mask it on a single seed); the drift is
	// bounded by the noise scale, and the *true* win survives.
	if drift := noisy.ImprovementPct - noisy.TrueImpPct; drift > 25 || drift < -25 {
		t.Errorf("claim drifted implausibly far from truth: %.2f vs %.2f",
			noisy.ImprovementPct, noisy.TrueImpPct)
	}
	if noisy.TrueImpPct <= 0 {
		t.Errorf("tuning under noise should still find a real win, got %.2f%%", noisy.TrueImpPct)
	}
	if noisy.TrueImpPct < zero.TrueImpPct-15 {
		t.Errorf("noise degraded the true win too much: %.2f vs %.2f",
			noisy.TrueImpPct, zero.TrueImpPct)
	}
	out := RenderNoiseSensitivity(rows)
	if !strings.Contains(out, "Claimed") {
		t.Error("render incomplete")
	}
	if _, err := RunNoiseSensitivity([]string{"nope"}, nil, quick()); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestRunObjectives(t *testing.T) {
	rows, err := RunObjectives([]string{"tradebeans"}, Config{BudgetSeconds: 4000, Reps: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	thr, pause := rows[0], rows[1]
	if thr.Objective != "throughput" || pause.Objective != "pause" {
		t.Fatalf("rows out of order: %+v", rows)
	}
	if pause.MaxPauseMs >= thr.MaxPauseMs {
		t.Errorf("pause tuning should cut the worst pause: %.0fms vs %.0fms",
			pause.MaxPauseMs, thr.MaxPauseMs)
	}
	// Throughput tuning should be at least roughly as fast (the pause
	// winner can land within noise of it at short budgets).
	if thr.WallSeconds > pause.WallSeconds*1.05 {
		t.Errorf("throughput tuning notably slower: %.1fs vs %.1fs",
			thr.WallSeconds, pause.WallSeconds)
	}
	out := RenderObjectives(rows)
	if !strings.Contains(out, "MaxPause") {
		t.Error("render incomplete")
	}
	if _, err := RunObjectives([]string{"nope"}, quick()); err == nil {
		t.Error("unknown benchmark should error")
	}
}
