package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file instead when -update is set:
//
//	go test ./internal/experiments -run Golden -update
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden file (re-run with -update if intended)\n--- got\n%s\n--- want\n%s",
			name, got, want)
	}
}

// Synthetic fixtures: hand-built results with exact values so the goldens
// pin the *rendering*, not the tuner.
func goldenSuiteResult() *SuiteResult {
	return &SuiteResult{
		Suite: "specjvm2008",
		Rows: []SuiteRow{
			{Benchmark: "startup.helloworld", DefaultWall: 0.875, BestWall: 0.8125,
				ImprovementPct: 7.14, Speedup: 1.08, Trials: 118, Flakes: 0,
				Collector: "serial", Tiered: true},
			{Benchmark: "compress", DefaultWall: 6.5, BestWall: 5.25,
				ImprovementPct: 19.23, Speedup: 1.24, Trials: 301, Flakes: 4,
				Collector: "parallel", Tiered: false},
			{Benchmark: "xml.validation", DefaultWall: 11.25, BestWall: 8.5,
				ImprovementPct: 24.44, Speedup: 1.32, Trials: 276, Flakes: 11,
				Collector: "g1", Tiered: true},
		},
		AvgImprovement: 16.94,
		MaxImprovement: 24.44,
		TopThree:       [3]float64{24.44, 19.23, 7.14},
	}
}

func TestSuiteGoldenText(t *testing.T) {
	checkGolden(t, "suite_table", RenderSuite(goldenSuiteResult(), "Table 1: SPECjvm2008 (golden fixture)"))
}

func TestSuiteGoldenCSV(t *testing.T) {
	checkGolden(t, "suite_csv", CSVSuite(goldenSuiteResult()))
}

func TestComparisonGoldenCSV(t *testing.T) {
	r := &ComparisonResult{
		Rows: []ComparisonRow{
			{Benchmark: "h2", Searcher: "hierarchical", ImprovementPct: 21.5, Trials: 290, Failures: 12},
			{Benchmark: "h2", Searcher: "random", ImprovementPct: 9.75, Trials: 310, Failures: 40},
			{Benchmark: "eclipse", Searcher: "hierarchical", ImprovementPct: 14.25, Trials: 265, Failures: 8},
			{Benchmark: "eclipse", Searcher: "random", ImprovementPct: 5.5, Trials: 330, Failures: 51},
		},
		AvgBySearcher: map[string]float64{"hierarchical": 17.875, "random": 7.625},
	}
	checkGolden(t, "comparison_csv", CSVComparison(r, []string{"hierarchical", "random"}))
}

func TestScalingGoldenCSV(t *testing.T) {
	rows := []ScalingRow{
		{Benchmark: "h2", Workers: 1, Trials: 240, ImprovementPct: 18.5, MakespanMin: 200},
		{Benchmark: "h2", Workers: 4, Trials: 705, ImprovementPct: 21.25, MakespanMin: 200},
		{Benchmark: "h2", Workers: 16, Trials: 2030, ImprovementPct: 22.0, MakespanMin: 200},
	}
	checkGolden(t, "scaling_csv", CSVScaling(rows))
}

func TestConvergenceGoldenCSV(t *testing.T) {
	r := &ConvergenceResult{
		Benchmarks:  []string{"h2", "eclipse"},
		MinuteMarks: []float64{25, 50, 100, 200},
		ImprovementAt: [][]float64{
			{4.5, 11.25, 17.5, 21.5},
			{2.25, 6.5, 10.75, 14.25},
		},
	}
	checkGolden(t, "convergence_csv", CSVConvergence(r))
}
