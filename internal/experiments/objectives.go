package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/jvmsim"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/workload"
)

// ObjectiveRow is one (benchmark, objective) outcome of E13: the winning
// configuration's wall time and worst GC pause under each tuning goal.
type ObjectiveRow struct {
	Benchmark   string
	Objective   string
	WallSeconds float64
	MaxPauseMs  float64
	Collector   string
}

// RunObjectives (E13) tunes GC-heavy benchmarks once for throughput and
// once for pause latency. The expected shape is the classic trade-off:
// pause tuning picks concurrent collectors and small young generations,
// cutting worst-case pauses by an order of magnitude at some wall-time
// cost; throughput tuning does the opposite.
func RunObjectives(benchmarks []string, cfg Config) ([]ObjectiveRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"h2", "tradebeans", "tomcat"}
	}
	objectives := []core.Objective{core.ObjectiveThroughput, core.ObjectivePause}
	type task struct{ b, o int }
	var tasks []task
	for b := range benchmarks {
		for o := range objectives {
			tasks = append(tasks, task{b, o})
		}
	}
	rows := make([]ObjectiveRow, len(tasks))
	err := forEach(len(tasks), cfg.workers(), func(i int) error {
		t := tasks[i]
		p, ok := workload.ByName(benchmarks[t.b])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", benchmarks[t.b])
		}
		searcher, err := core.NewSearcher("hierarchical")
		if err != nil {
			return err
		}
		session := &core.Session{
			Runner:        runner.NewInProcess(jvmsim.New(), p),
			Searcher:      searcher,
			BudgetSeconds: cfg.budget(),
			Reps:          cfg.reps(),
			Seed:          cfg.subSeed(t.b),
			Objective:     objectives[t.o],
		}
		out, err := session.Run()
		if err != nil {
			return err
		}
		// Score the winner on a noiseless oracle for clean reporting.
		oracle := jvmsim.New()
		oracle.NoiseRelStdDev = 0
		res := oracle.Run(out.Best, p, 0)
		rows[i] = ObjectiveRow{
			Benchmark:   benchmarks[t.b],
			Objective:   string(objectives[t.o]),
			WallSeconds: res.WallSeconds,
			MaxPauseMs:  res.MaxPauseSeconds * 1000,
			Collector:   res.Collector,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderObjectives renders E13.
func RenderObjectives(rows []ObjectiveRow) string {
	t := report.NewTable("E13: throughput-tuned vs pause-tuned winners",
		"Benchmark", "Objective", "Wall(s)", "MaxPause(ms)", "GC")
	for _, r := range rows {
		t.AddRow(r.Benchmark, r.Objective,
			fmt.Sprintf("%.1f", r.WallSeconds),
			fmt.Sprintf("%.0f", r.MaxPauseMs),
			r.Collector)
	}
	return t.String()
}
