package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/report"
)

// RenderSuite renders Table 1 / Table 2.
func RenderSuite(r *SuiteResult, title string) string {
	t := report.NewTable(title,
		"Benchmark", "Default(s)", "Tuned(s)", "Speedup", "Improvement", "Trials", "Flakes", "GC", "Tiered")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.DefaultWall, row.BestWall,
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.1f%%", row.ImprovementPct),
			row.Trials, row.Flakes, row.Collector, row.Tiered)
	}
	t.AddFooter("average", "", "", "",
		fmt.Sprintf("%.1f%%", r.AvgImprovement), "", "", "", "")
	t.AddFooter("maximum", "", "", "",
		fmt.Sprintf("%.1f%%", r.MaxImprovement), "", "", "", "")
	return t.String()
}

// RenderConvergence renders Figure 1 as a CSV block plus an ASCII chart.
func RenderConvergence(r *ConvergenceResult) string {
	series := make([]*report.Series, len(r.Benchmarks))
	for i, b := range r.Benchmarks {
		s := &report.Series{Name: b}
		for m, min := range r.MinuteMarks {
			s.Add(min, r.ImprovementAt[i][m])
		}
		series[i] = s
	}
	var b strings.Builder
	b.WriteString(report.AsciiChart(
		"Figure 1: best-found improvement (%) vs tuning time (min)", 60, 12, series...))
	b.WriteByte('\n')
	b.WriteString(report.CSV("minutes", series...))
	return b.String()
}

// RenderSpace renders Table 3.
func RenderSpace(r *SpaceResult) string {
	t := report.NewTable("Table 3: configuration search-space reduction",
		"Quantity", "Value")
	t.AddRow("flags in the registry", r.TotalFlags)
	t.AddRow("tunable flags", r.TunableFlags)
	t.AddRow("flat space (log10 configs)", r.FlatLog10)
	t.AddRow("hierarchy-guided space (log10 configs)", r.HierarchicalLog10)
	t.AddRow("reduction (orders of magnitude)", r.ReductionLog10)
	labels := make([]string, 0, len(r.ActivePerBranch))
	for l := range r.ActivePerBranch {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		t.AddRow("active flags under "+l, r.ActivePerBranch[l])
	}
	return t.String()
}

// RenderComparison renders Figure 2 / Figure 3 as a benchmark × searcher
// matrix.
func RenderComparison(r *ComparisonResult, title string, searchers []string) string {
	headers := append([]string{"Benchmark"}, searchers...)
	t := report.NewTable(title, headers...)
	byBench := map[string]map[string]float64{}
	var order []string
	for _, row := range r.Rows {
		if byBench[row.Benchmark] == nil {
			byBench[row.Benchmark] = map[string]float64{}
			order = append(order, row.Benchmark)
		}
		byBench[row.Benchmark][row.Searcher] = row.ImprovementPct
	}
	for _, b := range order {
		cells := []any{b}
		for _, s := range searchers {
			cells = append(cells, fmt.Sprintf("%.1f%%", byBench[b][s]))
		}
		t.AddRow(cells...)
	}
	footer := []any{"average"}
	for _, s := range searchers {
		footer = append(footer, fmt.Sprintf("%.1f%%", r.AvgBySearcher[s]))
	}
	t.AddFooter(footer...)
	return t.String()
}

// RenderBestConfigs renders Table 4.
func RenderBestConfigs(rows []BestConfigRow) string {
	t := report.NewTable("Table 4: winning configurations",
		"Benchmark", "Improvement", "GC", "Tiered", "Heap(MB)", "Flags changed")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.1f%%", r.ImprovementPct),
			r.Collector, r.Tiered, r.HeapMB, len(r.KeyChanges))
	}
	return t.String()
}
