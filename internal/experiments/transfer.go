package experiments

import (
	"fmt"
	"os"

	"repro/hotspot"
	"repro/internal/report"
)

// TransferRow is one benchmark's cold-vs-warm tuning comparison.
type TransferRow struct {
	Benchmark string
	// ColdTrials and ColdImprovement describe the full-budget cold session
	// that seeds the knowledge base.
	ColdTrials      int
	ColdImprovement float64
	// WarmTrials and WarmImprovement describe the warm-started session,
	// capped at half the cold session's trials.
	WarmTrials      int
	WarmImprovement float64
	// Priors is the number of warm-start configurations injected; Reached
	// reports whether the warm session matched (or beat) the cold best
	// despite the halved trial budget.
	Priors  int
	Reached bool
}

// DefaultTransferBenchmarks spans both suites and the improvement spectrum.
var DefaultTransferBenchmarks = []string{"h2", "sunflow", "startup.compiler.compiler"}

// RunTransferEval (E17) measures what the cross-workload knowledge base
// buys: for each benchmark, a full-budget cold session tunes from scratch
// and records its winner into a fresh store; a second session on the same
// workload (different seed) then warm-starts from that store under half the
// cold session's trial budget. Transfer works when the warm session reaches
// the cold session's best anyway — the priors skip the search straight to
// the good region.
func RunTransferEval(benchmarks []string, cfg Config) ([]TransferRow, error) {
	if len(benchmarks) == 0 {
		benchmarks = DefaultTransferBenchmarks
	}
	rows := make([]TransferRow, len(benchmarks))
	err := forEach(len(benchmarks), cfg.workers(), func(i int) error {
		dir, err := os.MkdirTemp("", "transfer-eval-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		base := hotspot.Options{
			Benchmark:     benchmarks[i],
			Searcher:      "surrogate",
			BudgetMinutes: cfg.budget() / 60,
			Reps:          cfg.reps(),
			Noise:         -1,
			TransferDir:   dir,
		}
		cold := base
		cold.Seed = cfg.subSeed(i * 2)
		coldRes, err := hotspot.Tune(cold)
		if err != nil {
			return err
		}
		warm := base
		warm.Seed = cfg.subSeed(i*2 + 1)
		warm.MaxTrials = coldRes.Trials / 2
		warmRes, err := hotspot.Tune(warm)
		if err != nil {
			return err
		}
		rows[i] = TransferRow{
			Benchmark:       benchmarks[i],
			ColdTrials:      coldRes.Trials,
			ColdImprovement: coldRes.ImprovementPct,
			WarmTrials:      warmRes.Trials,
			WarmImprovement: warmRes.ImprovementPct,
			Reached:         warmRes.BestWall <= coldRes.BestWall,
		}
		if warmRes.Transfer != nil {
			rows[i].Priors = warmRes.Transfer.Priors
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTransfer renders E17.
func RenderTransfer(rows []TransferRow) string {
	t := report.NewTable(
		"E17: warm-start transfer — cold full budget vs warm at half the trials",
		"Benchmark", "Cold trials", "Cold imp.", "Warm trials", "Warm imp.", "Priors", "Reached cold best")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%d", r.ColdTrials),
			fmt.Sprintf("%.1f%%", r.ColdImprovement),
			fmt.Sprintf("%d", r.WarmTrials),
			fmt.Sprintf("%.1f%%", r.WarmImprovement),
			fmt.Sprintf("%d", r.Priors),
			fmt.Sprintf("%v", r.Reached))
	}
	return t.String()
}
