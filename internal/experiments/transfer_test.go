package experiments

import (
	"strings"
	"testing"
)

func TestRunTransferEval(t *testing.T) {
	rows, err := RunTransferEval([]string{"h2", "avrora"}, Config{BudgetSeconds: 1800, Reps: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.WarmTrials > r.ColdTrials/2 {
			t.Errorf("%s: warm session ran %d trials, cap was half of %d", r.Benchmark, r.WarmTrials, r.ColdTrials)
		}
		if r.Priors < 1 {
			t.Errorf("%s: warm session injected no priors", r.Benchmark)
		}
		if !r.Reached {
			t.Errorf("%s: warm session missed the cold best (%.1f%% vs %.1f%%)",
				r.Benchmark, r.WarmImprovement, r.ColdImprovement)
		}
	}
	out := RenderTransfer(rows)
	if !strings.Contains(out, "h2") || !strings.Contains(out, "avrora") {
		t.Error("render incomplete")
	}
}

func TestRunTransferEvalDefaults(t *testing.T) {
	if len(DefaultTransferBenchmarks) < 3 {
		t.Fatal("default benchmark set too small to demonstrate transfer")
	}
}
