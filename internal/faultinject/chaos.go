package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// faultKind is what one attempt suffers.
type faultKind int

const (
	faultNone faultKind = iota
	faultLaunch
	faultCorrupt
	faultCrash
	faultHang
	faultSpike
	faultStraggle
)

// ChaosRunner wraps a Runner and injects the Plan's faults into its
// measurement attempts, retrying the transient ones under its RetryPolicy
// and charging every attempt — and its backoff — to the virtual budget.
// It implements runner.Runner and is safe for concurrent use.
//
// Determinism: the fault for attempt n of configuration key k is a pure
// hash of (Seed, k, n). Attempt numbering per key only depends on that
// key's own history, never on goroutine scheduling, so sessions stay
// reproducible at any worker count. Keys that have reached a definitive
// verdict (success or deterministic failure) are left alone afterwards:
// replays of the inner runner's cache involve no launch to sabotage.
type ChaosRunner struct {
	// Retry bounds re-attempts of transiently failed measurements. The
	// zero value means the defaults; the effective attempt count is always
	// large enough to outlast the plan's MaxConsecutive streak, so a
	// configuration that only ever failed transiently is never condemned.
	Retry runner.RetryPolicy
	// HangDeadline bounds injected hangs in real time — the chaos layer
	// really blocks, the way a wedged launch really blocks a worker, and
	// the deadline really cuts it down. Values ≤ 0 mean 25ms.
	HangDeadline time.Duration
	// Telemetry and Trace optionally receive metrics and trace events. The
	// chaos layer reports the shared runner_* series (it sees every attempt,
	// injected and clean, with global attempt indices — so leave the inner
	// runner's telemetry unset) plus its own chaos_faults_total{kind=...}
	// and chaos_suppressed_total.
	Telemetry *telemetry.Registry
	Trace     *telemetry.Tracer

	inner runner.Runner
	plan  Plan
	seed  int64

	mu       sync.Mutex
	elapsed  runner.VirtualClock
	attempts map[string]int  // per-key launch-attempt counter
	streaks  map[string]int  // consecutive injected failures per key
	settled  map[string]bool // keys with a definitive (cacheable) verdict
	stats    Stats
	// phase scopes the per-key state under phase-shifting workloads (see
	// runner.PhaseSetter): a key settled before a drift is fair game again
	// after it — the post-shift measurement is a fresh launch to sabotage.
	// Phase 0 keys are bare, so chaos state snapshots taken before any
	// drift stay byte-identical to phase-unaware builds.
	phase int
}

// Stats counts the chaos layer's activity.
type Stats struct {
	// Attempts is the number of launch attempts scheduled through the
	// chaos layer (injected or clean).
	Attempts int
	// Injected faults by kind.
	Launch, Corrupt, Crash, Hang, Spike, Straggle int
	// Suppressed counts failure faults skipped by the MaxConsecutive cap.
	Suppressed int
}

// Injected is the total number of injected failure faults (spikes are
// slowdowns, not failures, and are counted separately).
func (s Stats) Injected() int { return s.Launch + s.Corrupt + s.Crash + s.Hang }

// New wraps inner in a chaos layer driven by plan and seed.
func New(inner runner.Runner, plan Plan, seed int64) *ChaosRunner {
	return &ChaosRunner{
		inner:    inner,
		plan:     plan.normalized(),
		seed:     seed,
		attempts: make(map[string]int),
		streaks:  make(map[string]int),
		settled:  make(map[string]bool),
	}
}

// Plan returns the normalized fault plan in effect.
func (c *ChaosRunner) Plan() Plan { return c.plan }

// PlanString renders the active fault schedule in canonical DSL form. The
// checkpoint layer folds it into the session fingerprint, so a run cannot
// resume under a different chaos plan than the one it crashed with.
func (c *ChaosRunner) PlanString() string { return c.plan.String() }

// Workload returns the wrapped runner's profile.
func (c *ChaosRunner) Workload() *workload.Profile { return c.inner.Workload() }

// Elapsed returns total virtual seconds consumed, including synthesized
// fault costs and retry backoffs the inner runner never saw.
func (c *ChaosRunner) Elapsed() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed.Seconds()
}

// Stats returns a snapshot of the injection counters.
func (c *ChaosRunner) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// SetPhase implements runner.PhaseSetter: the inner runner switches to the
// shifted profile and the chaos layer's own per-key state (attempt
// counters, streaks, settled verdicts — and with them the seeded fault
// schedule) re-scopes to the new phase.
func (c *ChaosRunner) SetPhase(phase int, shift jvmsim.PhaseShift) error {
	ps, ok := c.inner.(runner.PhaseSetter)
	if !ok {
		return fmt.Errorf("faultinject: inner runner %T does not support phase-shifting workloads", c.inner)
	}
	if err := ps.SetPhase(phase, shift); err != nil {
		return err
	}
	c.mu.Lock()
	c.phase = phase
	c.mu.Unlock()
	return nil
}

// Measure implements runner.Runner.
func (c *ChaosRunner) Measure(cfg *flags.Config, reps int) runner.Measurement {
	key := cfg.Key()
	c.mu.Lock()
	// State (and the seeded fault schedule) is scoped per (phase, key);
	// everything externally visible — measurement key, traces, telemetry —
	// stays on the bare configuration key.
	sk := runner.PhaseKey(c.phase, key)
	settled := c.settled[sk]
	c.mu.Unlock()

	var m runner.Measurement
	if !c.plan.Active() || settled {
		m = c.inner.Measure(cfg, reps)
		if m.FromCache {
			runner.NoteCacheHit(c.Telemetry, c.Trace, key)
		} else {
			runner.NoteMeasured(c.Telemetry, c.Trace, key, m)
		}
	} else {
		// Leave the policy un-normalized here — Run normalizes exactly once,
		// and normalizing twice would turn an explicit "no backoff" (-1 → 0)
		// back into the default charge.
		policy := c.Retry
		// Guarantee the retry budget outlasts the longest possible streak
		// of injected failures: the plan caps consecutive faults per key at
		// MaxConsecutive, so MaxConsecutive+1 attempts always reach a clean
		// one. Without this a transient-only config could be condemned.
		if policy.Normalized().MaxAttempts <= c.plan.MaxConsecutive {
			policy.MaxAttempts = c.plan.MaxConsecutive + 1
		}
		m = policy.Run(func(retryN int) runner.Measurement {
			return c.attempt(cfg, reps, key, sk, retryN)
		})
		m.Key = key
		if !m.FromCache {
			runner.NoteMeasured(c.Telemetry, c.Trace, key, m)
		}
	}

	c.mu.Lock()
	if !m.Transient {
		c.settled[sk] = true
	}
	c.elapsed.Charge(m.CostSeconds)
	c.mu.Unlock()
	return m
}

// faultName labels kinds in metrics and trace events.
func faultName(k faultKind) string {
	switch k {
	case faultLaunch:
		return "launch"
	case faultCorrupt:
		return "corrupt"
	case faultCrash:
		return "crash"
	case faultHang:
		return "hang"
	case faultSpike:
		return "spike"
	case faultStraggle:
		return "straggle"
	}
	return "none"
}

// attempt performs one launch attempt of key, consulting the seeded
// schedule for what (if anything) to inject. sk is the phase-scoped state
// key (equal to key before any drift); retryN is the retry-loop index of
// the surrounding policy (0 for a fresh measurement's first try).
func (c *ChaosRunner) attempt(cfg *flags.Config, reps int, key, sk string, retryN int) runner.Measurement {
	c.mu.Lock()
	n := c.attempts[sk]
	c.attempts[sk] = n + 1
	kind := c.faultFor(sk, n)
	if isFailureFault(kind) {
		if c.streaks[sk] >= c.plan.MaxConsecutive {
			c.stats.Suppressed++
			c.Telemetry.Counter("chaos_suppressed_total").Inc()
			kind = faultNone
		} else {
			c.streaks[sk]++
		}
	}
	if !isFailureFault(kind) {
		c.streaks[sk] = 0
	}
	c.stats.Attempts++
	switch kind {
	case faultLaunch:
		c.stats.Launch++
	case faultCorrupt:
		c.stats.Corrupt++
	case faultCrash:
		c.stats.Crash++
	case faultHang:
		c.stats.Hang++
	case faultSpike:
		c.stats.Spike++
	case faultStraggle:
		c.stats.Straggle++
	}
	c.mu.Unlock()

	if kind != faultNone {
		c.Telemetry.Counter(`chaos_faults_total{kind="` + faultName(kind) + `"}`).Inc()
		c.Trace.Record(key, telemetry.Event{
			Kind: telemetry.EvFault, Attempt: n, Detail: faultName(kind),
		})
	}
	note := func(m runner.Measurement) runner.Measurement {
		runner.NoteAttempt(c.Telemetry, c.Trace, key, n, retryN > 0, m)
		return m
	}

	switch kind {
	case faultLaunch:
		return note(runner.Measurement{
			Key: key, Failed: true, Failure: runner.LaunchFlakeFailure,
			FailureMessage: fmt.Sprintf("faultinject: launch failed (attempt %d)", n),
			CostSeconds:    runner.LaunchOverheadSeconds,
		})
	case faultCorrupt:
		return note(runner.Measurement{
			Key: key, Failed: true, Failure: runner.CorruptReportFailure,
			FailureMessage: fmt.Sprintf("faultinject: report truncated (attempt %d)", n),
			CostSeconds:    c.plan.CrashSeconds + runner.LaunchOverheadSeconds,
		})
	case faultCrash:
		return note(runner.Measurement{
			Key: key, Failed: true, Failure: runner.InjectedCrashFailure,
			FailureMessage: fmt.Sprintf("faultinject: spurious crash (attempt %d)", n),
			CostSeconds:    c.plan.CrashSeconds + runner.LaunchOverheadSeconds,
		})
	case faultHang:
		// Really block, really get killed by the real deadline.
		deadline := c.HangDeadline
		if deadline <= 0 {
			deadline = 25 * time.Millisecond
		}
		timer := time.NewTimer(deadline)
		<-timer.C
		return note(runner.Measurement{
			Key: key, Failed: true, Failure: runner.InjectedHangFailure,
			FailureMessage: fmt.Sprintf("faultinject: hung, killed after %s (attempt %d)", deadline, n),
			CostSeconds:    c.plan.HangSeconds + runner.LaunchOverheadSeconds,
		})
	case faultSpike:
		m := c.inner.Measure(cfg, reps)
		if m.Failed || len(m.Walls) == 0 {
			return note(m)
		}
		f := c.plan.SpikeFactor
		for i := range m.Walls {
			m.Walls[i] *= f
		}
		for i := range m.Pauses {
			m.Pauses[i] *= f
		}
		m.Mean *= f
		m.MeanPause *= f
		m.CostSeconds *= f
		return note(m)
	case faultStraggle:
		// The run itself is clean — the harness stalls delivering it. The
		// trial's cost balloons while the walls (and so the score) stay
		// untouched; the clean cost rides along so the session's straggler
		// watchdog can price the hedged duplicate.
		m := c.inner.Measure(cfg, reps)
		if m.Failed || len(m.Walls) == 0 {
			return note(m)
		}
		m.HedgeCostSeconds = m.CostSeconds
		m.CostSeconds *= c.plan.StraggleFactor
		return note(m)
	default:
		m := c.inner.Measure(cfg, reps)
		if m.FromCache {
			// The inner cache answered: no launch happened, so this is a
			// replay, not an attempt.
			runner.NoteCacheHit(c.Telemetry, c.Trace, key)
			return m
		}
		return note(m)
	}
}

func isFailureFault(k faultKind) bool {
	switch k {
	case faultLaunch, faultCorrupt, faultCrash, faultHang:
		return true
	}
	return false
}

// faultFor is the seeded schedule: a pure hash of (seed, key, attempt)
// mapped onto the plan's cumulative fault probabilities.
func (c *ChaosRunner) faultFor(key string, attempt int) faultKind {
	u := hash01(c.seed, key, attempt)
	for _, f := range []struct {
		p float64
		k faultKind
	}{
		{c.plan.Launch, faultLaunch},
		{c.plan.Corrupt, faultCorrupt},
		{c.plan.Crash, faultCrash},
		{c.plan.Hang, faultHang},
		{c.plan.Spike, faultSpike},
		{c.plan.Straggle, faultStraggle},
	} {
		if u < f.p {
			return f.k
		}
		u -= f.p
	}
	return faultNone
}

// hash01 maps (seed, key, attempt) to a uniform float in [0, 1).
func hash01(seed int64, key string, attempt int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
		buf[8+i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(key))
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}
