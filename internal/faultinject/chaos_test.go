package faultinject

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

// fakeRunner is a controllable inner runner.
type fakeRunner struct {
	profile *workload.Profile
	measure func(cfg *flags.Config, reps int) runner.Measurement

	mu      sync.Mutex
	calls   int
	elapsed float64
}

func newFake(measure func(cfg *flags.Config, reps int) runner.Measurement) *fakeRunner {
	p, _ := workload.ByName("fop")
	return &fakeRunner{profile: p, measure: measure}
}

func okRun(cfg *flags.Config, _ int) runner.Measurement {
	return runner.Measurement{
		Key: cfg.Key(), Walls: []float64{2}, Mean: 2,
		Pauses: []float64{0.1}, MeanPause: 0.1,
		CostSeconds: 2 + runner.LaunchOverheadSeconds,
	}
}

func (f *fakeRunner) Measure(cfg *flags.Config, reps int) runner.Measurement {
	m := f.measure(cfg, reps)
	f.mu.Lock()
	f.calls++
	f.elapsed += m.CostSeconds
	f.mu.Unlock()
	return m
}

func (f *fakeRunner) Workload() *workload.Profile { return f.profile }

func (f *fakeRunner) Elapsed() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.elapsed
}

func (f *fakeRunner) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func testConfig() *flags.Config { return flags.NewConfig(flags.NewRegistry()) }

func TestChaosInjectsAndRetriesToSuccess(t *testing.T) {
	inner := newFake(okRun)
	// Every attempt wants to fail, but the streak cap (2) guarantees the
	// third attempt runs clean.
	ch := New(inner, Plan{Launch: 1, MaxConsecutive: 2}, 1)
	ch.Retry = runner.RetryPolicy{MaxAttempts: 3, BackoffSeconds: 2, BackoffFactor: 2}

	m := ch.Measure(testConfig(), 1)
	if m.Failed {
		t.Fatalf("streak cap should have let a clean attempt through: %+v", m)
	}
	if m.Flakes != 2 || m.Attempts != 3 || m.Transient {
		t.Errorf("flake accounting wrong: %+v", m)
	}
	// 2 injected launch failures + 2s and 4s backoff + the real run.
	want := 2*runner.LaunchOverheadSeconds + 6 + 2 + runner.LaunchOverheadSeconds
	if math.Abs(m.CostSeconds-want) > 1e-9 {
		t.Errorf("cost = %g, want %g", m.CostSeconds, want)
	}
	if inner.Calls() != 1 {
		t.Errorf("inner runner should have run exactly once, ran %d times", inner.Calls())
	}
	st := ch.Stats()
	if st.Launch != 2 || st.Attempts != 3 || st.Suppressed != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
	if math.Abs(ch.Elapsed()-m.CostSeconds) > 1e-6 {
		t.Errorf("chaos elapsed = %g, want %g", ch.Elapsed(), m.CostSeconds)
	}
}

func TestChaosRetryBudgetOutlastsStreak(t *testing.T) {
	inner := newFake(okRun)
	// MaxAttempts 1 would normally fail the first flake outright; the
	// chaos layer widens it past the streak cap so a transient-only config
	// can never be condemned.
	ch := New(inner, Plan{Launch: 1, MaxConsecutive: 3}, 1)
	ch.Retry = runner.RetryPolicy{MaxAttempts: 1, BackoffSeconds: -1}
	m := ch.Measure(testConfig(), 1)
	if m.Failed {
		t.Fatalf("transient-only config must not end up failed: %+v", m)
	}
	if m.Attempts != 4 || m.Flakes != 3 {
		t.Errorf("expected 3 flakes then success: %+v", m)
	}
}

func TestChaosSettledKeysAreLeftAlone(t *testing.T) {
	inner := newFake(okRun)
	ch := New(inner, Plan{Launch: 1, MaxConsecutive: 1}, 1)
	ch.Retry = runner.RetryPolicy{BackoffSeconds: -1}
	first := ch.Measure(testConfig(), 1)
	if first.Failed {
		t.Fatalf("first measurement should settle: %+v", first)
	}
	stats := ch.Stats()

	// The key has a definitive verdict; replays bypass injection entirely
	// (a cache replay involves no launch to sabotage).
	second := ch.Measure(testConfig(), 1)
	if second.Failed || second.Flakes != 0 {
		t.Errorf("settled key was sabotaged: %+v", second)
	}
	if got := ch.Stats(); got != stats {
		t.Errorf("injection stats moved on a settled key: %+v -> %+v", stats, got)
	}
}

func TestChaosDeterministicFailureSettles(t *testing.T) {
	inner := newFake(func(cfg *flags.Config, _ int) runner.Measurement {
		return runner.Measurement{
			Key: cfg.Key(), Failed: true, Failure: jvmsim.OOMFailure,
			FailureMessage: "OutOfMemoryError", CostSeconds: 1,
		}
	})
	// No faults scheduled for this seed/key on attempt 0 is not guaranteed,
	// so use a plan whose only fault is a spike: spikes pass failures through.
	ch := New(inner, Plan{Spike: 1}, 1)
	m := ch.Measure(testConfig(), 1)
	if !m.Failed || m.Failure != jvmsim.OOMFailure || m.Transient {
		t.Fatalf("deterministic failure must pass through untouched: %+v", m)
	}
	if m.Flakes != 0 || inner.Calls() != 1 {
		t.Error("deterministic failures must not be retried")
	}
	// The verdict settles the key: no further injection.
	ch.Measure(testConfig(), 1)
	if inner.Calls() != 2 {
		t.Error("settled key should go straight to the inner runner")
	}
}

func TestChaosHangBlocksUntilRealDeadline(t *testing.T) {
	inner := newFake(okRun)
	ch := New(inner, Plan{Hang: 1, MaxConsecutive: 1, HangSeconds: 120}, 1)
	ch.Retry = runner.RetryPolicy{MaxAttempts: 2, BackoffSeconds: -1}
	ch.HangDeadline = 10 * time.Millisecond

	start := time.Now()
	m := ch.Measure(testConfig(), 1)
	if wait := time.Since(start); wait < 10*time.Millisecond {
		t.Errorf("an injected hang must really block until the deadline (blocked %s)", wait)
	}
	if m.Failed {
		t.Fatalf("hang then clean attempt should succeed: %+v", m)
	}
	if m.Flakes != 1 {
		t.Errorf("the killed hang is one flake: %+v", m)
	}
	// The hang charges its virtual cost plus the clean run.
	want := 120 + runner.LaunchOverheadSeconds + 2 + runner.LaunchOverheadSeconds
	if math.Abs(m.CostSeconds-want) > 1e-9 {
		t.Errorf("cost = %g, want %g", m.CostSeconds, want)
	}
}

func TestChaosLatencySpike(t *testing.T) {
	inner := newFake(okRun)
	ch := New(inner, Plan{Spike: 1, SpikeFactor: 3}, 1)
	m := ch.Measure(testConfig(), 1)
	if m.Failed || m.Flakes != 0 {
		t.Fatalf("a spike is a slowdown, not a failure: %+v", m)
	}
	if m.Mean != 6 || m.Walls[0] != 6 || math.Abs(m.MeanPause-0.3) > 1e-12 {
		t.Errorf("spike should scale walls and pauses 3x: %+v", m)
	}
	if want := (2 + runner.LaunchOverheadSeconds) * 3; math.Abs(m.CostSeconds-want) > 1e-9 {
		t.Errorf("spiked cost = %g, want %g", m.CostSeconds, want)
	}
}

func TestChaosStraggleStallsDeliveryOnly(t *testing.T) {
	inner := newFake(okRun)
	ch := New(inner, Plan{Straggle: 1, StraggleFactor: 16}, 1)
	m := ch.Measure(testConfig(), 1)
	if m.Failed || m.Flakes != 0 {
		t.Fatalf("a straggler is a stalled delivery, not a failure: %+v", m)
	}
	// The run itself is clean: walls and score untouched.
	if m.Mean != 2 || m.Walls[0] != 2 {
		t.Errorf("straggle must not touch the measured walls: %+v", m)
	}
	clean := 2 + runner.LaunchOverheadSeconds
	if math.Abs(m.CostSeconds-clean*16) > 1e-9 {
		t.Errorf("straggled cost = %g, want %g", m.CostSeconds, clean*16)
	}
	// The clean cost rides along so the watchdog can price a hedged
	// duplicate dispatch.
	if math.Abs(m.HedgeCostSeconds-clean) > 1e-9 {
		t.Errorf("HedgeCostSeconds = %g, want clean cost %g", m.HedgeCostSeconds, clean)
	}
	if ch.Stats().Straggle != 1 {
		t.Errorf("straggle not counted: %+v", ch.Stats())
	}
}

func TestChaosCorruptAndCrashFaults(t *testing.T) {
	for _, tc := range []struct {
		plan Plan
		kind jvmsim.FailureKind
	}{
		{Plan{Corrupt: 1, MaxConsecutive: 1, CrashSeconds: 7}, runner.CorruptReportFailure},
		{Plan{Crash: 1, MaxConsecutive: 1, CrashSeconds: 7}, runner.InjectedCrashFailure},
	} {
		inner := newFake(okRun)
		ch := New(inner, tc.plan, 1)
		ch.Retry = runner.RetryPolicy{MaxAttempts: 2, BackoffSeconds: -1}
		m := ch.Measure(testConfig(), 1)
		if m.Failed || m.Flakes != 1 {
			t.Fatalf("%s: expected one absorbed flake: %+v", tc.kind, m)
		}
		want := 7 + runner.LaunchOverheadSeconds + 2 + runner.LaunchOverheadSeconds
		if math.Abs(m.CostSeconds-want) > 1e-9 {
			t.Errorf("%s: cost = %g, want %g", tc.kind, m.CostSeconds, want)
		}
	}
}

func TestChaosInactivePlanIsTransparent(t *testing.T) {
	inner := newFake(okRun)
	ch := New(inner, Plan{}, 1)
	m := ch.Measure(testConfig(), 2)
	if m.Failed || m.Flakes != 0 || ch.Stats().Attempts != 0 {
		t.Errorf("inactive plan must be a pass-through: %+v stats=%+v", m, ch.Stats())
	}
	if math.Abs(m.CostSeconds-ch.Elapsed()) > 1e-6 {
		t.Errorf("elapsed should still track costs: %g vs %g", ch.Elapsed(), m.CostSeconds)
	}
}

func TestChaosTransientExhaustionNotSettled(t *testing.T) {
	// The inner runner itself flakes forever (a genuinely sick farm —
	// something the streak cap cannot save us from).
	inner := newFake(func(cfg *flags.Config, _ int) runner.Measurement {
		return runner.Measurement{
			Key: cfg.Key(), Failed: true, Failure: runner.LaunchFlakeFailure,
			CostSeconds: runner.LaunchOverheadSeconds,
		}
	})
	ch := New(inner, Plan{Spike: 0.1}, 1)
	ch.Retry = runner.RetryPolicy{MaxAttempts: 2, BackoffSeconds: -1}
	m := ch.Measure(testConfig(), 1)
	if !m.Failed || !m.Transient {
		t.Fatalf("expected transient exhaustion: %+v", m)
	}
	before := inner.Calls()
	// Not settled: a re-proposal attempts again.
	ch.Measure(testConfig(), 1)
	if inner.Calls() == before {
		t.Error("transient exhaustion must not settle the key")
	}
}

func TestChaosScheduleIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) (runner.Measurement, Stats) {
		inner := newFake(okRun)
		ch := New(inner, Plan{Launch: 0.4, Corrupt: 0.2, Spike: 0.2, MaxConsecutive: 2}, seed)
		ch.Retry = runner.RetryPolicy{MaxAttempts: 4, BackoffSeconds: 2, BackoffFactor: 2}
		var last runner.Measurement
		for i := 0; i < 8; i++ {
			cfg := testConfig()
			cfg.SetInt("MaxHeapSize", int64(i+1)<<26)
			last = ch.Measure(cfg, 1)
		}
		return last, ch.Stats()
	}
	m1, s1 := run(99)
	m2, s2 := run(99)
	if s1 != s2 {
		t.Errorf("same seed, different injections: %+v vs %+v", s1, s2)
	}
	if m1.CostSeconds != m2.CostSeconds || m1.Flakes != m2.Flakes {
		t.Errorf("same seed, different measurements: %+v vs %+v", m1, m2)
	}
	if _, s3 := run(100); s1 == s3 {
		t.Error("different seeds should (overwhelmingly) schedule different faults")
	}
}
