package faultinject

import (
	"fmt"
	"sync"
)

// SessionCrash is the value a CrashPoint panics with: a simulated hard kill
// of the tuning *session itself* (as opposed to the ChaosRunner's faults,
// which sabotage individual measurements and leave the session alive). The
// CLI recovers it at top level and exits like a killed process, leaving
// whatever checkpoint the session last wrote as the only survivor — which
// is exactly the scenario checkpoint/resume exists for.
type SessionCrash struct {
	// Trial is the completed-trial count at which the session was killed.
	Trial int
}

// Error makes the crash self-describing when it escapes a recover.
func (c SessionCrash) Error() string {
	return fmt.Sprintf("faultinject: session killed at trial %d (crash-point fault)", c.Trial)
}

// CrashPoint kills a session once a chosen number of trials have completed.
// It hooks the session's progress callback — progress fires in the
// engine's deterministic delivery order, so the kill lands at the same
// point at any worker count. The zero value never fires.
type CrashPoint struct {
	// AtTrial is the completed-trial count that triggers the kill (≥ 1);
	// zero disables the crash point.
	AtTrial int
	// Kill handles the trigger; nil means panic(SessionCrash{Trial}),
	// which cmd/autotune recovers into a process-style exit. Tests
	// substitute their own to observe the kill without unwinding.
	Kill func(trial int)

	once sync.Once
}

// OnTrial reports trial completions to the crash point; sessions call it
// from their progress hook. It fires at most once, at the first report
// reaching AtTrial.
func (c *CrashPoint) OnTrial(trial int) {
	if c == nil || c.AtTrial <= 0 || trial < c.AtTrial {
		return
	}
	c.once.Do(func() {
		if c.Kill != nil {
			c.Kill(trial)
			return
		}
		panic(SessionCrash{Trial: trial})
	})
}
