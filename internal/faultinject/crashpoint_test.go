package faultinject

import (
	"strings"
	"testing"

	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

func TestCrashPointFiresOnceAtTrial(t *testing.T) {
	var fired []int
	cp := &CrashPoint{AtTrial: 3, Kill: func(trial int) { fired = append(fired, trial) }}
	for trial := 1; trial <= 6; trial++ {
		cp.OnTrial(trial)
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("crash point fired at %v, want exactly once at trial 3", fired)
	}
}

func TestCrashPointDefaultKillPanicsWithSessionCrash(t *testing.T) {
	cp := &CrashPoint{AtTrial: 2}
	defer func() {
		crash, ok := recover().(SessionCrash)
		if !ok {
			t.Fatal("default kill should panic with SessionCrash")
		}
		if crash.Trial != 2 {
			t.Fatalf("crash trial = %d, want 2", crash.Trial)
		}
		if !strings.Contains(crash.Error(), "trial 2") {
			t.Fatalf("crash message %q should name the trial", crash.Error())
		}
	}()
	cp.OnTrial(1)
	cp.OnTrial(2)
	t.Fatal("unreachable: trial 2 should have killed the session")
}

func TestCrashPointInertCases(t *testing.T) {
	var nilCP *CrashPoint
	nilCP.OnTrial(5) // nil-safe no-op
	disarmed := &CrashPoint{AtTrial: 0, Kill: func(int) { t.Fatal("disarmed crash point fired") }}
	for trial := 0; trial < 4; trial++ {
		disarmed.OnTrial(trial)
	}
}

func TestChaosStateRoundTrip(t *testing.T) {
	p, _ := workload.ByName("fop")
	newChaos := func() *ChaosRunner {
		inner := runner.NewInProcess(jvmsim.New(), p)
		return New(inner, Plan{Launch: 0.4, Spike: 0.3, MaxConsecutive: 2}, 7)
	}
	reg := flags.NewRegistry()
	var cfgs []*flags.Config
	for i := 0; i < 6; i++ {
		cfg := flags.NewConfig(reg)
		cfg.SetInt("MaxHeapSize", int64(256+128*i)<<20)
		cfgs = append(cfgs, cfg)
	}

	// The reference: one runner measuring all six configurations.
	continuous := newChaos()
	var want []runner.Measurement
	for _, cfg := range cfgs {
		want = append(want, continuous.Measure(cfg, 2))
	}

	// The drill: measure three, snapshot, restore into a brand-new runner,
	// measure the rest. The suffix must observe the identical fault
	// schedule and measurements — the crash was invisible.
	first := newChaos()
	for _, cfg := range cfgs[:3] {
		first.Measure(cfg, 2)
	}
	state, err := first.SnapshotState()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	second := newChaos()
	if err := second.RestoreState(state); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for i, cfg := range cfgs[3:] {
		got := second.Measure(cfg, 2)
		w := want[3+i]
		if got.Mean != w.Mean || got.CostSeconds != w.CostSeconds || got.Failed != w.Failed {
			t.Fatalf("measurement %d diverged after restore:\ngot:  %+v\nwant: %+v", 3+i, got, w)
		}
	}
	endA, err := continuous.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	endB, err := second.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if string(endA) != string(endB) {
		t.Fatalf("restored runner's end state diverged from the continuous run:\ncontinuous: %s\nrestored:   %s", endA, endB)
	}
}

func TestChaosSnapshotRequiresSnapshottingInner(t *testing.T) {
	ch := New(newFake(okRun), Plan{Launch: 0.5}, 1)
	if _, err := ch.SnapshotState(); err == nil {
		t.Fatal("snapshot over a non-snapshotting inner runner should error")
	}
	if err := ch.RestoreState([]byte(`{}`)); err == nil {
		t.Fatal("restore over a non-snapshotting inner runner should error")
	}
}

func TestChaosPlanString(t *testing.T) {
	plan := Plan{Launch: 0.25, Spike: 0.5}
	ch := New(newFake(okRun), plan, 1)
	if got, want := ch.PlanString(), plan.String(); got != want {
		t.Fatalf("PlanString = %q, want %q", got, want)
	}
	if got := ch.Plan(); got.Launch != plan.Launch {
		t.Fatalf("Plan() = %+v, want the constructor's plan", got)
	}
}
