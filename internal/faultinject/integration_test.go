package faultinject_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jvmsim"
	"repro/internal/persist"
	"repro/internal/runner"
	"repro/internal/workload"
)

const chaosBudgetSeconds = 45 * 60

// runChaosSession runs one hierarchical tuning session on a 4-worker farm
// under the unstable-farm fault plan and returns the outcome plus its
// serialized form.
func runChaosSession(t *testing.T, seed int64) (*core.Outcome, []byte) {
	t.Helper()
	prof, ok := workload.ByName("fop")
	if !ok {
		t.Fatal("no fop profile")
	}
	inner := runner.NewInProcess(jvmsim.New(), prof)
	plan, err := faultinject.ParsePlan("unstable-farm")
	if err != nil {
		t.Fatal(err)
	}
	chaos := faultinject.New(inner, plan, seed)
	chaos.HangDeadline = 2 * time.Millisecond
	searcher, err := core.NewSearcher("hierarchical")
	if err != nil {
		t.Fatal(err)
	}
	session := &core.Session{
		Runner:        chaos,
		Searcher:      searcher,
		BudgetSeconds: chaosBudgetSeconds,
		Reps:          3,
		Seed:          seed,
		Workers:       4,
	}
	out, err := session.Run()
	if err != nil {
		t.Fatalf("chaos session failed: %v", err)
	}
	if st := chaos.Stats(); st.Injected() == 0 {
		t.Fatalf("the unstable farm injected nothing: %+v", st)
	}
	var buf bytes.Buffer
	if err := persist.FromOutcome(out).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return out, buf.Bytes()
}

// TestChaosSessionEndToEnd is the resilience acceptance test: a full
// hierarchical session on a flaky 4-worker farm terminates within budget,
// absorbs transient faults without condemning their configurations, and
// reproduces byte-for-byte for a fixed seed.
func TestChaosSessionEndToEnd(t *testing.T) {
	out, blob := runChaosSession(t, 42)

	if out.Flakes == 0 {
		t.Error("an unstable farm session should have absorbed flakes")
	}
	if out.Attempts <= out.Trials {
		t.Errorf("retries imply attempts (%d) > trials (%d)", out.Attempts, out.Trials)
	}
	if out.TransientFailures != 0 {
		t.Errorf("%d configurations ended transiently failed; the streak cap should prevent that",
			out.TransientFailures)
	}
	for _, rec := range out.AttemptHistory {
		if rec.Transient || (rec.Failed && runner.Transient(rec.Failure)) {
			t.Errorf("config %s reported failed on transient grounds: %+v", rec.Key, rec)
		}
	}
	// Trials only start inside the budget; the makespan may overrun by at
	// most the final trials' own cost (hang-heavy worst case stays well
	// under this bound).
	if out.Elapsed >= chaosBudgetSeconds+1000 {
		t.Errorf("session ran far past its budget: %.0fs of %ds", out.Elapsed, chaosBudgetSeconds)
	}
	if out.Best == nil || out.ImprovementPct <= 0 {
		t.Errorf("tuning under chaos should still find an improvement: %+v", out.ImprovementPct)
	}
	if out.Trace[len(out.Trace)-1].Flakes != out.Flakes {
		t.Error("the trace's final flake count should match the outcome's")
	}

	// Same seed, same farm: the whole serialized outcome is byte-identical.
	out2, blob2 := runChaosSession(t, 42)
	if !bytes.Equal(blob, blob2) {
		t.Errorf("same-seed chaos sessions diverged:\n--- run 1\n%s\n--- run 2\n%s", blob, blob2)
	}
	if out.Best.Key() != out2.Best.Key() || out.Flakes != out2.Flakes || out.Elapsed != out2.Elapsed {
		t.Errorf("same-seed sessions disagree: best %q/%q flakes %d/%d elapsed %g/%g",
			out.Best.Key(), out2.Best.Key(), out.Flakes, out2.Flakes, out.Elapsed, out2.Elapsed)
	}

	// A different seed schedules different faults.
	out3, _ := runChaosSession(t, 43)
	if out3.Flakes == out.Flakes && out3.Elapsed == out.Elapsed && out3.Attempts == out.Attempts {
		t.Error("different seeds produced identical chaos accounting — schedule looks seed-blind")
	}
}
