package faultinject

// nodeDownSalt decorrelates the node-down schedule from the measurement
// fault schedule, which hashes the same (seed, key, attempt) triple.
const nodeDownSalt = 0x6e6f6465 // "node"

// NodeDownHook derives the dispatch-layer node-death schedule from the
// plan: a pure hash of (seed, trial key, placement try) decides whether a
// placement fails as if the chosen node had just died. The node's
// identity is deliberately *not* hashed — the schedule must not depend on
// fleet size or placement order, so an injected-flap session produces the
// same draws (and, since re-dispatch is free and silent, the same bytes)
// on two nodes or twenty. Returns nil when the plan injects no node
// deaths; the result plugs into dispatch.Pool.FaultHook.
func (p Plan) NodeDownHook(seed int64) func(node, key string, try int) bool {
	prob := p.NodeDown
	if prob <= 0 {
		return nil
	}
	return func(_, key string, try int) bool {
		return hash01(seed^nodeDownSalt, key, try) < prob
	}
}
