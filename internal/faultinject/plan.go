// Package faultinject is the tuner's deterministic chaos layer: a
// ChaosRunner wraps any runner.Runner and sabotages measurement attempts —
// transient launch failures, corrupted reports, spurious crashes, hangs
// killed at a real deadline, and latency spikes — according to a seeded,
// per-configuration schedule described by a Plan.
//
// The paper's 200-minute tuning sessions only work because the harness
// survives hostile configurations; this package makes that survivable
// hostility reproducible. Every fault decision is a pure hash of
// (seed, configuration key, attempt index), so a chaos-wrapped session is
// exactly as deterministic as a clean one: the same seed yields the same
// faults, the same retries, the same budget spend, and the same winning
// configuration at any worker count.
//
// Plans are built three ways: literally, from a named scenario
// (Scenario("unstable-farm")), or from the fault-plan DSL — a comma list of
// key=value items, e.g.
//
//	launch=0.1,corrupt=0.05,crash=0.02,hang=0.01,spike=0.2,spike-factor=3
//
// ParsePlan accepts either a scenario name or a DSL spec, which is what the
// CLI's -chaos flag and the HTTP API's "chaos" job option pass through.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Plan describes what the chaos layer injects. Probabilities apply
// independently per launch attempt (one draw decides which fault, if any,
// an attempt suffers), so their sum must stay ≤ 1.
//
// The zero value injects nothing. Cost knobs at zero mean their defaults.
type Plan struct {
	// Name labels the plan in reports; ParsePlan fills it.
	Name string

	// Launch is the probability a launch fails before the run starts
	// (transient; charged the launch overhead).
	Launch float64
	// Corrupt is the probability a completed run's report arrives
	// unparseable (transient; charged CrashSeconds of wasted run time).
	Corrupt float64
	// Crash is the probability the run dies spuriously partway through
	// (transient; charged CrashSeconds).
	Crash float64
	// Hang is the probability the run hangs until the harness kills it at
	// its real-time deadline (transient; charged HangSeconds).
	Hang float64
	// Spike is the probability a successful run is slowed by a machine
	// latency spike: walls and cost multiply by SpikeFactor. Spikes are
	// noise, not failures — they are never retried.
	Spike float64
	// Straggle is the probability a successful run is delivered late: the
	// harness stalls, multiplying the trial's virtual cost by
	// StraggleFactor while the run itself (walls, score) stays clean. The
	// clean cost rides in Measurement.HedgeCostSeconds so the session's
	// straggler watchdog can resolve first-result-wins hedging.
	// Stragglers are slowdowns, not failures — they are never retried.
	Straggle float64
	// NodeDown is the probability one *placement* of a trial on an
	// evaluator node fails as if the node had just died (distributed
	// sessions only; see internal/dispatch). It is a dispatch-layer fault,
	// not a measurement fault: the dispatch pool consults NodeDownHook
	// before each placement and silently re-dispatches at zero virtual
	// cost, so it does not enter Active(), the failure-probability sum,
	// or the ChaosRunner schedule.
	NodeDown float64

	// SpikeFactor multiplies wall times on a spike; values < 1 mean the
	// default, 3.
	SpikeFactor float64
	// StraggleFactor multiplies a straggler's cost; values < 1 mean the
	// default, 8.
	StraggleFactor float64
	// HangSeconds is the virtual budget a killed hang charges; values ≤ 0
	// mean the default, 300 (the paper-scale harness timeout).
	HangSeconds float64
	// CrashSeconds is the virtual run time wasted by a spurious crash or a
	// corrupted report; values ≤ 0 mean the default, 5.
	CrashSeconds float64
	// MaxConsecutive caps consecutive injected failures per configuration,
	// guaranteeing a clean attempt eventually gets through — a transient-
	// only configuration can never be condemned. Values < 1 mean the
	// default, 2.
	MaxConsecutive int

	// CrashAtTrial, when ≥ 1, kills the *session* (not a measurement) once
	// that many trials have completed — a simulated process kill for
	// exercising checkpoint/resume. It is a one-shot crash point, not a
	// probabilistic fault, so it does not make the plan Active on its own;
	// see CrashPoint.
	CrashAtTrial int

	// DriftAtTrials, when non-empty, shifts the *workload* (not a
	// measurement) once the listed trial counts have been dispatched: each
	// entry opens the next phase of a drift schedule (see
	// internal/jvmsim.PhaseShift). Like crash-at it is a session-level
	// trigger, not a per-attempt fault: it never enters Active(), the
	// failure-probability sum, or the ChaosRunner schedule — the session
	// layer extracts it into a phase schedule and clears it before the
	// measurement layer sees the plan. Entries must be strictly increasing
	// and ≥ 1.
	DriftAtTrials []int
}

// Plan knob defaults.
const (
	DefaultSpikeFactor    = 3.0
	DefaultStraggleFactor = 8.0
	DefaultHangSeconds    = 300.0
	DefaultCrashSeconds   = 5.0
	DefaultMaxConsecutive = 2
)

// normalized resolves defaulted knobs.
func (p Plan) normalized() Plan {
	if p.SpikeFactor < 1 {
		p.SpikeFactor = DefaultSpikeFactor
	}
	if p.StraggleFactor < 1 {
		p.StraggleFactor = DefaultStraggleFactor
	}
	if p.HangSeconds <= 0 {
		p.HangSeconds = DefaultHangSeconds
	}
	if p.CrashSeconds <= 0 {
		p.CrashSeconds = DefaultCrashSeconds
	}
	if p.MaxConsecutive < 1 {
		p.MaxConsecutive = DefaultMaxConsecutive
	}
	return p
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.Launch > 0 || p.Corrupt > 0 || p.Crash > 0 || p.Hang > 0 ||
		p.Spike > 0 || p.Straggle > 0
}

// failureProb is the total probability an attempt suffers an injected
// *failure* (spikes slow a run down but still succeed).
func (p Plan) failureProb() float64 {
	return p.Launch + p.Corrupt + p.Crash + p.Hang
}

// Validate rejects impossible plans.
func (p Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"launch", p.Launch}, {"corrupt", p.Corrupt}, {"crash", p.Crash},
		{"hang", p.Hang}, {"spike", p.Spike}, {"straggle", p.Straggle},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("faultinject: %s probability %g outside [0,1]", f.name, f.v)
		}
	}
	// node-down draws per placement, and the dispatch layer re-dispatches
	// until one succeeds — probability 1 would mean no placement ever can.
	if p.NodeDown < 0 || p.NodeDown >= 1 {
		return fmt.Errorf("faultinject: node-down probability %g outside [0,1)", p.NodeDown)
	}
	if sum := p.failureProb() + p.Spike + p.Straggle; sum > 1 {
		return fmt.Errorf("faultinject: fault probabilities sum to %g (> 1)", sum)
	}
	for i, at := range p.DriftAtTrials {
		if at < 1 {
			return fmt.Errorf("faultinject: drift-at trial %d below 1", at)
		}
		if i > 0 && at <= p.DriftAtTrials[i-1] {
			return fmt.Errorf("faultinject: drift-at trials must be strictly increasing, got %d after %d",
				at, p.DriftAtTrials[i-1])
		}
	}
	return nil
}

// String renders the plan in canonical DSL form (scenario name omitted).
func (p Plan) String() string {
	n := p.normalized()
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("launch", p.Launch)
	add("corrupt", p.Corrupt)
	add("crash", p.Crash)
	add("hang", p.Hang)
	add("spike", p.Spike)
	add("straggle", p.Straggle)
	if len(parts) > 0 {
		parts = append(parts,
			fmt.Sprintf("spike-factor=%g", n.SpikeFactor),
			fmt.Sprintf("hang-cost=%g", n.HangSeconds),
			fmt.Sprintf("crash-cost=%g", n.CrashSeconds),
			fmt.Sprintf("streak=%d", n.MaxConsecutive))
		// straggle-factor only matters — and only entered the canonical
		// form — when straggling is on: older checkpoints fingerprinted
		// straggle-free plans without it.
		if p.Straggle > 0 {
			parts = append(parts, fmt.Sprintf("straggle-factor=%g", n.StraggleFactor))
		}
	}
	// node-down, like crash-at, only enters the canonical form when set:
	// older checkpoints fingerprinted fleets-never-flap plans without it.
	if p.NodeDown > 0 {
		parts = append(parts, fmt.Sprintf("node-down=%g", p.NodeDown))
	}
	if p.CrashAtTrial > 0 {
		parts = append(parts, fmt.Sprintf("crash-at=%d", p.CrashAtTrial))
	}
	// drift-at, like crash-at, only enters the canonical form when set:
	// older checkpoints fingerprinted stationary plans without it.
	for _, at := range p.DriftAtTrials {
		parts = append(parts, fmt.Sprintf("drift-at=%d", at))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// scenarios are the named fault plans tests and operators reach for.
var scenarios = map[string]Plan{
	"none":            {},
	"flaky-launch":    {Launch: 0.15},
	"corrupt-reports": {Corrupt: 0.10},
	"crashy":          {Crash: 0.10},
	"hangs":           {Hang: 0.08},
	"latency-spikes":  {Spike: 0.20},
	"unstable-farm":   {Launch: 0.06, Corrupt: 0.03, Crash: 0.03, Hang: 0.02, Spike: 0.08},
	"hostile":         {Launch: 0.12, Corrupt: 0.06, Crash: 0.06, Hang: 0.04, Spike: 0.12, SpikeFactor: 4},
	// slow-trial: a farm whose harness occasionally stalls result delivery
	// by a large factor — the straggler-watchdog drill. The probability is
	// kept well under 10% so the watchdog's cost percentile (p90 by
	// default) stays dominated by clean deliveries; a denser straggle rate
	// would contaminate the percentile and the deadline would chase the
	// stragglers instead of catching them.
	"slow-trial": {Straggle: 0.06, StraggleFactor: 16},
	// overload-burst: a congested farm — stalled deliveries plus real
	// blocking hangs and flaky launches, the admission-control drill.
	"overload-burst": {Straggle: 0.15, StraggleFactor: 6, Launch: 0.05, Hang: 0.05},
	// node-flaps: a distributed fleet whose nodes keep dropping placements
	// while the harness also stalls deliveries — the flaps-during-hedge
	// drill. The node-down draws hit the dispatch layer (free, silent
	// re-dispatch); the straggles exercise the watchdog on top.
	"node-flaps": {NodeDown: 0.2, Straggle: 0.06, StraggleFactor: 16},
	// drift-midrun: the workload shifts regimes mid-session while the
	// harness also stalls deliveries — the drift-detection drill. The
	// single shift lands deep enough into the session that the pre-drift
	// incumbent is well established and genuinely stale afterwards.
	"drift-midrun": {Straggle: 0.06, StraggleFactor: 16, DriftAtTrials: []int{40}},
	// drift-storm: two regime shifts on a flapping distributed fleet —
	// drift recovery under node churn and stalled deliveries at once, the
	// everything-goes-wrong drill.
	"drift-storm": {NodeDown: 0.2, Straggle: 0.06, StraggleFactor: 16, DriftAtTrials: []int{30, 70}},
}

// Scenarios lists the named plans, sorted.
func Scenarios() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Scenario returns a named plan.
func Scenario(name string) (Plan, bool) {
	p, ok := scenarios[name]
	p.Name = name
	return p, ok
}

// ParsePlan builds a plan from a scenario name or a DSL spec. The empty
// string is the empty plan. DSL keys: launch, corrupt, crash, hang, spike,
// straggle (probabilities in [0,1]); node-down (per-placement node-death
// probability in [0,1), distributed sessions only); spike-factor,
// straggle-factor, hang-cost, crash-cost (floats); streak (max consecutive
// injected failures per config, int ≥ 1); crash-at (kill the session after
// that many trials, int ≥ 1 — the checkpoint/resume drill); drift-at
// (shift the workload after that many trials, int ≥ 1, repeatable with
// strictly increasing values — the drift-detection drill).
func ParsePlan(spec string) (Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Plan{Name: "none"}, nil
	}
	if p, ok := Scenario(spec); ok {
		return p, nil
	}
	p := Plan{Name: spec}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		k, v, ok := strings.Cut(item, "=")
		if !ok {
			return Plan{}, fmt.Errorf(
				"faultinject: bad plan item %q (want key=value, or a scenario: %s)",
				item, strings.Join(Scenarios(), ", "))
		}
		k = strings.TrimSpace(k)
		if k == "streak" {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 1 {
				return Plan{}, fmt.Errorf("faultinject: streak needs an integer ≥ 1, got %q", v)
			}
			p.MaxConsecutive = n
			continue
		}
		if k == "crash-at" {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 1 {
				return Plan{}, fmt.Errorf("faultinject: crash-at needs a trial number ≥ 1, got %q", v)
			}
			p.CrashAtTrial = n
			continue
		}
		if k == "drift-at" {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 1 {
				return Plan{}, fmt.Errorf("faultinject: drift-at needs a trial number ≥ 1, got %q", v)
			}
			p.DriftAtTrials = append(p.DriftAtTrials, n)
			continue
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return Plan{}, fmt.Errorf("faultinject: bad value in %q: %v", item, err)
		}
		switch k {
		case "launch":
			p.Launch = x
		case "node-down":
			p.NodeDown = x
		case "corrupt":
			p.Corrupt = x
		case "crash":
			p.Crash = x
		case "hang":
			p.Hang = x
		case "spike":
			p.Spike = x
		case "straggle":
			p.Straggle = x
		case "spike-factor":
			p.SpikeFactor = x
		case "straggle-factor":
			p.StraggleFactor = x
		case "hang-cost":
			p.HangSeconds = x
		case "crash-cost":
			p.CrashSeconds = x
		default:
			return Plan{}, fmt.Errorf("faultinject: unknown plan key %q", k)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
