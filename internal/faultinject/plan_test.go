package faultinject

import (
	"strings"
	"testing"
)

func TestParsePlanDSL(t *testing.T) {
	p, err := ParsePlan("launch=0.1, corrupt=0.05,crash=0.02,hang=0.01,spike=0.2,spike-factor=4,hang-cost=120,crash-cost=7,streak=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Launch != 0.1 || p.Corrupt != 0.05 || p.Crash != 0.02 || p.Hang != 0.01 || p.Spike != 0.2 {
		t.Errorf("probabilities wrong: %+v", p)
	}
	if p.SpikeFactor != 4 || p.HangSeconds != 120 || p.CrashSeconds != 7 || p.MaxConsecutive != 3 {
		t.Errorf("knobs wrong: %+v", p)
	}
	if !p.Active() {
		t.Error("plan should be active")
	}
}

func TestParsePlanEmptyAndScenarios(t *testing.T) {
	p, err := ParsePlan("")
	if err != nil || p.Active() {
		t.Errorf("empty spec should be the inactive plan: %+v err=%v", p, err)
	}
	for _, name := range Scenarios() {
		p, err := ParsePlan(name)
		if err != nil {
			t.Errorf("scenario %q failed to parse: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("scenario %q parsed with name %q", name, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", name, err)
		}
	}
	if p, _ := ParsePlan("unstable-farm"); !p.Active() {
		t.Error("unstable-farm should inject something")
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",                   // neither scenario nor key=value
		"launch",                  // missing value
		"launch=x",                // bad float
		"launch=1.5",              // probability out of range
		"launch=-0.1",             // negative
		"warp=0.1",                // unknown key
		"streak=0",                // streak below 1
		"streak=two",              // non-integer streak
		"launch=0.6,spike=0.6",    // probabilities sum past 1
		"drift-at=0",              // drift trial below 1
		"drift-at=ten",            // non-integer drift trial
		"drift-at=40,drift-at=40", // drift trials not strictly increasing
		"drift-at=40,drift-at=30", // drift trials decreasing
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) should fail", spec)
		}
	}
}

func TestPlanString(t *testing.T) {
	if s := (Plan{}).String(); s != "none" {
		t.Errorf("empty plan renders %q", s)
	}
	p, _ := ParsePlan("launch=0.1,spike=0.2")
	s := p.String()
	for _, want := range []string{"launch=0.1", "spike=0.2", "spike-factor=3", "streak=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	// The canonical form round-trips.
	q, err := ParsePlan(s)
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", s, err)
	}
	if q.Launch != p.Launch || q.Spike != p.Spike {
		t.Errorf("round-trip changed the plan: %+v vs %+v", q, p)
	}
}

func TestPlanStraggleRoundTrip(t *testing.T) {
	p, err := ParsePlan("straggle=0.06,straggle-factor=16")
	if err != nil {
		t.Fatal(err)
	}
	if p.Straggle != 0.06 || p.StraggleFactor != 16 {
		t.Errorf("straggle knobs wrong: %+v", p)
	}
	if !p.Active() {
		t.Error("a straggle-only plan should be active")
	}
	s := p.String()
	for _, want := range []string{"straggle=0.06", "straggle-factor=16"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	q, err := ParsePlan(s)
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", s, err)
	}
	if q.Straggle != p.Straggle || q.StraggleFactor != p.StraggleFactor {
		t.Errorf("round-trip changed the plan: %+v vs %+v", q, p)
	}
	// Without straggle, the factor knob is noise and stays out of the
	// canonical form (older checkpoints fingerprinted straggle-free plans
	// without it).
	if s := (Plan{Launch: 0.1}).String(); strings.Contains(s, "straggle-factor") {
		t.Errorf("straggle-factor leaked into a straggle-free plan: %q", s)
	}
	// A sub-1 factor is normalized to the default, like spike-factor.
	if p := (Plan{Straggle: 0.1, StraggleFactor: 0.5}).normalized(); p.StraggleFactor != DefaultStraggleFactor {
		t.Errorf("StraggleFactor not defaulted: %g", p.StraggleFactor)
	}
}

func TestHash01Deterministic(t *testing.T) {
	a := hash01(42, "k", 3)
	if b := hash01(42, "k", 3); a != b {
		t.Error("hash01 must be pure")
	}
	if a < 0 || a >= 1 {
		t.Errorf("hash01 out of range: %g", a)
	}
	if hash01(42, "k", 3) == hash01(43, "k", 3) ||
		hash01(42, "k", 3) == hash01(42, "k2", 3) ||
		hash01(42, "k", 3) == hash01(42, "k", 4) {
		t.Error("hash01 should vary with every input")
	}
	// The schedule is roughly uniform: over many draws about p of them
	// land below p.
	hits := 0
	for i := 0; i < 10000; i++ {
		if hash01(7, "uniformity", i) < 0.25 {
			hits++
		}
	}
	if hits < 2200 || hits > 2800 {
		t.Errorf("hash01 badly non-uniform: %d/10000 below 0.25", hits)
	}
}

func TestPlanDriftAt(t *testing.T) {
	p, err := ParsePlan("straggle=0.06,drift-at=30,drift-at=70")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DriftAtTrials) != 2 || p.DriftAtTrials[0] != 30 || p.DriftAtTrials[1] != 70 {
		t.Errorf("drift trials wrong: %+v", p.DriftAtTrials)
	}
	// Like crash-at, drift-at is a session-level trigger: it never makes
	// the plan active at the measurement layer on its own.
	if q, _ := ParsePlan("drift-at=40"); q.Active() {
		t.Error("a drift-only plan must not be Active")
	}
	s := p.String()
	for _, want := range []string{"drift-at=30", "drift-at=70"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	q, err := ParsePlan(s)
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", s, err)
	}
	if len(q.DriftAtTrials) != 2 || q.DriftAtTrials[0] != 30 || q.DriftAtTrials[1] != 70 {
		t.Errorf("round-trip changed the drift trials: %+v", q.DriftAtTrials)
	}
	// Without drift-at, the key stays out of the canonical form (older
	// checkpoints fingerprinted stationary plans without it).
	if s := (Plan{Launch: 0.1}).String(); strings.Contains(s, "drift-at") {
		t.Errorf("drift-at leaked into a stationary plan: %q", s)
	}
}

func TestDriftScenarios(t *testing.T) {
	mid, ok := Scenario("drift-midrun")
	if !ok {
		t.Fatal("drift-midrun scenario missing")
	}
	if len(mid.DriftAtTrials) != 1 || mid.Straggle <= 0 {
		t.Errorf("drift-midrun should straggle and drift once: %+v", mid)
	}
	storm, ok := Scenario("drift-storm")
	if !ok {
		t.Fatal("drift-storm scenario missing")
	}
	if len(storm.DriftAtTrials) != 2 || storm.NodeDown <= 0 || storm.Straggle <= 0 {
		t.Errorf("drift-storm should flap, straggle, and drift twice: %+v", storm)
	}
}
