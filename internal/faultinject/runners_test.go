package faultinject_test

import (
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/flags"
	"repro/internal/jvmsim"
	"repro/internal/runner"
	"repro/internal/workload"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func jvmsimBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "faultinject-jvmsim")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "jvmsim")
		cmd := exec.Command("go", "build", "-o", binPath, "repro/cmd/jvmsim")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building jvmsim: %v", buildErr)
	}
	return binPath
}

func mustProfile(t *testing.T, name string) *workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	return p
}

// oomConfig returns a configuration that OOMs the h2 workload: a heap far
// below its live set.
func oomConfig() *flags.Config {
	cfg := flags.NewConfig(flags.NewRegistry())
	cfg.SetInt("MaxHeapSize", 128<<20)
	cfg.SetInt("InitialHeapSize", 64<<20)
	return cfg
}

// TestChaosOverRealRunners is the acceptance regression matrix: through the
// chaos layer, every real runner retries transient injected failures
// (charging each attempt plus backoff) and still condemns-and-caches
// deterministic failures.
func TestChaosOverRealRunners(t *testing.T) {
	quietSim := func() *jvmsim.Simulator {
		sim := jvmsim.New()
		sim.NoiseRelStdDev = 0
		return sim
	}
	cases := []struct {
		name string
		make func(t *testing.T) runner.Runner
	}{
		{"inprocess", func(t *testing.T) runner.Runner {
			return runner.NewInProcess(quietSim(), mustProfile(t, "h2"))
		}},
		{"subprocess", func(t *testing.T) runner.Runner {
			return runner.NewSubprocess(jvmsimBinary(t), mustProfile(t, "h2"))
		}},
		{"multi", func(t *testing.T) runner.Runner {
			m, err := runner.NewMulti(quietSim(),
				[]*workload.Profile{mustProfile(t, "startup.scimark.monte_carlo"), mustProfile(t, "h2")})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
	}
	plan, err := faultinject.ParsePlan("launch=1,streak=2")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch := faultinject.New(tc.make(t), plan, 5)

			// Every key's first two attempts are injected launch flakes; the
			// streak cap lets the third through. The measurement succeeds,
			// and the flakes' overhead and backoff are charged.
			good := flags.NewConfig(flags.NewRegistry())
			m := ch.Measure(good, 2)
			if m.Failed {
				t.Fatalf("transient flakes must be absorbed: %+v", m)
			}
			if m.Flakes != 2 || m.Attempts != 3 {
				t.Errorf("expected 2 flakes over 3 attempts: %+v", m)
			}
			// 2 injected launches (0.5 each) + 2s and 4s backoff + real run.
			if floor := 2*runner.LaunchOverheadSeconds + 6; m.CostSeconds <= floor {
				t.Errorf("attempts not charged: cost %.2f ≤ %.2f", m.CostSeconds, floor)
			}
			if math.Abs(ch.Elapsed()-m.CostSeconds) > 1e-6 {
				t.Errorf("elapsed %.2f != measurement cost %.2f", ch.Elapsed(), m.CostSeconds)
			}

			// The verdict settles the key: the replay comes from the inner
			// cache, costs nothing, and suffers no further injection.
			elapsed := ch.Elapsed()
			if m2 := ch.Measure(good.Clone(), 2); !m2.FromCache || m2.CostSeconds != 0 || ch.Elapsed() != elapsed {
				t.Errorf("settled success must replay from cache for free: %+v", m2)
			}

			// A deterministically bad config still flakes twice on launch,
			// then fails for real — and that verdict is final.
			bad := oomConfig()
			f := ch.Measure(bad, 2)
			if !f.Failed || f.Transient || runner.Transient(f.Failure) {
				t.Fatalf("expected a deterministic failure verdict: %+v", f)
			}
			if f.Flakes != 2 {
				t.Errorf("the injected flakes still count: %+v", f)
			}
			elapsed = ch.Elapsed()
			f2 := ch.Measure(bad.Clone(), 2)
			if !f2.FromCache || f2.CostSeconds != 0 || ch.Elapsed() != elapsed {
				t.Errorf("condemned config must replay from cache for free: %+v", f2)
			}
			if !f2.Failed || f2.Failure != f.Failure {
				t.Errorf("cached replay must preserve the failure: %+v", f2)
			}
		})
	}
}
