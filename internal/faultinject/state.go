package faultinject

import (
	"encoding/json"
	"fmt"

	"repro/internal/runner"
)

// chaosState is the chaos layer's serialized mutable state. Inner carries
// the wrapped runner's own snapshot, so one SnapshotState at the chaos
// layer captures the full runner stack. The fault schedule itself needs no
// state: faults are a pure hash of (seed, key, attempt), so restoring the
// per-key attempt counters restores the schedule position exactly.
type chaosState struct {
	Elapsed  float64         `json:"elapsed"`
	Attempts map[string]int  `json:"attempts"`
	Streaks  map[string]int  `json:"streaks"`
	Settled  map[string]bool `json:"settled"`
	Stats    Stats           `json:"stats"`
	Inner    json.RawMessage `json:"inner"`
}

// SnapshotState implements runner.StateSnapshotter. It fails if the inner
// runner cannot snapshot its own state — a chaos checkpoint without the
// wrapped runner's caches would replay the fault schedule against a runner
// that re-measures everything, diverging immediately.
func (c *ChaosRunner) SnapshotState() ([]byte, error) {
	snap, ok := c.inner.(runner.StateSnapshotter)
	if !ok {
		return nil, fmt.Errorf("faultinject: inner runner %T cannot snapshot state", c.inner)
	}
	inner, err := snap.SnapshotState()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(chaosState{
		Elapsed:  c.elapsed.Seconds(),
		Attempts: c.attempts,
		Streaks:  c.streaks,
		Settled:  c.settled,
		Stats:    c.stats,
		Inner:    inner,
	})
}

// RestoreState implements runner.StateSnapshotter.
func (c *ChaosRunner) RestoreState(data []byte) error {
	snap, ok := c.inner.(runner.StateSnapshotter)
	if !ok {
		return fmt.Errorf("faultinject: inner runner %T cannot restore state", c.inner)
	}
	var st chaosState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("faultinject: restore state: %w", err)
	}
	if err := snap.RestoreState(st.Inner); err != nil {
		return err
	}
	if st.Attempts == nil {
		st.Attempts = make(map[string]int)
	}
	if st.Streaks == nil {
		st.Streaks = make(map[string]int)
	}
	if st.Settled == nil {
		st.Settled = make(map[string]bool)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.elapsed.Set(st.Elapsed)
	c.attempts, c.streaks, c.settled, c.stats = st.Attempts, st.Streaks, st.Settled, st.Stats
	return nil
}
