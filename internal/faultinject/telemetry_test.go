package faultinject

import (
	"testing"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

func TestChaosTelemetryCountsFaultsAndRetries(t *testing.T) {
	inner := newFake(okRun)
	// Every attempt wants a launch fault; the streak cap (2) forces the
	// third to run clean and suppresses its scheduled fault.
	ch := New(inner, Plan{Launch: 1, MaxConsecutive: 2}, 1)
	ch.Retry = runner.RetryPolicy{MaxAttempts: 3, BackoffSeconds: 2, BackoffFactor: 2}
	ch.Telemetry = telemetry.New()
	ch.Trace = telemetry.NewTracer(0)

	cfg := testConfig()
	m := ch.Measure(cfg, 1)
	if m.Failed {
		t.Fatalf("expected eventual success: %+v", m)
	}
	ch.Trace.Commit(cfg.Key(), 42)

	snap := ch.Telemetry.Snapshot()
	for name, want := range map[string]float64{
		`chaos_faults_total{kind="launch"}`: 2,
		"chaos_suppressed_total":            1,
		"runner_attempts_total":             3,
		"runner_retries_total":              2,
		"runner_flakes_total":               2,
		"runner_measures_total":             1,
		"runner_condemned_total":            0,
	} {
		if snap[name] != want {
			t.Errorf("%s = %g, want %g", name, snap[name], want)
		}
	}

	// Per-attempt trace: fault+attempt for the two injected failures (the
	// retries marked), then the clean third attempt.
	wantKinds := []string{
		telemetry.EvFault, telemetry.EvAttempt,
		telemetry.EvFault, telemetry.EvRetry, telemetry.EvAttempt,
		telemetry.EvRetry, telemetry.EvAttempt,
	}
	evs := ch.Trace.Events()
	if len(evs) != len(wantKinds) {
		t.Fatalf("want %d events, got %d: %+v", len(wantKinds), len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %s, want %s", i, ev.Kind, wantKinds[i])
		}
		if ev.T != 42 || ev.Key != cfg.Key() {
			t.Errorf("event %d not committed with virtual time/key: %+v", i, ev)
		}
	}
	if evs[0].Detail != "launch" {
		t.Errorf("fault event detail = %q, want launch", evs[0].Detail)
	}
	if evs[1].Detail != string(runner.LaunchFlakeFailure) {
		t.Errorf("attempt event detail = %q, want %s", evs[1].Detail, runner.LaunchFlakeFailure)
	}
	if evs[6].Detail != "ok" {
		t.Errorf("clean attempt detail = %q, want ok", evs[6].Detail)
	}
}

func TestChaosTelemetryPassthroughWhenInactive(t *testing.T) {
	inner := newFake(okRun)
	ch := New(inner, Plan{}, 1) // no faults: pure passthrough
	ch.Telemetry = telemetry.New()
	ch.Trace = telemetry.NewTracer(0)

	ch.Measure(testConfig(), 1)
	snap := ch.Telemetry.Snapshot()
	if snap["runner_measures_total"] != 1 {
		t.Errorf("runner_measures_total = %g, want 1", snap["runner_measures_total"])
	}
	if snap[`chaos_faults_total{kind="launch"}`] != 0 {
		t.Errorf("inactive plan must inject nothing")
	}
}

func TestChaosTelemetryNilSafe(t *testing.T) {
	inner := newFake(okRun)
	ch := New(inner, Plan{Launch: 1, MaxConsecutive: 1}, 7)
	if m := ch.Measure(testConfig(), 1); m.Failed {
		t.Fatalf("un-instrumented chaos must behave as before: %+v", m)
	}
}
