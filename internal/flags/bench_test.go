package flags

import (
	"math/rand"
	"testing"
)

// The flag layer sits on the tuner's hottest paths: every proposal clones
// and mutates a config, every cache lookup builds a canonical key, every
// launch renders a command line.

func benchConfig(b *testing.B) (*Registry, *Config) {
	b.Helper()
	reg := NewRegistry()
	c := NewConfig(reg)
	c.SetBool("UseG1GC", true)
	c.SetBool("UseParallelGC", false)
	c.SetInt("MaxHeapSize", 2<<30)
	c.SetInt("CompileThreshold", 2500)
	c.SetBool("TieredCompilation", true)
	c.SetInt("SurvivorRatio", 6)
	c.SetInt("MaxGCPauseMillis", 50)
	c.SetInt("G1ReservePercent", 15)
	return reg, c
}

func BenchmarkNewRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if NewRegistry().Len() < 600 {
			b.Fatal("registry too small")
		}
	}
}

func BenchmarkConfigClone(b *testing.B) {
	_, c := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Clone() == nil {
			b.Fatal("nil clone")
		}
	}
}

func BenchmarkConfigKeyCanonical(b *testing.B) {
	_, c := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Key() == "" {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkConfigKeyRebuild measures the un-memoized key walk — the cost a
// fresh configuration pays once — via AppendKey into a reused buffer.
func BenchmarkConfigKeyRebuild(b *testing.B) {
	_, c := benchConfig(b)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendKey(buf[:0])
		if len(buf) == 0 {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkConfigValidate(b *testing.B) {
	_, c := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommandLineRender(b *testing.B) {
	_, c := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.CommandLine()) == 0 {
			b.Fatal("no args")
		}
	}
}

func BenchmarkParseArgs(b *testing.B) {
	reg, c := benchConfig(b)
	args := c.CommandLine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseArgs(reg, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMutateFlag(b *testing.B) {
	reg, c := benchConfig(b)
	rng := rand.New(rand.NewSource(1))
	names := reg.TunableNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MutateFlag(c, names[i%len(names)], rng)
	}
}

func BenchmarkSampleValueLogScale(b *testing.B) {
	reg := NewRegistry()
	f := reg.Lookup("MaxHeapSize")
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleValue(f, rng)
	}
}

func BenchmarkDiff(b *testing.B) {
	reg, c := benchConfig(b)
	def := NewConfig(reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Diff(def)) == 0 {
			b.Fatal("empty diff")
		}
	}
}
