package flags

// This file defines the *modeled* portion of the HotSpot flag catalog: the
// knobs whose performance effect internal/jvmsim actually computes. Defaults
// follow the JDK-7-era server VM the paper tuned. The long tail of
// observability and verification flags lives in catalog_inert.go.

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// boolFlag builds a Product boolean flag definition.
func boolFlag(name string, cat Category, def bool, desc string) Flag {
	return Flag{Name: name, Type: Bool, Kind: Product, Category: cat,
		Default: BoolValue(def), Description: desc}
}

// intFlag builds a Product integer flag definition.
func intFlag(name string, cat Category, def, min, max, step int64, unit Unit, logScale bool, desc string) Flag {
	return Flag{Name: name, Type: Int, Kind: Product, Category: cat,
		Default: IntValue(def), Min: min, Max: max, Step: step,
		Unit: unit, LogScale: logScale, Description: desc}
}

// catalog returns the modeled flag definitions.
func catalog() []Flag {
	return []Flag{
		// ------------------------------------------------------------------
		// Garbage collector selection. Mutually exclusive booleans, exactly
		// as HotSpot exposes them; selecting more than one is an invalid
		// combination the (simulated) VM refuses to start with.
		// ------------------------------------------------------------------
		boolFlag("UseSerialGC", CatGC, false, "single-threaded stop-the-world collector"),
		boolFlag("UseParallelGC", CatGC, true, "throughput collector, parallel young generation"),
		boolFlag("UseParallelOldGC", CatGC, true, "parallel old-generation compaction (with UseParallelGC)"),
		boolFlag("UseConcMarkSweepGC", CatGC, false, "concurrent mark-sweep old-generation collector"),
		boolFlag("UseParNewGC", CatGC, false, "parallel young collector for CMS"),
		boolFlag("UseG1GC", CatGC, false, "garbage-first region-based collector"),

		// GC threading and pacing.
		intFlag("ParallelGCThreads", CatGC, 8, 1, 64, 1, None, false, "stop-the-world GC worker threads"),
		intFlag("ConcGCThreads", CatGC, 2, 0, 32, 1, None, false, "concurrent GC worker threads (0 = auto)"),
		intFlag("MaxGCPauseMillis", CatGC, 200, 10, 5000, 10, Millis, true, "GC pause-time goal"),
		intFlag("GCTimeRatio", CatGC, 99, 1, 99, 1, None, false, "goal: 1/(1+ratio) of time in GC"),
		boolFlag("UseAdaptiveSizePolicy", CatGC, true, "let the collector resize generations online"),
		{Name: "UseGCOverheadLimit", Type: Bool, Kind: Product, Category: CatGC, Default: BoolValue(true), Description: "throw OutOfMemoryError when GC consumes nearly all time"},
		boolFlag("DisableExplicitGC", CatGC, false, "turn System.gc() calls into no-ops"),
		boolFlag("ExplicitGCInvokesConcurrent", CatGC, false, "System.gc() triggers a concurrent cycle instead of a full GC"),
		boolFlag("ScavengeBeforeFullGC", CatGC, true, "run a young collection before every full GC"),
		boolFlag("ParallelRefProcEnabled", CatGC, false, "process soft/weak references with multiple threads"),
		boolFlag("UseGCTaskAffinity", CatGC, false, "bind GC tasks to worker threads"),
		boolFlag("BindGCTaskThreadsToCPUs", CatGC, false, "pin GC worker threads to processors"),

		// CMS-specific knobs (active only under UseConcMarkSweepGC).
		intFlag("CMSInitiatingOccupancyFraction", CatGC, 68, 10, 95, 1, Percent, false, "old-gen occupancy that starts a CMS cycle"),
		boolFlag("UseCMSInitiatingOccupancyOnly", CatGC, false, "use only the set fraction, no adaptive triggering"),
		boolFlag("CMSParallelRemarkEnabled", CatGC, true, "parallelize the remark pause"),
		boolFlag("CMSScavengeBeforeRemark", CatGC, false, "young collection immediately before remark"),
		boolFlag("CMSClassUnloadingEnabled", CatGC, false, "unload classes during CMS cycles"),
		boolFlag("UseCMSCompactAtFullCollection", CatGC, true, "compact the old generation on CMS full GCs"),
		intFlag("CMSFullGCsBeforeCompaction", CatGC, 0, 0, 16, 1, None, false, "full GCs between CMS compactions"),

		// G1-specific knobs (active only under UseG1GC).
		intFlag("G1HeapRegionSize", CatGC, 0, 0, 32*mb, mb, Bytes, false, "G1 region size (0 = ergonomic)"),
		intFlag("G1ReservePercent", CatGC, 10, 0, 50, 1, Percent, false, "heap reserved to reduce promotion failure"),
		intFlag("InitiatingHeapOccupancyPercent", CatGC, 45, 5, 95, 1, Percent, false, "occupancy that starts a concurrent G1 cycle"),
		intFlag("G1MixedGCCountTarget", CatGC, 8, 1, 32, 1, None, false, "mixed collections over which to spread old-region evacuation"),
		intFlag("G1HeapWastePercent", CatGC, 10, 0, 50, 1, Percent, false, "reclaimable space below which mixed GCs stop"),

		// ------------------------------------------------------------------
		// Heap geometry.
		// ------------------------------------------------------------------
		intFlag("MaxHeapSize", CatHeap, 512*mb, 64*mb, 8*gb, 16*mb, Bytes, true, "maximum heap size (-Xmx)"),
		intFlag("InitialHeapSize", CatHeap, 128*mb, 8*mb, 8*gb, 16*mb, Bytes, true, "initial heap size (-Xms)"),
		intFlag("NewSize", CatHeap, 0, 0, 4*gb, 8*mb, Bytes, true, "initial young generation size (0 = ergonomic)"),
		intFlag("MaxNewSize", CatHeap, 0, 0, 4*gb, 8*mb, Bytes, true, "maximum young generation size (0 = ergonomic)"),
		intFlag("NewRatio", CatHeap, 2, 1, 16, 1, None, false, "old/young generation size ratio"),
		intFlag("SurvivorRatio", CatHeap, 8, 1, 32, 1, None, false, "eden/survivor-space size ratio"),
		intFlag("TargetSurvivorRatio", CatHeap, 50, 1, 100, 1, Percent, false, "desired survivor-space occupancy after scavenge"),
		intFlag("MaxTenuringThreshold", CatHeap, 15, 0, 15, 1, None, false, "copies an object survives before promotion"),
		intFlag("MinHeapFreeRatio", CatHeap, 40, 5, 70, 5, Percent, false, "expand heap below this free fraction"),
		intFlag("MaxHeapFreeRatio", CatHeap, 70, 30, 100, 5, Percent, false, "shrink heap above this free fraction"),
		intFlag("PretenureSizeThreshold", CatHeap, 0, 0, 16*mb, 64*kb, Bytes, false, "objects larger than this allocate directly in old gen (0 = off)"),
		intFlag("PermSize", CatHeap, 21*mb, 4*mb, 1*gb, 4*mb, Bytes, true, "initial permanent generation size"),
		intFlag("MaxPermSize", CatHeap, 85*mb, 16*mb, 1*gb, 4*mb, Bytes, true, "maximum permanent generation size"),
		boolFlag("AlwaysPreTouch", CatHeap, false, "touch every heap page at startup"),
		boolFlag("UseCompressedOops", CatHeap, true, "32-bit object references on 64-bit heaps under 32 GB"),
		boolFlag("UseLargePages", CatHeap, false, "back the heap with large memory pages"),
		boolFlag("UseNUMA", CatHeap, false, "NUMA-aware eden allocation"),

		// TLABs.
		boolFlag("UseTLAB", CatHeap, true, "thread-local allocation buffers"),
		intFlag("TLABSize", CatHeap, 0, 0, 4*mb, 16*kb, Bytes, false, "fixed TLAB size (0 = adaptive)"),
		boolFlag("ResizeTLAB", CatHeap, true, "adapt TLAB size to allocation behaviour"),
		intFlag("TLABWasteTargetPercent", CatHeap, 1, 1, 50, 1, Percent, false, "eden fraction wastable as TLAB slack"),

		// ------------------------------------------------------------------
		// JIT compilation.
		// ------------------------------------------------------------------
		boolFlag("TieredCompilation", CatJIT, false, "compile first with C1, then C2 (off in JDK 7 server)"),
		intFlag("TieredStopAtLevel", CatJIT, 4, 1, 4, 1, None, false, "highest tier used when tiered"),
		intFlag("CompileThreshold", CatJIT, 10000, 100, 100000, 100, None, true, "interpreted invocations before C2 compilation"),
		intFlag("CICompilerCount", CatJIT, 2, 1, 12, 1, None, false, "background compiler threads"),
		boolFlag("BackgroundCompilation", CatJIT, true, "compile asynchronously to execution"),
		intFlag("ReservedCodeCacheSize", CatJIT, 48*mb, 8*mb, 512*mb, 4*mb, Bytes, true, "code cache capacity"),
		intFlag("InitialCodeCacheSize", CatJIT, 500*kb, 160*kb, 64*mb, 32*kb, Bytes, true, "code cache initial size"),
		boolFlag("UseCodeCacheFlushing", CatJIT, false, "evict cold compiled methods when the cache fills"),
		intFlag("OnStackReplacePercentage", CatJIT, 140, 10, 1000, 10, Percent, false, "OSR trigger relative to CompileThreshold"),
		intFlag("InterpreterProfilePercentage", CatJIT, 33, 0, 100, 1, Percent, false, "fraction of threshold spent profiling in the interpreter"),

		// Inlining.
		intFlag("MaxInlineSize", CatInline, 35, 1, 200, 1, None, false, "max bytecode size of a trivially inlinable method"),
		intFlag("FreqInlineSize", CatInline, 325, 50, 2000, 25, None, false, "max bytecode size of a hot inlinable method"),
		intFlag("InlineSmallCode", CatInline, 1000, 500, 10000, 100, None, false, "max compiled size still considered for inlining"),
		intFlag("MaxInlineLevel", CatInline, 9, 1, 18, 1, None, false, "max depth of nested inlining"),
		intFlag("MaxRecursiveInlineLevel", CatInline, 1, 0, 3, 1, None, false, "max depth of recursive inlining"),
		boolFlag("ClipInlining", CatInline, true, "stop inlining once the size budget is spent"),
		boolFlag("InlineSynchronizedMethods", CatInline, true, "allow inlining of synchronized methods"),
		boolFlag("UseFastAccessorMethods", CatInline, false, "specialized interpreter entries for trivial getters"),

		// Compiler optimizations beyond inlining.
		boolFlag("DoEscapeAnalysis", CatJIT, true, "scalar-replace and stack-allocate non-escaping objects"),
		boolFlag("EliminateLocks", CatJIT, true, "remove provably-uncontended synchronization"),
		boolFlag("EliminateAllocations", CatJIT, true, "scalar replacement of non-escaping allocations"),
		boolFlag("UseSuperWord", CatJIT, true, "auto-vectorize inner loops"),
		boolFlag("OptimizeStringConcat", CatJIT, true, "fuse StringBuilder chains"),
		boolFlag("UseLoopPredicate", CatJIT, true, "hoist loop-invariant range checks"),
		boolFlag("RangeCheckElimination", CatJIT, true, "eliminate provably-safe array bounds checks"),
		boolFlag("AggressiveOpts", CatJIT, false, "point-release optimizations ahead of default adoption"),
		intFlag("LoopUnrollLimit", CatJIT, 50, 0, 200, 5, None, false, "node budget for loop unrolling"),

		// ------------------------------------------------------------------
		// Threads and synchronization.
		// ------------------------------------------------------------------
		boolFlag("UseBiasedLocking", CatThreads, true, "bias monitors toward their first locker"),
		intFlag("BiasedLockingStartupDelay", CatThreads, 4000, 0, 20000, 500, Millis, false, "delay before biasing begins"),
		boolFlag("UseSpinLocks", CatThreads, false, "spin before parking on contended monitors"),
		intFlag("ThreadStackSize", CatThreads, 512, 0, 8192, 64, None, false, "thread stack size in KB (0 = platform default)"),
		boolFlag("UseThreadPriorities", CatThreads, true, "map Java priorities to OS priorities"),
		boolFlag("UseCondCardMark", CatThreads, false, "check card state before dirtying (reduces false sharing)"),

		// ------------------------------------------------------------------
		// Runtime services.
		// ------------------------------------------------------------------
		boolFlag("UsePerfData", CatRuntime, true, "maintain the jvmstat shared-memory counters"),
		boolFlag("UseCounterDecay", CatRuntime, true, "decay interpreter invocation counters over time"),
		boolFlag("ReduceSignalUsage", CatRuntime, false, "do not install handlers for user signals"),
		boolFlag("AllowUserSignalHandlers", CatRuntime, false, "let application code install signal handlers"),
		boolFlag("ClassUnloading", CatRuntime, true, "unload unreachable classes at full GC"),
		boolFlag("UseStringCache", CatRuntime, false, "cache commonly-interned strings"),
		boolFlag("CompactStrings", CatRuntime, false, "byte-packed representation for Latin-1 strings"),
	}
}
