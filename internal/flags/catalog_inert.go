package flags

// This file supplies the long tail of the HotSpot flag universe: flags that
// exist, can be set, and occasionally cost performance when engaged, but
// whose effect the simulator does not model in detail. They matter to the
// reproduction for two reasons. First, the paper's headline difficulty —
// "over 600 flags to choose from" — only holds if the universe really is
// that large. Second, a whole-JVM tuner must *learn to leave these alone*:
// engaging a verification flag slows the VM down, so a tuner that mutates
// blindly pays for it.
//
// The list combines ~140 real, individually-named flags with systematically
// generated Print/Trace/Verify/Check/Log/Profile families over VM
// components, which is faithful to how HotSpot's develop-flag namespace is
// actually organized.

// overheadFor assigns the simulator's slowdown for engaging an inert flag,
// by naming convention: verification is expensive, tracing is noticeable,
// printing is nearly free.
func overheadFor(name string) float64 {
	switch {
	case hasPrefix(name, "Verify"):
		return 0.08
	case hasPrefix(name, "Profile"):
		return 0.03
	case hasPrefix(name, "Check"):
		return 0.02
	case hasPrefix(name, "Trace"):
		return 0.015
	case hasPrefix(name, "Log"):
		return 0.01
	case hasPrefix(name, "Print"):
		return 0.004
	default:
		return 0
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// inertBool builds an inert boolean flag whose overhead follows its name.
func inertBool(name string, kind Kind, cat Category, desc string) Flag {
	return Flag{Name: name, Type: Bool, Kind: kind, Category: cat,
		Default: BoolValue(false), Inert: true,
		OverheadPct: overheadFor(name), Description: desc}
}

// inertInt builds an inert integer flag; moving it off its default charges
// no overhead (it is simply ignored by the simulator).
func inertInt(name string, kind Kind, cat Category, def, min, max int64, desc string) Flag {
	return Flag{Name: name, Type: Int, Kind: kind, Category: cat,
		Default: IntValue(def), Min: min, Max: max, Inert: true,
		Description: desc}
}

// vmComponents are the subsystems over which HotSpot's develop-build
// observability flag families are generated.
var vmComponents = []string{
	"ClassLoading", "ClassUnloading", "ClassResolution", "ClassInitialization",
	"Monitor", "MonitorInflation", "MonitorMismatch", "BiasedLocking",
	"Safepoint", "SafepointCleanup", "VMOperation", "HandshakeOperation",
	"Deoptimization", "OSR", "Compilation", "CompilationPolicy",
	"InlineCaches", "CodeCache", "CodeBlob", "Relocation",
	"StubRoutines", "InterpreterEntries", "BytecodeVerification", "Dependencies",
	"MethodData", "MethodHandles", "Invokedynamic", "ConstantPool",
	"Exceptions", "StackWalk", "StackMaps", "JNICalls",
	"JVMTIEvents", "ThreadEvents", "ThreadStates", "ParkEvents",
	"Scavenge", "MarkSweep", "RefProcessing", "WeakReferences",
	"FinalReferences", "PhantomReferences", "CardTable", "RememberedSets",
	"TLABAllocation", "HumongousAllocation", "PromotionFailure", "Evacuation",
	"ConcurrentMark", "ConcurrentSweep", "RegionLiveness", "CollectionSetChoice",
	"HeapExpansion", "HeapShrinking", "MetaspaceAllocation", "StringTable",
	"SymbolTable", "InternedStrings", "PerfCounters", "ArgumentProcessing",
	"SignalHandling", "LibraryLoading", "AttachListener", "ManagementAgent",
}

// flagFamilies are the aspect prefixes generated per component.
var flagFamilies = []struct {
	prefix string
	kind   Kind
}{
	{"Print", Diagnostic},
	{"Trace", Develop},
	{"Verify", Develop},
	{"Check", Develop},
	{"Log", Diagnostic},
	{"Profile", Develop},
}

// inertCatalog returns the inert flag definitions.
func inertCatalog() []Flag {
	var defs []Flag

	// Real, individually-named observability and policy flags.
	named := []Flag{
		// GC observability (all tunable Product flags a tuner could flip).
		inertBool("PrintGC", Product, CatDebug, "one line per collection"),
		inertBool("PrintGCDetails", Product, CatDebug, "detailed per-collection logging"),
		inertBool("PrintGCTimeStamps", Product, CatDebug, "timestamps on GC log lines"),
		inertBool("PrintGCDateStamps", Product, CatDebug, "wall-clock dates on GC log lines"),
		inertBool("PrintGCApplicationStoppedTime", Product, CatDebug, "report stop-the-world durations"),
		inertBool("PrintGCApplicationConcurrentTime", Product, CatDebug, "report time between pauses"),
		inertBool("PrintGCTaskTimeStamps", Product, CatDebug, "per-GC-task timing"),
		inertBool("PrintHeapAtGC", Product, CatDebug, "heap layout before/after each GC"),
		inertBool("PrintHeapAtSIGBREAK", Product, CatDebug, "heap layout on SIGBREAK"),
		inertBool("PrintTenuringDistribution", Product, CatDebug, "survivor age table per scavenge"),
		inertBool("PrintAdaptiveSizePolicy", Product, CatDebug, "ergonomics decisions per collection"),
		inertBool("PrintPromotionFailure", Product, CatDebug, "details when promotion fails"),
		inertBool("PrintReferenceGC", Product, CatDebug, "reference-processing times"),
		inertBool("PrintParallelOldGCPhaseTimes", Product, CatDebug, "phase times of parallel old GC"),
		inertBool("PrintCMSStatistics", Product, CatDebug, "CMS cycle statistics"),
		inertBool("PrintCMSInitiationStatistics", Product, CatDebug, "CMS start-trigger statistics"),
		inertBool("PrintFLSStatistics", Product, CatDebug, "CMS free-list-space statistics"),
		inertBool("PrintOldPLAB", Product, CatDebug, "old-gen promotion-buffer statistics"),
		inertBool("PrintTLAB", Product, CatDebug, "TLAB sizing per scavenge"),
		inertBool("PrintJNIGCStalls", Product, CatDebug, "report GC stalls caused by JNI critical sections"),
		inertBool("PrintClassHistogram", Product, CatDebug, "class histogram on SIGQUIT"),
		inertBool("PrintConcurrentLocks", Product, CatDebug, "j.u.c locks in thread dumps"),
		inertBool("PrintCompilation", Product, CatDebug, "one line per JIT compilation"),
		inertBool("PrintCompilation2", Diagnostic, CatDebug, "queue timing per compilation"),
		inertBool("PrintInlining", Diagnostic, CatDebug, "inlining decisions per compile"),
		inertBool("PrintIntrinsics", Diagnostic, CatDebug, "intrinsic substitution decisions"),
		inertBool("PrintAssembly", Diagnostic, CatDebug, "disassemble generated code"),
		inertBool("PrintNMethods", Diagnostic, CatDebug, "print nmethods as generated"),
		inertBool("PrintNativeNMethods", Diagnostic, CatDebug, "print native wrappers as generated"),
		inertBool("PrintSignatureHandlers", Diagnostic, CatDebug, "print signature handler stubs"),
		inertBool("PrintStubCode", Diagnostic, CatDebug, "print generated stub code"),
		inertBool("PrintCodeCache", Product, CatDebug, "code cache summary at exit"),
		inertBool("PrintCodeCacheOnCompilation", Product, CatDebug, "code cache summary per compile"),
		inertBool("PrintFlagsFinal", Product, CatDebug, "dump final flag values at startup"),
		inertBool("PrintFlagsInitial", Product, CatDebug, "dump default flag values at startup"),
		inertBool("PrintCommandLineFlags", Product, CatDebug, "print ergonomically-set flags"),
		inertBool("PrintVMOptions", Product, CatDebug, "echo VM options at startup"),
		inertBool("PrintVMQWaitTime", Product, CatDebug, "VM-operation queue wait times"),
		inertBool("PrintSafepointStatistics", Product, CatDebug, "safepoint statistics at exit"),
		inertBool("PrintStringTableStatistics", Product, CatDebug, "string table statistics at exit"),
		inertBool("PrintBiasedLockingStatistics", Product, CatDebug, "biased-locking revocation counters"),
		inertBool("PrintInterpreter", Diagnostic, CatDebug, "print interpreter code at startup"),
		inertBool("PrintSharedSpaces", Product, CatDebug, "CDS space usage"),
		inertBool("TraceClassLoadingPreorder", Product, CatDebug, "classes in load order"),
		inertBool("TraceBiasedLocking", Product, CatDebug, "bias grants and revocations"),
		inertBool("TraceMonitorInflation", Product, CatDebug, "monitor inflation events"),
		inertBool("TraceSafepointCleanupTime", Product, CatDebug, "safepoint cleanup phases"),
		inertBool("VerifyMergedCPBytecodes", Product, CatDebug, "verify merged constant-pool bytecodes"),

		// Dump/abort behaviour.
		inertBool("HeapDumpOnOutOfMemoryError", Product, CatRuntime, "write an hprof dump on OOM"),
		inertBool("HeapDumpBeforeFullGC", Product, CatRuntime, "dump before every full GC"),
		inertBool("HeapDumpAfterFullGC", Product, CatRuntime, "dump after every full GC"),
		inertBool("CrashOnOutOfMemoryError", Product, CatRuntime, "abort and core-dump on OOM"),
		inertBool("CreateMinidumpOnCrash", Product, CatRuntime, "write a minidump on crash"),
		inertBool("ShowMessageBoxOnError", Product, CatRuntime, "suspend for a debugger on error"),
		inertBool("SuppressFatalErrorMessage", Product, CatRuntime, "exit silently on fatal errors"),

		// Policy flags with negligible modeled effect.
		inertBool("UseGCLogFileRotation", Product, CatDebug, "rotate GC log files"),
		inertBool("UseAdaptiveGCBoundary", Product, CatGC, "move the young/old boundary adaptively"),
		inertBool("UseAdaptiveSizePolicyWithSystemGC", Product, CatGC, "feed System.gc() into ergonomics"),
		inertBool("UseAdaptiveSizeDecayMajorGCCost", Product, CatGC, "decay major-GC cost estimates"),
		inertBool("UseAdaptiveSizePolicyFootprintGoal", Product, CatGC, "ergonomics pursues footprint goal"),
		inertBool("UseMaximumCompactionOnSystemGC", Product, CatGC, "full compaction on System.gc()"),
		inertBool("UseParallelDensePrefixUpdate", Product, CatGC, "parallel dense-prefix update in parallel old GC"),
		inertBool("UseSerialGCPromotionFailureHandling", Product, CatGC, "serial handling of promotion failure"),
		inertBool("UseDynamicNumberOfGCThreads", Product, CatGC, "vary GC worker count per phase"),
		inertBool("AlwaysTenure", Product, CatHeap, "promote every scavenge survivor immediately"),
		inertBool("NeverTenure", Product, CatHeap, "never promote while survivor space suffices"),
		inertBool("AlwaysActAsServerClassMachine", Product, CatRuntime, "force server-class ergonomics"),
		inertBool("AggressiveHeap", Product, CatHeap, "preset heap flags for large machines"),
		inertBool("UseSharedSpaces", Product, CatRuntime, "map the CDS archive"),
		inertBool("RequireSharedSpaces", Product, CatRuntime, "fail unless CDS maps"),
		inertBool("RestoreMXCSROnJNICalls", Product, CatRuntime, "restore MXCSR on JNI returns"),
		inertBool("CheckJNICalls", Product, CatRuntime, "verify JNI argument validity"),
		inertBool("LazyBootClassLoader", Product, CatRuntime, "open boot classpath jars lazily"),
		inertBool("EagerXrunInit", Product, CatRuntime, "initialize -Xrun libraries eagerly"),
		inertBool("PreferInterpreterNativeStubs", Product, CatJIT, "interpreter entries for natives"),
		inertBool("UseInlineCaches", Product, CatJIT, "inline caches for virtual calls"),
		inertBool("UseOnStackReplacement", Product, CatJIT, "compile loops mid-execution"),
		inertBool("UseCompilerSafepoints", Product, CatJIT, "poll for safepoints in compiled loops"),
		inertBool("CIPrintCompilerName", Diagnostic, CatDebug, "compiler name on CI log lines"),
		inertBool("CITime", Product, CatDebug, "accumulate JIT compilation time"),
		inertBool("DontCompileHugeMethods", Product, CatJIT, "skip methods over HugeMethodLimit"),
		inertBool("DeoptimizeALot", Develop, CatJIT, "stress deoptimization paths"),
		inertBool("VerifyOops", Develop, CatDebug, "verify object pointers on access"),
		inertBool("VerifyStack", Develop, CatDebug, "verify stack frames at transitions"),
		inertBool("VerifyBeforeGC", Diagnostic, CatDebug, "verify the heap before each GC"),
		inertBool("VerifyAfterGC", Diagnostic, CatDebug, "verify the heap after each GC"),
		inertBool("VerifyDuringGC", Diagnostic, CatDebug, "verify the heap during concurrent GC"),
		inertBool("VerifyRememberedSets", Diagnostic, CatDebug, "verify remembered-set consistency"),
		inertBool("VerifyObjectStartArray", Diagnostic, CatDebug, "verify the object start array"),
		inertBool("ZeroTLAB", Product, CatHeap, "zero TLABs when allocated"),
		inertBool("FastTLABRefill", Product, CatHeap, "compiled fast path refills TLABs"),
		inertBool("UseAutoGCSelectPolicy", Product, CatGC, "pick a collector from pause goals"),
		inertBool("ExtendedDTraceProbes", Product, CatRuntime, "enable costly DTrace probes"),
		inertBool("DTraceMethodProbes", Product, CatRuntime, "method-entry/exit probes"),
		inertBool("DTraceAllocProbes", Product, CatRuntime, "allocation probes"),
		inertBool("DTraceMonitorProbes", Product, CatRuntime, "monitor probes"),
		inertBool("RelaxAccessControlCheck", Product, CatRuntime, "relax verifier access checks"),
		inertBool("UseSplitVerifier", Product, CatRuntime, "split-time bytecode verifier"),
		inertBool("FailOverToOldVerifier", Product, CatRuntime, "fall back to the old verifier"),
		inertBool("UseVMInterruptibleIO", Product, CatRuntime, "interruptible IO on Solaris"),
		inertBool("UseLWPSynchronization", Product, CatThreads, "LWP-based synchronization on Solaris"),
		inertBool("UseBoundThreads", Product, CatThreads, "bind user threads to kernel threads"),
		inertBool("UseAltSigs", Product, CatRuntime, "alternate signals instead of SIGUSR1/2"),
		inertBool("UseOprofile", Product, CatDebug, "oprofile JIT support"),
		inertBool("UseLinuxPosixThreadCPUClocks", Product, CatThreads, "fast per-thread CPU clocks"),
		inertBool("UseHugeTLBFS", Product, CatHeap, "hugetlbfs-backed large pages"),
		inertBool("UseSHM", Product, CatHeap, "SysV SHM large pages"),
		inertBool("UseMembar", Product, CatThreads, "real memory barriers instead of pseudo-membar"),
		inertBool("ManagementServer", Product, CatRuntime, "start the JMX management agent"),
		inertBool("DisableAttachMechanism", Product, CatRuntime, "refuse jcmd/jstack attach"),
		inertBool("StartAttachListener", Product, CatRuntime, "start the attach listener eagerly"),
		inertBool("EnableDynamicAgentLoading", Product, CatRuntime, "allow agents to attach at runtime"),
		inertBool("PerfDisableSharedMem", Product, CatRuntime, "keep perf data off shared memory"),
		inertBool("PerfBypassFileSystemCheck", Product, CatRuntime, "skip hsperfdata directory checks"),
		inertBool("UsePopCountInstruction", Product, CatJIT, "hardware population count"),
		inertBool("UseNewLongLShift", Product, CatJIT, "optimized long left-shift"),
		inertBool("UseAddressNop", Product, CatJIT, "multi-byte nops for code alignment"),
		inertBool("UseXmmLoadAndClearUpper", Product, CatJIT, "XMM loads clear upper halves"),
		inertBool("UseXmmRegToRegMoveAll", Product, CatJIT, "full-width XMM register moves"),
		inertBool("UseUnalignedLoadStores", Product, CatJIT, "SSE unaligned block moves"),
		inertBool("UseCLMUL", Product, CatJIT, "carry-less multiply for CRC32"),
		inertBool("UseAES", Product, CatJIT, "AES-NI intrinsics"),
		inertBool("UseAESIntrinsics", Product, CatJIT, "compiler AES intrinsics"),
		inertBool("UseSSE42Intrinsics", Product, CatJIT, "SSE4.2 string intrinsics"),
		inertBool("UseVectoredExceptions", Product, CatRuntime, "vectored exception handling"),

		// Numeric policy knobs kept inert (their modeled cousins carry the
		// effect; these exist so the space is realistically wide).
		inertInt("GCHeapFreeLimit", Product, CatGC, 2, 0, 100, "min free heap percent before OOM from overhead limit"),
		inertInt("GCTimeLimit", Product, CatGC, 98, 0, 100, "max GC time percent before OOM from overhead limit"),
		inertInt("SoftRefLRUPolicyMSPerMB", Product, CatGC, 1000, 0, 100000, "soft reference lifetime per free MB"),
		inertInt("StringTableSize", Product, CatRuntime, 1009, 101, 1000003, "interned string hash buckets"),
		inertInt("PerfDataMemorySize", Product, CatRuntime, 32*kb, 4*kb, 1*mb, "jvmstat counter segment size"),
		inertInt("PerfDataSamplingInterval", Product, CatRuntime, 50, 1, 10000, "jvmstat sampling period (ms)"),
		inertInt("MaxDirectMemorySize", Product, CatHeap, 0, 0, 8*gb, "NIO direct buffer limit (0 = heap-sized)"),
		inertInt("ObjectAlignmentInBytes", Product, CatHeap, 8, 8, 256, "object alignment"),
		inertInt("MarkSweepDeadRatio", Product, CatGC, 5, 0, 100, "dead space tolerated per region in mark-sweep"),
		inertInt("MarkSweepAlwaysCompactCount", Product, CatGC, 4, 1, 64, "full GCs between clearing compaction skipping"),
		inertInt("ParGCArrayScanChunk", Product, CatGC, 50, 1, 10000, "array chunking granularity in parallel scans"),
		inertInt("ParallelGCBufferWastePct", Product, CatGC, 10, 0, 100, "tolerated promotion-buffer waste"),
		inertInt("YoungPLABSize", Product, CatGC, 4096, 256, 1<<20, "young promotion-buffer size (words)"),
		inertInt("OldPLABSize", Product, CatGC, 1024, 16, 1<<20, "old promotion-buffer size (words)"),
		inertInt("MinHeapDeltaBytes", Product, CatHeap, 128*kb, 0, 64*mb, "min heap resize step"),
		inertInt("LargePageSizeInBytes", Product, CatHeap, 0, 0, 1*gb, "large page size override"),
		inertInt("StackYellowPages", Product, CatThreads, 2, 1, 16, "yellow guard zone pages"),
		inertInt("StackRedPages", Product, CatThreads, 1, 1, 16, "red guard zone pages"),
		inertInt("StackShadowPages", Product, CatThreads, 6, 1, 64, "shadow pages for native frames"),
		inertInt("VMThreadStackSize", Product, CatThreads, 512, 64, 8192, "VM thread stack (KB)"),
		inertInt("CompilerThreadStackSize", Product, CatThreads, 0, 0, 8192, "compiler thread stack (KB)"),
		inertInt("SafepointTimeoutDelay", Product, CatRuntime, 10000, 100, 120000, "safepoint timeout (ms)"),
		inertInt("GuaranteedSafepointInterval", Diagnostic, CatRuntime, 1000, 0, 60000, "max interval between safepoints (ms)"),
		inertInt("BiasedLockingBulkRebiasThreshold", Product, CatThreads, 20, 1, 1000, "revocations before bulk rebias"),
		inertInt("BiasedLockingBulkRevokeThreshold", Product, CatThreads, 40, 1, 1000, "revocations before bulk revoke"),
		inertInt("BiasedLockingDecayTime", Product, CatThreads, 25000, 500, 120000, "bulk-rebias decay time (ms)"),
		inertInt("HugeMethodLimit", Develop, CatJIT, 8000, 1000, 64000, "bytecode size beyond which methods are not compiled"),
		inertInt("MaxNodeLimit", Develop, CatJIT, 80000, 1000, 1<<20, "C2 ideal-graph node budget"),
		inertInt("NodeCountInliningCutoff", Develop, CatInline, 18000, 1000, 1<<20, "C2 node count that stops inlining"),
		inertInt("LiveNodeCountInliningCutoff", Product, CatInline, 40000, 1000, 1<<20, "C2 live node count that stops inlining"),
		inertInt("MinInliningThreshold", Product, CatInline, 250, 0, 10000, "min invocations before inlining"),
		inertInt("InlineFrequencyCount", Develop, CatInline, 100, 1, 10000, "call-site frequency considered hot"),
		inertInt("CompileCommandLineLimit", Develop, CatJIT, 1024, 64, 16384, "max .hotspot_compiler line length"),
		inertInt("OSROnlyBCI", Develop, CatJIT, -1, -1, 1<<20, "restrict OSR to one bci (-1 = all)"),
		inertInt("InterpreterSizeLimit", Develop, CatRuntime, 256*kb, 64*kb, 4*mb, "interpreter code budget"),
		inertInt("NMethodSizeLimit", Develop, CatJIT, 256*kb, 4*kb, 4*mb, "max nmethod size"),
		inertInt("TypeProfileWidth", Product, CatJIT, 2, 0, 8, "receiver types recorded per call site"),
		inertInt("BciProfileWidth", Develop, CatJIT, 2, 0, 8, "bcis recorded per profile slot"),
		inertInt("PerMethodRecompilationCutoff", Product, CatJIT, 400, -1, 100000, "recompiles allowed per method"),
		inertInt("PerBytecodeRecompilationCutoff", Product, CatJIT, 200, -1, 100000, "recompiles allowed per bytecode"),
		inertInt("ProfileMaturityPercentage", Product, CatJIT, 20, 0, 100, "profile maturity before C2 trusts it"),
		inertInt("GCLogFileSize", Product, CatDebug, 8*kb, 0, 1*gb, "GC log rotation size"),
		inertInt("NumberOfGCLogFiles", Product, CatDebug, 1, 1, 100, "GC log rotation count"),
		inertInt("MaxJavaStackTraceDepth", Product, CatRuntime, 1024, 0, 1<<20, "frames captured in stack traces"),
		inertInt("PreBlockSpin", Product, CatThreads, 10, 0, 1000, "spin iterations before blocking"),
		inertInt("ReadSpinIterations", Product, CatThreads, 100, 0, 10000, "read-lock spin iterations"),
		inertInt("MonitorBound", Product, CatThreads, 0, 0, 1<<20, "monitor population bound (0 = none)"),
		inertInt("ClearFPUAtPark", Product, CatThreads, 0, 0, 2, "FPU clearing policy at park"),
		inertInt("hashCode", Product, CatRuntime, 0, 0, 5, "identity hash generation algorithm"),
	}
	defs = append(defs, named...)
	defs = append(defs, inertCatalogExtra()...)

	// Generated develop/diagnostic families: Print/Trace/Verify/Check/Log/
	// Profile per VM component. A few generated names coincide with real
	// flags listed above (PrintCompilation, CheckJNICalls, …); the
	// hand-written definition wins.
	taken := make(map[string]bool, len(defs))
	for _, f := range defs {
		taken[f.Name] = true
	}
	for _, fam := range flagFamilies {
		for _, comp := range vmComponents {
			name := fam.prefix + comp
			if taken[name] {
				continue
			}
			taken[name] = true
			defs = append(defs, inertBool(name, fam.kind, CatDebug,
				fam.prefix+" instrumentation for "+comp))
		}
	}
	return defs
}
