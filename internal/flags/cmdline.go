package flags

import (
	"fmt"
	"strconv"
	"strings"
)

// CommandLine renders the non-default assignments of c as java-style
// arguments: -XX:+Flag / -XX:-Flag for booleans and -XX:Flag=value for
// integers and enums. Byte-valued flags use the shortest exact k/m/g suffix.
// The slice is sorted (by flag name) and deterministic.
//
// Experimental flags are preceded by -XX:+UnlockExperimentalVMOptions and
// diagnostic flags by -XX:+UnlockDiagnosticVMOptions, exactly once, as a
// real launch would require.
//
// This is the human-facing minimal form: explicit assignments that equal
// the flag's default are omitted. It preserves the configuration's
// canonical key but NOT its explicit-assignment set — and the VM
// distinguishes the two (an explicit -XX:+UseParallelGC conflicts with
// -XX:+UseG1GC even though parallel is the default). Transports that must
// reproduce behavior exactly use ExplicitArgs instead.
func (c *Config) CommandLine() []string { return c.renderArgs(false) }

// ExplicitArgs renders EVERY explicitly assigned flag of c, including
// assignments that equal the flag's default, in the same java-style form
// as CommandLine. This is the full-fidelity transport encoding: parsing
// it back with ParseArgs reproduces both the effective values and the
// explicit-assignment set, so explicitness-dependent VM behavior
// (collector conflicts, engaged inert flags) survives the trip. The
// subprocess runner and the distributed evaluation plane ship configs in
// this form.
func (c *Config) ExplicitArgs() []string { return c.renderArgs(true) }

func (c *Config) renderArgs(includeDefaults bool) []string {
	var args []string
	needExperimental, needDiagnostic := false, false
	c.EachExplicit(func(f *Flag, v Value) {
		if !includeDefaults && v.Equal(f.Type, f.Default) {
			return
		}
		switch f.Kind {
		case Experimental:
			needExperimental = true
		case Diagnostic:
			needDiagnostic = true
		}
		switch f.Type {
		case Bool:
			sign := "-"
			if v.B {
				sign = "+"
			}
			args = append(args, "-XX:"+sign+f.Name)
		case Int:
			args = append(args, fmt.Sprintf("-XX:%s=%s", f.Name, renderInt(f, v.I)))
		case Enum:
			args = append(args, fmt.Sprintf("-XX:%s=%s", f.Name, v.S))
		}
	})
	var prefix []string
	if needExperimental {
		prefix = append(prefix, "-XX:+UnlockExperimentalVMOptions")
	}
	if needDiagnostic {
		prefix = append(prefix, "-XX:+UnlockDiagnosticVMOptions")
	}
	return append(prefix, args...)
}

func renderInt(f *Flag, v int64) string {
	if f.Unit == Bytes {
		switch {
		case v != 0 && v%(1<<30) == 0:
			return strconv.FormatInt(v>>30, 10) + "g"
		case v != 0 && v%(1<<20) == 0:
			return strconv.FormatInt(v>>20, 10) + "m"
		case v != 0 && v%(1<<10) == 0:
			return strconv.FormatInt(v>>10, 10) + "k"
		}
	}
	return strconv.FormatInt(v, 10)
}

// ParseArgs applies java-style arguments to a fresh configuration over reg.
// Supported forms:
//
//	-XX:+Flag      -XX:-Flag      -XX:Flag=value
//	-Xmx<size>     (MaxHeapSize)  -Xms<size> (InitialHeapSize)
//	-Xmn<size>     (NewSize and MaxNewSize)
//	-Xss<size>     (ThreadStackSize, stored in KB as HotSpot does)
//
// Sizes accept optional k/K, m/M, g/G suffixes. Unknown flags and malformed
// values return an error identifying the offending argument, mirroring the
// VM's "Unrecognized VM option" failure mode. The Unlock*VMOptions pseudo
// flags are accepted and ignored (they gate, they don't tune).
func ParseArgs(reg *Registry, args []string) (*Config, error) {
	c := NewConfig(reg)
	if err := ParseArgsInto(c, args); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseArgsInto parses args into an existing configuration, resetting it
// first — the recycling twin of ParseArgs for callers that reuse scratch
// Configs via Registry.AcquireConfig. On error the config's contents are
// undefined and it must be reset (or released) before reuse.
func ParseArgsInto(c *Config, args []string) error {
	c.Reset()
	for _, a := range args {
		if err := c.applyArg(a); err != nil {
			return err
		}
	}
	return nil
}

func (c *Config) applyArg(a string) error {
	switch {
	case strings.HasPrefix(a, "-XX:"):
		return c.applyXX(a[len("-XX:"):], a)
	case strings.HasPrefix(a, "-Xmx"):
		return c.applySize("MaxHeapSize", a[len("-Xmx"):], a, 1)
	case strings.HasPrefix(a, "-Xms"):
		return c.applySize("InitialHeapSize", a[len("-Xms"):], a, 1)
	case strings.HasPrefix(a, "-Xmn"):
		if err := c.applySize("NewSize", a[len("-Xmn"):], a, 1); err != nil {
			return err
		}
		return c.applySize("MaxNewSize", a[len("-Xmn"):], a, 1)
	case strings.HasPrefix(a, "-Xss"):
		// ThreadStackSize is kept in KB, as in HotSpot.
		return c.applySize("ThreadStackSize", a[len("-Xss"):], a, 1024)
	default:
		return fmt.Errorf("flags: unrecognized option %q", a)
	}
}

func (c *Config) applyXX(body, orig string) error {
	if body == "" {
		return fmt.Errorf("flags: malformed option %q", orig)
	}
	switch body[0] {
	case '+', '-':
		name := body[1:]
		if name == "UnlockExperimentalVMOptions" || name == "UnlockDiagnosticVMOptions" {
			return nil
		}
		id := c.reg.ID(name)
		if id == NoID {
			return unknownFlag(name, "flags: unrecognized VM option %q", name)
		}
		if c.reg.byID[id].Type != Bool {
			return fmt.Errorf("flags: %s is not a boolean flag (%q)", name, orig)
		}
		c.putID(id, BoolValue(body[0] == '+'))
		return nil
	}
	eq := strings.IndexByte(body, '=')
	if eq < 0 {
		return fmt.Errorf("flags: malformed option %q", orig)
	}
	name, raw := body[:eq], body[eq+1:]
	id := c.reg.ID(name)
	if id == NoID {
		return unknownFlag(name, "flags: unrecognized VM option %q", name)
	}
	switch c.reg.byID[id].Type {
	case Int:
		v, err := parseSize(raw)
		if err != nil {
			return fmt.Errorf("flags: bad value for %s in %q: %v", name, orig, err)
		}
		return c.SetID(id, IntValue(v))
	case Enum:
		return c.SetID(id, EnumValue(raw))
	case Bool:
		switch raw {
		case "true":
			c.putID(id, BoolValue(true))
			return nil
		case "false":
			c.putID(id, BoolValue(false))
			return nil
		}
		return fmt.Errorf("flags: bad boolean value for %s in %q", name, orig)
	}
	return fmt.Errorf("flags: %s has unknown type", name)
}

func (c *Config) applySize(name, raw, orig string, divisor int64) error {
	v, err := parseSize(raw)
	if err != nil {
		return fmt.Errorf("flags: bad size in %q: %v", orig, err)
	}
	f := c.reg.Lookup(name)
	if f == nil {
		return fmt.Errorf("flags: option %q maps to unknown flag %s", orig, name)
	}
	return c.Set(name, IntValue(v/divisor))
}

// parseSize parses an integer with an optional k/m/g suffix (case
// insensitive).
func parseSize(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}
