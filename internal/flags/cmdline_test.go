package flags

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCommandLineRendering(t *testing.T) {
	r := NewRegistry()
	c := NewConfig(r)
	c.SetBool("UseG1GC", true)
	c.SetBool("UseParallelGC", false)
	c.SetInt("MaxHeapSize", 1<<30)
	c.SetInt("CompileThreshold", 1500)
	got := c.CommandLine()
	want := []string{
		"-XX:CompileThreshold=1500",
		"-XX:MaxHeapSize=1g",
		"-XX:+UseG1GC",
		"-XX:-UseParallelGC",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CommandLine = %v, want %v", got, want)
	}
}

func TestCommandLineOmitsDefaults(t *testing.T) {
	r := NewRegistry()
	c := NewConfig(r)
	c.SetBool("UseParallelGC", true) // explicit, but equal to default
	if got := c.CommandLine(); len(got) != 0 {
		t.Errorf("default-valued assignment rendered: %v", got)
	}
}

func TestCommandLineByteSuffixes(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		bytes int64
		want  string
	}{
		{1 << 30, "-XX:MaxHeapSize=1g"},
		{768 << 20, "-XX:MaxHeapSize=768m"},
		{2 << 30, "-XX:MaxHeapSize=2g"},
	}
	for _, cse := range cases {
		c := NewConfig(r)
		c.SetInt("MaxHeapSize", cse.bytes)
		got := c.CommandLine()
		if len(got) != 1 || got[0] != cse.want {
			t.Errorf("MaxHeapSize=%d rendered %v, want %s", cse.bytes, got, cse.want)
		}
	}
}

func TestCommandLineUnlockPrefixes(t *testing.T) {
	r, err := NewCustomRegistry([]Flag{
		{Name: "Exp", Type: Bool, Kind: Experimental, Default: BoolValue(false)},
		{Name: "Diag", Type: Bool, Kind: Diagnostic, Default: BoolValue(false)},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConfig(r)
	c.SetBool("Exp", true)
	c.SetBool("Diag", true)
	got := c.CommandLine()
	want := []string{
		"-XX:+UnlockExperimentalVMOptions",
		"-XX:+UnlockDiagnosticVMOptions",
		"-XX:+Diag",
		"-XX:+Exp",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CommandLine = %v, want %v", got, want)
	}
}

func TestParseArgsBooleans(t *testing.T) {
	r := NewRegistry()
	c, err := ParseArgs(r, []string{"-XX:+UseG1GC", "-XX:-UseParallelGC"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Bool("UseG1GC") || c.Bool("UseParallelGC") {
		t.Error("boolean parse mismatch")
	}
}

func TestParseArgsValues(t *testing.T) {
	r := NewRegistry()
	c, err := ParseArgs(r, []string{
		"-XX:MaxHeapSize=2g",
		"-XX:CompileThreshold=2500",
		"-XX:NewRatio=3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Int("MaxHeapSize") != 2<<30 {
		t.Errorf("MaxHeapSize = %d", c.Int("MaxHeapSize"))
	}
	if c.Int("CompileThreshold") != 2500 || c.Int("NewRatio") != 3 {
		t.Error("int value parse mismatch")
	}
}

func TestParseArgsXAliases(t *testing.T) {
	r := NewRegistry()
	c, err := ParseArgs(r, []string{"-Xmx1g", "-Xms256m", "-Xmn128m", "-Xss1m"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Int("MaxHeapSize") != 1<<30 {
		t.Errorf("-Xmx: %d", c.Int("MaxHeapSize"))
	}
	if c.Int("InitialHeapSize") != 256<<20 {
		t.Errorf("-Xms: %d", c.Int("InitialHeapSize"))
	}
	if c.Int("NewSize") != 128<<20 || c.Int("MaxNewSize") != 128<<20 {
		t.Error("-Xmn should set both NewSize and MaxNewSize")
	}
	if c.Int("ThreadStackSize") != 1024 {
		t.Errorf("-Xss1m should store 1024 KB, got %d", c.Int("ThreadStackSize"))
	}
}

func TestParseArgsBoolEquals(t *testing.T) {
	r := NewRegistry()
	c, err := ParseArgs(r, []string{"-XX:UseG1GC=true", "-XX:UseParallelGC=false"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Bool("UseG1GC") || c.Bool("UseParallelGC") {
		t.Error("Flag=true/false form not honored")
	}
	if _, err := ParseArgs(r, []string{"-XX:UseG1GC=maybe"}); err == nil {
		t.Error("bad boolean literal accepted")
	}
}

func TestParseArgsUnlockIgnored(t *testing.T) {
	r := NewRegistry()
	c, err := ParseArgs(r, []string{"-XX:+UnlockExperimentalVMOptions", "-XX:+UnlockDiagnosticVMOptions"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ExplicitNames()) != 0 {
		t.Error("unlock pseudo-flags should not create assignments")
	}
}

func TestParseArgsErrors(t *testing.T) {
	r := NewRegistry()
	bad := [][]string{
		{"-XX:+NoSuchFlag"},
		{"-XX:NoSuchFlag=1"},
		{"-XX:MaxHeapSize=abc"},
		{"-XX:MaxHeapSize=999999g"}, // out of domain
		{"-XX:"},
		{"-XX:MaxHeapSize"}, // missing =
		{"-Xmxlots"},
		{"--heap=1g"},
		{"-XX:+CompileThreshold"}, // bool syntax on int flag
	}
	for _, args := range bad {
		if _, err := ParseArgs(r, args); err == nil {
			t.Errorf("ParseArgs(%v) should fail", args)
		}
	}
}

func TestRoundTripRenderParse(t *testing.T) {
	r := NewRegistry()
	c := NewConfig(r)
	c.SetBool("UseConcMarkSweepGC", true)
	c.SetBool("UseParallelGC", false)
	c.SetBool("UseParNewGC", true)
	c.SetInt("MaxHeapSize", 1536<<20)
	c.SetInt("SurvivorRatio", 4)
	c.SetInt("CMSInitiatingOccupancyFraction", 75)
	c.SetBool("TieredCompilation", true)

	parsed, err := ParseArgs(r, c.CommandLine())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Key() != c.Key() {
		t.Errorf("round trip changed config:\n  in:  %s\n  out: %s", c.Key(), parsed.Key())
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"123", 123, true},
		{"1k", 1024, true},
		{"2K", 2048, true},
		{"3m", 3 << 20, true},
		{"4G", 4 << 30, true},
		{"", 0, false},
		{"k", 0, false},
		{"1.5g", 0, false},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseSize(%q) should fail", c.in)
		}
	}
}

func TestExplicitArgsKeepForcedDefaults(t *testing.T) {
	r := NewRegistry()
	c := NewConfig(r)
	c.SetBool("UseParallelGC", true) // explicit, equal to default
	c.SetBool("UseG1GC", true)
	got := c.ExplicitArgs()
	want := []string{"-XX:+UseG1GC", "-XX:+UseParallelGC"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExplicitArgs = %v, want %v", got, want)
	}
	// The minimal form still drops the forced default.
	if min := c.CommandLine(); !reflect.DeepEqual(min, []string{"-XX:+UseG1GC"}) {
		t.Errorf("CommandLine = %v, want just -XX:+UseG1GC", min)
	}
}

// Property: ExplicitArgs round-trips the explicit-assignment set exactly,
// not just the canonical key — the fidelity the subprocess runner and the
// distributed evaluation plane depend on.
func TestExplicitArgsRoundTripsExplicitness(t *testing.T) {
	reg := NewRegistry()
	names := reg.TunableNames()
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		c := NewConfig(reg)
		n := 1 + rng.Intn(24)
		for i := 0; i < n; i++ {
			name := names[rng.Intn(len(names))]
			c.put(name, SampleValue(reg.Lookup(name), rng))
		}
		parsed, err := ParseArgs(reg, c.ExplicitArgs())
		if err != nil {
			t.Fatalf("trial %d: cannot parse own rendering: %v", trial, err)
		}
		if parsed.Key() != c.Key() {
			t.Fatalf("trial %d: key changed: %q vs %q", trial, parsed.Key(), c.Key())
		}
		if got, want := parsed.ExplicitNames(), c.ExplicitNames(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: explicit set changed\n in: %v\nout: %v", trial, want, got)
		}
		for _, name := range c.ExplicitNames() {
			av, _ := c.Get(name)
			bv, _ := parsed.Get(name)
			if f := reg.Lookup(name); !av.Equal(f.Type, bv) {
				t.Fatalf("trial %d: %s changed value across the wire", trial, name)
			}
		}
	}
}
