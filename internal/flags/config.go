package flags

import (
	"fmt"
	"sort"
	"strings"
)

// Config is a concrete assignment of values to flags in one registry.
// Flags not explicitly set take their registry defaults; Get resolves that
// transparently. Config is not safe for concurrent mutation; the tuner
// clones before handing configs to worker goroutines.
type Config struct {
	reg    *Registry
	values map[string]Value
}

// NewConfig returns an empty configuration (all defaults) over reg.
func NewConfig(reg *Registry) *Config {
	return &Config{reg: reg, values: make(map[string]Value)}
}

// Registry returns the registry this configuration is bound to.
func (c *Config) Registry() *Registry { return c.reg }

// Set assigns v to the named flag, validating both the name and the domain.
func (c *Config) Set(name string, v Value) error {
	f := c.reg.Lookup(name)
	if f == nil {
		return fmt.Errorf("flags: unknown flag %s", name)
	}
	if err := f.Validate(v); err != nil {
		return err
	}
	c.values[name] = v
	return nil
}

// SetBool assigns a boolean flag. It panics on unknown names or type
// mismatches, which are programming errors in callers that hard-code names.
func (c *Config) SetBool(name string, b bool) {
	c.mustSet(name, Bool, BoolValue(b))
}

// SetInt assigns an integer flag, clamping into the flag's domain.
func (c *Config) SetInt(name string, i int64) {
	f := c.mustLookup(name, Int)
	c.values[name] = f.Clamp(IntValue(i))
}

// SetEnum assigns an enum flag. It panics on an unknown choice.
func (c *Config) SetEnum(name, choice string) {
	c.mustSet(name, Enum, EnumValue(choice))
}

func (c *Config) mustLookup(name string, t Type) *Flag {
	f := c.reg.Lookup(name)
	if f == nil {
		panic(fmt.Sprintf("flags: unknown flag %s", name))
	}
	if f.Type != t {
		panic(fmt.Sprintf("flags: %s is %v, not %v", name, f.Type, t))
	}
	return f
}

func (c *Config) mustSet(name string, t Type, v Value) {
	f := c.mustLookup(name, t)
	if err := f.Validate(v); err != nil {
		panic(err.Error())
	}
	c.values[name] = v
}

// Get returns the effective value of name (explicit or default) and whether
// the flag exists.
func (c *Config) Get(name string) (Value, bool) {
	f := c.reg.Lookup(name)
	if f == nil {
		return Value{}, false
	}
	if v, ok := c.values[name]; ok {
		return v, true
	}
	return f.Default, true
}

// Bool returns the effective boolean value of name.
// It panics on unknown names or type mismatches.
func (c *Config) Bool(name string) bool {
	c.mustLookup(name, Bool)
	v, _ := c.Get(name)
	return v.B
}

// Int returns the effective integer value of name.
// It panics on unknown names or type mismatches.
func (c *Config) Int(name string) int64 {
	c.mustLookup(name, Int)
	v, _ := c.Get(name)
	return v.I
}

// Enum returns the effective enum value of name.
// It panics on unknown names or type mismatches.
func (c *Config) Enum(name string) string {
	c.mustLookup(name, Enum)
	v, _ := c.Get(name)
	return v.S
}

// IsExplicit reports whether name was explicitly assigned (as opposed to
// inheriting its default).
func (c *Config) IsExplicit(name string) bool {
	_, ok := c.values[name]
	return ok
}

// Unset removes an explicit assignment, reverting name to its default.
func (c *Config) Unset(name string) {
	delete(c.values, name)
}

// ExplicitNames returns the sorted names of explicitly assigned flags.
func (c *Config) ExplicitNames() []string {
	out := make([]string, 0, len(c.values))
	for n := range c.values {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the configuration.
func (c *Config) Clone() *Config {
	cp := NewConfig(c.reg)
	for n, v := range c.values {
		cp.values[n] = v
	}
	return cp
}

// Key returns a canonical string identifying the *effective* configuration:
// only assignments that differ from the default appear, sorted by name.
// Two configs with equal Keys behave identically; the runner uses Key for
// result caching.
func (c *Config) Key() string {
	var parts []string
	for n, v := range c.values {
		f := c.reg.Lookup(n)
		if v.Equal(f.Type, f.Default) {
			continue
		}
		parts = append(parts, n+"="+v.String(f.Type))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Diff returns, in sorted flag order, the names whose effective values
// differ between c and o. Both configs must share a registry.
func (c *Config) Diff(o *Config) []string {
	if c.reg != o.reg {
		panic("flags: Diff across registries")
	}
	var out []string
	for _, n := range c.reg.Names() {
		f := c.reg.Lookup(n)
		a, _ := c.Get(n)
		b, _ := o.Get(n)
		if !a.Equal(f.Type, b) {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks every explicit assignment against its flag's domain.
// Structural validity only; semantic conflicts (e.g. two collectors
// selected) are the hierarchy's and the VM's business.
func (c *Config) Validate() error {
	for n, v := range c.values {
		f := c.reg.Lookup(n)
		if f == nil {
			return fmt.Errorf("flags: config contains unknown flag %s", n)
		}
		if err := f.Validate(v); err != nil {
			return err
		}
	}
	return nil
}

// String renders the non-default assignments as a human-readable list.
func (c *Config) String() string {
	k := c.Key()
	if k == "" {
		return "<defaults>"
	}
	return k
}
