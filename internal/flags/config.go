package flags

import (
	"fmt"
	"sort"
	"strconv"
)

// UnknownFlagError is the typed validation error for a reference to a flag
// name the registry does not define. It is what network-facing surfaces
// (the tuned HTTP API, the command-line parser) rely on to turn a bogus
// flag name in a submission into a 400 response instead of a panic.
type UnknownFlagError struct {
	// Name is the unknown flag name.
	Name string
	// msg preserves the exact diagnostic of the call site (Set, Validate,
	// ParseArgs) so error text stays byte-stable across refactors.
	msg string
}

// Error implements error.
func (e *UnknownFlagError) Error() string { return e.msg }

// unknownFlag builds an UnknownFlagError with a call-site-specific message.
func unknownFlag(name, format string, args ...any) *UnknownFlagError {
	return &UnknownFlagError{Name: name, msg: fmt.Sprintf(format, args...)}
}

// Config is a concrete assignment of values to flags in one registry,
// packed as a fixed-size value array indexed by flag ID: resolution,
// canonical keys, cloning, validation, and command-line rendering are all
// array walks in ID (= sorted-name) order, with no hashing or sorting on
// the hot path. Flags not explicitly set take their registry defaults; Get
// resolves that transparently. Config is not safe for concurrent mutation;
// the tuner clones before handing configs to worker goroutines.
type Config struct {
	reg      *Registry
	vals     []Value // indexed by ID; meaningful only where explicit
	explicit []bool  // indexed by ID
	ids      []ID    // sorted IDs of explicit assignments; len(ids) == n
	n        int     // number of explicit assignments
	memoKey  string  // Key() memo, valid when memoOK; any write clears it
	memoOK   bool
}

// NewConfig returns an empty configuration (all defaults) over reg.
func NewConfig(reg *Registry) *Config {
	return &Config{
		reg:      reg,
		vals:     make([]Value, reg.Len()),
		explicit: make([]bool, reg.Len()),
	}
}

// Registry returns the registry this configuration is bound to.
func (c *Config) Registry() *Registry { return c.reg }

// Reset returns c to the all-defaults state (no explicit assignments),
// keeping its storage so high-rate parsing paths can recycle one Config
// instead of re-allocating the registry-wide value arrays per use.
func (c *Config) Reset() {
	if c.n > 0 {
		clear(c.vals)
		clear(c.explicit)
		c.ids = c.ids[:0]
		c.n = 0
	}
	c.memoOK = false
	c.memoKey = ""
}

// putID records an explicit assignment without validating it.
func (c *Config) putID(id ID, v Value) {
	if !c.explicit[id] {
		c.explicit[id] = true
		c.n++
		// Keep the explicit-ID list sorted so every canonical walk (keys,
		// args, validation) is O(explicit), not O(registry width). Configs
		// carry a handful of assignments against a ~600-flag catalog, so
		// the insertion is a short memmove, and the width-independent walks
		// are what keep the per-trial hot paths cheap.
		i := sort.Search(len(c.ids), func(j int) bool { return c.ids[j] >= id })
		c.ids = append(c.ids, 0)
		copy(c.ids[i+1:], c.ids[i:])
		c.ids[i] = id
	}
	c.vals[id] = v
	c.memoOK = false
	c.memoKey = ""
}

// put records an explicit assignment by name without validating the value.
// The name must exist in the registry; package-internal callers check first.
func (c *Config) put(name string, v Value) {
	c.putID(c.reg.idOf[name], v)
}

// Set assigns v to the named flag, validating both the name and the domain.
// Unknown names yield an *UnknownFlagError.
func (c *Config) Set(name string, v Value) error {
	id := c.reg.ID(name)
	if id == NoID {
		return unknownFlag(name, "flags: unknown flag %s", name)
	}
	if err := c.reg.byID[id].Validate(v); err != nil {
		return err
	}
	c.putID(id, v)
	return nil
}

// SetID assigns v to the flag with the given ID, validating the domain.
func (c *Config) SetID(id ID, v Value) error {
	if err := c.reg.byID[id].Validate(v); err != nil {
		return err
	}
	c.putID(id, v)
	return nil
}

// SetBool assigns a boolean flag. It panics on unknown names or type
// mismatches, which are programming errors in callers that hard-code names.
func (c *Config) SetBool(name string, b bool) {
	id, _ := c.mustID(name, Bool)
	c.putID(id, BoolValue(b))
}

// SetInt assigns an integer flag, clamping into the flag's domain.
func (c *Config) SetInt(name string, i int64) {
	id, f := c.mustID(name, Int)
	c.putID(id, f.Clamp(IntValue(i)))
}

// SetEnum assigns an enum flag. It panics on an unknown choice.
func (c *Config) SetEnum(name, choice string) {
	id, f := c.mustID(name, Enum)
	v := EnumValue(choice)
	if err := f.Validate(v); err != nil {
		panic(err.Error())
	}
	c.putID(id, v)
}

func (c *Config) mustID(name string, t Type) (ID, *Flag) {
	id := c.reg.ID(name)
	if id == NoID {
		panic(fmt.Sprintf("flags: unknown flag %s", name))
	}
	f := c.reg.byID[id]
	if f.Type != t {
		panic(fmt.Sprintf("flags: %s is %v, not %v", name, f.Type, t))
	}
	return id, f
}

// Get returns the effective value of name (explicit or default) and whether
// the flag exists.
func (c *Config) Get(name string) (Value, bool) {
	id := c.reg.ID(name)
	if id == NoID {
		return Value{}, false
	}
	return c.GetID(id), true
}

// GetID returns the effective value (explicit or default) of the flag with
// the given ID.
func (c *Config) GetID(id ID) Value {
	if c.explicit[id] {
		return c.vals[id]
	}
	return c.reg.byID[id].Default
}

// Bool returns the effective boolean value of name.
// It panics on unknown names or type mismatches.
func (c *Config) Bool(name string) bool {
	id, _ := c.mustID(name, Bool)
	return c.GetID(id).B
}

// Int returns the effective integer value of name.
// It panics on unknown names or type mismatches.
func (c *Config) Int(name string) int64 {
	id, _ := c.mustID(name, Int)
	return c.GetID(id).I
}

// Enum returns the effective enum value of name.
// It panics on unknown names or type mismatches.
func (c *Config) Enum(name string) string {
	id, _ := c.mustID(name, Enum)
	return c.GetID(id).S
}

// IsExplicit reports whether name was explicitly assigned (as opposed to
// inheriting its default).
func (c *Config) IsExplicit(name string) bool {
	id := c.reg.ID(name)
	return id != NoID && c.explicit[id]
}

// Unset removes an explicit assignment, reverting name to its default.
func (c *Config) Unset(name string) {
	id := c.reg.ID(name)
	if id == NoID || !c.explicit[id] {
		return
	}
	c.explicit[id] = false
	c.vals[id] = Value{}
	c.n--
	i := sort.Search(len(c.ids), func(j int) bool { return c.ids[j] >= id })
	c.ids = append(c.ids[:i], c.ids[i+1:]...)
	c.memoOK = false
	c.memoKey = ""
}

// ExplicitNames returns the sorted names of explicitly assigned flags.
func (c *Config) ExplicitNames() []string {
	out := make([]string, 0, c.n)
	for _, id := range c.ids {
		out = append(out, c.reg.names[id])
	}
	return out
}

// EachExplicit calls fn for every explicitly assigned flag in ID (sorted
// name) order, without allocating.
func (c *Config) EachExplicit(fn func(f *Flag, v Value)) {
	if c.n == 0 {
		return
	}
	for _, id := range c.ids {
		fn(c.reg.byID[id], c.vals[id])
	}
}

// Clone returns an independent copy of the configuration.
func (c *Config) Clone() *Config {
	cp := &Config{
		reg:      c.reg,
		vals:     make([]Value, len(c.vals)),
		explicit: make([]bool, len(c.explicit)),
		ids:      append([]ID(nil), c.ids...),
		n:        c.n,
		memoKey:  c.memoKey,
		memoOK:   c.memoOK,
	}
	copy(cp.vals, c.vals)
	copy(cp.explicit, c.explicit)
	return cp
}

// Key returns a canonical string identifying the *effective* configuration:
// only assignments that differ from the default appear, sorted by name.
// Two configs with equal Keys behave identically; the runner uses Key for
// result caching.
//
// The result is memoized until the next write. The first Key call counts as
// a mutation for concurrency purposes: key a config before sharing it across
// goroutines (the session executor does, at proposal time).
func (c *Config) Key() string {
	if c.memoOK {
		return c.memoKey
	}
	if c.n == 0 {
		c.memoOK = true
		return ""
	}
	c.memoKey = string(c.AppendKey(nil))
	c.memoOK = true
	return c.memoKey
}

// AppendKey appends the canonical key (see Key) to dst and returns the
// extended buffer — the allocation-free form for callers that reuse a
// scratch buffer across configurations.
func (c *Config) AppendKey(dst []byte) []byte {
	if c.n == 0 {
		return dst
	}
	first := true
	for _, id := range c.ids {
		f := c.reg.byID[id]
		v := c.vals[id]
		if v.Equal(f.Type, f.Default) {
			continue
		}
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = append(dst, f.Name...)
		dst = append(dst, '=')
		dst = appendValue(dst, f.Type, v)
	}
	return dst
}

// appendValue appends v rendered for type t (matching Value.String) to dst.
func appendValue(dst []byte, t Type, v Value) []byte {
	switch t {
	case Bool:
		if v.B {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case Int:
		return strconv.AppendInt(dst, v.I, 10)
	case Enum:
		return append(dst, v.S...)
	}
	return append(dst, '?')
}

// Diff returns, in sorted flag order, the names whose effective values
// differ between c and o. Both configs must share a registry.
func (c *Config) Diff(o *Config) []string {
	if c.reg != o.reg {
		panic("flags: Diff across registries")
	}
	var out []string
	for id, f := range c.reg.byID {
		if !c.GetID(ID(id)).Equal(f.Type, o.GetID(ID(id))) {
			out = append(out, f.Name)
		}
	}
	return out
}

// Validate checks every explicit assignment against its flag's domain.
// Structural validity only; semantic conflicts (e.g. two collectors
// selected) are the hierarchy's and the VM's business.
func (c *Config) Validate() error {
	if c.n == 0 {
		return nil
	}
	for _, id := range c.ids {
		if err := c.reg.byID[id].Validate(c.vals[id]); err != nil {
			return err
		}
	}
	return nil
}

// String renders the non-default assignments as a human-readable list.
func (c *Config) String() string {
	k := c.Key()
	if k == "" {
		return "<defaults>"
	}
	return k
}
