package flags

import (
	"strings"
	"testing"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewCustomRegistry([]Flag{
		{Name: "B1", Type: Bool, Kind: Product, Default: BoolValue(false)},
		{Name: "B2", Type: Bool, Kind: Product, Default: BoolValue(true)},
		{Name: "I1", Type: Int, Kind: Product, Min: 0, Max: 100, Default: IntValue(10)},
		{Name: "E1", Type: Enum, Kind: Product, Choices: []string{"x", "y", "z"}, Default: EnumValue("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigDefaultsAndSet(t *testing.T) {
	r := testRegistry(t)
	c := NewConfig(r)
	if c.Bool("B1") || !c.Bool("B2") {
		t.Error("defaults not visible through Get")
	}
	if c.Int("I1") != 10 || c.Enum("E1") != "x" {
		t.Error("defaults not visible through typed getters")
	}
	if c.IsExplicit("B1") {
		t.Error("nothing should be explicit yet")
	}
	c.SetBool("B1", true)
	c.SetInt("I1", 55)
	c.SetEnum("E1", "z")
	if !c.Bool("B1") || c.Int("I1") != 55 || c.Enum("E1") != "z" {
		t.Error("explicit values not visible")
	}
	if !c.IsExplicit("B1") {
		t.Error("B1 should be explicit")
	}
	c.Unset("B1")
	if c.Bool("B1") {
		t.Error("Unset should revert to default")
	}
}

func TestConfigSetValidates(t *testing.T) {
	r := testRegistry(t)
	c := NewConfig(r)
	if err := c.Set("NoSuch", IntValue(1)); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := c.Set("I1", IntValue(1000)); err == nil {
		t.Error("out-of-domain value should fail")
	}
	if err := c.Set("I1", IntValue(100)); err != nil {
		t.Errorf("boundary value should pass: %v", err)
	}
}

func TestConfigSetIntClamps(t *testing.T) {
	r := testRegistry(t)
	c := NewConfig(r)
	c.SetInt("I1", 1<<40)
	if c.Int("I1") != 100 {
		t.Errorf("SetInt should clamp, got %d", c.Int("I1"))
	}
	c.SetInt("I1", -5)
	if c.Int("I1") != 0 {
		t.Errorf("SetInt should clamp low, got %d", c.Int("I1"))
	}
}

func TestConfigTypedPanics(t *testing.T) {
	r := testRegistry(t)
	c := NewConfig(r)
	mustPanic(t, "unknown name", func() { c.SetBool("Nope", true) })
	mustPanic(t, "type mismatch set", func() { c.SetBool("I1", true) })
	mustPanic(t, "type mismatch get", func() { c.Int("B1") })
	mustPanic(t, "bad enum choice", func() { c.SetEnum("E1", "nope") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestConfigCloneIndependence(t *testing.T) {
	r := testRegistry(t)
	a := NewConfig(r)
	a.SetInt("I1", 42)
	b := a.Clone()
	b.SetInt("I1", 7)
	b.SetBool("B1", true)
	if a.Int("I1") != 42 || a.Bool("B1") {
		t.Error("mutating the clone changed the original")
	}
	if b.Int("I1") != 7 {
		t.Error("clone lost its own mutation")
	}
}

func TestConfigKeyCanonical(t *testing.T) {
	r := testRegistry(t)
	a := NewConfig(r)
	b := NewConfig(r)
	// Same effective config reached differently must share a key.
	a.SetInt("I1", 42)
	a.SetBool("B1", true)
	b.SetBool("B1", true)
	b.SetInt("I1", 42)
	b.SetBool("B2", true) // explicit but equal to default: must not appear
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if strings.Contains(a.Key(), "B2") {
		t.Error("default-valued assignment leaked into key")
	}
	empty := NewConfig(r)
	if empty.Key() != "" {
		t.Errorf("empty config key = %q", empty.Key())
	}
	if empty.String() != "<defaults>" {
		t.Errorf("empty config String = %q", empty.String())
	}
}

func TestConfigDiff(t *testing.T) {
	r := testRegistry(t)
	a := NewConfig(r)
	b := NewConfig(r)
	if d := a.Diff(b); len(d) != 0 {
		t.Errorf("identical configs diff = %v", d)
	}
	b.SetInt("I1", 99)
	b.SetBool("B2", false)
	d := a.Diff(b)
	if len(d) != 2 || d[0] != "B2" || d[1] != "I1" {
		t.Errorf("diff = %v, want [B2 I1]", d)
	}
	// Explicit-but-default is not a difference.
	b2 := NewConfig(r)
	b2.SetBool("B2", true)
	if d := a.Diff(b2); len(d) != 0 {
		t.Errorf("explicit default should not diff: %v", d)
	}
}

func TestConfigValidate(t *testing.T) {
	r := testRegistry(t)
	c := NewConfig(r)
	c.SetInt("I1", 50)
	if err := c.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Corrupt internals to simulate a stale config.
	c.putID(r.ID("I1"), IntValue(1<<40))
	if err := c.Validate(); err == nil {
		t.Error("corrupted config accepted")
	}
}

func TestExplicitNamesSorted(t *testing.T) {
	r := testRegistry(t)
	c := NewConfig(r)
	c.SetEnum("E1", "y")
	c.SetBool("B1", true)
	c.SetInt("I1", 3)
	got := c.ExplicitNames()
	want := []string{"B1", "E1", "I1"}
	if len(got) != len(want) {
		t.Fatalf("ExplicitNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExplicitNames = %v, want %v", got, want)
		}
	}
}

func TestDefaultConfigMatchesRegistry(t *testing.T) {
	r := NewRegistry()
	d := r.DefaultConfig()
	for _, n := range r.Names() {
		f := r.Lookup(n)
		v, ok := d.Get(n)
		if !ok || !v.Equal(f.Type, f.Default) {
			t.Errorf("DefaultConfig: %s = %v, want default", n, v)
		}
	}
	// Although every flag is explicit, the key must still be empty: nothing
	// differs from defaults.
	if d.Key() != "" {
		t.Errorf("DefaultConfig key = %q, want empty", d.Key())
	}
}
