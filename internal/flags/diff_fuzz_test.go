package flags

import (
	"sort"
	"strings"
	"testing"
)

// This file is the packed↔map differential oracle. The packed Config (a
// value array indexed by flag ID) replaced the original map[string]Value
// representation wholesale; the checkpoint format, the traces, and the
// runner cache all key off Config.Key(), so the two representations must
// agree byte-for-byte on every observable. mapConfig below is a faithful
// replica of the retired map implementation, and the fuzz target drives
// both through parsing, key canonicalization, command-line rendering, and
// validation on arbitrary inputs.

// mapConfig is the reference map-based configuration.
type mapConfig struct {
	reg    *Registry
	values map[string]Value
}

func newMapConfig(reg *Registry) *mapConfig {
	return &mapConfig{reg: reg, values: make(map[string]Value)}
}

func (c *mapConfig) set(name string, v Value) error {
	f := c.reg.Lookup(name)
	if f == nil {
		return unknownFlag(name, "flags: unknown flag %s", name)
	}
	if err := f.Validate(v); err != nil {
		return err
	}
	c.values[name] = v
	return nil
}

func (c *mapConfig) explicitNames() []string {
	out := make([]string, 0, len(c.values))
	for n := range c.values {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// key mirrors the retired map-based Config.Key: sorted non-default
// "name=value" pairs joined by commas.
func (c *mapConfig) key() string {
	var parts []string
	for _, n := range c.explicitNames() {
		f := c.reg.Lookup(n)
		v := c.values[n]
		if v.Equal(f.Type, f.Default) {
			continue
		}
		parts = append(parts, n+"="+v.String(f.Type))
	}
	return strings.Join(parts, ",")
}

// commandLine mirrors the retired map-based Config.CommandLine.
func (c *mapConfig) commandLine() []string {
	var args []string
	needExperimental, needDiagnostic := false, false
	for _, n := range c.explicitNames() {
		f := c.reg.Lookup(n)
		v := c.values[n]
		if v.Equal(f.Type, f.Default) {
			continue
		}
		switch f.Kind {
		case Experimental:
			needExperimental = true
		case Diagnostic:
			needDiagnostic = true
		}
		switch f.Type {
		case Bool:
			sign := "-"
			if v.B {
				sign = "+"
			}
			args = append(args, "-XX:"+sign+n)
		case Int:
			args = append(args, "-XX:"+n+"="+renderInt(f, v.I))
		case Enum:
			args = append(args, "-XX:"+n+"="+v.S)
		}
	}
	var prefix []string
	if needExperimental {
		prefix = append(prefix, "-XX:+UnlockExperimentalVMOptions")
	}
	if needDiagnostic {
		prefix = append(prefix, "-XX:+UnlockDiagnosticVMOptions")
	}
	return append(prefix, args...)
}

func (c *mapConfig) validate() error {
	for _, n := range c.explicitNames() {
		f := c.reg.Lookup(n)
		if f == nil {
			return unknownFlag(n, "flags: config contains unknown flag %s", n)
		}
		if err := f.Validate(c.values[n]); err != nil {
			return err
		}
	}
	return nil
}

// applyArgs mirrors the retired map-based ParseArgs semantics (including
// which forms bypassed Set's domain validation) closely enough to parse
// everything the real parser accepts. It returns the first error.
func (c *mapConfig) applyArgs(args []string) error {
	for _, a := range args {
		var err error
		switch {
		case strings.HasPrefix(a, "-XX:"):
			err = c.applyXX(a[len("-XX:"):], a)
		case strings.HasPrefix(a, "-Xmx"):
			err = c.applySize("MaxHeapSize", a[len("-Xmx"):], 1)
		case strings.HasPrefix(a, "-Xms"):
			err = c.applySize("InitialHeapSize", a[len("-Xms"):], 1)
		case strings.HasPrefix(a, "-Xmn"):
			if err = c.applySize("NewSize", a[len("-Xmn"):], 1); err == nil {
				err = c.applySize("MaxNewSize", a[len("-Xmn"):], 1)
			}
		case strings.HasPrefix(a, "-Xss"):
			err = c.applySize("ThreadStackSize", a[len("-Xss"):], 1024)
		default:
			err = unknownFlag(a, "unrecognized")
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *mapConfig) applyXX(body, orig string) error {
	if body == "" {
		return unknownFlag(orig, "malformed")
	}
	switch body[0] {
	case '+', '-':
		name := body[1:]
		if name == "UnlockExperimentalVMOptions" || name == "UnlockDiagnosticVMOptions" {
			return nil
		}
		f := c.reg.Lookup(name)
		if f == nil || f.Type != Bool {
			return unknownFlag(name, "bad bool flag")
		}
		c.values[name] = BoolValue(body[0] == '+')
		return nil
	}
	eq := strings.IndexByte(body, '=')
	if eq < 0 {
		return unknownFlag(orig, "malformed")
	}
	name, raw := body[:eq], body[eq+1:]
	f := c.reg.Lookup(name)
	if f == nil {
		return unknownFlag(name, "unknown")
	}
	switch f.Type {
	case Int:
		v, err := parseSize(raw)
		if err != nil {
			return err
		}
		return c.set(name, IntValue(v))
	case Enum:
		return c.set(name, EnumValue(raw))
	case Bool:
		switch raw {
		case "true", "false":
			c.values[name] = BoolValue(raw == "true")
			return nil
		}
		return unknownFlag(raw, "bad bool value")
	}
	return unknownFlag(name, "unknown type")
}

func (c *mapConfig) applySize(name, raw string, divisor int64) error {
	v, err := parseSize(raw)
	if err != nil {
		return err
	}
	return c.set(name, IntValue(v/divisor))
}

// FuzzPackedMapEquivalence feeds arbitrary java-style argument lines to the
// packed parser and the map-based reference, then asserts the observables
// every persisted format depends on — Key, command-line rendering, and
// Validate — are byte-identical. Seeded with the round-trip corpus.
func FuzzPackedMapEquivalence(f *testing.F) {
	for _, seed := range []string{
		"",
		"-Xmx4g",
		"-Xms512m -Xmx2g",
		"-XX:+UseG1GC -XX:MaxGCPauseMillis=50",
		"-XX:+UseParallelGC -XX:ParallelGCThreads=8",
		"-XX:-TieredCompilation -XX:CICompilerCount=2",
		"-XX:NewRatio=3 -XX:SurvivorRatio=6",
		"-XX:MaxHeapSize=1536m -Xss2m",
		"-XX:+UseSerialGC -XX:TargetSurvivorRatio=60",
		"-XX:GCTimeRatio=19 -XX:+UseStringDeduplication",
	} {
		f.Add(seed)
	}
	reg := NewRegistry()
	f.Fuzz(func(t *testing.T, line string) {
		args := strings.Fields(line)
		packed, err := ParseArgs(reg, args)
		if err != nil {
			// The reference parser is a semantic mirror, not an error-message
			// mirror; equivalence is asserted on accepted inputs.
			t.Skip()
		}
		ref := newMapConfig(reg)
		if rerr := ref.applyArgs(args); rerr != nil {
			t.Fatalf("packed parser accepted %q but reference rejected it: %v", args, rerr)
		}

		if pk, rk := packed.Key(), ref.key(); pk != rk {
			t.Fatalf("Key diverged on %q:\n  packed %q\n  map    %q", args, pk, rk)
		}
		pc := strings.Join(packed.CommandLine(), " ")
		rc := strings.Join(ref.commandLine(), " ")
		if pc != rc {
			t.Fatalf("CommandLine diverged on %q:\n  packed %q\n  map    %q", args, pc, rc)
		}
		perr, rerr := packed.Validate(), ref.validate()
		if (perr == nil) != (rerr == nil) {
			t.Fatalf("Validate diverged on %q: packed=%v map=%v", args, perr, rerr)
		}
		if perr != nil && perr.Error() != rerr.Error() {
			t.Fatalf("Validate messages diverged on %q:\n  packed %q\n  map    %q",
				args, perr, rerr)
		}
		// Explicit-name enumeration drives checkpoint encoding; it must agree
		// including flags explicitly set to their defaults.
		if pn, rn := packed.ExplicitNames(), ref.explicitNames(); strings.Join(pn, ",") != strings.Join(rn, ",") {
			t.Fatalf("ExplicitNames diverged on %q:\n  packed %v\n  map    %v", args, pn, rn)
		}
	})
}

// TestPackedMapValidateOutOfDomain covers the corner the fuzzer cannot
// reach through the parser: values injected past domain validation (stale
// checkpoints, future decode paths). Both representations must report the
// same violation.
func TestPackedMapValidateOutOfDomain(t *testing.T) {
	reg := NewRegistry()
	packed := NewConfig(reg)
	ref := newMapConfig(reg)

	packed.putID(reg.ID("CICompilerCount"), IntValue(1<<40))
	ref.values["CICompilerCount"] = IntValue(1 << 40)

	perr, rerr := packed.Validate(), ref.validate()
	if perr == nil || rerr == nil {
		t.Fatalf("out-of-domain value accepted: packed=%v map=%v", perr, rerr)
	}
	if perr.Error() != rerr.Error() {
		t.Fatalf("violation messages diverged:\n  packed %q\n  map    %q", perr, rerr)
	}
}
