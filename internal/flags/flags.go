// Package flags models the HotSpot JVM's run-time flag universe: typed flag
// definitions with domains, a registry of 600+ JDK-7-era flags, concrete
// configurations (flag → value assignments), validation, and translation to
// and from java-style command lines (-Xmx…, -XX:±Flag, -XX:Flag=value).
//
// The package is deliberately ignorant of what the flags *do*; performance
// semantics live in internal/jvmsim and structural dependencies (which flag
// is relevant under which garbage collector, etc.) live in
// internal/hierarchy. This separation mirrors the paper's architecture: the
// tuner manipulates configurations symbolically and only the JVM (here, its
// simulator) knows their effect.
package flags

import (
	"fmt"
	"strconv"
)

// Type is the value type of a flag.
type Type int

const (
	// Bool flags are switched with -XX:+Name / -XX:-Name.
	Bool Type = iota
	// Int flags carry an integer value, -XX:Name=v. Sizes are in bytes.
	Int
	// Enum flags take one of a fixed set of strings, -XX:Name=choice.
	Enum
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Enum:
		return "enum"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Kind classifies a flag the way HotSpot does. Only Product and Experimental
// flags are tunable by default; Diagnostic and Develop flags exist so the
// registry is a faithful model of the ~600-flag universe the paper cites.
type Kind int

const (
	// Product flags are supported, stable tuning knobs.
	Product Kind = iota
	// Experimental flags require -XX:+UnlockExperimentalVMOptions.
	Experimental
	// Diagnostic flags require -XX:+UnlockDiagnosticVMOptions.
	Diagnostic
	// Develop flags are only available in debug builds of the VM.
	Develop
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Product:
		return "product"
	case Experimental:
		return "experimental"
	case Diagnostic:
		return "diagnostic"
	case Develop:
		return "develop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Unit describes how an Int flag's value should be rendered for humans.
type Unit int

const (
	// None is a bare number (counts, ratios, thresholds).
	None Unit = iota
	// Bytes values are rendered with k/m/g suffixes on the command line.
	Bytes
	// Millis values are durations in milliseconds.
	Millis
	// Percent values are 0..100.
	Percent
)

// Category groups flags by the JVM subsystem they control. Categories are
// the coarse level of the paper's flag hierarchy.
type Category string

// The subsystem categories used by the registry.
const (
	CatGC      Category = "gc"
	CatHeap    Category = "heap"
	CatJIT     Category = "jit"
	CatInline  Category = "inline"
	CatThreads Category = "threads"
	CatRuntime Category = "runtime"
	CatDebug   Category = "debug"
)

// Flag is the definition (not the value) of one JVM flag.
type Flag struct {
	Name        string
	Type        Type
	Kind        Kind
	Category    Category
	Description string

	// Default is the value the flag takes when unset, matching HotSpot's
	// server-VM defaults of the JDK-7 era the paper used.
	Default Value

	// Min, Max and Step bound Int flags. Step is the granularity used when
	// sampling or producing neighbors; 0 means 1.
	Min, Max, Step int64
	// LogScale marks Int flags whose useful values span orders of magnitude
	// (heap sizes, compile thresholds); samplers draw them log-uniformly.
	LogScale bool
	// Unit describes how to render Int values.
	Unit Unit

	// Choices enumerates Enum values; Choices[0] need not be the default.
	Choices []string

	// Inert marks flags with no modeled performance effect. Most of
	// HotSpot's 600+ flags are observability or verification toggles; the
	// simulator charges OverheadPct when such a flag is enabled (Bool) or
	// moved off its default (Int/Enum), and otherwise ignores it.
	Inert bool
	// OverheadPct is the relative slowdown (e.g. 0.02 = 2%) the simulator
	// charges when an inert flag is engaged. Zero means truly free.
	OverheadPct float64
}

// Value is the tagged value of a flag. Exactly one field is meaningful,
// selected by the owning flag's Type.
type Value struct {
	B bool
	I int64
	S string
}

// BoolValue returns a Bool-typed value.
func BoolValue(b bool) Value { return Value{B: b} }

// IntValue returns an Int-typed value.
func IntValue(i int64) Value { return Value{I: i} }

// EnumValue returns an Enum-typed value.
func EnumValue(s string) Value { return Value{S: s} }

// Equal reports whether two values are identical under the given type.
func (v Value) Equal(t Type, o Value) bool {
	switch t {
	case Bool:
		return v.B == o.B
	case Int:
		return v.I == o.I
	case Enum:
		return v.S == o.S
	}
	return false
}

// String renders the value for the given type; used in reports and errors.
func (v Value) String(t Type) string {
	switch t {
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Enum:
		return v.S
	}
	return "?"
}

// step returns the effective sampling granularity of an Int flag.
func (f *Flag) step() int64 {
	if f.Step <= 0 {
		return 1
	}
	return f.Step
}

// Validate reports whether v is inside f's domain.
func (f *Flag) Validate(v Value) error {
	switch f.Type {
	case Bool:
		return nil
	case Int:
		if v.I < f.Min || v.I > f.Max {
			return fmt.Errorf("flags: %s=%d outside [%d, %d]", f.Name, v.I, f.Min, f.Max)
		}
		return nil
	case Enum:
		for _, c := range f.Choices {
			if c == v.S {
				return nil
			}
		}
		return fmt.Errorf("flags: %s=%q not in %v", f.Name, v.S, f.Choices)
	}
	return fmt.Errorf("flags: %s has unknown type %v", f.Name, f.Type)
}

// Clamp returns v forced into f's domain. For Enum flags an unknown choice
// is replaced by the default.
func (f *Flag) Clamp(v Value) Value {
	switch f.Type {
	case Int:
		if v.I < f.Min {
			v.I = f.Min
		}
		if v.I > f.Max {
			v.I = f.Max
		}
	case Enum:
		if f.Validate(v) != nil {
			return f.Default
		}
	}
	return v
}

// DomainSize returns the number of distinct values the flag can take at its
// Step granularity. Used for search-space accounting (Table 3).
func (f *Flag) DomainSize() int64 {
	switch f.Type {
	case Bool:
		return 2
	case Int:
		return (f.Max-f.Min)/f.step() + 1
	case Enum:
		return int64(len(f.Choices))
	}
	return 1
}

// Tunable reports whether the auto-tuner is allowed to modify this flag.
// Product and Experimental flags are tunable; Diagnostic and Develop flags
// are excluded, matching what a real tuning run against a release VM can do.
func (f *Flag) Tunable() bool {
	return f.Kind == Product || f.Kind == Experimental
}
