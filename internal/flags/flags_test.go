package flags

import (
	"strings"
	"testing"
)

func TestTypeKindUnitStrings(t *testing.T) {
	if Bool.String() != "bool" || Int.String() != "int" || Enum.String() != "enum" {
		t.Error("Type.String mismatch")
	}
	if Type(99).String() != "Type(99)" {
		t.Error("unknown Type.String mismatch")
	}
	if Product.String() != "product" || Experimental.String() != "experimental" ||
		Diagnostic.String() != "diagnostic" || Develop.String() != "develop" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown Kind.String mismatch")
	}
}

func TestValueConstructorsAndEqual(t *testing.T) {
	if !BoolValue(true).Equal(Bool, BoolValue(true)) {
		t.Error("bool equality")
	}
	if BoolValue(true).Equal(Bool, BoolValue(false)) {
		t.Error("bool inequality")
	}
	if !IntValue(7).Equal(Int, IntValue(7)) || IntValue(7).Equal(Int, IntValue(8)) {
		t.Error("int equality")
	}
	if !EnumValue("a").Equal(Enum, EnumValue("a")) || EnumValue("a").Equal(Enum, EnumValue("b")) {
		t.Error("enum equality")
	}
	if IntValue(1).Equal(Type(99), IntValue(1)) {
		t.Error("unknown type should never compare equal")
	}
}

func TestValueString(t *testing.T) {
	if BoolValue(true).String(Bool) != "true" || BoolValue(false).String(Bool) != "false" {
		t.Error("bool render")
	}
	if IntValue(-3).String(Int) != "-3" {
		t.Error("int render")
	}
	if EnumValue("g1").String(Enum) != "g1" {
		t.Error("enum render")
	}
}

func TestFlagValidate(t *testing.T) {
	f := Flag{Name: "X", Type: Int, Min: 10, Max: 20}
	if err := f.Validate(IntValue(10)); err != nil {
		t.Errorf("min should validate: %v", err)
	}
	if err := f.Validate(IntValue(20)); err != nil {
		t.Errorf("max should validate: %v", err)
	}
	if err := f.Validate(IntValue(9)); err == nil {
		t.Error("below min should fail")
	}
	if err := f.Validate(IntValue(21)); err == nil {
		t.Error("above max should fail")
	}
	e := Flag{Name: "E", Type: Enum, Choices: []string{"a", "b"}}
	if err := e.Validate(EnumValue("a")); err != nil {
		t.Errorf("valid choice rejected: %v", err)
	}
	if err := e.Validate(EnumValue("c")); err == nil {
		t.Error("invalid choice accepted")
	}
	b := Flag{Name: "B", Type: Bool}
	if err := b.Validate(BoolValue(true)); err != nil {
		t.Errorf("bool always valid: %v", err)
	}
}

func TestFlagClamp(t *testing.T) {
	f := Flag{Name: "X", Type: Int, Min: 10, Max: 20}
	if got := f.Clamp(IntValue(5)); got.I != 10 {
		t.Errorf("clamp low = %d", got.I)
	}
	if got := f.Clamp(IntValue(25)); got.I != 20 {
		t.Errorf("clamp high = %d", got.I)
	}
	if got := f.Clamp(IntValue(15)); got.I != 15 {
		t.Errorf("clamp inside = %d", got.I)
	}
	e := Flag{Name: "E", Type: Enum, Choices: []string{"a", "b"}, Default: EnumValue("a")}
	if got := e.Clamp(EnumValue("zzz")); got.S != "a" {
		t.Errorf("enum clamp = %q", got.S)
	}
}

func TestDomainSize(t *testing.T) {
	b := Flag{Type: Bool}
	if b.DomainSize() != 2 {
		t.Error("bool domain should be 2")
	}
	i := Flag{Type: Int, Min: 0, Max: 100, Step: 10}
	if i.DomainSize() != 11 {
		t.Errorf("int domain = %d, want 11", i.DomainSize())
	}
	i2 := Flag{Type: Int, Min: 5, Max: 5}
	if i2.DomainSize() != 1 {
		t.Errorf("degenerate int domain = %d, want 1", i2.DomainSize())
	}
	e := Flag{Type: Enum, Choices: []string{"a", "b", "c"}}
	if e.DomainSize() != 3 {
		t.Error("enum domain should be 3")
	}
}

func TestTunable(t *testing.T) {
	for _, c := range []struct {
		kind Kind
		want bool
	}{{Product, true}, {Experimental, true}, {Diagnostic, false}, {Develop, false}} {
		f := Flag{Kind: c.kind}
		if f.Tunable() != c.want {
			t.Errorf("Tunable(%v) = %v, want %v", c.kind, f.Tunable(), c.want)
		}
	}
}

func TestNewRegistryCatalogShape(t *testing.T) {
	r := NewRegistry()
	if r.Len() < 600 {
		t.Errorf("registry has %d flags, paper requires 600+", r.Len())
	}
	// Spot-check flags the simulator depends on.
	for _, name := range []string{
		"UseSerialGC", "UseParallelGC", "UseConcMarkSweepGC", "UseG1GC",
		"MaxHeapSize", "NewRatio", "SurvivorRatio", "MaxTenuringThreshold",
		"TieredCompilation", "CompileThreshold", "ReservedCodeCacheSize",
		"MaxInlineSize", "UseBiasedLocking", "UseCompressedOops",
		"ParallelGCThreads",
	} {
		if r.Lookup(name) == nil {
			t.Errorf("registry missing modeled flag %s", name)
		}
	}
	if r.Lookup("NoSuchFlagEver") != nil {
		t.Error("Lookup of unknown flag should be nil")
	}
	// Defaults must mirror JDK-7 server ergonomics.
	d := r.DefaultConfig()
	if !d.Bool("UseParallelGC") {
		t.Error("default collector should be ParallelGC")
	}
	if d.Bool("TieredCompilation") {
		t.Error("tiered compilation should default off (JDK 7 server)")
	}
	if d.Int("CompileThreshold") != 10000 {
		t.Error("CompileThreshold default should be 10000")
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	na, nb := a.Names(), b.Names()
	if len(na) != len(nb) {
		t.Fatal("registries differ in size")
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("order differs at %d: %s vs %s", i, na[i], nb[i])
		}
		if i > 0 && na[i-1] >= na[i] {
			t.Fatalf("names not strictly sorted at %d: %s >= %s", i, na[i-1], na[i])
		}
	}
}

func TestRegistryByCategoryAndTunable(t *testing.T) {
	r := NewRegistry()
	gc := r.ByCategory(CatGC)
	if len(gc) == 0 {
		t.Fatal("no GC flags")
	}
	for _, n := range gc {
		if r.Lookup(n).Category != CatGC {
			t.Errorf("%s not in gc category", n)
		}
	}
	tun := r.TunableNames()
	if len(tun) < 200 {
		t.Errorf("only %d tunable flags; whole-JVM tuning needs a wide space", len(tun))
	}
	for _, n := range tun {
		if !r.Lookup(n).Tunable() {
			t.Errorf("%s listed tunable but is not", n)
		}
	}
}

func TestNewCustomRegistryRejectsBadDefs(t *testing.T) {
	cases := []struct {
		name string
		defs []Flag
	}{
		{"empty name", []Flag{{Name: ""}}},
		{"duplicate", []Flag{{Name: "A", Type: Bool}, {Name: "A", Type: Bool}}},
		{"min>max", []Flag{{Name: "A", Type: Int, Min: 5, Max: 1, Default: IntValue(5)}}},
		{"enum no choices", []Flag{{Name: "A", Type: Enum}}},
		{"default out of domain", []Flag{{Name: "A", Type: Int, Min: 1, Max: 3, Default: IntValue(9)}}},
	}
	for _, c := range cases {
		if _, err := NewCustomRegistry(c.defs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestStandardCatalogDefaultsValid(t *testing.T) {
	r := NewRegistry()
	for _, n := range r.Names() {
		f := r.Lookup(n)
		if err := f.Validate(f.Default); err != nil {
			t.Errorf("default of %s invalid: %v", n, err)
		}
		if f.Type == Int && f.Step < 0 {
			t.Errorf("%s has negative step", n)
		}
	}
}

func TestInertOverheadByConvention(t *testing.T) {
	r := NewRegistry()
	verify := r.Lookup("VerifyBeforeGC")
	if verify == nil || verify.OverheadPct < 0.05 {
		t.Error("VerifyBeforeGC should be expensive to engage")
	}
	pr := r.Lookup("PrintGCDetails")
	if pr == nil || pr.OverheadPct <= 0 || pr.OverheadPct > 0.01 {
		t.Error("PrintGCDetails should have a small positive overhead")
	}
	if !pr.Inert || !pr.Tunable() {
		t.Error("PrintGCDetails should be inert but tunable")
	}
}

func TestOverheadFor(t *testing.T) {
	cases := []struct {
		name string
		want float64
	}{
		{"VerifyX", 0.08}, {"ProfileX", 0.03}, {"CheckX", 0.02},
		{"TraceX", 0.015}, {"LogX", 0.01}, {"PrintX", 0.004}, {"UseX", 0},
	}
	for _, c := range cases {
		if got := overheadFor(c.name); got != c.want {
			t.Errorf("overheadFor(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCatalogHasNoPrefixSurprises(t *testing.T) {
	// Modeled (non-inert) flags must not accidentally carry overhead
	// semantics via naming; the families are inert-only.
	r := NewRegistry()
	for _, n := range r.Names() {
		f := r.Lookup(n)
		if !f.Inert && f.OverheadPct != 0 {
			t.Errorf("modeled flag %s has OverheadPct set", n)
		}
		if f.Inert && f.Type == Bool && f.Default.B {
			t.Errorf("inert bool %s defaults to true; engagement accounting assumes false", n)
		}
	}
}

func TestRegistryNamesPrefixFamiliesPresent(t *testing.T) {
	r := NewRegistry()
	count := 0
	for _, n := range r.Names() {
		if strings.HasPrefix(n, "Trace") || strings.HasPrefix(n, "Verify") {
			count++
		}
	}
	if count < 100 {
		t.Errorf("expected a wide develop-flag tail, found %d Trace/Verify flags", count)
	}
}
