package flags

import (
	"strings"
	"testing"
)

// FuzzCommandLineRoundTrip checks the command-line codec's core invariant:
// any argument list that parses renders (via CommandLine) to a form that
// re-parses to the identical configuration key. The seed corpus in
// testdata/fuzz replays on every normal `go test` run.
func FuzzCommandLineRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"",
		"-Xmx4g",
		"-Xms512m -Xmx2g",
		"-XX:+UseG1GC -XX:MaxGCPauseMillis=50",
		"-XX:+UseParallelGC -XX:ParallelGCThreads=8",
		"-XX:-TieredCompilation -XX:CICompilerCount=2",
		"-XX:NewRatio=3 -XX:SurvivorRatio=6",
		"-XX:MaxHeapSize=1536m -Xss2m",
		"-XX:+UseSerialGC -XX:TargetSurvivorRatio=60",
		"-XX:GCTimeRatio=19 -XX:+UseStringDeduplication",
	} {
		f.Add(seed)
	}
	reg := NewRegistry()
	f.Fuzz(func(t *testing.T, line string) {
		args := strings.Fields(line)
		cfg, err := ParseArgs(reg, args)
		if err != nil {
			// Rejected input is fine; the invariant covers accepted input.
			t.Skip()
		}
		rendered := cfg.CommandLine()
		back, err := ParseArgs(reg, rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", args, rendered, err)
		}
		if back.Key() != cfg.Key() {
			t.Fatalf("round trip changed the configuration:\n  in   %q\n  out  %q\n  key  %q\n  key' %q",
				args, rendered, cfg.Key(), back.Key())
		}
		// Rendering must be a fixed point: rendering the re-parse gives the
		// same command line again.
		if again := strings.Join(back.CommandLine(), " "); again != strings.Join(rendered, " ") {
			t.Fatalf("rendering is not canonical: %q then %q", rendered, again)
		}
	})
}
