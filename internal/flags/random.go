package flags

import (
	"math"
	"math/rand"
)

// SampleValue draws a uniform random value from f's domain. Int flags marked
// LogScale are drawn log-uniformly (so 128 MB and 4 GB heaps are equally
// likely), then snapped to the flag's Step granularity. Int flags with a
// zero minimum and LogScale sample zero (the "ergonomic/auto" sentinel) with
// small probability, since log scales cannot reach it.
func SampleValue(f *Flag, rng *rand.Rand) Value {
	switch f.Type {
	case Bool:
		return BoolValue(rng.Intn(2) == 0)
	case Enum:
		return EnumValue(f.Choices[rng.Intn(len(f.Choices))])
	case Int:
		return IntValue(sampleInt(f, rng))
	}
	return f.Default
}

func sampleInt(f *Flag, rng *rand.Rand) int64 {
	min, max := f.Min, f.Max
	if min == max {
		return min
	}
	if f.LogScale {
		lo := min
		if lo <= 0 {
			// Reserve 10% of draws for the sentinel/zero region, sample the
			// rest log-uniformly from a positive floor.
			if rng.Float64() < 0.10 {
				return min
			}
			lo = f.step()
		}
		lmin, lmax := math.Log(float64(lo)), math.Log(float64(max))
		v := int64(math.Exp(lmin + rng.Float64()*(lmax-lmin)))
		return snap(f, v)
	}
	span := (max - min) / f.step()
	return min + rng.Int63n(span+1)*f.step()
}

// snap rounds v to the flag's step grid and clamps into the domain.
func snap(f *Flag, v int64) int64 {
	s := f.step()
	v = (v / s) * s
	if v < f.Min {
		v = f.Min
	}
	if v > f.Max {
		v = f.Max
	}
	return v
}

// NeighborValue returns a value near current in f's domain: Bool flips,
// Enum re-draws a different choice, Int takes a geometric step of roughly
// ±scale of the domain (scale in (0,1], e.g. 0.1 for local search).
// The result always differs from current when the domain has >1 value.
func NeighborValue(f *Flag, current Value, rng *rand.Rand) Value {
	switch f.Type {
	case Bool:
		return BoolValue(!current.B)
	case Enum:
		if len(f.Choices) == 1 {
			return current
		}
		for {
			c := f.Choices[rng.Intn(len(f.Choices))]
			if c != current.S {
				return EnumValue(c)
			}
		}
	case Int:
		return IntValue(neighborInt(f, current.I, rng, 0.15))
	}
	return current
}

func neighborInt(f *Flag, cur int64, rng *rand.Rand, scale float64) int64 {
	if f.Min == f.Max {
		return cur
	}
	var v int64
	if f.LogScale && cur > 0 {
		// Multiplicative step: ×(1±scale…3·scale).
		factor := 1 + scale*(1+2*rng.Float64())
		if rng.Intn(2) == 0 {
			factor = 1 / factor
		}
		v = snap(f, int64(float64(cur)*factor))
	} else {
		span := f.Max - f.Min
		step := int64(float64(span)*scale*rng.Float64()) + f.step()
		if rng.Intn(2) == 0 {
			step = -step
		}
		v = snap(f, cur+step)
	}
	if v == cur {
		// Force at least one grid step of movement.
		if cur+f.step() <= f.Max {
			return cur + f.step()
		}
		return cur - f.step()
	}
	return v
}

// RandomizeFlags assigns fresh uniform random values to the named flags in
// c. Unknown names panic: callers derive names from the same registry.
func RandomizeFlags(c *Config, names []string, rng *rand.Rand) {
	for _, n := range names {
		id := c.reg.ID(n)
		if id == NoID {
			panic("flags: RandomizeFlags of unknown flag " + n)
		}
		c.putID(id, SampleValue(c.reg.byID[id], rng))
	}
}

// MutateFlag replaces the named flag's value in c with a neighbor of its
// current effective value.
func MutateFlag(c *Config, name string, rng *rand.Rand) {
	id := c.reg.ID(name)
	if id == NoID {
		panic("flags: MutateFlag of unknown flag " + name)
	}
	c.putID(id, NeighborValue(c.reg.byID[id], c.GetID(id), rng))
}

// Crossover returns a child configuration that inherits each of the named
// flags' effective values from parent a or b with equal probability.
// Flags outside names stay at their defaults.
func Crossover(a, b *Config, names []string, rng *rand.Rand) *Config {
	if a.reg != b.reg {
		panic("flags: Crossover across registries")
	}
	child := NewConfig(a.reg)
	for _, n := range names {
		src := a
		if rng.Intn(2) == 0 {
			src = b
		}
		id := src.reg.ID(n)
		if id == NoID {
			panic("flags: Crossover of unknown flag " + n)
		}
		child.putID(id, src.GetID(id))
	}
	return child
}
