package flags

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleValueStaysInDomain(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(7))
	for _, n := range r.Names() {
		f := r.Lookup(n)
		for i := 0; i < 50; i++ {
			v := SampleValue(f, rng)
			if err := f.Validate(v); err != nil {
				t.Fatalf("SampleValue(%s) out of domain: %v", n, err)
			}
		}
	}
}

func TestSampleValueLogScaleCoversOrders(t *testing.T) {
	r := NewRegistry()
	f := r.Lookup("CompileThreshold") // 100..100000, log scale
	rng := rand.New(rand.NewSource(3))
	low, high := 0, 0
	for i := 0; i < 2000; i++ {
		v := SampleValue(f, rng).I
		if v < 1000 {
			low++
		}
		if v > 10000 {
			high++
		}
	}
	// Log-uniform sampling gives each decade roughly one third of the mass.
	if low < 300 || high < 300 {
		t.Errorf("log sampling skewed: %d below 1e3, %d above 1e4 of 2000", low, high)
	}
}

func TestSampleValueZeroSentinel(t *testing.T) {
	r := NewRegistry()
	f := r.Lookup("NewSize") // Min 0, LogScale: must occasionally sample 0
	rng := rand.New(rand.NewSource(11))
	zeros := 0
	for i := 0; i < 2000; i++ {
		if SampleValue(f, rng).I == 0 {
			zeros++
		}
	}
	if zeros < 50 || zeros > 500 {
		t.Errorf("zero sentinel sampled %d/2000 times, want ~10%%", zeros)
	}
}

func TestNeighborValueMoves(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(5))
	for _, n := range []string{"UseG1GC", "MaxHeapSize", "NewRatio", "CompileThreshold", "SurvivorRatio"} {
		f := r.Lookup(n)
		cur := f.Default
		for i := 0; i < 100; i++ {
			nv := NeighborValue(f, cur, rng)
			if err := f.Validate(nv); err != nil {
				t.Fatalf("NeighborValue(%s) invalid: %v", n, err)
			}
			if f.DomainSize() > 1 && nv.Equal(f.Type, cur) {
				t.Fatalf("NeighborValue(%s) did not move from %v", n, cur)
			}
			cur = nv
		}
	}
}

func TestNeighborValueBoolFlips(t *testing.T) {
	f := &Flag{Name: "B", Type: Bool}
	rng := rand.New(rand.NewSource(1))
	if v := NeighborValue(f, BoolValue(true), rng); v.B {
		t.Error("neighbor of true should be false")
	}
	if v := NeighborValue(f, BoolValue(false), rng); !v.B {
		t.Error("neighbor of false should be true")
	}
}

func TestNeighborValueDegenerateDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := &Flag{Name: "E", Type: Enum, Choices: []string{"only"}, Default: EnumValue("only")}
	if v := NeighborValue(e, EnumValue("only"), rng); v.S != "only" {
		t.Error("single-choice enum should stay put")
	}
	i := &Flag{Name: "I", Type: Int, Min: 5, Max: 5, Default: IntValue(5)}
	if v := NeighborValue(i, IntValue(5), rng); v.I != 5 {
		t.Error("degenerate int should stay put")
	}
}

func TestNeighborIntRespectsBoundsProperty(t *testing.T) {
	f := &Flag{Name: "I", Type: Int, Min: 0, Max: 1000, Step: 10}
	rng := rand.New(rand.NewSource(9))
	check := func(cur uint16) bool {
		c := snap(f, int64(cur)%1001)
		v := neighborInt(f, c, rng, 0.15)
		return v >= f.Min && v <= f.Max && v%10 == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRandomizeAndMutate(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(42))
	c := NewConfig(r)
	names := []string{"MaxHeapSize", "NewRatio", "UseG1GC"}
	RandomizeFlags(c, names, rng)
	for _, n := range names {
		if !c.IsExplicit(n) {
			t.Errorf("%s not assigned by RandomizeFlags", n)
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("randomized config invalid: %v", err)
	}
	before := c.Int("NewRatio")
	MutateFlag(c, "NewRatio", rng)
	if c.Int("NewRatio") == before {
		t.Error("MutateFlag did not move NewRatio")
	}
	mustPanic(t, "randomize unknown", func() { RandomizeFlags(c, []string{"Nope"}, rng) })
	mustPanic(t, "mutate unknown", func() { MutateFlag(c, "Nope", rng) })
}

func TestCrossoverInheritsFromParents(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(13))
	a := NewConfig(r)
	b := NewConfig(r)
	a.SetInt("NewRatio", 1)
	b.SetInt("NewRatio", 16)
	a.SetInt("SurvivorRatio", 2)
	b.SetInt("SurvivorRatio", 32)
	names := []string{"NewRatio", "SurvivorRatio"}
	sawA, sawB := false, false
	for i := 0; i < 100; i++ {
		child := Crossover(a, b, names, rng)
		nr := child.Int("NewRatio")
		if nr != 1 && nr != 16 {
			t.Fatalf("child NewRatio %d from neither parent", nr)
		}
		if nr == 1 {
			sawA = true
		} else {
			sawB = true
		}
		if err := child.Validate(); err != nil {
			t.Fatalf("child invalid: %v", err)
		}
	}
	if !sawA || !sawB {
		t.Error("crossover never drew from one parent")
	}
}

func TestCrossoverDeterministicWithSeed(t *testing.T) {
	r := NewRegistry()
	a, b := NewConfig(r), NewConfig(r)
	a.SetInt("MaxHeapSize", 256<<20)
	b.SetInt("MaxHeapSize", 4<<30)
	names := []string{"MaxHeapSize", "NewRatio", "UseG1GC", "CompileThreshold"}
	c1 := Crossover(a, b, names, rand.New(rand.NewSource(99)))
	c2 := Crossover(a, b, names, rand.New(rand.NewSource(99)))
	if c1.Key() != c2.Key() {
		t.Error("crossover not deterministic under a fixed seed")
	}
}
