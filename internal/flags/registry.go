package flags

import (
	"fmt"
	"sort"
	"sync"
)

// ID is a dense, registry-assigned flag identifier: the index of the flag's
// name in the registry's sorted name order. IDs are the hot-path currency of
// the tuner — packed configurations index their value arrays by ID, so the
// inner loop never hashes flag-name strings. IDs are only meaningful within
// the registry that assigned them.
type ID int32

// NoID is the ID of a name absent from the registry.
const NoID ID = -1

// Registry is an immutable catalog of flag definitions. Construct one with
// NewRegistry (the standard HotSpot catalog) or NewCustomRegistry (tests).
type Registry struct {
	byName  map[string]*Flag
	names   []string // sorted, for deterministic iteration
	byID    []*Flag  // byID[i] is the flag named names[i]
	idOf    map[string]ID
	tunable []string // sorted names of Tunable() flags, precomputed

	// scratch recycles Configs for AcquireConfig/ReleaseConfig: a packed
	// Config carries two registry-wide arrays, which is real garbage when
	// a server parses one throwaway configuration per request.
	scratch sync.Pool
}

// AcquireConfig returns an all-defaults Config over r, recycled from an
// internal pool when possible. Callers that parse one short-lived
// configuration per request (the evald measurement nodes) pair it with
// ReleaseConfig to keep the per-request allocation off the hot path.
func (r *Registry) AcquireConfig() *Config {
	if c, ok := r.scratch.Get().(*Config); ok {
		return c
	}
	return NewConfig(r)
}

// ReleaseConfig resets c and returns it to r's pool. The caller must not
// touch c afterwards. Configs bound to another registry are dropped
// rather than poisoning the pool; nil is a no-op.
func (r *Registry) ReleaseConfig(c *Config) {
	if c == nil || c.reg != r {
		return
	}
	c.Reset()
	r.scratch.Put(c)
}

// NewCustomRegistry builds a registry from an explicit flag list. Duplicate
// names and invalid definitions are rejected.
func NewCustomRegistry(defs []Flag) (*Registry, error) {
	r := &Registry{byName: make(map[string]*Flag, len(defs))}
	for i := range defs {
		f := defs[i]
		if f.Name == "" {
			return nil, fmt.Errorf("flags: definition %d has empty name", i)
		}
		if _, dup := r.byName[f.Name]; dup {
			return nil, fmt.Errorf("flags: duplicate flag %s", f.Name)
		}
		if f.Type == Int && f.Min > f.Max {
			return nil, fmt.Errorf("flags: %s has Min %d > Max %d", f.Name, f.Min, f.Max)
		}
		if f.Type == Enum && len(f.Choices) == 0 {
			return nil, fmt.Errorf("flags: enum %s has no choices", f.Name)
		}
		if err := f.Validate(f.Default); err != nil {
			return nil, fmt.Errorf("flags: %s default out of domain: %v", f.Name, err)
		}
		cp := f
		r.byName[f.Name] = &cp
		r.names = append(r.names, f.Name)
	}
	sort.Strings(r.names)
	r.byID = make([]*Flag, len(r.names))
	r.idOf = make(map[string]ID, len(r.names))
	for i, n := range r.names {
		r.byID[i] = r.byName[n]
		r.idOf[n] = ID(i)
		if r.byID[i].Tunable() {
			r.tunable = append(r.tunable, n)
		}
	}
	return r, nil
}

// NewRegistry returns the standard HotSpot flag catalog: every modeled
// tuning knob plus the long tail of observability/verification flags, 600+
// definitions in total. The catalog is static, so failure is a programming
// error and panics.
func NewRegistry() *Registry {
	defs := catalog()
	defs = append(defs, inertCatalog()...)
	r, err := NewCustomRegistry(defs)
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup returns the definition of name, or nil if unknown.
func (r *Registry) Lookup(name string) *Flag {
	return r.byName[name]
}

// ID returns the dense identifier of name, or NoID if unknown.
func (r *Registry) ID(name string) ID {
	if id, ok := r.idOf[name]; ok {
		return id
	}
	return NoID
}

// FlagByID returns the definition with the given ID. It panics on IDs the
// registry never assigned, which are programming errors.
func (r *Registry) FlagByID(id ID) *Flag {
	return r.byID[id]
}

// Names returns all flag names in sorted order. The returned slice is shared;
// callers must not modify it.
func (r *Registry) Names() []string {
	return r.names
}

// Len returns the number of flags in the registry. IDs range over [0, Len).
func (r *Registry) Len() int {
	return len(r.names)
}

// ByCategory returns the names of all flags in the given category, sorted.
func (r *Registry) ByCategory(c Category) []string {
	var out []string
	for _, n := range r.names {
		if r.byName[n].Category == c {
			out = append(out, n)
		}
	}
	return out
}

// TunableNames returns the names of all tunable (Product/Experimental)
// flags, sorted. The returned slice is shared; callers must not modify it.
func (r *Registry) TunableNames() []string {
	return r.tunable
}

// DefaultConfig returns a configuration with every flag explicitly set to
// its HotSpot default.
func (r *Registry) DefaultConfig() *Config {
	c := NewConfig(r)
	for id, f := range r.byID {
		c.putID(ID(id), f.Default)
	}
	return c
}
