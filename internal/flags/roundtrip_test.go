package flags

import (
	"math/rand"
	"testing"
)

// Property: for ANY randomly assembled configuration, rendering to a
// java-style command line and parsing it back reproduces the exact
// effective configuration. This is the contract the subprocess runner and
// the persistence layer both rely on.
func TestCommandLineRoundTripProperty(t *testing.T) {
	reg := NewRegistry()
	names := reg.TunableNames()
	rng := rand.New(rand.NewSource(20260706))

	for trial := 0; trial < 500; trial++ {
		c := NewConfig(reg)
		// Assign a random handful of random flags.
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			name := names[rng.Intn(len(names))]
			c.put(name, SampleValue(reg.Lookup(name), rng))
		}
		args := c.CommandLine()
		parsed, err := ParseArgs(reg, args)
		if err != nil {
			t.Fatalf("trial %d: cannot parse own rendering %v: %v", trial, args, err)
		}
		if parsed.Key() != c.Key() {
			t.Fatalf("trial %d: round trip changed the config\n  in:  %s\n  out: %s\n  args: %v",
				trial, c.Key(), parsed.Key(), args)
		}
	}
}

// Property: Clone + arbitrary mutations never affect the original, and
// Diff(original, mutated) names exactly the flags whose effective values
// changed.
func TestCloneMutateDiffProperty(t *testing.T) {
	reg := NewRegistry()
	names := reg.TunableNames()
	rng := rand.New(rand.NewSource(77))

	for trial := 0; trial < 300; trial++ {
		orig := NewConfig(reg)
		for i := 0; i < 5; i++ {
			name := names[rng.Intn(len(names))]
			orig.put(name, SampleValue(reg.Lookup(name), rng))
		}
		origKey := orig.Key()

		mut := orig.Clone()
		touched := map[string]bool{}
		for i := 0; i < 4; i++ {
			name := names[rng.Intn(len(names))]
			touched[name] = true
			MutateFlag(mut, name, rng)
		}
		if orig.Key() != origKey {
			t.Fatal("mutating the clone changed the original")
		}
		for _, d := range orig.Diff(mut) {
			if !touched[d] {
				t.Fatalf("diff names untouched flag %s", d)
			}
			f := reg.Lookup(d)
			a, _ := orig.Get(d)
			b, _ := mut.Get(d)
			if a.Equal(f.Type, b) {
				t.Fatalf("diff names flag %s with equal values", d)
			}
		}
	}
}

// Property: Key is injective over effective configurations — two configs
// with equal keys measure identically in the simulator's eyes (they render
// to the same command line).
func TestKeyDeterminesCommandLineProperty(t *testing.T) {
	reg := NewRegistry()
	names := reg.TunableNames()
	rng := rand.New(rand.NewSource(99))
	seen := map[string]string{} // key → rendered args

	for trial := 0; trial < 400; trial++ {
		c := NewConfig(reg)
		for i := 0; i < 3; i++ {
			name := names[rng.Intn(len(names))]
			c.put(name, SampleValue(reg.Lookup(name), rng))
		}
		key := c.Key()
		rendered := ""
		for _, a := range c.CommandLine() {
			rendered += a + " "
		}
		if prev, ok := seen[key]; ok && prev != rendered {
			t.Fatalf("same key, different command lines:\n  %s\n  %s", prev, rendered)
		}
		seen[key] = rendered
	}
}
