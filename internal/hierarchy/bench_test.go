package hierarchy

import (
	"testing"

	"repro/internal/flags"
)

// ActiveFlags runs on every hierarchical proposal; Validate runs before
// every launch.

func BenchmarkBuildTree(b *testing.B) {
	reg := flags.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Build(reg) == nil {
			b.Fatal("nil tree")
		}
	}
}

func BenchmarkActiveFlags(b *testing.B) {
	reg := flags.NewRegistry()
	tree := Build(reg)
	c := flags.NewConfig(reg)
	c.SetBool("UseG1GC", true)
	c.SetBool("UseParallelGC", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tree.ActiveFlags(c)) == 0 {
			b.Fatal("no active flags")
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	reg := flags.NewRegistry()
	c := flags.NewConfig(reg)
	c.SetBool("UseConcMarkSweepGC", true)
	c.SetBool("UseParallelGC", false)
	c.SetBool("UseParNewGC", true)
	c.SetInt("MaxHeapSize", 2<<30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Validate(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectedCollector(b *testing.B) {
	reg := flags.NewRegistry()
	c := flags.NewConfig(reg)
	c.SetBool("UseG1GC", true)
	c.SetBool("UseParallelGC", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectedCollector(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpaceSize(b *testing.B) {
	tree := Build(flags.NewRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tree.SpaceSize().FlatLog10 <= 0 {
			b.Fatal("bad space size")
		}
	}
}
