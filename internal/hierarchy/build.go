package hierarchy

import (
	"sort"

	"repro/internal/flags"
)

// Build assembles the standard HotSpot flag tree over reg. The shape follows
// the paper's description: top-level decision points for the garbage
// collector and the compilation mode, subtrees of collector- and
// mode-specific flags beneath them, shared subsystems (heap geometry, TLABs,
// inlining, synchronization, runtime services) alongside, and a tail node
// that absorbs every remaining tunable flag so the whole JVM stays in scope.
func Build(reg *flags.Registry) *Tree {
	collectorIs := func(want Collector) Guard {
		return func(c *flags.Config) bool {
			got, err := SelectedCollector(c)
			return err == nil && got == want
		}
	}
	collectorNot := func(avoid ...Collector) Guard {
		return func(c *flags.Config) bool {
			got, err := SelectedCollector(c)
			if err != nil {
				return false
			}
			for _, a := range avoid {
				if got == a {
					return false
				}
			}
			return true
		}
	}
	boolOn := func(name string) Guard {
		return func(c *flags.Config) bool { return c.Bool(name) }
	}

	serialNode := &Node{
		Name:        "gc/serial",
		Description: "single-threaded collector; no parallel knobs apply",
		Guard:       collectorIs(Serial),
	}
	parallelNode := &Node{
		Name:        "gc/parallel",
		Description: "throughput collector",
		Guard:       collectorIs(Parallel),
		Flags: []string{
			"UseParallelOldGC", "UseAdaptiveSizePolicy", "GCTimeRatio",
			"MaxGCPauseMillis", "UseParallelDensePrefixUpdate",
		},
	}
	cmsNode := &Node{
		Name:        "gc/cms",
		Description: "concurrent mark-sweep collector",
		Guard:       collectorIs(CMS),
		Flags: []string{
			"UseParNewGC", "ConcGCThreads",
			"CMSInitiatingOccupancyFraction", "UseCMSInitiatingOccupancyOnly",
			"CMSParallelRemarkEnabled", "CMSScavengeBeforeRemark",
			"CMSClassUnloadingEnabled", "UseCMSCompactAtFullCollection",
			"CMSFullGCsBeforeCompaction", "ExplicitGCInvokesConcurrent",
		},
	}
	g1Node := &Node{
		Name:        "gc/g1",
		Description: "garbage-first collector",
		Guard:       collectorIs(G1),
		Flags: []string{
			"ConcGCThreads", "MaxGCPauseMillis",
			"G1HeapRegionSize", "G1ReservePercent",
			"InitiatingHeapOccupancyPercent", "G1MixedGCCountTarget",
			"G1HeapWastePercent", "ExplicitGCInvokesConcurrent",
		},
	}
	gcNode := &Node{
		Name:        "gc",
		Description: "garbage collection",
		Flags: []string{
			"UseSerialGC", "UseParallelGC", "UseConcMarkSweepGC", "UseG1GC",
			"DisableExplicitGC", "ScavengeBeforeFullGC",
		},
		Children: []*Node{
			{
				Name:        "gc/workers",
				Description: "stop-the-world worker pool (all but serial)",
				Guard:       collectorNot(Serial),
				Flags: []string{
					"ParallelGCThreads", "ParallelRefProcEnabled",
					"UseGCTaskAffinity", "BindGCTaskThreadsToCPUs",
				},
			},
			serialNode, parallelNode, cmsNode, g1Node,
		},
	}

	youngGeometry := &Node{
		Name:        "heap/young",
		Description: "generation boundary geometry (ignored by G1's regions)",
		Guard:       collectorNot(G1),
		Flags:       []string{"NewRatio", "NewSize", "MaxNewSize", "PretenureSizeThreshold"},
	}
	tlabNode := &Node{
		Name:        "heap/tlab",
		Description: "thread-local allocation buffer sizing",
		Guard:       boolOn("UseTLAB"),
		Flags:       []string{"TLABSize", "ResizeTLAB", "TLABWasteTargetPercent"},
	}
	heapNode := &Node{
		Name:        "heap",
		Description: "heap sizing and layout",
		Flags: []string{
			"MaxHeapSize", "InitialHeapSize", "PermSize", "MaxPermSize",
			"SurvivorRatio", "TargetSurvivorRatio", "MaxTenuringThreshold",
			"MinHeapFreeRatio", "MaxHeapFreeRatio",
			"AlwaysPreTouch", "UseCompressedOops", "UseLargePages", "UseNUMA",
			"UseTLAB",
		},
		Children: []*Node{youngGeometry, tlabNode},
	}

	classicJIT := &Node{
		Name:        "jit/classic",
		Description: "single-compiler (C2) mode",
		Guard:       func(c *flags.Config) bool { return !c.Bool("TieredCompilation") },
		Flags:       []string{"CompileThreshold", "OnStackReplacePercentage", "InterpreterProfilePercentage"},
	}
	tieredJIT := &Node{
		Name:        "jit/tiered",
		Description: "tiered C1→C2 mode",
		Guard:       boolOn("TieredCompilation"),
		Flags:       []string{"TieredStopAtLevel"},
	}
	inlineNode := &Node{
		Name:        "jit/inline",
		Description: "inlining policy",
		Flags: []string{
			"MaxInlineSize", "FreqInlineSize", "InlineSmallCode",
			"MaxInlineLevel", "MaxRecursiveInlineLevel", "ClipInlining",
			"InlineSynchronizedMethods", "UseFastAccessorMethods",
		},
	}
	optNode := &Node{
		Name:        "jit/opts",
		Description: "optimizer passes",
		Flags: []string{
			"DoEscapeAnalysis", "EliminateLocks", "EliminateAllocations",
			"UseSuperWord", "OptimizeStringConcat", "UseLoopPredicate",
			"RangeCheckElimination", "AggressiveOpts", "LoopUnrollLimit",
		},
	}
	jitNode := &Node{
		Name:        "jit",
		Description: "dynamic compilation",
		Flags: []string{
			"TieredCompilation", "CICompilerCount", "BackgroundCompilation",
			"ReservedCodeCacheSize", "InitialCodeCacheSize", "UseCodeCacheFlushing",
		},
		Children: []*Node{classicJIT, tieredJIT, inlineNode, optNode},
	}

	threadsNode := &Node{
		Name:        "threads",
		Description: "synchronization and stacks",
		Flags: []string{
			"UseBiasedLocking", "UseSpinLocks", "ThreadStackSize",
			"UseThreadPriorities", "UseCondCardMark",
		},
		Children: []*Node{
			{
				Name:        "threads/biased",
				Description: "biased-locking tuning",
				Guard:       boolOn("UseBiasedLocking"),
				Flags:       []string{"BiasedLockingStartupDelay"},
			},
		},
	}

	runtimeNode := &Node{
		Name:        "runtime",
		Description: "runtime services",
		Flags: []string{
			"UsePerfData", "UseCounterDecay", "ReduceSignalUsage",
			"AllowUserSignalHandlers", "ClassUnloading", "UseStringCache",
			"CompactStrings",
		},
	}

	root := &Node{
		Name:        "jvm",
		Description: "HotSpot",
		Children:    []*Node{gcNode, heapNode, jitNode, threadsNode, runtimeNode},
	}
	t := &Tree{Root: root, reg: reg}

	// Tail node: every tunable flag not placed above (the observability
	// tail, mostly). Whole-JVM tuning means nothing is out of scope.
	attached := map[string]bool{}
	for _, n := range t.AllTreeFlags() {
		attached[n] = true
	}
	var tail []string
	for _, n := range reg.TunableNames() {
		if !attached[n] {
			tail = append(tail, n)
		}
	}
	sort.Strings(tail)
	root.Children = append(root.Children, &Node{
		Name:        "tail",
		Description: "remaining product flags (observability, policies)",
		Flags:       tail,
	})

	t.choices = []Choice{
		{
			Name: "collector",
			Branches: []Branch{
				{Name: "serial", Node: serialNode, Apply: selectCollector(Serial)},
				{Name: "parallel", Node: parallelNode, Apply: selectCollector(Parallel)},
				{Name: "cms", Node: cmsNode, Apply: selectCollector(CMS)},
				{Name: "g1", Node: g1Node, Apply: selectCollector(G1)},
			},
		},
		{
			Name: "compilation",
			Branches: []Branch{
				{Name: "classic", Node: classicJIT, Apply: func(c *flags.Config) {
					c.SetBool("TieredCompilation", false)
				}},
				{Name: "tiered", Node: tieredJIT, Apply: func(c *flags.Config) {
					c.SetBool("TieredCompilation", true)
				}},
			},
		},
	}
	return t
}

// selectCollector returns an Apply function that rewrites the collector
// selection flags to pick exactly one collector, the way a launcher would.
func selectCollector(col Collector) func(c *flags.Config) {
	return func(c *flags.Config) {
		c.SetBool("UseSerialGC", col == Serial)
		c.SetBool("UseConcMarkSweepGC", col == CMS)
		c.SetBool("UseG1GC", col == G1)
		// Leave UseParallelGC implicit (default true) unless another
		// collector is chosen: an explicit true conflicts with them.
		if col == Parallel {
			c.Unset("UseParallelGC")
		} else {
			c.SetBool("UseParallelGC", false)
		}
		if col == CMS {
			c.SetBool("UseParNewGC", true)
		} else {
			c.SetBool("UseParNewGC", false)
		}
	}
}
