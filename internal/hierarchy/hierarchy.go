// Package hierarchy implements the paper's first contribution: organizing
// the JVM's flags into a tree that encodes their dependencies. A flag like
// CMSInitiatingOccupancyFraction only means anything when the CMS collector
// is selected; TieredStopAtLevel only when tiered compilation is on. The
// tree makes those relationships explicit so that
//
//   - the tuner only mutates flags that are *active* under the current
//     configuration (dependency resolution), and
//   - the size of the space actually searched collapses from the flat
//     product of all domains to the per-branch products (search-space
//     reduction, the paper's Table 3 claim).
//
// The tree also owns semantic validation of flag combinations (collector
// exclusivity, heap-geometry sanity): exactly the checks the real VM
// performs at startup, shared here between the tuner and the simulator.
package hierarchy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/flags"
)

// Collector identifies the garbage collection algorithm a configuration
// selects.
type Collector string

// The four collector families of the JDK-7-era HotSpot VM.
const (
	Serial   Collector = "serial"
	Parallel Collector = "parallel"
	CMS      Collector = "cms"
	G1       Collector = "g1"
)

// SelectedCollector derives the collector a configuration selects, using
// HotSpot's ergonomics: explicit selection wins; with nothing selected the
// server VM defaults to the parallel (throughput) collector. The returned
// error reports conflicting selections, mirroring the VM's
// "Conflicting collector combinations" startup failure.
func SelectedCollector(c *flags.Config) (Collector, error) {
	var picked []Collector
	if c.Bool("UseSerialGC") {
		picked = append(picked, Serial)
	}
	if c.Bool("UseConcMarkSweepGC") {
		picked = append(picked, CMS)
	}
	if c.Bool("UseG1GC") {
		picked = append(picked, G1)
	}
	if len(picked) > 1 {
		return "", fmt.Errorf("hierarchy: conflicting collector combinations: %v", picked)
	}
	if len(picked) == 1 {
		// UseParallelGC defaults to true; an explicit collector choice
		// overrides it only if parallel was not *also* explicitly forced.
		if c.Bool("UseParallelGC") && c.IsExplicit("UseParallelGC") {
			return "", fmt.Errorf("hierarchy: conflicting collector combinations: %v and parallel", picked)
		}
		return picked[0], nil
	}
	if c.Bool("UseParallelGC") {
		return Parallel, nil
	}
	return Serial, nil
}

// Validate checks a configuration for the semantic rules a real VM enforces
// at startup. A nil return means the VM would start.
func Validate(c *flags.Config) error {
	col, err := SelectedCollector(c)
	if err != nil {
		return err
	}
	if c.Bool("UseParNewGC") && col != CMS {
		return fmt.Errorf("hierarchy: UseParNewGC is only valid with the CMS collector (selected %s)", col)
	}
	heap := c.Int("MaxHeapSize")
	if init := c.Int("InitialHeapSize"); init > heap {
		return fmt.Errorf("hierarchy: InitialHeapSize (%d) exceeds MaxHeapSize (%d)", init, heap)
	}
	if ns, ms := c.Int("NewSize"), c.Int("MaxNewSize"); ms != 0 && ns > ms {
		return fmt.Errorf("hierarchy: NewSize (%d) exceeds MaxNewSize (%d)", ns, ms)
	}
	if ms := c.Int("MaxNewSize"); ms != 0 && ms >= heap {
		return fmt.Errorf("hierarchy: MaxNewSize (%d) leaves no old generation in a %d-byte heap", ms, heap)
	}
	if c.Int("InitialCodeCacheSize") > c.Int("ReservedCodeCacheSize") {
		return fmt.Errorf("hierarchy: InitialCodeCacheSize exceeds ReservedCodeCacheSize")
	}
	if c.Int("PermSize") > c.Int("MaxPermSize") {
		return fmt.Errorf("hierarchy: PermSize exceeds MaxPermSize")
	}
	return nil
}

// Guard is a predicate deciding whether a tree node is active under a
// configuration.
type Guard func(c *flags.Config) bool

// Node is one vertex of the flag tree. A node owns a set of flags (tuned
// only while the node is active) and optionally children. A node with a
// nil Guard is active whenever its parent is.
type Node struct {
	Name        string
	Description string
	Guard       Guard
	Flags       []string
	Children    []*Node
}

// Branch is one alternative of a Choice: a way to configure the flags that
// select it.
type Branch struct {
	Name string
	// Apply mutates a configuration to select this branch.
	Apply func(c *flags.Config)
	// Node is the subtree activated by this branch.
	Node *Node
}

// Choice is a decision point of the tree: a small set of mutually exclusive
// branches (collector selection, compilation mode). The hierarchical tuner
// enumerates choices top-down before descending into numeric flags.
type Choice struct {
	Name     string
	Branches []Branch
}

// Tree is the assembled flag hierarchy over one registry.
type Tree struct {
	Root    *Node
	reg     *flags.Registry
	choices []Choice
}

// Registry returns the registry the tree was built over.
func (t *Tree) Registry() *flags.Registry { return t.reg }

// Choices returns the tree's decision points in top-down order.
func (t *Tree) Choices() []Choice { return t.choices }

// ActiveFlags returns the sorted names of all *tunable* flags that are
// active (their node's guard chain holds) under c. These are the flags a
// dependency-respecting tuner may usefully mutate.
func (t *Tree) ActiveFlags(c *flags.Config) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Guard != nil && !n.Guard(c) {
			return
		}
		for _, name := range n.Flags {
			if seen[name] {
				continue
			}
			if f := t.reg.Lookup(name); f != nil && f.Tunable() {
				seen[name] = true
				out = append(out, name)
			}
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(t.Root)
	sort.Strings(out)
	return out
}

// FlagActive reports whether the named flag is active under c.
func (t *Tree) FlagActive(name string, c *flags.Config) bool {
	for _, n := range t.ActiveFlags(c) {
		if n == name {
			return true
		}
	}
	return false
}

// AllTreeFlags returns the sorted names of every flag attached anywhere in
// the tree (active or not).
func (t *Tree) AllTreeFlags() []string {
	seen := map[string]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, name := range n.Flags {
			seen[name] = true
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(t.Root)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SpaceSize quantifies the paper's search-space-reduction claim.
// FlatLog10 is log10 of the product of every tunable flag's domain size —
// the space a hierarchy-ignorant tuner faces. HierarchicalLog10 is log10 of
// the sum over leaf branch combinations of the active-flag domain products —
// the space the tree-guided tuner faces.
type SpaceSize struct {
	FlatLog10         float64
	HierarchicalLog10 float64
	TunableFlags      int
	ActivePerBranch   map[string]int
}

// SpaceSize computes flat and hierarchy-reduced search-space sizes.
func (t *Tree) SpaceSize() SpaceSize {
	ss := SpaceSize{ActivePerBranch: map[string]int{}}
	for _, name := range t.reg.TunableNames() {
		ss.FlatLog10 += math.Log10(float64(t.reg.Lookup(name).DomainSize()))
		ss.TunableFlags++
	}
	// Enumerate the cross product of choice branches; for each combination,
	// apply the branches to a default config and measure the active space.
	combos := enumerateBranchCombos(t.choices)
	var sumLog float64 // log10 of running sum, via log-sum-exp
	first := true
	for _, combo := range combos {
		c := flags.NewConfig(t.reg)
		var label string
		for i, b := range combo {
			b.Apply(c)
			if i > 0 {
				label += "+"
			}
			label += b.Name
		}
		var branchLog float64
		active := t.ActiveFlags(c)
		for _, name := range active {
			branchLog += math.Log10(float64(t.reg.Lookup(name).DomainSize()))
		}
		ss.ActivePerBranch[label] = len(active)
		if first {
			sumLog, first = branchLog, false
			continue
		}
		// log10(10^a + 10^b)
		hi, lo := sumLog, branchLog
		if lo > hi {
			hi, lo = lo, hi
		}
		sumLog = hi + math.Log10(1+math.Pow(10, lo-hi))
	}
	ss.HierarchicalLog10 = sumLog
	return ss
}

func enumerateBranchCombos(choices []Choice) [][]Branch {
	if len(choices) == 0 {
		return [][]Branch{{}}
	}
	rest := enumerateBranchCombos(choices[1:])
	var out [][]Branch
	for _, b := range choices[0].Branches {
		for _, r := range rest {
			combo := append([]Branch{b}, r...)
			out = append(out, combo)
		}
	}
	return out
}
