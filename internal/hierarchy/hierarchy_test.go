package hierarchy

import (
	"testing"

	"repro/internal/flags"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	return Build(flags.NewRegistry())
}

func TestSelectedCollectorDefaults(t *testing.T) {
	r := flags.NewRegistry()
	c := flags.NewConfig(r)
	col, err := SelectedCollector(c)
	if err != nil || col != Parallel {
		t.Errorf("default collector = %v, %v; want parallel", col, err)
	}
}

func TestSelectedCollectorExplicit(t *testing.T) {
	r := flags.NewRegistry()
	cases := []struct {
		set  string
		want Collector
	}{
		{"UseSerialGC", Serial},
		{"UseConcMarkSweepGC", CMS},
		{"UseG1GC", G1},
	}
	for _, cse := range cases {
		c := flags.NewConfig(r)
		c.SetBool(cse.set, true)
		col, err := SelectedCollector(c)
		if err != nil || col != cse.want {
			t.Errorf("%s: got %v, %v; want %v", cse.set, col, err, cse.want)
		}
	}
}

func TestSelectedCollectorConflicts(t *testing.T) {
	r := flags.NewRegistry()
	c := flags.NewConfig(r)
	c.SetBool("UseSerialGC", true)
	c.SetBool("UseG1GC", true)
	if _, err := SelectedCollector(c); err == nil {
		t.Error("two collectors should conflict")
	}
	c2 := flags.NewConfig(r)
	c2.SetBool("UseG1GC", true)
	c2.SetBool("UseParallelGC", true) // explicit parallel alongside G1
	if _, err := SelectedCollector(c2); err == nil {
		t.Error("explicit parallel + G1 should conflict")
	}
}

func TestSelectedCollectorAllOff(t *testing.T) {
	r := flags.NewRegistry()
	c := flags.NewConfig(r)
	c.SetBool("UseParallelGC", false)
	col, err := SelectedCollector(c)
	if err != nil || col != Serial {
		t.Errorf("no collector selected should fall back to serial, got %v, %v", col, err)
	}
}

func TestValidateRules(t *testing.T) {
	r := flags.NewRegistry()
	ok := flags.NewConfig(r)
	if err := Validate(ok); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}

	parNew := flags.NewConfig(r)
	parNew.SetBool("UseParNewGC", true) // with default parallel collector
	if err := Validate(parNew); err == nil {
		t.Error("ParNew without CMS should fail")
	}
	parNewCMS := flags.NewConfig(r)
	parNewCMS.SetBool("UseConcMarkSweepGC", true)
	parNewCMS.SetBool("UseParNewGC", true)
	if err := Validate(parNewCMS); err != nil {
		t.Errorf("ParNew with CMS should pass: %v", err)
	}

	heap := flags.NewConfig(r)
	heap.SetInt("InitialHeapSize", 2<<30)
	heap.SetInt("MaxHeapSize", 1<<30)
	if err := Validate(heap); err == nil {
		t.Error("Xms > Xmx should fail")
	}

	young := flags.NewConfig(r)
	young.SetInt("MaxHeapSize", 512<<20)
	young.SetInt("MaxNewSize", 512<<20)
	if err := Validate(young); err == nil {
		t.Error("young >= heap should fail")
	}

	newSizes := flags.NewConfig(r)
	newSizes.SetInt("NewSize", 256<<20)
	newSizes.SetInt("MaxNewSize", 128<<20)
	if err := Validate(newSizes); err == nil {
		t.Error("NewSize > MaxNewSize should fail")
	}

	cc := flags.NewConfig(r)
	cc.SetInt("InitialCodeCacheSize", 64<<20)
	cc.SetInt("ReservedCodeCacheSize", 16<<20)
	if err := Validate(cc); err == nil {
		t.Error("initial code cache > reserved should fail")
	}
}

func TestActiveFlagsFollowCollector(t *testing.T) {
	tr := newTree(t)
	r := tr.Registry()

	cms := flags.NewConfig(r)
	tr.mustApply(t, "collector", "cms", cms)
	if !tr.FlagActive("CMSInitiatingOccupancyFraction", cms) {
		t.Error("CMS flag inactive under CMS")
	}
	if tr.FlagActive("G1HeapRegionSize", cms) {
		t.Error("G1 flag active under CMS")
	}

	g1 := flags.NewConfig(r)
	tr.mustApply(t, "collector", "g1", g1)
	if !tr.FlagActive("G1HeapRegionSize", g1) {
		t.Error("G1 flag inactive under G1")
	}
	if tr.FlagActive("CMSInitiatingOccupancyFraction", g1) {
		t.Error("CMS flag active under G1")
	}
	if tr.FlagActive("NewRatio", g1) {
		t.Error("NewRatio should be inactive under G1's region model")
	}

	serial := flags.NewConfig(r)
	tr.mustApply(t, "collector", "serial", serial)
	if tr.FlagActive("ParallelGCThreads", serial) {
		t.Error("GC worker-pool flags active under serial")
	}
	if !tr.FlagActive("NewRatio", serial) {
		t.Error("NewRatio should be active under serial")
	}
}

// mustApply finds the named choice/branch and applies it.
func (t *Tree) mustApply(tt *testing.T, choice, branch string, c *flags.Config) {
	tt.Helper()
	for _, ch := range t.Choices() {
		if ch.Name != choice {
			continue
		}
		for _, b := range ch.Branches {
			if b.Name == branch {
				b.Apply(c)
				return
			}
		}
	}
	tt.Fatalf("no branch %s/%s", choice, branch)
}

func TestActiveFlagsFollowJITMode(t *testing.T) {
	tr := newTree(t)
	r := tr.Registry()
	classic := flags.NewConfig(r)
	if !tr.FlagActive("CompileThreshold", classic) {
		t.Error("CompileThreshold inactive in classic mode")
	}
	if tr.FlagActive("TieredStopAtLevel", classic) {
		t.Error("TieredStopAtLevel active in classic mode")
	}
	tiered := flags.NewConfig(r)
	tiered.SetBool("TieredCompilation", true)
	if tr.FlagActive("CompileThreshold", tiered) {
		t.Error("CompileThreshold active in tiered mode")
	}
	if !tr.FlagActive("TieredStopAtLevel", tiered) {
		t.Error("TieredStopAtLevel inactive in tiered mode")
	}
}

func TestGuardedSubsystems(t *testing.T) {
	tr := newTree(t)
	r := tr.Registry()
	c := flags.NewConfig(r)
	if !tr.FlagActive("TLABSize", c) {
		t.Error("TLAB flags should be active while UseTLAB (default true)")
	}
	c.SetBool("UseTLAB", false)
	if tr.FlagActive("TLABSize", c) {
		t.Error("TLAB flags should deactivate with UseTLAB off")
	}
	if !tr.FlagActive("BiasedLockingStartupDelay", flags.NewConfig(r)) {
		t.Error("biased-locking delay active by default")
	}
	noBias := flags.NewConfig(r)
	noBias.SetBool("UseBiasedLocking", false)
	if tr.FlagActive("BiasedLockingStartupDelay", noBias) {
		t.Error("biased-locking delay should deactivate")
	}
}

func TestEveryTunableFlagIsInTree(t *testing.T) {
	tr := newTree(t)
	r := tr.Registry()
	inTree := map[string]bool{}
	for _, n := range tr.AllTreeFlags() {
		inTree[n] = true
	}
	for _, n := range r.TunableNames() {
		if !inTree[n] {
			t.Errorf("tunable flag %s missing from tree (whole-JVM scope violated)", n)
		}
	}
}

func TestActiveFlagsAreTunableAndSortedAndUnique(t *testing.T) {
	tr := newTree(t)
	c := flags.NewConfig(tr.Registry())
	active := tr.ActiveFlags(c)
	if len(active) == 0 {
		t.Fatal("no active flags under defaults")
	}
	for i, n := range active {
		f := tr.Registry().Lookup(n)
		if f == nil || !f.Tunable() {
			t.Errorf("active flag %s is not tunable", n)
		}
		if i > 0 && active[i-1] >= n {
			t.Errorf("active flags not strictly sorted at %d: %s >= %s", i, active[i-1], n)
		}
	}
}

func TestChoicesApplyProduceValidConfigs(t *testing.T) {
	tr := newTree(t)
	for _, ch := range tr.Choices() {
		for _, b := range ch.Branches {
			c := flags.NewConfig(tr.Registry())
			b.Apply(c)
			if err := Validate(c); err != nil {
				t.Errorf("branch %s/%s yields invalid config: %v", ch.Name, b.Name, err)
			}
		}
	}
	// All cross-products must also be valid.
	for _, col := range tr.Choices()[0].Branches {
		for _, jit := range tr.Choices()[1].Branches {
			c := flags.NewConfig(tr.Registry())
			col.Apply(c)
			jit.Apply(c)
			if err := Validate(c); err != nil {
				t.Errorf("combo %s+%s invalid: %v", col.Name, jit.Name, err)
			}
		}
	}
}

func TestCollectorBranchesSelectWhatTheyClaim(t *testing.T) {
	tr := newTree(t)
	want := map[string]Collector{
		"serial": Serial, "parallel": Parallel, "cms": CMS, "g1": G1,
	}
	for _, b := range tr.Choices()[0].Branches {
		c := flags.NewConfig(tr.Registry())
		b.Apply(c)
		col, err := SelectedCollector(c)
		if err != nil || col != want[b.Name] {
			t.Errorf("branch %s selects %v, %v", b.Name, col, err)
		}
	}
}

func TestSpaceSizeReduction(t *testing.T) {
	tr := newTree(t)
	ss := tr.SpaceSize()
	if ss.TunableFlags < 200 {
		t.Errorf("tunable universe too small: %d", ss.TunableFlags)
	}
	if ss.FlatLog10 <= ss.HierarchicalLog10 {
		t.Errorf("hierarchy did not reduce the space: flat 1e%.1f vs hier 1e%.1f",
			ss.FlatLog10, ss.HierarchicalLog10)
	}
	// The paper's pitch: the reduction is substantial. Inactive branch flags
	// alone should shave several orders of magnitude.
	if ss.FlatLog10-ss.HierarchicalLog10 < 3 {
		t.Errorf("reduction only 1e%.1f", ss.FlatLog10-ss.HierarchicalLog10)
	}
	if len(ss.ActivePerBranch) != 8 { // 4 collectors × 2 JIT modes
		t.Errorf("expected 8 branch combos, got %d", len(ss.ActivePerBranch))
	}
	for combo, n := range ss.ActivePerBranch {
		if n == 0 {
			t.Errorf("branch combo %s has no active flags", combo)
		}
	}
}

func TestEnumerateBranchCombos(t *testing.T) {
	a := Choice{Name: "a", Branches: []Branch{{Name: "1"}, {Name: "2"}}}
	b := Choice{Name: "b", Branches: []Branch{{Name: "x"}, {Name: "y"}, {Name: "z"}}}
	combos := enumerateBranchCombos([]Choice{a, b})
	if len(combos) != 6 {
		t.Fatalf("got %d combos, want 6", len(combos))
	}
	seen := map[string]bool{}
	for _, c := range combos {
		if len(c) != 2 {
			t.Fatalf("combo length %d", len(c))
		}
		seen[c[0].Name+c[1].Name] = true
	}
	if len(seen) != 6 {
		t.Errorf("combos not unique: %v", seen)
	}
	empty := enumerateBranchCombos(nil)
	if len(empty) != 1 || len(empty[0]) != 0 {
		t.Error("empty choice list should yield one empty combo")
	}
}
