// Admission control: the farm degrades explicitly instead of collapsing
// under overload.
//
// Requests are split into two priority classes. Submissions (POST /v1/tune,
// POST /v1/measure — the class that creates work) pass through admission:
// a bounded accept queue that sheds with 429 + Retry-After once the backlog
// passes Config.MaxQueueDepth, and a per-client token bucket (keyed by the
// X-Client header) that keeps one aggressive client from starving the rest.
// Control requests (polls, cancels, traces, metrics) are never shed: a
// client must always be able to observe and cancel the work the farm
// already accepted, no matter how hard submissions are hammering it.
//
// Every shed response is a JSON error envelope carrying the machine-usable
// retry hint alongside the Retry-After header.
package httpapi

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// shedResponse is the JSON body of every load-shed or shutdown rejection.
// RetryAfterSeconds mirrors the Retry-After header for clients that only
// read bodies.
type shedResponse struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// writeShed rejects a request with the shed envelope and a Retry-After
// header.
func writeShed(w http.ResponseWriter, status, retryAfter int, format string, args ...any) {
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, status, shedResponse{
		Error:             fmt.Sprintf(format, args...),
		RetryAfterSeconds: retryAfter,
	})
}

// clientID identifies the submitting client for token-bucket fairness.
// Clients that do not label themselves share one bucket.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	return "anonymous"
}

// maxClientBuckets bounds the bucket map; above it, buckets idle at full
// burst are swept (they carry no state a fresh bucket wouldn't).
const maxClientBuckets = 1024

// admission is the server's token-bucket bank: one bucket per client,
// refilled at rate tokens/second up to burst. rate ≤ 0 disables rate
// limiting entirely.
type admission struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(rate float64, burst int, now func() time.Time) *admission {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rate))
	}
	if now == nil {
		now = time.Now
	}
	return &admission{rate: rate, burst: b, now: now, buckets: make(map[string]*bucket)}
}

// take spends one token from client's bucket. When the bucket is dry it
// returns false and the whole seconds until a token accrues.
func (a *admission) take(client string) (bool, int) {
	t := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	bk := a.buckets[client]
	if bk == nil {
		if len(a.buckets) >= maxClientBuckets {
			a.sweepLocked(t)
		}
		bk = &bucket{tokens: a.burst, last: t}
		a.buckets[client] = bk
	}
	if dt := t.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(a.burst, bk.tokens+dt*a.rate)
	}
	bk.last = t
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	return false, int(math.Ceil((1 - bk.tokens) / a.rate))
}

// sweepLocked drops buckets that have refilled to full burst — an idle
// client's bucket is indistinguishable from a fresh one.
func (a *admission) sweepLocked(t time.Time) {
	for c, bk := range a.buckets {
		if dt := t.Sub(bk.last).Seconds(); dt > 0 {
			bk.tokens = math.Min(a.burst, bk.tokens+dt*a.rate)
			bk.last = t
		}
		if bk.tokens >= a.burst {
			delete(a.buckets, c)
		}
	}
}

// admitSubmission applies the submission-class admission checks, writing
// the shed response itself when the request must bounce. wantsQueue marks
// requests that will occupy an accept-queue slot (async tune submissions);
// synchronous work only faces the rate limit.
func (s *Server) admitSubmission(w http.ResponseWriter, r *http.Request, wantsQueue bool) bool {
	if wantsQueue && s.maxQueueDepth > 0 {
		if depth := len(s.queue); depth >= s.maxQueueDepth {
			s.reg.Counter(`httpapi_shed_total{reason="queue-full"}`).Inc()
			// Drain-time estimate: the pool retires MaxConcurrent jobs at a
			// time; one second per wave is deliberately conservative.
			retry := 1 + depth/s.cfg.MaxConcurrent
			writeShed(w, http.StatusTooManyRequests, retry,
				"accept queue full: %d submissions waiting (limit %d)", depth, s.maxQueueDepth)
			return false
		}
	}
	if s.admit != nil && s.admit.rate > 0 {
		client := clientID(r)
		if ok, retry := s.admit.take(client); !ok {
			s.reg.Counter(`httpapi_shed_total{reason="rate-limited"}`).Inc()
			writeShed(w, http.StatusTooManyRequests, retry,
				"client %q exceeded %g submissions/s (burst %g)", client, s.admit.rate, s.admit.burst)
			return false
		}
	}
	return true
}
