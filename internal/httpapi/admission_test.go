package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/hotspot"
)

// fakeClock is an injectable time source for the token-bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAdmissionTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newAdmission(2, 4, clk.now)

	for i := 0; i < 4; i++ {
		if ok, _ := a.take("c"); !ok {
			t.Fatalf("take %d within burst refused", i+1)
		}
	}
	ok, retry := a.take("c")
	if ok {
		t.Fatal("5th take within the burst admitted")
	}
	if retry != 1 {
		t.Fatalf("dry-bucket retry hint = %d, want 1 (ceil(1 token / 2 per s))", retry)
	}
	// Each client refills independently.
	if ok, _ := a.take("other"); !ok {
		t.Fatal("fresh client shares the dry bucket")
	}
	// Half a second at 2 tokens/s accrues exactly one token.
	clk.advance(500 * time.Millisecond)
	if ok, _ := a.take("c"); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := a.take("c"); ok {
		t.Fatal("second take after a one-token refill admitted")
	}

	// Burst ≤ 0 defaults to max(1, ceil(rate)).
	if b := newAdmission(0.5, 0, clk.now); b.burst != 1 {
		t.Errorf("default burst for rate 0.5 = %g, want 1", b.burst)
	}
	if b := newAdmission(3.2, 0, clk.now); b.burst != 4 {
		t.Errorf("default burst for rate 3.2 = %g, want 4", b.burst)
	}
}

func TestAdmissionBucketMapBounded(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newAdmission(1, 1, clk.now)
	// A flood of distinct clients must not grow the map without bound:
	// buckets idle at full burst are swept once the cap is hit.
	for i := 0; i < 3*maxClientBuckets; i++ {
		a.take(fmt.Sprintf("client-%d", i))
		clk.advance(2 * time.Second) // everyone refills to full burst
	}
	a.mu.Lock()
	n := len(a.buckets)
	a.mu.Unlock()
	if n > maxClientBuckets {
		t.Fatalf("bucket map grew to %d entries, cap is %d", n, maxClientBuckets)
	}
}

// postShed posts a submission and decodes the shed envelope plus the
// Retry-After header.
func postShed(t *testing.T, url, client string, req TuneRequest) (int, string, shedResponse) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/tune", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if client != "" {
		hr.Header.Set("X-Client", client)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var shed shedResponse
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
			t.Fatalf("shed body is not the JSON envelope: %v", err)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), shed
}

// TestOverloadBurstShedsSubmissionsNotControl is the admission-control
// drill from the overload runbook: a burst of submissions against a
// one-slot farm with a bounded accept queue. Excess submissions bounce
// with 429 + Retry-After while the jobs already accepted keep running and
// polls and cancels keep working.
func TestOverloadBurstShedsSubmissionsNotControl(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	stubTune(t, func(ctx context.Context, _ hotspot.Options) (*hotspot.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &hotspot.Result{}, nil
	})
	s, ts := newBoundedServer(t, Config{MaxConcurrent: 1, MaxJobs: 64, MaxQueueDepth: 2})

	running := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	<-started // the worker holds the only slot; everything below queues

	// Concurrent burst: far more submissions than the queue admits.
	const burst = 16
	var wg sync.WaitGroup
	codes := make([]int, burst)
	retries := make([]string, burst)
	bodies := make([]shedResponse, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], retries[i], bodies[i] = postShed(t, ts.URL, "", TuneRequest{Benchmark: "fop"})
		}(i)
	}
	wg.Wait()

	accepted, shed := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
			if retries[i] == "" {
				t.Error("shed response missing the Retry-After header")
			}
			if bodies[i].RetryAfterSeconds < 1 || bodies[i].Error == "" {
				t.Errorf("shed envelope incomplete: %+v", bodies[i])
			}
		default:
			t.Errorf("burst submission %d: unexpected status %d", i, code)
		}
	}
	if shed == 0 {
		t.Fatalf("no submission shed: %d accepted into a 2-deep queue", accepted)
	}
	if accepted == 0 {
		t.Fatal("every submission shed; the queue admitted nothing")
	}

	// Control requests are never shed behind the submission storm: the
	// running job polls fine and a queued job cancels fine.
	if job := pollJob(t, ts.URL, running); job.State != "running" {
		t.Fatalf("poll under overload: %+v", job)
	}
	var jobs []Job
	if code := getJSON(t, ts.URL+"/v1/jobs", &jobs); code != 200 {
		t.Fatalf("job list under overload: status %d", code)
	}
	for _, j := range jobs {
		if j.State == "queued" {
			if code := doDelete(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, j.ID), nil); code != 200 {
				t.Fatalf("cancel of queued job %d under overload: status %d", j.ID, code)
			}
			break
		}
	}
	if s.reg.Counter(`httpapi_shed_total{reason="queue-full"}`).Value() == 0 {
		t.Error("queue-full shed counter never ticked")
	}

	// The work the farm accepted still finishes.
	close(release)
	s.Wait()
	if job := pollJob(t, ts.URL, running); job.State != "done" {
		t.Errorf("in-flight job did not finish after the burst: %+v", job)
	}
}

func TestPerClientRateLimitIsolatesClients(t *testing.T) {
	stubTune(t, func(context.Context, hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{}, nil
	})
	s, ts := newBoundedServer(t, Config{MaxConcurrent: 1, MaxJobs: 64, ClientRatePerSec: 1, ClientBurst: 1})
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.admit = newAdmission(1, 1, clk.now)

	if code, _, _ := postShed(t, ts.URL, "alice", TuneRequest{Benchmark: "fop"}); code != http.StatusAccepted {
		t.Fatalf("alice's first submission: status %d", code)
	}
	code, retry, shed := postShed(t, ts.URL, "alice", TuneRequest{Benchmark: "fop"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice's burst-exceeding submission: status %d, want 429", code)
	}
	if retry == "" || shed.RetryAfterSeconds < 1 {
		t.Fatalf("rate-limit shed lacks a retry hint: header=%q body=%+v", retry, shed)
	}
	// One greedy client must not starve another.
	if code, _, _ := postShed(t, ts.URL, "bob", TuneRequest{Benchmark: "fop"}); code != http.StatusAccepted {
		t.Fatalf("bob starved by alice's bucket: status %d", code)
	}
	// Time refills the bucket.
	clk.advance(time.Second)
	if code, _, _ := postShed(t, ts.URL, "alice", TuneRequest{Benchmark: "fop"}); code != http.StatusAccepted {
		t.Fatalf("alice still limited after refill: status %d", code)
	}
	if s.reg.Counter(`httpapi_shed_total{reason="rate-limited"}`).Value() == 0 {
		t.Error("rate-limited shed counter never ticked")
	}
	s.Wait()
}

func TestShutdownShedsWithEnvelope(t *testing.T) {
	stubTune(t, func(context.Context, hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{}, nil
	})
	s, ts := newTestServer(t)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, retry, shed := postShed(t, ts.URL, "", TuneRequest{Benchmark: "fop"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: status %d, want 503", code)
	}
	if retry == "" || shed.RetryAfterSeconds < 1 || shed.Error == "" {
		t.Fatalf("shutdown shed lacks the envelope: header=%q body=%+v", retry, shed)
	}
}

// TestJournalCompactionAcrossRestart churns a tiny durable farm past its
// compaction threshold and restarts it: results survive, evicted job ids
// are never reissued (the compacted stream's id watermark), and the
// journal stays bounded.
func TestJournalCompactionAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	stubTune(t, func(_ context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{Benchmark: opts.Benchmark, BestWall: 7}, nil
	})
	// A 1-byte threshold compacts after every append — the most hostile
	// cadence the trigger supports.
	cfg := Config{MaxConcurrent: 1, MaxJobs: 2, JournalCompactBytes: 1}
	s, ts := newDurableServer(t, dir, cfg)

	var last int
	for i := 0; i < 6; i++ { // MaxJobs 2: most of these evict a predecessor
		last = submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop", Seed: int64(i)})
		s.Wait()
	}
	if s.reg.Counter("httpapi_journal_compacted_records_total").Value() == 0 {
		t.Fatal("compaction never ran despite a 1-byte threshold")
	}
	if s.reg.Counter("httpapi_journal_errors_total").Value() != 0 {
		t.Fatal("compaction logged journal errors")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, dir, cfg)
	if job := pollJob(t, ts2.URL, last); job.State != "done" || job.Result == nil || job.Result.BestWall != 7 {
		t.Fatalf("job replayed from the compacted journal = %+v", job)
	}
	// Evicted ids must stay burned: the next submission continues the
	// sequence instead of reusing id 1.
	if id := submitAsync(t, ts2.URL, TuneRequest{Benchmark: "fop"}); id != last+1 {
		t.Fatalf("post-restart submission got id %d, want %d", id, last+1)
	}
	s2.Wait()
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A third generation proves the watermark survives its own rewrite.
	s3, ts3 := newDurableServer(t, dir, cfg)
	if id := submitAsync(t, ts3.URL, TuneRequest{Benchmark: "fop"}); id != last+2 {
		t.Fatalf("third-generation submission got id %d, want %d", id, last+2)
	}
	s3.Wait()
}

// TestCompactionCrashLeavesJournalAuthoritative simulates dying between
// writing the compaction temp file and renaming it over the journal: the
// stranded temp holds no authoritative state and the next recovery sweeps
// it, replaying the (uncompacted) journal as if nothing happened.
func TestCompactionCrashLeavesJournalAuthoritative(t *testing.T) {
	dir := t.TempDir()
	stubTune(t, func(_ context.Context, opts hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{Benchmark: opts.Benchmark, BestWall: 3}, nil
	})
	s, ts := newDurableServer(t, dir, Config{MaxConcurrent: 1, MaxJobs: 8})
	id := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	s.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	stale := filepath.Join(dir, "farm.journal.compact31337")
	if err := os.WriteFile(stale, []byte("torn half-written compaction"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, dir, Config{MaxConcurrent: 1, MaxJobs: 8})
	if job := pollJob(t, ts2.URL, id); job.State != "done" || job.Result == nil || job.Result.BestWall != 3 {
		t.Fatalf("recovery with a stranded compaction temp lost the job: %+v", job)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stranded compaction temp not swept: %v", err)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
