package httpapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/hotspot"
	"repro/internal/checkpoint"
)

// TestTuneDriftJob: a job submitted with "drift": true and a drift-scheduling
// chaos plan surfaces the per-epoch breakdown in its poll.
func TestTuneDriftJob(t *testing.T) {
	_, ts := newTestServer(t)
	var job Job
	code := postJSON(t, ts.URL+"/v1/tune?sync=1", TuneRequest{
		Benchmark: "xalan", BudgetMinutes: 150, Seed: 7, Workers: 3,
		Drift: true, Chaos: "drift-at=40",
	}, &job)
	if code != 200 {
		t.Fatalf("drift tune status %d", code)
	}
	if job.State != "done" || job.Result == nil {
		t.Fatalf("drift job not done: %+v", job)
	}
	if len(job.Result.Epochs) < 2 {
		t.Fatalf("drift job reported %d epochs, want a re-tune", len(job.Result.Epochs))
	}
	if job.Result.Epochs[0].DriftTrial <= 40 {
		t.Fatalf("drift confirmed at trial %d, before the shift at 40", job.Result.Epochs[0].DriftTrial)
	}

	// The poll's raw JSON carries the breakdown under result.epochs.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + itoa(job.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"epochs"`) || !strings.Contains(string(body), `"drift_trial"`) {
		t.Fatalf("poll body missing epoch keys: %s", body)
	}

	// The named drift scenario works through the same door.
	var sc Job
	if code := postJSON(t, ts.URL+"/v1/tune?sync=1", TuneRequest{
		Benchmark: "xalan", BudgetMinutes: 150, Seed: 7, Workers: 3,
		Drift: true, Chaos: "drift-midrun",
	}, &sc); code != 200 || sc.Result == nil || len(sc.Result.Epochs) < 2 {
		t.Fatalf("drift-midrun job: status %d, %+v", code, sc.Result)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestTuneDriftValidation: malformed drift requests bounce with 400 at
// submission, not as failed jobs.
func TestTuneDriftValidation(t *testing.T) {
	_, ts := newTestServer(t)
	var errBody map[string]string
	if code := postJSON(t, ts.URL+"/v1/tune", TuneRequest{
		Benchmark: "fop", DriftSensitivity: 2,
	}, &errBody); code != 400 || !strings.Contains(errBody["error"], "drift") {
		t.Errorf("drift_sensitivity without drift: %d %v", code, errBody)
	}
	if code := postJSON(t, ts.URL+"/v1/tune", TuneRequest{
		Benchmark: "fop", Drift: true, DriftSensitivity: -1,
	}, &errBody); code != 400 {
		t.Errorf("negative drift_sensitivity: %d %v", code, errBody)
	}
}

// TestDegradedReasonVisibleInPoll pins the bugfix: a degraded job's poll
// carries the reason string verbatim under result.degraded_reason (the old
// Go-cased keys made the reason invisible to JSON clients).
func TestDegradedReasonVisibleInPoll(t *testing.T) {
	const reason = "real budget exhausted after 120.0s"
	stubTune(t, func(context.Context, hotspot.Options) (*hotspot.Result, error) {
		return &hotspot.Result{Benchmark: "fop", Degraded: true, DegradedReason: reason}, nil
	})
	s, ts := newTestServer(t)
	id := submitAsync(t, ts.URL, TuneRequest{Benchmark: "fop"})
	s.Wait()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + itoa(id))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"degraded_reason"`) ||
		!strings.Contains(string(body), reason) {
		t.Fatalf("degradation state missing from poll: %s", body)
	}
	job := pollJob(t, ts.URL, id)
	if !job.Result.Degraded || job.Result.DegradedReason != reason {
		t.Fatalf("decoded poll lost degradation state: %+v", job.Result)
	}
}

// TestDurableLegacyJournalDegradedReason: a journal written by a pre-fix
// build stored results under Go-cased keys ("Degraded"/"DegradedReason");
// replaying it must not lose the degradation state. Go's case folding
// rescues "Degraded" on its own, but "DegradedReason" does not fold onto
// "degraded_reason" — exactly the field the legacy shim exists for.
func TestDurableLegacyJournalDegradedReason(t *testing.T) {
	dir := t.TempDir()
	j, _, err := checkpoint.OpenJournal(filepath.Join(dir, "farm.journal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{
		`{"op":"submit","id":1,"request":{"benchmark":"fop","seed":3}}`,
		`{"op":"state","id":1,"state":"running"}`,
		`{"op":"done","id":1,"state":"done","result":{"Benchmark":"fop","BestWall":12.5,"Degraded":true,"DegradedReason":"session canceled"}}`,
	} {
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	stubTune(t, func(context.Context, hotspot.Options) (*hotspot.Result, error) {
		t.Error("terminal legacy job was re-run")
		return nil, nil
	})
	s, ts := newDurableServer(t, dir, Config{MaxConcurrent: 1, MaxJobs: 4})
	defer s.Shutdown(context.Background())
	job := pollJob(t, ts.URL, 1)
	if job.State != "done" || job.Result == nil {
		t.Fatalf("legacy job not replayed: %+v", job)
	}
	if !job.Result.Degraded || job.Result.DegradedReason != "session canceled" {
		t.Fatalf("legacy degradation state lost on replay: %+v", job.Result)
	}
	if job.Result.BestWall != 12.5 {
		t.Fatalf("legacy result fields lost: %+v", job.Result)
	}
}
